// Edge-case tests for the Section 3 subprotocols taken in isolation:
// add_last_bit / get_output preconditions and postconditions, Pi_lBA+
// tuple handling, and FixedLengthCA corner geometries.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/fixed_length_ca.h"
#include "ca/fixed_length_ca_blocks.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::all_agree;
using test::run_parties;

struct Fixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
};

TEST(AddLastBit, ExtensionIsSomeHonestNextBit) {
  // Parties share prefix "10"; half continue with 0, half with 1: the
  // extension must be one of those (BA Validity picks an honest bit).
  const int n = 7;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("10");
  auto run = run_parties<Bitstring>(n, 2, [&](net::PartyContext& ctx, int id) {
    const Bitstring v =
        Bitstring::from_string(id % 2 ? "10110011" : "10010011");
    return add_last_bit(ctx, f.bin, 8, v, prefix);
  });
  EXPECT_TRUE(all_agree(run.outputs));
  const std::string ext = run.outputs[0]->to_string();
  EXPECT_TRUE(ext == "100" || ext == "101") << ext;
}

TEST(AddLastBit, UnanimousNextBitIsForced) {
  const int n = 4;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("0");
  auto run = run_parties<Bitstring>(n, 1, [&](net::PartyContext& ctx, int) {
    return add_last_bit(ctx, f.bin, 4, Bitstring::from_string("0111"), prefix);
  });
  for (const auto& out : run.outputs) EXPECT_EQ(out->to_string(), "01");
}

TEST(AddLastBit, RejectsFullPrefix) {
  Fixture f;
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&](net::PartyContext& ctx) {
      (void)add_last_bit(ctx, f.bin, 3, Bitstring::zeros(3),
                         Bitstring::zeros(3));
    });
  }
  EXPECT_THROW(net.run(), Error);
}

TEST(GetOutput, PicksMinWhenWitnessesAreBelow) {
  // All witnesses lie below MIN(prefix): every announcement is B = 0, so
  // the output must be MIN_l(prefix).
  const int n = 7;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("11");
  auto run = run_parties<Bitstring>(n, 2, [&](net::PartyContext& ctx, int) {
    return get_output(ctx, f.bin, 8, Bitstring::from_u64(5, 8), prefix);
  });
  for (const auto& out : run.outputs) {
    EXPECT_EQ(*out, Bitstring::min_fill(prefix, 8));
  }
}

TEST(GetOutput, PicksMaxWhenWitnessesAreAbove) {
  const int n = 7;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("00");
  auto run = run_parties<Bitstring>(n, 2, [&](net::PartyContext& ctx, int) {
    return get_output(ctx, f.bin, 8, Bitstring::from_u64(200, 8), prefix);
  });
  for (const auto& out : run.outputs) {
    EXPECT_EQ(*out, Bitstring::max_fill(prefix, 8));
  }
}

TEST(GetOutput, MixedWitnessesPickOneConsistentSide) {
  // Witnesses on both sides: either answer is valid; agreement must hold.
  const int n = 10;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("01");
  auto run = run_parties<Bitstring>(n, 3, [&](net::PartyContext& ctx, int id) {
    const Bitstring v_bot =
        id % 2 ? Bitstring::from_u64(250, 8) : Bitstring::from_u64(3, 8);
    return get_output(ctx, f.bin, 8, v_bot, prefix);
  });
  EXPECT_TRUE(all_agree(run.outputs));
  const Bitstring& out = *run.outputs[0];
  EXPECT_TRUE(out == Bitstring::min_fill(prefix, 8) ||
              out == Bitstring::max_fill(prefix, 8));
}

TEST(GetOutput, ByzantineAnnouncersCannotFlipUnanimousSide) {
  // t+1 honest witnesses all say "below"; t byzantine parties shout "1".
  // The majority-of-received rule keeps an honest bit.
  const int n = 7;
  const int t = 2;
  Fixture f;
  const Bitstring prefix = Bitstring::from_string("11");
  auto run = run_parties<Bitstring>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        // Three honest announcers (witness diverges), two honest silent
        // (witness matches prefix).
        const Bitstring v_bot = id < 3 ? Bitstring::from_u64(1, 8)
                                       : Bitstring::max_fill(prefix, 8);
        return get_output(ctx, f.bin, 8, v_bot, prefix);
      },
      {5, 6}, [](int) { return std::make_shared<adv::ConstantByte>(1); });
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_EQ(*out, Bitstring::min_fill(prefix, 8));
    }
  }
}

TEST(GetOutput, EmptyPrefixWorks) {
  // Degenerate geometry: PREFIX* empty, witnesses anywhere; outputs are
  // all-zeros or all-ones.
  const int n = 4;
  Fixture f;
  auto run = run_parties<Bitstring>(n, 1, [&](net::PartyContext& ctx, int) {
    return get_output(ctx, f.bin, 6, Bitstring::from_u64(33, 6), Bitstring());
  });
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST(FixedLengthCA, AllZerosAndAllOnes) {
  const int n = 4;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  for (const bool ones : {false, true}) {
    const Bitstring v = ones ? Bitstring::ones(12) : Bitstring::zeros(12);
    auto run = run_parties<Bitstring>(
        n, 1, [&](net::PartyContext& ctx, int) { return ca.run(ctx, 12, v); });
    for (const auto& out : run.outputs) EXPECT_EQ(*out, v);
  }
}

TEST(FixedLengthCA, ExtremesAcrossFullRange) {
  // Inputs at 0 and 2^l - 1: no common prefix at all.
  const int n = 4;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  auto run = run_parties<Bitstring>(n, 1, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, 10, id < 2 ? Bitstring::zeros(10) : Bitstring::ones(10));
  });
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST(FixedLengthCA, RejectsWrongInputLength) {
  Fixture f;
  const FixedLengthCA ca(f.kit);
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&](net::PartyContext& ctx) {
      (void)ca.run(ctx, 8, Bitstring::zeros(7));
    });
  }
  EXPECT_THROW(net.run(), Error);
}

TEST(AddLastBlock, AgreedBlockWithinHonestBlockRange) {
  const int n = 4;
  const std::size_t block_bits = 8;
  const std::size_t ell = 16 * block_bits;  // n^2 = 16 blocks
  const Bitstring prefix = Bitstring::zeros(3 * block_bits);
  auto run = run_parties<Bitstring>(n, 1, [&](net::PartyContext& ctx, int id) {
    Bitstring v = prefix;
    v.append(Bitstring::from_u64(static_cast<std::uint64_t>(100 + id), 8));
    v.append(Bitstring::zeros(ell - v.size()));
    return add_last_block(ctx, ell, block_bits, v, prefix);
  });
  EXPECT_TRUE(all_agree(run.outputs));
  const Bitstring block = run.outputs[0]->substr(3 * block_bits, block_bits);
  const std::uint64_t val = block.to_u64();
  EXPECT_GE(val, 100u);
  EXPECT_LE(val, 103u);
}

TEST(AddLastBlock, RejectsMisalignedPrefix) {
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [](net::PartyContext& ctx) {
      (void)add_last_block(ctx, 64, 8, Bitstring::zeros(64),
                           Bitstring::zeros(5));  // not block-aligned
    });
  }
  EXPECT_THROW(net.run(), Error);
}

}  // namespace
}  // namespace coca::ca
