// Pi_BA+ (Theorem 6): BA plus Intrusion Tolerance (Def. 3) and Bounded
// Pre-Agreement (Def. 4).
#include "ba/ba_plus.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "tests/support.h"

namespace coca::ba {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

struct Fixture {
  PhaseKingBinary bin;
  TurpinCoan tc{bin};
  BAKit kit{&bin, &tc};
  BAPlus ba{kit};
};

Bytes value(int tag) {
  return Bytes{static_cast<std::uint8_t>(tag), 0xC0, 0xCA};
}

class BAPlusSweep : public ::testing::TestWithParam<int> {};

TEST_P(BAPlusSweep, ValidityAllSame) {
  const int n = GetParam();
  const int t = max_t(n);
  Fixture f;
  auto run = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int) {
    return f.ba.run(ctx, value(9));
  });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, MaybeBytes{value(9)});
}

TEST_P(BAPlusSweep, AgreementDistinctInputs) {
  const int n = GetParam();
  const int t = max_t(n);
  Fixture f;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) { return f.ba.run(ctx, value(id)); },
      byz, [](int) { return std::make_shared<adv::Replay>(); });
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST_P(BAPlusSweep, IntrusionTolerance) {
  // Whatever the adversary sends (including replayed honest traffic), the
  // output is an honest input or bottom.
  const int n = GetParam();
  const int t = max_t(n);
  Fixture f;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(n - 1 - i);
  std::set<MaybeBytes> honest_inputs;
  for (int id = 0; id < n - t; ++id) honest_inputs.insert(value(id % 3));
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return f.ba.run(ctx, value(id % 3));
      },
      byz, [](int) { return std::make_shared<adv::Garbage>(); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    EXPECT_TRUE(!out->has_value() || honest_inputs.contains(*out));
  }
}

TEST_P(BAPlusSweep, BoundedPreAgreement) {
  // n - 2t honest parties share an input => the output is not bottom.
  const int n = GetParam();
  const int t = max_t(n);
  Fixture f;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  // Exactly n - 2t honest parties hold value(0); the rest hold distinct ones.
  const int sharers = n - 2 * t;
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        const int honest_rank = id - t;  // honest ids are t..n-1 here
        return f.ba.run(ctx,
                        honest_rank < sharers ? value(0) : value(100 + id));
      },
      byz, [](int) { return std::make_shared<adv::Silent>(); });
  EXPECT_TRUE(all_agree(run.outputs));
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_TRUE(out->has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BAPlusSweep, ::testing::Values(4, 7, 10, 13));

TEST(BAPlus, PreAgreementSurvivesVoteSuppression) {
  // Adversary stays silent in the value round but votes for a fake value:
  // with n-2t honest sharers the real value must still win a slot in {a,b}.
  const int n = 10;
  const int t = 3;
  Fixture f;
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return f.ba.run(ctx, id < 7 ? value(1) : value(2));
      },
      {7, 8, 9}, [](int) { return std::make_shared<adv::Spam>(48); });
  EXPECT_TRUE(all_agree(run.outputs));
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_TRUE(out->has_value());
    }
  }
}

TEST(BAPlus, NoPreAgreementMayReturnBottomButConsistently) {
  const int n = 13;
  const int t = 4;
  Fixture f;
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) { return f.ba.run(ctx, value(id)); },
      {0, 1, 2, 3}, [](int) { return std::make_shared<adv::Garbage>(); });
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST(BAPlus, CommunicationQuadraticPlusBA) {
  // The value-dependent part of BITS(BA+) is <= 3 values per party per
  // party: growing kappa by 2x must grow honest bytes by < 2.5x and the
  // value part by ~2x.
  const int n = 10;
  const int t = 3;
  Fixture f;
  const auto measure = [&](std::size_t len) {
    auto run = run_parties<MaybeBytes>(
        n, t, [&](net::PartyContext& ctx, int) {
          return f.ba.run(ctx, Bytes(len, 0x66));
        });
    return run.stats.honest_bytes;
  };
  const auto b1 = measure(256);
  const auto b2 = measure(512);
  EXPECT_LT(static_cast<double>(b2) / static_cast<double>(b1), 2.5);
}

}  // namespace
}  // namespace coca::ba
