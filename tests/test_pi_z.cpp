// Pi_Z (Corollary 1): sign handling on top of Pi_N, plus whole-protocol
// checks through the public ConvexAgreement facade.
#include "ca/pi_z.h"

#include <gtest/gtest.h>

#include "ca/driver.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::max_t;

class PiZSigns : public ::testing::TestWithParam<int> {};

TEST_P(PiZSigns, AllNegative) {
  const int n = GetParam();
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = n;
  cfg.t = max_t(n);
  Rng rng(static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    cfg.inputs.push_back(BigInt(-1000 - static_cast<std::int64_t>(rng.below(50))));
  }
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
  for (const auto& out : r.outputs) {
    if (out) {
      EXPECT_TRUE(out->negative());
    }
  }
}

TEST_P(PiZSigns, MixedSignsIncludeZeroInHull) {
  const int n = GetParam();
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = n;
  cfg.t = max_t(n);
  for (int i = 0; i < n; ++i) {
    cfg.inputs.push_back(BigInt(i % 2 ? 50 + i : -50 - i));
  }
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PiZSigns, ::testing::Values(4, 7, 10, 13));

TEST(PiZ, SignAgreementIsSomeHonestSign) {
  // If every honest party is negative, byzantine parties cannot force a
  // non-negative output.
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  cfg.inputs = {BigInt(-10), BigInt(-20), BigInt(-30), BigInt(-40),
                BigInt(-50), BigInt(0),   BigInt(0)};
  cfg.corruptions = {{5, adv::Kind::kOnes}, {6, adv::Kind::kExtremeHigh}};
  cfg.extreme_high = BigInt(1'000'000);
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  for (const auto& out : r.outputs) {
    if (out) {
      EXPECT_TRUE(out->negative());
      EXPECT_GE(*out, BigInt(-50));
      EXPECT_LE(*out, BigInt(-10));
    }
  }
}

TEST(PiZ, ZeroBoundaryBothSigns) {
  // Honest inputs straddle zero narrowly.
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(-1), BigInt(1), BigInt(0), BigInt(-1)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(PiZ, HugeNegativeMagnitudes) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  const BigInt base(BigNat::pow2(500), true);
  cfg.inputs = {base, base + BigInt(3), base + BigInt(9), base - BigInt(4)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(PiZ, CommunicationLinearInEll) {
  // Theorem-level shape check at small scale: doubling the input length
  // roughly doubles honest communication once l dominates.
  const ConvexAgreement proto;
  const auto bytes_at = [&](std::size_t bits) {
    SimConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    Rng rng(bits);
    const BigNat base = BigNat::pow2(bits - 1);
    for (int i = 0; i < 4; ++i) {
      cfg.inputs.push_back(BigInt(base + rng.nat_below_pow2(bits - 2), false));
    }
    return run_simulation(proto, cfg).stats.honest_bytes;
  };
  const auto b1 = bytes_at(1 << 14);
  const auto b2 = bytes_at(1 << 15);
  const double ratio = static_cast<double>(b2) / static_cast<double>(b1);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.6);
}

}  // namespace
}  // namespace coca::ca
