// Simulated signatures, Dolev-Strong authenticated broadcast (t < n), and
// the t < n/2 signed-broadcast CA (the paper's cryptographic-setup regime).
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/dolev_strong.h"
#include "ca/signed_ca.h"
#include "tests/support.h"
#include "util/rng.h"
#include "util/wire.h"

namespace coca {
namespace {

using test::all_agree;
using test::run_parties;

TEST(SimSignatures, SignVerifyRoundTrip) {
  const crypto::SimulatedPki pki(5, 99);
  const Bytes msg{1, 2, 3};
  for (int id = 0; id < 5; ++id) {
    const auto sig = pki.signer(id).sign(msg);
    EXPECT_TRUE(pki.verify(id, msg, sig));
    // Wrong message / wrong id / tampered signature all fail.
    EXPECT_FALSE(pki.verify(id, Bytes{1, 2, 4}, sig));
    EXPECT_FALSE(pki.verify((id + 1) % 5, msg, sig));
    auto bad = sig;
    bad[0] ^= 1;
    EXPECT_FALSE(pki.verify(id, msg, bad));
  }
  EXPECT_FALSE(pki.verify(7, msg, pki.signer(0).sign(msg)));
}

TEST(SimSignatures, DistinctSecretsAcrossPartiesAndSetups) {
  const crypto::SimulatedPki a(3, 1), b(3, 2);
  const Bytes msg{9};
  EXPECT_NE(a.signer(0).sign(msg), a.signer(1).sign(msg));
  EXPECT_NE(a.signer(0).sign(msg), b.signer(0).sign(msg));
}

// Driver for one Dolev-Strong instance over the sync simulator.
struct DsRun {
  std::vector<std::optional<std::optional<Bytes>>> outputs;  // honest only
  net::RunStats stats;
};

template <class ByzFactory>
DsRun run_ds(int n, int t, int sender, const Bytes& value,
             const std::set<int>& byz, const ByzFactory& factory) {
  const crypto::SimulatedPki pki(n, 7);
  const ba::DolevStrong ds(pki);
  net::SyncNetwork net(n, t);
  DsRun run;
  run.outputs.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    if (byz.contains(id)) {
      net.set_byzantine(id, factory(id));
      continue;
    }
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      run.outputs[static_cast<std::size_t>(id)] = ds.run(
          ctx, signer, sender,
          id == sender ? std::optional<Bytes>(value) : std::nullopt);
    });
  }
  run.stats = net.run();
  return run;
}

class DolevStrongSweep : public ::testing::TestWithParam<int> {};

TEST_P(DolevStrongSweep, HonestSenderValidity) {
  const int n = GetParam();
  // Dolev-Strong tolerates ANY t < n; exercise an honest-majority-breaking
  // threshold too.
  for (const int t : {(n - 1) / 3, (n - 1) / 2, n - 2}) {
    std::set<int> byz;
    for (int i = 0; i < t; ++i) byz.insert(i);
    const Bytes value{0xD5, 0x01};
    auto run = run_ds(n, t, /*sender=*/n - 1, value, byz, [](int) {
      return std::make_shared<adv::Replay>();
    });
    for (const auto& out : run.outputs) {
      if (!out) continue;
      ASSERT_TRUE(out->has_value());
      EXPECT_EQ(**out, value);
    }
    EXPECT_EQ(run.stats.rounds, static_cast<std::size_t>(t + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DolevStrongSweep,
                         ::testing::Values(4, 7, 10));

TEST(DolevStrong, SilentSenderYieldsBottomEverywhere) {
  auto run = run_ds(7, 2, /*sender=*/0, Bytes{}, {0, 1}, [](int) {
    return std::make_shared<adv::Silent>();
  });
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_FALSE(out->has_value());
    }
  }
}

TEST(DolevStrong, EquivocatingSenderIsConsistent) {
  // The corrupted sender signs two different values and sends one to each
  // half of the network; consistency forces identical outputs (here:
  // everyone extracts both chains and outputs bottom).
  const int n = 7;
  const int t = 2;
  const crypto::SimulatedPki pki(n, 7);
  const ba::DolevStrong ds(pki);

  class Equivocator final : public net::ByzantineStrategy {
   public:
    Equivocator(const crypto::SimulatedPki& pki, int self, int n)
        : pki_(&pki), self_(self), n_(n) {}
    void on_round(const net::RoundView& view,
                  const std::function<void(int, Bytes)>& send) override {
      if (view.round != 0) return;
      for (int to = 0; to < n_; ++to) {
        const Bytes value{static_cast<std::uint8_t>(to % 2 ? 0xAA : 0xBB)};
        Writer content;
        content.u8(0x44);
        content.u32(static_cast<std::uint32_t>(self_));
        content.bytes(value);
        const auto sig = pki_->signer(self_).sign(content.peek());
        Writer chain;
        chain.bytes(value);
        chain.u8(1);
        chain.u32(static_cast<std::uint32_t>(self_));
        chain.raw(std::span<const std::uint8_t>(sig.data(), sig.size()));
        send(to, std::move(chain).take());
      }
    }

   private:
    const crypto::SimulatedPki* pki_;
    int self_;
    int n_;
  };

  net::SyncNetwork net(n, t);
  std::vector<std::optional<std::optional<Bytes>>> outputs(n);
  net.set_byzantine(0, std::make_shared<Equivocator>(pki, 0, n));
  for (int id = 1; id < n; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      outputs[static_cast<std::size_t>(id)] =
          ds.run(ctx, signer, 0, std::nullopt);
    });
  }
  (void)net.run();
  const std::optional<Bytes>* first = nullptr;
  for (const auto& out : outputs) {
    if (!out) continue;
    if (first == nullptr) {
      first = &*out;
    } else {
      EXPECT_EQ(*out, *first);
    }
  }
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->has_value()) << "both chains circulate => bottom";
}

TEST(DolevStrong, ForgedChainsRejected) {
  // A byzantine non-sender fabricates chains with garbage signatures for a
  // value of its choice; honest parties must not extract it.
  class Forger final : public net::ByzantineStrategy {
   public:
    void on_round(const net::RoundView& view,
                  const std::function<void(int, Bytes)>& send) override {
      Writer chain;
      chain.bytes(Bytes{0xEE, 0xEE});
      chain.u8(2);
      for (const std::uint32_t id : {0u, 6u}) {
        chain.u32(id);
        const Bytes fake = view.rng->bytes(32);
        chain.raw(std::span<const std::uint8_t>(fake.data(), fake.size()));
      }
      const Bytes payload = std::move(chain).take();
      for (int to = 0; to < view.n; ++to) send(to, payload);
    }
  };
  const Bytes value{0x0D};
  auto run = run_ds(7, 2, /*sender=*/0, value, {6}, [](int) {
    return std::make_shared<Forger>();
  });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ(**out, value) << "forgery must not displace the real value";
  }
}

class SignedCaSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SignedCaSweep, HonestMajorityCA) {
  const auto [n, seed] = GetParam();
  const int t = (n - 1) / 2;  // beyond n/3!
  const crypto::SimulatedPki pki(n, 11);
  const ca::SignedBroadcastCA ca(pki);
  Rng rng(static_cast<std::uint64_t>(seed) * 7 + static_cast<unsigned>(n));
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(2000)) - 1000);
  }
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(2 * i + 1);

  net::SyncNetwork net(n, t);
  std::vector<std::optional<BigInt>> outputs(n);
  for (int id = 0; id < n; ++id) {
    if (byz.contains(id)) {
      net.set_byzantine(id, id % 2 == 1 && id < n / 2
                                ? std::static_pointer_cast<net::ByzantineStrategy>(
                                      std::make_shared<adv::Replay>())
                                : std::make_shared<adv::Garbage>());
      continue;
    }
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      outputs[static_cast<std::size_t>(id)] =
          ca.run(ctx, signer, inputs[static_cast<std::size_t>(id)]);
    });
  }
  (void)net.run();

  EXPECT_TRUE(all_agree(outputs));
  std::optional<BigInt> lo, hi;
  for (int id = 0; id < n; ++id) {
    if (!outputs[static_cast<std::size_t>(id)]) continue;
    if (!lo || inputs[static_cast<std::size_t>(id)] < *lo) {
      lo = inputs[static_cast<std::size_t>(id)];
    }
    if (!hi || inputs[static_cast<std::size_t>(id)] > *hi) {
      hi = inputs[static_cast<std::size_t>(id)];
    }
  }
  for (const auto& out : outputs) {
    if (!out) continue;
    EXPECT_GE(*out, *lo);
    EXPECT_LE(*out, *hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SignedCaSweep,
                         ::testing::Combine(::testing::Values(4, 5, 7, 9),
                                            ::testing::Values(1, 2)));

TEST(SignedBroadcastCA, RejectsTooManyCorruptions) {
  const crypto::SimulatedPki pki(4, 11);
  const ca::SignedBroadcastCA ca(pki);
  net::SyncNetwork net(4, 2);  // 2t = n
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      const crypto::Signer signer = pki.signer(id);
      (void)ca.run(ctx, signer, BigInt(id));
    });
  }
  EXPECT_THROW(net.run(), Error);
}

}  // namespace
}  // namespace coca
