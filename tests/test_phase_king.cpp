// Phase-King BA: Definition 2 properties under corruption patterns.
#include "ba/phase_king.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "tests/support.h"

namespace coca::ba {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

struct Net {
  int n;
  int t;
};

class PhaseKingBinarySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PhaseKingBinarySweep, ValidityAllSameInput) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary ba;
  for (const bool input : {false, true}) {
    auto run = run_parties<bool>(n, t, [&](net::PartyContext& ctx, int) {
      return ba.run(ctx, input);
    });
    for (const auto& out : run.outputs) EXPECT_EQ(out, input);
  }
}

TEST_P(PhaseKingBinarySweep, AgreementMixedInputsNoAdversary) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary ba;
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<bool> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(rng.next_bool());
  auto run = run_parties<bool>(n, t, [&](net::PartyContext& ctx, int id) {
    return ba.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  EXPECT_TRUE(all_agree(run.outputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseKingBinarySweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 5, 7,
                                                              10, 13),
                                            ::testing::Values(1, 2, 3)));

// Validity must survive t byzantine parties trying to flip the outcome.
class PhaseKingByzantine : public ::testing::TestWithParam<int> {};

TEST_P(PhaseKingByzantine, ValidityUnderAdversary) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary ba;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(n - 1 - i);
  // Adversary pushes the opposite bit every round, including as king.
  for (const bool input : {false, true}) {
    auto run = run_parties<bool>(
        n, t,
        [&](net::PartyContext& ctx, int) { return ba.run(ctx, input); }, byz,
        [&](int) {
          return std::make_shared<adv::ConstantByte>(input ? 0 : 1);
        });
    for (std::size_t id = 0; id < run.outputs.size(); ++id) {
      if (run.outputs[id]) {
        EXPECT_EQ(*run.outputs[id], input) << id;
      }
    }
  }
}

TEST_P(PhaseKingByzantine, AgreementUnderGarbage) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary ba;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(2 * i);  // include early kings
  auto run = run_parties<bool>(
      n, t, [&](net::PartyContext& ctx, int id) { return ba.run(ctx, id % 2); },
      byz, [](int) { return std::make_shared<adv::Garbage>(); });
  EXPECT_TRUE(all_agree(run.outputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseKingByzantine,
                         ::testing::Values(4, 7, 10, 13, 16));

TEST(PhaseKingBinary, RoundCountIsThreePerPhase) {
  const int n = 7;
  const int t = 2;
  const PhaseKingBinary ba;
  auto run = run_parties<bool>(
      n, t, [&](net::PartyContext& ctx, int id) { return ba.run(ctx, id % 2); });
  EXPECT_EQ(run.stats.rounds, 3u * static_cast<std::size_t>(t + 1));
}

TEST(PhaseKingBinary, QuadraticMessagesPerPhase) {
  const int n = 10;
  const int t = 3;
  const PhaseKingBinary ba;
  auto run = run_parties<bool>(
      n, t, [&](net::PartyContext& ctx, int) { return ba.run(ctx, true); });
  // Two universal exchanges (n msgs each per party) + king broadcasts.
  const std::uint64_t exchanges = 2ull * n * n * (t + 1);
  EXPECT_GE(run.stats.honest_messages, exchanges);
  EXPECT_LE(run.stats.honest_messages, exchanges + 1ull * n * (t + 1));
}

class PhaseKingMultiSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhaseKingMultiSweep, ValidityAllSame) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingMultivalued ba;
  const MaybeBytes input = Bytes{0xDE, 0xAD, 0xBE, 0xEF};
  auto run = run_parties<MaybeBytes>(
      n, t, [&](net::PartyContext& ctx, int) { return ba.run(ctx, input); });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, input);
}

TEST_P(PhaseKingMultiSweep, ValidityAllBottom) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingMultivalued ba;
  auto run = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int) {
    return ba.run(ctx, std::nullopt);
  });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, MaybeBytes{});
}

TEST_P(PhaseKingMultiSweep, AgreementDistinctValuesUnderReplay) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingMultivalued ba;
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return ba.run(ctx, Bytes{static_cast<std::uint8_t>(id)});
      },
      byz, [](int) { return std::make_shared<adv::Replay>(); });
  EXPECT_TRUE(all_agree(run.outputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseKingMultiSweep,
                         ::testing::Values(4, 7, 10, 13));

TEST(PhaseKingMultivalued, ValidityUnderEquivocatingKing) {
  // Corrupt the first t kings with a strategy that echoes different values
  // to different parties; persistence of pre-agreement must hold anyway.
  const int n = 7;
  const int t = 2;
  const PhaseKingMultivalued ba;
  const MaybeBytes input = Bytes{0x11, 0x22};
  auto run = run_parties<MaybeBytes>(
      n, t, [&](net::PartyContext& ctx, int) { return ba.run(ctx, input); },
      {0, 1}, [](int) { return std::make_shared<adv::Replay>(); });
  for (std::size_t id = 2; id < run.outputs.size(); ++id) {
    EXPECT_EQ(*run.outputs[id], input);
  }
}

}  // namespace
}  // namespace coca::ba
