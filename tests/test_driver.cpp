// Simulation driver and its property checkers.
#include "ca/driver.h"

#include <gtest/gtest.h>

namespace coca::ca {
namespace {

TEST(SimResult, AgreementChecker) {
  SimResult r;
  r.outputs = {BigInt(5), std::nullopt, BigInt(5)};
  EXPECT_TRUE(r.agreement());
  r.outputs[2] = BigInt(6);
  EXPECT_FALSE(r.agreement());
  r.outputs = {std::nullopt, std::nullopt};
  EXPECT_TRUE(r.agreement());  // vacuous
}

TEST(SimResult, ConvexValidityChecker) {
  SimResult r;
  r.outputs = {BigInt(5), std::nullopt, BigInt(7)};
  const std::vector<BigInt> inputs{BigInt(4), BigInt(-100), BigInt(8)};
  EXPECT_TRUE(r.convex_validity(inputs));  // byz input -100 excluded
  r.outputs[0] = BigInt(3);                // below honest min 4
  EXPECT_FALSE(r.convex_validity(inputs));
  r.outputs = {BigInt(4), std::nullopt, BigInt(8)};  // endpoints allowed
  EXPECT_TRUE(r.convex_validity(inputs));
}

TEST(Driver, RejectsBadConfigs) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(1), BigInt(2)};  // wrong size
  EXPECT_THROW(run_simulation(proto, cfg), Error);

  cfg.inputs = {BigInt(1), BigInt(2), BigInt(3), BigInt(4)};
  cfg.corruptions = {{7, adv::Kind::kSilent}};  // out of range
  EXPECT_THROW(run_simulation(proto, cfg), Error);

  cfg.corruptions = {{1, adv::Kind::kSilent}, {1, adv::Kind::kGarbage}};
  EXPECT_THROW(run_simulation(proto, cfg), Error);  // duplicate corruption
}

TEST(Driver, OutputsEngagedExactlyForHonest) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(1), BigInt(2), BigInt(3), BigInt(4)};
  cfg.corruptions = {{2, adv::Kind::kSilent}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.outputs[0].has_value());
  EXPECT_TRUE(r.outputs[1].has_value());
  EXPECT_FALSE(r.outputs[2].has_value());
  EXPECT_TRUE(r.outputs[3].has_value());
}

TEST(Driver, StatsArePopulated) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(10), BigInt(11), BigInt(12), BigInt(13)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_GT(r.stats.rounds, 0u);
  EXPECT_GT(r.stats.honest_bits(), 0u);
  EXPECT_EQ(r.stats.bytes_by_party.size(), 4u);
  EXPECT_FALSE(r.stats.honest_bytes_by_phase.empty());
  EXPECT_TRUE(r.stats.honest_bytes_by_phase.contains("PiZ"));
}

TEST(Driver, DeterministicAcrossRuns) {
  // Same config => bit-identical outputs and costs (protocols are
  // deterministic; the simulator is deterministic by construction).
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  for (int i = 0; i < 7; ++i) cfg.inputs.emplace_back(1000 + 17 * i);
  cfg.corruptions = {{1, adv::Kind::kGarbage}, {4, adv::Kind::kSplitBrain}};
  const SimResult a = run_simulation(proto, cfg);
  const SimResult b = run_simulation(proto, cfg);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.stats.honest_bytes, b.stats.honest_bytes);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Driver, MaxRoundsIsRespected) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(1), BigInt(2), BigInt(3), BigInt(4)};
  cfg.max_rounds = 3;  // far too few for PiZ
  EXPECT_THROW(run_simulation(proto, cfg), Error);
}

}  // namespace
}  // namespace coca::ca
