// HighCostCA (Appendix A.4, Theorem 3): trusted intervals + king phases.
#include "ca/high_cost_ca.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

::testing::AssertionResult in_range(
    const std::vector<std::optional<BigNat>>& outputs,
    const std::vector<BigNat>& inputs_by_id) {
  std::optional<BigNat> lo, hi;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;
    const BigNat& in = inputs_by_id[id];
    if (!lo || in < *lo) lo = in;
    if (!hi || in > *hi) hi = in;
  }
  for (const auto& out : outputs) {
    if (out && (*out < *lo || *out > *hi)) {
      return ::testing::AssertionFailure()
             << "output " << out->to_decimal() << " outside ["
             << lo->to_decimal() << ", " << hi->to_decimal() << "]";
    }
  }
  return ::testing::AssertionSuccess();
}

class HighCostSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HighCostSweep, AgreementAndValidityRandomInputs) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const HighCostCA ca;
  Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(rng.below(1000)));
  auto run = run_parties<BigNat>(n, t, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  EXPECT_TRUE(all_agree(run.outputs));
  EXPECT_TRUE(in_range(run.outputs, inputs));
}

TEST_P(HighCostSweep, AgreementAndValidityUnderAdversaries) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const HighCostCA ca;
  Rng rng(static_cast<std::uint64_t>(seed) * 77 + n);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(500 + rng.below(100)));
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);  // corrupt the first t kings
  auto run = run_parties<BigNat>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return ca.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      byz, [&](int id) -> std::shared_ptr<net::ByzantineStrategy> {
        switch (id % 3) {
          case 0:
            return std::make_shared<adv::Garbage>();
          case 1:
            return std::make_shared<adv::Replay>();
          default:
            return std::make_shared<adv::Silent>();
        }
      });
  EXPECT_TRUE(all_agree(run.outputs));
  EXPECT_TRUE(in_range(run.outputs, inputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HighCostSweep,
                         ::testing::Combine(::testing::Values(4, 7, 10, 13),
                                            ::testing::Values(1, 2, 3)));

TEST(HighCostCA, IdenticalInputsStayPut) {
  const int n = 7;
  const HighCostCA ca;
  auto run = run_parties<BigNat>(n, 2, [&](net::PartyContext& ctx, int) {
    return ca.run(ctx, BigNat(42));
  });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, BigNat(42));
}

TEST(HighCostCA, ByzantineExtremesCannotDragOutput) {
  // t parties report values far outside the honest cluster; the trusted
  // intervals must exclude them.
  const int n = 10;
  const int t = 3;
  const HighCostCA ca;
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(1000 + i));
  class Extremist final : public net::ByzantineStrategy {
   public:
    void on_round(const net::RoundView& view,
                  const std::function<void(int, Bytes)>& send) override {
      Writer w;
      w.bignat(BigNat::pow2(400));  // enormous value, every round
      const Bytes payload = std::move(w).take();
      for (int to = 0; to < view.n; ++to) send(to, payload);
    }
  };
  auto run = run_parties<BigNat>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return ca.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      {7, 8, 9}, [](int) { return std::make_shared<Extremist>(); });
  EXPECT_TRUE(all_agree(run.outputs));
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_GE(*out, BigNat(1000));
      EXPECT_LE(*out, BigNat(1006));  // honest ids 0..6
    }
  }
}

TEST(HighCostCA, BigValuesWork) {
  const int n = 4;
  const HighCostCA ca;
  const BigNat base = BigNat::pow2(300);
  std::vector<BigNat> inputs{base, base + BigNat(5), base + BigNat(2),
                             base + BigNat(9)};
  auto run = run_parties<BigNat>(n, 1, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  EXPECT_TRUE(all_agree(run.outputs));
  EXPECT_GE(*run.outputs[0], base);
  EXPECT_LE(*run.outputs[0], base + BigNat(9));
}

TEST(HighCostCA, RoundsLinearInT) {
  const HighCostCA ca;
  const auto rounds_for = [&](int n, int t) {
    auto run = run_parties<BigNat>(n, t, [&](net::PartyContext& ctx, int id) {
      return ca.run(ctx, BigNat(static_cast<std::uint64_t>(id)));
    });
    return run.stats.rounds;
  };
  // Setup (2 rounds) + 4 rounds per king phase.
  EXPECT_EQ(rounds_for(4, 1), 2u + 4u * 2u);
  EXPECT_EQ(rounds_for(7, 2), 2u + 4u * 3u);
  EXPECT_EQ(rounds_for(10, 3), 2u + 4u * 4u);
}

TEST(HighCostCA, CommunicationCubicInN) {
  const HighCostCA ca;
  const auto bytes_for = [&](int n) {
    auto run = run_parties<BigNat>(
        n, max_t(n), [&](net::PartyContext& ctx, int id) {
          return ca.run(ctx, BigNat(100 + static_cast<std::uint64_t>(id)));
        });
    return run.stats.honest_bytes;
  };
  // Doubling n with t ~ n/3 should scale bytes by roughly 2^3 = 8 (within
  // generous slack: message framing adds lower-order terms).
  const double ratio =
      static_cast<double>(bytes_for(16)) / static_cast<double>(bytes_for(8));
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 12.0);
}

}  // namespace
}  // namespace coca::ca
