// SHA-256 against FIPS 180-4 / NIST CAVP vectors.
#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace coca::crypto {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes data(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64 bytes hit the padding edge cases.
  EXPECT_EQ(to_hex(sha256(Bytes(55, 0))),
            "02779466cdec163811d078815c633f21901413081449002f24aa3e80f0b88ef7");
  EXPECT_EQ(to_hex(sha256(Bytes(56, 0))),
            "d4817aa5497628e7c77e6b606107042bbba3130888c5f47a375e6179be789fbb");
  EXPECT_EQ(to_hex(sha256(Bytes(64, 0))),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = ascii("the quick brown fox jumps over the lazy dog");
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Sha256 ctx;
    ctx.update(std::span<const std::uint8_t>(data.data(), cut));
    ctx.update(std::span<const std::uint8_t>(data.data() + cut,
                                             data.size() - cut));
    EXPECT_EQ(ctx.finish(), sha256(data)) << "cut=" << cut;
  }
}

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(ascii("abc"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(ascii("abc"));
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  // Smoke-level collision check over small structured inputs.
  std::set<Digest> seen;
  for (int i = 0; i < 2000; ++i) {
    Bytes m{static_cast<std::uint8_t>(i & 0xFF),
            static_cast<std::uint8_t>(i >> 8)};
    EXPECT_TRUE(seen.insert(sha256(m)).second) << i;
  }
}

}  // namespace
}  // namespace coca::crypto
