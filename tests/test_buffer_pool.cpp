// net::BufferPool (net/buffer_pool.h): size-class routing, slab reuse,
// cross-thread release, and the stats the CI zero-copy gate samples.
//
// The pool is a process-wide singleton with monotonic counters, so every
// test snapshots stats up front and asserts on deltas, and calls trim()
// to start from an empty cache.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/buffer_pool.h"
#include "net/payload.h"

namespace coca::net {
namespace {

TEST(BufferPool, ClassSizeRoutesToSmallestHoldingClass) {
  EXPECT_EQ(BufferPool::class_size(1), BufferPool::kMinSlab);
  EXPECT_EQ(BufferPool::class_size(BufferPool::kMinSlab),
            BufferPool::kMinSlab);
  EXPECT_EQ(BufferPool::class_size(BufferPool::kMinSlab + 1),
            BufferPool::kMinSlab * 4);
  EXPECT_EQ(BufferPool::class_size(100 << 10), std::size_t{256} << 10);
  EXPECT_EQ(BufferPool::class_size(BufferPool::kMaxSlab),
            BufferPool::kMaxSlab);
  // Above the largest class: exact size, unpooled.
  EXPECT_EQ(BufferPool::class_size(BufferPool::kMaxSlab + 1),
            BufferPool::kMaxSlab + 1);
}

TEST(BufferPool, AcquireReturnsFullClassCapacity) {
  auto slab = BufferPool::instance().acquire(100);
  ASSERT_TRUE(slab);
  EXPECT_EQ(slab->size(), BufferPool::kMinSlab);
  auto big = BufferPool::instance().acquire((64 << 10) + 1);
  EXPECT_EQ(big->size(), std::size_t{256} << 10);
}

TEST(BufferPool, SlabIsReusedAfterRelease) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  auto slab = pool.acquire(1000);
  const Bytes* raw = slab.get();
  const auto before = pool.stats();
  slab.reset();  // last reference: returns to the 4 KiB free list
  EXPECT_EQ(pool.free_slabs(), 1u);
  auto again = pool.acquire(1000);
  EXPECT_EQ(again.get(), raw);
  const auto after = pool.stats();
  EXPECT_EQ(after.slab_reuses, before.slab_reuses + 1);
  EXPECT_EQ(after.slab_allocs, before.slab_allocs);
}

TEST(BufferPool, DistinctClassesDoNotShareFreeLists) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  auto small = pool.acquire(100);
  small.reset();
  ASSERT_EQ(pool.free_slabs(), 1u);
  const auto before = pool.stats();
  // A 16 KiB request must not be served by the cached 4 KiB slab.
  auto larger = pool.acquire(BufferPool::kMinSlab + 1);
  EXPECT_EQ(larger->size(), BufferPool::kMinSlab * 4);
  const auto after = pool.stats();
  EXPECT_EQ(after.slab_allocs, before.slab_allocs + 1);
  EXPECT_EQ(pool.free_slabs(), 1u);  // the 4 KiB slab is still cached
}

TEST(BufferPool, OversizeSlabsAreExactAndNotCached) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  const std::size_t want = BufferPool::kMaxSlab + 1;
  const auto before = pool.stats();
  auto slab = pool.acquire(want);
  EXPECT_EQ(slab->size(), want);
  const auto mid = pool.stats();
  EXPECT_EQ(mid.oversize_allocs, before.oversize_allocs + 1);
  slab.reset();
  EXPECT_EQ(pool.free_slabs(), 0u);  // freed outright, never cached
  const auto after = pool.stats();
  EXPECT_EQ(after.slab_releases, mid.slab_releases + 1);
}

TEST(BufferPool, PayloadViewKeepsSlabAliveUntilLastViewDrops) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  auto slab = pool.acquire(4096);
  (*slab)[10] = 0x5A;
  Payload view(slab, 10, 1);
  Payload copy = view;  // refcount bump, no byte copy
  slab.reset();
  EXPECT_EQ(pool.free_slabs(), 0u) << "views must pin the slab";
  EXPECT_EQ(view[0], 0x5A);
  view = Payload();
  EXPECT_EQ(pool.free_slabs(), 0u) << "one view still alive";
  copy = Payload();
  EXPECT_EQ(pool.free_slabs(), 1u) << "last view returns the slab";
}

TEST(BufferPool, CrossThreadReleaseReturnsSlabToPool) {
  // The wire path's routine handoff: the epoll thread acquires a slab, the
  // client's reader thread (or the protocol thread consuming views) drops
  // the last reference. The wire-smoke TSan job runs this same binary.
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  constexpr int kRounds = 64;
  const auto before = pool.stats();
  for (int r = 0; r < kRounds; ++r) {
    auto slab = pool.acquire(2000);
    Payload view(slab, 0, 16);
    slab.reset();
    std::thread consumer([v = std::move(view)]() mutable {
      EXPECT_EQ(v.size(), 16u);
      v = Payload();  // last reference dropped off-thread
    });
    consumer.join();
    EXPECT_EQ(pool.free_slabs(), 1u);
  }
  const auto after = pool.stats();
  // One fresh slab on the first round, reuse ever after.
  EXPECT_EQ(after.slab_allocs, before.slab_allocs + 1);
  EXPECT_EQ(after.slab_reuses, before.slab_reuses + kRounds - 1);
}

TEST(BufferPool, StatsCountersAreMonotonic) {
  BufferPool& pool = BufferPool::instance();
  const auto before = pool.stats();
  auto a = pool.acquire(1);
  auto b = pool.acquire(BufferPool::kMaxSlab);
  a.reset();
  b.reset();
  const auto after = pool.stats();
  EXPECT_GE(after.slab_allocs, before.slab_allocs);
  EXPECT_GE(after.slab_reuses, before.slab_reuses);
  EXPECT_EQ(after.slab_releases, before.slab_releases + 2);
  EXPECT_GE(after.bytes_allocated, before.bytes_allocated);
}

TEST(BufferPool, TrimDropsEveryCachedSlab) {
  BufferPool& pool = BufferPool::instance();
  std::vector<std::shared_ptr<Bytes>> slabs;
  for (int i = 0; i < 4; ++i) slabs.push_back(pool.acquire(512));
  slabs.clear();
  EXPECT_GT(pool.free_slabs(), 0u);
  pool.trim();
  EXPECT_EQ(pool.free_slabs(), 0u);
}

}  // namespace
}  // namespace coca::net
