// Transcript equivalence of the instance-sharded engine (engine::Engine).
//
// The contract under test is the engine's headline invariant: sharding K
// concurrent instances over a worker pool is a pure wall-clock knob. For
// every protocol target, each instance's canonical transcript, RunStats
// (honest bytes/messages/rounds, per-party bytes, leaf-charged
// phase_breakdown), and oracle verdict must be bit-identical to the same
// (protocol, n, ell, seed) case run alone on a single SyncNetwork -- and
// identical across worker counts {1, 2, 8}. Cross-instance aggregates
// (honest bytes by round, folded metrics) must likewise not depend on the
// worker count.
//
// The per-protocol mix deliberately varies instance shapes (n, ell, seeds),
// includes byzantine instances (mutator-wrapped corrupted parties) and one
// crash-recovery fault instance, so the merge order is exercised by lanes
// that finish at very different times.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace coca {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 8};
constexpr std::size_t kInstances = 16;

/// K mixed instances of one protocol: mostly n=4 with a couple of n=7
/// shapes, ells straddling word boundaries, distinct seeds, two byzantine
/// instances and one crash-recovery instance.
std::vector<adv::FuzzCase> mixed_cases(const std::string& protocol) {
  std::vector<adv::FuzzCase> cases;
  constexpr std::size_t kElls[] = {8, 16, 33};
  for (std::size_t i = 0; i < kInstances; ++i) {
    adv::FuzzCase c;
    c.protocol = protocol;
    // Instances 5 and 13 are the larger shape; everything else is minimal.
    const bool big = (i == 5 || i == 13);
    c.n = big ? 7 : 4;
    c.t = (c.n - 1) / 3;
    c.ell = big ? 8 : kElls[i % std::size(kElls)];
    c.input_seed = 0xE11E000ULL + i;
    c.threads = 1;
    if (i == 3 || i == 11) {
      // Byzantine instance: one corrupted party under the default mix.
      c.corrupted = {static_cast<int>(i) % c.n};
      c.mutation.seed = 0xBAD5EEDULL + i;
    } else if (i == 7) {
      // Environment-fault instance: crash-recovery of party 2, rounds 2-4.
      net::FaultPlan::Crash crash;
      crash.party = 2;
      crash.from_round = 2;
      crash.until_round = 4;
      c.faults.crashes.push_back(crash);
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

struct Solo {
  adv::FuzzOutcome outcome;
  net::Transcript transcript;
};

std::vector<Solo> solo_baselines(const std::vector<adv::FuzzCase>& cases) {
  std::vector<Solo> solos(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    solos[i].outcome = adv::execute_case(cases[i], &solos[i].transcript);
  }
  return solos;
}

void expect_instance_equivalent(const Solo& solo,
                                const engine::InstanceResult& sharded) {
  const net::RunStats& a = solo.outcome.stats;
  const net::RunStats& b = sharded.outcome.stats;
  EXPECT_EQ(a.honest_bytes, b.honest_bytes);
  EXPECT_EQ(a.honest_messages, b.honest_messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_by_party, b.bytes_by_party);
  EXPECT_EQ(a.phase_breakdown, b.phase_breakdown);
  EXPECT_EQ(a.honest_bytes_by_phase, b.honest_bytes_by_phase);
  EXPECT_EQ(solo.outcome.verdict.violations,
            sharded.outcome.verdict.violations);
  EXPECT_EQ(solo.outcome.terminated, sharded.outcome.terminated);
  EXPECT_TRUE(solo.transcript == sharded.transcript)
      << "transcript differs from the solo SyncNetwork run";
  // Every delivered round was streamed live over the instance's lane.
  EXPECT_EQ(sharded.rounds_streamed, b.rounds);
}

void sweep_protocol(const std::string& protocol) {
  const std::vector<adv::FuzzCase> cases = mixed_cases(protocol);
  const std::vector<Solo> solos = solo_baselines(cases);
  std::vector<std::uint64_t> bytes_by_round_ref;
  std::map<std::string, std::uint64_t, std::less<>> counters_ref;
  for (const int workers : kWorkerCounts) {
    SCOPED_TRACE(::testing::Message()
                 << "protocol=" << protocol << " workers=" << workers);
    engine::EngineOptions opt;
    opt.workers = workers;
    opt.trace = true;
    const engine::EngineReport report = engine::Engine(opt).run(cases);
    ASSERT_EQ(report.instances.size(), cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "instance=" << i);
      expect_instance_equivalent(solos[i], report.instances[i]);
    }
    // Cross-instance aggregates are worker-count independent.
    if (workers == kWorkerCounts[0]) {
      bytes_by_round_ref = report.honest_bytes_by_round;
      counters_ref = report.metrics.counters();
    } else {
      EXPECT_EQ(report.honest_bytes_by_round, bytes_by_round_ref);
      EXPECT_EQ(report.metrics.counters(), counters_ref);
    }
  }
}

TEST(EngineEquivalence, FixedLengthCA) { sweep_protocol("FixedLengthCA"); }
TEST(EngineEquivalence, FindPrefix) { sweep_protocol("FindPrefix"); }
TEST(EngineEquivalence, BAPlus) { sweep_protocol("BAPlus"); }
TEST(EngineEquivalence, LongBAPlus) { sweep_protocol("LongBAPlus"); }
TEST(EngineEquivalence, PiN) { sweep_protocol("PiN"); }
TEST(EngineEquivalence, PiZ) { sweep_protocol("PiZ"); }
TEST(EngineEquivalence, HighCostCA) { sweep_protocol("HighCostCA"); }
TEST(EngineEquivalence, BroadcastTrimCA) { sweep_protocol("BroadcastTrimCA"); }

TEST(EngineEquivalence, CrossProtocolMix) {
  // One engine run multiplexing every protocol target at once: two
  // instances per protocol, compared against solos at workers 2 and 8.
  std::vector<adv::FuzzCase> cases;
  for (const std::string& protocol : adv::known_protocols()) {
    for (const std::uint64_t seed : {1u, 2u}) {
      adv::FuzzCase c;
      c.protocol = protocol;
      c.n = 4;
      c.t = 1;
      c.ell = 16;
      c.input_seed = 0xA11ULL + seed;
      c.threads = 1;
      cases.push_back(std::move(c));
    }
  }
  const std::vector<Solo> solos = solo_baselines(cases);
  for (const int workers : {2, 8}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    engine::EngineOptions opt;
    opt.workers = workers;
    const engine::EngineReport report = engine::Engine(opt).run(cases);
    ASSERT_EQ(report.instances.size(), cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "instance=" << i);
      expect_instance_equivalent(solos[i], report.instances[i]);
    }
  }
}

TEST(EngineEquivalence, TinyLanesForceBackpressure) {
  // Capacity-1 lanes: every producer push blocks until the collector
  // drains, exercising the full/yield path without changing any result.
  std::vector<adv::FuzzCase> cases;
  for (const std::uint64_t seed : {10u, 20u, 30u, 40u}) {
    adv::FuzzCase c;
    c.protocol = "BAPlus";
    c.n = 4;
    c.t = 1;
    c.ell = 16;
    c.input_seed = seed;
    c.threads = 1;
    cases.push_back(std::move(c));
  }
  const std::vector<Solo> solos = solo_baselines(cases);
  engine::EngineOptions opt;
  opt.workers = 4;
  opt.lane_capacity = 1;
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance=" << i);
    expect_instance_equivalent(solos[i], report.instances[i]);
  }
}

TEST(EngineEquivalence, AggregatesSumOverInstances) {
  const std::vector<adv::FuzzCase> cases = mixed_cases("PiZ");
  engine::EngineOptions opt;
  opt.workers = 2;
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  for (const engine::InstanceResult& res : report.instances) {
    bytes += res.outcome.stats.honest_bytes;
    messages += res.outcome.stats.honest_messages;
    rounds += res.outcome.stats.rounds;
  }
  EXPECT_EQ(report.honest_bytes, bytes);
  EXPECT_EQ(report.honest_messages, messages);
  EXPECT_EQ(report.rounds, rounds);
  // The streamed per-round fold covers every delivered round's bytes; the
  // trailing leftover flush (transcript-only) is the one part of
  // honest_bytes it may miss.
  std::uint64_t streamed = 0;
  for (const std::uint64_t b : report.honest_bytes_by_round) streamed += b;
  EXPECT_LE(streamed, bytes);
  EXPECT_GT(streamed, 0u);
}

TEST(EngineEquivalence, MalformedCaseThrowsBeforeAnyWork) {
  std::vector<adv::FuzzCase> cases(2);
  cases[0].protocol = "PiZ";
  cases[1].protocol = "NoSuchProtocol";
  engine::Engine eng(engine::EngineOptions{});
  EXPECT_THROW(eng.run(cases), Error);
}

}  // namespace
}  // namespace coca
