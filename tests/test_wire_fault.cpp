// WireFaultPlan (svc/wire_fault.h): schema validation, JSON round trip,
// one-shot fuse semantics, site mapping, and sampler determinism.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/wire_fault.h"

namespace coca::svc {
namespace {

using Kind = WireFaultPlan::Kind;

const std::vector<Kind> kAllKinds = {
    Kind::kKillBeforeFlush, Kind::kKillAfterFlush,  Kind::kDelayFlush,
    Kind::kStallRead,       Kind::kTruncateFrame,   Kind::kClientKill,
    Kind::kClientPartialWrite,
};

WireFaultPlan::Entry entry(Kind k, std::int32_t session, std::uint32_t round) {
  WireFaultPlan::Entry e;
  e.kind = k;
  e.session = session;
  e.round = round;
  if (k == Kind::kDelayFlush || k == Kind::kStallRead) e.delay_ms = 5;
  if (k == Kind::kTruncateFrame || k == Kind::kClientPartialWrite) {
    e.truncate_bytes = 17;
  }
  return e;
}

TEST(WireFault, KindStringsRoundTrip) {
  for (const Kind k : kAllKinds) {
    const auto back = wire_fault_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(wire_fault_kind_from_string("nope").has_value());
  EXPECT_FALSE(wire_fault_kind_from_string("").has_value());
}

TEST(WireFault, SiteMapping) {
  EXPECT_TRUE(daemon_site(Kind::kKillBeforeFlush));
  EXPECT_TRUE(daemon_site(Kind::kKillAfterFlush));
  EXPECT_TRUE(daemon_site(Kind::kDelayFlush));
  EXPECT_TRUE(daemon_site(Kind::kStallRead));
  EXPECT_TRUE(daemon_site(Kind::kTruncateFrame));
  EXPECT_FALSE(daemon_site(Kind::kClientKill));
  EXPECT_FALSE(daemon_site(Kind::kClientPartialWrite));

  WireFaultPlan plan;
  EXPECT_FALSE(plan.has_daemon_site());
  EXPECT_FALSE(plan.has_client_site());
  plan.entries.push_back(entry(Kind::kClientKill, -1, 0));
  EXPECT_FALSE(plan.has_daemon_site());
  EXPECT_TRUE(plan.has_client_site());
  plan.entries.push_back(entry(Kind::kStallRead, -1, 1));
  EXPECT_TRUE(plan.has_daemon_site());
}

TEST(WireFault, ValidateRejectsMalformedEntries) {
  const auto must_throw = [](WireFaultPlan::Entry e) {
    WireFaultPlan plan;
    plan.entries.push_back(e);
    EXPECT_THROW(plan.validate(), Error);
  };
  {  // unknown kind byte
    WireFaultPlan::Entry e;
    e.kind = static_cast<Kind>(200);
    must_throw(e);
  }
  {  // session below -1
    auto e = entry(Kind::kKillBeforeFlush, -2, 0);
    must_throw(e);
  }
  {  // stall with zero delay
    auto e = entry(Kind::kStallRead, -1, 0);
    e.delay_ms = 0;
    must_throw(e);
  }
  {  // stall beyond the cap
    auto e = entry(Kind::kDelayFlush, -1, 0);
    e.delay_ms = 60'000;
    must_throw(e);
  }
  {  // delay on a non-stall kind
    auto e = entry(Kind::kKillAfterFlush, -1, 0);
    e.delay_ms = 10;
    must_throw(e);
  }
  {  // truncate bytes on a non-truncating kind
    auto e = entry(Kind::kClientKill, -1, 0);
    e.truncate_bytes = 3;
    must_throw(e);
  }
  // And a fully-populated valid plan passes.
  WireFaultPlan ok;
  for (const Kind k : kAllKinds) ok.entries.push_back(entry(k, -1, 3));
  EXPECT_NO_THROW(ok.validate());
}

TEST(WireFault, JsonRoundTripsEveryKind) {
  WireFaultPlan plan;
  std::uint32_t round = 0;
  for (const Kind k : kAllKinds) {
    plan.entries.push_back(entry(k, (round % 2 == 0) ? -1 : 2, round));
    ++round;
  }
  const std::string json = to_json(plan);
  EXPECT_NE(json.find("coca-wirefault-v1"), std::string::npos);
  const WireFaultPlan back = wire_fault_plan_from_json(json);
  EXPECT_EQ(back, plan);

  // Empty plan round-trips too.
  EXPECT_EQ(wire_fault_plan_from_json(to_json(WireFaultPlan{})),
            WireFaultPlan{});
}

TEST(WireFault, JsonRejectsMalformedInput) {
  EXPECT_THROW(wire_fault_plan_from_json("{}"), Error);  // no schema
  EXPECT_THROW(wire_fault_plan_from_json(
                   R"({"schema": "coca-wirefault-v2", "entries": []})"),
               Error);
  EXPECT_THROW(wire_fault_plan_from_json(
                   R"({"schema": "coca-wirefault-v1", "bogus": 1})"),
               Error);
  EXPECT_THROW(
      wire_fault_plan_from_json(
          R"({"schema": "coca-wirefault-v1",
              "entries": [{"kind": "made_up", "round": 0}]})"),
      Error);
  // Entries are validated after parse: a structurally fine but semantically
  // bad plan (zero-length stall) is rejected too.
  EXPECT_THROW(
      wire_fault_plan_from_json(
          R"({"schema": "coca-wirefault-v1",
              "entries": [{"kind": "stall_read", "round": 0}]})"),
      Error);
}

TEST(WireFault, FuseFiresEachEntryExactlyOnce) {
  WireFaultPlan plan;
  plan.entries.push_back(entry(Kind::kKillBeforeFlush, -1, 3));
  plan.entries.push_back(entry(Kind::kKillBeforeFlush, -1, 3));  // twin
  plan.entries.push_back(entry(Kind::kKillAfterFlush, 1, 5));
  WireFaultFuse fuse(plan);

  // Wrong kind / round / ordinal: no firing.
  EXPECT_EQ(fuse.take(plan, Kind::kKillAfterFlush, 0, 3), -1);
  EXPECT_EQ(fuse.take(plan, Kind::kKillBeforeFlush, 0, 4), -1);
  EXPECT_EQ(fuse.take(plan, Kind::kKillAfterFlush, 0, 5), -1);  // ordinal 1

  // Twin entries burn in order, then the kind is spent at that round.
  EXPECT_EQ(fuse.take(plan, Kind::kKillBeforeFlush, 0, 3), 0);
  EXPECT_EQ(fuse.take(plan, Kind::kKillBeforeFlush, 7, 3), 1);
  EXPECT_EQ(fuse.take(plan, Kind::kKillBeforeFlush, 0, 3), -1);

  // Pinned ordinal matches only itself.
  EXPECT_EQ(fuse.take(plan, Kind::kKillAfterFlush, 1, 5), 2);
  EXPECT_EQ(fuse.take(plan, Kind::kKillAfterFlush, 1, 5), -1);

  // A fuse built for a different plan is a programming error.
  WireFaultFuse wrong;
  EXPECT_THROW(wrong.take(plan, Kind::kKillBeforeFlush, 0, 3), Error);
}

TEST(WireFault, SamplerIsDeterministicAndValid) {
  WireFaultSampleConfig cfg;
  cfg.seed = 42;
  cfg.horizon = 9;
  cfg.max_entries = 5;
  const WireFaultPlan a = sample_wire_fault_plan(cfg);
  const WireFaultPlan b = sample_wire_fault_plan(cfg);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_NO_THROW(a.validate());
  for (const auto& e : a.entries) {
    EXPECT_LT(e.round, cfg.horizon);
    EXPECT_EQ(e.session, -1);
  }
  cfg.seed = 43;
  EXPECT_NE(sample_wire_fault_plan(cfg), a);  // the stream actually moves

  // Kind gates hold.
  cfg.allow_kill = false;
  cfg.allow_truncate = false;
  const WireFaultPlan stalls = sample_wire_fault_plan(cfg);
  for (const auto& e : stalls.entries) {
    EXPECT_TRUE(e.kind == Kind::kDelayFlush || e.kind == Kind::kStallRead);
  }
  cfg.allow_stall = false;
  EXPECT_TRUE(sample_wire_fault_plan(cfg).empty());
}

}  // namespace
}  // namespace coca::svc
