// Gradecast: the three graded-broadcast guarantees, single and batched.
#include "ba/gradecast.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "tests/support.h"

namespace coca::ba {
namespace {

using test::max_t;
using test::run_parties;

class GradecastSweep : public ::testing::TestWithParam<int> {};

TEST_P(GradecastSweep, HonestLeaderGetsGradeTwoEverywhere) {
  const int n = GetParam();
  const int t = max_t(n);
  const Bytes value{0xCA, 0xFE, 0x01};
  for (const int leader : {0, n / 2, n - 1}) {
    auto run = run_parties<GradedValue>(
        n, t, [&](net::PartyContext& ctx, int id) {
          return gradecast(ctx, leader,
                           id == leader ? std::optional<Bytes>(value)
                                        : std::nullopt);
        });
    for (const auto& out : run.outputs) {
      EXPECT_EQ(out->grade, 2);
      EXPECT_EQ(*out->value, value);
    }
  }
}

TEST_P(GradecastSweep, HonestLeaderSurvivesByzantineEchoers) {
  const int n = GetParam();
  const int t = max_t(n);
  if (t == 0) GTEST_SKIP() << "needs a corruption budget";
  const Bytes value{0x42};
  const int leader = n - 1;  // corrupt early parties, keep the leader honest
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<GradedValue>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return gradecast(ctx, leader,
                         id == leader ? std::optional<Bytes>(value)
                                      : std::nullopt);
      },
      byz, [](int) { return std::make_shared<adv::Replay>(); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    EXPECT_EQ(out->grade, 2);
    EXPECT_EQ(*out->value, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GradecastSweep,
                         ::testing::Values(4, 7, 10, 13));

TEST(Gradecast, ByzantineLeaderGradesAreConsistent) {
  // Whatever the corrupted leader does: grades differ by at most one, and
  // all grade >= 1 parties hold the same value.
  const int n = 7;
  const int t = 2;
  for (std::uint64_t variant = 0; variant < 6; ++variant) {
    auto run = run_parties<GradedValue>(
        n, t,
        [&](net::PartyContext& ctx, int) {
          return gradecast(ctx, /*leader=*/0, std::nullopt);
        },
        {0},
        [&](int) -> std::shared_ptr<net::ByzantineStrategy> {
          switch (variant % 3) {
            case 0:
              return std::make_shared<adv::Garbage>();
            case 1:
              return std::make_shared<adv::Silent>();
            default:
              return std::make_shared<adv::Replay>();
          }
        });
    int min_grade = 2, max_grade = 0;
    const Bytes* value = nullptr;
    for (const auto& out : run.outputs) {
      if (!out) continue;
      min_grade = std::min(min_grade, out->grade);
      max_grade = std::max(max_grade, out->grade);
      if (out->grade >= 1) {
        if (value == nullptr) {
          value = &*out->value;
        } else {
          EXPECT_EQ(*out->value, *value);
        }
      }
    }
    EXPECT_LE(max_grade - min_grade, 1) << "variant " << variant;
  }
}

TEST(Gradecast, SplitBrainLeaderCannotGetTwoGradeTwos) {
  // The leader equivocates between two values; no two honest parties may
  // end grade >= 1 with different values.
  const int n = 7;
  const int t = 2;
  net::SyncNetwork net(n, t);
  std::vector<std::optional<GradedValue>> outputs(n);
  const auto leader_half = [&](Bytes v) {
    return [v = std::move(v)](net::PartyContext& ctx) {
      (void)gradecast(ctx, 6, v);
    };
  };
  net.set_split_brain(6, leader_half(Bytes{0xAA}), leader_half(Bytes{0xBB}),
                      {0, 1, 2});
  net.set_byzantine(5, std::make_shared<adv::Replay>());
  for (int id = 0; id < 5; ++id) {
    net.set_honest(id, [&outputs, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          gradecast(ctx, 6, std::nullopt);
    });
  }
  (void)net.run();
  const Bytes* value = nullptr;
  for (const auto& out : outputs) {
    if (!out || out->grade < 1) continue;
    if (value == nullptr) {
      value = &*out->value;
    } else {
      EXPECT_EQ(*out->value, *value);
    }
  }
}

TEST(Gradecast, ThreeRoundsFlat) {
  auto run = run_parties<GradedValue>(7, 2, [](net::PartyContext& ctx, int id) {
    return gradecast(ctx, 3, id == 3 ? std::optional<Bytes>(Bytes{1})
                                     : std::nullopt);
  });
  EXPECT_EQ(run.stats.rounds, 3u);
}

TEST(GradecastAll, AllHonestAllGradeTwo) {
  const int n = 10;
  const int t = 3;
  auto run = run_parties<std::vector<GradedValue>>(
      n, t, [&](net::PartyContext& ctx, int id) {
        return gradecast_all(ctx, Bytes{static_cast<std::uint8_t>(id)});
      });
  for (const auto& out : run.outputs) {
    ASSERT_EQ(out->size(), static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ((*out)[static_cast<std::size_t>(j)].grade, 2);
      EXPECT_EQ(*(*out)[static_cast<std::size_t>(j)].value,
                Bytes{static_cast<std::uint8_t>(j)});
    }
  }
  EXPECT_EQ(run.stats.rounds, 3u);
}

TEST(GradecastAll, ByzantineInstancesIsolated) {
  // Corrupting parties must not affect the grades of honest instances.
  const int n = 10;
  const int t = 3;
  std::set<int> byz{2, 5, 8};
  auto run = run_parties<std::vector<GradedValue>>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return gradecast_all(ctx, Bytes{static_cast<std::uint8_t>(id)});
      },
      byz, [](int) { return std::make_shared<adv::Garbage>(); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    for (int j = 0; j < n; ++j) {
      if (byz.contains(j)) continue;
      EXPECT_EQ((*out)[static_cast<std::size_t>(j)].grade, 2) << j;
      EXPECT_EQ(*(*out)[static_cast<std::size_t>(j)].value,
                Bytes{static_cast<std::uint8_t>(j)});
    }
  }
}

TEST(Gradecast, RejectsBadArguments) {
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [id](net::PartyContext& ctx) {
      if (id == 0) {
        EXPECT_THROW((void)gradecast(ctx, 9, Bytes{1}), Error);
        EXPECT_THROW((void)gradecast(ctx, 0, std::nullopt), Error);
      }
    });
  }
  (void)net.run();
}

}  // namespace
}  // namespace coca::ba
