// GF(2^16) field axioms and Reed-Solomon erasure-coding tests.
#include <gtest/gtest.h>

#include "codec/gf16.h"
#include "codec/reed_solomon.h"
#include "util/rng.h"

namespace coca::codec {
namespace {

TEST(GF16, TableConsistency) {
  const GF16& f = GF16::instance();
  // exp/log are mutually inverse over the multiplicative group.
  for (std::size_t i = 0; i < GF16::kOrder; i += 97) {
    const GF16::Elem e = f.exp(i);
    ASSERT_NE(e, 0);
    EXPECT_EQ(f.log(e), i);
  }
}

TEST(GF16, FieldAxiomsSampled) {
  const GF16& f = GF16::instance();
  Rng rng(5);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto a = static_cast<GF16::Elem>(rng.next_u64());
    const auto b = static_cast<GF16::Elem>(rng.next_u64());
    const auto c = static_cast<GF16::Elem>(rng.next_u64());
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
    EXPECT_EQ(f.mul(a, GF16::add(b, c)),
              GF16::add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0);
  }
}

TEST(GF16, InverseLaw) {
  const GF16& f = GF16::instance();
  Rng rng(6);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto a = static_cast<GF16::Elem>(1 + rng.below(GF16::kOrder));
    EXPECT_EQ(f.mul(a, f.inv(a)), 1) << a;
    EXPECT_EQ(f.div(f.mul(a, 0x1234), a), 0x1234);
  }
  EXPECT_THROW(f.inv(0), Error);
}

class RSRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RSRoundTrip, AnyKSharesReconstruct) {
  const auto [n, t] = GetParam();
  const std::size_t k = static_cast<std::size_t>(n - t);
  const ReedSolomon rs(static_cast<std::size_t>(n), k);
  Rng rng(static_cast<std::uint64_t>(n) * 1000 + t);
  for (const std::size_t size : {1u, 2u, 3u, 17u, 64u, 257u, 1000u}) {
    const Bytes data = rng.bytes(size);
    const auto shares = rs.encode(data);
    ASSERT_EQ(shares.size(), static_cast<std::size_t>(n));
    for (const auto& s : shares) EXPECT_EQ(s.size(), rs.share_size(size));

    // Reconstruct from a random k-subset.
    std::vector<std::size_t> idx(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = idx.size(); i-- > 1;) {
      std::swap(idx[i], idx[rng.below(i + 1)]);
    }
    std::vector<std::pair<std::size_t, Bytes>> subset;
    for (std::size_t i = 0; i < k; ++i) {
      subset.emplace_back(idx[i], shares[idx[i]]);
    }
    const auto decoded = rs.decode(subset, size);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data) << "n=" << n << " size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RSRoundTrip,
                         ::testing::Values(std::tuple{4, 1}, std::tuple{7, 2},
                                           std::tuple{10, 3}, std::tuple{13, 4},
                                           std::tuple{31, 10},
                                           std::tuple{64, 21}));

TEST(ReedSolomon, SystematicPrefix) {
  // Shares 0..k-1 carry the data symbols verbatim (share j = symbol j of
  // each chunk).
  const ReedSolomon rs(7, 5);
  Bytes data(10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i + 1);
  }
  const auto shares = rs.encode(data);  // one chunk of 5 symbols
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(shares[j], Bytes({data[2 * j], data[2 * j + 1]}));
  }
}

TEST(ReedSolomon, DecodeFromParityOnly) {
  const ReedSolomon rs(10, 4);
  Rng rng(77);
  const Bytes data = rng.bytes(100);
  const auto shares = rs.encode(data);
  std::vector<std::pair<std::size_t, Bytes>> parity;
  for (std::size_t j = 6; j < 10; ++j) parity.emplace_back(j, shares[j]);
  EXPECT_EQ(rs.decode(parity, data.size()), data);
}

TEST(ReedSolomon, DecodeRejectsTooFewShares) {
  const ReedSolomon rs(7, 5);
  const auto shares = rs.encode(Bytes(20, 0xAB));
  std::vector<std::pair<std::size_t, Bytes>> few;
  for (std::size_t j = 0; j < 4; ++j) few.emplace_back(j, shares[j]);
  EXPECT_EQ(rs.decode(few, 20), std::nullopt);
}

TEST(ReedSolomon, DecodeIgnoresBadIndicesAndSizes) {
  const ReedSolomon rs(7, 5);
  Rng rng(78);
  const Bytes data = rng.bytes(33);
  const auto shares = rs.encode(data);
  std::vector<std::pair<std::size_t, Bytes>> pool;
  pool.emplace_back(99, shares[0]);                  // bad index
  pool.emplace_back(0, Bytes{0x01});                 // bad size
  for (std::size_t j = 0; j < 5; ++j) pool.emplace_back(j, shares[j]);
  pool.emplace_back(0, shares[0]);                   // duplicate index
  EXPECT_EQ(rs.decode(pool, data.size()), data);
}

TEST(ReedSolomon, ShareSizeIsCeilOverK) {
  const ReedSolomon rs(31, 21);
  EXPECT_EQ(rs.share_size(1), 2u);
  EXPECT_EQ(rs.share_size(42), 2u);
  EXPECT_EQ(rs.share_size(43), 4u);
  EXPECT_EQ(rs.share_size(420), 20u);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 0), Error);
  EXPECT_THROW(ReedSolomon(5, 6), Error);
  EXPECT_THROW(ReedSolomon(70000, 10), Error);
  EXPECT_NO_THROW(ReedSolomon(1, 1));
}

TEST(ReedSolomon, DeterministicEncoding) {
  // The paper relies on RS.ENCODE being deterministic: same value, same
  // codewords (hence the same Merkle root at every honest party).
  const ReedSolomon rs(13, 9);
  const Bytes data(500, 0x5A);
  EXPECT_EQ(rs.encode(data), rs.encode(data));
}

}  // namespace
}  // namespace coca::codec
