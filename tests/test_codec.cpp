// GF(2^16) field axioms and Reed-Solomon erasure-coding tests.
#include <gtest/gtest.h>

#include "codec/gf16.h"
#include "codec/reed_solomon.h"
#include "util/rng.h"

namespace coca::codec {
namespace {

TEST(GF16, TableConsistency) {
  const GF16& f = GF16::instance();
  // exp/log are mutually inverse over the multiplicative group.
  for (std::size_t i = 0; i < GF16::kOrder; i += 97) {
    const GF16::Elem e = f.exp(i);
    ASSERT_NE(e, 0);
    EXPECT_EQ(f.log(e), i);
  }
}

TEST(GF16, FieldAxiomsSampled) {
  const GF16& f = GF16::instance();
  Rng rng(5);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto a = static_cast<GF16::Elem>(rng.next_u64());
    const auto b = static_cast<GF16::Elem>(rng.next_u64());
    const auto c = static_cast<GF16::Elem>(rng.next_u64());
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
    EXPECT_EQ(f.mul(a, GF16::add(b, c)),
              GF16::add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0);
  }
}

TEST(GF16, InverseLaw) {
  const GF16& f = GF16::instance();
  Rng rng(6);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto a = static_cast<GF16::Elem>(1 + rng.below(GF16::kOrder));
    EXPECT_EQ(f.mul(a, f.inv(a)), 1) << a;
    EXPECT_EQ(f.div(f.mul(a, 0x1234), a), 0x1234);
  }
  EXPECT_THROW(f.inv(0), Error);
}

class RSRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RSRoundTrip, AnyKSharesReconstruct) {
  const auto [n, t] = GetParam();
  const std::size_t k = static_cast<std::size_t>(n - t);
  const ReedSolomon rs(static_cast<std::size_t>(n), k);
  Rng rng(static_cast<std::uint64_t>(n) * 1000 + t);
  for (const std::size_t size : {1u, 2u, 3u, 17u, 64u, 257u, 1000u}) {
    const Bytes data = rng.bytes(size);
    const auto shares = rs.encode(data);
    ASSERT_EQ(shares.size(), static_cast<std::size_t>(n));
    for (const auto& s : shares) EXPECT_EQ(s.size(), rs.share_size(size));

    // Reconstruct from a random k-subset.
    std::vector<std::size_t> idx(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = idx.size(); i-- > 1;) {
      std::swap(idx[i], idx[rng.below(i + 1)]);
    }
    std::vector<std::pair<std::size_t, Bytes>> subset;
    for (std::size_t i = 0; i < k; ++i) {
      subset.emplace_back(idx[i], shares[idx[i]]);
    }
    const auto decoded = rs.decode(subset, size);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data) << "n=" << n << " size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RSRoundTrip,
                         ::testing::Values(std::tuple{4, 1}, std::tuple{7, 2},
                                           std::tuple{10, 3}, std::tuple{13, 4},
                                           std::tuple{31, 10},
                                           std::tuple{64, 21}));

TEST(ReedSolomon, SystematicPrefix) {
  // Shares 0..k-1 carry the data symbols verbatim (share j = symbol j of
  // each chunk).
  const ReedSolomon rs(7, 5);
  Bytes data(10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i + 1);
  }
  const auto shares = rs.encode(data);  // one chunk of 5 symbols
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(shares[j], Bytes({data[2 * j], data[2 * j + 1]}));
  }
}

TEST(ReedSolomon, DecodeFromParityOnly) {
  const ReedSolomon rs(10, 4);
  Rng rng(77);
  const Bytes data = rng.bytes(100);
  const auto shares = rs.encode(data);
  std::vector<std::pair<std::size_t, Bytes>> parity;
  for (std::size_t j = 6; j < 10; ++j) parity.emplace_back(j, shares[j]);
  EXPECT_EQ(rs.decode(parity, data.size()), data);
}

TEST(ReedSolomon, DecodeRejectsTooFewShares) {
  const ReedSolomon rs(7, 5);
  const auto shares = rs.encode(Bytes(20, 0xAB));
  std::vector<std::pair<std::size_t, Bytes>> few;
  for (std::size_t j = 0; j < 4; ++j) few.emplace_back(j, shares[j]);
  EXPECT_EQ(rs.decode(few, 20), std::nullopt);
}

TEST(ReedSolomon, DecodeIgnoresBadIndicesAndSizes) {
  const ReedSolomon rs(7, 5);
  Rng rng(78);
  const Bytes data = rng.bytes(33);
  const auto shares = rs.encode(data);
  std::vector<std::pair<std::size_t, Bytes>> pool;
  pool.emplace_back(99, shares[0]);                  // bad index
  pool.emplace_back(0, Bytes{0x01});                 // bad size
  for (std::size_t j = 0; j < 5; ++j) pool.emplace_back(j, shares[j]);
  pool.emplace_back(0, shares[0]);                   // duplicate index
  EXPECT_EQ(rs.decode(pool, data.size()), data);
}

TEST(ReedSolomon, ShareSizeIsCeilOverK) {
  const ReedSolomon rs(31, 21);
  EXPECT_EQ(rs.share_size(1), 2u);
  EXPECT_EQ(rs.share_size(42), 2u);
  EXPECT_EQ(rs.share_size(43), 4u);
  EXPECT_EQ(rs.share_size(420), 20u);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 0), Error);
  EXPECT_THROW(ReedSolomon(5, 6), Error);
  EXPECT_THROW(ReedSolomon(70000, 10), Error);
  EXPECT_NO_THROW(ReedSolomon(1, 1));
}

// ---- Differential tests: vectorized production kernels vs the ref_ scalar
// oracle. The table-driven MulBy/axpy encode and decode paths must be
// bit-for-bit identical to the original symbol-at-a-time implementation:
// the wire format (and hence every Merkle root and replay corpus) depends
// on it.

TEST(GF16, MulByMatchesFieldMul) {
  const GF16& f = GF16::instance();
  Rng rng(91);
  for (int iter = 0; iter < 200; ++iter) {
    const auto c = static_cast<GF16::Elem>(rng.next_u64());
    const MulBy by_c(f, c);
    for (int j = 0; j < 64; ++j) {
      const auto x = static_cast<GF16::Elem>(rng.next_u64());
      ASSERT_EQ(by_c(x), f.mul(c, x)) << "c=" << c << " x=" << x;
    }
    // Edges of the nibble decomposition.
    for (const GF16::Elem x : {0x0000, 0x0001, 0x00FF, 0x0100, 0xFF00, 0xFFFF}) {
      ASSERT_EQ(by_c(x), f.mul(c, x)) << "c=" << c << " x=" << x;
    }
  }
}

TEST(GF16, MulBeAndAxpyBeMatchScalarLoop) {
  const GF16& f = GF16::instance();
  Rng rng(92);
  // Sizes straddle the 8-bytes-per-iteration wide loop: remainders 0..7
  // plus single-symbol and empty buffers.
  for (const std::size_t bytes : {0u, 2u, 6u, 8u, 10u, 14u, 16u, 18u, 24u,
                                  30u, 64u, 66u, 126u, 1024u, 1030u}) {
    const auto c = static_cast<GF16::Elem>(rng.next_u64());
    const MulBy by_c(f, c);
    const Bytes src = rng.bytes(bytes);
    Bytes dst_fast(bytes, 0);
    by_c.mul_be(dst_fast.data(), src.data(), bytes);
    Bytes acc_fast = rng.bytes(bytes);
    Bytes acc_ref = acc_fast;
    by_c.axpy_be(acc_fast.data(), src.data(), bytes);
    for (std::size_t i = 0; i < bytes; i += 2) {
      const auto x = static_cast<GF16::Elem>((src[i] << 8) | src[i + 1]);
      const GF16::Elem y = f.mul(c, x);
      ASSERT_EQ(dst_fast[i], y >> 8) << "bytes=" << bytes << " i=" << i;
      ASSERT_EQ(dst_fast[i + 1], y & 0xFF) << "bytes=" << bytes << " i=" << i;
      acc_ref[i] ^= static_cast<std::uint8_t>(y >> 8);
      acc_ref[i + 1] ^= static_cast<std::uint8_t>(y & 0xFF);
    }
    ASSERT_EQ(acc_fast, acc_ref) << "bytes=" << bytes;
  }
}

TEST(ReedSolomon, EncodeMatchesReferenceAcrossSizes) {
  Rng rng(93);
  // Sizes chosen to straddle the small-buffer threshold (512-byte shares)
  // where encode switches between the ref_ scalar path and the MulBy axpy
  // path, plus odd lengths exercising the padding of the final chunk.
  const std::size_t sizes[] = {1,   2,    3,    17,   100,  511,   512,
                               513, 1000, 4095, 4096, 4097, 10000, 65537};
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{4, 3},
                             {7, 5}, {13, 9}, {31, 21}, {64, 43}}) {
    const ReedSolomon rs(n, k);
    for (const std::size_t size : sizes) {
      const Bytes data = rng.bytes(size);
      ASSERT_EQ(rs.encode(data), ref_::encode(n, k, data))
          << "n=" << n << " k=" << k << " size=" << size;
    }
  }
}

TEST(ReedSolomon, DecodeMatchesReferenceOnAdversarialShareLists) {
  Rng rng(94);
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{7, 5},
                             {13, 9}, {31, 21}}) {
    const ReedSolomon rs(n, k);
    for (const std::size_t size : {1u, 40u, 511u, 513u, 2048u, 9973u}) {
      const Bytes data = rng.bytes(size);
      const auto shares = rs.encode(data);
      // Adversarial list: shuffled order, a duplicate index with different
      // bytes, an out-of-range index, a wrong-size share -- the decoders
      // must make identical keep/ignore decisions.
      std::vector<std::pair<std::size_t, Bytes>> pool;
      std::vector<std::size_t> idx(n);
      for (std::size_t i = 0; i < n; ++i) idx[i] = i;
      for (std::size_t i = n; i-- > 1;) std::swap(idx[i], idx[rng.below(i + 1)]);
      for (std::size_t i = 0; i < k; ++i) pool.emplace_back(idx[i], shares[idx[i]]);
      pool.insert(pool.begin() + 1,
                  {pool[0].first, rng.bytes(pool[0].second.size())});
      pool.emplace_back(n + 5, shares[0]);
      pool.emplace_back(idx[k % n], Bytes{0x01});
      const auto fast = rs.decode(pool, size);
      const auto ref = ref_::decode(n, k, pool, size);
      ASSERT_EQ(fast, ref) << "n=" << n << " size=" << size;
      ASSERT_EQ(fast, data) << "n=" << n << " size=" << size;
    }
    // Too-few-shares rejection must agree as well.
    const Bytes data = rng.bytes(100);
    const auto shares = rs.encode(data);
    std::vector<std::pair<std::size_t, Bytes>> few;
    for (std::size_t i = 0; i + 1 < k; ++i) few.emplace_back(i, shares[i]);
    ASSERT_EQ(rs.decode(few, 100), std::nullopt);
    ASSERT_EQ(ref_::decode(n, k, few, 100), std::nullopt);
  }
}

TEST(ReedSolomon, DeterministicEncoding) {
  // The paper relies on RS.ENCODE being deterministic: same value, same
  // codewords (hence the same Merkle root at every honest party).
  const ReedSolomon rs(13, 9);
  const Bytes data(500, 0x5A);
  EXPECT_EQ(rs.encode(data), rs.encode(data));
}

TEST(ReedSolomon, BatchEncodeMatchesReferencePerPayload) {
  // The cross-instance batch entry point against both oracles, with
  // heterogeneous payload sizes straddling the 512-byte wide-path
  // threshold (n=7, k=5: shares go wide from data ~2551 bytes up). Every
  // share vector must equal the per-payload encode() AND the independent
  // scalar ref_ encoder, bit for bit.
  const std::size_t n = 7;
  const std::size_t k = 5;
  const ReedSolomon rs(n, k);
  Rng rng(91);
  std::vector<Bytes> batch;
  for (const std::size_t size : {1u, 40u, 700u, 2550u, 2551u, 2560u, 8192u}) {
    batch.push_back(rng.bytes(size));
  }
  const auto encoded = rs.encode_batch(batch);
  ASSERT_EQ(encoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "payload bytes=" << batch[i].size());
    EXPECT_EQ(encoded[i], rs.encode(batch[i]));
    EXPECT_EQ(encoded[i], ref_::encode(n, k, batch[i]));
  }
}

TEST(ReedSolomon, BatchEncodePointerOverloadMatchesValueOverload) {
  // The scatter form (span of pointers, as handed up by the engine's
  // kernel batcher from parked instances) is the same computation as the
  // contiguous form -- and both equal per-payload encode().
  const ReedSolomon rs(7, 5);
  Rng rng(131);
  std::vector<Bytes> payloads;
  for (const std::size_t size : {2u, 600u, 2551u, 4096u}) {
    payloads.push_back(rng.bytes(size));
  }
  std::vector<const Bytes*> ptrs;
  for (const Bytes& p : payloads) ptrs.push_back(&p);
  const auto via_ptrs =
      rs.encode_batch(std::span<const Bytes* const>(ptrs));
  const auto via_values = rs.encode_batch(payloads);
  ASSERT_EQ(via_ptrs.size(), payloads.size());
  EXPECT_EQ(via_ptrs, via_values);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(via_ptrs[i], rs.encode(payloads[i]));
  }
}

TEST(ReedSolomon, BatchEncodeEdgeShapes) {
  const ReedSolomon rs(7, 5);
  // Empty batch, single payload, and all-small / all-wide uniform batches.
  EXPECT_TRUE(rs.encode_batch(std::span<const Bytes>{}).empty());
  for (const std::size_t size : {3u, 5000u}) {
    Rng rng(17 + size);
    const std::vector<Bytes> batch(4, rng.bytes(size));
    const auto encoded = rs.encode_batch(batch);
    for (const auto& shares : encoded) {
      EXPECT_EQ(shares, rs.encode(batch[0]));
    }
  }
}

TEST(GF16, AxpyBatchMatchesPerJobKernels) {
  const GF16& f = GF16::instance();
  Rng rng(23);
  // Jobs with repeated and zero coefficients over buffers of mixed sizes
  // (even byte counts; some below, some above the MulBy amortization
  // sweet spot). The batch must leave every dst exactly as the per-job
  // axpy_be calls would.
  constexpr std::size_t kSizes[] = {0, 2, 8, 10, 64, 510, 512, 2048};
  std::vector<AxpyJob> jobs;
  std::vector<Bytes> srcs;
  std::vector<Bytes> dst_batch;
  std::vector<Bytes> dst_ref;
  constexpr GF16::Elem kCoefs[] = {0, 1, 7, 7, 0x1234, 7, 0xFFFF, 1};
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    srcs.push_back(rng.bytes(kSizes[i]));
    dst_batch.push_back(rng.bytes(kSizes[i]));
  }
  dst_ref = dst_batch;
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    AxpyJob job;
    job.dst = dst_batch[i].data();
    job.src = srcs[i].data();
    job.bytes = kSizes[i];
    job.c = kCoefs[i];
    jobs.push_back(job);
  }
  axpy_be_batch(f, jobs);
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    if (kCoefs[i] != 0 && kSizes[i] != 0) {
      MulBy(f, kCoefs[i]).axpy_be(dst_ref[i].data(), srcs[i].data(),
                                  kSizes[i]);
    }
    EXPECT_EQ(dst_batch[i], dst_ref[i]) << "job " << i;
  }
}

TEST(GF16, AxpyBatchAccumulatesOntoSharedDst) {
  // Multiple jobs targeting one dst: XOR accumulation is order-free, so
  // the grouped-by-coefficient execution must equal sequential per-job
  // axpy. This is the engine shape: many instances folding into one
  // aggregate buffer.
  const GF16& f = GF16::instance();
  Rng rng(29);
  const std::size_t bytes = 1024;
  Bytes dst_batch = rng.bytes(bytes);
  Bytes dst_ref = dst_batch;
  std::vector<Bytes> srcs;
  for (int i = 0; i < 6; ++i) srcs.push_back(rng.bytes(bytes));
  constexpr GF16::Elem kCoefs[] = {3, 9, 3, 0, 0x8001, 9};
  std::vector<AxpyJob> jobs;
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    jobs.push_back({dst_batch.data(), srcs[i].data(), bytes, kCoefs[i]});
  }
  axpy_be_batch(f, jobs);
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    if (kCoefs[i] == 0) continue;
    MulBy(f, kCoefs[i]).axpy_be(dst_ref.data(), srcs[i].data(), bytes);
  }
  EXPECT_EQ(dst_batch, dst_ref);
}

TEST(GF16, AxpyBatchRejectsOddByteCount) {
  const GF16& f = GF16::instance();
  Bytes dst(3, 0);
  Bytes src(3, 0);
  const AxpyJob jobs[] = {{dst.data(), src.data(), 3, 1}};
  EXPECT_THROW(axpy_be_batch(f, jobs), Error);
}

}  // namespace
}  // namespace coca::codec
