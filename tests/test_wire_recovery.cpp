// Survivable wire sessions: the headline robustness invariant plus the
// resume-protocol edge cases.
//
// The headline (ISSUE 9): for every protocol and both shapes, a wired run
// whose transport is killed at every single round barrier -- plus daemon
// restarts, stalls, truncated flushes and client-side torn writes -- must
// recover via reconnect/backoff + round-replay resumption to a transcript,
// RunStats and verdict **bit-identical** to the fault-free SyncNetwork
// run. Past the retry budget the run must resolve into structured
// PartyOutcomes with a "retry budget exhausted" reason -- never a hang,
// never a silently different answer. `svc::run_case_under_wire_faults`
// (chaos.h) is the harness that executes that disjunction.
//
// The edge cases drive the kResume state machine directly over raw
// sockets: stale round numbers (ahead of committed), rounds evicted past
// replay retention, unknown tokens with adoption on/off, double reconnects
// racing for one session, grace-window reaping, and malformed payloads --
// each must yield a structured kError (or a working adoption), never a
// replay of garbage.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/fuzzer.h"
#include "net/buffer_pool.h"
#include "net/sync_network.h"
#include "svc/chaos.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/server.h"
#include "svc/socket.h"
#include "svc/wire_fault.h"

namespace coca {
namespace {

using Kind = svc::WireFaultPlan::Kind;
using svc::ChaosOptions;
using svc::ChaosReport;

std::string unique_uds_path(const char* tag) {
  return "/tmp/coca-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

adv::FuzzCase base_case(const std::string& protocol, int n) {
  adv::FuzzCase c;
  c.protocol = protocol;
  c.n = n;
  c.t = (n - 1) / 3;
  c.ell = 16;
  c.input_seed = 0xC0CA + n;
  c.threads = 1;
  return c;
}

/// Rounds the fault-free baseline takes (fault schedules are built per
/// round index, so every sweep starts by probing this).
std::uint32_t probe_rounds(const adv::FuzzCase& c) {
  const adv::FuzzOutcome plain = adv::execute_case(c);
  EXPECT_TRUE(plain.terminated) << plain.failure;
  return static_cast<std::uint32_t>(plain.stats.rounds);
}

svc::WireFaultPlan::Entry fault(Kind kind, std::uint32_t round,
                                std::uint32_t arg = 0) {
  svc::WireFaultPlan::Entry e;
  e.kind = kind;
  e.session = -1;
  e.round = round;
  if (kind == Kind::kDelayFlush || kind == Kind::kStallRead) e.delay_ms = arg;
  if (kind == Kind::kTruncateFrame || kind == Kind::kClientPartialWrite) {
    e.truncate_bytes = arg;
  }
  return e;
}

// ---------------------------------------------------------------------------
// Chaos-harness sweeps: the bit-identical recovery invariant.
// ---------------------------------------------------------------------------

TEST(WireChaos, KillBeforeFlushAtEveryRoundAllProtocols) {
  // The tentpole sweep: the connection dies at *every* round barrier, after
  // the daemon committed the round but before any of it was flushed -- the
  // worst replay case (the whole round exists only in the replay log).
  // Every protocol, both shapes, one wired run per case absorbing R kills.
  for (const std::string& protocol : adv::known_protocols()) {
    for (const int n : {4, 7}) {
      SCOPED_TRACE(::testing::Message()
                   << "protocol=" << protocol << " n=" << n);
      const adv::FuzzCase c = base_case(protocol, n);
      const std::uint32_t rounds = probe_rounds(c);
      ASSERT_GT(rounds, 0u);
      ChaosOptions opt;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        opt.plan.entries.push_back(fault(Kind::kKillBeforeFlush, r));
      }
      const ChaosReport rep = run_case_under_wire_faults(c, opt);
      EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
      // Every scheduled kill fired, and every killed round was replayed.
      EXPECT_EQ(rep.stats.daemon_injected_faults, rounds);
      EXPECT_GE(rep.stats.daemon_replayed_rounds, rounds);
      EXPECT_GE(rep.stats.client_outages, static_cast<std::uint64_t>(rounds));
      EXPECT_GE(rep.stats.client_reconnects, 1u);
      EXPECT_GE(rep.stats.daemon_resumed_sessions, 1u);
    }
  }
}

TEST(WireChaos, DaemonRestartMidRunAdoptsSessions) {
  // The daemon is destroyed outright (registry, socket and all) after the
  // first outage and a fresh one boots on the same path: recovery must go
  // through unknown-token adoption and still converge bit-identically.
  for (const std::string& protocol : adv::known_protocols()) {
    SCOPED_TRACE(::testing::Message() << "protocol=" << protocol);
    const adv::FuzzCase c = base_case(protocol, 4);
    const std::uint32_t rounds = probe_rounds(c);
    ASSERT_GT(rounds, 0u);
    ChaosOptions opt;
    opt.restart_daemon_mid_run = true;
    opt.plan.entries.push_back(
        fault(Kind::kKillBeforeFlush, std::min<std::uint32_t>(1, rounds - 1)));
    const ChaosReport rep = run_case_under_wire_faults(c, opt);
    EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
    EXPECT_EQ(rep.stats.daemon_restarts, 1u);
    EXPECT_GE(rep.stats.client_reconnect_attempts, 1u);
  }
}

TEST(WireChaos, KillAfterFlushResumesWithNothingToReplay) {
  // The benign kill: the round was flushed before the close, so the client
  // usually drains it from the socket buffer and resumes flush with nothing
  // (or at most the in-flight round) to replay.
  const adv::FuzzCase c = base_case("BAPlus", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ChaosOptions opt;
  for (std::uint32_t r = 0; r < std::min<std::uint32_t>(rounds, 3); ++r) {
    opt.plan.entries.push_back(fault(Kind::kKillAfterFlush, r));
  }
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_GE(rep.stats.client_outages, 1u);
  EXPECT_GE(rep.stats.daemon_resumed_sessions, 1u);
}

TEST(WireChaos, StallThenRecoverIsPureLatency) {
  // Read stalls and delayed flushes inside the round budget are absorbed
  // without any reconnect at all: no outage, same bits, just slower.
  const adv::FuzzCase c = base_case("BAPlus", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GE(rounds, 2u);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kStallRead, 1, /*delay_ms=*/200));
  opt.plan.entries.push_back(
      fault(Kind::kDelayFlush, std::min<std::uint32_t>(2, rounds - 1), 150));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_EQ(rep.stats.daemon_injected_faults, 2u);
  EXPECT_EQ(rep.stats.client_outages, 0u);
}

TEST(WireChaos, TruncatedFlushIsRetransmitted) {
  // The flush tears mid-frame (30 bytes = one header + 6 payload bytes):
  // the client sees a partial frame then EOF, reconnects with a reset
  // decoder, and the round replays whole.
  const adv::FuzzCase c = base_case("BAPlus", 7);
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GE(rounds, 2u);
  ChaosOptions opt;
  opt.plan.entries.push_back(
      fault(Kind::kTruncateFrame, 1, /*truncate_bytes=*/30));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_GE(rep.stats.client_outages, 1u);
  EXPECT_GE(rep.stats.daemon_replayed_rounds, 1u);
}

TEST(WireChaos, ClientSiteFaultsRecover) {
  // Client-side chaos: a hard kill before the batch leaves, and a torn
  // write (the daemon observes a frame cut at byte 40 then EOF). The
  // daemon never committed those rounds, so the resumed client re-drives
  // them -- the epoch gate's one-re-send-per-reconnect path.
  const adv::FuzzCase c = base_case("BAPlus", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GE(rounds, 3u);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kClientKill, 1));
  opt.plan.entries.push_back(
      fault(Kind::kClientPartialWrite, 2, /*truncate_bytes=*/40));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_EQ(rep.stats.client_injected_faults, 2u);
  EXPECT_GE(rep.stats.client_outages, 2u);
  EXPECT_GE(rep.stats.daemon_resumed_sessions, 2u);
}

TEST(WireChaos, MixedFaultScheduleStaysIdentical) {
  // Several fault kinds interleaved in one run, on the protocol with the
  // deepest round structure of the suite. Also the retention-side pool
  // invariant: the replay log pins receive slabs only as long as the
  // session lives -- once the harness tears both endpoints down, every
  // slab is back in the pool (reconnects, replays and torn frames leak
  // nothing).
  const net::BufferPool::Stats before = net::BufferPool::instance().stats();
  const adv::FuzzCase c = base_case("FixedLengthCA", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ChaosOptions opt;
  const auto add = [&](svc::WireFaultPlan::Entry e) {
    if (e.round < rounds) opt.plan.entries.push_back(e);
  };
  add(fault(Kind::kKillBeforeFlush, 0));
  add(fault(Kind::kTruncateFrame, 1, 30));
  add(fault(Kind::kClientKill, 2));
  add(fault(Kind::kKillAfterFlush, 3));
  add(fault(Kind::kDelayFlush, 4, 50));
  add(fault(Kind::kClientPartialWrite, 5, 64));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_GE(rep.stats.daemon_injected_faults +
                rep.stats.client_injected_faults,
            3u);
  const net::BufferPool::Stats after = net::BufferPool::instance().stats();
  const std::uint64_t outstanding =
      (after.slab_allocs + after.slab_reuses - after.slab_releases) -
      (before.slab_allocs + before.slab_reuses - before.slab_releases);
  EXPECT_EQ(outstanding, 0u)
      << "chaos run left receive slabs pinned after teardown";
}

TEST(WireChaos, ReconnectDuringRoundZero) {
  // The very first barrier dies before anything was ever delivered: the
  // resume declares completed=0 and the entire history (one round) replays.
  const adv::FuzzCase c = base_case("FindPrefix", 4);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kKillBeforeFlush, 0));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_GE(rep.stats.daemon_replayed_rounds, 1u);
}

TEST(WireChaos, ReconnectAfterFinalCommit) {
  // The connection dies right after the last round flushed: the run is
  // already decided client-side; recovery must not disturb the result (the
  // session close races a reconnect and both resolve cleanly).
  const adv::FuzzCase c = base_case("BAPlus", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GT(rounds, 0u);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kKillAfterFlush, rounds - 1));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
}

TEST(WireChaos, HeartbeatDetectsSilentDaemon) {
  // A 600 ms read stall with 50 ms heartbeats: the client's probes go
  // unanswered, it declares the daemon gone (kResume carries the heartbeat
  // flag, counted daemon-side), reconnects, and the stalled round replays
  // once the daemon wakes. Still bit-identical.
  const adv::FuzzCase c = base_case("BAPlus", 4);
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GE(rounds, 2u);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kStallRead, 1, /*delay_ms=*/600));
  opt.heartbeat_interval_ms = 50;
  opt.heartbeat_misses = 3;
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
  EXPECT_GE(rep.stats.client_heartbeats_missed, 1u);
  EXPECT_GE(rep.stats.daemon_heartbeats_missed, 1u);
  EXPECT_GE(rep.stats.client_outages, 1u);
}

TEST(WireChaos, ByzantineTrafficSurvivesFaultsToo) {
  // The adversary layer rides the same wire: a corrupted party's mutated
  // traffic must replay bit-identically through kills as well.
  adv::FuzzCase c = base_case("BAPlus", 4);
  c.corrupted = {2};
  c.mutation.seed = 0xBAD0C0CA;
  const std::uint32_t rounds = probe_rounds(c);
  ASSERT_GE(rounds, 2u);
  ChaosOptions opt;
  opt.plan.entries.push_back(fault(Kind::kKillBeforeFlush, 1));
  const ChaosReport rep = run_case_under_wire_faults(c, opt);
  EXPECT_TRUE(rep.identical) << rep.mismatch << "\nwired failure: " << rep.wired.failure;
}

// ---------------------------------------------------------------------------
// Give-up contract: past the retry budget, structured outcomes -- no hang.
// ---------------------------------------------------------------------------

TEST(WireRecovery, RetryBudgetExhaustionResolvesStructured) {
  const std::string path = unique_uds_path("exhaust");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  auto daemon = std::make_unique<svc::Daemon>(dopt);
  daemon->start();

  svc::ClientOptions copt;
  copt.round_timeout_ms = 5'000;
  copt.recovery.enabled = true;
  copt.recovery.max_attempts = 2;
  copt.recovery.backoff_initial_ms = 1;
  copt.recovery.backoff_max_ms = 4;
  auto client = svc::WireClient::connect_uds_path(path, copt);
  std::unique_ptr<svc::WireSession> session = client->open(4, 1);

  net::SyncNetwork net(4, 1);
  net.set_round_router(session.get());
  std::atomic<bool> cut{false};
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&](net::PartyContext& ctx) {
      for (int r = 0; r < 1000; ++r) {
        if (r == 3 && ctx.id() == 0 && !cut.exchange(true)) {
          daemon.reset();          // gone for good: every redial must fail
          ::unlink(path.c_str());
        }
        ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
        ctx.advance();
      }
    });
  }
  const net::RunReport rep = net.run_report();
  EXPECT_TRUE(rep.transport_failed);
  EXPECT_NE(rep.transport_error.find("retry budget exhausted"),
            std::string::npos)
      << rep.transport_error;
  ASSERT_EQ(rep.outcomes.size(), 4u);
  EXPECT_TRUE(rep.timed_out);
  EXPECT_GE(client->stats().reconnect_attempts.load(), 2u);
  EXPECT_TRUE(client->disconnected());
}

// ---------------------------------------------------------------------------
// Resume-protocol edge cases, driven over raw sockets.
// ---------------------------------------------------------------------------

/// A bare framed connection: hand-crafted kResume/kCommit traffic and
/// direct observation of the daemon's replies.
class RawConn {
 public:
  explicit RawConn(const std::string& path) : fd_(svc::connect_uds(path)) {}

  void send(const svc::FrameHeader& h, const Bytes& payload) {
    const Bytes buf = svc::encode_frame(h, payload);
    const ssize_t wrote =
        ::send(fd_.get(), buf.data(), buf.size(), MSG_NOSIGNAL);
    ASSERT_EQ(wrote, static_cast<ssize_t>(buf.size()));
  }

  std::optional<svc::Frame> recv(int timeout_ms = 2'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (std::optional<svc::Frame> f = dec_.next()) return f;
      if (dec_.failed()) return std::nullopt;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      ::pollfd p{fd_.get(), POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left.count())) <= 0) {
        return std::nullopt;
      }
      const std::span<std::uint8_t> w = dec_.writable(4096);
      const ssize_t got = ::read(fd_.get(), w.data(), w.size());
      if (got <= 0) return std::nullopt;
      dec_.commit(static_cast<std::size_t>(got));
    }
  }

 private:
  svc::Fd fd_;
  svc::FrameDecoder dec_;
};

std::string text(const net::Payload& p) {
  return std::string(reinterpret_cast<const char*>(p.data()), p.size());
}

svc::FrameHeader header(svc::FrameType type, std::uint32_t sid,
                        std::uint32_t round = 0) {
  svc::FrameHeader h;
  h.type = type;
  h.session = sid;
  h.round = round;
  return h;
}

Bytes open_payload(std::uint16_t n, std::uint16_t t) {
  return Bytes{static_cast<std::uint8_t>(n & 0xFF),
               static_cast<std::uint8_t>(n >> 8),
               static_cast<std::uint8_t>(t & 0xFF),
               static_cast<std::uint8_t>(t >> 8)};
}

Bytes commit_payload(std::uint32_t count) {
  return Bytes{static_cast<std::uint8_t>(count & 0xFF),
               static_cast<std::uint8_t>((count >> 8) & 0xFF),
               static_cast<std::uint8_t>((count >> 16) & 0xFF),
               static_cast<std::uint8_t>(count >> 24)};
}

class ResumeEdge : public ::testing::Test {
 protected:
  void boot(svc::DaemonOptions dopt, const char* tag) {
    path_ = unique_uds_path(tag);
    dopt.uds_path = path_;
    daemon_ = std::make_unique<svc::Daemon>(dopt);
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_) daemon_->stop();
    daemon_.reset();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<svc::Daemon> daemon_;
};

TEST_F(ResumeEdge, StaleRoundAheadOfCommittedIsRejectedNotReplayed) {
  boot({}, "ahead");
  auto client = svc::WireClient::connect_uds_path(path_);
  std::unique_ptr<svc::WireSession> session = client->open(4, 1);
  const std::uint64_t token = session->resume_token();
  ASSERT_NE(token, 0u);

  // A desynced impostor claims rounds the daemon never committed.
  RawConn raw(path_);
  svc::ResumeInfo info;
  info.token = token;
  info.completed = 5;
  info.n = 4;
  info.t = 1;
  raw.send(header(svc::FrameType::kResume, 7), svc::encode_resume(info));
  const std::optional<svc::Frame> f = raw.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("ahead of committed"), std::string::npos)
      << text(f->payload);

  // The rejection did not steal the live binding: the session still routes.
  const auto delivered = session->route(0, {});
  ASSERT_TRUE(delivered.has_value()) << session->failure_reason();
  EXPECT_TRUE(delivered->empty());
  session->close();
}

TEST_F(ResumeEdge, ResumeBeyondReplayRetentionIsRejected) {
  svc::DaemonOptions dopt;
  dopt.replay_log_rounds = 2;
  boot(dopt, "retention");
  auto client = svc::WireClient::connect_uds_path(path_);
  std::unique_ptr<svc::WireSession> session = client->open(4, 1);
  for (std::uint32_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(session->route(r, {}).has_value())
        << session->failure_reason();
  }
  // 5 rounds committed, retention holds the newest 2: a client that only
  // ever saw round 1 cannot be replayed back to health.
  RawConn raw(path_);
  svc::ResumeInfo info;
  info.token = session->resume_token();
  info.completed = 1;
  info.n = 4;
  info.t = 1;
  raw.send(header(svc::FrameType::kResume, 7), svc::encode_resume(info));
  const std::optional<svc::Frame> f = raw.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("beyond replay retention"),
            std::string::npos)
      << text(f->payload);
  session->close();
}

TEST_F(ResumeEdge, UnknownTokenRejectedWhenAdoptionOff) {
  svc::DaemonOptions dopt;
  dopt.adopt_unknown_resume = false;
  boot(dopt, "noadopt");
  RawConn raw(path_);
  svc::ResumeInfo info;
  info.token = 0xDEADBEEF;
  info.completed = 0;
  info.n = 4;
  info.t = 1;
  raw.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> f = raw.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("unknown resume token"), std::string::npos);
}

TEST_F(ResumeEdge, UnknownTokenAdoptedAtDeclaredBaseWhenEnabled) {
  boot({}, "adopt");  // adoption defaults on
  RawConn raw(path_);
  svc::ResumeInfo info;
  info.token = 77;
  info.completed = 3;
  info.n = 4;
  info.t = 1;
  raw.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> ack = raw.recv();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->header.type, svc::FrameType::kResumeAck);
  const auto committed = svc::decode_u64_payload(
      std::span<const std::uint8_t>(ack->payload.data(),
                                    ack->payload.size()));
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, 3u);  // adopted exactly at the declared base

  // The adopted session is live: the client re-drives its in-flight round.
  raw.send(header(svc::FrameType::kCommit, 1, 3), commit_payload(0));
  const std::optional<svc::Frame> barrier = raw.recv();
  ASSERT_TRUE(barrier.has_value());
  EXPECT_EQ(barrier->header.type, svc::FrameType::kCommit);
  EXPECT_EQ(barrier->header.round, 3u);
  EXPECT_EQ(daemon_->stats().resumed_sessions.load(), 1u);
}

TEST_F(ResumeEdge, MalformedResumePayloadIsRejected) {
  boot({}, "malformed");
  RawConn raw(path_);
  raw.send(header(svc::FrameType::kResume, 1), Bytes{1, 2, 3});
  const std::optional<svc::Frame> f = raw.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("kResume payload"), std::string::npos);
}

TEST_F(ResumeEdge, DoubleReconnectNewestBindingWins) {
  boot({}, "double");
  RawConn a(path_);
  a.send(header(svc::FrameType::kOpen, 1), open_payload(4, 1));
  const std::optional<svc::Frame> ack = a.recv();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->header.type, svc::FrameType::kOpenAck);
  const auto token = svc::decode_u64_payload(std::span<const std::uint8_t>(
      ack->payload.data(), ack->payload.size()));
  ASSERT_TRUE(token.has_value());
  a.send(header(svc::FrameType::kCommit, 1, 0), commit_payload(0));
  ASSERT_TRUE(a.recv().has_value());  // the round-0 barrier echo

  svc::ResumeInfo info;
  info.token = *token;
  info.completed = 1;
  info.n = 4;
  info.t = 1;
  // Two racing reconnects: both are acked, the newest owns the session.
  RawConn b(path_);
  b.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> ack_b = b.recv();
  ASSERT_TRUE(ack_b.has_value());
  EXPECT_EQ(ack_b->header.type, svc::FrameType::kResumeAck);

  RawConn c(path_);
  c.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> ack_c = c.recv();
  ASSERT_TRUE(ack_c.has_value());
  EXPECT_EQ(ack_c->header.type, svc::FrameType::kResumeAck);

  // The winner routes round 1; the loser's commit hits a dead binding and
  // draws a structured kError, never a cross-delivered round.
  c.send(header(svc::FrameType::kCommit, 1, 1), commit_payload(0));
  const std::optional<svc::Frame> barrier = c.recv();
  ASSERT_TRUE(barrier.has_value());
  EXPECT_EQ(barrier->header.type, svc::FrameType::kCommit);
  EXPECT_EQ(barrier->header.round, 1u);

  b.send(header(svc::FrameType::kCommit, 1, 1), commit_payload(0));
  const std::optional<svc::Frame> err = b.recv();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->header.type, svc::FrameType::kError);

  EXPECT_EQ(daemon_->stats().reconnects.load(), 2u);
  EXPECT_EQ(daemon_->stats().resumed_sessions.load(), 2u);
}

TEST_F(ResumeEdge, DetachedSessionReapedAfterGraceWindow) {
  svc::DaemonOptions dopt;
  dopt.resume_grace_ms = 50;
  dopt.adopt_unknown_resume = false;
  boot(dopt, "grace");
  std::uint64_t token = 0;
  {
    RawConn a(path_);
    a.send(header(svc::FrameType::kOpen, 1), open_payload(4, 1));
    const std::optional<svc::Frame> ack = a.recv();
    ASSERT_TRUE(ack.has_value());
    const auto tok = svc::decode_u64_payload(std::span<const std::uint8_t>(
        ack->payload.data(), ack->payload.size()));
    ASSERT_TRUE(tok.has_value());
    token = *tok;
  }  // connection drops; the session detaches into the grace window

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (daemon_->stats().sessions_closed.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(daemon_->stats().sessions_closed.load(), 1u)
      << "detached session was not reaped after the grace window";

  // The token is gone: a late resume is a structured rejection.
  RawConn late(path_);
  svc::ResumeInfo info;
  info.token = token;
  info.completed = 1;
  info.n = 4;
  info.t = 1;
  late.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> f = late.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("unknown resume token"), std::string::npos);
}

TEST_F(ResumeEdge, ResumeRejectedWhenResumptionDisabled) {
  svc::DaemonOptions dopt;
  dopt.resume_grace_ms = 0;  // the PR-7 daemon: no session survives its conn
  boot(dopt, "disabled");
  RawConn raw(path_);
  svc::ResumeInfo info;
  info.token = 1;
  info.n = 4;
  info.t = 1;
  raw.send(header(svc::FrameType::kResume, 1), svc::encode_resume(info));
  const std::optional<svc::Frame> f = raw.recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->header.type, svc::FrameType::kError);
  EXPECT_NE(text(f->payload).find("resumption is disabled"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Reproducer-file schema for fuzz_driver --wire-faults.
// ---------------------------------------------------------------------------

TEST(WireChaosJson, ReproducerRoundTrips) {
  adv::CorpusEntry entry;
  entry.c = base_case("BAPlus", 4);
  entry.violations = {"agreement"};
  entry.note = "found by --wire-faults";
  svc::WireFaultPlan plan;
  plan.entries.push_back(fault(Kind::kKillBeforeFlush, 2));
  plan.entries.push_back(fault(Kind::kStallRead, 3, 5));

  const std::string json = svc::wire_chaos_to_json(entry, plan);
  EXPECT_NE(json.find("coca-wirechaos-v1"), std::string::npos);
  const svc::WireChaosCase back = svc::wire_chaos_from_json(json);
  EXPECT_EQ(back.entry, entry);
  EXPECT_EQ(back.plan, plan);

  EXPECT_THROW(svc::wire_chaos_from_json("{}"), Error);
  EXPECT_THROW(svc::wire_chaos_from_json("not json"), Error);
}

}  // namespace
}  // namespace coca
