// Wire conformance: every protocol run over the socket transport is
// bit-identical to the same run on the in-process SyncNetwork.
//
// Each case executes twice from the same seed: once plain, once with
// ExecHooks::router pointing at a WireSession of an in-process daemon on a
// UDS loopback -- so every delivered round genuinely transits
// client -> epoll daemon -> client as length-prefixed frames. The
// transcript, RunStats (honest bytes/messages/rounds, per-party bytes,
// phase breakdown), oracle verdict, and payload_copies must not change:
// the wire is a pure transport, not a semantic layer. Byzantine
// (mutator/SendTap) and crash-fault (FaultPlan) cases ride the same wire
// to pin that the adversary and environment layers survive the transport
// seam too.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "adversary/fuzzer.h"
#include "net/buffer_pool.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire_network.h"

namespace coca {
namespace {

std::string unique_uds_path(const char* tag) {
  return "/tmp/coca-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

class WireConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = unique_uds_path("conformance");
    svc::DaemonOptions dopt;
    dopt.uds_path = path_;
    daemon_ = std::make_unique<svc::Daemon>(dopt);
    daemon_->start();
    client_ = svc::WireClient::connect_uds_path(path_);
  }

  void TearDown() override {
    client_.reset();
    daemon_->stop();
    daemon_.reset();
    ::unlink(path_.c_str());
  }

  /// Runs `c` plain and over the wire; asserts bit-identical results.
  void expect_conformant(const adv::FuzzCase& c) {
    net::Transcript plain_tr;
    const adv::FuzzOutcome plain = adv::execute_case(c, &plain_tr);

    std::unique_ptr<svc::WireSession> session = client_->open(c.n, c.t);
    net::Transcript wire_tr;
    adv::ExecHooks hooks;
    hooks.transcript = &wire_tr;
    hooks.router = session.get();
    const adv::FuzzOutcome wired = adv::execute_case(c, hooks);

    const net::RunStats& a = plain.stats;
    const net::RunStats& b = wired.stats;
    EXPECT_EQ(a.honest_bytes, b.honest_bytes);
    EXPECT_EQ(a.honest_messages, b.honest_messages);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.bytes_by_party, b.bytes_by_party);
    EXPECT_EQ(a.phase_breakdown, b.phase_breakdown);
    EXPECT_EQ(a.honest_bytes_by_phase, b.honest_bytes_by_phase);
    // The wire adds no copies on the honest send path: kMsg payloads leave
    // via iovec views of the protocol's own buffers.
    EXPECT_EQ(a.payload_copies, b.payload_copies);
    EXPECT_EQ(plain.verdict.violations, wired.verdict.violations);
    EXPECT_EQ(plain.terminated, wired.terminated);
    EXPECT_TRUE(plain_tr == wire_tr)
        << "transcript differs between SyncNetwork and wire transport";
  }

  std::string path_;
  std::unique_ptr<svc::Daemon> daemon_;
  std::unique_ptr<svc::WireClient> client_;
};

adv::FuzzCase base_case(const std::string& protocol, int n) {
  adv::FuzzCase c;
  c.protocol = protocol;
  c.n = n;
  c.t = (n - 1) / 3;
  c.ell = 16;
  c.input_seed = 0xC0CA + n;
  c.threads = 1;
  return c;
}

TEST_F(WireConformance, HonestAllProtocolsBothShapes) {
  for (const std::string& protocol : adv::known_protocols()) {
    for (const int n : {4, 7}) {
      SCOPED_TRACE(::testing::Message()
                   << "protocol=" << protocol << " n=" << n);
      expect_conformant(base_case(protocol, n));
    }
  }
}

TEST_F(WireConformance, ByzantineAllProtocols) {
  // One corrupted party under the default mutator mix (SendTap-wrapped):
  // adversarial traffic crosses the wire bit-identically too.
  for (const std::string& protocol : adv::known_protocols()) {
    SCOPED_TRACE(::testing::Message() << "protocol=" << protocol);
    adv::FuzzCase c = base_case(protocol, 4);
    c.corrupted = {2};
    c.mutation.seed = 0xBAD0C0CA;
    expect_conformant(c);
  }
}

TEST_F(WireConformance, CrashFaultAllProtocols) {
  // FaultPlan crash-stop with recovery: the guarded engine's structured
  // PartyOutcomes path, over sockets.
  for (const std::string& protocol : adv::known_protocols()) {
    SCOPED_TRACE(::testing::Message() << "protocol=" << protocol);
    adv::FuzzCase c = base_case(protocol, 4);
    net::FaultPlan::Crash crash;
    crash.party = 1;
    crash.from_round = 2;
    crash.until_round = 4;
    c.faults.crashes.push_back(crash);
    expect_conformant(c);
  }
}

TEST_F(WireConformance, RoundTripIsZeroCopyAndAllocationFree) {
  // The tentpole invariant of the pooled receive path, asserted where the
  // conformance gate runs: a full client -> daemon -> client hop performs
  // zero counted payload copies (send side writes iovec views, receive
  // side delivers slab views), and once the buffer pool is warm a whole
  // session allocates no new slabs.
  //
  // Runs against a resumption-disabled daemon: the replay log (PR 9)
  // deliberately pins receive slabs for up to replay_log_rounds committed
  // rounds, which makes steady-state slab demand depend on read
  // fragmentation. Retention's own pool discipline (no leak once sessions
  // close) is asserted by the wire-recovery chaos suite.
  const std::string path = unique_uds_path("zerocopy");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  dopt.resume_grace_ms = 0;  // no retention: the transport-only profile
  svc::Daemon daemon(dopt);
  daemon.start();
  const auto client = svc::WireClient::connect_uds_path(path);
  const auto broadcast_session = [&client]() {
    const auto session = client->open(7, 2);
    net::SyncNetwork net(7, 2);
    net.set_round_router(session.get());
    for (int i = 0; i < 7; ++i) {
      net.set_honest(i, [](net::PartyContext& ctx) {
        for (int r = 0; r < 5; ++r) {
          Bytes big(4096, static_cast<std::uint8_t>(r));
          ctx.send_all(std::move(big));
          ctx.advance();
        }
      });
    }
    return net.run();
  };
  (void)broadcast_session();  // warm-up: pool reaches its high-water mark
  const std::uint64_t warm =
      net::BufferPool::instance().stats().slab_allocs;
  const net::RunStats stats = broadcast_session();
  const std::uint64_t steady =
      net::BufferPool::instance().stats().slab_allocs - warm;
  EXPECT_EQ(stats.payload_copies, 0u);
  EXPECT_EQ(stats.payload_bytes_copied, 0u);
  EXPECT_EQ(steady, 0u) << "steady-state sessions must reuse pooled slabs";
  daemon.stop();
  ::unlink(path.c_str());
}

TEST_F(WireConformance, OsThreadBackendOverWire) {
  // threads > 1 selects the OS-thread party backend; the round barrier
  // still funnels through one router call per round.
  adv::FuzzCase c = base_case("BAPlus", 4);
  c.threads = 4;
  expect_conformant(c);
}

TEST_F(WireConformance, WireNetworkFacadeRunsProtocol) {
  // The WireNetwork convenience wrapper: same SyncNetwork surface, wired
  // transport underneath. Smoke a direct protocol run through it.
  svc::WireNetwork wnet(4, 1, *client_);
  net::SyncNetwork plain(4, 1);
  auto program = [](net::PartyContext& ctx) {
    for (int r = 0; r < 3; ++r) {
      ctx.send_all(Bytes{static_cast<std::uint8_t>(ctx.id()),
                         static_cast<std::uint8_t>(r)});
      ctx.advance();
    }
  };
  for (int id = 0; id < 4; ++id) {
    wnet.set_honest(id, program);
    plain.set_honest(id, program);
  }
  net::Transcript wire_tr;
  net::Transcript plain_tr;
  wnet.set_transcript(&wire_tr);
  plain.set_transcript(&plain_tr);
  const net::RunStats a = plain.run();
  const net::RunStats b = wnet.run();
  EXPECT_EQ(a.honest_bytes, b.honest_bytes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(plain_tr == wire_tr);
}

TEST_F(WireConformance, TransportFailureYieldsStructuredReport) {
  // Kill the daemon mid-run: run_report must resolve to transport_failed +
  // timed-out outcomes, never a hang or an uncaught throw.
  std::unique_ptr<svc::WireSession> session = client_->open(4, 1);
  net::SyncNetwork net(4, 1);
  net.set_round_router(session.get());
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [this](net::PartyContext& ctx) {
      for (int r = 0; r < 1000; ++r) {
        if (r == 3 && ctx.id() == 0) daemon_->stop();  // cut the wire
        ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
        ctx.advance();
      }
    });
  }
  const net::RunReport rep = net.run_report();
  EXPECT_TRUE(rep.transport_failed);
  EXPECT_FALSE(rep.transport_error.empty());
}

}  // namespace
}  // namespace coca
