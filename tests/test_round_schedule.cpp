// Round-schedule contracts.
//
// Composition of synchronous protocols relies on a strict invariant (stated
// in ba_interface.h): the number of rounds a building block advances may
// depend only on (n, t) and on *agreed* values -- never on a single party's
// private input. If one implementation ever violated this, honest parties
// would drift out of lock-step and the whole stack would deadlock or read
// the wrong rounds' messages. These tests pin the invariant for every
// building block, plus the agreed-value-dependence allowance for the
// composite protocols.
#include <gtest/gtest.h>

#include "aa/approximate_agreement.h"
#include "ba/ba_plus.h"
#include "ba/gradecast.h"
#include "ba/long_ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/driver.h"
#include "ca/high_cost_ca.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca {
namespace {

using test::run_parties;

struct Fixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
};

// Runs `body` for several input assignments and asserts one round count.
template <class MakeBody>
void expect_fixed_rounds(int n, int t, const MakeBody& make_body,
                         std::size_t expected_variants = 4) {
  std::optional<std::size_t> rounds;
  for (std::size_t variant = 0; variant < expected_variants; ++variant) {
    auto run = run_parties<int>(n, t, make_body(variant));
    if (!rounds) {
      rounds = run.stats.rounds;
    } else {
      EXPECT_EQ(run.stats.rounds, *rounds) << "variant " << variant;
    }
  }
}

TEST(RoundSchedule, PhaseKingBinaryFixed) {
  const ba::PhaseKingBinary bin;
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [&bin, variant](net::PartyContext& ctx, int id) {
          const bool input = variant == 0   ? false
                             : variant == 1 ? true
                             : variant == 2 ? id % 2 == 0
                                            : id < 2;
          return static_cast<int>(bin.run(ctx, input));
        });
  });
}

TEST(RoundSchedule, PhaseKingMultivaluedFixed) {
  const ba::PhaseKingMultivalued mv;
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [&mv, variant](net::PartyContext& ctx, int id) {
          ba::MaybeBytes input;
          if (variant == 1) input = Bytes{1, 2, 3};
          if (variant == 2) input = Bytes(static_cast<std::size_t>(id) + 1, 9);
          if (variant == 3 && id % 2 == 0) input = Bytes{7};
          (void)mv.run(ctx, input);
          return 0;
        });
  });
}

TEST(RoundSchedule, TurpinCoanFixed) {
  Fixture f;
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [&f, variant](net::PartyContext& ctx, int id) {
          ba::MaybeBytes input = Bytes{static_cast<std::uint8_t>(
              variant == 0 ? 1 : variant == 1 ? id : id % 2)};
          if (variant == 3) input.reset();
          (void)f.tc.run(ctx, input);
          return 0;
        });
  });
}

TEST(RoundSchedule, BAPlusDependsOnlyOnAgreedBranch) {
  // Pi_BA+ early-exits after its a-stage when the agreed confirmation bit
  // is 1 -- an *agreed*-value dependence, which keeps parties in lock-step.
  // Re-running the same configuration must reproduce the same round count,
  // and the pre-agreed configuration must use at most as many rounds as a
  // two-camp one (which falls through to the b-stage).
  Fixture f;
  const ba::BAPlus bap(f.kit);
  const auto rounds_for = [&](bool distinct) {
    auto run = run_parties<int>(7, 2, [&](net::PartyContext& ctx, int id) {
      // distinct: no candidate survives the vote, a = b = bottom, and the
      // agreed confirmation bit is 0 twice -> both stages run.
      const Bytes input(32,
                        static_cast<std::uint8_t>(distinct ? 10 + id : 1));
      (void)bap.run(ctx, input);
      return 0;
    });
    return run.stats.rounds;
  };
  const std::size_t agreed = rounds_for(false);
  const std::size_t fallthrough = rounds_for(true);
  EXPECT_EQ(agreed, rounds_for(false));
  EXPECT_EQ(fallthrough, rounds_for(true));
  EXPECT_LT(agreed, fallthrough);
}

TEST(RoundSchedule, GradecastFixed) {
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [variant](net::PartyContext& ctx, int id) {
          (void)ba::gradecast(
              ctx, 3,
              id == 3 ? std::optional<Bytes>(Bytes(variant + 1, 0x5A))
                      : std::nullopt);
          return 0;
        });
  });
}

TEST(RoundSchedule, HighCostCAFixed) {
  const ca::HighCostCA hc;
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [&hc, variant](net::PartyContext& ctx, int id) {
          const BigNat input(variant == 0   ? 5
                             : variant == 1 ? static_cast<unsigned>(id)
                             : variant == 2 ? 1u << id
                                            : 0);
          (void)hc.run(ctx, input);
          return 0;
        });
  });
}

TEST(RoundSchedule, ApproxAgreementFixedPerIteration) {
  const aa::SyncApproxAgreement aa;
  expect_fixed_rounds(7, 2, [&](std::size_t variant) {
    return std::function<int(net::PartyContext&, int)>(
        [&aa, variant](net::PartyContext& ctx, int id) {
          (void)aa.run(ctx, BigInt(static_cast<std::int64_t>(variant * id)),
                       6);
          return 0;
        });
  });
}

// Composite protocols: rounds may depend on agreed outcomes (e.g. how many
// prefix-search iterations return bottom), but must be identical whenever
// the honest input *multiset placement* is merely permuted -- agreement on
// every intermediate value forces the same control flow.
TEST(RoundSchedule, PiZPermutationInvariant) {
  const ca::ConvexAgreement proto;
  std::vector<BigInt> base{BigInt(100), BigInt(207), BigInt(399),
                           BigInt(58),  BigInt(311), BigInt(42),
                           BigInt(271)};
  std::optional<std::size_t> rounds;
  std::optional<BigInt> output;
  for (int rotation = 0; rotation < 4; ++rotation) {
    ca::SimConfig cfg;
    cfg.n = 7;
    cfg.t = 2;
    for (int i = 0; i < 7; ++i) {
      cfg.inputs.push_back(base[static_cast<std::size_t>((i + rotation) % 7)]);
    }
    const ca::SimResult r = run_simulation(proto, cfg);
    if (!rounds) {
      rounds = r.stats.rounds;
      output = *r.outputs[0];
    } else {
      EXPECT_EQ(r.stats.rounds, *rounds) << "rotation " << rotation;
      // The agreed output must also be permutation-invariant: nothing in
      // the protocol references party identity except the king order.
      EXPECT_EQ(*r.outputs[0], *output);
    }
  }
}

// Adversary independence: whatever bytes byzantine parties inject, the
// honest round count of the full protocol cannot change (they can bias
// agreed values, but every branch still advances the same sub-protocols).
TEST(RoundSchedule, PiZRoundsAdversaryIndependentOnFixedInputs) {
  const ca::ConvexAgreement proto;
  std::optional<std::size_t> clean_rounds;
  for (const adv::Kind kind : adv::kAllKinds) {
    ca::SimConfig cfg;
    cfg.n = 7;
    cfg.t = 2;
    cfg.inputs = {BigInt(1000), BigInt(1000), BigInt(1000), BigInt(1000),
                  BigInt(1000), BigInt(0),    BigInt(0)};
    cfg.corruptions = {{5, kind}, {6, kind}};
    const ca::SimResult r = run_simulation(proto, cfg);
    if (!clean_rounds) {
      clean_rounds = r.stats.rounds;
    } else {
      EXPECT_EQ(r.stats.rounds, *clean_rounds) << adv::to_string(kind);
    }
  }
}

}  // namespace
}  // namespace coca
