// Unit and stress tests for the engine's lock-free SPSC lane.
//
// The single-threaded tests pin the queue discipline (FIFO order,
// wraparound, capacity rounding, full/empty edges); the two-threaded
// stress tests exercise the release/acquire cursor protocol under real
// concurrency and are the ones the TSan CI lane watches.
//
// The *Canary* tests deserve a note: with -DCOCA_CANARY_BUG=ON the ring
// deliberately publishes the tail cursor before writing the slot -- a data
// race on the slot bytes. A dedicated CI job builds with the canary plus
// TSan and requires these tests to FAIL under halt_on_error=1, proving the
// sanitizer lane actually watches this structure. On correct builds (and
// on canary builds without TSan) they pass: the assertions below are
// deliberately count-only -- a torn slot value cannot fail them; only
// TSan's race detector (or a correct build) decides the outcome.
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/spsc_ring.h"

namespace coca::engine {
namespace {

TEST(SpscRing, FifoOrderAndEmptyEdge) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_EQ(ring.try_pop().value(), 3);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
}

TEST(SpscRing, FullEdgeAndCapacityOne) {
  SpscRing<int> ring(1);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.try_push(8)) << "capacity-1 ring must report full";
  EXPECT_EQ(ring.try_pop().value(), 7);
  EXPECT_TRUE(ring.try_push(9));
  EXPECT_EQ(ring.try_pop().value(), 9);
}

TEST(SpscRing, WraparoundPreservesOrder) {
  // Many times around a small ring: cursor arithmetic must mask correctly
  // while the free-running counters keep growing.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    while (ring.try_push(next_in)) ++next_in;
    while (const auto v = ring.try_pop()) {
      EXPECT_EQ(*v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 4000u);
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ring.push(std::make_unique<int>(42));
  const auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

// ---------------------------------------------------------------------------
// Two-threaded stress: the cases TSan CI runs.

TEST(SpscRingStress, ProducerFasterThanConsumer) {
  // A tiny ring forces the producer into the full/yield path constantly;
  // the consumer lags on purpose. FIFO order and the exact element count
  // must survive.
  constexpr std::uint64_t kCount = 4000;
  SpscRing<std::uint64_t> ring(2);
  std::thread producer([&ring]() {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push(i);
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (const auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();  // empty: let the producer refill
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingStress, ConsumerFasterThanProducer) {
  constexpr std::uint64_t kCount = 4000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring]() {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      ring.push(i);
      if ((i & 0x3F) == 0) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (const auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

TEST(SpscRingStress, CanonicalDrainOrderAcrossLanes) {
  // The engine's collector pattern: one consumer sweeping many lanes in
  // canonical order while independent producers feed them. Per-lane FIFO
  // plus a deterministic per-sweep lane order (0..K-1) is exactly what
  // makes the engine's merged aggregates schedule-independent.
  constexpr std::size_t kLanes = 4;
  constexpr std::uint64_t kPerLane = 1000;
  std::vector<std::unique_ptr<SpscRing<std::uint64_t>>> lanes;
  for (std::size_t i = 0; i < kLanes; ++i) {
    lanes.push_back(std::make_unique<SpscRing<std::uint64_t>>(8));
  }
  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&lanes, lane]() {
      for (std::uint64_t i = 0; i < kPerLane; ++i) {
        lanes[lane]->push(lane * kPerLane + i);
      }
    });
  }
  std::vector<std::uint64_t> next(kLanes, 0);
  std::uint64_t drained = 0;
  while (drained < kLanes * kPerLane) {
    bool idle = true;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      while (const auto v = lanes[lane]->try_pop()) {
        idle = false;
        ASSERT_EQ(*v, lane * kPerLane + next[lane]) << "lane " << lane;
        ++next[lane];
        ++drained;
      }
    }
    if (idle) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
}

// ---------------------------------------------------------------------------
// TSan canary (see the file comment): count-only assertions on purpose.

TEST(SpscRingCanary, TwoThreadedTrafficForTsan) {
  constexpr std::uint64_t kCount = 8000;
  SpscRing<std::uint64_t> ring(4);
  std::thread producer([&ring]() {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push(i);
  });
  std::uint64_t popped = 0;
  std::uint64_t checksum = 0;
  while (popped < kCount) {
    if (const auto v = ring.try_pop()) {
      // The value must flow somewhere the optimizer cannot discard: with
      // try_pop inlined, an unused *v lets -O1 eliminate the slot read --
      // and with it the very race this canary plants. The checksum is
      // never asserted (a torn value cannot fail the test); the volatile
      // sink below just keeps the read alive.
      checksum ^= *v;
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  volatile std::uint64_t sink = checksum;
  static_cast<void>(sink);
  EXPECT_EQ(popped, kCount);
  EXPECT_FALSE(ring.try_pop().has_value());
}

}  // namespace
}  // namespace coca::engine
