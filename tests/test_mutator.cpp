// The mutation adversary itself: operator behaviour, the SendTap wiring
// through SyncNetwork, and the determinism contract (same seed => same
// transcript, under any ExecPolicy schedule) that corpus replay relies on.
#include "adversary/mutator.h"

#include <gtest/gtest.h>

#include "net/sync_network.h"

namespace coca::adv {
namespace {

constexpr int kRounds = 6;

/// All-honest-code network of n parties where every party broadcasts a
/// distinct beacon each round; party `byz` runs the same code behind a
/// Mutator with `config`. Returns the canonical transcript.
net::Transcript beacon_run(int n, int byz, MutatorConfig config,
                           int threads = 1) {
  net::SyncNetwork net(n, 1);
  net.set_exec_policy({threads});
  net::Transcript transcript;
  net.set_transcript(&transcript);
  const auto beacon = [](net::PartyContext& ctx) {
    for (int r = 0; r < kRounds; ++r) {
      for (int to = 0; to < ctx.n(); ++to) {
        ctx.send(to, Bytes{static_cast<std::uint8_t>(ctx.id()),
                           static_cast<std::uint8_t>(r),
                           static_cast<std::uint8_t>(to), 0xAB});
      }
      (void)ctx.advance();
    }
  };
  config.n = n;
  for (int id = 0; id < n; ++id) {
    if (id == byz) {
      net.set_byzantine_protocol(id, beacon,
                                 std::make_shared<Mutator>(config));
    } else {
      net.set_honest(id, beacon);
    }
  }
  (void)net.run();
  return transcript;
}

/// Messages party `from` sent in `t`, flattened as (round, to, payload).
struct Sent {
  std::size_t round;
  int to;
  Bytes payload;
};
std::vector<Sent> sent_by(const net::Transcript& t, int from) {
  std::vector<Sent> out;
  for (std::size_t r = 0; r < t.rounds.size(); ++r) {
    for (const auto& m : t.rounds[r].messages) {
      if (m.from == from) out.push_back({r, m.to, m.payload.owned()});
    }
  }
  return out;
}

MutatorConfig only(MutOp op, std::uint64_t seed = 7) {
  MutatorConfig config;
  config.seed = seed;
  config.weights.fill(0);
  config.weights[static_cast<std::size_t>(op)] = 1;
  return config;
}

TEST(Mutator, AllZeroWeightsArePurePassthrough) {
  MutatorConfig config;
  config.seed = 1;
  config.weights.fill(0);
  const net::Transcript tapped = beacon_run(4, 2, config);
  // Reference: the identical run with the same party byzantine but untapped
  // (set_byzantine_protocol without a tap), so only the tap can differ.
  net::Transcript plain;
  {
    net::SyncNetwork net(4, 1);
    net.set_transcript(&plain);
    const auto beacon = [](net::PartyContext& ctx) {
      for (int r = 0; r < kRounds; ++r) {
        for (int to = 0; to < ctx.n(); ++to) {
          ctx.send(to, Bytes{static_cast<std::uint8_t>(ctx.id()),
                             static_cast<std::uint8_t>(r),
                             static_cast<std::uint8_t>(to), 0xAB});
        }
        (void)ctx.advance();
      }
    };
    for (int id = 0; id < 4; ++id) {
      if (id == 2) {
        net.set_byzantine_protocol(id, beacon);
      } else {
        net.set_honest(id, beacon);
      }
    }
    (void)net.run();
  }
  EXPECT_EQ(tapped, plain);
}

TEST(Mutator, KeepPassesEveryMessageUnchanged) {
  const auto msgs = sent_by(beacon_run(4, 2, only(MutOp::kKeep)), 2);
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(kRounds * 4));
  for (const auto& m : msgs) {
    EXPECT_EQ(m.payload[0], 2);
    EXPECT_EQ(m.payload[3], 0xAB);
  }
}

TEST(Mutator, OmitDropsEverything) {
  EXPECT_TRUE(sent_by(beacon_run(4, 2, only(MutOp::kOmit)), 2).empty());
}

TEST(Mutator, DelayReplaysInALaterRound) {
  MutatorConfig config = only(MutOp::kDelay);
  config.max_delay = 2;
  const auto msgs = sent_by(beacon_run(4, 2, config), 2);
  EXPECT_FALSE(msgs.empty());
  for (const auto& m : msgs) {
    // Payload byte 1 is the round the wrapped protocol staged it in.
    const std::size_t staged = m.payload[1];
    EXPECT_GT(m.round, staged);
    EXPECT_LE(m.round, staged + config.max_delay);
  }
  // The final rounds' messages are still held when the protocol finishes:
  // some messages must have been dropped relative to the 4 * kRounds staged.
  EXPECT_LT(msgs.size(), static_cast<std::size_t>(kRounds * 4));
}

TEST(Mutator, TruncateOnlyShrinks) {
  const auto msgs = sent_by(beacon_run(4, 2, only(MutOp::kTruncate)), 2);
  ASSERT_FALSE(msgs.empty());
  for (const auto& m : msgs) EXPECT_LT(m.payload.size(), 4u);
}

TEST(Mutator, ExtendOnlyGrows) {
  const auto msgs = sent_by(beacon_run(4, 2, only(MutOp::kExtend)), 2);
  ASSERT_FALSE(msgs.empty());
  for (const auto& m : msgs) {
    EXPECT_GT(m.payload.size(), 4u);
    EXPECT_EQ(m.payload[0], 2);  // original bytes preserved as a prefix
  }
}

TEST(Mutator, EquivocateCrossesRecipients) {
  const auto msgs = sent_by(beacon_run(4, 2, only(MutOp::kEquivocate)), 2);
  // Every original message is passed through, plus corrupted copies.
  EXPECT_GT(msgs.size(), static_cast<std::size_t>(kRounds * 4));
  bool crossed = false;
  for (const auto& m : msgs) {
    // Payload byte 2 records the intended recipient; a mismatch with the
    // wire recipient is a cross-recipient copy.
    if (m.payload.size() >= 3 && m.payload[2] != m.to) crossed = true;
  }
  EXPECT_TRUE(crossed);
}

TEST(Mutator, FieldTweakKeepsLengthButChangesBytes) {
  const auto msgs = sent_by(beacon_run(4, 2, only(MutOp::kFieldTweak)), 2);
  ASSERT_FALSE(msgs.empty());
  bool changed = false;
  for (const auto& m : msgs) {
    EXPECT_EQ(m.payload.size(), 4u);
    if (m.payload != Bytes{2, m.payload[1], static_cast<std::uint8_t>(m.to),
                           0xAB}) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Mutator, SameSeedSameTranscript) {
  MutatorConfig config;
  config.seed = 99;
  EXPECT_EQ(beacon_run(5, 1, config), beacon_run(5, 1, config));
}

TEST(Mutator, DifferentSeedsDiverge) {
  MutatorConfig a;
  a.seed = 1;
  MutatorConfig b;
  b.seed = 2;
  EXPECT_NE(beacon_run(5, 1, a), beacon_run(5, 1, b));
}

TEST(Mutator, TranscriptIsScheduleIndependent) {
  MutatorConfig config;
  config.seed = 1234;
  const net::Transcript serial = beacon_run(5, 3, config, /*threads=*/1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(serial, beacon_run(5, 3, config, threads))
        << "threads=" << threads;
  }
}

TEST(Mutator, OpCountsCoverEveryOperatorUnderDefaultWeights) {
  MutatorConfig config;
  config.seed = 5;
  config.n = 4;
  Mutator mutator(config);
  std::vector<std::pair<int, Bytes>> emitted;
  const net::SendTap::Emit emit = [&](int to, net::Payload payload) {
    emitted.emplace_back(to, payload.owned());
  };
  for (std::size_t round = 0; round < 400; ++round) {
    mutator.on_round_start(round, emit);
    for (int to = 0; to < 4; ++to) {
      mutator.on_send(round, to, Bytes{1, 2, 3, 4, 5, 6, 7, 8}, emit);
    }
  }
  const auto& counts = mutator.op_counts();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumMutOps; ++i) {
    EXPECT_GT(counts[i], 0u) << to_string(static_cast<MutOp>(i));
    total += counts[i];
  }
  EXPECT_EQ(total, 1600u);
}

}  // namespace
}  // namespace coca::adv
