// Tests for the refcounted payload substrate (net/payload.h) and its
// integration contract with SyncNetwork:
//   * Payload view semantics: wrap, slice, detach (steal vs copy-on-write),
//     equality, and the PayloadMetrics copy accounting.
//   * Honest-path zero-copy: an all-honest broadcast run performs no deep
//     payload copies at all (RunStats::payload_copies == 0).
//   * COW aliasing: a SendTap that corrupts one recipient's payload must not
//     leak the mutation into the other recipients' views or the transcript.
//   * first_per_sender filters by view (refcount bumps), never byte copies.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/payload.h"
#include "net/sync_network.h"
#include "util/common.h"

namespace coca::net {
namespace {

Bytes make_bytes(std::size_t size, std::uint8_t start) {
  Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::uint8_t>(start + i);
  }
  return b;
}

/// Samples the process-wide copy counters; tests diff before/after.
struct MetricsSample {
  std::uint64_t copies = PayloadMetrics::copies();
  std::uint64_t bytes = PayloadMetrics::bytes_copied();

  std::uint64_t copies_since() const { return PayloadMetrics::copies() - copies; }
  std::uint64_t bytes_since() const {
    return PayloadMetrics::bytes_copied() - bytes;
  }
};

TEST(Payload, WrapFromRvalueIsZeroCopy) {
  const MetricsSample before;
  Bytes b = make_bytes(64, 1);
  const std::uint8_t* data = b.data();
  Payload p(std::move(b));
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p.data(), data);  // same heap buffer: moved, not copied
  EXPECT_EQ(before.copies_since(), 0u);
  EXPECT_EQ(before.bytes_since(), 0u);
}

TEST(Payload, CopyOfCountsTheDeepCopy) {
  const Bytes b = make_bytes(100, 7);
  const MetricsSample before;
  Payload p = Payload::copy_of(b);
  EXPECT_EQ(p, b);
  EXPECT_NE(p.data(), b.data());
  EXPECT_EQ(before.copies_since(), 1u);
  EXPECT_EQ(before.bytes_since(), 100u);
}

TEST(Payload, ViewCopiesShareOneBufferForFree) {
  const MetricsSample before;
  Payload p(make_bytes(32, 0));
  EXPECT_EQ(p.use_count(), 1);
  Payload q = p;
  Payload r = q;
  EXPECT_EQ(p.use_count(), 3);
  EXPECT_EQ(q.data(), p.data());
  EXPECT_EQ(r.data(), p.data());
  EXPECT_EQ(before.copies_since(), 0u);
}

TEST(Payload, SliceIsAViewOfTheSameBuffer) {
  const MetricsSample before;
  Payload p(make_bytes(32, 0));
  Payload s = p.slice(8, 16);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.data(), p.data() + 8);
  EXPECT_EQ(p.use_count(), 2);
  EXPECT_EQ(s[0], p[8]);
  EXPECT_EQ(before.copies_since(), 0u);
  // An empty slice drops its buffer reference.
  Payload e = p.slice(4, 0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.use_count(), 0);
  EXPECT_THROW(p.slice(20, 16), Error);
}

TEST(Payload, BytesViewIsFreeForFullBufferViews) {
  const MetricsSample before;
  Payload p(make_bytes(24, 3));
  const Bytes& view = p.bytes();
  EXPECT_EQ(view.data(), p.data());
  EXPECT_EQ(before.copies_since(), 0u);
  // Sliced views have no Bytes representation; to_bytes makes a counted copy.
  Payload s = p.slice(0, 8);
  EXPECT_THROW((void)s.bytes(), std::logic_error);
  const Bytes owned = s.to_bytes();
  EXPECT_EQ(owned, make_bytes(8, 3));
  EXPECT_EQ(before.copies_since(), 1u);
  EXPECT_EQ(before.bytes_since(), 8u);
}

TEST(Payload, DetachStealsWhenSoleOwner) {
  const MetricsSample before;
  Payload p(make_bytes(48, 9));
  const std::uint8_t* data = p.data();
  Bytes stolen = std::move(p).detach();
  EXPECT_EQ(stolen.data(), data);  // the buffer itself moved out
  EXPECT_EQ(before.copies_since(), 0u);
}

TEST(Payload, DetachCopiesWhenShared) {
  Payload p(make_bytes(48, 9));
  Payload alias = p;
  const MetricsSample before;
  Bytes copy = std::move(p).detach();
  copy[0] = 0xFF;  // mutate the detached bytes...
  EXPECT_EQ(alias[0], 9);  // ...the surviving view is untouched
  EXPECT_EQ(before.copies_since(), 1u);
  EXPECT_EQ(before.bytes_since(), 48u);
}

TEST(Payload, EqualityIsContentOverTheViewedWindow) {
  Payload p(make_bytes(16, 5));
  Payload q(make_bytes(16, 5));
  EXPECT_EQ(p, q);  // distinct buffers, equal content
  EXPECT_EQ(p, make_bytes(16, 5));
  EXPECT_FALSE(p == make_bytes(16, 6));
  // A slice compares by its window, not the backing buffer.
  Bytes whole = make_bytes(16, 5);
  Payload s = p.slice(4, 8);
  EXPECT_EQ(s, Bytes(whole.begin() + 4, whole.begin() + 12));
}

TEST(Payload, FirstPerSenderNeverCopiesBytes) {
  Payload shared(make_bytes(256, 1));
  std::vector<Envelope> inbox;  // sender-ordered, as advance() delivers it
  inbox.push_back({0, shared});
  inbox.push_back({1, shared});
  inbox.push_back({2, shared});
  inbox.push_back({2, Payload(make_bytes(8, 0))});  // duplicate sender
  const MetricsSample before;
  const std::vector<Envelope> kept = first_per_sender(inbox);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].from, 0);
  EXPECT_EQ(kept[1].from, 1);
  EXPECT_EQ(kept[2].from, 2);
  EXPECT_EQ(kept[2].payload.data(), shared.data());  // first msg kept, by view
  EXPECT_EQ(before.copies_since(), 0u);
  // The rvalue overload filters in place, also without copying.
  std::vector<Envelope> moved = first_per_sender(std::move(inbox));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(before.copies_since(), 0u);
}

// An all-honest run where every party broadcasts a fresh buffer each round:
// with the shared-buffer substrate the whole execution performs zero deep
// payload copies -- the acceptance invariant for the zero-copy wire path.
TEST(PayloadNetwork, HonestBroadcastIsZeroCopy) {
  const int n = 7;
  const int rounds = 4;
  SyncNetwork net(n, 2);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [rounds](PartyContext& ctx) {
      for (int r = 0; r < rounds; ++r) {
        Bytes msg = make_bytes(1024, static_cast<std::uint8_t>(r));
        ctx.send_all(std::move(msg));
        const std::vector<Envelope> inbox = ctx.advance();
        ASSERT_EQ(inbox.size(), static_cast<std::size_t>(ctx.n()));
      }
    });
  }
  const RunStats stats = net.run();
  EXPECT_EQ(stats.rounds, static_cast<std::size_t>(rounds));
  EXPECT_EQ(stats.payload_copies, 0u);
  EXPECT_EQ(stats.payload_bytes_copied, 0u);
}

// Broadcasting an lvalue is the one honest-path operation that must copy;
// the stats account for exactly that copy.
TEST(PayloadNetwork, LvalueSendAllCountsOneCopyPerBroadcast) {
  const int n = 4;
  SyncNetwork net(n, 1);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [](PartyContext& ctx) {
      const Bytes msg = make_bytes(100, 0);  // lvalue: send_all must copy it
      ctx.send_all(msg);
      ctx.advance();
    });
  }
  const RunStats stats = net.run();
  EXPECT_EQ(stats.payload_copies, static_cast<std::uint64_t>(n));
  EXPECT_EQ(stats.payload_bytes_copied, static_cast<std::uint64_t>(n) * 100);
}

// Two networks running concurrently on separate threads must each see only
// their own substrate copies in RunStats: the per-run counters are
// thread-local deltas, not slices of the process-wide totals. Before the
// per-run isolation, the copy-heavy run's counts bled into the clean run's
// RunStats whenever the two overlapped.
TEST(PayloadNetwork, ConcurrentRunsDoNotCrossContaminate) {
  constexpr int kN = 4;
  constexpr int kRounds = 40;
  std::atomic<bool> go{false};
  RunStats clean_stats;
  RunStats dirty_stats;

  const auto drive = [&](bool copy_heavy, RunStats* out) {
    while (!go.load()) std::this_thread::yield();
    SyncNetwork net(kN, 1);
    for (int i = 0; i < kN; ++i) {
      net.set_honest(i, [copy_heavy](PartyContext& ctx) {
        for (int r = 0; r < kRounds; ++r) {
          if (copy_heavy) {
            const Bytes msg = make_bytes(128, 1);  // lvalue: one copy per call
            ctx.send_all(msg);
          } else {
            ctx.send_all(make_bytes(128, 1));  // rvalue: zero-copy
          }
          ctx.advance();
        }
      });
    }
    *out = net.run();
  };

  std::thread clean(drive, false, &clean_stats);
  std::thread dirty(drive, true, &dirty_stats);
  go.store(true);
  clean.join();
  dirty.join();

  EXPECT_EQ(clean_stats.payload_copies, 0u);
  EXPECT_EQ(clean_stats.payload_bytes_copied, 0u);
  EXPECT_EQ(dirty_stats.payload_copies,
            static_cast<std::uint64_t>(kN) * kRounds);
  EXPECT_EQ(dirty_stats.payload_bytes_copied,
            static_cast<std::uint64_t>(kN) * kRounds * 128);
}

/// Corrupts the first byte of every payload addressed to `victim`; forwards
/// all other messages untouched (as the original shared views).
class CorruptOneRecipient : public SendTap {
 public:
  explicit CorruptOneRecipient(int victim) : victim_(victim) {}

  void on_send(std::size_t /*round*/, int to, Payload payload,
               const Emit& emit) override {
    if (to == victim_ && !payload.empty()) {
      Bytes owned = std::move(payload).detach();  // COW: copies, buffer shared
      owned[0] ^= 0xFF;
      emit(to, Payload(std::move(owned)));
    } else {
      emit(to, std::move(payload));
    }
  }

 private:
  int victim_;
};

// A tapped send_all delivers one shared buffer to n recipients; the tap
// detaches and corrupts only the victim's copy. Copy-on-write must isolate
// the mutation: every other recipient and the transcript keep the original
// bytes, and exactly one deep copy is performed per corrupted broadcast.
TEST(PayloadNetwork, SendTapMutationDoesNotLeakIntoSharedViews) {
  const int n = 5;
  const int byz = 2;
  const int victim = 4;
  const Bytes original = make_bytes(512, 0x10);
  Bytes corrupted = original;
  corrupted[0] ^= 0xFF;

  SyncNetwork net(n, 1);
  std::vector<std::vector<Envelope>> inboxes(n);
  for (int i = 0; i < n; ++i) {
    if (i == byz) continue;
    net.set_honest(i, [i, &inboxes](PartyContext& ctx) {
      inboxes[i] = ctx.advance();
    });
  }
  net.set_byzantine_protocol(
      byz,
      [&original](PartyContext& ctx) {
        Bytes msg = original;
        ctx.send_all(std::move(msg));
        ctx.advance();
      },
      std::make_shared<CorruptOneRecipient>(victim));
  Transcript transcript;
  net.set_transcript(&transcript);

  const MetricsSample before;
  const RunStats stats = net.run();

  // Exactly one deep copy: the victim's detach. (Byzantine traffic is not
  // metered in honest_bytes, but substrate copies are counted regardless.)
  EXPECT_EQ(stats.payload_copies, 1u);
  EXPECT_EQ(stats.payload_bytes_copied, 512u);
  EXPECT_EQ(before.copies_since(), 1u);

  // The victim sees the corruption, nobody else does.
  for (int i = 0; i < n; ++i) {
    if (i == byz) continue;
    ASSERT_EQ(inboxes[i].size(), 1u) << "party " << i;
    EXPECT_EQ(inboxes[i][0].from, byz);
    EXPECT_EQ(inboxes[i][0].payload, i == victim ? corrupted : original)
        << "party " << i;
  }

  // The transcript's views of the untouched deliveries are the originals.
  ASSERT_EQ(transcript.rounds.size(), stats.rounds);
  int seen = 0;
  for (const Transcript::Round& round : transcript.rounds) {
    for (const Transcript::Msg& msg : round.messages) {
      if (msg.from != byz) continue;
      ++seen;
      EXPECT_EQ(msg.payload, msg.to == victim ? corrupted : original)
          << "transcript message to " << msg.to;
    }
  }
  EXPECT_EQ(seen, n);  // send_all reaches every party, including self
}

}  // namespace
}  // namespace coca::net
