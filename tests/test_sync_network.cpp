// Simulator semantics: lock-step rounds, authenticated delivery, metering,
// rushing byzantine strategies, split-brain equivocation.
#include "net/sync_network.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "tests/support.h"
#include "util/wire.h"

namespace coca::net {
namespace {

TEST(SyncNetwork, OneRoundBroadcastDeliversAll) {
  const int n = 5;
  auto run = test::run_parties<int>(
      n, 1, [&](PartyContext& ctx, int id) {
        ctx.send_all(Bytes{static_cast<std::uint8_t>(id)});
        int sum = 0;
        for (const auto& e : ctx.advance()) {
          EXPECT_EQ(e.payload.size(), 1u);
          EXPECT_EQ(e.payload[0], e.from);  // authenticated sender
          sum += e.payload[0];
        }
        return sum;
      });
  for (const auto& out : run.outputs) EXPECT_EQ(out, 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(run.stats.rounds, 1u);
}

TEST(SyncNetwork, InboxOrderedBySender) {
  auto run = test::run_parties<bool>(4, 1, [](PartyContext& ctx, int) {
    ctx.send_all(Bytes{0xAA});
    const auto inbox = ctx.advance();
    for (std::size_t i = 1; i < inbox.size(); ++i) {
      if (inbox[i - 1].from > inbox[i].from) return false;
    }
    return true;
  });
  for (const auto& out : run.outputs) EXPECT_TRUE(*out);
}

TEST(SyncNetwork, MessagesCrossOnlyAtRoundBoundary) {
  // A message sent in round r must not be readable in round r's inbox of a
  // prior advance, and must arrive exactly once.
  auto run = test::run_parties<int>(3, 0, [](PartyContext& ctx, int id) {
    if (id == 0) ctx.send(1, Bytes{1});
    auto in1 = ctx.advance();  // round 0 inbox
    if (id == 0) ctx.send(1, Bytes{2});
    auto in2 = ctx.advance();  // round 1 inbox
    if (id != 1) return -1;
    EXPECT_EQ(in1.size(), 1u);
    EXPECT_EQ(in1[0].payload[0], 1);
    EXPECT_EQ(in2.size(), 1u);
    EXPECT_EQ(in2[0].payload[0], 2);
    return 0;
  });
  EXPECT_EQ(run.outputs[1], 0);
}

TEST(SyncNetwork, SelfDeliveryWorks) {
  auto run = test::run_parties<int>(3, 0, [](PartyContext& ctx, int id) {
    ctx.send(id, Bytes{static_cast<std::uint8_t>(id + 10)});
    for (const auto& e : ctx.advance()) {
      if (e.from == id) return static_cast<int>(e.payload[0]);
    }
    return -1;
  });
  EXPECT_EQ(run.outputs[2], 12);
}

TEST(SyncNetwork, HonestBytesMeterCountsPayloads) {
  SyncNetwork net(3, 0);
  std::uint64_t expected = 0;
  for (int id = 0; id < 3; ++id) {
    net.set_honest(id, [](PartyContext& ctx) {
      ctx.send_all(Bytes(10, 0));  // 3 recipients x 10 bytes
      (void)ctx.advance();
      ctx.send(0, Bytes(5, 0));
      (void)ctx.advance();
    });
    expected += 3 * 10 + 5;
  }
  const RunStats stats = net.run();
  EXPECT_EQ(stats.honest_bytes, expected);
  EXPECT_EQ(stats.honest_messages, 3u * 4u);
  EXPECT_EQ(stats.rounds, 2u);
}

TEST(SyncNetwork, PhaseAttributionNests) {
  SyncNetwork net(2, 0);
  for (int id = 0; id < 2; ++id) {
    net.set_honest(id, [](PartyContext& ctx) {
      auto outer = ctx.phase("outer");
      ctx.send_all(Bytes(4, 0));
      {
        auto inner = ctx.phase("inner");
        ctx.send_all(Bytes(2, 0));
      }
      (void)ctx.advance();
    });
  }
  const RunStats stats = net.run();
  // outer sees both sends; inner only its own. Two parties, two recipients.
  EXPECT_EQ(stats.honest_bytes_by_phase.at("outer"), 2u * 2u * (4u + 2u));
  EXPECT_EQ(stats.honest_bytes_by_phase.at("inner"), 2u * 2u * 2u);
}

TEST(SyncNetwork, ByzantineBytesExcludedFromHonestMetric) {
  SyncNetwork net(3, 1);
  net.set_byzantine(2, std::make_shared<adv::Spam>(1000));
  for (int id = 0; id < 2; ++id) {
    net.set_honest(id, [](PartyContext& ctx) {
      ctx.send_all(Bytes(1, 0));
      (void)ctx.advance();
    });
  }
  const RunStats stats = net.run();
  EXPECT_EQ(stats.honest_bytes, 2u * 3u);
  EXPECT_EQ(stats.bytes_by_party[2], 3u * 1000u);
}

TEST(SyncNetwork, RushingStrategySeesCurrentRoundTraffic) {
  // The byzantine party echoes party 0's round-r message within round r.
  class Rusher final : public ByzantineStrategy {
   public:
    void on_round(const RoundView& view,
                  const std::function<void(int, Bytes)>& send) override {
      for (const auto& sent : *view.honest_traffic) {
        if (sent.from == 0 && sent.to == 1) send(1, sent.payload->to_bytes());
      }
    }
  };
  SyncNetwork net(3, 1);
  net.set_byzantine(2, std::make_shared<Rusher>());
  std::vector<Envelope> got;
  net.set_honest(0, [](PartyContext& ctx) {
    ctx.send(1, Bytes{0x42});
    (void)ctx.advance();
  });
  net.set_honest(1, [&got](PartyContext& ctx) { got = ctx.advance(); });
  (void)net.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].from, 0);
  EXPECT_EQ(got[1].from, 2);
  EXPECT_EQ(got[1].payload, Bytes{0x42});  // copied the same round
}

TEST(SyncNetwork, SplitBrainHalvesSeeWholeInboxButSplitRecipients) {
  SyncNetwork net(4, 1);
  // Party 3 equivocates: instance A (sends 0xA0) talks to {0,1}, instance B
  // (sends 0xB0) to {2}.
  const auto instance = [](std::uint8_t tag) {
    return [tag](PartyContext& ctx) {
      ctx.send_all(Bytes{tag});
      (void)ctx.advance();
    };
  };
  net.set_split_brain(3, instance(0xA0), instance(0xB0), {0, 1});
  std::vector<Bytes> from3(3);
  for (int id = 0; id < 3; ++id) {
    net.set_honest(id, [&from3, id](PartyContext& ctx) {
      ctx.send_all(Bytes{static_cast<std::uint8_t>(id)});
      for (const auto& e : ctx.advance()) {
        if (e.from == 3) from3[static_cast<std::size_t>(id)] = e.payload.owned();
      }
    });
  }
  (void)net.run();
  EXPECT_EQ(from3[0], Bytes{0xA0});
  EXPECT_EQ(from3[1], Bytes{0xA0});
  EXPECT_EQ(from3[2], Bytes{0xB0});
}

TEST(SyncNetwork, UnevenTerminationIsHandled) {
  // Party 0 finishes immediately; the others keep exchanging for 3 rounds.
  auto run = test::run_parties<int>(3, 0, [](PartyContext& ctx, int id) {
    if (id == 0) return 0;
    for (int r = 0; r < 3; ++r) {
      ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
      (void)ctx.advance();
    }
    return 1;
  });
  EXPECT_EQ(run.outputs[0], 0);
  EXPECT_EQ(run.outputs[1], 1);
  EXPECT_EQ(run.stats.rounds, 3u);
}

TEST(SyncNetwork, HonestExceptionPropagates) {
  SyncNetwork net(2, 0);
  net.set_honest(0, [](PartyContext&) { throw Error("boom"); });
  net.set_honest(1, [](PartyContext& ctx) {
    for (int r = 0; r < 100; ++r) (void)ctx.advance();
  });
  EXPECT_THROW(net.run(), Error);
}

TEST(SyncNetwork, RoundLimitEnforced) {
  SyncNetwork net(2, 0);
  for (int id = 0; id < 2; ++id) {
    net.set_honest(id, [](PartyContext& ctx) {
      for (;;) (void)ctx.advance();
    });
  }
  EXPECT_THROW(net.run(/*max_rounds=*/50), Error);
}

TEST(SyncNetwork, RolesMustBeAssigned) {
  SyncNetwork net(3, 1);
  net.set_honest(0, [](PartyContext&) {});
  EXPECT_THROW(net.run(), Error);
}

TEST(SyncNetwork, DuplicateRoleRejected) {
  SyncNetwork net(3, 1);
  net.set_honest(0, [](PartyContext&) {});
  EXPECT_THROW(net.set_honest(0, [](PartyContext&) {}), Error);
}

TEST(SyncNetwork, FirstPerSenderDeduplicates) {
  std::vector<Envelope> inbox{{0, Bytes{1}}, {0, Bytes{2}}, {1, Bytes{3}},
                              {2, Bytes{4}}, {2, Bytes{5}}};
  const auto dedup = first_per_sender(inbox);
  ASSERT_EQ(dedup.size(), 3u);
  EXPECT_EQ(dedup[0].payload, Bytes{1});
  EXPECT_EQ(dedup[1].payload, Bytes{3});
  EXPECT_EQ(dedup[2].payload, Bytes{4});
}

TEST(SyncNetwork, DeterministicAcrossRuns) {
  const auto execute = [] {
    auto run = test::run_parties<std::uint64_t>(
        5, 1,
        [](PartyContext& ctx, int id) {
          std::uint64_t acc = 0;
          for (int r = 0; r < 4; ++r) {
            ctx.send_all(Bytes{static_cast<std::uint8_t>(id * 16 + r)});
            for (const auto& e : ctx.advance()) {
              acc = acc * 131 + e.payload[0] + static_cast<unsigned>(e.from);
            }
          }
          return acc;
        },
        {4}, [](int) { return std::make_shared<adv::Garbage>(); });
    return run.outputs;
  };
  EXPECT_EQ(execute(), execute());
}

}  // namespace
}  // namespace coca::net
