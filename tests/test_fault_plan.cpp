// Environment fault injection: the FaultPlan data model, its deterministic
// interpretation by both engines, and the oracle's charged-party
// accounting.
//
// The load-bearing claims tested here:
//   * replay determinism -- a fault-bearing case produces bit-identical
//     transcripts under any ExecPolicy schedule (faults are data, not
//     wall-clock events);
//   * crash-recovery round-trips -- a party frozen for rounds [a, b)
//     resumes from its own stack (the "persisted state") and the remaining
//     parties still satisfy every invariant, for every protocol target;
//   * inbox permutation is invisible -- the synchronous model leaves
//     within-round delivery order unspecified, so shuffled runs are
//     bit-identical for all protocol targets;
//   * graceful timeouts -- a run that hits the round cap ends with
//     structured TimedOut outcomes instead of an exception, with no stuck
//     fibers/threads left behind.
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include "adversary/fuzzer.h"
#include "async/async_network.h"
#include "net/sync_network.h"

namespace coca::net {
namespace {

// ---------------------------------------------------------------------------
// Data model.

TEST(FaultPlan, ValidateRejectsMalformedEntries) {
  {
    FaultPlan p;
    p.crashes.push_back({/*party=*/4, 0, kNoRecovery});
    EXPECT_THROW(p.validate(4), Error);  // party out of range
  }
  {
    FaultPlan p;
    p.crashes.push_back({0, /*from=*/3, /*until=*/3});
    EXPECT_THROW(p.validate(4), Error);  // empty window
  }
  {
    FaultPlan p;
    p.cuts.push_back({0, -1, 0, kNoRecovery});
    EXPECT_THROW(p.validate(4), Error);  // recipient out of range
  }
  {
    FaultPlan p;
    p.partitions.push_back({{0, 1, 2, 3}, 0, 4});
    EXPECT_THROW(p.validate(4), Error);  // side contains every party
  }
  {
    FaultPlan p;
    p.partitions.push_back({{}, 0, 4});
    EXPECT_THROW(p.validate(4), Error);  // empty side
  }
  {
    FaultPlan p;
    p.shuffles.push_back({/*party=*/-2, /*seed=*/1});
    EXPECT_THROW(p.validate(4), Error);  // only -1 means "everyone"
  }
  FaultPlan ok;
  ok.crashes.push_back({0, 2, 5});
  ok.cuts.push_back({1, 2, 0, kNoRecovery});
  ok.partitions.push_back({{0, 1}, 3, 6});
  ok.shuffles.push_back({-1, 7});
  EXPECT_NO_THROW(ok.validate(4));
}

TEST(FaultPlan, QueriesFollowTheWindowSemantics) {
  FaultPlan p;
  p.crashes.push_back({2, 3, 6});            // recovery at round 6
  p.crashes.push_back({1, 4, kNoRecovery});  // crash-stop
  p.cuts.push_back({0, 3, 2, 4});
  p.partitions.push_back({{0, 1}, 5, 7});

  EXPECT_FALSE(p.crashed(2, 2));
  EXPECT_TRUE(p.crashed(2, 3));
  EXPECT_TRUE(p.crashed(2, 5));
  EXPECT_FALSE(p.crashed(2, 6));  // recovered
  EXPECT_FALSE(p.crash_stopped(2, 100));
  EXPECT_TRUE(p.crashed(1, 4));
  EXPECT_TRUE(p.crashed(1, 1000));  // kNoRecovery never ends
  EXPECT_TRUE(p.crash_stopped(1, 4));
  EXPECT_FALSE(p.crash_stopped(1, 3));

  EXPECT_FALSE(p.link_cut(0, 3, 1));
  EXPECT_TRUE(p.link_cut(0, 3, 2));
  EXPECT_TRUE(p.link_cut(0, 3, 3));
  EXPECT_FALSE(p.link_cut(0, 3, 4));
  EXPECT_FALSE(p.link_cut(3, 0, 2));  // cuts are directed

  // The partition cuts both directions across the split, and nothing
  // within either side.
  EXPECT_TRUE(p.link_cut(0, 2, 5));
  EXPECT_TRUE(p.link_cut(2, 0, 5));
  EXPECT_FALSE(p.link_cut(0, 1, 5));  // same side
  EXPECT_FALSE(p.link_cut(2, 3, 5));  // same side
  EXPECT_FALSE(p.link_cut(0, 2, 7));  // window over

  // Charged: crash victims {1, 2}, cut sender {0}, partition side {0, 1}
  // -- deduplicated and sorted.
  EXPECT_EQ(p.charged(4), (std::vector<int>{0, 1, 2}));

  FaultPlan shuffle_only;
  shuffle_only.shuffles.push_back({-1, 9});
  EXPECT_TRUE(shuffle_only.charged(4).empty());  // shuffles charge nobody
  EXPECT_EQ(shuffle_only.shuffle_seed(3), std::optional<std::uint64_t>(9));
  EXPECT_EQ(p.shuffle_seed(3), std::nullopt);
}

TEST(FaultPlan, OutcomeNamesArePinned) {
  EXPECT_STREQ(to_string(Outcome::kDecided), "Decided");
  EXPECT_STREQ(to_string(Outcome::kTimedOut), "TimedOut");
  EXPECT_STREQ(to_string(Outcome::kCrashed), "Crashed");
  EXPECT_STREQ(to_string(Outcome::kAborted), "AbortedWithEvidence");
}

TEST(FaultPlan, SamplerIsSeededAndRespectsTheChargeBudget) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    FaultSampleConfig cfg;
    cfg.n = 7;
    cfg.horizon = 16;
    cfg.max_charged = 2;
    cfg.seed = seed;
    const FaultPlan a = sample_fault_plan(cfg);
    const FaultPlan b = sample_fault_plan(cfg);
    EXPECT_EQ(a, b);
    EXPECT_NO_THROW(a.validate(cfg.n));
    EXPECT_LE(a.charged(cfg.n).size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Synchronous engine semantics, driven directly.

TEST(SyncFaults, CrashStopUnwindsWithoutStallingTheRun) {
  SyncNetwork net(4, 1);
  FaultPlan plan;
  plan.crashes.push_back({0, 0, kNoRecovery});
  net.set_fault_plan(plan);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [](PartyContext& ctx) {
      for (int r = 0; r < 3; ++r) {
        ctx.send_all(Bytes{0xAA});
        (void)ctx.advance();
      }
    });
  }
  const RunReport report = net.run_report();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.outcomes[0].outcome, Outcome::kCrashed);
  for (int id = 1; id < 4; ++id) {
    EXPECT_EQ(report.outcomes[id].outcome, Outcome::kDecided) << id;
  }
  EXPECT_EQ(report.stats.faults.crashes_injected, 1u);
  EXPECT_EQ(report.stats.faults.recoveries, 0u);
}

TEST(SyncFaults, CrashRecoveryResumesFromTheFrozenStack) {
  // Every party runs 5 beacon rounds; party 2 is frozen for rounds [1, 3).
  // Its straight-line code never learns it was gone: iteration k simply
  // lands in a later network round, and the deliveries it would have seen
  // in rounds 1-2 are gone from its view.
  SyncNetwork net(4, 1);
  FaultPlan plan;
  plan.crashes.push_back({2, 1, 3});
  net.set_fault_plan(plan);
  std::vector<std::vector<std::vector<std::uint8_t>>> seen(4);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [id, &seen](PartyContext& ctx) {
      for (std::uint8_t k = 0; k < 5; ++k) {
        ctx.send_all(Bytes{static_cast<std::uint8_t>(ctx.id()), k});
        std::vector<std::uint8_t> counters;
        for (const auto& e : first_per_sender(ctx.advance())) {
          counters.push_back(e.payload[1]);
        }
        seen[static_cast<std::size_t>(id)].push_back(std::move(counters));
      }
    });
  }
  const RunReport report = net.run_report();
  EXPECT_FALSE(report.timed_out);
  for (int id = 0; id < 4; ++id) {
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(id)].outcome,
              Outcome::kDecided)
        << id;
  }
  // Party 2 executed all 5 iterations (resumed, not restarted) ...
  ASSERT_EQ(seen[2].size(), 5u);
  // ... but its blocked round-0 advance() returns the round-2 delivery:
  // the round-0 and round-1 inboxes would have been consumed in rounds 1-2,
  // while it was down, so they are gone from its view, and in round 2 the
  // others were already broadcasting counter value 2 (party 2's own round-0
  // beacon died with its round-0 inbox, hence only three senders).
  EXPECT_EQ(seen[2][0], (std::vector<std::uint8_t>{2, 2, 2}));
  // Its second iteration runs in round 3: the others are on counter 3 and
  // its own stale counter-1 beacon comes back to it.
  EXPECT_EQ(seen[2][1], (std::vector<std::uint8_t>{3, 3, 1, 3}));
  // The others saw party 2's stale counter 1 in round 3 too ...
  EXPECT_EQ(seen[0][3], (std::vector<std::uint8_t>{3, 3, 1, 3}));
  // ... and nothing from it in the rounds it missed.
  EXPECT_EQ(seen[0][0], (std::vector<std::uint8_t>{0, 0, 0, 0}));
  EXPECT_EQ(seen[0][1], (std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_EQ(report.stats.faults.crashes_injected, 1u);
  EXPECT_EQ(report.stats.faults.recoveries, 1u);
  EXPECT_EQ(report.stats.faults.rounds_missed, 2u);
}

TEST(SyncFaults, TimedOutRunsReportInsteadOfThrowing) {
  // Satellite contract: hitting the round cap in a guarded run yields
  // structured TimedOut outcomes carrying the last completed round, while
  // the legacy run() keeps its exact Error behaviour; repeated early exits
  // must not leak fibers or OS threads (the ASSERTs below would deadlock
  // or crash on a leak, and LSan/TSan builds would flag it).
  for (const int threads : {1, 4}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      SyncNetwork net(4, 1);
      net.set_exec_policy(ExecPolicy{threads});
      for (int id = 0; id < 4; ++id) {
        net.set_honest(id, [](PartyContext& ctx) {
          for (int r = 0; r < 1000; ++r) {
            ctx.send_all(Bytes{0x01});
            (void)ctx.advance();
          }
        });
      }
      const RunReport report = net.run_report(/*max_rounds=*/10);
      EXPECT_TRUE(report.timed_out);
      EXPECT_FALSE(report.watchdog_fired);
      EXPECT_EQ(report.stats.rounds, 10u);
      for (const PartyOutcome& o : report.outcomes) {
        EXPECT_EQ(o.outcome, Outcome::kTimedOut);
        EXPECT_NE(o.evidence.find("still running"), std::string::npos);
      }
    }
  }
  SyncNetwork strict(4, 1);
  for (int id = 0; id < 4; ++id) {
    strict.set_honest(id, [](PartyContext& ctx) {
      for (int r = 0; r < 1000; ++r) {
        ctx.send_all(Bytes{0x01});
        (void)ctx.advance();
      }
    });
  }
  try {
    (void)strict.run(/*max_rounds=*/10);
    FAIL() << "legacy run() must throw on the round cap";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "SyncNetwork: max round count exceeded");
  }
}

TEST(SyncFaults, LinkCutsChargeTheSenderAndDropAfterMetering) {
  SyncNetwork net(4, 1);
  FaultPlan plan;
  plan.cuts.push_back({0, 1, 0, kNoRecovery});
  net.set_fault_plan(plan);
  std::vector<std::size_t> inbox_sizes(4);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [id, &inbox_sizes](PartyContext& ctx) {
      ctx.send_all(Bytes{0x5A, 0x5A});
      inbox_sizes[static_cast<std::size_t>(id)] = ctx.advance().size();
    });
  }
  const RunReport report = net.run_report();
  EXPECT_EQ(inbox_sizes[1], 3u);  // missing exactly party 0's message
  EXPECT_EQ(inbox_sizes[0], 4u);
  EXPECT_EQ(inbox_sizes[2], 4u);
  EXPECT_EQ(inbox_sizes[3], 4u);
  EXPECT_EQ(report.stats.faults.messages_dropped, 1u);
  // The sender still paid for the dropped bytes: all four parties metered
  // identically (4 parties x 4 recipients x 2 bytes).
  EXPECT_EQ(report.stats.honest_bytes, 4u * 4u * 2u);
}

// ---------------------------------------------------------------------------
// Whole-protocol semantics via the fuzzer harness (all eight targets).

adv::FuzzCase fault_case(const std::string& protocol, FaultPlan plan) {
  adv::FuzzCase c;
  c.protocol = protocol;
  c.n = 4;
  c.t = 1;
  c.ell = 8;
  c.input_seed = 0xFA11'0000 + protocol.size();
  c.faults = std::move(plan);
  return c;
}

TEST(ProtocolFaults, CrashRecoveryRoundTripEveryProtocol) {
  // One party (the whole t budget) goes down for rounds [2, 5) and resumes
  // from its frozen stack. The oracle must hold over the other three: the
  // recovered party is charged to the adversary budget, and whatever stale
  // messages it sends after recovery are traffic a byzantine party could
  // have sent anyway.
  for (const std::string& protocol : adv::known_protocols()) {
    SCOPED_TRACE(protocol);
    FaultPlan plan;
    plan.crashes.push_back({3, 2, 5});
    const adv::FuzzCase c = fault_case(protocol, std::move(plan));
    const adv::FuzzOutcome out = adv::execute_case(c);
    EXPECT_TRUE(out.verdict.ok())
        << (out.verdict.violations.empty() ? ""
                                           : out.verdict.violations.front());
    EXPECT_EQ(out.stats.faults.crashes_injected, 1u);
    EXPECT_EQ(out.stats.faults.recoveries, 1u);
  }
}

TEST(ProtocolFaults, InboxPermutationIsInvisibleEveryProtocol) {
  // Within-round delivery order is unspecified in the synchronous model,
  // so an inbox shuffle must be a no-op: bit-identical transcripts, rounds
  // and honest cost across different permutation seeds (and between
  // all-party and single-party shuffles), with every invariant intact.
  for (const std::string& protocol : adv::known_protocols()) {
    SCOPED_TRACE(protocol);
    FaultPlan everyone_a, everyone_b, just_two;
    everyone_a.shuffles.push_back({-1, 7});
    everyone_b.shuffles.push_back({-1, 0xDEADBEEF});
    just_two.shuffles.push_back({2, 13});
    Transcript ta, tb, tc;
    const adv::FuzzOutcome a =
        adv::execute_case(fault_case(protocol, everyone_a), &ta);
    const adv::FuzzOutcome b =
        adv::execute_case(fault_case(protocol, everyone_b), &tb);
    const adv::FuzzOutcome c =
        adv::execute_case(fault_case(protocol, just_two), &tc);
    EXPECT_TRUE(a.verdict.ok())
        << (a.verdict.violations.empty() ? "" : a.verdict.violations.front());
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ta, tc);
    EXPECT_EQ(a.stats.rounds, b.stats.rounds);
    EXPECT_EQ(a.stats.honest_bytes, b.stats.honest_bytes);
    EXPECT_EQ(a.verdict.violations, b.verdict.violations);
    EXPECT_EQ(a.verdict.violations, c.verdict.violations);
    EXPECT_GT(a.stats.faults.inboxes_shuffled, 0u);
  }
}

TEST(ProtocolFaults, FaultReplayIsDeterministicAcrossSchedules) {
  // A composite plan (crash-recovery + directed cut + shuffles) replays to
  // the same transcript serially and under an 8-thread window: faults are
  // part of the case data, not wall-clock events.
  for (const std::string& protocol : {std::string("PiZ"),
                                      std::string("BAPlus"),
                                      std::string("FixedLengthCA")}) {
    SCOPED_TRACE(protocol);
    FaultPlan plan;
    plan.crashes.push_back({1, 2, 4});
    plan.cuts.push_back({1, 0, 5, 9});
    plan.shuffles.push_back({-1, 99});
    adv::FuzzCase c = fault_case(protocol, std::move(plan));
    c.threads = 1;
    Transcript serial1, serial2, windowed;
    const adv::FuzzOutcome s1 = adv::execute_case(c, &serial1);
    const adv::FuzzOutcome s2 = adv::execute_case(c, &serial2);
    c.threads = 8;
    const adv::FuzzOutcome w = adv::execute_case(c, &windowed);
    EXPECT_EQ(serial1, serial2);
    EXPECT_EQ(serial1, windowed);
    EXPECT_EQ(s1.verdict.violations, s2.verdict.violations);
    EXPECT_EQ(s1.verdict.violations, w.verdict.violations);
    EXPECT_EQ(s1.stats.rounds, w.stats.rounds);
    EXPECT_EQ(s1.stats.honest_bytes, w.stats.honest_bytes);
  }
}

TEST(ProtocolFaults, CaseValidationEnforcesDisjointBudgets) {
  // A fault charged to an already-corrupted party double-spends the
  // adversary budget.
  adv::FuzzCase overlap;
  overlap.protocol = "PiZ";
  overlap.corrupted = {1};
  overlap.faults.crashes.push_back({1, 0, kNoRecovery});
  EXPECT_THROW(adv::execute_case(overlap), Error);

  // A case with no adversary at all is a plain honest run -- allowed (the
  // trace tooling uses it) and it must pass the oracle.
  adv::FuzzCase nothing;
  nothing.protocol = "PiZ";
  const adv::FuzzOutcome out = adv::execute_case(nothing);
  EXPECT_TRUE(out.verdict.ok());
}

TEST(ProtocolFaults, CorpusJsonRoundTripsBothSchemas) {
  adv::CorpusEntry v2;
  v2.c = fault_case("PiZ", {});
  v2.c.corrupted = {2};  // mixed byzantine + environment case
  v2.c.faults.crashes.push_back({1, 2, 5});
  v2.c.faults.crashes.push_back({3, 0, kNoRecovery});
  v2.c.faults.cuts.push_back({0, 2, 1, 4});
  v2.c.faults.partitions.push_back({{0, 3}, 6, 9});
  v2.c.faults.shuffles.push_back({-1, 42});
  v2.c.t = 3;  // make room: this entry only round-trips, it never runs
  v2.c.n = 10;
  v2.violations = {"crash: example"};
  v2.note = "schema v2 round trip";
  const std::string json = adv::to_json(v2);
  EXPECT_NE(json.find("\"coca-fuzz-v2\""), std::string::npos);
  EXPECT_EQ(adv::corpus_entry_from_json(json), v2);

  // kNoRecovery survives the trip as a plain integer.
  EXPECT_NE(json.find(std::to_string(kNoRecovery)), std::string::npos);

  // Fault-free entries keep emitting schema v1, so every pre-existing
  // corpus file and external tooling sees unchanged bytes.
  adv::CorpusEntry v1 = v2;
  v1.c.faults = {};
  const std::string json1 = adv::to_json(v1);
  EXPECT_NE(json1.find("\"coca-fuzz-v1\""), std::string::npos);
  EXPECT_EQ(json1.find("\"faults\""), std::string::npos);
  EXPECT_EQ(adv::corpus_entry_from_json(json1), v1);
}

// ---------------------------------------------------------------------------
// Asynchronous mirror.

TEST(AsyncFaults, RejectsFaultsTheSchedulerAlreadySubsumes) {
  async::AsyncNetwork net(4, 1);
  FaultPlan recovery;
  recovery.crashes.push_back({0, 2, 5});  // crash-recovery
  EXPECT_THROW(net.set_fault_plan(recovery), Error);
  FaultPlan shuffle;
  shuffle.shuffles.push_back({-1, 1});
  EXPECT_THROW(net.set_fault_plan(shuffle), Error);
  FaultPlan ok;
  ok.crashes.push_back({0, 0, kNoRecovery});
  ok.cuts.push_back({1, 2, 0, kNoRecovery});
  ok.partitions.push_back({{0}, 0, 10});
  EXPECT_NO_THROW(net.set_fault_plan(ok));
}

TEST(AsyncFaults, CrashStopStarvesGracefullyInsteadOfDeadlocking) {
  // Everyone broadcasts once and waits for all n broadcasts (its own
  // included). Process 3 is crashed from delivery step 0: it unwinds
  // before sending anything and its queued inbound traffic is purged, so
  // the survivors block on a 4th message that never exists. With a
  // FaultPlan installed that is a graceful end state (stats.starved), not
  // the deadlock error the fault-free engine throws.
  async::AsyncNetwork net(4, 1);
  FaultPlan plan;
  plan.crashes.push_back({3, 0, kNoRecovery});
  net.set_fault_plan(plan);
  for (int id = 0; id < 4; ++id) {
    net.set_process(id, [](async::ProcessContext& ctx) {
      ctx.send_all(Bytes{0xB0});
      for (int k = 0; k < ctx.n(); ++k) (void)ctx.receive();
      ctx.mark_done();
    });
  }
  const async::AsyncStats stats = net.run();
  EXPECT_TRUE(stats.starved);
  EXPECT_EQ(stats.faults.crashes_injected, 1u);
  EXPECT_GT(stats.faults.messages_dropped, 0u);
}

TEST(AsyncFaults, WindowedCutDropsOnlyInWindowDeliveries) {
  // The cut 0 -> 1 covers delivery steps [0, 2): party 0's first send to 1
  // is dropped, a later resend (after two deliveries advanced the step
  // clock past the window) arrives, and the protocol completes.
  async::AsyncNetwork net(4, 1);
  FaultPlan plan;
  plan.cuts.push_back({0, 1, 0, 2});
  net.set_fault_plan(plan);
  std::size_t received_by_1 = 0;
  net.set_process(0, [](async::ProcessContext& ctx) {
    ctx.send(1, Bytes{0x01});  // dropped: step clock is inside [0, 2)
    ctx.send(2, Bytes{0x02});
    ctx.send(3, Bytes{0x03});
    (void)ctx.receive();       // ack from 2 -- by now >= 2 deliveries done
    ctx.send(1, Bytes{0x04});  // window over: delivered
    ctx.mark_done();
  });
  net.set_process(1, [&received_by_1](async::ProcessContext& ctx) {
    (void)ctx.receive();
    ++received_by_1;
    ctx.mark_done();
  });
  net.set_process(2, [](async::ProcessContext& ctx) {
    (void)ctx.receive();
    ctx.send(0, Bytes{0xAC});
    ctx.mark_done();
  });
  net.set_process(3, [](async::ProcessContext& ctx) {
    (void)ctx.receive();
    ctx.mark_done();
  });
  const async::AsyncStats stats = net.run();
  EXPECT_FALSE(stats.starved);
  EXPECT_EQ(received_by_1, 1u);
  EXPECT_EQ(stats.faults.messages_dropped, 1u);
}

}  // namespace
}  // namespace coca::net
