// The adversary battery itself: each strategy behaves as documented, and
// the installer wires the right corruption shape into the network.
#include "adversary/spec.h"

#include <gtest/gtest.h>

#include "ca/driver.h"
#include "tests/support.h"

namespace coca::adv {
namespace {

// Collects everything a probe party receives from the byzantine party over
// `rounds` rounds while honest parties broadcast a beacon each round.
std::vector<Bytes> probe_strategy(std::shared_ptr<net::ByzantineStrategy> s,
                                  int rounds) {
  net::SyncNetwork net(3, 1);
  net.set_byzantine(2, std::move(s));
  std::vector<Bytes> from_byz;
  net.set_honest(0, [rounds, &from_byz](net::PartyContext& ctx) {
    for (int r = 0; r < rounds; ++r) {
      ctx.send_all(Bytes{0xBE, static_cast<std::uint8_t>(r)});
      for (const auto& e : ctx.advance()) {
        if (e.from == 2) from_byz.push_back(e.payload.owned());
      }
    }
  });
  net.set_honest(1, [rounds](net::PartyContext& ctx) {
    for (int r = 0; r < rounds; ++r) {
      ctx.send_all(Bytes{0xAF, static_cast<std::uint8_t>(r)});
      (void)ctx.advance();
    }
  });
  (void)net.run();
  return from_byz;
}

TEST(Strategies, SilentSendsNothing) {
  EXPECT_TRUE(probe_strategy(std::make_shared<Silent>(), 5).empty());
}

TEST(Strategies, GarbageSendsEveryRound) {
  const auto msgs = probe_strategy(std::make_shared<Garbage>(), 5);
  EXPECT_EQ(msgs.size(), 5u);
  for (const auto& m : msgs) {
    EXPECT_GE(m.size(), 1u);
    EXPECT_LE(m.size(), 40u);
  }
}

TEST(Strategies, SpamSendsConfiguredSize) {
  const auto msgs = probe_strategy(std::make_shared<Spam>(512), 3);
  ASSERT_EQ(msgs.size(), 3u);
  for (const auto& m : msgs) EXPECT_EQ(m.size(), 512u);
}

TEST(Strategies, ReplaySendsOnlyObservedPayloads) {
  const auto msgs = probe_strategy(std::make_shared<Replay>(), 4);
  EXPECT_FALSE(msgs.empty());
  for (const auto& m : msgs) {
    ASSERT_EQ(m.size(), 2u);
    EXPECT_TRUE(m[0] == 0xBE || m[0] == 0xAF) << "not an honest payload";
  }
}

TEST(Strategies, EchoMirrorsLastRound) {
  const auto msgs = probe_strategy(std::make_shared<Echo>(), 3);
  // Round 0: nothing received yet, so nothing echoed; rounds 1..2 echo the
  // probe's previous beacon.
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0], (Bytes{0xBE, 0}));
  EXPECT_EQ(msgs[1], (Bytes{0xBE, 1}));
}

TEST(Strategies, ConstantByteIsConstant) {
  const auto msgs = probe_strategy(std::make_shared<ConstantByte>(0x01), 4);
  ASSERT_EQ(msgs.size(), 4u);
  for (const auto& m : msgs) EXPECT_EQ(m, Bytes{0x01});
}

TEST(Installer, AllKindsInstallAndRun) {
  for (const Kind kind : kAllKinds) {
    net::SyncNetwork net(4, 1);
    const ProtocolHooks hooks{
        [](net::PartyContext& ctx) { (void)ctx.advance(); },
        [](net::PartyContext& ctx) { (void)ctx.advance(); }};
    install(net, 3, kind, hooks);
    for (int id = 0; id < 3; ++id) {
      net.set_honest(id, [](net::PartyContext& ctx) {
        ctx.send_all(Bytes{1});
        (void)ctx.advance();
      });
    }
    EXPECT_NO_THROW((void)net.run()) << to_string(kind);
  }
}

TEST(Installer, ProtocolKindsRequireHooks) {
  net::SyncNetwork net(4, 1);
  EXPECT_THROW(install(net, 0, Kind::kExtremeLow, {}), Error);
  EXPECT_THROW(install(net, 1, Kind::kSplitBrain, {}), Error);
  EXPECT_NO_THROW(install(net, 2, Kind::kGarbage, {}));
}

// Every corruption kind (scripted strategies, extreme-input corruptions,
// the split-brain equivocator) runs under the parallel round engine at
// least once, and the honest parties' decisions -- outputs, metered bits,
// and rounds -- are the same as under the serial reference schedule. This
// is the adversary-facing slice of the transcript-equivalence contract:
// rushing strategies observe the identical honest traffic either way.
TEST(Installer, AllKindsDecideIdenticallyUnderParallelEngine) {
  const ca::ConvexAgreement proto;
  const auto run_with = [&proto](Kind kind, int threads) {
    ca::SimConfig cfg;
    cfg.n = 7;
    cfg.t = 2;
    for (int id = 0; id < cfg.n; ++id) {
      cfg.inputs.emplace_back(1000 + 37 * id);
    }
    cfg.corruptions.push_back({2, kind});
    cfg.threads = threads;
    return ca::run_simulation(proto, cfg);
  };
  for (const Kind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    const ca::SimResult serial = run_with(kind, 1);
    const ca::SimResult parallel = run_with(kind, 3);
    EXPECT_TRUE(serial.agreement());
    EXPECT_EQ(serial.outputs, parallel.outputs);
    EXPECT_EQ(serial.stats.honest_bytes, parallel.stats.honest_bytes);
    EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds);
    EXPECT_EQ(serial.stats.bytes_by_party, parallel.stats.bytes_by_party);
  }
}

TEST(Installer, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (const Kind kind : kAllKinds) {
    EXPECT_TRUE(names.insert(to_string(kind)).second);
    EXPECT_NE(to_string(kind), "unknown");
  }
  EXPECT_EQ(names.size(), std::size(kAllKinds));
}

// The three definitions of the taxonomy -- the enum (via kKindCount), the
// kAllKinds sweep array, and the to_string/install switches -- must stay in
// sync: a Kind added to one but not the others fails here, loudly, instead
// of silently dropping out of the sweeps.
TEST(Installer, TaxonomyStaysInSync) {
  // Every enumerator value [0, kKindCount) appears in kAllKinds exactly once.
  std::set<int> listed;
  for (const Kind kind : kAllKinds) {
    EXPECT_TRUE(listed.insert(static_cast<int>(kind)).second)
        << "duplicate kAllKinds entry " << to_string(kind);
  }
  ASSERT_EQ(listed.size(), kKindCount);
  for (std::size_t v = 0; v < kKindCount; ++v) {
    EXPECT_TRUE(listed.contains(static_cast<int>(v))) << "enum value " << v;
  }
  // Every enumerator has a real name and a working installer arm.
  const ProtocolHooks hooks{
      [](net::PartyContext& ctx) { (void)ctx.advance(); },
      [](net::PartyContext& ctx) { (void)ctx.advance(); }};
  for (std::size_t v = 0; v < kKindCount; ++v) {
    const Kind kind = static_cast<Kind>(v);
    EXPECT_NE(to_string(kind), "unknown") << "enum value " << v;
    net::SyncNetwork net(4, 1);
    EXPECT_NO_THROW(install(net, 3, kind, hooks)) << to_string(kind);
  }
  // A value past the end is rejected by both, so a forgotten kKindCount bump
  // cannot masquerade as a real Kind.
  const Kind past_end = static_cast<Kind>(kKindCount);
  EXPECT_EQ(to_string(past_end), "unknown");
  net::SyncNetwork net(4, 1);
  EXPECT_THROW(install(net, 3, past_end, hooks), Error);
}

// kSilent is unified with the environment fault model: installing it must
// register a round-0 crash-stop in the network's FaultPlan rather than a
// scripted strategy.
TEST(Installer, SilentInstallsARoundZeroCrashStop) {
  net::SyncNetwork net(4, 1);
  install(net, 2, Kind::kSilent, ProtocolHooks{});
  ASSERT_EQ(net.fault_plan().crashes.size(), 1u);
  const auto& crash = net.fault_plan().crashes.front();
  EXPECT_EQ(crash.party, 2);
  EXPECT_EQ(crash.from_round, 0u);
  EXPECT_EQ(crash.until_round, net::kNoRecovery);
}

// ... and the two "dead party" code paths must not drift: a fault-plan
// crash at round 0 is observably identical to the scripted Silent strategy
// -- same delivered messages, same round count, same honest cost.
TEST(Installer, SilentMatchesScriptedSilentBitForBit) {
  struct Probe {
    std::vector<std::pair<int, Bytes>> received;  // party 0's full inbox
    net::RunStats stats;
  };
  const auto run_probe = [](bool scripted) {
    net::SyncNetwork net(4, 1);
    if (scripted) {
      net.set_byzantine(3, std::make_shared<Silent>());
    } else {
      install(net, 3, Kind::kSilent, ProtocolHooks{});
    }
    Probe probe;
    for (int id = 0; id < 3; ++id) {
      net.set_honest(id, [id, &probe](net::PartyContext& ctx) {
        for (int r = 0; r < 6; ++r) {
          ctx.send_all(Bytes{static_cast<std::uint8_t>(id),
                             static_cast<std::uint8_t>(r)});
          for (const auto& e : ctx.advance()) {
            if (id == 0) probe.received.emplace_back(e.from, e.payload.owned());
          }
        }
      });
    }
    probe.stats = net.run();
    return probe;
  };
  const Probe scripted = run_probe(true);
  const Probe installed = run_probe(false);
  EXPECT_FALSE(scripted.received.empty());
  EXPECT_EQ(scripted.received, installed.received);
  EXPECT_EQ(scripted.stats.rounds, installed.stats.rounds);
  EXPECT_EQ(scripted.stats.honest_bytes, installed.stats.honest_bytes);
  EXPECT_EQ(scripted.stats.honest_messages, installed.stats.honest_messages);
  // Only the fault bookkeeping may differ: the installed flavour is an
  // injected crash, the scripted flavour is a byzantine strategy.
  EXPECT_EQ(installed.stats.faults.crashes_injected, 1u);
  EXPECT_EQ(scripted.stats.faults.crashes_injected, 0u);
}

TEST(Strategies, ChaosIsSeedDeterministicAndVaried) {
  const auto a = probe_strategy(std::make_shared<Chaos>(42), 8);
  const auto b = probe_strategy(std::make_shared<Chaos>(42), 8);
  const auto c = probe_strategy(std::make_shared<Chaos>(43), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Chaos must actually engage (all-silent would be a regression).
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace coca::adv
