// VectorCA: coordinate-wise lifting of scalar CA, plus the gradecast-based
// AA variant (grouped here to keep binaries balanced).
#include "ca/vector_ca.h"

#include <gtest/gtest.h>

#include "aa/approximate_agreement.h"
#include "adversary/strategies.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::max_t;
using test::run_parties;

TEST(VectorCA, AgreementAndBoxValidity) {
  const int n = 7;
  const int t = 2;
  const ConvexAgreement scalar;
  const VectorCA vca(scalar);
  const std::size_t dim = 3;
  Rng rng(1);
  std::vector<std::vector<BigInt>> inputs;
  for (int i = 0; i < n; ++i) {
    std::vector<BigInt> v;
    for (std::size_t d = 0; d < dim; ++d) {
      v.emplace_back(static_cast<std::int64_t>(rng.below(100)) - 50);
    }
    inputs.push_back(std::move(v));
  }
  auto run = run_parties<std::vector<BigInt>>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return vca.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      {6}, [](int) { return std::make_shared<adv::Garbage>(); });
  EXPECT_TRUE(test::all_agree(run.outputs));
  const auto& agreed = *run.outputs[0];
  ASSERT_EQ(agreed.size(), dim);
  for (std::size_t d = 0; d < dim; ++d) {
    BigInt lo = inputs[0][d], hi = inputs[0][d];
    for (int i = 1; i < 6; ++i) {
      const BigInt& v = inputs[static_cast<std::size_t>(i)][d];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    EXPECT_GE(agreed[d], lo) << d;
    EXPECT_LE(agreed[d], hi) << d;
  }
}

TEST(VectorCA, DimensionOneMatchesScalar) {
  const int n = 4;
  const ConvexAgreement scalar;
  const VectorCA vca(scalar);
  std::vector<BigInt> scalar_outs(n, BigInt(0));
  auto vec_run = run_parties<std::vector<BigInt>>(
      n, 1, [&](net::PartyContext& ctx, int id) {
        return vca.run(ctx, {BigInt(100 + id)});
      });
  auto scalar_run = run_parties<BigInt>(n, 1, [&](net::PartyContext& ctx, int id) {
    return scalar.run(ctx, BigInt(100 + id));
  });
  EXPECT_EQ((*vec_run.outputs[0])[0], *scalar_run.outputs[0]);
}

TEST(VectorCA, RejectsEmptyVector) {
  const ConvexAgreement scalar;
  const VectorCA vca(scalar);
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&](net::PartyContext& ctx) {
      (void)vca.run(ctx, {});
    });
  }
  EXPECT_THROW(net.run(), Error);
}

}  // namespace
}  // namespace coca::ca

namespace coca::aa {
namespace {

using test::max_t;
using test::run_parties;

class GradecastAASweep : public ::testing::TestWithParam<int> {};

TEST_P(GradecastAASweep, ConvergesAndStaysValid) {
  const int n = GetParam();
  const int t = max_t(n);
  const GradecastApproxAgreement aa;
  Rng rng(static_cast<std::uint64_t>(n) * 3);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 16)));
  }
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(3 * i);
  const std::size_t rounds = 18;
  auto run = run_parties<BigInt>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
      },
      byz, [](int) { return std::make_shared<adv::Replay>(); });

  std::optional<BigInt> out_lo, out_hi, in_lo, in_hi;
  for (std::size_t id = 0; id < run.outputs.size(); ++id) {
    if (!run.outputs[id]) continue;
    const BigInt& out = *run.outputs[id];
    if (!out_lo || out < *out_lo) out_lo = out;
    if (!out_hi || out > *out_hi) out_hi = out;
    if (!in_lo || inputs[id] < *in_lo) in_lo = inputs[id];
    if (!in_hi || inputs[id] > *in_hi) in_hi = inputs[id];
  }
  EXPECT_GE(*out_lo, *in_lo);
  EXPECT_LE(*out_hi, *in_hi);
  EXPECT_LE((*out_hi - *out_lo).magnitude(), BigNat(2 * rounds + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GradecastAASweep,
                         ::testing::Values(4, 7, 10, 13));

TEST(GradecastAA, AgreesWithHashEchoVariantOnCleanRuns) {
  // Both update rules are trimmed midpoints over the same accepted
  // multisets when nobody is byzantine, so outputs coincide exactly.
  const int n = 7;
  const int t = 2;
  const SyncApproxAgreement hash_echo;
  const GradecastApproxAgreement graded;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) inputs.emplace_back(1000 * i);
  const std::size_t rounds = 10;
  auto a = run_parties<BigInt>(n, t, [&](net::PartyContext& ctx, int id) {
    return hash_echo.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
  });
  auto b = run_parties<BigInt>(n, t, [&](net::PartyContext& ctx, int id) {
    return graded.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
  });
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(GradecastAA, ThreeRoundsPerIteration) {
  const GradecastApproxAgreement aa;
  auto run = run_parties<BigInt>(4, 1, [&](net::PartyContext& ctx, int id) {
    return aa.run(ctx, BigInt(id), 5);
  });
  EXPECT_EQ(run.stats.rounds, 15u);
}

}  // namespace
}  // namespace coca::aa
