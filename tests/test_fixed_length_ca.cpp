// FixedLengthCA (Theorem 2) and FixedLengthCABlocks (Theorem 4).
#include "ca/fixed_length_ca.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/fixed_length_ca_blocks.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

struct Fixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
};

void check_ca(const std::vector<std::optional<Bitstring>>& outputs,
              const std::vector<Bitstring>& inputs) {
  EXPECT_TRUE(all_agree(outputs));
  const Bitstring* lo = nullptr;
  const Bitstring* hi = nullptr;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;
    const Bitstring& in = inputs[id];
    if (!lo ||
        Bitstring::numeric_compare(in, *lo) == std::strong_ordering::less) {
      lo = &in;
    }
    if (!hi ||
        Bitstring::numeric_compare(in, *hi) == std::strong_ordering::greater) {
      hi = &in;
    }
  }
  for (const auto& out : outputs) {
    if (!out) continue;
    EXPECT_NE(Bitstring::numeric_compare(*out, *lo),
              std::strong_ordering::less);
    EXPECT_NE(Bitstring::numeric_compare(*out, *hi),
              std::strong_ordering::greater);
  }
}

class FixedLengthSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, int>> {};

TEST_P(FixedLengthSweep, CAWithoutAdversary) {
  const auto [n, ell, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  const FixedLengthCA ca(f.kit);
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + n + ell);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(rng.bits(ell));
  auto run = run_parties<Bitstring>(n, t, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, ell, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

TEST_P(FixedLengthSweep, CAUnderAdversaries) {
  const auto [n, ell, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  const FixedLengthCA ca(f.kit);
  Rng rng(static_cast<std::uint64_t>(seed) * 613 + n + ell);
  std::vector<Bitstring> inputs;
  // Clustered inputs: the adversary tries to pull the output outside.
  for (int i = 0; i < n; ++i) {
    Bitstring v = Bitstring::zeros(ell);
    const std::size_t tail = std::min<std::size_t>(ell, 6);
    const Bitstring noise = rng.bits(tail);
    for (std::size_t b = 0; b < tail; ++b) {
      v.set_bit(ell - tail + b, noise.bit(b));
    }
    inputs.push_back(v);
  }
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<Bitstring>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return ca.run(ctx, ell, inputs[static_cast<std::size_t>(id)]);
      },
      byz,
      [&](int id) -> std::shared_ptr<net::ByzantineStrategy> {
        switch (id % 3) {
          case 0:
            return std::make_shared<adv::Replay>();
          case 1:
            return std::make_shared<adv::Garbage>();
          default:
            return std::make_shared<adv::ConstantByte>(1);
        }
      });
  check_ca(run.outputs, inputs);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FixedLengthSweep,
    ::testing::Combine(::testing::Values(4, 7, 10),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{65}),
                       ::testing::Values(1, 2)));

TEST(FixedLengthCA, IdenticalInputsShortCircuit) {
  // With identical inputs FindPrefix returns the full value and the
  // protocol terminates without AddLastBit/GetOutput.
  const int n = 7;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  const Bitstring v = Bitstring::from_u64(0xCAFE, 16);
  auto run = run_parties<Bitstring>(
      n, 2, [&](net::PartyContext& ctx, int) { return ca.run(ctx, 16, v); });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, v);
  EXPECT_EQ(run.stats.honest_bytes_by_phase.count("GetOutput"), 0u);
}

TEST(FixedLengthCA, TwoClustersLandsBetween) {
  // Half the honest parties at 1000, half at 1010: output in [1000, 1010].
  const int n = 10;
  const int t = 3;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  auto run = run_parties<Bitstring>(n, t, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, 16, Bitstring::from_u64(id % 2 ? 1000 : 1010, 16));
  });
  EXPECT_TRUE(all_agree(run.outputs));
  const std::uint64_t out = run.outputs[0]->to_u64();
  EXPECT_GE(out, 1000u);
  EXPECT_LE(out, 1010u);
}

TEST(FixedLengthCA, AdjacentValues) {
  // v and v+1 differ in their last bit only after a long carry chain:
  // exercises the MIN/MAX snapping logic.
  const int n = 4;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  auto run = run_parties<Bitstring>(n, 1, [&](net::PartyContext& ctx, int id) {
    return ca.run(ctx, 16, Bitstring::from_u64(id < 2 ? 0x7FFF : 0x8000, 16));
  });
  EXPECT_TRUE(all_agree(run.outputs));
  const std::uint64_t out = run.outputs[0]->to_u64();
  EXPECT_TRUE(out == 0x7FFF || out == 0x8000) << out;
}

TEST(FixedLengthCA, SplitBrainOnLBAPlusInput) {
  // The equivocator feeds different values into every Pi_lBA+ instance.
  const int n = 7;
  const int t = 2;
  Fixture f;
  const FixedLengthCA ca(f.kit);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(Bitstring::from_u64(5000 + static_cast<unsigned>(i), 16));
  }
  net::SyncNetwork net(n, t);
  std::vector<std::optional<Bitstring>> outputs(n);
  const auto honest_fn = [&](int id) {
    return [&, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          ca.run(ctx, 16, inputs[static_cast<std::size_t>(id)]);
    };
  };
  const auto byz_instance = [&](std::uint64_t value) {
    return [&, value](net::PartyContext& ctx) {
      (void)ca.run(ctx, 16, Bitstring::from_u64(value, 16));
    };
  };
  net.set_split_brain(5, byz_instance(0), byz_instance(0xFFFF), {0, 2, 4});
  net.set_split_brain(6, byz_instance(123), byz_instance(61234), {1, 3});
  for (int id = 0; id < 5; ++id) net.set_honest(id, honest_fn(id));
  (void)net.run();
  check_ca(outputs, inputs);
}

class BlocksSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlocksSweep, CAOnLongValues) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  const FixedLengthCABlocks ca(f.kit);
  const std::size_t ell = static_cast<std::size_t>(n) * n * 16;
  Rng rng(static_cast<std::uint64_t>(seed) * 17 + n);
  const Bitstring head = rng.bits(ell - 10);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < n; ++i) {
    Bitstring v = head;
    v.append(rng.bits(10));
    inputs.push_back(v);
  }
  std::set<int> byz;
  if (t > 0) byz.insert(n - 1);
  auto run = run_parties<Bitstring>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return ca.run(ctx, ell, inputs[static_cast<std::size_t>(id)]);
      },
      byz, [](int) { return std::make_shared<adv::Replay>(); });
  check_ca(run.outputs, inputs);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlocksSweep,
                         ::testing::Combine(::testing::Values(4, 7),
                                            ::testing::Values(1, 2)));

TEST(FixedLengthCABlocks, RejectsNonMultipleLength) {
  Fixture f;
  const FixedLengthCABlocks ca(f.kit);
  net::SyncNetwork net(4, 1);
  for (int id = 0; id < 4; ++id) {
    net.set_honest(id, [&](net::PartyContext& ctx) {
      (void)ca.run(ctx, 17, Bitstring::zeros(17));  // 17 not multiple of 16
    });
  }
  EXPECT_THROW(net.run(), Error);
}

}  // namespace
}  // namespace coca::ca
