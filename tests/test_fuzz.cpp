// Protocol-level robustness fuzzing: every protocol layer is exercised
// against the seeded Chaos strategy (adversary/strategies.h) across many
// seeds. The assertion is the shared invariant oracle: no crash / no hang
// (termination), agreement, convex validity where applicable, and an
// honest-bits smoke budget. The search-based counterpart with structured
// mutations lives in adv::Fuzzer (tests/test_fuzzer.cpp, tools/fuzz_driver).
#include <gtest/gtest.h>

#include "ba/ba_plus.h"
#include "ba/long_ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/driver.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca {
namespace {

using test::all_agree;
using test::InvariantOracle;
using test::max_t;
using test::run_parties;

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, BAPlusSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAPlus bap({&bin, &tc});
  auto run = run_parties<ba::MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return bap.run(ctx, Bytes{static_cast<std::uint8_t>(id / 3)});
      },
      {1, 5},
      [&](int id) {
        return std::make_shared<adv::Chaos>(
            static_cast<std::uint64_t>(seed) * 10 +
            static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(InvariantOracle::agreement(run.outputs));
}

TEST_P(FuzzSeeds, LongBAPlusSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::LongBAPlus lba({&bin, &tc});
  Rng vrng(static_cast<std::uint64_t>(seed));
  const Bytes shared = vrng.bytes(300);
  auto run = run_parties<ba::MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int) { return lba.run(ctx, shared); },
      {0, 6},
      [&](int id) {
        return std::make_shared<adv::Chaos>(
            static_cast<std::uint64_t>(seed) * 31 +
            static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(InvariantOracle::agreement(run.outputs));
  // All honest parties share the input, so chaos cannot force bottom or a
  // different value (Validity).
  for (const auto& out : run.outputs) {
    if (!out) continue;
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ(**out, shared);
  }
  // Honest communication must be insensitive to the chaos traffic: a very
  // generous multiple of the Theorem 1 cost O(l n + kappa n^2 log n), as a
  // smoke budget against honest-side blowups.
  EXPECT_TRUE(InvariantOracle::honest_bits_within(run.stats, 64ull * 8 *
                                                  (300 * 8 * n + 256 * n * n * 3)));
}

TEST_P(FuzzSeeds, PiZSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  Rng vrng(static_cast<std::uint64_t>(seed) * 7);
  net::SyncNetwork net(n, t);
  const ca::ConvexAgreement proto;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(BigNat::pow2(10) + vrng.nat_below_pow2(10), false);
  }
  std::vector<std::optional<BigInt>> outputs(n);
  net.set_byzantine(2, std::make_shared<adv::Chaos>(
                           static_cast<std::uint64_t>(seed) * 101 + 2));
  net.set_byzantine(4, std::make_shared<adv::Chaos>(
                           static_cast<std::uint64_t>(seed) * 101 + 4));
  for (const int id : {0, 1, 3, 5, 6}) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
    });
  }
  (void)net.run();

  ca::SimResult r;
  r.outputs = std::move(outputs);
  EXPECT_TRUE(InvariantOracle::convex_agreement(r, inputs));
}

TEST_P(FuzzSeeds, HighCostCASurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ca::HighCostCA hc;
  Rng vrng(static_cast<std::uint64_t>(seed) * 13);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(800 + vrng.below(40)));
  auto run = run_parties<BigNat>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return hc.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      {0, 3},  // includes the first king
      [&](int id) {
        return std::make_shared<adv::Chaos>(
            static_cast<std::uint64_t>(seed) * 53 +
            static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(InvariantOracle::agreement(run.outputs));
  EXPECT_TRUE(InvariantOracle::within(run.outputs, BigNat(800), BigNat(839)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 12));

}  // namespace
}  // namespace coca
