// Protocol-level robustness fuzzing: every protocol layer is exercised
// against randomized byzantine byte streams across many seeds. The
// assertion is three-fold: no crash / no hang (termination), agreement, and
// convex validity where applicable. This is the failure-injection
// counterpart of the wire-level fuzz in test_wire.cpp.
#include <gtest/gtest.h>

#include "ba/ba_plus.h"
#include "ba/long_ba_plus.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/driver.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

// A seeded chaos strategy: every round, for every recipient, flips a coin
// among silence / short garbage / long garbage / replayed honest payload /
// truncated honest payload.
class Chaos final : public net::ByzantineStrategy {
 public:
  explicit Chaos(std::uint64_t seed) : rng_(seed) {}

  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (int to = 0; to < view.n; ++to) {
      switch (rng_.below(5)) {
        case 0:
          break;  // silence
        case 1:
          send(to, rng_.bytes(1 + rng_.below(16)));
          break;
        case 2:
          send(to, rng_.bytes(64 + rng_.below(512)));
          break;
        case 3: {
          const auto& traffic = *view.honest_traffic;
          if (!traffic.empty()) {
            send(to, *traffic[rng_.below(traffic.size())].payload);
          }
          break;
        }
        default: {
          const auto& traffic = *view.honest_traffic;
          if (!traffic.empty()) {
            Bytes cut = *traffic[rng_.below(traffic.size())].payload;
            cut.resize(rng_.below(cut.size() + 1));
            send(to, std::move(cut));
          }
          break;
        }
      }
    }
  }

 private:
  Rng rng_;
};

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, BAPlusSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::BAPlus bap({&bin, &tc});
  auto run = run_parties<ba::MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return bap.run(ctx, Bytes{static_cast<std::uint8_t>(id / 3)});
      },
      {1, 5},
      [&](int id) {
        return std::make_shared<Chaos>(static_cast<std::uint64_t>(seed) * 10 +
                                       static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST_P(FuzzSeeds, LongBAPlusSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ba::PhaseKingBinary bin;
  const ba::TurpinCoan tc(bin);
  const ba::LongBAPlus lba({&bin, &tc});
  Rng vrng(static_cast<std::uint64_t>(seed));
  const Bytes shared = vrng.bytes(300);
  auto run = run_parties<ba::MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int) { return lba.run(ctx, shared); },
      {0, 6},
      [&](int id) {
        return std::make_shared<Chaos>(static_cast<std::uint64_t>(seed) * 31 +
                                       static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(all_agree(run.outputs));
  // All honest parties share the input, so chaos cannot force bottom or a
  // different value (Validity).
  for (const auto& out : run.outputs) {
    if (!out) continue;
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ(**out, shared);
  }
}

TEST_P(FuzzSeeds, PiZSurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  Rng vrng(static_cast<std::uint64_t>(seed) * 7);
  net::SyncNetwork net(n, t);
  const ca::ConvexAgreement proto;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(BigNat::pow2(10) + vrng.nat_below_pow2(10), false);
  }
  std::vector<std::optional<BigInt>> outputs(n);
  net.set_byzantine(2, std::make_shared<Chaos>(
                           static_cast<std::uint64_t>(seed) * 101 + 2));
  net.set_byzantine(4, std::make_shared<Chaos>(
                           static_cast<std::uint64_t>(seed) * 101 + 4));
  for (const int id : {0, 1, 3, 5, 6}) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
    });
  }
  (void)net.run();

  ca::SimResult r;
  r.outputs = std::move(outputs);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(inputs));
}

TEST_P(FuzzSeeds, HighCostCASurvivesChaos) {
  const int seed = GetParam();
  const int n = 7;
  const int t = 2;
  const ca::HighCostCA hc;
  Rng vrng(static_cast<std::uint64_t>(seed) * 13);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(800 + vrng.below(40)));
  auto run = run_parties<BigNat>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return hc.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      {0, 3},  // includes the first king
      [&](int id) {
        return std::make_shared<Chaos>(static_cast<std::uint64_t>(seed) * 53 +
                                       static_cast<std::uint64_t>(id));
      });
  EXPECT_TRUE(all_agree(run.outputs));
  for (const auto& out : run.outputs) {
    if (!out) continue;
    EXPECT_GE(*out, BigNat(800));
    EXPECT_LE(*out, BigNat(839));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 12));

}  // namespace
}  // namespace coca
