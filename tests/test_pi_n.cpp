// Pi_N (Theorem 5): unknown-length CA for naturals, both regimes.
#include "ca/pi_n.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

struct Fixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
  PiN pi_n{kit};
};

void check_ca(const std::vector<std::optional<BigNat>>& outputs,
              const std::vector<BigNat>& inputs) {
  EXPECT_TRUE(all_agree(outputs));
  std::optional<BigNat> lo, hi;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;
    if (!lo || inputs[id] < *lo) lo = inputs[id];
    if (!hi || inputs[id] > *hi) hi = inputs[id];
  }
  for (const auto& out : outputs) {
    if (!out) continue;
    EXPECT_GE(*out, *lo);
    EXPECT_LE(*out, *hi);
  }
}

class PiNSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PiNSweep, ShortRegimeRandom) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(seed) * 7 + n);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(rng.nat_below_pow2(1 + rng.below(12)));
  }
  auto run = run_parties<BigNat>(n, t, [&](net::PartyContext& ctx, int id) {
    return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

TEST_P(PiNSweep, ShortRegimeUnderAdversary) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(seed) * 11 + n);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(BigNat(200 + rng.below(55)));
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<BigNat>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      byz, [](int) { return std::make_shared<adv::Garbage>(); });
  check_ca(run.outputs, inputs);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PiNSweep,
                         ::testing::Combine(::testing::Values(4, 7, 10),
                                            ::testing::Values(1, 2, 3)));

TEST(PiN, ZeroInputsWork) {
  const int n = 4;
  Fixture f;
  auto run = run_parties<BigNat>(
      n, 1, [&](net::PartyContext& ctx, int) { return f.pi_n.run(ctx, BigNat(0)); });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, BigNat(0));
}

TEST(PiN, MixedZeroAndSmall) {
  const int n = 4;
  Fixture f;
  std::vector<BigNat> inputs{BigNat(0), BigNat(1), BigNat(0), BigNat(1)};
  auto run = run_parties<BigNat>(n, 1, [&](net::PartyContext& ctx, int id) {
    return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

TEST(PiN, MixedLengthRegimes) {
  // Some honest parties below the n^2 threshold, some far above: the
  // protocol must agree on one regime and stay valid.
  const int n = 4;  // n^2 = 16 bits threshold
  const int t = 1;
  Fixture f;
  std::vector<BigNat> inputs{
      BigNat(100),                               // 7 bits
      BigNat::pow2(100) + BigNat(5),             // 101 bits
      BigNat::pow2(100),                         // 101 bits
      BigNat::pow2(99),                          // 100 bits
  };
  auto run = run_parties<BigNat>(n, t, [&](net::PartyContext& ctx, int id) {
    return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

TEST(PiN, LongRegimeClusteredValues) {
  const int n = 4;
  const int t = 1;
  Fixture f;
  Rng rng(3);
  const BigNat base = rng.nat_below_pow2(2000) + BigNat::pow2(2000);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(base + BigNat(rng.below(100)));
  }
  auto run = run_parties<BigNat>(n, t, [&](net::PartyContext& ctx, int id) {
    return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

TEST(PiN, LongRegimeUnderSplitBrain) {
  const int n = 7;
  const int t = 2;
  Fixture f;
  Rng rng(4);
  const BigNat base = BigNat::pow2(400);
  std::vector<BigNat> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(base + BigNat(rng.below(32)));

  net::SyncNetwork net(n, t);
  std::vector<std::optional<BigNat>> outputs(n);
  const auto byz_instance = [&](BigNat value) {
    return [&f, value = std::move(value)](net::PartyContext& ctx) {
      (void)f.pi_n.run(ctx, value);
    };
  };
  net.set_split_brain(5, byz_instance(BigNat(0)),
                      byz_instance(BigNat::pow2(900)), {0, 2, 4, 6});
  net.set_byzantine(6, std::make_shared<adv::Replay>());
  for (int id = 0; id < 5; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
    });
  }
  (void)net.run();
  check_ca(outputs, inputs);
}

TEST(PiN, DifferentLengthsLongRegime) {
  // Lengths differ by far more than n^2 bits within the long regime.
  const int n = 4;
  Fixture f;
  std::vector<BigNat> inputs{BigNat::pow2(50), BigNat::pow2(300),
                             BigNat::pow2(200), BigNat::pow2(100)};
  auto run = run_parties<BigNat>(n, 1, [&](net::PartyContext& ctx, int id) {
    return f.pi_n.run(ctx, inputs[static_cast<std::size_t>(id)]);
  });
  check_ca(run.outputs, inputs);
}

}  // namespace
}  // namespace coca::ca
