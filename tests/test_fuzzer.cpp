// The adversary-search subsystem itself: every target executes cleanly on a
// correct build, executions replay bit-for-bit (same seed -> same transcript
// -> same verdict) across thread schedules, corpus entries round-trip
// through JSON, and the shrink loop minimizes against a predicate. Under
// -DCOCA_CANARY_BUG=ON the same search must catch and shrink the planted
// FindPrefix off-by-one within a small fixed budget.
#include "adversary/fuzzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace coca::adv {
namespace {

FuzzCase small_case(const std::string& protocol, std::uint64_t seed) {
  FuzzCase c;
  c.protocol = protocol;
  c.n = 4;
  c.t = 1;
  c.ell = 8;
  c.input_seed = seed * 31 + 7;
  c.corrupted = {1};
  c.mutation.seed = seed;
  return c;
}

TEST(Fuzzer, EveryKnownProtocolExecutes) {
  ASSERT_EQ(known_protocols().size(), 8u);
  for (const auto& protocol : known_protocols()) {
    const FuzzOutcome out = execute_case(small_case(protocol, 11));
#ifdef COCA_CANARY_BUG
    // FindPrefix-based targets crash on the planted bug; the oracle must
    // report it. Targets that never call FindPrefix stay clean.
    const bool uses_find_prefix = protocol == std::string("FindPrefix") ||
                                  protocol == std::string("FixedLengthCA") ||
                                  protocol == std::string("PiN") ||
                                  protocol == std::string("PiZ");
    EXPECT_EQ(out.verdict.ok(), !uses_find_prefix) << protocol;
#else
    EXPECT_TRUE(out.terminated) << protocol << ": " << out.failure;
    EXPECT_TRUE(out.verdict.ok())
        << protocol << ": " << (out.verdict.violations.empty()
                                    ? ""
                                    : out.verdict.violations.front());
#endif
  }
}

TEST(Fuzzer, RejectsMalformedCases) {
  FuzzCase c = small_case("PiZ", 1);
  c.protocol = "NoSuchProtocol";
  EXPECT_THROW((void)execute_case(c), Error);
  c = small_case("PiZ", 1);
  c.corrupted = {0, 1};  // more than t
  EXPECT_THROW((void)execute_case(c), Error);
  c = small_case("PiZ", 1);
  c.corrupted = {4};  // out of range
  EXPECT_THROW((void)execute_case(c), Error);
  c = small_case("PiZ", 1);
  c.t = 2;  // 3t >= n
  EXPECT_THROW((void)execute_case(c), Error);
}

// Same case, same transcript, same verdict -- twice in a row and across
// serial vs windowed thread schedules. This is the property that makes the
// corpus replayable at all.
TEST(Fuzzer, ReplayIsDeterministicAcrossSchedules) {
  for (const auto& protocol : {"PiZ", "BAPlus", "FixedLengthCA"}) {
    FuzzCase c = small_case(protocol, 99);
    c.mutation.weights = {4, 4, 4, 4, 4, 4, 4, 2, 4};  // mutate aggressively
    c.threads = 1;
    net::Transcript serial1, serial2, windowed;
    const FuzzOutcome a = execute_case(c, &serial1);
    const FuzzOutcome b = execute_case(c, &serial2);
    c.threads = 8;
    const FuzzOutcome w = execute_case(c, &windowed);
    EXPECT_EQ(serial1, serial2) << protocol;
    EXPECT_EQ(serial1, windowed) << protocol;
    EXPECT_EQ(a.verdict.violations, b.verdict.violations) << protocol;
    EXPECT_EQ(a.verdict.violations, w.verdict.violations) << protocol;
    EXPECT_EQ(a.stats.honest_bytes, w.stats.honest_bytes) << protocol;
    EXPECT_EQ(a.stats.rounds, w.stats.rounds) << protocol;
  }
}

TEST(Fuzzer, JsonRoundTripsExactly) {
  CorpusEntry entry;
  entry.c.protocol = "FindPrefix";
  entry.c.n = 7;
  entry.c.t = 2;
  entry.c.ell = 33;
  entry.c.input_seed = ~std::uint64_t{0};  // max: exercises overflow guard
  entry.c.threads = 8;
  entry.c.corrupted = {2, 5};
  entry.c.mutation.seed = 123456789;
  entry.c.mutation.max_delay = 2;
  entry.c.mutation.weights = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  entry.violations = {"crash: quoted \"text\"\nwith newline\tand tab"};
  entry.note = "backslash \\ and \x01 control byte";
  const CorpusEntry parsed = corpus_entry_from_json(to_json(entry));
  EXPECT_EQ(parsed, entry);
}

TEST(Fuzzer, JsonParserIsStrict) {
  CorpusEntry good;
  good.c = small_case("PiZ", 5);
  const std::string json = to_json(good);
  EXPECT_EQ(corpus_entry_from_json(json), good);
  EXPECT_THROW((void)corpus_entry_from_json(json + "x"), Error);  // trailing
  EXPECT_THROW((void)corpus_entry_from_json("{}"), Error);  // missing schema
  std::string wrong_schema = json;
  wrong_schema.replace(wrong_schema.find("coca-fuzz-v1"), 12, "coca-fuzz-v9");
  EXPECT_THROW((void)corpus_entry_from_json(wrong_schema), Error);
  std::string unknown_key = json;
  unknown_key.replace(unknown_key.find("\"note\""), 6, "\"xyzw\"");
  EXPECT_THROW((void)corpus_entry_from_json(unknown_key), Error);
  // A case that parses but fails validation (t out of range).
  std::string bad_t = json;
  bad_t.replace(bad_t.find("\"t\": 1"), 6, "\"t\": 3");
  EXPECT_THROW((void)corpus_entry_from_json(bad_t), Error);
}

// The shrink loop is a pure search procedure: drive it with a synthetic
// predicate (no protocol execution) and check it reaches the fixpoint.
TEST(Fuzzer, ShrinkMinimizesAgainstPredicate) {
  FuzzCase big;
  big.protocol = "PiZ";
  big.n = 7;
  big.t = 2;
  big.ell = 64;
  big.corrupted = {2, 5};
  big.mutation.seed = 17;
  big.mutation.max_delay = 4;
  // "Fails" whenever the input scale is at least 4 bits -- everything else
  // about the case is irrelevant and must shrink away.
  const auto still_fails = [](const FuzzCase& c) { return c.ell >= 4; };
  ASSERT_TRUE(still_fails(big));
  const FuzzCase minimal = shrink_case(big, still_fails, 200);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_EQ(minimal.ell, 4u);  // 4/2 = 2 no longer fails
  EXPECT_EQ(minimal.n, 4);
  EXPECT_EQ(minimal.t, 1);
  EXPECT_EQ(minimal.corrupted.size(), 1u);
  EXPECT_EQ(minimal.mutation.max_delay, 1u);
  for (const auto w : minimal.mutation.weights) EXPECT_EQ(w, 0u);
}

TEST(Fuzzer, ShrinkRespectsAttemptBudget) {
  FuzzCase big;
  big.protocol = "PiZ";
  big.n = 7;
  big.t = 2;
  big.ell = 64;
  big.corrupted = {2, 5};
  std::size_t calls = 0;
  const auto counting = [&calls](const FuzzCase&) {
    ++calls;
    return true;
  };
  (void)shrink_case(big, counting, 3);
  EXPECT_EQ(calls, 3u);
}

TEST(Fuzzer, CaseStreamIsSeedDeterministic) {
  FuzzerOptions options;
  options.seed = 31337;
  Fuzzer a(options), b(options);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_case(), b.next_case());
  Fuzzer a2(options);
  options.seed = 31338;
  Fuzzer c(options);
  bool differed = false;
  for (int i = 0; i < 32; ++i) {
    if (!(a2.next_case() == c.next_case())) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(Fuzzer, CaseStreamCoversSearchSpace) {
  FuzzerOptions options;
  options.seed = 7;
  options.sizes = {4, 7};
  Fuzzer fuzzer(options);
  std::set<std::string> protocols;
  std::set<int> sizes;
  std::set<std::size_t> ells;
  for (int i = 0; i < 64; ++i) {
    const FuzzCase c = fuzzer.next_case();
    protocols.insert(c.protocol);
    sizes.insert(c.n);
    ells.insert(c.ell);
    EXPECT_GE(c.corrupted.size(), 1u);
    EXPECT_LE(c.corrupted.size(), static_cast<std::size_t>(c.t));
  }
  EXPECT_EQ(protocols.size(), known_protocols().size());
  EXPECT_EQ(sizes.size(), 2u);
  EXPECT_GE(ells.size(), 3u);
}

#ifdef COCA_CANARY_BUG
// Mutation-testing of the search itself: with the planted FindPrefix
// off-by-one compiled in, a small fixed budget must surface a violation and
// shrink it to the minimal configuration.
TEST(Fuzzer, CatchesAndShrinksTheCanaryBug) {
  FuzzerOptions options;
  options.seed = 20260807;
  options.protocols = {"FindPrefix"};
  options.max_cases = 8;
  options.budget_sec = 300.0;  // iteration-bounded, not time-bounded
  Fuzzer fuzzer(options);
  const FuzzReport report = fuzzer.run();
  ASSERT_FALSE(report.violations.empty());
  const CorpusEntry& entry = report.violations.front();
  EXPECT_EQ(entry.c.n, 4);
  EXPECT_EQ(entry.c.corrupted.size(), 1u);
  ASSERT_FALSE(entry.violations.empty());
  // The minimized case still fails, deterministically.
  EXPECT_FALSE(execute_case(entry.c).verdict.ok());
}
#else
// On a correct build the same budget reports a clean sweep across every
// target -- the fuzzer's false-positive rate on 24 cases is zero.
TEST(Fuzzer, SweepIsCleanOnCorrectBuild) {
  FuzzerOptions options;
  options.seed = 20260807;
  options.max_cases = 24;
  options.budget_sec = 300.0;  // iteration-bounded, not time-bounded
  Fuzzer fuzzer(options);
  const FuzzReport report = fuzzer.run();
  EXPECT_EQ(report.executed, 24u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.cases_by_protocol.size(), known_protocols().size());
}
#endif

}  // namespace
}  // namespace coca::adv
