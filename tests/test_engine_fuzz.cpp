// Cross-instance isolation under the sharded engine: the fuzz target.
//
// One instance (the victim) carries a byzantine mutator SendTap -- and in
// some draws an environment FaultPlan on top -- while honest neighbor
// instances run the same protocol shape beside it on shared workers.
// engine::check_isolation asserts the blast radius is exactly one lane:
// every neighbor's transcript, RunStats, phase_breakdown, and oracle
// verdict must be bit-identical to its own solo SyncNetwork run.
//
// The checks are equality-based against solo baselines (not absolute
// verdict.ok() assertions), so this file is correct on every build: under
// -DCOCA_CANARY_BUG=ON a FindPrefix neighbor legitimately fails the oracle
// in its solo run too -- isolation means the sharded copy fails the exact
// same way.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace coca::engine {
namespace {

// Fuzzer-drawn victims: a deterministic slice of the search stream, so
// this test replays bit-for-bit while still covering every protocol via
// the round-robin draw.
TEST(EngineIsolation, FuzzerDrawnVictimsLeaveNeighborsUntouched) {
  adv::FuzzerOptions fo;
  fo.seed = 0x15014710ULL;
  fo.threads = 1;
  fo.faults = true;  // roughly half the draws add an environment FaultPlan
  adv::Fuzzer fuzzer(fo);
  for (int draw = 0; draw < 8; ++draw) {
    adv::FuzzCase victim = fuzzer.next_case();
    victim.ell = std::min<std::size_t>(victim.ell, 16);  // keep the sweep fast
    ShardedCaseOptions opt;
    opt.instances = 4;
    opt.workers = 2;
    opt.neighbor_seed = 0xAB0DE + draw;
    SCOPED_TRACE(::testing::Message() << "draw=" << draw << " protocol="
                                      << victim.protocol << " n=" << victim.n
                                      << " faults=" << !victim.faults.empty());
    const IsolationReport report = check_isolation(victim, opt);
    EXPECT_TRUE(report.ok()) << report.violations.front();
  }
}

TEST(EngineIsolation, AggressiveSendTapVictimAcrossWorkerCounts) {
  // The most corrupting mutator mix the fuzzer uses, hammering every
  // message of the victim instance; neighbors must not move a bit,
  // regardless of how the lanes are packed onto workers.
  adv::FuzzCase victim;
  victim.protocol = "LongBAPlus";
  victim.n = 4;
  victim.t = 1;
  victim.ell = 32;
  victim.input_seed = 77;
  victim.corrupted = {2};
  victim.mutation.seed = 99;
  victim.mutation.weights = {4, 4, 4, 4, 4, 4, 4, 2, 4};
  victim.threads = 1;
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    ShardedCaseOptions opt;
    opt.instances = 6;
    opt.workers = workers;
    opt.neighbor_seed = 4242;
    const IsolationReport report = check_isolation(victim, opt);
    EXPECT_TRUE(report.ok()) << report.violations.front();
  }
}

TEST(EngineIsolation, VictimVerdictMatchesSoloRun) {
  // The sharded victim itself is just another instance: its oracle verdict
  // must equal the verdict of the same case run alone.
  adv::FuzzCase victim;
  victim.protocol = "FindPrefix";
  victim.n = 4;
  victim.t = 1;
  victim.ell = 16;
  victim.input_seed = 5;
  victim.corrupted = {1};
  victim.mutation.seed = 6;
  victim.threads = 1;
  const adv::FuzzOutcome solo = adv::execute_case(victim);
  ShardedCaseOptions opt;
  opt.instances = 4;
  opt.workers = 2;
  const IsolationReport report = check_isolation(victim, opt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.victim.violations, solo.verdict.violations);
}

TEST(EngineIsolation, CorpusEntriesReplayShardedWithoutLeaks) {
  // Every minimized counterexample in tests/corpus/ doubles as a sharded
  // victim: whatever its own verdict is on this build, the neighbors must
  // replay bit-identically to their solo runs.
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(COCA_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const adv::CorpusEntry entry = adv::corpus_entry_from_json(buf.str());
    ShardedCaseOptions opt;
    opt.instances = 4;
    opt.workers = 2;
    opt.neighbor_seed = 0xC0B9u;
    const IsolationReport report = check_isolation(entry.c, opt);
    EXPECT_TRUE(report.ok()) << report.violations.front();
  }
}

}  // namespace
}  // namespace coca::engine
