// Replays every counterexample in tests/corpus/. Corpus entries record
// configurations that violated the oracle when found under the canary
// build, so the contract is two-sided: on a correct build every entry must
// PASS the oracle, and under -DCOCA_CANARY_BUG=ON every entry must still
// FAIL -- both deterministically, independent of the thread schedule.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/fuzzer.h"

namespace coca::adv {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(COCA_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CorpusReplay, CorpusIsSeeded) {
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(CorpusReplay, EveryEntryParsesAndSerializesBack) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CorpusEntry entry = corpus_entry_from_json(slurp(path));
    EXPECT_FALSE(entry.violations.empty());  // it was stored for a reason
    EXPECT_EQ(corpus_entry_from_json(to_json(entry)), entry);
  }
}

TEST(CorpusReplay, EveryEntryReplaysToTheRecordedVerdict) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CorpusEntry entry = corpus_entry_from_json(slurp(path));
    const FuzzOutcome out = execute_case(entry.c);
#ifdef COCA_CANARY_BUG
    // The bug these entries witnessed is compiled in: they must still fail.
    EXPECT_FALSE(out.verdict.ok());
#else
    // The bug is gone: the same configurations must satisfy the oracle.
    EXPECT_TRUE(out.verdict.ok())
        << (out.verdict.violations.empty() ? ""
                                           : out.verdict.violations.front());
#endif
  }
}

TEST(CorpusReplay, ReplayIsDeterministicAcrossSchedules) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    CorpusEntry entry = corpus_entry_from_json(slurp(path));
    entry.c.threads = 1;
    net::Transcript serial1, serial2, windowed;
    const FuzzOutcome a = execute_case(entry.c, &serial1);
    const FuzzOutcome b = execute_case(entry.c, &serial2);
    entry.c.threads = 8;
    const FuzzOutcome w = execute_case(entry.c, &windowed);
    EXPECT_EQ(serial1, serial2);
    EXPECT_EQ(serial1, windowed);
    EXPECT_EQ(a.verdict.violations, b.verdict.violations);
    EXPECT_EQ(a.verdict.violations, w.verdict.violations);
  }
}

}  // namespace
}  // namespace coca::adv
