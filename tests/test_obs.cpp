// Tests for the observability layer (src/obs) and its engine integration:
//   * exact leaf phase attribution -- phase_breakdown sums to honest_bytes
//     with no "(unattributed)" residue on every protocol target,
//   * tracing is a pure observer -- RunStats bit-identical with and
//     without a Tracer attached,
//   * canonical (timing-free) metrics JSON is byte-identical across
//     execution schedules (serial fibers vs an 8-wide thread window),
//   * the Chrome trace exporter emits the expected event structure,
//   * RS/Merkle kernel spans land on the party tracks that ran them,
//   * failing parties carry the phase stack they died in
//     (PartyOutcome::phase) for aborts, plan crashes, and timeouts,
//   * the degradation campaign surfaces those phases in its JSON artifact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/degradation.h"
#include "adversary/fuzzer.h"
#include "obs/adapt.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "tests/support.h"

namespace coca {
namespace {

using test::InvariantOracle;

/// A small honest case (no corruption, no faults) for one protocol target.
adv::FuzzCase honest_case(const std::string& protocol) {
  adv::FuzzCase c;
  c.protocol = protocol;
  c.n = 4;
  c.t = 1;
  c.ell = 16;
  c.input_seed = 7;
  return c;
}

TEST(ObsPhaseAttribution, LeafBreakdownSumsExactlyOnEveryProtocol) {
  for (const std::string& protocol : adv::known_protocols()) {
    const adv::FuzzOutcome out = adv::execute_case(honest_case(protocol));
    ASSERT_TRUE(out.verdict.ok())
        << protocol << ": " << out.verdict.violations.front();
    EXPECT_TRUE(InvariantOracle::phase_coverage(out.stats)) << protocol;
    EXPECT_GT(out.stats.honest_bytes, 0u) << protocol;
  }
}

TEST(ObsPhaseAttribution, UnphasedTrafficLandsInUnattributed) {
  const int n = 4;
  net::SyncNetwork net(n, 1);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [](net::PartyContext& ctx) {
      ctx.send_all(Bytes(10, 0x5A));  // no PhaseScope open
      ctx.advance();
      {
        auto scope = ctx.phase("wrapped");
        ctx.send_all(Bytes(4, 0x5B));
        ctx.advance();
      }
    });
  }
  const net::RunStats stats = net.run();
  // Still exact: the bucket keeps the sum identity even without phases.
  EXPECT_TRUE(InvariantOracle::phase_coverage(stats,
                                              /*allow_unattributed=*/true));
  // send_all stages one message per recipient: n senders x n deliveries.
  EXPECT_EQ(stats.phase_breakdown.at(net::kUnattributedPhase),
            static_cast<std::uint64_t>(n) * n * 10);
  EXPECT_EQ(stats.phase_breakdown.at("wrapped"),
            static_cast<std::uint64_t>(n) * n * 4);
  EXPECT_FALSE(InvariantOracle::phase_coverage(stats));
}

TEST(ObsTracer, RunStatsBitIdenticalWithAndWithoutTracer) {
  const adv::FuzzCase c = honest_case("LongBAPlus");
  const adv::FuzzOutcome plain = adv::execute_case(c);
  obs::Tracer tracer;
  const adv::FuzzOutcome traced = adv::execute_case(c, nullptr, &tracer);
  EXPECT_EQ(plain.stats.rounds, traced.stats.rounds);
  EXPECT_EQ(plain.stats.honest_bytes, traced.stats.honest_bytes);
  EXPECT_EQ(plain.stats.honest_messages, traced.stats.honest_messages);
  EXPECT_EQ(plain.stats.bytes_by_party, traced.stats.bytes_by_party);
  EXPECT_EQ(plain.stats.honest_bytes_by_phase,
            traced.stats.honest_bytes_by_phase);
  EXPECT_EQ(plain.stats.phase_breakdown, traced.stats.phase_breakdown);
  EXPECT_EQ(plain.stats.payload_copies, traced.stats.payload_copies);
  EXPECT_GT(tracer.track_count(), 0u);
}

TEST(ObsTracer, InclusiveSpanBytesMatchLegacyPhaseAccounting) {
  const adv::FuzzCase c = honest_case("FixedLengthCA");
  obs::Tracer tracer;
  const adv::FuzzOutcome out = adv::execute_case(c, nullptr, &tracer);
  ASSERT_TRUE(out.verdict.ok());
  EXPECT_EQ(tracer.inclusive_bytes_by_name(), out.stats.honest_bytes_by_phase);
}

/// Canonical metrics export of one traced execution of `c`.
std::string canonical_metrics(const adv::FuzzCase& c) {
  obs::Tracer tracer(obs::Tracer::Options{/*timing=*/false});
  const adv::FuzzOutcome out = adv::execute_case(c, nullptr, &tracer);
  obs::RunMeta meta;
  meta.protocol = c.protocol;
  meta.n = c.n;
  meta.t = c.t;
  meta.ell_bits = c.ell;
  meta.seed = c.input_seed;
  meta.threads = 0;  // pinned: the export must not depend on the schedule
  return obs::metrics_json(tracer, meta, obs::stats_view(out.stats),
                           /*include_timing=*/false);
}

TEST(ObsDeterminism, CanonicalMetricsJsonIsScheduleIndependent) {
  adv::FuzzCase serial = honest_case("PiN");
  serial.n = 7;
  serial.t = 2;
  serial.ell = 64;
  adv::FuzzCase threaded = serial;
  threaded.threads = 8;
  const std::string a = canonical_metrics(serial);
  const std::string b = canonical_metrics(threaded);
  EXPECT_EQ(a, b) << "canonical export differs between serial fibers and an "
                     "8-wide thread window";
  EXPECT_NE(a.find("\"schema\": \"coca-metrics-v1\""), std::string::npos);
  EXPECT_EQ(a.find("wall_ns"), std::string::npos);
}

TEST(ObsExport, ChromeTraceHasMetadataAndCompleteEvents) {
  const adv::FuzzCase c = honest_case("BAPlus");
  obs::Tracer tracer;
  const adv::FuzzOutcome out = adv::execute_case(c, nullptr, &tracer);
  ASSERT_TRUE(out.verdict.ok());
  const std::string json = obs::chrome_trace_json(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // thread names
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"round 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"party 0\""), std::string::npos);
}

TEST(ObsKernels, RsAndMerkleSpansLandOnPartyTracks) {
  // LongBAPlus distributes via RS shares under Merkle roots, so a traced
  // honest run must record both kernel spans via the thread-local hook.
  adv::FuzzCase c = honest_case("LongBAPlus");
  c.ell = 2048;
  obs::Tracer tracer;
  const adv::FuzzOutcome out = adv::execute_case(c, nullptr, &tracer);
  ASSERT_TRUE(out.verdict.ok());
  bool saw_rs = false;
  bool saw_merkle = false;
  for (int track = 0; track < static_cast<int>(tracer.track_count()); ++track) {
    if (tracer.track_kind(track) != "party") continue;
    for (const obs::SpanRecord& span : tracer.spans(track)) {
      if (span.cat != "kernel") continue;
      saw_rs |= span.name == "rs.encode" || span.name == "rs.decode";
      saw_merkle |= span.name == "merkle.build" || span.name == "merkle.verify";
    }
  }
  EXPECT_TRUE(saw_rs);
  EXPECT_TRUE(saw_merkle);
}

TEST(ObsOutcomePhase, AbortCarriesTheFullPhaseStack) {
  const int n = 4;
  net::SyncNetwork net(n, 1);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [i](net::PartyContext& ctx) {
      auto outer = ctx.phase("outer");
      ctx.send_all(Bytes(1, 0));
      ctx.advance();
      if (i == 2) {
        auto inner = ctx.phase("inner");
        throw Error("boom");
      }
      ctx.advance();
    });
  }
  const net::RunReport report = net.run_report();
  ASSERT_EQ(report.outcomes.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(report.outcomes[2].outcome, net::Outcome::kAborted);
  EXPECT_EQ(report.outcomes[2].phase, "outer/inner");
  EXPECT_EQ(report.outcomes[0].outcome, net::Outcome::kDecided);
  EXPECT_TRUE(report.outcomes[0].phase.empty());
}

TEST(ObsOutcomePhase, TimeoutSealsThePhaseThePartyWasStuckIn) {
  const int n = 4;
  net::SyncNetwork net(n, 1);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [](net::PartyContext& ctx) {
      auto spin = ctx.phase("spin");
      while (true) ctx.advance();
    });
  }
  const net::RunReport report = net.run_report(/*max_rounds=*/5);
  EXPECT_TRUE(report.timed_out);
  for (const net::PartyOutcome& o : report.outcomes) {
    EXPECT_EQ(o.outcome, net::Outcome::kTimedOut);
    EXPECT_EQ(o.phase, "spin");
  }
}

TEST(ObsOutcomePhase, PlanCrashSealsThePhaseOfTheUnwoundRunner) {
  const int n = 4;
  net::SyncNetwork net(n, 1);
  net::FaultPlan plan;
  plan.crashes.push_back({/*party=*/1, /*from=*/2, net::kNoRecovery});
  net.set_fault_plan(plan);
  for (int i = 0; i < n; ++i) {
    net.set_honest(i, [](net::PartyContext& ctx) {
      auto scope = ctx.phase("work");
      for (int r = 0; r < 6; ++r) {
        ctx.send_all(Bytes(1, 0));
        ctx.advance();
      }
    });
  }
  const net::RunReport report = net.run_report(/*max_rounds=*/20);
  EXPECT_EQ(report.outcomes[1].outcome, net::Outcome::kCrashed);
  EXPECT_EQ(report.outcomes[1].phase, "work");
  EXPECT_EQ(report.outcomes[0].outcome, net::Outcome::kDecided);
}

TEST(ObsDegradation, CampaignJsonReportsOutcomePhases) {
  adv::DegradationConfig cfg;
  cfg.n = 4;
  cfg.ell = 16;
  cfg.f_max = 1;
  cfg.protocols = {"BAPlus"};
  const adv::DegradationReport report = adv::run_degradation_campaign(cfg);
  const std::string json = adv::degradation_json(report);
  EXPECT_NE(json.find("\"outcome_phases\""), std::string::npos);
  // The crash-stop cell at f = 1 kills party 0 inside the protocol; its
  // row must attribute the Crashed outcome to a concrete phase.
  bool saw_crash_phase = false;
  for (const adv::DegradationRow& row : report.rows) {
    if (row.kind != adv::FaultKind::kCrashStop) continue;
    for (const auto& [key, count] : row.outcome_phases) {
      if (key.rfind("Crashed@", 0) == 0 && key != "Crashed@(none)") {
        saw_crash_phase = true;
      }
    }
  }
  EXPECT_TRUE(saw_crash_phase);
}

}  // namespace
}  // namespace coca
