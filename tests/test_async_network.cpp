// Asynchronous network simulator: delivery semantics, scheduling policies,
// deadlock detection, metering.
#include "async/async_network.h"

#include <gtest/gtest.h>

namespace coca::async {
namespace {

TEST(AsyncNetwork, PingPong) {
  AsyncNetwork net(2, 0);
  std::vector<int> log;
  net.set_process(0, [&](ProcessContext& ctx) {
    ctx.send(1, Bytes{1});
    const Envelope e = ctx.receive();
    EXPECT_EQ(e.from, 1);
    EXPECT_EQ(e.payload, Bytes{2});
    log.push_back(0);
  });
  net.set_process(1, [&](ProcessContext& ctx) {
    const Envelope e = ctx.receive();
    EXPECT_EQ(e.from, 0);
    ctx.send(0, Bytes{2});
    log.push_back(1);
  });
  const AsyncStats stats = net.run();
  EXPECT_EQ(stats.deliveries, 2u);
  EXPECT_EQ(stats.honest_bytes, 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(AsyncNetwork, SelfDelivery) {
  AsyncNetwork net(1, 0);
  net.set_process(0, [](ProcessContext& ctx) {
    ctx.send(0, Bytes{42});
    EXPECT_EQ(ctx.receive().payload, Bytes{42});
  });
  EXPECT_NO_THROW((void)net.run());
}

TEST(AsyncNetwork, FifoPolicyPreservesSendOrder) {
  AsyncNetwork net(2, 0, Scheduling::kFifo);
  net.set_process(0, [](ProcessContext& ctx) {
    for (std::uint8_t i = 0; i < 10; ++i) ctx.send(1, Bytes{i});
  });
  net.set_process(1, [](ProcessContext& ctx) {
    for (std::uint8_t i = 0; i < 10; ++i) {
      EXPECT_EQ(ctx.receive().payload, Bytes{i});
    }
  });
  (void)net.run();
}

TEST(AsyncNetwork, RandomPolicyReordersButDeliversAll) {
  AsyncNetwork net(2, 0, Scheduling::kRandomDelay, /*seed=*/7);
  std::multiset<int> got;
  net.set_process(0, [](ProcessContext& ctx) {
    for (std::uint8_t i = 0; i < 20; ++i) ctx.send(1, Bytes{i});
  });
  net.set_process(1, [&](ProcessContext& ctx) {
    for (int i = 0; i < 20; ++i) got.insert(ctx.receive().payload[0]);
  });
  (void)net.run();
  EXPECT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(got.contains(i));
}

TEST(AsyncNetwork, LagPolicyStarvesLowIdsButDeliversEventually) {
  // Party 2 waits for one message from each of 0 and 1; the lag policy
  // must deliver 1's traffic first but cannot withhold 0's forever.
  AsyncNetwork net(3, 0, Scheduling::kLagLowIds);
  std::vector<int> order;
  net.set_process(0, [](ProcessContext& ctx) { ctx.send(2, Bytes{0}); });
  net.set_process(1, [](ProcessContext& ctx) { ctx.send(2, Bytes{1}); });
  net.set_process(2, [&](ProcessContext& ctx) {
    order.push_back(ctx.receive().from);
    order.push_back(ctx.receive().from);
  });
  (void)net.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // higher sender id preferred
  EXPECT_EQ(order[1], 0);  // ... but eventually delivered
}

TEST(AsyncNetwork, DeterministicGivenSeed) {
  const auto execute = [] {
    AsyncNetwork net(3, 0, Scheduling::kRandomDelay, 99);
    std::vector<int> order;
    for (int id = 0; id < 2; ++id) {
      net.set_process(id, [id](ProcessContext& ctx) {
        for (int i = 0; i < 5; ++i) {
          ctx.send(2, Bytes{static_cast<std::uint8_t>(id)});
        }
      });
    }
    net.set_process(2, [&order](ProcessContext& ctx) {
      for (int i = 0; i < 10; ++i) order.push_back(ctx.receive().from);
    });
    (void)net.run();
    return order;
  };
  EXPECT_EQ(execute(), execute());
}

TEST(AsyncNetwork, DeadlockDetected) {
  AsyncNetwork net(2, 0);
  net.set_process(0, [](ProcessContext& ctx) { (void)ctx.receive(); });
  net.set_process(1, [](ProcessContext& ctx) { (void)ctx.receive(); });
  EXPECT_THROW((void)net.run(), Error);
}

TEST(AsyncNetwork, ByzantineWaiterDoesNotBlockTermination) {
  // Honest processes finish; the byzantine process blocks in receive()
  // forever -- the run must still complete.
  AsyncNetwork net(2, 1);
  net.set_process(0, [](ProcessContext&) {});
  net.set_byzantine_process(1, [](ProcessContext& ctx) {
    for (;;) (void)ctx.receive();
  });
  EXPECT_NO_THROW((void)net.run());
}

TEST(AsyncNetwork, MessagesToFinishedProcessesAreDropped) {
  AsyncNetwork net(2, 0);
  net.set_process(0, [](ProcessContext&) {});
  net.set_process(1, [](ProcessContext& ctx) {
    ctx.send(0, Bytes{1});
    ctx.send(0, Bytes{2});
  });
  const AsyncStats stats = net.run();
  EXPECT_EQ(stats.deliveries, 0u);
}

TEST(AsyncNetwork, ExceptionPropagates) {
  AsyncNetwork net(2, 0);
  net.set_process(0, [](ProcessContext&) { throw Error("bang"); });
  net.set_process(1, [](ProcessContext& ctx) { (void)ctx.receive(); });
  EXPECT_THROW((void)net.run(), Error);
}

TEST(AsyncNetwork, DeliveryLimitEnforced) {
  AsyncNetwork net(2, 0);
  net.set_process(0, [](ProcessContext& ctx) {
    for (;;) {
      ctx.send(1, Bytes{1});
      (void)ctx.receive();
    }
  });
  net.set_process(1, [](ProcessContext& ctx) {
    for (;;) {
      ctx.send(0, Bytes{1});
      (void)ctx.receive();
    }
  });
  EXPECT_THROW((void)net.run(/*max_deliveries=*/100), Error);
}

TEST(AsyncNetwork, ByzantineBytesExcluded) {
  AsyncNetwork net(2, 1);
  net.set_process(0, [](ProcessContext& ctx) {
    ctx.send(1, Bytes(7, 0));
    (void)ctx.receive();
  });
  net.set_byzantine_process(1, [](ProcessContext& ctx) {
    (void)ctx.receive();
    ctx.send(0, Bytes(100, 0));
  });
  const AsyncStats stats = net.run();
  EXPECT_EQ(stats.honest_bytes, 7u);
  EXPECT_EQ(stats.bytes_by_process[1], 100u);
}

TEST(AsyncNetwork, RolesMustBeAssigned) {
  AsyncNetwork net(2, 0);
  net.set_process(0, [](ProcessContext&) {});
  EXPECT_THROW((void)net.run(), Error);
}

}  // namespace
}  // namespace coca::async
