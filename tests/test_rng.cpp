// Deterministic PRNG (xoshiro256**): reproducibility and sanity of ranges,
// plus pinned regression values for the splittable per-party streams the
// parallel round engine hands to every protocol instance.
#include "util/rng.h"

#include <gtest/gtest.h>

#include "async/async_network.h"
#include "net/sync_network.h"

namespace coca {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int buckets[8] = {};
  const int samples = 80000;
  for (int i = 0; i < samples; ++i) ++buckets[rng.below(8)];
  for (const int b : buckets) {
    EXPECT_GT(b, samples / 8 - samples / 40);
    EXPECT_LT(b, samples / 8 + samples / 40);
  }
}

TEST(Rng, BytesAndBitsSizes) {
  Rng rng(13);
  EXPECT_EQ(rng.bytes(33).size(), 33u);
  EXPECT_EQ(rng.bits(13).size(), 13u);
  EXPECT_EQ(rng.bits(0).size(), 0u);
}

TEST(Rng, NatBelowPow2Bounded) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.nat_below_pow2(100).bit_length(), 100u);
  }
}

// ---- Stream splitting (Rng::stream / derive_stream_seed). ----
//
// These values are pinned on purpose: every per-party RNG stream in both
// network engines is derived through derive_stream_seed, and the parallel
// round engine's determinism contract says the stream depends only on
// (root seed, stream id). An accidental change to the mixing -- or to the
// seed-domain constants -- would silently shift every adversary transcript;
// this test turns that into a loud failure instead.

TEST(RngStream, DeriveStreamSeedPinned) {
  EXPECT_EQ(Rng::derive_stream_seed(0, 0), 0xded083738c47db85ULL);
  EXPECT_EQ(Rng::derive_stream_seed(42, 7), 0x6cff8ef07bf3d9f0ULL);
}

TEST(RngStream, RunnerStreamFirstValuesPinned) {
  // Party id doubling as runner index: the layout SyncNetwork uses when
  // every party is a sole protocol-running instance.
  const std::uint64_t expected[] = {
      0x435954443d1a9f02ULL,
      0x027dd86bcfe6facdULL,
      0x4ff1f10bb1b0c406ULL,
      0x8e831bb22c2030ddULL,
  };
  for (int p = 0; p < 4; ++p) {
    Rng rng = Rng::stream(net::kRunnerSeedDomain,
                          net::runner_stream_key(p, static_cast<std::size_t>(p)));
    EXPECT_EQ(rng.next_u64(), expected[p]) << "party " << p;
  }
}

TEST(RngStream, ScriptedStreamFirstValuesPinned) {
  const std::uint64_t expected[] = {
      0xe5a70bce5e27ce8bULL,
      0x43023b54e2eda4c6ULL,
      0x498bbc5fb42ee9d1ULL,
      0x8d69311c1f2f50b8ULL,
  };
  for (int p = 0; p < 4; ++p) {
    Rng rng = Rng::stream(net::kScriptedSeedDomain,
                          static_cast<std::uint64_t>(p));
    EXPECT_EQ(rng.next_u64(), expected[p]) << "party " << p;
  }
}

TEST(RngStream, AsyncStreamFirstValuesPinned) {
  Rng sched = Rng::stream(async::kSchedulerSeedDomain, 1);
  EXPECT_EQ(sched.next_u64(), 0x0ca21288a8b70916ULL);
  Rng honest2 = Rng::stream(async::kProcessSeedDomain, std::uint64_t{2} << 1);
  EXPECT_EQ(honest2.next_u64(), 0xb3fa4b82aba11cc7ULL);
}

TEST(RngStream, StreamsAreOrderIndependent) {
  // Splitting is a pure function of (seed, id): drawing from one stream
  // must not perturb a sibling, regardless of derivation or draw order.
  Rng a_first = Rng::stream(99, 0);
  (void)a_first.next_u64();
  Rng b_after = Rng::stream(99, 1);
  Rng b_alone = Rng::stream(99, 1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(b_after.next_u64(), b_alone.next_u64());
  }
}

TEST(RngStream, SiblingAndCrossSeedStreamsDiverge) {
  Rng a = Rng::stream(5, 0);
  Rng b = Rng::stream(5, 1);    // sibling stream
  Rng c = Rng::stream(6, 0);    // same id, neighbouring seed
  int same_ab = 0, same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next_u64();
    if (va == b.next_u64()) ++same_ab;
    if (va == c.next_u64()) ++same_ac;
  }
  EXPECT_EQ(same_ab, 0);
  EXPECT_EQ(same_ac, 0);
}

TEST(Rng, BoolIsBalanced) {
  Rng rng(19);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool();
  EXPECT_GT(trues, 4500);
  EXPECT_LT(trues, 5500);
}

}  // namespace
}  // namespace coca
