// Deterministic PRNG (xoshiro256**): reproducibility and sanity of ranges.
#include "util/rng.h"

#include <gtest/gtest.h>

namespace coca {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int buckets[8] = {};
  const int samples = 80000;
  for (int i = 0; i < samples; ++i) ++buckets[rng.below(8)];
  for (const int b : buckets) {
    EXPECT_GT(b, samples / 8 - samples / 40);
    EXPECT_LT(b, samples / 8 + samples / 40);
  }
}

TEST(Rng, BytesAndBitsSizes) {
  Rng rng(13);
  EXPECT_EQ(rng.bytes(33).size(), 33u);
  EXPECT_EQ(rng.bits(13).size(), 13u);
  EXPECT_EQ(rng.bits(0).size(), 0u);
}

TEST(Rng, NatBelowPow2Bounded) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.nat_below_pow2(100).bit_length(), 100u);
  }
}

TEST(Rng, BoolIsBalanced) {
  Rng rng(19);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool();
  EXPECT_GT(trues, 4500);
  EXPECT_LT(trues, 5500);
}

}  // namespace
}  // namespace coca
