// Pi_lBA+ (Theorem 1): the long-message extension of Pi_BA+ built on
// Reed-Solomon codewords and Merkle accumulators.
#include "ba/long_ba_plus.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ba {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

struct Fixture {
  PhaseKingBinary bin;
  TurpinCoan tc{bin};
  BAKit kit{&bin, &tc};
  LongBAPlus lba{kit};
};

class LongBAPlusSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(LongBAPlusSweep, ValidityAllSameLongValue) {
  const auto [n, len] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(n) * 31 + len);
  const Bytes input = rng.bytes(len);
  auto run = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int) {
    return f.lba.run(ctx, input);
  });
  for (const auto& out : run.outputs) {
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ(**out, input);
  }
}

TEST_P(LongBAPlusSweep, ValidityUnderByzantineShareInjection) {
  const auto [n, len] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(n) * 97 + len);
  const Bytes input = rng.bytes(len);
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  // Replay corrupts the distributing step with plausible-looking tuples of
  // the wrong index/recipient; Merkle verification must sort it out.
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int) { return f.lba.run(ctx, input); }, byz,
      [](int) { return std::make_shared<adv::Replay>(); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    ASSERT_TRUE(out->has_value());
    EXPECT_EQ(**out, input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LongBAPlusSweep,
    ::testing::Combine(::testing::Values(4, 7, 10, 13),
                       ::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{4096})));

TEST(LongBAPlus, IntrusionToleranceWithDistinctInputs) {
  const int n = 10;
  const int t = 3;
  Fixture f;
  std::set<Bytes> honest_inputs;
  for (int id = 0; id < 7; ++id) {
    honest_inputs.insert(Bytes(200, static_cast<std::uint8_t>(id)));
  }
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return f.lba.run(ctx, Bytes(200, static_cast<std::uint8_t>(id)));
      },
      {7, 8, 9}, [](int) { return std::make_shared<adv::Garbage>(); });
  EXPECT_TRUE(all_agree(run.outputs));
  for (const auto& out : run.outputs) {
    if (!out) continue;
    EXPECT_TRUE(!out->has_value() || honest_inputs.contains(**out));
  }
}

TEST(LongBAPlus, BoundedPreAgreement) {
  // n-2t honest parties share a long value: the output must be that value
  // (non-bottom by Def. 4, honest by Def. 3, and unique sharers' value).
  const int n = 13;
  const int t = 4;
  Fixture f;
  const Bytes shared(1000, 0xAB);
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        // ids 4..8 (n-2t = 5 parties) share; 9..12 hold distinct values.
        return f.lba.run(ctx, id <= 8 ? shared
                                      : Bytes(1000, static_cast<std::uint8_t>(id)));
      },
      {0, 1, 2, 3}, [](int) { return std::make_shared<adv::Silent>(); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    ASSERT_TRUE(out->has_value());
  }
  EXPECT_TRUE(all_agree(run.outputs));
}

TEST(LongBAPlus, EmptyValueRoundTrips) {
  const int n = 4;
  Fixture f;
  auto run = run_parties<MaybeBytes>(n, 1, [&](net::PartyContext& ctx, int) {
    return f.lba.run(ctx, Bytes{});
  });
  for (const auto& out : run.outputs) {
    ASSERT_TRUE(out->has_value());
    EXPECT_TRUE((*out)->empty());
  }
}

TEST(LongBAPlus, ExtensionBeatsNaiveOnLongMessages) {
  // Theorem 1's point: per-party cost of Pi_lBA+ is O(l) + poly(n, kappa),
  // while Turpin-Coan on the full value is O(l n) per party. Compare total
  // honest bytes at fixed n and growing l.
  const int n = 10;
  const int t = 3;
  Fixture f;
  const std::size_t len = 64 * 1024;
  const Bytes input(len, 0x3C);

  auto ext = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int) {
    return f.lba.run(ctx, input);
  });
  auto naive = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int) {
    return f.tc.run(ctx, input);
  });
  EXPECT_LT(ext.stats.honest_bytes * 2, naive.stats.honest_bytes)
      << "extension protocol should be at least 2x cheaper at l=" << len;
}

TEST(LongBAPlus, DifferentLengthInputsAgree) {
  const int n = 7;
  const int t = 2;
  Fixture f;
  auto run = run_parties<MaybeBytes>(n, t, [&](net::PartyContext& ctx, int id) {
    return f.lba.run(ctx, Bytes(static_cast<std::size_t>(10 + 50 * id),
                                static_cast<std::uint8_t>(id)));
  });
  EXPECT_TRUE(all_agree(run.outputs));
}

}  // namespace
}  // namespace coca::ba
