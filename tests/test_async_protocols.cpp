// Asynchronous protocols: Bracha reliable broadcast and t < n/5 async
// Approximate Agreement, under all scheduling policies and byzantine
// behaviours.
#include <gtest/gtest.h>

#include "async/async_aa.h"
#include "async/bracha_rbc.h"
#include "util/rng.h"
#include "util/wire.h"

namespace coca::async {
namespace {

// ---- Bracha RBC ----

class RbcPolicies : public ::testing::TestWithParam<Scheduling> {};

TEST_P(RbcPolicies, HonestBroadcasterDeliversEverywhere) {
  const int n = 7;
  const int t = 2;
  const Bytes value{0xAB, 0xCD};
  AsyncNetwork net(n, t, GetParam(), /*seed=*/5);
  std::vector<std::optional<Bytes>> delivered(n);
  for (int id = 0; id < n; ++id) {
    net.set_process(id, [&, id](ProcessContext& ctx) {
      delivered[static_cast<std::size_t>(id)] = BrachaRbc::run(
          ctx, /*broadcaster=*/3,
          id == 3 ? std::optional<Bytes>(value) : std::nullopt);
    });
  }
  (void)net.run();
  for (const auto& d : delivered) EXPECT_EQ(*d, value);
}

TEST_P(RbcPolicies, SurvivesSilentByzantineProcesses) {
  const int n = 7;
  const int t = 2;
  const Bytes value{0x11};
  AsyncNetwork net(n, t, GetParam(), /*seed=*/6);
  std::vector<std::optional<Bytes>> delivered(n);
  for (int id = 0; id < n; ++id) {
    if (id == 5 || id == 6) {
      net.set_byzantine_process(id, [](ProcessContext&) {});  // crashed
    } else {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        delivered[static_cast<std::size_t>(id)] = BrachaRbc::run(
            ctx, 0, id == 0 ? std::optional<Bytes>(value) : std::nullopt);
      });
    }
  }
  (void)net.run();
  for (int id = 0; id < 5; ++id) {
    EXPECT_EQ(*delivered[static_cast<std::size_t>(id)], value);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, RbcPolicies,
                         ::testing::Values(Scheduling::kFifo,
                                           Scheduling::kRandomDelay,
                                           Scheduling::kLagLowIds));

TEST(BrachaRbc, EquivocatingBroadcasterCannotSplitDeliveries) {
  // The byzantine broadcaster sends INIT 0xAA to half and 0xBB to the rest.
  // Consistency: all honest deliveries (if any) must coincide; the run may
  // instead deadlock (RBC has no termination guarantee for a corrupt
  // broadcaster), which the simulator reports as an Error.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const int n = 7;
    const int t = 2;
    AsyncNetwork net(n, t, Scheduling::kRandomDelay, seed);
    std::vector<std::optional<Bytes>> delivered(n);
    net.set_byzantine_process(6, [](ProcessContext& ctx) {
      Writer a;
      a.u8(0);  // INIT
      a.bytes(Bytes{0xAA});
      Writer b;
      b.u8(0);
      b.bytes(Bytes{0xBB});
      for (int to = 0; to < 3; ++to) ctx.send(to, a.peek());
      for (int to = 3; to < 6; ++to) ctx.send(to, b.peek());
    });
    net.set_byzantine_process(5, [](ProcessContext&) {});
    for (int id = 0; id < 5; ++id) {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        delivered[static_cast<std::size_t>(id)] =
            BrachaRbc::run(ctx, 6, std::nullopt);
      });
    }
    try {
      (void)net.run();
    } catch (const Error&) {
      continue;  // no-delivery outcome: acceptable
    }
    const Bytes* first = nullptr;
    for (const auto& d : delivered) {
      if (!d) continue;
      if (first == nullptr) {
        first = &*d;
      } else {
        EXPECT_EQ(*d, *first) << "seed " << seed;
      }
    }
  }
}

TEST(BrachaRbc, GarbageFloodTolerated) {
  const int n = 4;
  const int t = 1;
  AsyncNetwork net(n, t, Scheduling::kRandomDelay, 9);
  std::vector<std::optional<Bytes>> delivered(n);
  net.set_byzantine_process(3, [](ProcessContext& ctx) {
    for (int i = 0; i < 200; ++i) {
      for (int to = 0; to < 3; ++to) {
        ctx.send(to, ctx.rng().bytes(1 + ctx.rng().below(20)));
      }
    }
  });
  const Bytes value{0x77};
  for (int id = 0; id < 3; ++id) {
    net.set_process(id, [&, id](ProcessContext& ctx) {
      delivered[static_cast<std::size_t>(id)] = BrachaRbc::run(
          ctx, 1, id == 1 ? std::optional<Bytes>(value) : std::nullopt);
    });
  }
  (void)net.run();
  for (int id = 0; id < 3; ++id) {
    EXPECT_EQ(*delivered[static_cast<std::size_t>(id)], value);
  }
}

// ---- Asynchronous AA (t < n/5) ----

struct AaOutcome {
  BigNat diameter;
  bool valid;
};

AaOutcome run_async_aa(int n, int t, Scheduling policy, std::uint64_t seed,
                       const std::vector<BigInt>& inputs, std::size_t rounds,
                       int byz_count) {
  AsyncNetwork net(n, t, policy, seed);
  std::vector<std::optional<BigInt>> outputs(n);
  const AsyncApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < byz_count) {
      // Byzantine: floods every round tag with extreme values.
      net.set_byzantine_process(id, [n, rounds](ProcessContext& ctx) {
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int to = 0; to < n; ++to) {
            Writer w;
            w.u64(r);
            w.u8(to % 2);
            w.bignat(BigNat::pow2(40));
            ctx.send(to, std::move(w).take());
          }
        }
      });
    } else {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        outputs[static_cast<std::size_t>(id)] =
            aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
      });
    }
  }
  (void)net.run();

  std::optional<BigInt> out_lo, out_hi, in_lo, in_hi;
  for (int id = byz_count; id < n; ++id) {
    const BigInt& out = *outputs[static_cast<std::size_t>(id)];
    const BigInt& in = inputs[static_cast<std::size_t>(id)];
    if (!out_lo || out < *out_lo) out_lo = out;
    if (!out_hi || out > *out_hi) out_hi = out;
    if (!in_lo || in < *in_lo) in_lo = in;
    if (!in_hi || in > *in_hi) in_hi = in;
  }
  return {(*out_hi - *out_lo).magnitude(),
          *in_lo <= *out_lo && *out_hi <= *in_hi};
}

class AsyncAaSweep
    : public ::testing::TestWithParam<std::tuple<Scheduling, int>> {};

TEST_P(AsyncAaSweep, ValidityAlwaysConvergenceUnderFairSchedules) {
  const auto [policy, seed] = GetParam();
  const int n = 11;  // t < n/5 => t = 2
  const int t = 2;
  Rng rng(static_cast<std::uint64_t>(seed) * 71);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  const std::size_t rounds = 30;
  const AaOutcome o = run_async_aa(n, t, policy,
                                   static_cast<std::uint64_t>(seed), inputs,
                                   rounds, /*byz_count=*/t);
  // Validity is unconditional.
  EXPECT_TRUE(o.valid);
  // Contraction has no worst-case guarantee: the run_async_aa adversary
  // equivocates per recipient (one camp fed -2^40, the other +2^40), and
  // under the *static* schedules (kFifo, kSkewPairs) that pins two honest
  // camps at a median-map fixed point -- the deterministic stall asserted
  // in PlainVariantStallsUnderStaticSchedules. The adaptive/randomized
  // schedules break the camps and converge.
  if (policy == Scheduling::kRandomDelay || policy == Scheduling::kLagLowIds) {
    EXPECT_LE(o.diameter, BigNat((1 << 10) + 2 * rounds));
  } else {
    EXPECT_LE(o.diameter, BigNat(1 << 20));  // validity envelope only
  }
}

TEST(AsyncAA, PlainVariantStallsUnderStaticSchedules) {
  // The negative result, live and deterministic: an equivocating byzantine
  // flooder (camp A fed -2^40, camp B fed +2^40 -- the run_async_aa
  // adversary) under the static FIFO schedule freezes the honest diameter
  // at a median-map fixed point: more rounds do not help.
  const int n = 11;
  const int t = 2;
  Rng rng(71);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  const AaOutcome after5 =
      run_async_aa(n, t, Scheduling::kFifo, 1, inputs, 5, t);
  const AaOutcome after30 =
      run_async_aa(n, t, Scheduling::kFifo, 1, inputs, 30, t);
  EXPECT_TRUE(after5.valid);
  EXPECT_TRUE(after30.valid);
  EXPECT_GT(after30.diameter, BigNat(1 << 10)) << "diameter stays large";
  EXPECT_EQ(after5.diameter, after30.diameter) << "stall is a fixed point";
}

TEST(AsyncAA, MedianMapFixedPointExists) {
  // The negative result behind the t < n/3 impossibility for this
  // single-exchange variant, pinned combinatorially: at n = 11, t = 2 the
  // update rule is the median of the n - t = 9 received values, and a
  // scheduler pinning static skewed receive-sets admits a non-converging
  // fixed point. Construction: honest camps A (5 processes at value a) and
  // B (4 at value b != a); camp A receives {byz-low, 5 x a, 3 x b}, camp B
  // receives {byz-high, 4 x b, 4 x a}. Both medians reproduce the camp
  // value, so the diameter |b - a| never shrinks. (The witnessed variant
  // exists to rule this out; see witnessed_aa.h.)
  const auto update = [](std::vector<long> pool) {  // the n-t = 9 values
    // 2t-per-side trim of 9 values leaves exactly the median.
    std::sort(pool.begin(), pool.end());
    return pool[4];
  };
  const long a = 100, b = 900, low = -1'000'000, high = 1'000'000;
  const std::vector<long> camp_a_pool{low, a, a, a, a, a, b, b, b};
  const std::vector<long> camp_b_pool{high, b, b, b, b, a, a, a, a};
  EXPECT_EQ(update(camp_a_pool), a);  // camp A stays at a ...
  EXPECT_EQ(update(camp_b_pool), b);  // ... camp B stays at b, forever.
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncAaSweep,
    ::testing::Combine(::testing::Values(Scheduling::kFifo,
                                         Scheduling::kRandomDelay,
                                         Scheduling::kLagLowIds,
                                         Scheduling::kSkewPairs),
                       ::testing::Values(1, 2, 3)));

TEST(AsyncAA, IdenticalInputsAreFixed) {
  const int n = 6;  // t = 1 < 6/5? 1 < 1.2: ok
  const int t = 1;
  std::vector<BigInt> inputs(n, BigInt(-4242));
  const AaOutcome o = run_async_aa(n, t, Scheduling::kRandomDelay, 3, inputs,
                                   8, /*byz_count=*/0);
  EXPECT_TRUE(o.valid);
  EXPECT_EQ(o.diameter, BigNat(0));
}

TEST(AsyncAA, RejectsTooManyCorruptions) {
  AsyncNetwork net(6, 2, Scheduling::kFifo, 1);  // 6 <= 5*2
  const AsyncApproxAgreement aa;
  for (int id = 0; id < 6; ++id) {
    net.set_process(id, [&aa](ProcessContext& ctx) {
      (void)aa.run(ctx, BigInt(1), 2);
    });
  }
  EXPECT_THROW((void)net.run(), Error);
}

TEST(AsyncAA, CrashedProcessesTolerated) {
  const int n = 11;
  const int t = 2;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) inputs.emplace_back(100 * i);
  // byz_count processes send nothing at all: the wait threshold n-t must
  // still be reachable.
  AsyncNetwork net(n, t, Scheduling::kRandomDelay, 17);
  std::vector<std::optional<BigInt>> outputs(n);
  const AsyncApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < t) {
      net.set_byzantine_process(id, [](ProcessContext&) {});
    } else {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        outputs[static_cast<std::size_t>(id)] =
            aa.run(ctx, inputs[static_cast<std::size_t>(id)], 25);
      });
    }
  }
  EXPECT_NO_THROW((void)net.run());
  for (int id = t; id < n; ++id) {
    ASSERT_TRUE(outputs[static_cast<std::size_t>(id)].has_value());
    EXPECT_GE(*outputs[static_cast<std::size_t>(id)], BigInt(100 * t));
    EXPECT_LE(*outputs[static_cast<std::size_t>(id)], BigInt(100 * (n - 1)));
  }
}

}  // namespace
}  // namespace coca::async
