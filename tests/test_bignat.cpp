// Unit tests for BigNat / BigInt (arbitrary-precision values).
#include "util/bignat.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace coca {
namespace {

TEST(BigNat, ZeroBasics) {
  const BigNat z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_u64(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(BigNat(0), z);
}

TEST(BigNat, BitLengthMatchesPaperDefinition) {
  // |BITS(v)| = k with 2^{k-1} <= v < 2^k.
  EXPECT_EQ(BigNat(1).bit_length(), 1u);
  EXPECT_EQ(BigNat(2).bit_length(), 2u);
  EXPECT_EQ(BigNat(3).bit_length(), 2u);
  EXPECT_EQ(BigNat(4).bit_length(), 3u);
  EXPECT_EQ(BigNat(255).bit_length(), 8u);
  EXPECT_EQ(BigNat(256).bit_length(), 9u);
  EXPECT_EQ((BigNat(1) << 100).bit_length(), 101u);
}

TEST(BigNat, BitsRoundTrip) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const BigNat v = rng.nat_below_pow2(1 + rng.below(300));
    const std::size_t ell = v.bit_length() + rng.below(20);
    EXPECT_EQ(BigNat::from_bits(v.to_bits(std::max<std::size_t>(ell, 1))), v);
  }
}

TEST(BigNat, ToBitsRejectsTooSmallWidth) {
  EXPECT_THROW(BigNat(256).to_bits(8), Error);
  EXPECT_NO_THROW(BigNat(255).to_bits(8));
}

TEST(BigNat, MaxWithBits) {
  EXPECT_EQ(BigNat::max_with_bits(0), BigNat(0));
  EXPECT_EQ(BigNat::max_with_bits(1), BigNat(1));
  EXPECT_EQ(BigNat::max_with_bits(8), BigNat(255));
  EXPECT_EQ(BigNat::max_with_bits(64), BigNat(~std::uint64_t{0}));
  EXPECT_EQ(BigNat::max_with_bits(100) + BigNat(1), BigNat::pow2(100));
}

TEST(BigNat, CompareOrdering) {
  EXPECT_LT(BigNat(3), BigNat(5));
  EXPECT_GT(BigNat::pow2(100), BigNat::pow2(99));
  EXPECT_EQ(BigNat::pow2(64), BigNat(1) << 64);
  EXPECT_LT(BigNat::max_with_bits(64), BigNat::pow2(64));
}

TEST(BigNat, AddSubRoundTrip) {
  Rng rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    const BigNat a = rng.nat_below_pow2(200);
    const BigNat b = rng.nat_below_pow2(180);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
    EXPECT_GE(a + b, a);
  }
}

TEST(BigNat, SubUnderflowThrows) {
  EXPECT_THROW(BigNat(3) - BigNat(5), Error);
}

TEST(BigNat, AddCarryChain) {
  // 2^192 - 1 + 1 ripples a carry through three limbs.
  EXPECT_EQ(BigNat::max_with_bits(192) + BigNat(1), BigNat::pow2(192));
}

TEST(BigNat, MulMatchesShifts) {
  Rng rng(23);
  for (int iter = 0; iter < 50; ++iter) {
    const BigNat a = rng.nat_below_pow2(150);
    EXPECT_EQ(a * BigNat(2), a << 1);
    EXPECT_EQ(a * BigNat::pow2(64), a << 64);
    EXPECT_EQ(a * BigNat(0), BigNat(0));
    EXPECT_EQ(a * BigNat(1), a);
  }
}

TEST(BigNat, MulCommutesAndDistributes) {
  Rng rng(29);
  for (int iter = 0; iter < 30; ++iter) {
    const BigNat a = rng.nat_below_pow2(120);
    const BigNat b = rng.nat_below_pow2(90);
    const BigNat c = rng.nat_below_pow2(70);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigNat, ShiftRoundTrip) {
  Rng rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    const BigNat a = rng.nat_below_pow2(100);
    const std::size_t s = rng.below(130);
    EXPECT_EQ((a << s) >> s, a);
  }
  EXPECT_EQ(BigNat(5) >> 10, BigNat(0));
}

TEST(BigNat, DecimalRoundTrip) {
  for (const char* s :
       {"0", "1", "9", "10", "999999999", "1000000000",
        "123456789012345678901234567890123456789012345678901234567890"}) {
    EXPECT_EQ(BigNat::from_decimal(s).to_decimal(), s);
  }
}

TEST(BigNat, DecimalRejectsGarbage) {
  EXPECT_THROW(BigNat::from_decimal(""), Error);
  EXPECT_THROW(BigNat::from_decimal("12a3"), Error);
  EXPECT_THROW(BigNat::from_decimal("-5"), Error);
}

TEST(BigNat, DivU32) {
  std::uint32_t rem = 0;
  const BigNat big = BigNat::from_decimal("123456789012345678901234567890");
  const BigNat q = big.div_u32(1000, rem);
  EXPECT_EQ(rem, 890u);
  EXPECT_EQ(q.to_decimal(), "123456789012345678901234567");
  EXPECT_THROW(big.div_u32(0, rem), Error);
}

TEST(BigInt, SignHandling) {
  EXPECT_EQ(BigInt(-5).to_decimal(), "-5");
  EXPECT_EQ(BigInt(5).to_decimal(), "5");
  EXPECT_FALSE(BigInt(0).negative());
  EXPECT_FALSE(BigInt(BigNat(0), true).negative());  // -0 normalizes to 0
  EXPECT_EQ(BigInt(BigNat(0), true), BigInt(0));
}

TEST(BigInt, Int64MinConversion) {
  const BigInt v(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.to_decimal(), "-9223372036854775808");
}

TEST(BigInt, Ordering) {
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(-3), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(-1000), BigInt(1));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, ArithmeticSignedCases) {
  EXPECT_EQ(BigInt(5) + BigInt(-3), BigInt(2));
  EXPECT_EQ(BigInt(3) + BigInt(-5), BigInt(-2));
  EXPECT_EQ(BigInt(-3) + BigInt(-5), BigInt(-8));
  EXPECT_EQ(BigInt(3) - BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(-3) - BigInt(-5), BigInt(2));
  EXPECT_EQ(-BigInt(7), BigInt(-7));
  EXPECT_EQ(-BigInt(0), BigInt(0));
}

TEST(BigInt, FromDecimal) {
  EXPECT_EQ(BigInt::from_decimal("-123"), BigInt(-123));
  EXPECT_EQ(BigInt::from_decimal("123"), BigInt(123));
  EXPECT_THROW(BigInt::from_decimal("-"), Error);
}

}  // namespace
}  // namespace coca
