// Unit tests for the Bitstring value model (the paper's BITS_l / VAL /
// MIN_l / MAX_l formalism).
#include "util/bitstring.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace coca {
namespace {

TEST(Bitstring, ZerosAndOnes) {
  EXPECT_EQ(Bitstring::zeros(5).to_string(), "00000");
  EXPECT_EQ(Bitstring::ones(5).to_string(), "11111");
  EXPECT_EQ(Bitstring::zeros(0).size(), 0u);
  EXPECT_TRUE(Bitstring::zeros(0).empty());
}

TEST(Bitstring, FromStringRoundTrip) {
  const std::string s = "1011001110001";
  EXPECT_EQ(Bitstring::from_string(s).to_string(), s);
}

TEST(Bitstring, FromStringRejectsBadChars) {
  EXPECT_THROW(Bitstring::from_string("01012"), Error);
}

TEST(Bitstring, FromU64MatchesPaperDefinition) {
  // BITS_8(5) = 00000101: prepend zeroes to the minimal representation.
  EXPECT_EQ(Bitstring::from_u64(5, 8).to_string(), "00000101");
  EXPECT_EQ(Bitstring::from_u64(0, 4).to_string(), "0000");
  EXPECT_EQ(Bitstring::from_u64(255, 8).to_string(), "11111111");
}

TEST(Bitstring, FromU64RejectsOverflow) {
  EXPECT_THROW(Bitstring::from_u64(256, 8), Error);
  EXPECT_NO_THROW(Bitstring::from_u64(~std::uint64_t{0}, 64));
}

TEST(Bitstring, ToU64RoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 5ull, 255ull, 256ull, 123456789ull}) {
    EXPECT_EQ(Bitstring::from_u64(v, 40).to_u64(), v);
  }
}

TEST(Bitstring, BitAccess) {
  Bitstring b = Bitstring::from_string("10110");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_TRUE(b.bit(3));
  EXPECT_FALSE(b.bit(4));
  EXPECT_THROW(b.bit(5), Error);
  b.set_bit(1, true);
  EXPECT_EQ(b.to_string(), "11110");
  b.set_bit(0, false);
  EXPECT_EQ(b.to_string(), "01110");
}

TEST(Bitstring, PushBack) {
  Bitstring b;
  for (char c : std::string("110100101")) b.push_back(c == '1');
  EXPECT_EQ(b.to_string(), "110100101");
}

TEST(Bitstring, AppendAligned) {
  Bitstring a = Bitstring::from_string("10101010");
  a.append(Bitstring::from_string("1111"));
  EXPECT_EQ(a.to_string(), "101010101111");
}

TEST(Bitstring, AppendUnaligned) {
  Bitstring a = Bitstring::from_string("101");
  a.append(Bitstring::from_string("0110011"));
  EXPECT_EQ(a.to_string(), "1010110011");
}

TEST(Bitstring, AppendEmpty) {
  Bitstring a = Bitstring::from_string("101");
  a.append(Bitstring());
  EXPECT_EQ(a.to_string(), "101");
  Bitstring b;
  b.append(a);
  EXPECT_EQ(b.to_string(), "101");
}

TEST(Bitstring, SubstrBasics) {
  const Bitstring b = Bitstring::from_string("110100101100");
  EXPECT_EQ(b.substr(0, 4).to_string(), "1101");
  EXPECT_EQ(b.substr(3, 5).to_string(), "10010");
  EXPECT_EQ(b.substr(11, 1).to_string(), "0");
  EXPECT_EQ(b.substr(12, 0).size(), 0u);
  EXPECT_THROW(b.substr(10, 3), Error);
}

TEST(Bitstring, SubstrAppendRoundTripRandom) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t len = 1 + rng.below(300);
    const Bitstring b = rng.bits(len);
    const std::size_t cut = rng.below(len + 1);
    Bitstring joined = b.prefix(cut);
    joined.append(b.substr(cut, len - cut));
    EXPECT_EQ(joined, b) << "len=" << len << " cut=" << cut;
  }
}

TEST(Bitstring, HasPrefix) {
  const Bitstring b = Bitstring::from_string("1101001");
  EXPECT_TRUE(b.has_prefix(Bitstring()));
  EXPECT_TRUE(b.has_prefix(Bitstring::from_string("1101")));
  EXPECT_TRUE(b.has_prefix(b));
  EXPECT_FALSE(b.has_prefix(Bitstring::from_string("1100")));
  EXPECT_FALSE(b.has_prefix(Bitstring::from_string("11010011")));
}

TEST(Bitstring, MinMaxFill) {
  const Bitstring p = Bitstring::from_string("101");
  EXPECT_EQ(Bitstring::min_fill(p, 8).to_string(), "10100000");
  EXPECT_EQ(Bitstring::max_fill(p, 8).to_string(), "10111111");
  EXPECT_EQ(Bitstring::min_fill(p, 3), p);
  EXPECT_THROW(Bitstring::min_fill(p, 2), Error);
}

TEST(Bitstring, MinMaxFillBracketEveryExtension) {
  // Remark 1's engine: MIN/MAX of a prefix bound every value extending it.
  Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t ell = 16;
    const Bitstring v = rng.bits(ell);
    const std::size_t cut = rng.below(ell + 1);
    const Bitstring p = v.prefix(cut);
    EXPECT_NE(Bitstring::numeric_compare(Bitstring::min_fill(p, ell), v),
              std::strong_ordering::greater);
    EXPECT_NE(Bitstring::numeric_compare(Bitstring::max_fill(p, ell), v),
              std::strong_ordering::less);
  }
}

TEST(Bitstring, CommonPrefixLen) {
  const Bitstring a = Bitstring::from_string("110100101");
  const Bitstring b = Bitstring::from_string("110101111");
  EXPECT_EQ(Bitstring::common_prefix_len(a, b), 5u);
  EXPECT_EQ(Bitstring::common_prefix_len(a, a), a.size());
  EXPECT_EQ(Bitstring::common_prefix_len(a, Bitstring()), 0u);
  EXPECT_EQ(Bitstring::common_prefix_len(Bitstring::from_string("0"),
                                          Bitstring::from_string("1")),
            0u);
}

TEST(Bitstring, NumericCompareMatchesValueOrder) {
  // For equal lengths, lexicographic bit order equals numeric order of VAL.
  Rng rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t x = rng.below(1 << 20);
    const std::uint64_t y = rng.below(1 << 20);
    const auto cmp = Bitstring::numeric_compare(Bitstring::from_u64(x, 20),
                                                Bitstring::from_u64(y, 20));
    EXPECT_EQ(cmp == std::strong_ordering::less, x < y);
    EXPECT_EQ(cmp == std::strong_ordering::equal, x == y);
  }
}

TEST(Bitstring, NumericCompareRequiresEqualLengths) {
  EXPECT_THROW(Bitstring::numeric_compare(Bitstring::zeros(3),
                                          Bitstring::zeros(4)),
               Error);
}

TEST(Bitstring, PackedRoundTrip) {
  Rng rng(99);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
    const Bitstring b = rng.bits(len);
    EXPECT_EQ(Bitstring::from_packed(b.packed(), b.size()), b);
  }
}

TEST(Bitstring, FromPackedMasksTrailingBits) {
  // Wire data may set the unused trailing bits; the invariant must hold so
  // equal bitstrings have equal packed forms.
  const Bytes dirty{0xFF};
  const Bitstring b = Bitstring::from_packed(dirty, 3);
  EXPECT_EQ(b.to_string(), "111");
  EXPECT_EQ(b.packed()[0], 0xE0);
}

TEST(Bitstring, FromPackedRejectsWrongSize) {
  EXPECT_THROW(Bitstring::from_packed(Bytes{0x00, 0x00}, 3), Error);
}

}  // namespace
}  // namespace coca
