// Lemma-level property tests for the paper's structural facts:
// Remark 1, Remark 2 (prefix/value geometry), Lemma 10 (trusted intervals),
// and the counting facts behind Pi_BA+ (at most two candidates / heavy
// values). These are the proofs' load-bearing steps, checked exhaustively
// at small sizes and randomly at larger ones.
#include <gtest/gtest.h>

#include "util/bitstring.h"
#include "util/rng.h"

namespace coca {
namespace {

// Remark 1: for v <= v' < 2^l with common prefix c shorter than l,
// MAX_l(c||0) and MIN_l(c||1) both lie in [v, v'].
TEST(Remark1, ExhaustiveSmall) {
  const std::size_t ell = 8;
  for (std::uint64_t v = 0; v < (1u << ell); ++v) {
    for (std::uint64_t w = v; w < (1u << ell); ++w) {
      const Bitstring bv = Bitstring::from_u64(v, ell);
      const Bitstring bw = Bitstring::from_u64(w, ell);
      const std::size_t c = Bitstring::common_prefix_len(bv, bw);
      if (c == ell) continue;
      Bitstring c0 = bv.prefix(c);
      c0.push_back(false);
      Bitstring c1 = bv.prefix(c);
      c1.push_back(true);
      const std::uint64_t max0 = Bitstring::max_fill(c0, ell).to_u64();
      const std::uint64_t min1 = Bitstring::min_fill(c1, ell).to_u64();
      ASSERT_GE(max0, v);
      ASSERT_LE(max0, w);
      ASSERT_GE(min1, v);
      ASSERT_LE(min1, w);
      // The adjacency identity used in the remark's proof.
      ASSERT_EQ(max0 + 1, min1);
    }
  }
}

// Remark 2: with common prefix c and continuations x < y (equal length),
// MAX_l(c||x) and MIN_l(c||y) lie in [v, v'].
TEST(Remark2, RandomizedLarge) {
  Rng rng(404);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t ell = 32 + rng.below(64);
    const Bitstring v = rng.bits(ell);
    Bitstring w = rng.bits(ell);
    const auto cmp = Bitstring::numeric_compare(v, w);
    const Bitstring& lo = cmp == std::strong_ordering::greater ? w : v;
    const Bitstring& hi = cmp == std::strong_ordering::greater ? v : w;
    const std::size_t c = Bitstring::common_prefix_len(lo, hi);
    if (c == ell) continue;
    // Continuations of one random unit length that keeps them differing.
    const std::size_t unit = 1 + rng.below(ell - c);
    const Bitstring x = lo.substr(c, unit);
    const Bitstring y = hi.substr(c, unit);
    if (Bitstring::numeric_compare(x, y) != std::strong_ordering::less) {
      continue;  // equal-unit windows may coincide past the first bit
    }
    Bitstring cx = lo.prefix(c);
    cx.append(x);
    Bitstring cy = lo.prefix(c);
    cy.append(y);
    const Bitstring max_cx = Bitstring::max_fill(cx, ell);
    const Bitstring min_cy = Bitstring::min_fill(cy, ell);
    for (const Bitstring* m : {&max_cx, &min_cy}) {
      EXPECT_NE(Bitstring::numeric_compare(*m, lo),
                std::strong_ordering::less);
      EXPECT_NE(Bitstring::numeric_compare(*m, hi),
                std::strong_ordering::greater);
    }
  }
}

// Lemma 10's counting core: among r = (n-t)+k received values of which at
// most k are adversarial, the (k+1)-th lowest and highest lie in the honest
// range. Simulated directly on multisets.
TEST(Lemma10, TrimmedEndpointsInHonestRange) {
  Rng rng(505);
  for (int iter = 0; iter < 500; ++iter) {
    const int n = 4 + static_cast<int>(rng.below(20));
    const int t = (n - 1) / 3;
    const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(t) + 1));
    std::vector<std::int64_t> honest;
    for (int i = 0; i < n - t; ++i) {
      honest.push_back(static_cast<std::int64_t>(rng.below(1000)));
    }
    const auto [lo_it, hi_it] = std::minmax_element(honest.begin(), honest.end());
    std::vector<std::int64_t> received = honest;
    for (int i = 0; i < k; ++i) {
      received.push_back(static_cast<std::int64_t>(rng.below(4000)) - 2000);
    }
    std::sort(received.begin(), received.end());
    const std::int64_t interval_min = received[static_cast<std::size_t>(k)];
    const std::int64_t interval_max =
        received[received.size() - 1 - static_cast<std::size_t>(k)];
    ASSERT_GE(interval_min, *lo_it);
    ASSERT_LE(interval_min, interval_max);
    ASSERT_LE(interval_max, *hi_it);
  }
}

// Pi_BA+'s counting facts (proof of Theorem 6): at most two values can be
// received from n-2t distinct senders each, and at most two values can
// accumulate n-t votes when each party votes for at most two values.
TEST(Theorem6Counting, AtMostTwoCandidates) {
  Rng rng(606);
  for (int iter = 0; iter < 500; ++iter) {
    const int n = 4 + static_cast<int>(rng.below(30));
    const int t = (n - 1) / 3;
    // Arbitrary assignment of one value per sender.
    std::map<int, int> count;
    for (int i = 0; i < n; ++i) ++count[static_cast<int>(rng.below(5))];
    int candidates = 0;
    for (const auto& [value, c] : count) {
      if (c >= n - 2 * t) ++candidates;
    }
    ASSERT_LE(candidates, 2) << "n=" << n;

    // Votes: each party names at most two values.
    std::map<int, int> votes;
    for (int i = 0; i < n; ++i) {
      const int a = static_cast<int>(rng.below(4));
      const int b = static_cast<int>(rng.below(4));
      ++votes[a];
      if (b != a) ++votes[b];
    }
    int heavy = 0;
    for (const auto& [value, c] : votes) {
      if (c >= n - t) ++heavy;
    }
    ASSERT_LE(heavy, 2) << "n=" << n;
  }
}

}  // namespace
}  // namespace coca
