// Witness-technique async AA (t < n/3): validity and per-round halving
// against EVERY scheduling policy -- including the static schedule that
// stalls the plain t < n/5 single-exchange variant.
#include "async/witnessed_aa.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/wire.h"

namespace coca::async {
namespace {

struct Outcome {
  BigNat diameter;
  bool valid;
};

Outcome run_waa(int n, int t, Scheduling policy, std::uint64_t seed,
                const std::vector<BigInt>& inputs, std::size_t rounds,
                int byz_count) {
  AsyncNetwork net(n, t, policy, seed);
  std::vector<std::optional<BigInt>> outputs(n);
  const WitnessedApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < byz_count) {
      // Byzantine: reliable-broadcasts extreme values with valid framing
      // (worst protocol-conformant input attack), then goes silent.
      net.set_byzantine_process(id, [n, rounds, id](ProcessContext& ctx) {
        for (std::uint64_t r = 0; r < rounds; ++r) {
          Writer inner;
          inner.u8(id % 2);  // alternate signs
          inner.bignat(BigNat::pow2(40));
          Writer w;
          w.u64(r);
          w.u8(0);  // INIT
          w.u32(static_cast<std::uint32_t>(id));
          w.bytes(inner.peek());
          for (int to = 0; to < n; ++to) ctx.send(to, w.peek());
        }
      });
    } else {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds,
               [&outputs, id](const BigInt& v) {
                 outputs[static_cast<std::size_t>(id)] = v;
               });
      });
    }
  }
  (void)net.run();

  std::optional<BigInt> out_lo, out_hi, in_lo, in_hi;
  for (int id = byz_count; id < n; ++id) {
    EXPECT_TRUE(outputs[static_cast<std::size_t>(id)].has_value()) << id;
    const BigInt& out = *outputs[static_cast<std::size_t>(id)];
    const BigInt& in = inputs[static_cast<std::size_t>(id)];
    if (!out_lo || out < *out_lo) out_lo = out;
    if (!out_hi || out > *out_hi) out_hi = out;
    if (!in_lo || in < *in_lo) in_lo = in;
    if (!in_hi || in > *in_hi) in_hi = in;
  }
  return {(*out_hi - *out_lo).magnitude(),
          *in_lo <= *out_lo && *out_hi <= *in_hi};
}

class WitnessedSweep
    : public ::testing::TestWithParam<std::tuple<Scheduling, int, int>> {};

TEST_P(WitnessedSweep, HalvesUnderEveryScheduler) {
  const auto [policy, n, seed] = GetParam();
  const int t = (n - 1) / 3;
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + static_cast<unsigned>(n));
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 16)));
  }
  const std::size_t rounds = 12;
  const Outcome o = run_waa(n, t, policy, static_cast<std::uint64_t>(seed),
                            inputs, rounds, /*byz_count=*/t);
  EXPECT_TRUE(o.valid);
  // Guaranteed halving per round plus +-1 truncation slack per round.
  EXPECT_LE(o.diameter, (BigNat(1 << 16) >> rounds) + BigNat(2 * rounds))
      << "policy=" << static_cast<int>(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WitnessedSweep,
    ::testing::Combine(::testing::Values(Scheduling::kFifo,
                                         Scheduling::kRandomDelay,
                                         Scheduling::kLagLowIds),
                       ::testing::Values(4, 7, 10),
                       ::testing::Values(1, 2)));

TEST(WitnessedAA, BeatsPlainVariantOnStaticSchedules) {
  // The scenario that freezes the single-exchange t < n/5 variant (see
  // test_async_protocols.cpp) contracts fine here, at t < n/3 no less.
  const int n = 10;
  const int t = 3;
  Rng rng(71);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  const std::size_t rounds = 16;
  const Outcome o =
      run_waa(n, t, Scheduling::kFifo, 1, inputs, rounds, /*byz_count=*/t);
  EXPECT_TRUE(o.valid);
  EXPECT_LE(o.diameter, (BigNat(1 << 20) >> rounds) + BigNat(2 * rounds));
}

TEST(WitnessedAA, CrashedProcessesTolerated) {
  const int n = 7;
  const int t = 2;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) inputs.emplace_back(1000 + 100 * i);
  AsyncNetwork net(n, t, Scheduling::kRandomDelay, 5);
  std::vector<std::optional<BigInt>> outputs(n);
  const WitnessedApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    if (id < t) {
      net.set_byzantine_process(id, [](ProcessContext&) {});  // crashed
    } else {
      net.set_process(id, [&, id](ProcessContext& ctx) {
        aa.run(ctx, inputs[static_cast<std::size_t>(id)], 10,
               [&outputs, id](const BigInt& v) {
                 outputs[static_cast<std::size_t>(id)] = v;
               });
      });
    }
  }
  EXPECT_NO_THROW((void)net.run());
  for (int id = t; id < n; ++id) {
    ASSERT_TRUE(outputs[static_cast<std::size_t>(id)].has_value());
    EXPECT_GE(*outputs[static_cast<std::size_t>(id)], BigInt(1000 + 100 * t));
    EXPECT_LE(*outputs[static_cast<std::size_t>(id)], BigInt(1600));
  }
}

TEST(WitnessedAA, IdenticalInputsFixed) {
  const int n = 4;
  const int t = 1;
  AsyncNetwork net(n, t, Scheduling::kLagLowIds, 2);
  std::vector<std::optional<BigInt>> outputs(n);
  const WitnessedApproxAgreement aa;
  for (int id = 0; id < n; ++id) {
    net.set_process(id, [&, id](ProcessContext& ctx) {
      aa.run(ctx, BigInt(-555), 6, [&outputs, id](const BigInt& v) {
        outputs[static_cast<std::size_t>(id)] = v;
      });
    });
  }
  (void)net.run();
  for (const auto& out : outputs) EXPECT_EQ(*out, BigInt(-555));
}

TEST(WitnessedAA, RejectsTooManyCorruptions) {
  AsyncNetwork net(6, 2, Scheduling::kFifo, 1);  // 6 = 3*2, not > 3t
  const WitnessedApproxAgreement aa;
  for (int id = 0; id < 6; ++id) {
    net.set_process(id, [&aa](ProcessContext& ctx) {
      aa.run(ctx, BigInt(1), 2, [](const BigInt&) {});
    });
  }
  EXPECT_THROW((void)net.run(), Error);
}

}  // namespace
}  // namespace coca::async
