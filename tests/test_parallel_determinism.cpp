// Transcript equivalence of the parallel round engine (net::ExecPolicy).
//
// The contract under test: the execution schedule is a pure wall-clock
// knob. For every protocol in the repository, running the same
// configuration serially (threads = 1, the reference schedule) and on a
// fixed-size worker window (threads = 2 and 8) must produce
//   * identical honest outputs,
//   * identical run metrics (total honest bytes/messages, per-party bytes,
//     per-phase attribution, round count), and
//   * identical canonical message transcripts, including the per-round
//     honest-byte meter and the rushing adversary's send decisions (which
//     depend on the exact order of the honest traffic it observes).
//
// The matrix is the paper's protocol stack -- FixedLengthCA, FindPrefix,
// Pi_BA+, Pi_lBA+, Pi_N, Pi_Z, HighCostCA, and the BroadcastTrimCA
// baseline -- each under no faults and two adversary strategies, across
// three workload seeds.
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "adversary/spec.h"
#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "ca/find_prefix.h"
#include "ca/fixed_length_ca.h"
#include "ca/pi_n.h"
#include "tests/support.h"

namespace coca {
namespace {

using StrategyFactory =
    std::function<std::shared_ptr<net::ByzantineStrategy>(int id)>;

constexpr int kWindows[] = {2, 8};

/// Everything observable about one run; equality means the schedules are
/// indistinguishable to protocols, meters, and adversaries alike.
template <class Result>
struct Observed {
  std::vector<std::optional<Result>> outputs;
  net::RunStats stats;
  net::Transcript transcript;
};

::testing::AssertionResult transcripts_equal(const net::Transcript& serial,
                                             const net::Transcript& parallel) {
  if (serial.rounds.size() != parallel.rounds.size()) {
    return ::testing::AssertionFailure()
           << "round counts differ: serial=" << serial.rounds.size()
           << " parallel=" << parallel.rounds.size();
  }
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    const auto& a = serial.rounds[r];
    const auto& b = parallel.rounds[r];
    if (a.honest_bytes != b.honest_bytes) {
      return ::testing::AssertionFailure()
             << "round " << r << ": honest bytes differ (" << a.honest_bytes
             << " vs " << b.honest_bytes << ")";
    }
    if (a.messages.size() != b.messages.size()) {
      return ::testing::AssertionFailure()
             << "round " << r << ": message counts differ ("
             << a.messages.size() << " vs " << b.messages.size() << ")";
    }
    for (std::size_t m = 0; m < a.messages.size(); ++m) {
      if (!(a.messages[m] == b.messages[m])) {
        return ::testing::AssertionFailure()
               << "round " << r << ", message " << m << ": differs (from "
               << a.messages[m].from << "->" << a.messages[m].to << " vs "
               << b.messages[m].from << "->" << b.messages[m].to << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

template <class Result>
void expect_equivalent(const Observed<Result>& serial,
                       const Observed<Result>& parallel, int window) {
  SCOPED_TRACE(::testing::Message() << "window=" << window);
  EXPECT_EQ(serial.outputs, parallel.outputs) << "honest outputs differ";
  EXPECT_EQ(serial.stats.honest_bytes, parallel.stats.honest_bytes);
  EXPECT_EQ(serial.stats.honest_messages, parallel.stats.honest_messages);
  EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds);
  EXPECT_EQ(serial.stats.bytes_by_party, parallel.stats.bytes_by_party);
  EXPECT_EQ(serial.stats.honest_bytes_by_phase,
            parallel.stats.honest_bytes_by_phase);
  EXPECT_TRUE(transcripts_equal(serial.transcript, parallel.transcript));
}

// ---- Sub-protocol runs: honest bodies over a raw SyncNetwork. ----

template <class Result>
Observed<Result> observe_subprotocol(
    int threads, int n, int t,
    const std::function<Result(net::PartyContext&, int)>& body,
    const std::set<int>& byzantine, const StrategyFactory& factory) {
  net::SyncNetwork net(n, t);
  net.set_exec_policy(net::ExecPolicy::parallel(threads));
  Observed<Result> run;
  net.set_transcript(&run.transcript);
  run.outputs.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    if (byzantine.contains(id)) {
      net.set_byzantine(id, factory(id));
    } else {
      auto* slot = &run.outputs[static_cast<std::size_t>(id)];
      net.set_honest(id, [&body, slot, id](net::PartyContext& ctx) {
        *slot = body(ctx, id);
      });
    }
  }
  run.stats = net.run();
  return run;
}

struct FaultMode {
  const char* name;
  std::set<int> byzantine;
  StrategyFactory factory;
};

std::vector<FaultMode> scripted_fault_modes(int t) {
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(2 * i);  // spread over the id space
  return {
      {"no-fault", {}, {}},
      {"garbage", byz, [](int) { return std::make_shared<adv::Garbage>(); }},
      {"replay", byz, [](int) { return std::make_shared<adv::Replay>(); }},
  };
}

template <class Result>
void sweep_subprotocol(
    int n, int t,
    const std::function<Result(net::PartyContext&, int, std::uint64_t seed)>&
        body) {
  for (const FaultMode& mode : scripted_fault_modes(t)) {
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      SCOPED_TRACE(::testing::Message()
                   << "fault=" << mode.name << " seed=" << seed);
      const std::function<Result(net::PartyContext&, int)> bound =
          [&body, seed](net::PartyContext& ctx, int id) {
            return body(ctx, id, seed);
          };
      const auto serial = observe_subprotocol<Result>(
          1, n, t, bound, mode.byzantine, mode.factory);
      for (const int window : kWindows) {
        const auto parallel = observe_subprotocol<Result>(
            window, n, t, bound, mode.byzantine, mode.factory);
        expect_equivalent(serial, parallel, window);
      }
    }
  }
}

struct BAFixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
};

Bitstring party_value(std::uint64_t seed, int id, std::size_t ell) {
  // Top bit set so every party's value has the same length.
  Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(id));
  Bitstring v = rng.bits(ell);
  v.set_bit(0, true);
  return v;
}

constexpr int kN = 7;
constexpr int kT = 2;
constexpr std::size_t kEll = 64;

TEST(ParallelDeterminism, FixedLengthCA) {
  BAFixture f;
  const ca::FixedLengthCA proto{f.kit};
  sweep_subprotocol<Bitstring>(
      kN, kT, [&proto](net::PartyContext& ctx, int id, std::uint64_t seed) {
        return proto.run(ctx, kEll, party_value(seed, id, kEll));
      });
}

TEST(ParallelDeterminism, FindPrefix) {
  BAFixture f;
  const ba::LongBAPlus lba{f.kit};
  sweep_subprotocol<Bitstring>(
      kN, kT, [&lba](net::PartyContext& ctx, int id, std::uint64_t seed) {
        const auto res =
            ca::find_prefix(ctx, lba, kEll, party_value(seed, id, kEll));
        return res.prefix;
      });
}

TEST(ParallelDeterminism, PiBAPlus) {
  BAFixture f;
  const ba::BAPlus ba{f.kit};
  sweep_subprotocol<ba::MaybeBytes>(
      kN, kT, [&ba](net::PartyContext& ctx, int id, std::uint64_t seed) {
        return ba.run(ctx, Rng::stream(seed, static_cast<unsigned>(id))
                               .bytes(32));
      });
}

TEST(ParallelDeterminism, PiLongBAPlus) {
  BAFixture f;
  const ba::LongBAPlus lba{f.kit};
  sweep_subprotocol<ba::MaybeBytes>(
      kN, kT, [&lba](net::PartyContext& ctx, int id, std::uint64_t seed) {
        return lba.run(ctx, Rng::stream(seed, static_cast<unsigned>(id))
                                .bytes(96));
      });
}

TEST(ParallelDeterminism, PiN) {
  BAFixture f;
  const ca::PiN pi_n{f.kit};
  sweep_subprotocol<BigNat>(
      kN, kT, [&pi_n](net::PartyContext& ctx, int id, std::uint64_t seed) {
        return pi_n.run(ctx,
                        Rng::stream(seed, static_cast<unsigned>(id))
                            .nat_below_pow2(kEll));
      });
}

// ---- Whole-protocol runs through the simulation driver (exercises the
// SimConfig plumbing: threads + transcript). ----

Observed<BigInt> observe_protocol(int threads, const ca::CAProtocol& proto,
                                  std::uint64_t seed, adv::Kind kind,
                                  bool faulty) {
  ca::SimConfig cfg;
  cfg.n = kN;
  cfg.t = kT;
  Rng rng = Rng::stream(seed, 0xCA);
  for (int id = 0; id < kN; ++id) {
    cfg.inputs.emplace_back(BigNat::pow2(kEll - 1) +
                                rng.nat_below_pow2(kEll - 1),
                            /*negative=*/id % 3 == 1);
  }
  if (faulty) {
    cfg.corruptions.push_back({1, kind});
    cfg.corruptions.push_back({4, adv::Kind::kSilent});
  }
  cfg.extreme_low = BigInt(-1'000'000);
  cfg.extreme_high = BigInt(1'000'000);
  cfg.threads = threads;
  Observed<BigInt> run;
  cfg.transcript = &run.transcript;
  ca::SimResult result = ca::run_simulation(proto, cfg);
  run.outputs = std::move(result.outputs);
  run.stats = std::move(result.stats);
  return run;
}

void sweep_protocol(const ca::CAProtocol& proto) {
  struct Mode {
    const char* name;
    adv::Kind kind;
    bool faulty;
  };
  const Mode modes[] = {{"no-fault", adv::Kind::kSilent, false},
                        {"replay", adv::Kind::kReplay, true},
                        {"split-brain", adv::Kind::kSplitBrain, true}};
  for (const Mode& mode : modes) {
    for (const std::uint64_t seed : {101u, 202u, 303u}) {
      SCOPED_TRACE(::testing::Message()
                   << proto.name() << " fault=" << mode.name
                   << " seed=" << seed);
      const auto serial =
          observe_protocol(1, proto, seed, mode.kind, mode.faulty);
      for (const int window : kWindows) {
        const auto parallel =
            observe_protocol(window, proto, seed, mode.kind, mode.faulty);
        expect_equivalent(serial, parallel, window);
      }
    }
  }
}

TEST(ParallelDeterminism, PiZ) { sweep_protocol(ca::ConvexAgreement{}); }

TEST(ParallelDeterminism, HighCostCA) {
  const ca::DefaultBAStack stack;
  sweep_protocol(ca::HighCostCAProtocol{stack.kit()});
}

TEST(ParallelDeterminism, BroadcastTrimBaseline) {
  const ca::DefaultBAStack stack;
  sweep_protocol(ca::BroadcastTrimCA{stack.kit()});
}

// ---- Engine-level invariants of the transcript itself. ----

TEST(ParallelDeterminism, TranscriptMetersSumToRunTotals) {
  // Per-round honest bytes must add up to the run's honest-byte meter, so
  // "identical per-round metered bits" is the same statement as "identical
  // transcripts" plus this test.
  BAFixture f;
  const ca::FixedLengthCA proto{f.kit};
  const auto run = observe_subprotocol<Bitstring>(
      2, kN, kT,
      [&proto](net::PartyContext& ctx, int id) {
        return proto.run(ctx, kEll, party_value(7, id, kEll));
      },
      {0, 2}, [](int) { return std::make_shared<adv::Replay>(); });
  std::uint64_t sum = 0;
  for (const auto& round : run.transcript.rounds) sum += round.honest_bytes;
  EXPECT_EQ(sum, run.stats.honest_bytes);
  EXPECT_GE(run.transcript.rounds.size(), run.stats.rounds);
}

TEST(ParallelDeterminism, OversizedWindowMatchesSerial) {
  // A window larger than the party count degenerates to "all concurrent";
  // the transcript must still match the serial reference.
  BAFixture f;
  const ca::FixedLengthCA proto{f.kit};
  const std::function<Bitstring(net::PartyContext&, int)> body =
      [&proto](net::PartyContext& ctx, int id) {
        return proto.run(ctx, kEll, party_value(5, id, kEll));
      };
  const auto serial = observe_subprotocol<Bitstring>(1, kN, kT, body, {}, {});
  const auto wide = observe_subprotocol<Bitstring>(64, kN, kT, body, {}, {});
  expect_equivalent(serial, wide, 64);
}

}  // namespace
}  // namespace coca
