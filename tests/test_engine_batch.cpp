// Cross-instance kernel batching (engine/kernel_batch.h).
//
// Two contracts under test. First, equivalence: with `batch_kernels` on
// (the default), every instance's transcript, RunStats -- including
// payload_copies, which exercises the per-fiber PayloadMetrics counter
// virtualization -- and oracle verdict are bit-identical to the same case
// run alone. Second, the gate actually fires: a worker holding several
// kernel-heavy instances must report nonzero batched RS encodes and Merkle
// builds, with fewer flushes than served calls (i.e. real amortization,
// not one flush per call).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "net/sync_network.h"

namespace coca {
namespace {

std::vector<adv::FuzzCase> kernel_heavy_cases(std::size_t count) {
  // LongBAPlus drives both gated kernels per party per invocation:
  // RS.ENCODE of the length-prefixed payload and MT.BUILD over the shares.
  std::vector<adv::FuzzCase> cases;
  for (std::size_t i = 0; i < count; ++i) {
    adv::FuzzCase c;
    c.protocol = "LongBAPlus";
    c.n = (i % 3 == 0) ? 7 : 4;
    c.t = (c.n - 1) / 3;
    c.ell = 16 + 8 * (i % 4);
    c.input_seed = 0xBA7C4ULL + i;
    c.threads = 1;
    cases.push_back(std::move(c));
  }
  return cases;
}

void expect_equivalent(const adv::FuzzCase& c,
                       const engine::InstanceResult& got) {
  net::Transcript solo_tr;
  const adv::FuzzOutcome solo = adv::execute_case(c, &solo_tr);
  const net::RunStats& a = solo.stats;
  const net::RunStats& b = got.outcome.stats;
  EXPECT_EQ(a.honest_bytes, b.honest_bytes);
  EXPECT_EQ(a.honest_messages, b.honest_messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_by_party, b.bytes_by_party);
  EXPECT_EQ(a.phase_breakdown, b.phase_breakdown);
  // The sharp check: with several instances interleaved on one thread the
  // per-thread copy counters are virtualized per fiber; a leak between
  // instances shows up here as a wrong per-run diff.
  EXPECT_EQ(a.payload_copies, b.payload_copies);
  EXPECT_EQ(solo.verdict.violations, got.outcome.verdict.violations);
  EXPECT_EQ(solo.terminated, got.outcome.terminated);
  EXPECT_TRUE(solo_tr == got.transcript);
}

TEST(EngineKernelBatch, BatchedRunBitIdenticalToSolo) {
  if (!net::fibers_available()) GTEST_SKIP() << "needs ucontext fibers";
  const std::vector<adv::FuzzCase> cases = kernel_heavy_cases(8);
  engine::EngineOptions opt;
  opt.workers = 1;  // all instances share one worker: maximal batching
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  ASSERT_EQ(report.instances.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance=" << i);
    expect_equivalent(cases[i], report.instances[i]);
  }
  // The gate fired, and flushing amortized: strictly fewer flush passes
  // than kernel calls served.
  EXPECT_GT(report.kernel_batch.rs_calls, 0u);
  EXPECT_GT(report.kernel_batch.merkle_calls, 0u);
  EXPECT_GT(report.kernel_batch.flushes, 0u);
  EXPECT_LT(report.kernel_batch.flushes,
            report.kernel_batch.rs_calls + report.kernel_batch.merkle_calls);
}

TEST(EngineKernelBatch, MultiWorkerBatchedStillEquivalent) {
  if (!net::fibers_available()) GTEST_SKIP() << "needs ucontext fibers";
  const std::vector<adv::FuzzCase> cases = kernel_heavy_cases(8);
  for (const int workers : {2, 4}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    engine::EngineOptions opt;
    opt.workers = workers;
    const engine::EngineReport report = engine::Engine(opt).run(cases);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "instance=" << i);
      expect_equivalent(cases[i], report.instances[i]);
    }
    EXPECT_GT(report.kernel_batch.rs_calls, 0u);
  }
}

TEST(EngineKernelBatch, ByzantineAndFaultInstancesBatchSafely) {
  if (!net::fibers_available()) GTEST_SKIP() << "needs ucontext fibers";
  std::vector<adv::FuzzCase> cases = kernel_heavy_cases(6);
  cases[1].corrupted = {1};
  cases[1].mutation.seed = 0xBAD01;
  net::FaultPlan::Crash crash;
  crash.party = 2;
  crash.from_round = 2;
  crash.until_round = 4;
  cases[4].faults.crashes.push_back(crash);
  engine::EngineOptions opt;
  opt.workers = 1;
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance=" << i);
    expect_equivalent(cases[i], report.instances[i]);
  }
}

TEST(EngineKernelBatch, DisabledViaOptionReportsZeroStats) {
  const std::vector<adv::FuzzCase> cases = kernel_heavy_cases(4);
  engine::EngineOptions opt;
  opt.workers = 1;
  opt.batch_kernels = false;
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  EXPECT_EQ(report.kernel_batch.flushes, 0u);
  EXPECT_EQ(report.kernel_batch.rs_calls, 0u);
  EXPECT_EQ(report.kernel_batch.merkle_calls, 0u);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance=" << i);
    expect_equivalent(cases[i], report.instances[i]);
  }
}

TEST(EngineKernelBatch, TraceModeDisablesBatching) {
  // Batching collapses per-call kernel spans into per-flush spans, so the
  // engine must keep traced runs on the sequential path.
  const std::vector<adv::FuzzCase> cases = kernel_heavy_cases(4);
  engine::EngineOptions opt;
  opt.workers = 1;
  opt.trace = true;
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  EXPECT_EQ(report.kernel_batch.flushes, 0u);
  EXPECT_EQ(report.kernel_batch.rs_calls, 0u);
}

TEST(EngineKernelBatch, SingleInstancePerWorkerRunsInline) {
  const std::vector<adv::FuzzCase> cases = kernel_heavy_cases(3);
  engine::EngineOptions opt;
  opt.workers = 3;  // one instance each: nothing to batch with
  const engine::EngineReport report = engine::Engine(opt).run(cases);
  EXPECT_EQ(report.kernel_batch.flushes, 0u);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance=" << i);
    expect_equivalent(cases[i], report.instances[i]);
  }
}

}  // namespace
}  // namespace coca
