// Baseline protocols: correctness, and the comparative communication shapes
// the paper's headline claims rest on (tested at small scale; the benches
// measure them over full sweeps).
#include <gtest/gtest.h>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

SimConfig config_with_random_inputs(int n, int t, std::size_t bits,
                                    std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = n;
  cfg.t = t;
  Rng rng(seed);
  const BigNat base = BigNat::pow2(bits - 1);
  for (int i = 0; i < n; ++i) {
    cfg.inputs.emplace_back(base + rng.nat_below_pow2(bits - 2), false);
  }
  return cfg;
}

class BroadcastTrimSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastTrimSweep, PropertiesWithAdversaries) {
  const int n = GetParam();
  const int t = test::max_t(n);
  const DefaultBAStack stack;
  const BroadcastTrimCA proto(stack.kit());
  SimConfig cfg = config_with_random_inputs(n, t, 64, 17);
  for (int i = 0; i < t; ++i) {
    cfg.corruptions.push_back(
        {3 * i + 2, i % 2 ? adv::Kind::kReplay : adv::Kind::kSplitBrain});
  }
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastTrimSweep,
                         ::testing::Values(4, 7, 10, 13));

TEST(BroadcastTrim, ByzantineSenderCannotBiasOutput) {
  // A byzantine broadcaster may contribute any agreed value, but trimming
  // keeps the output between honest extremes.
  const DefaultBAStack stack;
  const BroadcastTrimCA proto(stack.kit());
  SimConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  cfg.inputs = {BigInt(500), BigInt(510), BigInt(505), BigInt(507),
                BigInt(503), BigInt(0),   BigInt(0)};
  cfg.corruptions = {{5, adv::Kind::kExtremeLow}, {6, adv::Kind::kExtremeHigh}};
  cfg.extreme_low = BigInt(-999999);
  cfg.extreme_high = BigInt(999999);
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  for (const auto& out : r.outputs) {
    if (!out) continue;
    EXPECT_GE(*out, BigInt(500));
    EXPECT_LE(*out, BigInt(510));
  }
}

TEST(Comparative, PiZBeatsBroadcastOnLongInputs) {
  // The headline: at fixed n and large l, BITS(PiZ) = O(l n) must undercut
  // BITS(BroadcastTrimCA) = O(l n^2).
  const int n = 7;
  const int t = 2;
  const ConvexAgreement pi_z;
  const DefaultBAStack stack;
  const BroadcastTrimCA broadcast(stack.kit());
  const std::size_t bits = 1 << 16;  // 64 Kbit inputs
  const auto cost = [&](const CAProtocol& proto) {
    const SimConfig cfg = config_with_random_inputs(n, t, bits, 23);
    return run_simulation(proto, cfg).stats.honest_bytes;
  };
  const auto ours = cost(pi_z);
  const auto theirs = cost(broadcast);
  EXPECT_LT(ours * 2, theirs)
      << "PiZ=" << ours << " broadcast=" << theirs << " at l=" << bits;
}

TEST(Comparative, HighCostBeatsPiZOnTinyInputs) {
  // Below the l = Omega(kappa n log^2 n) threshold PiZ's poly(n, kappa)
  // machinery dominates and the plain cubic protocol is cheaper -- the
  // trade-off the paper's title qualifies with "for sufficiently long
  // messages". (BroadcastTrimCA shares PiZ's extension machinery n times
  // over, so it never wins; the interesting small-l comparator is
  // HighCostCA.)
  const int n = 7;
  const int t = 2;
  const ConvexAgreement pi_z;
  const DefaultBAStack stack;
  const HighCostCAProtocol high_cost(stack.kit());
  const auto cost = [&](const CAProtocol& proto) {
    const SimConfig cfg = config_with_random_inputs(n, t, 16, 29);
    return run_simulation(proto, cfg).stats.honest_bytes;
  };
  EXPECT_GT(cost(pi_z), cost(high_cost));
}

TEST(Comparative, RoundShapes) {
  // HighCostCA: O(n) rounds. PiZ: O(n log n) (from O(log n) Phase-King
  // invocations of O(n) rounds each). Check ordering at one scale.
  const int n = 10;
  const int t = 3;
  const ConvexAgreement pi_z;
  const DefaultBAStack stack;
  const HighCostCAProtocol high_cost(stack.kit());
  const auto rounds = [&](const CAProtocol& proto) {
    const SimConfig cfg = config_with_random_inputs(n, t, 32, 31);
    return run_simulation(proto, cfg).stats.rounds;
  };
  EXPECT_LT(rounds(high_cost), rounds(pi_z));
}

TEST(Comparative, HonestBitsInsensitiveToSpam) {
  // The paper's motivation: in prior CA protocols honest communication is
  // adversarially chosen (honest parties forward byzantine payloads). In
  // PiZ honest bytes must stay within a whisker of the adversary-free run
  // even under spam floods.
  const ConvexAgreement pi_z;
  SimConfig base = config_with_random_inputs(7, 2, 4096, 37);
  const auto clean = run_simulation(pi_z, base).stats.honest_bytes;
  base.corruptions = {{2, adv::Kind::kSpam}, {4, adv::Kind::kSpam}};
  const auto spammed = run_simulation(pi_z, base).stats.honest_bytes;
  const double ratio =
      static_cast<double>(spammed) / static_cast<double>(clean);
  EXPECT_LT(ratio, 1.35) << "clean=" << clean << " spammed=" << spammed;
}

}  // namespace
}  // namespace coca::ca
