// FixedPoint decimals (the paper's "rationals with pre-defined precision")
// and their end-to-end use through Pi_Z.
#include "util/fixed_point.h"

#include <gtest/gtest.h>

#include "ca/driver.h"

namespace coca {
namespace {

TEST(FixedPoint, ParseAndFormat) {
  EXPECT_EQ(FixedPoint::parse("-10.042", 3).to_string(), "-10.042");
  EXPECT_EQ(FixedPoint::parse("-10.04", 3).to_string(), "-10.040");
  EXPECT_EQ(FixedPoint::parse("5", 2).to_string(), "5.00");
  EXPECT_EQ(FixedPoint::parse("0.5", 1).to_string(), "0.5");
  EXPECT_EQ(FixedPoint::parse(".5", 1).to_string(), "0.5");
  EXPECT_EQ(FixedPoint::parse("0", 0).to_string(), "0");
  EXPECT_EQ(FixedPoint::parse("-0.001", 3).to_string(), "-0.001");
}

TEST(FixedPoint, ScaledValues) {
  EXPECT_EQ(FixedPoint::parse("-10.042", 3).scaled(), BigInt(-10042));
  EXPECT_EQ(FixedPoint::parse("3.14", 2).scaled(), BigInt(314));
  EXPECT_EQ(FixedPoint::parse("100", 0).scaled(), BigInt(100));
}

TEST(FixedPoint, ParseRejections) {
  EXPECT_THROW(FixedPoint::parse("", 2), Error);
  EXPECT_THROW(FixedPoint::parse("-", 2), Error);
  EXPECT_THROW(FixedPoint::parse("1.234", 2), Error);  // too much precision
  EXPECT_THROW(FixedPoint::parse("1.2a", 3), Error);
}

TEST(FixedPoint, OrderingMatchesRationals) {
  const auto fp = [](const char* s) { return FixedPoint::parse(s, 4); };
  EXPECT_LT(fp("-10.05"), fp("-10.03"));
  EXPECT_LT(fp("-0.0001"), fp("0"));
  EXPECT_LT(fp("0.9999"), fp("1"));
  EXPECT_EQ(fp("2.5000"), fp("2.5"));
}

TEST(FixedPoint, PrecisionMismatchRejected) {
  EXPECT_THROW((void)(FixedPoint::parse("1", 2) < FixedPoint::parse("1", 3)),
               Error);
}

TEST(FixedPoint, EndToEndThroughPiZ) {
  // The paper's remark realized: run CA on scaled rationals.
  const unsigned precision = 3;
  const std::vector<const char*> readings{"-10.042", "-10.035", "-10.050",
                                          "-10.031"};
  ca::ConvexAgreement protocol;
  ca::SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  for (const char* r : readings) {
    cfg.inputs.push_back(FixedPoint::parse(r, precision).scaled());
  }
  const ca::SimResult result = ca::run_simulation(protocol, cfg);
  ASSERT_TRUE(result.agreement());
  ASSERT_TRUE(result.convex_validity(cfg.inputs));
  const FixedPoint agreed(*result.outputs[0], precision);
  EXPECT_GE(agreed, FixedPoint::parse("-10.050", precision));
  EXPECT_LE(agreed, FixedPoint::parse("-10.031", precision));
  // Output renders as a decimal with the agreed precision.
  EXPECT_EQ(agreed.to_string().find("-10."), 0u);
}

}  // namespace
}  // namespace coca
