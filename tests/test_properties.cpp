// Property sweeps: Termination, Agreement, and Convex Validity
// (Definition 1) for every whole-protocol CA implementation, across
// adversary kinds, corruption counts, and input patterns.
//
// This is the paper's proof obligation turned into a test matrix: the
// properties must hold for *every* adversary, so we quantify over the
// canonical strategy battery (including the split-brain equivocator and
// extreme-input attacks that CA exists to defeat).
#include <gtest/gtest.h>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

enum class Pattern {
  kIdentical,
  kClustered,     // tight sensor-style cluster
  kSpread,        // wide uniform spread
  kTwoCamps,      // bimodal
  kMixedSigns,
  kWithZeros,
};

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kIdentical:
      return "identical";
    case Pattern::kClustered:
      return "clustered";
    case Pattern::kSpread:
      return "spread";
    case Pattern::kTwoCamps:
      return "two-camps";
    case Pattern::kMixedSigns:
      return "mixed-signs";
    case Pattern::kWithZeros:
      return "with-zeros";
  }
  return "?";
}

std::vector<BigInt> make_inputs(Pattern p, int n, Rng& rng) {
  std::vector<BigInt> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (p) {
      case Pattern::kIdentical:
        inputs.emplace_back(424242);
        break;
      case Pattern::kClustered:
        inputs.emplace_back(
            static_cast<std::int64_t>(100000 + rng.below(16)));
        break;
      case Pattern::kSpread:
        inputs.emplace_back(static_cast<std::int64_t>(rng.below(1u << 30)));
        break;
      case Pattern::kTwoCamps:
        inputs.emplace_back(i % 2 ? 1000 : 2000);
        break;
      case Pattern::kMixedSigns:
        inputs.emplace_back(static_cast<std::int64_t>(rng.below(2000)) - 1000);
        break;
      case Pattern::kWithZeros:
        inputs.emplace_back(i % 3 == 0 ? 0 : 7);
        break;
    }
  }
  return inputs;
}

enum class Protocol { kPiZ, kBroadcastTrim, kHighCost };

struct Case {
  Protocol protocol;
  int n;
  Pattern pattern;
  adv::Kind adversary;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name;
  switch (c.protocol) {
    case Protocol::kPiZ:
      name = "PiZ";
      break;
    case Protocol::kBroadcastTrim:
      name = "Broadcast";
      break;
    case Protocol::kHighCost:
      name = "HighCost";
      break;
  }
  name += "_n" + std::to_string(c.n);
  name += std::string("_") + pattern_name(c.pattern);
  name += std::string("_") + std::string(adv::to_string(c.adversary));
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class CAProperties : public ::testing::TestWithParam<Case> {};

TEST_P(CAProperties, TerminationAgreementValidity) {
  const Case& c = GetParam();
  const int t = test::max_t(c.n);
  const DefaultBAStack stack;
  const ConvexAgreement pi_z;
  const BroadcastTrimCA broadcast(stack.kit());
  const HighCostCAProtocol high_cost(stack.kit());
  const CAProtocol* proto = nullptr;
  switch (c.protocol) {
    case Protocol::kPiZ:
      proto = &pi_z;
      break;
    case Protocol::kBroadcastTrim:
      proto = &broadcast;
      break;
    case Protocol::kHighCost:
      proto = &high_cost;
      break;
  }

  Rng rng(static_cast<std::uint64_t>(c.n) * 1000 +
          static_cast<std::uint64_t>(c.pattern) * 100 +
          static_cast<std::uint64_t>(c.adversary));
  SimConfig cfg;
  cfg.n = c.n;
  cfg.t = t;
  cfg.inputs = make_inputs(c.pattern, c.n, rng);
  // Corrupt t parties spread across the id space (ids matter: low ids are
  // early kings in Phase-King and HighCostCA).
  for (int i = 0; i < t; ++i) {
    cfg.corruptions.push_back({i * 2 + 1, c.adversary});
  }
  cfg.extreme_low = BigInt(-5'000'000'000LL);
  cfg.extreme_high = BigInt(5'000'000'000LL);

  const SimResult r = run_simulation(*proto, cfg);  // throws = no termination
  EXPECT_TRUE(test::InvariantOracle::convex_agreement(r, cfg.inputs))
      << case_name({GetParam(), 0});
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const Pattern patterns[] = {Pattern::kIdentical,  Pattern::kClustered,
                              Pattern::kSpread,     Pattern::kTwoCamps,
                              Pattern::kMixedSigns, Pattern::kWithZeros};
  for (const Protocol proto :
       {Protocol::kPiZ, Protocol::kBroadcastTrim, Protocol::kHighCost}) {
    for (const int n : {4, 7, 10}) {
      for (const Pattern p : patterns) {
        for (const adv::Kind kind : adv::kAllKinds) {
          // Keep the matrix affordable: the full pattern set runs at n = 7;
          // other sizes use the two adversarial patterns that stress the
          // search the most.
          if (n != 7 && p != Pattern::kClustered && p != Pattern::kSpread) {
            continue;
          }
          cases.push_back({proto, n, p, kind});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CAProperties,
                         ::testing::ValuesIn(all_cases()), case_name);

// Every adversary Kind is exercised by the sweep above: a Kind added to the
// taxonomy but filtered out of all_cases() fails here, not silently.
TEST(CAProperties, SweepCoversEveryAdversaryKind) {
  std::set<adv::Kind> swept;
  for (const Case& c : all_cases()) swept.insert(c.adversary);
  for (const adv::Kind kind : adv::kAllKinds) {
    EXPECT_TRUE(swept.contains(kind)) << adv::to_string(kind);
  }
  EXPECT_EQ(swept.size(), adv::kKindCount);
}

// With fewer corruptions than the budget (t' < t), everything still holds.
TEST(CAProperties, UnderprovisionedAdversary) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 10;
  cfg.t = 3;
  Rng rng(1);
  cfg.inputs = make_inputs(Pattern::kSpread, cfg.n, rng);
  cfg.corruptions = {{4, adv::Kind::kSplitBrain}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(test::InvariantOracle::convex_agreement(r, cfg.inputs));
}

// Mixed adversary kinds in one run.
TEST(CAProperties, HeterogeneousAdversaries) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 13;
  cfg.t = 4;
  Rng rng(2);
  cfg.inputs = make_inputs(Pattern::kClustered, cfg.n, rng);
  cfg.corruptions = {{0, adv::Kind::kSplitBrain},
                     {3, adv::Kind::kReplay},
                     {6, adv::Kind::kSpam},
                     {9, adv::Kind::kExtremeLow}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(test::InvariantOracle::convex_agreement(r, cfg.inputs));
}

// The paper's motivating example: a +100C sensor cannot move the agreed
// temperature outside the honest readings.
TEST(CAProperties, SensorOutlierScenario) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  // Fixed-point milli-degrees: honest readings in [-10050, -10030].
  cfg.inputs = {BigInt(-10042), BigInt(-10035), BigInt(-10050),
                BigInt(-10030), BigInt(-10047), BigInt(0), BigInt(0)};
  cfg.corruptions = {{5, adv::Kind::kExtremeHigh}, {6, adv::Kind::kExtremeHigh}};
  cfg.extreme_high = BigInt(100000);  // "+100 degrees"
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(test::InvariantOracle::agreement(r.outputs));
  EXPECT_TRUE(test::InvariantOracle::within(r.outputs, BigInt(-10050),
                                            BigInt(-10030)));
}

}  // namespace
}  // namespace coca::ca
