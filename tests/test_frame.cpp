// Wire framing (svc/frame.h): round-trip fidelity and decoder robustness
// against adversarially fragmented and malformed byte streams.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "net/buffer_pool.h"
#include "svc/frame.h"
#include "util/rng.h"

namespace coca::svc {
namespace {

Frame sample_frame(std::uint32_t seed) {
  Rng rng(seed);
  Frame f;
  f.header.type = FrameType::kMsg;
  f.header.flags = 0;
  f.header.session = 0xDEAD0000u + seed;
  f.header.round = 7 * seed + 3;
  f.header.from = static_cast<std::uint16_t>(seed % 7);
  f.header.to = static_cast<std::uint16_t>((seed + 1) % 7);
  f.payload = rng.bytes(1 + (seed * 37) % 300);
  return f;
}

Bytes wire_bytes(const Frame& f) {
  return encode_frame(f.header,
                      std::span<const std::uint8_t>(f.payload.data(),
                                                    f.payload.size()));
}

TEST(Frame, HeaderRoundTripsEveryField) {
  for (const FrameType type :
       {FrameType::kOpen, FrameType::kOpenAck, FrameType::kMsg,
        FrameType::kCommit, FrameType::kDeliver, FrameType::kClose,
        FrameType::kClosed, FrameType::kError}) {
    FrameHeader h;
    h.type = type;
    h.flags = 0;
    h.session = 0x01020304;
    h.round = 0xA0B0C0D0;
    h.from = 0x1122;
    h.to = 0x3344;
    const Bytes one = encode_frame(h, {});
    FrameDecoder dec;
    dec.feed(one);
    const std::optional<Frame> got = dec.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->header, h);
    EXPECT_TRUE(got->payload.empty());
    EXPECT_FALSE(dec.failed());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(Frame, PayloadRoundTrip) {
  const Frame f = sample_frame(5);
  FrameDecoder dec;
  dec.feed(wire_bytes(f));
  const std::optional<Frame> got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, f);
}

TEST(Frame, EncodeHeaderMatchesEncodeFrame) {
  // encode_header is the iovec fast path; its 24 bytes must be exactly the
  // prefix encode_frame writes.
  const Frame f = sample_frame(9);
  const auto hdr = encode_header(
      f.header, static_cast<std::uint32_t>(f.payload.size()));
  const Bytes full = wire_bytes(f);
  ASSERT_GE(full.size(), hdr.size());
  EXPECT_EQ(0, std::memcmp(hdr.data(), full.data(), hdr.size()));
}

TEST(Frame, OneByteFragmentation) {
  // Feeding the stream one byte at a time must yield the same frames as
  // one big feed, with next() returning nullopt until each completes.
  std::vector<Frame> frames;
  Bytes stream;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    frames.push_back(sample_frame(i));
    const Bytes b = wire_bytes(frames.back());
    stream.insert(stream.end(), b.begin(), b.end());
  }
  FrameDecoder dec;
  std::vector<Frame> got;
  for (const std::uint8_t byte : stream) {
    dec.feed(&byte, 1);
    while (std::optional<Frame> f = dec.next()) got.push_back(std::move(*f));
    ASSERT_FALSE(dec.failed());
  }
  EXPECT_EQ(got, frames);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, HugeFrameFragmentedAtEveryOffsetRelocatesAtMostOnce) {
  // Regression for the pre-slab compaction pathology: a large frame arriving
  // a byte at a time used to shift the whole partial frame on every feed
  // (quadratic in the payload length). With reserve-on-header the decoder
  // sizes a slab for the full frame as soon as the header's payload_len is
  // visible, so the partial frame relocates at most once -- the wire-copy
  // counters bound the total moved bytes by one pre-reservation chunk.
  constexpr std::size_t kMiB = std::size_t{1} << 20;
  Frame f = sample_frame(9);
  Rng rng(0x1F0);
  f.payload = rng.bytes(kMiB);
  const Bytes stream = wire_bytes(f);

  const std::uint64_t copies_before = net::PayloadMetrics::wire_copies();
  const std::uint64_t bytes_before = net::PayloadMetrics::wire_bytes_copied();
  FrameDecoder dec;
  std::optional<Frame> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    dec.feed(stream.data() + i, 1);
    ASSERT_FALSE(dec.failed());
    if (std::optional<Frame> out = dec.next()) {
      ASSERT_FALSE(got.has_value()) << "one frame in, one frame out";
      got = std::move(*out);
      ASSERT_EQ(i, stream.size() - 1) << "frame completed early";
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, f);

  const std::uint64_t relocations =
      net::PayloadMetrics::wire_copies() - copies_before;
  const std::uint64_t moved =
      net::PayloadMetrics::wire_bytes_copied() - bytes_before;
  EXPECT_LE(relocations, 1u);
  // At most the bytes buffered before the header completed (< one 64 KiB
  // read chunk); the 1 MiB payload body must never be moved.
  EXPECT_LE(moved, std::uint64_t{64} << 10);
}

TEST(Frame, ManyFramesPerFeedAndSplitFrames) {
  // Random fragmentation: chunk boundaries land mid-header, mid-payload,
  // and across frame boundaries; several complete frames arrive per chunk.
  std::vector<Frame> frames;
  Bytes stream;
  for (std::uint32_t i = 1; i <= 24; ++i) {
    frames.push_back(sample_frame(i));
    const Bytes b = wire_bytes(frames.back());
    stream.insert(stream.end(), b.begin(), b.end());
  }
  Rng rng(77);
  FrameDecoder dec;
  std::vector<Frame> got;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.next_u64() % 200, stream.size() - off);
    dec.feed(stream.data() + off, chunk);
    off += chunk;
    while (std::optional<Frame> f = dec.next()) got.push_back(std::move(*f));
    ASSERT_FALSE(dec.failed());
  }
  EXPECT_EQ(got, frames);
}

TEST(Frame, TruncatedFrameStaysPending) {
  const Frame f = sample_frame(3);
  const Bytes b = wire_bytes(f);
  FrameDecoder dec;
  dec.feed(b.data(), b.size() - 1);  // everything but the last payload byte
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.failed());  // truncation is pending input, not an error
  dec.feed(b.data() + b.size() - 1, 1);
  const std::optional<Frame> got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, f);
}

TEST(Frame, BadMagicFailsSticky) {
  Bytes b = wire_bytes(sample_frame(1));
  b[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(b);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // Sticky: a valid frame after the poison pill is never parsed.
  dec.feed(wire_bytes(sample_frame(2)));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
}

TEST(Frame, BadVersionFails) {
  Bytes b = wire_bytes(sample_frame(1));
  b[4] = kWireVersion + 1;
  FrameDecoder dec;
  dec.feed(b);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
}

TEST(Frame, UnknownTypeFails) {
  for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{13},
                                  std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
    EXPECT_FALSE(valid_frame_type(type));
    Bytes b = wire_bytes(sample_frame(1));
    b[5] = type;
    FrameDecoder dec;
    dec.feed(b);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_TRUE(dec.failed());
  }
  for (std::uint8_t type = 1; type <= 12; ++type) {
    EXPECT_TRUE(valid_frame_type(type));
  }
}

TEST(Frame, ResumePayloadRoundTrip) {
  ResumeInfo info;
  info.token = 0xDEADBEEFCAFEF00DULL;
  info.completed = 41;
  info.n = 7;
  info.t = 2;
  const Bytes b = encode_resume(info);
  ASSERT_EQ(b.size(), 20u);
  const auto back = decode_resume(b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, info);
  EXPECT_FALSE(decode_resume(std::span<const std::uint8_t>(b.data(), 19)));
  Bytes longer = b;
  longer.push_back(0);
  EXPECT_FALSE(decode_resume(longer));

  const Bytes tok = encode_u64_payload(info.token);
  ASSERT_EQ(tok.size(), 8u);
  EXPECT_EQ(decode_u64_payload(tok), info.token);
  EXPECT_FALSE(decode_u64_payload(std::span<const std::uint8_t>(tok.data(),
                                                                7)));
}

TEST(Frame, ResetRecoversFromTornFrameWithoutLeakingSlabs) {
  // The reconnect seam: a 1 MiB frame torn mid-payload is abandoned by
  // reset(), the decoder parses the fresh stream cleanly, and once the
  // views drop every slab touched went back to the pool -- outstanding
  // slab count across the whole dance is zero.
  const auto outstanding = [] {
    const net::BufferPool::Stats s = net::BufferPool::instance().stats();
    return (s.slab_allocs + s.slab_reuses) - s.slab_releases;
  };
  const std::uint64_t before = outstanding();
  {
    Frame big = sample_frame(3);
    big.payload = net::Payload(Bytes(1 << 20, 0xAB));
    const Bytes wire = wire_bytes(big);

    FrameDecoder dec;
    dec.feed(std::span<const std::uint8_t>(wire.data(), wire.size() / 2));
    EXPECT_FALSE(dec.next().has_value());  // torn: nothing complete
    EXPECT_GT(dec.buffered(), 0u);
    dec.reset();  // connection died; the byte stream starts over
    EXPECT_EQ(dec.buffered(), 0u);
    EXPECT_FALSE(dec.failed());

    // Also clear a sticky failure the same way.
    FrameDecoder poisoned;
    Bytes garbage(64, 0x5A);
    poisoned.feed(garbage);
    (void)poisoned.next();
    EXPECT_TRUE(poisoned.failed());
    poisoned.reset();
    EXPECT_FALSE(poisoned.failed());

    // The reset decoder parses the full frame from byte zero.
    dec.feed(wire);
    const auto parsed = dec.next();
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, big);
    EXPECT_FALSE(dec.next().has_value());
  }  // decoder + payload views dropped: slabs return to the pool
  EXPECT_EQ(outstanding(), before)
      << "torn-frame reset must not strand receive slabs";
}

TEST(Frame, OversizedLengthFailsBeforeAllocation) {
  Bytes b = wire_bytes(sample_frame(1));
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(b.data() + 20, &huge, sizeof(huge));  // payload_len field (LE)
  FrameDecoder dec;
  dec.feed(b.data(), kHeaderSize);  // header alone is enough to reject
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.failed());
}

TEST(Frame, GarbageStreamNeverParses) {
  Rng rng(404);
  const Bytes junk = rng.bytes(4096);
  FrameDecoder dec;
  std::size_t off = 0;
  while (off < junk.size() && !dec.failed()) {
    const std::size_t chunk = std::min<std::size_t>(37, junk.size() - off);
    dec.feed(junk.data() + off, chunk);
    off += chunk;
    while (dec.next().has_value()) {
      FAIL() << "garbage produced a frame";
    }
  }
  // Random bytes essentially never spell the magic at offset 0.
  EXPECT_TRUE(dec.failed());
}

TEST(Frame, MaxPayloadBoundaryAccepted) {
  // Exactly kMaxFramePayload is legal (the bound is inclusive); keep the
  // test cheap by checking header acceptance without feeding 64 MiB.
  FrameHeader h;
  h.type = FrameType::kMsg;
  const auto hdr = encode_header(h, kMaxFramePayload);
  FrameDecoder dec;
  dec.feed(hdr.data(), hdr.size());
  EXPECT_FALSE(dec.next().has_value());  // payload pending, not failed
  EXPECT_FALSE(dec.failed());
}

TEST(Frame, NonzeroFlagsRoundTrip) {
  // Flags are reserved-zero on the wire today, but the decoder must carry
  // them through rather than silently masking (forward compatibility).
  FrameHeader h;
  h.type = FrameType::kCommit;
  h.flags = 0xBEEF;
  const Bytes b = encode_frame(h, {});
  FrameDecoder dec;
  dec.feed(b);
  const std::optional<Frame> got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.flags, 0xBEEF);
}

}  // namespace
}  // namespace coca::svc
