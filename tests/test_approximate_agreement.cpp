// Synchronous Approximate Agreement: validity, epsilon-agreement, and the
// per-iteration halving rate, under the adversary battery.
#include "aa/approximate_agreement.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::aa {
namespace {

using test::max_t;
using test::run_parties;

struct Outcome {
  BigInt lo;
  BigInt hi;
  BigNat diameter;
  bool valid;
};

Outcome analyze(const std::vector<std::optional<BigInt>>& outputs,
                const std::vector<BigInt>& inputs) {
  std::optional<BigInt> out_lo, out_hi, in_lo, in_hi;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;
    const BigInt& out = *outputs[id];
    const BigInt& in = inputs[id];
    if (!out_lo || out < *out_lo) out_lo = out;
    if (!out_hi || out > *out_hi) out_hi = out;
    if (!in_lo || in < *in_lo) in_lo = in;
    if (!in_hi || in > *in_hi) in_hi = in;
  }
  const BigInt spread = *out_hi - *out_lo;
  return {*out_lo, *out_hi, spread.magnitude(),
          *in_lo <= *out_lo && *out_hi <= *in_hi};
}

class AASweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AASweep, ConvergesWithinEpsilonNoAdversary) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const SyncApproxAgreement aa;
  Rng rng(static_cast<std::uint64_t>(seed) * 91 + n);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 20)));
  }
  const std::size_t rounds = iterations_for(BigNat(1 << 20), BigNat(4));
  auto run = run_parties<BigInt>(n, t, [&](net::PartyContext& ctx, int id) {
    return aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
  });
  const Outcome o = analyze(run.outputs, inputs);
  EXPECT_TRUE(o.valid);
  // epsilon plus the +-1 truncation slack accumulated over the iterations.
  EXPECT_LE(o.diameter, BigNat(4 + 2 * rounds));
}

TEST_P(AASweep, ConvergesUnderAdversaries) {
  const auto [n, seed] = GetParam();
  const int t = max_t(n);
  const SyncApproxAgreement aa;
  Rng rng(static_cast<std::uint64_t>(seed) * 37 + n);
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15));
  }
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(2 * i);
  const std::size_t rounds = iterations_for(BigNat(1 << 16), BigNat(4));
  auto run = run_parties<BigInt>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
      },
      byz,
      [&](int id) -> std::shared_ptr<net::ByzantineStrategy> {
        switch (id % 3) {
          case 0:
            return std::make_shared<adv::Replay>();
          case 1:
            return std::make_shared<adv::Garbage>();
          default:
            return std::make_shared<adv::Spam>(128);
        }
      });
  const Outcome o = analyze(run.outputs, inputs);
  EXPECT_TRUE(o.valid);
  EXPECT_LE(o.diameter, BigNat(4 + 2 * rounds));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AASweep,
                         ::testing::Combine(::testing::Values(4, 7, 10, 13),
                                            ::testing::Values(1, 2)));

TEST(ApproxAgreement, HalvingRatePerIteration) {
  // Measure the diameter after k iterations: must shrink at least
  // geometrically with factor ~1/2 (plus truncation slack).
  const int n = 10;
  const int t = 3;
  const SyncApproxAgreement aa;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.emplace_back(i % 2 == 0 ? 0 : 1 << 20);  // diameter 2^20
  }
  BigNat prev = BigNat(1 << 20);
  for (std::size_t k = 1; k <= 6; ++k) {
    auto run = run_parties<BigInt>(n, t, [&](net::PartyContext& ctx, int id) {
      return aa.run(ctx, inputs[static_cast<std::size_t>(id)], k);
    });
    const Outcome o = analyze(run.outputs, inputs);
    // After k halvings of 2^20: at most 2^(20-k) plus slack.
    EXPECT_LE(o.diameter, (BigNat(1 << 20) >> k) + BigNat(2 * k))
        << "k=" << k;
    EXPECT_LE(o.diameter, prev);
    prev = o.diameter;
  }
}

TEST(ApproxAgreement, ValidityWithExtremeEquivocator) {
  // A split-brain byzantine feeds 0 to half and 2^30 to the other half of
  // the network at every AA iteration; outputs stay in the honest range.
  const int n = 7;
  const int t = 2;
  const SyncApproxAgreement aa;
  std::vector<BigInt> inputs;
  for (int i = 0; i < n; ++i) inputs.emplace_back(5000 + 10 * i);
  const std::size_t rounds = 16;

  net::SyncNetwork net(n, t);
  std::vector<std::optional<BigInt>> outputs(n);
  const auto byz_instance = [&](std::int64_t v) {
    return [&aa, v, rounds](net::PartyContext& ctx) {
      (void)aa.run(ctx, BigInt(v), rounds);
    };
  };
  net.set_split_brain(6, byz_instance(0), byz_instance(1 << 30), {0, 2, 4});
  net.set_byzantine(5, std::make_shared<adv::Replay>());
  for (int id = 0; id < 5; ++id) {
    net.set_honest(id, [&, id](net::PartyContext& ctx) {
      outputs[static_cast<std::size_t>(id)] =
          aa.run(ctx, inputs[static_cast<std::size_t>(id)], rounds);
    });
  }
  (void)net.run();
  const Outcome o = analyze(outputs, inputs);
  EXPECT_TRUE(o.valid);
  EXPECT_LE(o.diameter, BigNat(2 * rounds + 1));
}

TEST(ApproxAgreement, IdenticalInputsFixedPoint) {
  const int n = 7;
  const SyncApproxAgreement aa;
  auto run = run_parties<BigInt>(n, 2, [&](net::PartyContext& ctx, int) {
    return aa.run(ctx, BigInt(-777), 8);
  });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, BigInt(-777));
}

TEST(ApproxAgreement, ZeroRoundsIsIdentity) {
  const int n = 4;
  const SyncApproxAgreement aa;
  auto run = run_parties<BigInt>(n, 1, [&](net::PartyContext& ctx, int id) {
    return aa.run(ctx, BigInt(id), 0);
  });
  for (int id = 0; id < n; ++id) EXPECT_EQ(*run.outputs[id], BigInt(id));
}

TEST(ApproxAgreement, IterationsForFormula) {
  EXPECT_EQ(iterations_for(BigNat(1024), BigNat(1)), 10u);
  EXPECT_EQ(iterations_for(BigNat(1024), BigNat(1024)), 0u);
  EXPECT_EQ(iterations_for(BigNat(1025), BigNat(1)), 11u);
  EXPECT_EQ(iterations_for(BigNat(0), BigNat(1)), 0u);
  EXPECT_THROW(iterations_for(BigNat(8), BigNat(0)), Error);
}

TEST(ApproxAgreement, CommunicationQuadraticPerRound) {
  // Each iteration ships every value to everyone: bytes ~ 2 * l * n^2 per
  // iteration (value round + hash echoes).
  const int n = 10;
  const int t = 3;
  const SyncApproxAgreement aa;
  const auto bytes_for = [&](std::size_t iters) {
    auto run = run_parties<BigInt>(n, t, [&](net::PartyContext& ctx, int id) {
      return aa.run(ctx, BigInt(1000 + id), iters);
    });
    return run.stats.honest_bytes;
  };
  const auto b4 = bytes_for(4);
  const auto b8 = bytes_for(8);
  EXPECT_NEAR(static_cast<double>(b8) / static_cast<double>(b4), 2.0, 0.3);
}

}  // namespace
}  // namespace coca::aa
