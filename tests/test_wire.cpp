// Wire format: round trips plus adversarial (malformed/truncated) decoding.
#include "util/wire.h"

#include <gtest/gtest.h>

#include "ba/ba_interface.h"
#include "util/rng.h"

namespace coca {
namespace {

TEST(Wire, IntegerRoundTrips) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, BytesRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.bytes(Bytes{});
  Reader r(w.peek());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, BitstringRoundTrip) {
  Rng rng(1);
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    const Bitstring b = rng.bits(len);
    Writer w;
    w.bitstring(b);
    Reader r(w.peek());
    EXPECT_EQ(r.bitstring(), b);
  }
}

TEST(Wire, BigNatRoundTrip) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    const BigNat v = rng.nat_below_pow2(1 + rng.below(500));
    Writer w;
    w.bignat(v);
    Reader r(w.peek());
    EXPECT_EQ(r.bignat(), v);
  }
  Writer w;
  w.bignat(BigNat(0));
  Reader r(w.peek());
  EXPECT_EQ(r.bignat(), BigNat(0));
}

TEST(Wire, ReaderRefusesUnderrun) {
  const Bytes buf{1, 2};
  Reader r(buf);
  EXPECT_EQ(r.u32(), std::nullopt);
  EXPECT_EQ(r.remaining(), 2u);  // failed reads consume nothing
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_EQ(r.u8(), std::nullopt);
}

TEST(Wire, BytesRejectsLyingLengthField) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes, provides none
  Reader r(w.peek());
  EXPECT_EQ(r.bytes(), std::nullopt);
}

TEST(Wire, BitstringRejectsAbsurdBitCount) {
  Writer w;
  w.u64(~std::uint64_t{0});  // ~2^64 bits claimed
  w.u8(0xFF);
  Reader r(w.peek());
  EXPECT_EQ(r.bitstring(), std::nullopt);
}

TEST(Wire, BignatRejectsNonCanonicalEncoding) {
  // A leading zero bit would let two encodings denote one value.
  Writer w;
  w.bitstring(Bitstring::from_string("0101"));
  Reader r(w.peek());
  EXPECT_EQ(r.bignat(), std::nullopt);
}

TEST(Wire, ReaderFuzzNeverCrashes) {
  // Random bytes through every decoder: must return nullopt or a value,
  // never crash or over-read.
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const Bytes junk = rng.bytes(rng.below(64));
    {
      Reader r(junk);
      (void)r.bytes();
    }
    {
      Reader r(junk);
      (void)r.bitstring();
    }
    {
      Reader r(junk);
      (void)r.bignat();
    }
    {
      Reader r(junk);
      (void)r.u64();
      (void)r.u32();
      (void)r.u16();
      (void)r.u8();
    }
  }
}

TEST(Wire, MaybeBytesEncoding) {
  using ba::decode_maybe;
  using ba::encode_maybe;
  const ba::MaybeBytes bottom = std::nullopt;
  const ba::MaybeBytes value = Bytes{9, 8, 7};
  // Note the nesting: decode_maybe returns optional<MaybeBytes> where the
  // outer layer means "well-formed" and the inner is the domain value.
  const auto decoded_bottom = decode_maybe(encode_maybe(bottom));
  ASSERT_TRUE(decoded_bottom.has_value());
  EXPECT_FALSE(decoded_bottom->has_value());
  EXPECT_EQ(*decode_maybe(encode_maybe(value)), value);
  // Distinct canonical encodings.
  EXPECT_NE(encode_maybe(bottom), encode_maybe(value));
  // Trailing garbage rejected.
  Bytes enc = encode_maybe(value);
  enc.push_back(0x00);
  EXPECT_EQ(decode_maybe(enc), std::nullopt);
  // Unknown tag rejected.
  EXPECT_EQ(decode_maybe(Bytes{7}), std::nullopt);
  EXPECT_EQ(decode_maybe(Bytes{}), std::nullopt);
}

TEST(Wire, MaybeBytesFuzz) {
  Rng rng(123);
  for (int iter = 0; iter < 2000; ++iter) {
    (void)ba::decode_maybe(rng.bytes(rng.below(32)));
  }
}

}  // namespace
}  // namespace coca
