// Turpin-Coan multivalued-from-binary reduction.
#include "ba/turpin_coan.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "tests/support.h"

namespace coca::ba {
namespace {

using test::all_agree;
using test::max_t;
using test::run_parties;

class TurpinCoanSweep : public ::testing::TestWithParam<int> {};

TEST_P(TurpinCoanSweep, ValidityAllSame) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  const MaybeBytes input = Bytes(32, 0x7C);  // kappa-bit style value
  auto run = run_parties<MaybeBytes>(
      n, t, [&](net::PartyContext& ctx, int) { return tc.run(ctx, input); });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, input);
}

TEST_P(TurpinCoanSweep, ValidityUnderWorstAdversary) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  const MaybeBytes input = Bytes{0x01, 0x02, 0x03};
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(i);
  auto run = run_parties<MaybeBytes>(
      n, t, [&](net::PartyContext& ctx, int) { return tc.run(ctx, input); },
      byz, [](int) { return std::make_shared<adv::Replay>(); });
  for (std::size_t id = 0; id < run.outputs.size(); ++id) {
    if (run.outputs[id]) {
      EXPECT_EQ(*run.outputs[id], input);
    }
  }
}

TEST_P(TurpinCoanSweep, AgreementDistinctInputs) {
  const int n = GetParam();
  const int t = max_t(n);
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(n - 1 - i);
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return tc.run(ctx, Bytes{static_cast<std::uint8_t>(id), 0x55});
      },
      byz, [](int) { return std::make_shared<adv::Garbage>(); });
  EXPECT_TRUE(all_agree(run.outputs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TurpinCoanSweep,
                         ::testing::Values(4, 7, 10, 13, 16));

TEST(TurpinCoan, IntrusionToleranceByproduct) {
  // With distinct honest inputs, the output is an honest input or bottom
  // (never an adversary-injected value), even against replay attackers.
  const int n = 10;
  const int t = 3;
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  std::set<int> byz{7, 8, 9};
  std::set<MaybeBytes> honest_inputs;
  for (int id = 0; id < 7; ++id) {
    honest_inputs.insert(Bytes{static_cast<std::uint8_t>(id)});
  }
  auto run = run_parties<MaybeBytes>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return tc.run(ctx, Bytes{static_cast<std::uint8_t>(id)});
      },
      byz, [](int) { return std::make_shared<adv::Spam>(64); });
  for (const auto& out : run.outputs) {
    if (!out) continue;
    EXPECT_TRUE(!out->has_value() || honest_inputs.contains(*out));
  }
}

TEST(TurpinCoan, BottomIsALegalDomainValue) {
  const int n = 7;
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  auto run = run_parties<MaybeBytes>(n, 2, [&](net::PartyContext& ctx, int) {
    return tc.run(ctx, std::nullopt);
  });
  for (const auto& out : run.outputs) EXPECT_EQ(*out, MaybeBytes{});
}

TEST(TurpinCoan, CommunicationQuadraticInN) {
  // BITS(TC) ~ 2 l n^2 + BITS_1(PhaseKing); doubling l roughly doubles the
  // value-dependent part.
  const int n = 10;
  const int t = 3;
  const PhaseKingBinary bin;
  const TurpinCoan tc(bin);
  const auto measure = [&](std::size_t len) {
    const MaybeBytes input = Bytes(len, 0x42);
    auto run = run_parties<MaybeBytes>(
        n, t, [&](net::PartyContext& ctx, int) { return tc.run(ctx, input); });
    return run.stats.honest_bytes;
  };
  const auto small = measure(1000);
  const auto large = measure(2000);
  const double ratio = static_cast<double>(large) / static_cast<double>(small);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

}  // namespace
}  // namespace coca::ba
