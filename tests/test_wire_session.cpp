// Session layer of the service runtime: many concurrent agreement
// sessions multiplexed over one daemon connection, with structured (never
// hang, never throw) failure behavior.
//
// Three contracts. Isolation: K=16 sessions interleaving their rounds on
// a single socket each produce results bit-identical to the same case run
// solo in-process (check_isolation-style oracles: transcript, RunStats,
// verdict). Idle timeout: a session that goes quiet past the daemon's
// idle clock is killed with a structured kError and a subsequent run
// resolves to TimedOut outcomes. Disconnect: a connection the daemon
// hard-drops mid-session ends the run with transport_failed and
// per-party PartyOutcomes -- no hang, no uncaught exception.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "adversary/fuzzer.h"
#include "svc/client.h"
#include "svc/server.h"

namespace coca {
namespace {

std::string unique_uds_path(const char* tag) {
  return "/tmp/coca-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(WireSession, SixteenInterleavedSessionsMatchSoloRuns) {
  const std::string path = unique_uds_path("interleave");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    const auto client = svc::WireClient::connect_uds_path(path);

    constexpr std::size_t kSessions = 16;
    const char* protocols[] = {"BAPlus", "PiZ", "FixedLengthCA",
                               "FindPrefix"};
    std::vector<adv::FuzzCase> cases;
    for (std::size_t i = 0; i < kSessions; ++i) {
      adv::FuzzCase c;
      c.protocol = protocols[i % std::size(protocols)];
      c.n = 4;
      c.t = 1;
      c.ell = 16;
      c.input_seed = 0x5E55 + i;
      c.threads = 1;
      cases.push_back(std::move(c));
    }

    // Solo baselines, plain in-process.
    std::vector<net::Transcript> solo_tr(kSessions);
    std::vector<adv::FuzzOutcome> solo(kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      solo[i] = adv::execute_case(cases[i], &solo_tr[i]);
    }

    // All sessions over ONE connection, one thread per session, so their
    // kMsg/kCommit batches interleave arbitrarily on the socket and in the
    // daemon's per-session round buffers.
    std::vector<std::unique_ptr<svc::WireSession>> sessions;
    for (std::size_t i = 0; i < kSessions; ++i) {
      sessions.push_back(client->open(cases[i].n, cases[i].t));
    }
    std::vector<net::Transcript> wire_tr(kSessions);
    std::vector<adv::FuzzOutcome> wired(kSessions);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kSessions; ++i) {
      threads.emplace_back([&, i] {
        adv::ExecHooks hooks;
        hooks.transcript = &wire_tr[i];
        hooks.router = sessions[i].get();
        wired[i] = adv::execute_case(cases[i], hooks);
      });
    }
    for (std::thread& th : threads) th.join();

    for (std::size_t i = 0; i < kSessions; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "session=" << i << " protocol=" << cases[i].protocol);
      const net::RunStats& a = solo[i].stats;
      const net::RunStats& b = wired[i].stats;
      EXPECT_EQ(a.honest_bytes, b.honest_bytes);
      EXPECT_EQ(a.honest_messages, b.honest_messages);
      EXPECT_EQ(a.rounds, b.rounds);
      EXPECT_EQ(a.phase_breakdown, b.phase_breakdown);
      EXPECT_EQ(solo[i].verdict.violations, wired[i].verdict.violations);
      EXPECT_EQ(solo[i].terminated, wired[i].terminated);
      EXPECT_TRUE(solo_tr[i] == wire_tr[i])
          << "interleaved session diverged from its solo run";
    }
    EXPECT_EQ(daemon.stats().sessions_opened.load(), kSessions);
  }
  daemon.stop();
  ::unlink(path.c_str());
}

TEST(WireSession, IdleSessionKilledWithStructuredError) {
  const std::string path = unique_uds_path("idle");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  dopt.idle_timeout_ms = 100;
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    svc::ClientOptions copt;
    copt.round_timeout_ms = 5'000;  // the daemon kills us long before this
    const auto client = svc::WireClient::connect_uds_path(path, copt);
    const auto session = client->open(4, 1);

    // Go quiet past the idle clock; the daemon's sweep sends kError.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // A run over the killed session must resolve structurally: router
    // returns nullopt, the engine marks parties TimedOut, nothing throws.
    net::SyncNetwork net(4, 1);
    net.set_round_router(session.get());
    for (int id = 0; id < 4; ++id) {
      net.set_honest(id, [](net::PartyContext& ctx) {
        for (int r = 0; r < 100; ++r) {
          ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
          ctx.advance();
        }
      });
    }
    const net::RunReport rep = net.run_report();
    EXPECT_TRUE(rep.transport_failed);
    EXPECT_TRUE(rep.timed_out);
    EXPECT_NE(rep.transport_error.find("idle"), std::string::npos)
        << "reason: " << rep.transport_error;
    ASSERT_EQ(rep.outcomes.size(), 4u);
    for (const net::PartyOutcome& o : rep.outcomes) {
      EXPECT_EQ(o.outcome, net::Outcome::kTimedOut);
    }
    EXPECT_GE(daemon.stats().sessions_idle_killed.load(), 1u);
  }
  daemon.stop();
  ::unlink(path.c_str());
}

TEST(WireSession, MidSessionDisconnectResolvesStructurally) {
  const std::string path = unique_uds_path("drop");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  dopt.drop_connection_after_rounds = 3;  // hard-close, no goodbye frames
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    const auto client = svc::WireClient::connect_uds_path(path);
    const auto session = client->open(4, 1);
    net::SyncNetwork net(4, 1);
    net.set_round_router(session.get());
    for (int id = 0; id < 4; ++id) {
      net.set_honest(id, [](net::PartyContext& ctx) {
        for (int r = 0; r < 100; ++r) {
          ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
          ctx.advance();
        }
      });
    }
    const net::RunReport rep = net.run_report();
    EXPECT_TRUE(rep.transport_failed);
    EXPECT_TRUE(rep.timed_out);
    // The wire carried exactly the rounds before the drop.
    EXPECT_LE(rep.stats.rounds, 4u);
    ASSERT_EQ(rep.outcomes.size(), 4u);
    for (const net::PartyOutcome& o : rep.outcomes) {
      EXPECT_EQ(o.outcome, net::Outcome::kTimedOut);
    }
    EXPECT_TRUE(client->disconnected());
  }
  daemon.stop();
  ::unlink(path.c_str());
}

TEST(WireSession, StrictRunThrowsWithTransportReason) {
  const std::string path = unique_uds_path("strict");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  dopt.drop_connection_after_rounds = 2;
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    const auto client = svc::WireClient::connect_uds_path(path);
    const auto session = client->open(4, 1);
    net::SyncNetwork net(4, 1);
    net.set_round_router(session.get());
    for (int id = 0; id < 4; ++id) {
      net.set_honest(id, [](net::PartyContext& ctx) {
        for (int r = 0; r < 100; ++r) {
          ctx.send_all(Bytes{static_cast<std::uint8_t>(r)});
          ctx.advance();
        }
      });
    }
    EXPECT_THROW(net.run(), Error);
  }
  daemon.stop();
  ::unlink(path.c_str());
}

TEST(WireSession, TcpLoopbackCarriesSessionsToo) {
  svc::DaemonOptions dopt;
  dopt.tcp = true;  // ephemeral port
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    const auto client = svc::WireClient::connect_tcp(daemon.tcp_port());
    const auto session = client->open(4, 1);
    adv::FuzzCase c;
    c.protocol = "BAPlus";
    c.n = 4;
    c.t = 1;
    c.ell = 16;
    c.input_seed = 42;
    c.threads = 1;
    net::Transcript solo_tr;
    const adv::FuzzOutcome solo = adv::execute_case(c, &solo_tr);
    net::Transcript wire_tr;
    adv::ExecHooks hooks;
    hooks.transcript = &wire_tr;
    hooks.router = session.get();
    const adv::FuzzOutcome wired = adv::execute_case(c, hooks);
    EXPECT_EQ(solo.stats.honest_bytes, wired.stats.honest_bytes);
    EXPECT_EQ(solo.stats.rounds, wired.stats.rounds);
    EXPECT_TRUE(solo_tr == wire_tr);
  }
  daemon.stop();
}

TEST(WireSession, OpenRefusedOnBadShape) {
  const std::string path = unique_uds_path("badopen");
  svc::DaemonOptions dopt;
  dopt.uds_path = path;
  svc::Daemon daemon(dopt);
  daemon.start();
  {
    const auto client = svc::WireClient::connect_uds_path(path);
    EXPECT_THROW(client->open(0, 0), Error);    // n out of range
    EXPECT_THROW(client->open(4, 4), Error);    // t >= n
    const auto ok = client->open(4, 1);         // connection still usable
    EXPECT_NE(ok, nullptr);
  }
  daemon.stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace coca
