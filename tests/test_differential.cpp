// Differential property tests: the from-scratch substrates cross-checked
// against native 64-bit arithmetic on random inputs, plus a large-scale
// whole-stack smoke test.
#include <gtest/gtest.h>

#include "ca/driver.h"
#include "tests/support.h"
#include "util/bignat.h"
#include "util/rng.h"

namespace coca {
namespace {

TEST(Differential, BigNatArithmeticMatchesU64) {
  Rng rng(2026);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::uint64_t a = rng.below(1ull << 31);
    const std::uint64_t b = rng.below(1ull << 31);
    const BigNat A(a), B(b);
    EXPECT_EQ((A + B).to_u64(), a + b);
    EXPECT_EQ((A * B).to_u64(), a * b);
    if (a >= b) {
      EXPECT_EQ((A - B).to_u64(), a - b);
    }
    EXPECT_EQ(A < B, a < b);
    EXPECT_EQ(A == B, a == b);
    const std::size_t sh = rng.below(20);
    EXPECT_EQ((A << sh).to_u64(), a << sh);
    EXPECT_EQ((A >> sh).to_u64(), a >> sh);
    std::uint32_t rem = 0;
    const std::uint32_t div = 1 + static_cast<std::uint32_t>(rng.below(1000));
    EXPECT_EQ(A.div_u32(div, rem).to_u64(), a / div);
    EXPECT_EQ(rem, a % div);
  }
}

TEST(Differential, BigNatDecimalMatchesU64) {
  Rng rng(2027);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t a = rng.next_u64();
    EXPECT_EQ(BigNat(a).to_decimal(), std::to_string(a));
    EXPECT_EQ(BigNat::from_decimal(std::to_string(a)).to_u64(), a);
  }
}

TEST(Differential, BigIntArithmeticMatchesI64) {
  Rng rng(2028);
  for (int iter = 0; iter < 3000; ++iter) {
    const std::int64_t a =
        static_cast<std::int64_t>(rng.below(1ull << 40)) - (1ll << 39);
    const std::int64_t b =
        static_cast<std::int64_t>(rng.below(1ull << 40)) - (1ll << 39);
    const BigInt A(a), B(b);
    EXPECT_EQ(A + B, BigInt(a + b));
    EXPECT_EQ(A - B, BigInt(a - b));
    EXPECT_EQ(-A, BigInt(-a));
    EXPECT_EQ(A < B, a < b);
    EXPECT_EQ(A == B, a == b);
    EXPECT_EQ(A.to_decimal(), std::to_string(a));
  }
}

TEST(Differential, BitstringOpsMatchU64Bits) {
  Rng rng(2029);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t width = 1 + rng.below(64);
    const std::uint64_t a =
        width == 64 ? rng.next_u64() : rng.below(1ull << width);
    const Bitstring A = Bitstring::from_u64(a, width);
    // Bit access vs shifts.
    const std::size_t i = rng.below(width);
    EXPECT_EQ(A.bit(i), ((a >> (width - 1 - i)) & 1) == 1);
    // Prefix as numeric truncation.
    const std::size_t p = rng.below(width + 1);
    if (p > 0 && width - p < 64) {
      EXPECT_EQ(A.prefix(p).to_u64(), a >> (width - p));
    }
    // MIN/MAX fill as OR with low bits.
    if (p < width) {
      const std::uint64_t ones_tail = (width - p) >= 64
                                          ? ~std::uint64_t{0}
                                          : (1ull << (width - p)) - 1;
      EXPECT_EQ(Bitstring::max_fill(A.prefix(p), width).to_u64(),
                (a & ~ones_tail) | ones_tail);
      EXPECT_EQ(Bitstring::min_fill(A.prefix(p), width).to_u64(),
                a & ~ones_tail);
    }
    // Round trip through BigNat.
    EXPECT_EQ(BigNat::from_bits(A).to_u64(), a);
    EXPECT_EQ(BigNat(a).to_bits(width), A);
  }
}

TEST(Differential, CommonPrefixMatchesXorClz) {
  Rng rng(2030);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::size_t expected =
        a == b ? 64
               : static_cast<std::size_t>(__builtin_clzll(a ^ b));
    EXPECT_EQ(Bitstring::common_prefix_len(Bitstring::from_u64(a, 64),
                                           Bitstring::from_u64(b, 64)),
              expected);
  }
}

TEST(Differential, LargeScaleSmoke) {
  // One big run: n = 31, t = 10, mixed adversaries, 4096-bit magnitudes.
  const ca::ConvexAgreement proto;
  ca::SimConfig cfg;
  cfg.n = 31;
  cfg.t = 10;
  Rng rng(31);
  for (int i = 0; i < 31; ++i) {
    cfg.inputs.emplace_back(BigNat::pow2(4095) + rng.nat_below_pow2(4094),
                            false);
  }
  const adv::Kind kinds[] = {adv::Kind::kSplitBrain, adv::Kind::kReplay,
                             adv::Kind::kSpam, adv::Kind::kGarbage,
                             adv::Kind::kExtremeHigh};
  for (int i = 0; i < 10; ++i) {
    cfg.corruptions.push_back({3 * i + 1, kinds[i % 5]});
  }
  const ca::SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(test::InvariantOracle::convex_agreement(r, cfg.inputs));
}

}  // namespace
}  // namespace coca
