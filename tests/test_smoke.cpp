// End-to-end smoke tests: the full Pi_Z stack on small configurations.
// (The heavy property sweeps live in test_properties.cpp.)
#include <gtest/gtest.h>

#include "ca/broadcast_ca.h"
#include "ca/driver.h"

namespace coca::ca {
namespace {

TEST(Smoke, FourPartiesNoAdversary) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(10), BigInt(12), BigInt(11), BigInt(13)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(Smoke, FourPartiesOneSilentByzantine) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(100), BigInt(105), BigInt(101), BigInt(0)};
  cfg.corruptions = {{3, adv::Kind::kSilent}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(Smoke, NegativeInputs) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(-50), BigInt(-48), BigInt(-52), BigInt(-49)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
  EXPECT_TRUE(r.outputs[0]->negative());
}

TEST(Smoke, MixedSignsWithGarbageAdversary) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  cfg.inputs = {BigInt(-3), BigInt(5),  BigInt(2), BigInt(-1),
                BigInt(4),  BigInt(0), BigInt(0)};
  cfg.corruptions = {{5, adv::Kind::kGarbage}, {6, adv::Kind::kSplitBrain}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(Smoke, LargeMagnitudes) {
  const ConvexAgreement proto;
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  const BigInt base = BigInt::from_decimal("123456789012345678901234567890");
  cfg.inputs = {base, base + BigInt(7), base + BigInt(3), base + BigInt(1)};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(Smoke, BroadcastBaselineWorks) {
  const DefaultBAStack stack;
  const BroadcastTrimCA proto(stack.kit());
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(10), BigInt(12), BigInt(11), BigInt(-99)};
  cfg.corruptions = {{3, adv::Kind::kExtremeHigh}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

TEST(Smoke, HighCostBaselineWorks) {
  const DefaultBAStack stack;
  const HighCostCAProtocol proto(stack.kit());
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.inputs = {BigInt(10), BigInt(12), BigInt(11), BigInt(0)};
  cfg.corruptions = {{3, adv::Kind::kReplay}};
  const SimResult r = run_simulation(proto, cfg);
  EXPECT_TRUE(r.agreement());
  EXPECT_TRUE(r.convex_validity(cfg.inputs));
}

}  // namespace
}  // namespace coca::ca
