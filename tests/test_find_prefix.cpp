// FindPrefix / FindPrefixBlocks (Lemmas 1 and 4): the agreed PREFIX*
// prefixes every returned v, values stay inside the honest range, and the
// divergence witnesses v_bot satisfy property (ii).
#include "ca/find_prefix.h"

#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "tests/support.h"
#include "util/rng.h"

namespace coca::ca {
namespace {

using test::max_t;
using test::run_parties;

struct Fixture {
  ba::PhaseKingBinary bin;
  ba::TurpinCoan tc{bin};
  ba::BAKit kit{&bin, &tc};
  ba::LongBAPlus lba{kit};
};

Bitstring in_range_value(Rng& rng, std::uint64_t lo, std::uint64_t hi,
                         std::size_t ell) {
  return Bitstring::from_u64(lo + rng.below(hi - lo + 1), ell);
}

// Checks Lemma 1's postconditions for honest parties with inputs `inputs`.
void check_lemma(const std::vector<std::optional<FindPrefixResult>>& outputs,
                 const std::vector<Bitstring>& inputs, std::size_t ell,
                 std::size_t unit, int t) {
  // Same prefix everywhere; whole number of units.
  const FindPrefixResult* first = nullptr;
  for (const auto& out : outputs) {
    if (!out) continue;
    if (!first) first = &*out;
    ASSERT_EQ(out->prefix, first->prefix);
    EXPECT_EQ(out->prefix.size() % unit, 0u);
    // (i) v extends the prefix and stays in the honest range.
    EXPECT_TRUE(out->v.has_prefix(out->prefix));
    EXPECT_EQ(out->v.size(), ell);
    EXPECT_EQ(out->v_bot.size(), ell);
  }
  ASSERT_NE(first, nullptr);

  // Range check: v and v_bot within [min input, max input].
  const Bitstring* lo = nullptr;
  const Bitstring* hi = nullptr;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;
    const Bitstring& in = inputs[id];
    if (!lo || Bitstring::numeric_compare(in, *lo) ==
                   std::strong_ordering::less) {
      lo = &in;
    }
    if (!hi || Bitstring::numeric_compare(in, *hi) ==
                   std::strong_ordering::greater) {
      hi = &in;
    }
  }
  for (const auto& out : outputs) {
    if (!out) continue;
    for (const Bitstring* v : {&out->v, &out->v_bot}) {
      EXPECT_NE(Bitstring::numeric_compare(*v, *lo),
                std::strong_ordering::less);
      EXPECT_NE(Bitstring::numeric_compare(*v, *hi),
                std::strong_ordering::greater);
    }
  }

  // (ii) If the prefix is partial, check the witness property for both
  // one-unit extensions of PREFIX*: t+1 honest v_bot diverge from each.
  if (first->prefix.size() < ell) {
    for (const bool bit : {false, true}) {
      // Build an arbitrary (unit)-extension whose first bit is `bit`.
      Bitstring ext = first->prefix;
      ext.push_back(bit);
      ext = Bitstring::min_fill(ext, first->prefix.size() + unit);
      int diverging = 0;
      for (const auto& out : outputs) {
        if (out && !out->v_bot.has_prefix(ext)) ++diverging;
      }
      EXPECT_GE(diverging, t + 1)
          << "extension " << ext.to_string() << " lacks witnesses";
    }
  }
}

class FindPrefixSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, int>> {};

TEST_P(FindPrefixSweep, LemmaOnePostconditions) {
  const auto [n, ell, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + n + ell);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(in_range_value(rng, 900, 1100, ell));
  }
  auto run = run_parties<FindPrefixResult>(
      n, t, [&](net::PartyContext& ctx, int id) {
        return find_prefix(ctx, f.lba, ell,
                           inputs[static_cast<std::size_t>(id)]);
      });
  check_lemma(run.outputs, inputs, ell, 1, t);
}

TEST_P(FindPrefixSweep, LemmaOneUnderAdversary) {
  const auto [n, ell, seed] = GetParam();
  const int t = max_t(n);
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(seed) * 77 + n + ell);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(in_range_value(rng, 500, 40000, ell));
  }
  std::set<int> byz;
  for (int i = 0; i < t; ++i) byz.insert(n - 1 - i);
  auto run = run_parties<FindPrefixResult>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return find_prefix(ctx, f.lba, ell,
                           inputs[static_cast<std::size_t>(id)]);
      },
      byz,
      [&](int id) -> std::shared_ptr<net::ByzantineStrategy> {
        return id % 2 ? std::static_pointer_cast<net::ByzantineStrategy>(
                            std::make_shared<adv::Replay>())
                      : std::make_shared<adv::Garbage>();
      });
  check_lemma(run.outputs, inputs, ell, 1, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FindPrefixSweep,
    ::testing::Combine(::testing::Values(4, 7, 10),
                       ::testing::Values(std::size_t{16}, std::size_t{64}),
                       ::testing::Values(1, 2)));

TEST(FindPrefix, IdenticalInputsYieldFullPrefix) {
  const int n = 7;
  Fixture f;
  const Bitstring v = Bitstring::from_u64(12345, 20);
  auto run = run_parties<FindPrefixResult>(
      n, 2, [&](net::PartyContext& ctx, int) {
        return find_prefix(ctx, f.lba, 20, v);
      });
  for (const auto& out : run.outputs) {
    EXPECT_EQ(out->prefix, v);  // Pi_lBA+ never returns bottom here
    EXPECT_EQ(out->v, v);
  }
}

TEST(FindPrefix, PrefixAtLeastCommonPrefixOfHonestInputs) {
  // Lemma 1 discussion: PREFIX* is at least as long as the honest inputs'
  // longest common prefix (byzantine parties cannot shorten it).
  const int n = 7;
  const int t = 2;
  Fixture f;
  const std::size_t ell = 32;
  // Honest inputs share the top 20 bits.
  std::vector<Bitstring> inputs;
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    Bitstring v = Bitstring::from_u64(0xABCDE, 20);
    v.append(rng.bits(12));
    inputs.push_back(v);
  }
  auto run = run_parties<FindPrefixResult>(
      n, t,
      [&](net::PartyContext& ctx, int id) {
        return find_prefix(ctx, f.lba, ell,
                           inputs[static_cast<std::size_t>(id)]);
      },
      {5, 6}, [](int) { return std::make_shared<adv::Replay>(); });
  std::size_t lcp = ell;
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      lcp = std::min(lcp, Bitstring::common_prefix_len(
                              inputs[static_cast<std::size_t>(a)],
                              inputs[static_cast<std::size_t>(b)]));
    }
  }
  for (const auto& out : run.outputs) {
    if (out) {
      EXPECT_GE(out->prefix.size(), lcp);
    }
  }
}

class FindPrefixBlocksSweep : public ::testing::TestWithParam<int> {};

TEST_P(FindPrefixBlocksSweep, LemmaFourPostconditions) {
  const int n = GetParam();
  const int t = max_t(n);
  Fixture f;
  const std::size_t num_blocks = static_cast<std::size_t>(n) * n;
  const std::size_t unit = 8;
  const std::size_t ell = num_blocks * unit;
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<Bitstring> inputs;
  // Values agreeing on a long prefix, diverging in the tail blocks.
  const Bitstring head = rng.bits(ell - 24);
  for (int i = 0; i < n; ++i) {
    Bitstring v = head;
    v.append(rng.bits(24));
    inputs.push_back(v);
  }
  auto run = run_parties<FindPrefixResult>(
      n, t, [&](net::PartyContext& ctx, int id) {
        return find_prefix_blocks(ctx, f.lba, ell, num_blocks,
                                  inputs[static_cast<std::size_t>(id)]);
      });
  check_lemma(run.outputs, inputs, ell, unit, t);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FindPrefixBlocksSweep,
                         ::testing::Values(4, 7));

TEST(FindPrefixBlocks, IterationCountLogInBlocks) {
  // O(log n^2) Pi_lBA+ iterations, visible through the round count being
  // far below the bit-search equivalent for the same ell.
  const int n = 4;
  const int t = 1;
  Fixture f;
  const std::size_t ell = 4096;  // n^2 = 16 blocks of 256 bits
  Rng rng(9);
  const Bitstring shared_head = rng.bits(ell - 8);
  const auto run_variant = [&](bool blocks) {
    std::vector<Bitstring> inputs;
    Rng tail_rng(10);
    for (int i = 0; i < n; ++i) {
      Bitstring v = shared_head;
      v.append(tail_rng.bits(8));
      inputs.push_back(v);
    }
    return run_parties<FindPrefixResult>(
        n, t, [&](net::PartyContext& ctx, int id) {
          return blocks ? find_prefix_blocks(
                              ctx, f.lba, ell, 16,
                              inputs[static_cast<std::size_t>(id)])
                        : find_prefix(ctx, f.lba, ell,
                                      inputs[static_cast<std::size_t>(id)]);
        });
  };
  const auto block_run = run_variant(true);
  const auto bit_run = run_variant(false);
  EXPECT_LT(block_run.stats.rounds, bit_run.stats.rounds);
}

}  // namespace
}  // namespace coca::ca
