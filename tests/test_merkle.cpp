// Merkle accumulator tests: MT.BUILD / MT.VERIFY semantics from Section 7.
#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace coca::crypto {
namespace {

std::vector<Bytes> make_leaves(std::size_t count, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<Bytes> leaves;
  leaves.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    leaves.push_back(rng.bytes(1 + rng.below(64)));
  }
  return leaves;
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree t = MerkleTree::build(leaves);
  const auto w = t.witness(0);
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(MerkleTree::verify(t.root(), 1, 0, leaves[0], w));
}

TEST(Merkle, AllWitnessesVerifyAcrossSizes) {
  for (std::size_t count : {2u, 3u, 4u, 5u, 7u, 8u, 13u, 31u, 64u}) {
    const auto leaves = make_leaves(count, count);
    const MerkleTree t = MerkleTree::build(leaves);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(
          MerkleTree::verify(t.root(), count, i, leaves[i], t.witness(i)))
          << "count=" << count << " i=" << i;
    }
  }
}

TEST(Merkle, WrongLeafRejected) {
  const auto leaves = make_leaves(7);
  const MerkleTree t = MerkleTree::build(leaves);
  Bytes tampered = leaves[3];
  tampered[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(t.root(), 7, 3, tampered, t.witness(3)));
}

TEST(Merkle, WrongIndexRejected) {
  const auto leaves = make_leaves(8);
  const MerkleTree t = MerkleTree::build(leaves);
  // A valid (leaf, witness) pair presented under a different index fails:
  // the index determines left/right hashing order along the path.
  EXPECT_FALSE(MerkleTree::verify(t.root(), 8, 2, leaves[3], t.witness(3)));
  EXPECT_FALSE(MerkleTree::verify(t.root(), 8, 9, leaves[3], t.witness(3)));
}

TEST(Merkle, WrongRootRejected) {
  const auto leaves = make_leaves(5);
  const MerkleTree t = MerkleTree::build(leaves);
  Digest bad = t.root();
  bad[31] ^= 0x80;
  EXPECT_FALSE(MerkleTree::verify(bad, 5, 0, leaves[0], t.witness(0)));
}

TEST(Merkle, TruncatedWitnessRejected) {
  const auto leaves = make_leaves(8);
  const MerkleTree t = MerkleTree::build(leaves);
  auto w = t.witness(4);
  w.pop_back();
  EXPECT_FALSE(MerkleTree::verify(t.root(), 8, 4, leaves[4], w));
  w = t.witness(4);
  w.push_back(Digest{});
  EXPECT_FALSE(MerkleTree::verify(t.root(), 8, 4, leaves[4], w));
}

TEST(Merkle, DifferentLeafSetsDifferentRoots) {
  auto leaves = make_leaves(6);
  const Digest r1 = MerkleTree::build(leaves).root();
  leaves[5][0] ^= 1;
  EXPECT_NE(MerkleTree::build(leaves).root(), r1);
}

TEST(Merkle, LeafCannotPoseAsInternalNode) {
  // Domain separation: a leaf whose content equals the concatenation of two
  // child hashes must not produce the parent digest.
  const auto leaves = make_leaves(4);
  const MerkleTree t = MerkleTree::build(leaves);
  // Try to verify the two children of the root as a 2-leaf tree's leaf.
  Bytes forged;
  // (Internal digests are not exposed; emulate by rebuilding structure.)
  const Digest l0 = MerkleTree::leaf_hash(leaves[0]);
  const Digest l1 = MerkleTree::leaf_hash(leaves[1]);
  forged.insert(forged.end(), l0.begin(), l0.end());
  forged.insert(forged.end(), l1.begin(), l1.end());
  EXPECT_FALSE(MerkleTree::verify(t.root(), 2, 0, forged, t.witness(0)));
}

TEST(Merkle, DepthFormula) {
  EXPECT_EQ(MerkleTree::depth(1), 0u);
  EXPECT_EQ(MerkleTree::depth(2), 1u);
  EXPECT_EQ(MerkleTree::depth(3), 2u);
  EXPECT_EQ(MerkleTree::depth(4), 2u);
  EXPECT_EQ(MerkleTree::depth(5), 3u);
  EXPECT_EQ(MerkleTree::depth(64), 6u);
  EXPECT_EQ(MerkleTree::depth(65), 7u);
}

TEST(Merkle, BuildRejectsEmpty) {
  EXPECT_THROW(MerkleTree::build({}), Error);
}

TEST(Merkle, VerifyRejectsOutOfRange) {
  const auto leaves = make_leaves(4);
  const MerkleTree t = MerkleTree::build(leaves);
  EXPECT_FALSE(MerkleTree::verify(t.root(), 4, 4, leaves[0], t.witness(0)));
  EXPECT_FALSE(MerkleTree::verify(t.root(), 0, 0, leaves[0], {}));
}

TEST(Merkle, BatchBuildMatchesPerInstanceBuilds) {
  // The cross-instance batch entry point over heterogeneous leaf lists
  // (different leaf counts, sizes, and tree depths -- the shapes different
  // engine instances hand in concurrently). Every tree must match the
  // per-list build_views result: same roots, same witnesses, and both
  // verify interchangeably.
  std::vector<std::vector<Bytes>> instances;
  for (const std::size_t count : {1u, 2u, 5u, 7u, 8u, 33u}) {
    instances.push_back(make_leaves(count, 0x5EED + count));
  }
  std::vector<std::vector<std::span<const std::uint8_t>>> views(
      instances.size());
  std::vector<MerkleTree::LeafList> batch;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const Bytes& leaf : instances[i]) {
      views[i].emplace_back(leaf.data(), leaf.size());
    }
    batch.emplace_back(views[i]);
  }
  const std::vector<MerkleTree> trees = MerkleTree::build_views_batch(batch);
  ASSERT_EQ(trees.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "instance " << i << " leaves="
                                      << instances[i].size());
    const MerkleTree solo = MerkleTree::build_views(batch[i]);
    EXPECT_EQ(trees[i].root(), solo.root());
    EXPECT_EQ(trees[i].leaf_count(), solo.leaf_count());
    for (std::size_t leaf = 0; leaf < instances[i].size(); ++leaf) {
      EXPECT_EQ(trees[i].witness(leaf), solo.witness(leaf));
      EXPECT_TRUE(MerkleTree::verify(trees[i].root(), instances[i].size(),
                                     leaf, instances[i][leaf],
                                     solo.witness(leaf)));
    }
  }
}

TEST(Merkle, BatchBuildEdgeShapes) {
  // Empty batch is a no-op; a batch containing an empty leaf list throws
  // like build_views does.
  EXPECT_TRUE(MerkleTree::build_views_batch({}).empty());
  const std::vector<MerkleTree::LeafList> bad(1);
  EXPECT_THROW(MerkleTree::build_views_batch(bad), Error);
}

}  // namespace
}  // namespace coca::crypto
