// The graceful-degradation campaign as a regression test (tier 2): every
// protocol target, every environment fault kind, charged-party counts
// swept from 0 through t = floor((n-1)/3) and past it.
//
// Contract under test (the tentpole claim of the fault-injection layer):
//   * f <= t  -- every oracle invariant holds over the non-charged
//     parties: environment faults are weaker than the byzantine adversary
//     the paper's theorem already covers;
//   * f >  t  -- the run still ends gracefully with structured per-party
//     outcomes; nothing hangs, nothing escapes as an exception.
#include "adversary/degradation.h"

#include <gtest/gtest.h>

namespace coca::adv {
namespace {

std::string row_label(const DegradationRow& row) {
  return row.protocol + " " + std::string(to_string(row.kind)) +
         " f=" + std::to_string(row.f) +
         (row.violations.empty() ? "" : (": " + row.violations.front()));
}

TEST(Degradation, FullCampaignAtTheBoundary) {
  DegradationConfig cfg;
  cfg.n = 7;  // t = 2: sweeps f = 0, 1, 2 (covered) and 3, 4 (beyond)
  cfg.ell = 16;
  const DegradationReport report = run_degradation_campaign(cfg);
  EXPECT_EQ(report.t, 2);
  // 8 protocols x (1 shuffle row + 4 charging kinds x 4 sizes).
  EXPECT_EQ(report.rows.size(), 8u * 17u);
  for (const DegradationRow& row : report.rows) {
    EXPECT_TRUE(row.graceful) << row_label(row);
    if (row.hold_required) {
      EXPECT_TRUE(row.invariants_held) << row_label(row);
    }
    // Structured outcomes cover every party.
    int parties = 0;
    for (const auto& [name, count] : row.outcome_counts) parties += count;
    EXPECT_EQ(parties, cfg.n) << row_label(row);
  }
  EXPECT_TRUE(report.ok());
}

TEST(Degradation, ShuffleRowsHoldAtEverySize) {
  // Inbox permutation charges nobody, so its cells must hold even in a
  // campaign whose charging cells are pushed past the boundary.
  DegradationConfig cfg;
  cfg.n = 4;
  cfg.ell = 8;
  cfg.f_max = 3;  // n - 1: every charging kind swept to the maximum
  const DegradationReport report = run_degradation_campaign(cfg);
  for (const DegradationRow& row : report.rows) {
    if (row.kind == FaultKind::kShuffle) {
      EXPECT_TRUE(row.invariants_held) << row_label(row);
      EXPECT_FALSE(row.hold_required && !row.invariants_held);
    }
    EXPECT_TRUE(row.graceful) << row_label(row);
  }
  EXPECT_TRUE(report.ok());
}

TEST(Degradation, PlanBuilderMatchesItsContract) {
  const net::FaultPlan crash = degradation_plan(FaultKind::kCrashStop, 2, 7);
  EXPECT_EQ(crash.charged(7), (std::vector<int>{0, 1}));
  const net::FaultPlan part = degradation_plan(FaultKind::kPartition, 3, 7);
  EXPECT_EQ(part.charged(7), (std::vector<int>{0, 1, 2}));
  const net::FaultPlan shuffle = degradation_plan(FaultKind::kShuffle, 0, 7);
  EXPECT_TRUE(shuffle.charged(7).empty());
  EXPECT_THROW(degradation_plan(FaultKind::kPartition, 7, 7), Error);
  EXPECT_THROW(degradation_plan(FaultKind::kCrashStop, 0, 7), Error);
  EXPECT_THROW(degradation_plan(FaultKind::kShuffle, 1, 7), Error);
}

}  // namespace
}  // namespace coca::adv
