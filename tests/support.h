// Shared test helpers: run sub-protocols (BA, prefix search, ...) over a
// SyncNetwork with a chosen corruption pattern and collect honest outputs.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/spec.h"
#include "ca/convex_agreement.h"
#include "ca/driver.h"
#include "net/sync_network.h"

namespace coca::test {

/// Runs `body(ctx, id)` as every honest party; parties in `byzantine` run
/// `strategy_factory(id)` instead. Returns per-honest-party results.
template <class Result>
struct SubRun {
  std::vector<std::optional<Result>> outputs;  // by party id, honest only
  net::RunStats stats;
};

template <class Result>
SubRun<Result> run_parties(
    int n, int t,
    const std::function<Result(net::PartyContext&, int id)>& body,
    const std::set<int>& byzantine = {},
    const std::function<std::shared_ptr<net::ByzantineStrategy>(int id)>&
        strategy_factory = {},
    std::size_t max_rounds = net::SyncNetwork::kDefaultMaxRounds) {
  net::SyncNetwork net(n, t);
  SubRun<Result> run;
  run.outputs.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    if (byzantine.contains(id)) {
      net.set_byzantine(id, strategy_factory
                                ? strategy_factory(id)
                                : std::make_shared<adv::Silent>());
    } else {
      auto* slot = &run.outputs[static_cast<std::size_t>(id)];
      net.set_honest(id, [body, slot, id](net::PartyContext& ctx) {
        *slot = body(ctx, id);
      });
    }
  }
  run.stats = net.run(max_rounds);
  return run;
}

/// The shared invariant oracle: one place that states the paper's proof
/// obligations as checks, used by the fuzz, property, and differential
/// suites (and mirrored on the library side by adv::Fuzzer's oracle, which
/// cannot depend on gtest). Every check returns an AssertionResult so call
/// sites keep precise failure messages.
class InvariantOracle {
 public:
  /// Agreement: all engaged outputs equal; at least one engaged.
  template <class Result>
  static ::testing::AssertionResult agreement(
      const std::vector<std::optional<Result>>& outputs) {
    const Result* first = nullptr;
    int engaged = 0;
    for (const auto& out : outputs) {
      if (!out) continue;
      ++engaged;
      if (first == nullptr) {
        first = &*out;
      } else if (!(*out == *first)) {
        return ::testing::AssertionFailure() << "honest outputs disagree";
      }
    }
    if (engaged == 0) {
      return ::testing::AssertionFailure() << "no honest outputs";
    }
    return ::testing::AssertionSuccess();
  }

  /// Convex validity range check: every engaged output in [lo, hi].
  template <class Result>
  static ::testing::AssertionResult within(
      const std::vector<std::optional<Result>>& outputs, const Result& lo,
      const Result& hi) {
    for (std::size_t id = 0; id < outputs.size(); ++id) {
      const auto& out = outputs[id];
      if (!out) continue;
      if (*out < lo || hi < *out) {
        return ::testing::AssertionFailure()
               << "party " << id << " output escapes [lo, hi]";
      }
    }
    return ::testing::AssertionSuccess();
  }

  /// Agreement + Convex Validity of a whole-protocol CA run, against the
  /// honest inputs actually used.
  static ::testing::AssertionResult convex_agreement(
      const ca::SimResult& result, const std::vector<BigInt>& inputs_by_id) {
    if (!result.agreement()) {
      return ::testing::AssertionFailure() << "agreement violated";
    }
    if (!result.convex_validity(inputs_by_id)) {
      return ::testing::AssertionFailure()
             << "output escapes the honest inputs' convex hull";
    }
    return ::testing::AssertionSuccess();
  }

  /// Honest-bits budget: BITS_l stays under `budget_bits` (byzantine spam
  /// never counts; a blown budget means an honest-side cost regression).
  static ::testing::AssertionResult honest_bits_within(
      const net::RunStats& stats, std::uint64_t budget_bits) {
    if (stats.honest_bits() > budget_bits) {
      return ::testing::AssertionFailure()
             << "honest bits " << stats.honest_bits() << " exceed budget "
             << budget_bits;
    }
    return ::testing::AssertionSuccess();
  }

  /// Span/phase coverage: the leaf-charged phase breakdown accounts for
  /// every honest byte exactly once, and (on honest protocol runs, where
  /// all traffic happens inside named phases) nothing lands in the
  /// "(unattributed)" bucket.
  static ::testing::AssertionResult phase_coverage(
      const net::RunStats& stats, bool allow_unattributed = false) {
    std::uint64_t sum = 0;
    for (const auto& [phase, bytes] : stats.phase_breakdown) sum += bytes;
    if (sum != stats.honest_bytes) {
      return ::testing::AssertionFailure()
             << "phase_breakdown sums to " << sum << " bytes, honest_bytes is "
             << stats.honest_bytes;
    }
    if (!allow_unattributed) {
      const auto it = stats.phase_breakdown.find(net::kUnattributedPhase);
      if (it != stats.phase_breakdown.end() && it->second != 0) {
        return ::testing::AssertionFailure()
               << it->second << " honest bytes charged outside any phase";
      }
    }
    return ::testing::AssertionSuccess();
  }
};

/// All engaged outputs equal; at least one engaged (shorthand the whole
/// suite uses; the oracle above is the single definition).
template <class Result>
::testing::AssertionResult all_agree(
    const std::vector<std::optional<Result>>& outputs) {
  return InvariantOracle::agreement(outputs);
}

/// The default byzantine threshold for a given n: floor((n-1)/3).
inline int max_t(int n) { return (n - 1) / 3; }

}  // namespace coca::test
