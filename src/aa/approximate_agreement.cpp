#include "aa/approximate_agreement.h"

#include <algorithm>
#include <map>

#include "ba/gradecast.h"
#include "crypto/sha256.h"
#include "util/wire.h"

namespace coca::aa {

namespace {

Bytes encode_value(const BigInt& v) {
  Writer w;
  w.u8(v.sign_bit() ? 1 : 0);
  w.bignat(v.magnitude());
  return std::move(w).take();
}

std::optional<BigInt> decode_value(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto sign = r.u8();
  if (!sign || *sign > 1) return std::nullopt;
  auto mag = r.bignat();
  if (!mag || !r.at_end()) return std::nullopt;
  return BigInt(std::move(*mag), *sign == 1);
}

/// Midpoint with truncation toward zero; always within [lo, hi].
BigInt midpoint(const BigInt& lo, const BigInt& hi) {
  const BigInt sum = lo + hi;
  return BigInt(sum.magnitude() >> 1, sum.negative());
}

/// The shared update rule: sort the accepted multiset, trim t per side,
/// take the midpoint of the surviving range.
BigInt trimmed_midpoint(std::vector<BigInt> accepted, int t) {
  std::sort(accepted.begin(), accepted.end());
  ensure(accepted.size() > 2 * static_cast<std::size_t>(t),
         "ApproxAgreement: accepted fewer values than honest parties");
  const BigInt& lo = accepted[static_cast<std::size_t>(t)];
  const BigInt& hi =
      accepted[accepted.size() - 1 - static_cast<std::size_t>(t)];
  return midpoint(lo, hi);
}

}  // namespace

std::size_t iterations_for(const BigNat& diameter, const BigNat& epsilon) {
  require(!epsilon.is_zero(), "iterations_for: epsilon must be positive");
  std::size_t rounds = 0;
  BigNat gap = diameter;
  while (gap > epsilon) {
    gap = (gap + BigNat(1)) >> 1;  // ceiling halving: do not undercount
    ++rounds;
  }
  return rounds;
}

BigInt SyncApproxAgreement::run(net::PartyContext& ctx, const BigInt& input,
                                std::size_t rounds) const {
  const int n = ctx.n();
  const int t = ctx.t();
  auto phase = ctx.phase("ApproxAgreement");
  BigInt value = input;

  for (std::size_t iter = 0; iter < rounds; ++iter) {
    // Round 1: ship the current value to everyone.
    ctx.send_all(encode_value(value));
    // Views, not copies: only digests of these are ever re-shipped.
    std::vector<std::optional<net::Payload>> payload_of(
        static_cast<std::size_t>(n));
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      payload_of[static_cast<std::size_t>(e.from)] = e.payload;
    }

    // Round 2: echo a digest vector -- one (present, H(payload)) slot per
    // sender -- so equivocation is caught without re-shipping values.
    {
      Writer w;
      for (int j = 0; j < n; ++j) {
        const auto& p = payload_of[static_cast<std::size_t>(j)];
        w.u8(p.has_value() ? 1 : 0);
        if (p) {
          const crypto::Digest d = crypto::sha256(*p);
          w.raw(std::span<const std::uint8_t>(d.data(), d.size()));
        }
      }
      ctx.send_all(std::move(w).take());
    }
    // confirmations[j] counts echoers agreeing with *my* payload from j.
    std::vector<int> confirmations(static_cast<std::size_t>(n), 0);
    std::vector<crypto::Digest> my_digest(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      if (payload_of[static_cast<std::size_t>(j)]) {
        my_digest[static_cast<std::size_t>(j)] =
            crypto::sha256(*payload_of[static_cast<std::size_t>(j)]);
      }
    }
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      Reader r(e.payload);
      for (int j = 0; j < n; ++j) {
        const auto present = r.u8();
        if (!present) break;  // malformed echo: stop parsing this sender
        if (*present == 0) continue;
        crypto::Digest d;
        bool ok = true;
        for (auto& byte : d) {
          const auto b = r.u8();
          if (!b) {
            ok = false;
            break;
          }
          byte = *b;
        }
        if (!ok) break;
        if (payload_of[static_cast<std::size_t>(j)] &&
            d == my_digest[static_cast<std::size_t>(j)]) {
          ++confirmations[static_cast<std::size_t>(j)];
        }
      }
    }

    // Accepted multiset: values confirmed by n-t echoers (all honest values
    // qualify; a byzantine equivocator contributes at most one value
    // network-wide, or none).
    std::vector<BigInt> accepted;
    for (int j = 0; j < n; ++j) {
      if (confirmations[static_cast<std::size_t>(j)] < n - t) continue;
      if (auto v = decode_value(*payload_of[static_cast<std::size_t>(j)])) {
        accepted.push_back(std::move(*v));
      }
    }
    value = trimmed_midpoint(std::move(accepted), t);
  }
  return value;
}

BigInt GradecastApproxAgreement::run(net::PartyContext& ctx,
                                     const BigInt& input,
                                     std::size_t rounds) const {
  const int t = ctx.t();
  auto phase = ctx.phase("GradecastAA");
  BigInt value = input;
  for (std::size_t iter = 0; iter < rounds; ++iter) {
    // Everyone gradecasts its value; accept anything with grade >= 1.
    // Gradecast's consistency guarantee gives exactly the multiset shape
    // the halving argument needs: honest leaders' values are accepted by
    // everyone, and a byzantine leader contributes one value network-wide
    // or none (parties may disagree only on inclusion, not on content).
    const auto graded = ba::gradecast_all(ctx, encode_value(value));
    std::vector<BigInt> accepted;
    for (const auto& g : graded) {
      if (g.grade < 1) continue;
      if (auto v = decode_value(*g.value)) accepted.push_back(std::move(*v));
    }
    value = trimmed_midpoint(std::move(accepted), t);
  }
  return value;
}

}  // namespace coca::aa
