// Synchronous Approximate Agreement (AA) -- the related-work primitive the
// paper builds on conceptually (Section 1.1: the honest-range validity
// requirement originates in AA [Dolev-Lynch-Pinter-Stark-Weihl'86]).
//
// Included as a comparison substrate: AA relaxes Agreement to "outputs
// within epsilon" and converges by iterated averaging, with every iteration
// shipping full values to everyone -- exactly the O(l n^2)-per-round pattern
// whose cost the paper's CA protocol avoids. The bench bench_aa measures
// the contrast.
//
// Algorithm (gradecast-flavoured single-hop validation, in the style of the
// simple gradecast-based AA of Ben-Or-Dolev-Hoch):
// each of R publicly known iterations runs two rounds:
//   1. every party sends its current value to all;
//   2. every party echoes a vector of hashes of what it received; a value is
//      *accepted* iff n-t echo vectors confirm it, so an equivocating
//      byzantine sender contributes at most one globally-consistent value
//      (or none), and any two honest parties' accepted multisets differ in
//      at most t entries -- never on honest senders' values.
// The new value is the midpoint of the accepted multiset trimmed by t at
// each end, which (a) stays inside the honest inputs' range (Convex
// Validity) and (b) halves the honest diameter per iteration.
//
// R must be the same at all honest parties (synchronous lock-step); pick
// R >= log2(initial_diameter / epsilon).
#pragma once

#include "net/sync_network.h"
#include "util/bignat.h"

namespace coca::aa {

class SyncApproxAgreement {
 public:
  /// Runs `rounds` halving iterations (2 communication rounds each) and
  /// returns the final value. All honest parties must pass equal `rounds`.
  BigInt run(net::PartyContext& ctx, const BigInt& input,
             std::size_t rounds) const;
};

/// The same iterated halving, but with each exchange validated by a full
/// gradecast (values with grade >= 1 are accepted) -- the literal
/// "simple gradecast based" construction of [6]. Costs 3 rounds and
/// ~3 l n^2 bits per iteration versus hash-echo's 2 rounds and
/// ~l n^2 + kappa n^3 bits; bench_aa contrasts them.
class GradecastApproxAgreement {
 public:
  BigInt run(net::PartyContext& ctx, const BigInt& input,
             std::size_t rounds) const;
};

/// ceil(log2(diameter / epsilon)) iterations guarantee the honest outputs
/// are within epsilon of each other, given an a-priori public bound
/// `diameter` on the honest inputs' spread.
std::size_t iterations_for(const BigNat& diameter, const BigNat& epsilon);

}  // namespace coca::aa
