// Graceful-degradation campaign at the t < n/3 resilience boundary.
//
// The paper proves every protocol correct against up to t byzantine
// corruptions; environment faults (net/fault_plan.h) are strictly weaker
// adversaries, so the same theorem covers any fault plan whose charged
// parties number at most t. This module turns that argument into a
// measured table: for every protocol target and every fault kind it sweeps
// the number of charged parties f from 0 through t and past it, and checks
//
//   f <= t : every invariant of the shared oracle holds over the
//            non-charged parties (agreement, validity, termination, the
//            BITS_l budget) -- the theorem's regime;
//   f >  t : no guarantee survives, but the failure must be *graceful* --
//            the run returns structured per-party outcomes (Decided /
//            TimedOut / Crashed / AbortedWithEvidence) instead of hanging
//            or crashing the process; whether the invariants happened to
//            hold anyway is recorded as data (crash faults are much weaker
//            than byzantine ones, so they often do).
//
// The shuffle kind is the f = 0 baseline: inbox permutation charges
// nobody, so its row must hold at every size -- it doubles as the
// delivery-order-insensitivity check for the whole protocol zoo.
//
// Used by bench/degradation_sweep (the campaign binary behind the
// T-degrade table in EXPERIMENTS.md) and tests/test_degradation.cpp.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "adversary/fuzzer.h"
#include "net/fault_plan.h"

namespace coca::adv {

enum class FaultKind {
  kCrashStop,
  kCrashRecovery,
  kLinkCut,
  kPartition,
  kShuffle,
};

const std::vector<FaultKind>& all_fault_kinds();
std::string_view to_string(FaultKind kind);

/// The deterministic plan a campaign cell uses: `f` charged parties (ids
/// 0..f-1) of the given kind, with staggered early-round windows so the
/// fault lands inside every protocol's active phase. kShuffle ignores `f`
/// and charges nobody. Throws Error on impossible cells (f < 1 for a
/// charging kind, f >= n for a partition).
net::FaultPlan degradation_plan(FaultKind kind, int f, int n);

struct DegradationConfig {
  int n = 7;
  std::size_t ell = 16;
  int threads = 0;             // ExecPolicy for every run
  int f_max = -1;              // highest f swept; -1 = t + 2
  std::vector<std::string> protocols;  // empty = all known targets
  std::uint64_t input_seed = 0xD152'AD3;
};

struct DegradationRow {
  std::string protocol;
  FaultKind kind = FaultKind::kShuffle;
  int f = 0;                    // |charged| of the cell's plan
  bool hold_required = false;   // f <= t: the theorem's regime
  bool invariants_held = false; // oracle verdict over non-charged parties
  bool graceful = false;        // structured outcomes, nothing escaped
  std::size_t rounds = 0;
  std::uint64_t honest_bits = 0;
  std::vector<std::string> violations;          // when !invariants_held
  std::map<std::string, int> outcome_counts;    // Outcome name -> #parties
  /// Where the non-Decided outcomes landed: "<Outcome>@<phase stack>" ->
  /// #parties (phase "(none)" when the party never entered a phase, e.g.
  /// crashed before its first protocol step).
  std::map<std::string, int> outcome_phases;

  /// The cell's pass criterion: graceful always; invariants when required.
  bool passed() const {
    return graceful && (invariants_held || !hold_required);
  }
};

struct DegradationReport {
  DegradationConfig config;
  int t = 0;
  std::vector<DegradationRow> rows;

  bool ok() const;
  std::size_t failures() const;
};

DegradationReport run_degradation_campaign(const DegradationConfig& cfg);

/// The T-degrade table (GitHub-flavoured markdown) for EXPERIMENTS.md.
std::string degradation_markdown(const DegradationReport& report);
/// Machine-readable campaign artifact (schema "coca-degrade-v1").
std::string degradation_json(const DegradationReport& report);

}  // namespace coca::adv
