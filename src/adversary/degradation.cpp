#include "adversary/degradation.h"

#include <algorithm>
#include <sstream>

namespace coca::adv {

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kKinds = {
      FaultKind::kCrashStop, FaultKind::kCrashRecovery, FaultKind::kLinkCut,
      FaultKind::kPartition, FaultKind::kShuffle,
  };
  return kKinds;
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashStop:
      return "crash-stop";
    case FaultKind::kCrashRecovery:
      return "crash-recovery";
    case FaultKind::kLinkCut:
      return "link-cut";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kShuffle:
      return "shuffle";
  }
  return "unknown";
}

net::FaultPlan degradation_plan(FaultKind kind, int f, int n) {
  net::FaultPlan plan;
  if (kind == FaultKind::kShuffle) {
    require(f == 0, "degradation_plan: shuffle charges nobody (f must be 0)");
    plan.shuffles.push_back({/*party=*/-1, /*seed=*/11});
    return plan;
  }
  require(f >= 1 && f < n, "degradation_plan: need 1 <= f < n");
  switch (kind) {
    case FaultKind::kCrashStop:
      // Staggered: party i dies at round 1 + i, so the run sees the
      // network thin out instead of one synchronized blackout.
      for (int i = 0; i < f; ++i) {
        plan.crashes.push_back(
            {i, /*from=*/1 + static_cast<std::size_t>(i), net::kNoRecovery});
      }
      break;
    case FaultKind::kCrashRecovery:
      // Three missed rounds each, staggered the same way.
      for (int i = 0; i < f; ++i) {
        const auto a = 2 + static_cast<std::size_t>(i);
        plan.crashes.push_back({i, a, a + 3});
      }
      break;
    case FaultKind::kLinkCut:
      // Directed send-omission: party i silently loses its link to its
      // successor for the protocol's opening rounds.
      for (int i = 0; i < f; ++i) {
        plan.cuts.push_back({i, (i + 1) % n, /*from=*/1, /*until=*/8});
      }
      break;
    case FaultKind::kPartition:
      // One episode: the charged side is split off for four rounds.
      {
        net::FaultPlan::Partition p;
        for (int i = 0; i < f; ++i) p.side.push_back(i);
        p.from_round = 2;
        p.until_round = 6;
        plan.partitions.push_back(std::move(p));
      }
      break;
    case FaultKind::kShuffle:
      break;  // handled above
  }
  return plan;
}

bool DegradationReport::ok() const { return failures() == 0; }

std::size_t DegradationReport::failures() const {
  std::size_t count = 0;
  for (const DegradationRow& row : rows) {
    if (!row.passed()) ++count;
  }
  return count;
}

namespace {

DegradationRow run_cell(const DegradationConfig& cfg, int t,
                        const std::string& protocol, FaultKind kind, int f) {
  DegradationRow row;
  row.protocol = protocol;
  row.kind = kind;
  row.f = f;
  row.hold_required = f <= t;
  FuzzCase c;
  c.protocol = protocol;
  c.n = cfg.n;
  c.t = t;
  c.ell = cfg.ell;
  c.input_seed = cfg.input_seed;
  c.threads = cfg.threads;
  c.faults = degradation_plan(kind, f, cfg.n);
  try {
    const FuzzOutcome out = execute_case(c);
    row.graceful = true;  // the guarded engine returned structured outcomes
    row.invariants_held = out.verdict.ok();
    row.violations = out.verdict.violations;
    row.rounds = out.stats.rounds;
    row.honest_bits = out.stats.honest_bits();
    for (const net::PartyOutcome& o : out.outcomes) {
      ++row.outcome_counts[net::to_string(o.outcome)];
      if (o.outcome != net::Outcome::kDecided) {
        const std::string phase = o.phase.empty() ? "(none)" : o.phase;
        ++row.outcome_phases[std::string(net::to_string(o.outcome)) + "@" +
                             phase];
      }
    }
  } catch (const std::exception& e) {
    row.graceful = false;
    row.violations = {std::string("escaped: ") + e.what()};
  }
  return row;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (ch == '\n') {
      os << "\\n";
    } else {
      os << ch;
    }
  }
}

}  // namespace

DegradationReport run_degradation_campaign(const DegradationConfig& cfg) {
  require(cfg.n >= 4, "degradation: need n >= 4");
  const int t = (cfg.n - 1) / 3;
  DegradationReport report;
  report.config = cfg;
  report.t = t;
  int f_max = cfg.f_max < 0 ? t + 2 : cfg.f_max;
  f_max = std::min(f_max, cfg.n - 1);
  const std::vector<std::string>& protocols =
      cfg.protocols.empty() ? known_protocols() : cfg.protocols;
  for (const std::string& protocol : protocols) {
    const auto& known = known_protocols();
    require(std::find(known.begin(), known.end(), protocol) != known.end(),
            "degradation: unknown protocol");
    // f = 0 baseline / order-insensitivity: the shuffle charges nobody.
    report.rows.push_back(
        run_cell(cfg, t, protocol, FaultKind::kShuffle, 0));
    for (const FaultKind kind :
         {FaultKind::kCrashStop, FaultKind::kCrashRecovery,
          FaultKind::kLinkCut, FaultKind::kPartition}) {
      for (int f = 1; f <= f_max; ++f) {
        report.rows.push_back(run_cell(cfg, t, protocol, kind, f));
      }
    }
  }
  return report;
}

std::string degradation_markdown(const DegradationReport& report) {
  // One row per (protocol, fault kind), one column per f. Cell legend:
  //   hold    -- f <= t and every invariant held (required)
  //   hold*   -- f > t, no guarantee owed, yet every invariant still held
  //   degrade -- f > t, graceful structured end, some invariant broke
  //   FAIL    -- the cell missed its expectation
  int f_max = 0;
  for (const DegradationRow& row : report.rows) f_max = std::max(f_max, row.f);
  std::ostringstream os;
  os << "| protocol | fault |";
  for (int f = 0; f <= f_max; ++f) {
    os << " f=" << f << (f > report.t ? " (>t)" : "") << " |";
  }
  os << "\n|---|---|";
  for (int f = 0; f <= f_max; ++f) os << "---|";
  os << "\n";
  std::string current_key;
  for (const DegradationRow& row : report.rows) {
    const std::string key = row.protocol + "/" + std::string(to_string(row.kind));
    if (key != current_key) {
      if (!current_key.empty()) os << "\n";
      os << "| " << row.protocol << " | " << to_string(row.kind) << " |";
      // Shuffle rows only have the f = 0 cell; charging kinds start at 1.
      if (row.kind != FaultKind::kShuffle) os << " -- |";
      current_key = key;
    }
    const char* cell = !row.passed()        ? "FAIL"
                       : row.hold_required  ? "hold"
                       : row.invariants_held ? "hold\\*"
                                             : "degrade";
    os << " " << cell << " |";
    if (row.kind == FaultKind::kShuffle) {
      for (int f = 1; f <= f_max; ++f) os << " -- |";
    }
  }
  os << "\n";
  return os.str();
}

std::string degradation_json(const DegradationReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"coca-degrade-v1\",\n";
  os << "  \"n\": " << report.config.n << ",\n";
  os << "  \"t\": " << report.t << ",\n";
  os << "  \"ell\": " << report.config.ell << ",\n";
  os << "  \"input_seed\": " << report.config.input_seed << ",\n";
  os << "  \"failures\": " << report.failures() << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const DegradationRow& row = report.rows[i];
    os << "    {\"protocol\": \"" << row.protocol << "\", \"fault\": \""
       << to_string(row.kind) << "\", \"f\": " << row.f
       << ", \"hold_required\": " << (row.hold_required ? "true" : "false")
       << ", \"invariants_held\": " << (row.invariants_held ? "true" : "false")
       << ", \"graceful\": " << (row.graceful ? "true" : "false")
       << ", \"rounds\": " << row.rounds
       << ", \"honest_bits\": " << row.honest_bits << ", \"outcomes\": {";
    bool first = true;
    for (const auto& [name, count] : row.outcome_counts) {
      os << (first ? "" : ", ") << "\"" << name << "\": " << count;
      first = false;
    }
    os << "}, \"outcome_phases\": {";
    first = true;
    for (const auto& [name, count] : row.outcome_phases) {
      os << (first ? "" : ", ") << "\"";
      json_escape(os, name);
      os << "\": " << count;
      first = false;
    }
    os << "}, \"violations\": [";
    for (std::size_t v = 0; v < row.violations.size(); ++v) {
      os << (v ? ", " : "") << "\"";
      json_escape(os, row.violations[v]);
      os << "\"";
    }
    os << "]}" << (i + 1 < report.rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace coca::adv
