// Scripted byzantine strategies.
//
// The paper's properties are universally quantified over adversaries; these
// strategies are the canonical behaviours the property-test sweeps and the
// adversarial benchmarks (T7) run against. Scripted strategies fabricate
// bytes each round (with a rushing view of honest traffic); the
// protocol-aware corruptions (extreme input, split-brain equivocation) are
// built in `spec.h` from honest protocol code instead.
#pragma once

#include "net/sync_network.h"

namespace coca::adv {

/// Sends nothing, ever (a crashed party).
class Silent final : public net::ByzantineStrategy {
 public:
  void on_round(const net::RoundView&,
                const std::function<void(int, Bytes)>&) override {}
};

/// Sends short random byte strings to everyone each round: exercises every
/// parser's malformed-input paths.
class Garbage final : public net::ByzantineStrategy {
 public:
  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (int to = 0; to < view.n; ++to) {
      send(to, view.rng->bytes(1 + view.rng->below(40)));
    }
  }
};

/// Sends a large random payload to everyone each round: checks that honest
/// communication (the BITS_l metric) is insensitive to byzantine spam, the
/// motivation of the paper's "adversarially chosen communication" remark.
class Spam final : public net::ByzantineStrategy {
 public:
  explicit Spam(std::size_t payload_size = 4096) : size_(payload_size) {}
  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (int to = 0; to < view.n; ++to) send(to, view.rng->bytes(size_));
  }

 private:
  std::size_t size_;
};

/// Replays randomly chosen honest payloads of the current round to every
/// party (a rushing adversary sending plausible-looking protocol messages,
/// possibly different ones to different recipients).
class Replay final : public net::ByzantineStrategy {
 public:
  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    const auto& traffic = *view.honest_traffic;
    if (traffic.empty()) return;
    for (int to = 0; to < view.n; ++to) {
      const auto& pick = traffic[view.rng->below(traffic.size())];
      send(to, pick.payload->to_bytes());
    }
  }
};

/// Echoes back to each sender whatever it sent last round (a "mirror" that
/// fakes participation without state).
class Echo final : public net::ByzantineStrategy {
 public:
  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (const auto& e : *view.inbox) send(e.from, e.payload.to_bytes());
  }
};

/// A seeded chaos strategy: every round, for every recipient, flips a coin
/// among silence / short garbage / long garbage / replayed honest payload /
/// truncated honest payload. The strongest unstructured scripted attack:
/// per-recipient behaviour, rushing replays, and malformed tails in one.
class Chaos final : public net::ByzantineStrategy {
 public:
  explicit Chaos(std::uint64_t seed) : rng_(seed) {}

  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (int to = 0; to < view.n; ++to) {
      switch (rng_.below(5)) {
        case 0:
          break;  // silence
        case 1:
          send(to, rng_.bytes(1 + rng_.below(16)));
          break;
        case 2:
          send(to, rng_.bytes(64 + rng_.below(512)));
          break;
        case 3: {
          const auto& traffic = *view.honest_traffic;
          if (!traffic.empty()) {
            send(to, traffic[rng_.below(traffic.size())].payload->to_bytes());
          }
          break;
        }
        default: {
          const auto& traffic = *view.honest_traffic;
          if (!traffic.empty()) {
            Bytes cut = traffic[rng_.below(traffic.size())].payload->to_bytes();
            cut.resize(rng_.below(cut.size() + 1));
            send(to, std::move(cut));
          }
          break;
        }
      }
    }
  }

 private:
  Rng rng_;
};

/// Sends one constant byte to everyone each round: a focused attack on the
/// bit-valued subprotocols (votes, sign bits, king messages).
class ConstantByte final : public net::ByzantineStrategy {
 public:
  explicit ConstantByte(std::uint8_t value) : value_(value) {}
  void on_round(const net::RoundView& view,
                const std::function<void(int, Bytes)>& send) override {
    for (int to = 0; to < view.n; ++to) send(to, Bytes{value_});
  }

 private:
  std::uint8_t value_;
};

}  // namespace coca::adv
