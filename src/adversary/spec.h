// Adversary taxonomy and installer.
//
// Names the corruption behaviours the tests and benches sweep over and
// installs them into a SyncNetwork. Protocol-aware corruptions (extreme
// inputs, split-brain equivocation) are expressed through caller-provided
// hooks that wrap honest protocol code, keeping this module independent of
// the protocol layer.
#pragma once

#include <iterator>
#include <memory>
#include <string_view>

#include "adversary/strategies.h"

namespace coca::adv {

// When adding a Kind: extend kAllKinds, to_string() and install() below, and
// bump kKindCount -- tests/test_adversary.cpp fails loudly on any mismatch,
// and the property sweep in tests/test_properties.cpp picks it up from
// kAllKinds automatically.
enum class Kind {
  kSilent,       // crashed from the start
  kGarbage,      // random malformed bytes
  kSpam,         // oversized random payloads
  kReplay,       // rushing replay of honest round traffic
  kEcho,         // mirrors received messages back
  kZeroes,       // constant 0x00 byte (attacks bit subprotocols)
  kOnes,         // constant 0x01 byte
  kChaos,        // seeded per-recipient mix of silence/garbage/replays
  kExtremeLow,   // honest protocol, adversarially low input
  kExtremeHigh,  // honest protocol, adversarially high input
  kSplitBrain,   // equivocates: low-input instance to half the parties,
                 // high-input instance to the rest
};

/// Number of enumerators in Kind (== std::size(kAllKinds), test-enforced).
inline constexpr std::size_t kKindCount = 11;

constexpr Kind kAllKinds[] = {
    Kind::kSilent,     Kind::kGarbage,    Kind::kSpam,
    Kind::kReplay,     Kind::kEcho,       Kind::kZeroes,
    Kind::kOnes,       Kind::kChaos,      Kind::kExtremeLow,
    Kind::kExtremeHigh, Kind::kSplitBrain,
};
static_assert(std::size(kAllKinds) == kKindCount);

std::string_view to_string(Kind kind);

/// Honest-protocol closures for protocol-aware corruptions: `low` and
/// `high` run the protocol under test with adversarially chosen inputs.
struct ProtocolHooks {
  net::SyncNetwork::ProtocolFn low;
  net::SyncNetwork::ProtocolFn high;
};

/// Installs corruption `kind` as party `id` of `net`.
void install(net::SyncNetwork& net, int id, Kind kind,
             const ProtocolHooks& hooks);

}  // namespace coca::adv
