// Mutation-based byzantine adversary: honest protocol traffic, corrupted.
//
// The hand-scripted strategies in strategies.h fabricate bytes from thin
// air; the hard cases for the paper's guarantees are *structured*
// deviations -- messages that parse, carry plausible field values, and
// differ per recipient. `Mutator` produces exactly those: it is a
// `net::SendTap` wrapped around an honest protocol instance (see
// `SyncNetwork::set_byzantine_protocol(id, fn, tap)`), applying seeded
// per-message mutation operators to the traffic the honest code stages.
//
// Operators (`MutOp`):
//   kKeep        pass the message through unchanged
//   kBitFlip     flip 1..8 random bits in place
//   kByteSplice  overwrite a random span with random bytes
//   kTruncate    drop a random-length tail
//   kExtend      append random bytes
//   kFieldTweak  rewrite a little-endian integer field (off-by-one, zero,
//                or saturate) at a wire.h-convention boundary
//   kOmit        drop the message (selective omission)
//   kDelay       hold the message back, replay it 1..max_delay rounds later
//   kEquivocate  stage a corrupted copy to a *different* recipient ahead of
//                that recipient's legitimate message (cross-recipient
//                equivocation; first-per-sender delivery makes the earlier,
//                corrupted copy win), then pass the original through
//
// Determinism: all draws come from one Rng seeded by `MutatorConfig::seed`
// and occur in the wrapped protocol's program order, so a (config, seed)
// pair replays bit-for-bit under any ExecPolicy schedule.
//
// Payloads arrive as shared views (one `send_all` buffer backs all n
// recipients). Content operators take ownership via `detach()` -- a
// copy-on-write deep copy when the buffer is shared -- so corrupting one
// recipient's message never leaks into the views the other recipients (or
// the transcript) hold. Passthrough and delay keep the shared view: the
// honest-traffic fraction of a mutated run stays zero-copy.
#pragma once

#include <array>
#include <cstdint>

#include "net/sync_network.h"
#include "util/rng.h"

namespace coca::adv {

enum class MutOp : int {
  kKeep = 0,
  kBitFlip,
  kByteSplice,
  kTruncate,
  kExtend,
  kFieldTweak,
  kOmit,
  kDelay,
  kEquivocate,
};

inline constexpr std::size_t kNumMutOps = 9;

std::string_view to_string(MutOp op);

struct MutatorConfig {
  std::uint64_t seed = 0;
  /// Number of parties in the network (recipient space for equivocation).
  int n = 0;
  /// Relative operator frequencies, indexed by MutOp. All-zero weights act
  /// as pure passthrough. The default keeps most traffic honest so that
  /// runs make protocol progress and mutations strike mid-protocol.
  std::array<std::uint32_t, kNumMutOps> weights = {24, 2, 2, 2, 2, 2, 2, 1, 2};
  /// Longest replay delay, in rounds, for kDelay.
  std::size_t max_delay = 3;

  bool operator==(const MutatorConfig&) const = default;
};

class Mutator final : public net::SendTap {
 public:
  explicit Mutator(MutatorConfig config);

  void on_send(std::size_t round, int to, net::Payload payload,
               const Emit& emit) override;
  void on_round_start(std::size_t round, const Emit& emit) override;

  /// Messages that went through each operator so far (diagnostics/tests).
  const std::array<std::uint64_t, kNumMutOps>& op_counts() const {
    return op_counts_;
  }

 private:
  MutOp pick_op();
  /// Content corruption for kEquivocate copies: any of the in-place
  /// operators (bit flip / splice / truncate / extend / field tweak).
  Bytes corrupt(Bytes payload);
  Bytes apply(MutOp op, Bytes payload);

  MutatorConfig config_;
  Rng rng_;
  std::uint64_t total_weight_ = 0;
  struct Held {
    std::size_t due_round;
    int to;
    net::Payload payload;  // shared view; replay does not copy
  };
  std::vector<Held> held_;
  std::array<std::uint64_t, kNumMutOps> op_counts_{};
};

}  // namespace coca::adv
