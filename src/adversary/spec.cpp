#include "adversary/spec.h"

#include <set>

namespace coca::adv {

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::kSilent:
      return "silent";
    case Kind::kGarbage:
      return "garbage";
    case Kind::kSpam:
      return "spam";
    case Kind::kReplay:
      return "replay";
    case Kind::kEcho:
      return "echo";
    case Kind::kZeroes:
      return "zeroes";
    case Kind::kOnes:
      return "ones";
    case Kind::kChaos:
      return "chaos";
    case Kind::kExtremeLow:
      return "extreme-low";
    case Kind::kExtremeHigh:
      return "extreme-high";
    case Kind::kSplitBrain:
      return "split-brain";
  }
  return "unknown";
}

void install(net::SyncNetwork& net, int id, Kind kind,
             const ProtocolHooks& hooks) {
  switch (kind) {
    case Kind::kSilent: {
      // Unified with the environment fault model: a silent party *is* a
      // degenerate crash-stop at round 0. Installing it as a protocol
      // runner that the FaultPlan kills before its first statement keeps
      // the two "dead party" code paths from drifting (the adv::Silent
      // strategy class remains for tests that script a strategy by hand).
      // The runner needs some protocol body for the role slot; it never
      // executes, sends nothing, and finishes at its first release.
      net.set_byzantine_protocol(
          id, hooks.low ? hooks.low : [](net::PartyContext&) {});
      net::FaultPlan plan = net.fault_plan();
      plan.crashes.push_back({id, /*from_round=*/0, net::kNoRecovery});
      net.set_fault_plan(std::move(plan));
      return;
    }
    case Kind::kGarbage:
      net.set_byzantine(id, std::make_shared<Garbage>());
      return;
    case Kind::kSpam:
      net.set_byzantine(id, std::make_shared<Spam>());
      return;
    case Kind::kReplay:
      net.set_byzantine(id, std::make_shared<Replay>());
      return;
    case Kind::kEcho:
      net.set_byzantine(id, std::make_shared<Echo>());
      return;
    case Kind::kZeroes:
      net.set_byzantine(id, std::make_shared<ConstantByte>(0));
      return;
    case Kind::kOnes:
      net.set_byzantine(id, std::make_shared<ConstantByte>(1));
      return;
    case Kind::kChaos:
      // Chaos keeps its own seeded stream (the fuzz sweeps construct it
      // directly with varied seeds); the installed default derives a stable
      // per-party seed from the scripted-strategy domain.
      net.set_byzantine(id, std::make_shared<Chaos>(Rng::derive_stream_seed(
                                net::kScriptedSeedDomain,
                                0xC4A05000ULL + static_cast<std::uint64_t>(id))));
      return;
    case Kind::kExtremeLow:
      require(static_cast<bool>(hooks.low), "install: low hook required");
      net.set_byzantine_protocol(id, hooks.low);
      return;
    case Kind::kExtremeHigh:
      require(static_cast<bool>(hooks.high), "install: high hook required");
      net.set_byzantine_protocol(id, hooks.high);
      return;
    case Kind::kSplitBrain: {
      require(static_cast<bool>(hooks.low) && static_cast<bool>(hooks.high),
              "install: split-brain needs both hooks");
      std::set<int> half;
      for (int p = 0; p < net.n(); p += 2) half.insert(p);
      net.set_split_brain(id, hooks.low, hooks.high, std::move(half));
      return;
    }
  }
  throw Error("install: unknown adversary kind");
}

}  // namespace coca::adv
