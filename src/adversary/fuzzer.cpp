#include "adversary/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

#include "ba/ba_plus.h"
#include "ba/long_ba_plus.h"
#include "ca/broadcast_ca.h"
#include "ca/convex_agreement.h"
#include "ca/find_prefix.h"
#include "ca/fixed_length_ca.h"
#include "ca/high_cost_ca.h"
#include "ca/pi_n.h"
#include "util/bitstring.h"

namespace coca::adv {

// ---------------------------------------------------------------------------
// Case validation.

void validate_case(const FuzzCase& c) {
  require(c.n >= 4, "FuzzCase: need n >= 4");
  require(c.t >= 1 && 3 * c.t < c.n, "FuzzCase: need 1 <= t < n/3");
  require(c.ell >= 1, "FuzzCase: need ell >= 1");
  // A case with no corrupted parties and no fault plan is a plain honest
  // run: still useful (trace collection, oracle self-checks), so allowed.
  require(c.corrupted.size() <= static_cast<std::size_t>(c.t),
          "FuzzCase: need |corrupted| <= t");
  std::set<int> seen;
  for (const int id : c.corrupted) {
    require(id >= 0 && id < c.n, "FuzzCase: corrupted id out of range");
    require(seen.insert(id).second, "FuzzCase: duplicate corrupted id");
  }
  c.faults.validate(c.n);
  // A party is byzantine or environment-faulted, never both: charging a
  // fault to an already-corrupted party would double-spend the adversary
  // budget the oracle reasons about. Note |charged| itself is NOT capped
  // at t -- pushing past the threshold is what the degradation campaign
  // does; the oracle only promises invariants while the union fits in t.
  for (const int id : c.faults.charged(c.n)) {
    require(!seen.contains(id),
            "FuzzCase: fault charged to a corrupted party");
  }
  require(c.mutation.max_delay >= 1, "FuzzCase: need max_delay >= 1");
  require(c.threads >= 0, "FuzzCase: need threads >= 0");
}

namespace {

// ---------------------------------------------------------------------------
// Budgets.

/// Per-target round/bits caps: generous "smoke budgets" -- a large constant
/// times the paper's cost formula -- so that honest-side regressions and
/// adversarially-induced blowups register as violations while every correct
/// execution passes with an order of magnitude of headroom. Exceeding the
/// round budget aborts the run (termination violation); exceeding the bits
/// budget is recorded after the run.
struct Budget {
  std::size_t rounds;
  std::uint64_t bits;
};

Budget budget_for(const FuzzCase& c) {
  const auto n = static_cast<std::uint64_t>(c.n);
  const std::uint64_t ell = c.ell;
  const std::uint64_t kappa = 256;  // Merkle root / BA value width
  const std::uint64_t lg = ceil_log2(static_cast<std::size_t>(c.n)) + 1;
  const std::uint64_t lg_ell = ceil_log2(c.ell) + 1;
  // One Pi_BA+/Pi_lBA+ instance: O(l n + kappa n^2 log n) bits, O(n) rounds
  // (Phase-King underneath), both times a fat constant.
  const std::uint64_t ba_bits = ell * n + kappa * n * n * lg;
  const std::uint64_t ba_rounds = 400 + 80 * n;
  Budget b{0, 0};
  if (c.protocol == "BAPlus" || c.protocol == "LongBAPlus") {
    b.rounds = ba_rounds;
    b.bits = 256 * ba_bits;
  } else if (c.protocol == "FindPrefix" || c.protocol == "FixedLengthCA") {
    // O(log l) search iterations plus AddLastBit/GetOutput.
    b.rounds = (lg_ell + 4) * ba_rounds;
    b.bits = 256 * (lg_ell + 4) * ba_bits;
  } else if (c.protocol == "PiN" || c.protocol == "PiZ" ||
             c.protocol == "BroadcastTrimCA") {
    // Length agreement (O(log n) bit-BAs) + fixed-length run; Pi_Z adds the
    // sign split, BroadcastTrim runs n sequential broadcast instances.
    const std::uint64_t instances =
        c.protocol == "BroadcastTrimCA" ? n : lg + lg_ell + 6;
    b.rounds = (instances + 4) * ba_rounds + 60 * n;
    b.bits = 256 * (instances + 4) * ba_bits;
  } else if (c.protocol == "HighCostCA") {
    // O(l n^3) bits, O(n) rounds.
    b.rounds = 200 + 60 * n;
    b.bits = 512 * (ell + 64) * n * n * n;
  } else {
    throw Error("Fuzzer: unknown protocol '" + c.protocol + "'");
  }
  return b;
}

std::string classify_failure(const std::string& what) {
  if (what.find("max round count exceeded") != std::string::npos ||
      what.find("round stalled") != std::string::npos) {
    return "termination: " + what;
  }
  return "crash: " + what;
}

// ---------------------------------------------------------------------------
// Execution harness: honest code everywhere, corrupted ids behind a Mutator.

Rng workload_rng(const FuzzCase& c) {
  return Rng::stream(c.input_seed, 0xF00DULL);
}

bool is_corrupted(const FuzzCase& c, int id) {
  return std::find(c.corrupted.begin(), c.corrupted.end(), id) !=
         c.corrupted.end();
}

/// Excluded from the oracle's guarantees: corrupted (byzantine) parties
/// plus the parties the fault plan is charged to. The invariants quantify
/// over everyone else.
bool is_excluded(const FuzzCase& c, int id) {
  if (is_corrupted(c, id)) return true;
  if (c.faults.empty()) return false;
  const std::vector<int> ch = c.faults.charged(c.n);
  return std::binary_search(ch.begin(), ch.end(), id);
}

/// Runs `body(ctx, id)` as every party; corrupted parties run it as a
/// byzantine-protocol instance behind a seeded Mutator tap (their outputs
/// are discarded). `check` sees the honest outputs and may append
/// violations.
template <class Out>
FuzzOutcome run_case(
    const FuzzCase& c, const ExecHooks& hooks,
    const std::function<Out(net::PartyContext&, int)>& body,
    const std::function<void(const std::vector<std::optional<Out>>&,
                             FuzzOutcome&)>& check) {
  const Budget budget = budget_for(c);
  FuzzOutcome out;
  net::SyncNetwork net(c.n, c.t);
  net.set_exec_policy(net::ExecPolicy{c.threads});
  if (!c.faults.empty()) net.set_fault_plan(c.faults);
  if (hooks.transcript != nullptr) net.set_transcript(hooks.transcript);
  if (hooks.tracer != nullptr) net.set_tracer(hooks.tracer);
  if (hooks.observer != nullptr) net.set_round_observer(hooks.observer);
  if (hooks.router != nullptr) net.set_round_router(hooks.router);
  std::vector<std::optional<Out>> outputs(static_cast<std::size_t>(c.n));
  for (int id = 0; id < c.n; ++id) {
    if (is_corrupted(c, id)) {
      MutatorConfig mc = c.mutation;
      mc.n = c.n;
      mc.seed = Rng::derive_stream_seed(c.mutation.seed,
                                        static_cast<std::uint64_t>(id));
      net.set_byzantine_protocol(
          id, [&body, id](net::PartyContext& ctx) { (void)body(ctx, id); },
          std::make_shared<Mutator>(mc));
    } else {
      auto* slot = &outputs[static_cast<std::size_t>(id)];
      net.set_honest(id, [&body, slot, id](net::PartyContext& ctx) {
        *slot = body(ctx, id);
      });
    }
  }
  if (c.faults.empty()) {
    // Legacy strict execution: the first error aborts the whole run. Every
    // fault-free case -- in particular the entire v1 corpus -- keeps this
    // path, so its transcripts and verdicts stay bit-identical.
    try {
      out.stats = net.run(budget.rounds);
      out.terminated = true;
    } catch (const std::exception& e) {
      out.failure = e.what();
      out.verdict.violations.push_back(classify_failure(out.failure));
      return out;
    }
    if (out.stats.honest_bits() > budget.bits) {
      out.verdict.violations.push_back(
          "honest-bits: " + std::to_string(out.stats.honest_bits()) +
          " bits exceed the smoke budget " + std::to_string(budget.bits));
    }
  } else {
    // Guarded execution: the engine survives per-party failures and
    // reports structured outcomes. The oracle charges anything that
    // happens to an excluded party to the adversary budget; a non-excluded
    // party that aborts is a violation, and one that never decides
    // registers below through its empty output slot. A timed-out run with
    // every non-excluded party decided is fine -- frozen crashed runners
    // legitimately keep the network alive until the round cap.
    const net::RunReport report = net.run_report(budget.rounds);
    out.stats = report.stats;
    out.outcomes = report.outcomes;
    out.terminated = !report.timed_out;
    for (int id = 0; id < c.n; ++id) {
      const auto uid = static_cast<std::size_t>(id);
      if (is_excluded(c, id)) {
        outputs[uid].reset();  // excluded outputs are not the oracle's business
        continue;
      }
      if (report.outcomes[uid].outcome == net::Outcome::kAborted) {
        out.verdict.violations.push_back("crash: party " + std::to_string(id) +
                                         ": " + report.outcomes[uid].evidence);
      }
    }
    // BITS_l budget over the non-excluded parties only: charged parties
    // are the adversary's to waste.
    std::uint64_t bits = 0;
    for (int id = 0; id < c.n; ++id) {
      if (!is_excluded(c, id)) {
        bits += out.stats.bytes_by_party[static_cast<std::size_t>(id)] * 8;
      }
    }
    if (bits > budget.bits) {
      out.verdict.violations.push_back(
          "honest-bits: " + std::to_string(bits) +
          " non-excluded bits exceed the smoke budget " +
          std::to_string(budget.bits));
    }
  }
  for (int id = 0; id < c.n; ++id) {
    if (!is_excluded(c, id) && !outputs[static_cast<std::size_t>(id)]) {
      out.verdict.violations.push_back("termination: honest party " +
                                       std::to_string(id) +
                                       " produced no output");
    }
  }
  check(outputs, out);
  return out;
}

/// Agreement over engaged honest outputs (operator== equality).
template <class Out>
void check_agreement(const std::vector<std::optional<Out>>& outputs,
                     FuzzOutcome& out) {
  const Out* first = nullptr;
  for (const auto& o : outputs) {
    if (!o) continue;
    if (first == nullptr) {
      first = &*o;
    } else if (!(*o == *first)) {
      out.verdict.violations.push_back("agreement: honest outputs disagree");
      return;
    }
  }
  if (first == nullptr) {
    out.verdict.violations.push_back("agreement: no honest outputs");
  }
}

/// Convex validity: every engaged output within [min, max] of the
/// non-excluded honest parties' inputs, compared with `less`.
template <class Out, class Less>
void check_hull(const FuzzCase& c, const std::vector<Out>& inputs,
                const std::vector<std::optional<Out>>& outputs, Less less,
                FuzzOutcome& out) {
  const Out* lo = nullptr;
  const Out* hi = nullptr;
  for (int id = 0; id < c.n; ++id) {
    if (is_excluded(c, id)) continue;
    const Out& v = inputs[static_cast<std::size_t>(id)];
    if (lo == nullptr || less(v, *lo)) lo = &v;
    if (hi == nullptr || less(*hi, v)) hi = &v;
  }
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    const auto& o = outputs[id];
    if (!o) continue;
    if (less(*o, *lo) || less(*hi, *o)) {
      out.verdict.violations.push_back(
          "validity: party " + std::to_string(id) +
          " output escapes the honest inputs' convex hull");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Targets. Each builds its workload from the case's input seed, runs the
// honest protocol everywhere, and states that protocol's slice of the
// paper's guarantees.

FuzzOutcome run_pi_z(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::ConvexAgreement proto;
  Rng rng = workload_rng(c);
  std::vector<BigInt> inputs;
  for (int i = 0; i < c.n; ++i) {
    inputs.emplace_back(rng.nat_below_pow2(c.ell), rng.next_bool());
  }
  return run_case<BigInt>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<BigInt>>& outputs, FuzzOutcome& o) {
        check_agreement(outputs, o);
        check_hull(c, inputs, outputs, std::less<BigInt>{}, o);
      });
}

FuzzOutcome run_broadcast_trim(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ca::BroadcastTrimCA proto(stack.kit());
  Rng rng = workload_rng(c);
  std::vector<BigInt> inputs;
  for (int i = 0; i < c.n; ++i) {
    inputs.emplace_back(rng.nat_below_pow2(c.ell), rng.next_bool());
  }
  return run_case<BigInt>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<BigInt>>& outputs, FuzzOutcome& o) {
        check_agreement(outputs, o);
        check_hull(c, inputs, outputs, std::less<BigInt>{}, o);
      });
}

FuzzOutcome run_pi_n(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ca::PiN proto(stack.kit());
  Rng rng = workload_rng(c);
  std::vector<BigNat> inputs;
  for (int i = 0; i < c.n; ++i) inputs.push_back(rng.nat_below_pow2(c.ell));
  return run_case<BigNat>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<BigNat>>& outputs, FuzzOutcome& o) {
        check_agreement(outputs, o);
        check_hull(c, inputs, outputs, std::less<BigNat>{}, o);
      });
}

FuzzOutcome run_high_cost(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::HighCostCA proto;
  Rng rng = workload_rng(c);
  std::vector<BigNat> inputs;
  for (int i = 0; i < c.n; ++i) inputs.push_back(rng.nat_below_pow2(c.ell));
  return run_case<BigNat>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<BigNat>>& outputs, FuzzOutcome& o) {
        check_agreement(outputs, o);
        check_hull(c, inputs, outputs, std::less<BigNat>{}, o);
      });
}

FuzzOutcome run_fixed_length(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ca::FixedLengthCA proto(stack.kit());
  Rng rng = workload_rng(c);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < c.n; ++i) inputs.push_back(rng.bits(c.ell));
  const auto num_less = [](const Bitstring& a, const Bitstring& b) {
    return Bitstring::numeric_compare(a, b) < 0;
  };
  return run_case<Bitstring>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, c.ell, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<Bitstring>>& outputs,
          FuzzOutcome& o) {
        check_agreement(outputs, o);
        for (std::size_t id = 0; id < outputs.size(); ++id) {
          if (outputs[id] && outputs[id]->size() != c.ell) {
            o.verdict.violations.push_back(
                "validity: party " + std::to_string(id) +
                " output is not an ell-bit value");
            return;  // numeric_compare below needs equal lengths
          }
        }
        check_hull(c, inputs, outputs, num_less, o);
      });
}

FuzzOutcome run_find_prefix(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ba::LongBAPlus lba(stack.kit());
  Rng rng = workload_rng(c);
  std::vector<Bitstring> inputs;
  for (int i = 0; i < c.n; ++i) inputs.push_back(rng.bits(c.ell));
  return run_case<ca::FindPrefixResult>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return ca::find_prefix(ctx, lba, c.ell,
                               inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<ca::FindPrefixResult>>& outputs,
          FuzzOutcome& o) {
        // Lemma 1: all honest parties agree on PREFIX*; each holds an
        // ell-bit v extending it and an ell-bit witness v_bot; both lie in
        // the honest inputs' numeric range.
        const Bitstring* prefix = nullptr;
        for (const auto& res : outputs) {
          if (!res) continue;
          if (prefix == nullptr) {
            prefix = &res->prefix;
          } else if (!(res->prefix == *prefix)) {
            o.verdict.violations.push_back(
                "agreement: honest parties disagree on PREFIX*");
            return;
          }
        }
        if (prefix == nullptr) {
          o.verdict.violations.push_back("agreement: no honest outputs");
          return;
        }
        const Bitstring* lo = nullptr;
        const Bitstring* hi = nullptr;
        for (int id = 0; id < c.n; ++id) {
          if (is_excluded(c, id)) continue;
          const Bitstring& v = inputs[static_cast<std::size_t>(id)];
          if (lo == nullptr || Bitstring::numeric_compare(v, *lo) < 0) lo = &v;
          if (hi == nullptr || Bitstring::numeric_compare(*hi, v) < 0) hi = &v;
        }
        for (std::size_t id = 0; id < outputs.size(); ++id) {
          const auto& res = outputs[id];
          if (!res) continue;
          if (res->v.size() != c.ell || res->v_bot.size() != c.ell) {
            o.verdict.violations.push_back(
                "validity: party " + std::to_string(id) +
                " holds a non-ell-bit v / v_bot");
            return;
          }
          if (!res->v.has_prefix(*prefix)) {
            o.verdict.violations.push_back(
                "validity: party " + std::to_string(id) +
                " holds v that does not extend PREFIX*");
          }
          for (const Bitstring* w : {&res->v, &res->v_bot}) {
            if (Bitstring::numeric_compare(*w, *lo) < 0 ||
                Bitstring::numeric_compare(*hi, *w) < 0) {
              o.verdict.violations.push_back(
                  "validity: party " + std::to_string(id) +
                  " holds v / v_bot outside the honest inputs' range");
              return;
            }
          }
        }
      });
}

/// BA+ workloads need collisions for the Bounded Pre-Agreement cases to be
/// reachable: parties draw from a two-value pool, and one case in three is
/// fully pre-agreed.
std::vector<Bytes> ba_inputs(const FuzzCase& c, std::size_t value_len) {
  Rng rng = workload_rng(c);
  const Bytes a = rng.bytes(value_len);
  const Bytes b = rng.bytes(value_len);
  std::vector<Bytes> inputs;
  const bool pre_agreed = rng.below(3) == 0;
  for (int i = 0; i < c.n; ++i) {
    inputs.push_back(pre_agreed || !rng.next_bool() ? a : b);
  }
  return inputs;
}

template <class Proto>
FuzzOutcome run_ba_plus_like(const FuzzCase& c, const ExecHooks& hooks,
                             const Proto& proto,
                             const std::vector<Bytes>& inputs) {
  return run_case<ba::MaybeBytes>(
      c, hooks,
      [&](net::PartyContext& ctx, int id) {
        return proto.run(ctx, inputs[static_cast<std::size_t>(id)]);
      },
      [&](const std::vector<std::optional<ba::MaybeBytes>>& outputs,
          FuzzOutcome& o) {
        check_agreement(outputs, o);
        // Honest input multiset, for the two BA+ extras; agreement already
        // compared the outputs, so the extras only need the first one.
        std::map<Bytes, int> honest_count;
        for (int id = 0; id < c.n; ++id) {
          if (!is_excluded(c, id)) {
            ++honest_count[inputs[static_cast<std::size_t>(id)]];
          }
        }
        for (std::size_t id = 0; id < outputs.size(); ++id) {
          const auto& res = outputs[id];
          if (!res) continue;
          if (res->has_value()) {
            // Intrusion Tolerance (Definition 3): a non-bottom output is
            // some honest party's input.
            if (!honest_count.contains(**res)) {
              o.verdict.violations.push_back(
                  "intrusion-tolerance: party " + std::to_string(id) +
                  " output is not an honest input");
            }
          } else {
            // Bounded Pre-Agreement (Definition 4): bottom only when fewer
            // than n - 2t honest parties shared an input.
            int max_mult = 0;
            for (const auto& [value, count] : honest_count) {
              max_mult = std::max(max_mult, count);
            }
            if (max_mult >= c.n - 2 * c.t) {
              o.verdict.violations.push_back(
                  "bounded-pre-agreement: bottom despite " +
                  std::to_string(max_mult) + " >= n - 2t pre-agreed parties");
            }
          }
          break;
        }
      });
}

FuzzOutcome run_ba_plus(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ba::BAPlus proto(stack.kit());
  return run_ba_plus_like(c, hooks, proto, ba_inputs(c, 2));
}

FuzzOutcome run_long_ba_plus(const FuzzCase& c, const ExecHooks& hooks) {
  const ca::DefaultBAStack stack;
  const ba::LongBAPlus proto(stack.kit());
  return run_ba_plus_like(c, hooks, proto, ba_inputs(c, c.ell / 8 + 1));
}

// ---------------------------------------------------------------------------
// Minimal JSON for the corpus. Hand-rolled on purpose: the container ships
// no JSON library, and the corpus schema is a fixed, flat shape.

void json_escape(std::ostream& os, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          os << ch;
        }
    }
  }
}

/// Strict cursor over the corpus JSON subset: objects, arrays, strings,
/// unsigned integers. Throws Error with position info on any deviation.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view s) : s_(s) {}

  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    ws();
    return pos_ >= s_.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char ch = s_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          if (v > 0xFF) fail("non-latin \\u escape unsupported");
          out.push_back(static_cast<char>(v));
          break;
        }
        default:
          fail("unsupported escape");
      }
    }
  }

  std::uint64_t u64() {
    ws();
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      fail("expected unsigned integer");
    }
    std::uint64_t v = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const auto digit = static_cast<std::uint64_t>(s_[pos_] - '0');
      if (v > (~std::uint64_t{0} - digit) / 10) fail("integer overflow");
      v = v * 10 + digit;
      ++pos_;
    }
    return v;
  }

  /// Signed integer (the v2 fault schema needs it: shuffle party -1).
  std::int64_t i64() {
    ws();
    const bool neg = pos_ < s_.size() && s_[pos_] == '-';
    if (neg) ++pos_;
    const std::uint64_t v = u64();
    if (v > 0x7FFFFFFFFFFFFFFFULL) fail("integer overflow");
    return neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw Error("corpus JSON: " + std::string(what) + " at offset " +
                std::to_string(pos_));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public surface.

const std::vector<std::string>& known_protocols() {
  static const std::vector<std::string> kProtocols = {
      "FixedLengthCA", "FindPrefix", "BAPlus",     "LongBAPlus",
      "PiN",           "PiZ",        "HighCostCA", "BroadcastTrimCA",
  };
  return kProtocols;
}

FuzzOutcome execute_case(const FuzzCase& c, const ExecHooks& hooks) {
  validate_case(c);
  if (c.protocol == "PiZ") return run_pi_z(c, hooks);
  if (c.protocol == "PiN") return run_pi_n(c, hooks);
  if (c.protocol == "HighCostCA") return run_high_cost(c, hooks);
  if (c.protocol == "BroadcastTrimCA") return run_broadcast_trim(c, hooks);
  if (c.protocol == "FixedLengthCA") return run_fixed_length(c, hooks);
  if (c.protocol == "FindPrefix") return run_find_prefix(c, hooks);
  if (c.protocol == "BAPlus") return run_ba_plus(c, hooks);
  if (c.protocol == "LongBAPlus") return run_long_ba_plus(c, hooks);
  throw Error("Fuzzer: unknown protocol '" + c.protocol + "'");
}

FuzzOutcome execute_case(const FuzzCase& c, net::Transcript* transcript,
                         obs::Tracer* tracer) {
  ExecHooks hooks;
  hooks.transcript = transcript;
  hooks.tracer = tracer;
  return execute_case(c, hooks);
}

std::string to_json(const CorpusEntry& entry) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \""
     << (entry.c.faults.empty() ? "coca-fuzz-v1" : "coca-fuzz-v2")
     << "\",\n";
  os << "  \"protocol\": \"";
  json_escape(os, entry.c.protocol);
  os << "\",\n";
  os << "  \"n\": " << entry.c.n << ",\n";
  os << "  \"t\": " << entry.c.t << ",\n";
  os << "  \"ell\": " << entry.c.ell << ",\n";
  os << "  \"input_seed\": " << entry.c.input_seed << ",\n";
  os << "  \"threads\": " << entry.c.threads << ",\n";
  os << "  \"corrupted\": [";
  for (std::size_t i = 0; i < entry.c.corrupted.size(); ++i) {
    os << (i ? ", " : "") << entry.c.corrupted[i];
  }
  os << "],\n";
  os << "  \"mutation\": {\"seed\": " << entry.c.mutation.seed
     << ", \"max_delay\": " << entry.c.mutation.max_delay
     << ", \"weights\": [";
  for (std::size_t i = 0; i < kNumMutOps; ++i) {
    os << (i ? ", " : "") << entry.c.mutation.weights[i];
  }
  os << "]},\n";
  if (!entry.c.faults.empty()) {
    const net::FaultPlan& f = entry.c.faults;
    os << "  \"faults\": {\n";
    os << "    \"crashes\": [";
    for (std::size_t i = 0; i < f.crashes.size(); ++i) {
      os << (i ? ", " : "") << "{\"party\": " << f.crashes[i].party
         << ", \"from_round\": " << f.crashes[i].from_round
         << ", \"until_round\": " << f.crashes[i].until_round << "}";
    }
    os << "],\n";
    os << "    \"cuts\": [";
    for (std::size_t i = 0; i < f.cuts.size(); ++i) {
      os << (i ? ", " : "") << "{\"from\": " << f.cuts[i].from
         << ", \"to\": " << f.cuts[i].to
         << ", \"from_round\": " << f.cuts[i].from_round
         << ", \"until_round\": " << f.cuts[i].until_round << "}";
    }
    os << "],\n";
    os << "    \"partitions\": [";
    for (std::size_t i = 0; i < f.partitions.size(); ++i) {
      os << (i ? ", " : "") << "{\"side\": [";
      for (std::size_t j = 0; j < f.partitions[i].side.size(); ++j) {
        os << (j ? ", " : "") << f.partitions[i].side[j];
      }
      os << "], \"from_round\": " << f.partitions[i].from_round
         << ", \"until_round\": " << f.partitions[i].until_round << "}";
    }
    os << "],\n";
    os << "    \"shuffles\": [";
    for (std::size_t i = 0; i < f.shuffles.size(); ++i) {
      os << (i ? ", " : "") << "{\"party\": " << f.shuffles[i].party
         << ", \"seed\": " << f.shuffles[i].seed << "}";
    }
    os << "]\n  },\n";
  }
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < entry.violations.size(); ++i) {
    os << (i ? ", " : "") << "\"";
    json_escape(os, entry.violations[i]);
    os << "\"";
  }
  os << "],\n";
  os << "  \"note\": \"";
  json_escape(os, entry.note);
  os << "\"\n}\n";
  return os.str();
}

CorpusEntry corpus_entry_from_json(std::string_view json) {
  JsonCursor cur(json);
  CorpusEntry entry;
  bool saw_schema = false;
  cur.expect('{');
  if (!cur.consume('}')) {
    do {
      const std::string key = cur.string();
      cur.expect(':');
      if (key == "schema") {
        const std::string schema = cur.string();
        require(schema == "coca-fuzz-v1" || schema == "coca-fuzz-v2",
                "corpus JSON: unsupported schema");
        saw_schema = true;
      } else if (key == "protocol") {
        entry.c.protocol = cur.string();
      } else if (key == "n") {
        entry.c.n = narrow<int>(cur.u64());
      } else if (key == "t") {
        entry.c.t = narrow<int>(cur.u64());
      } else if (key == "ell") {
        entry.c.ell = cur.u64();
      } else if (key == "input_seed") {
        entry.c.input_seed = cur.u64();
      } else if (key == "threads") {
        entry.c.threads = narrow<int>(cur.u64());
      } else if (key == "corrupted") {
        cur.expect('[');
        entry.c.corrupted.clear();
        if (!cur.consume(']')) {
          do {
            entry.c.corrupted.push_back(narrow<int>(cur.u64()));
          } while (cur.consume(','));
          cur.expect(']');
        }
      } else if (key == "mutation") {
        cur.expect('{');
        do {
          const std::string mkey = cur.string();
          cur.expect(':');
          if (mkey == "seed") {
            entry.c.mutation.seed = cur.u64();
          } else if (mkey == "max_delay") {
            entry.c.mutation.max_delay = cur.u64();
          } else if (mkey == "weights") {
            cur.expect('[');
            for (std::size_t i = 0; i < kNumMutOps; ++i) {
              if (i > 0) cur.expect(',');
              entry.c.mutation.weights[i] = narrow<std::uint32_t>(cur.u64());
            }
            cur.expect(']');
          } else {
            throw Error("corpus JSON: unknown mutation key '" + mkey + "'");
          }
        } while (cur.consume(','));
        cur.expect('}');
      } else if (key == "faults") {
        net::FaultPlan& f = entry.c.faults;
        // Each fault kind is an array of flat objects; every field of the
        // struct must be spelled out (strict, like the rest of the schema).
        const auto fields = [&cur](const auto& field) {
          cur.expect('{');
          do {
            const std::string fk = cur.string();
            cur.expect(':');
            field(fk);
          } while (cur.consume(','));
          cur.expect('}');
        };
        cur.expect('{');
        do {
          const std::string fkey = cur.string();
          cur.expect(':');
          cur.expect('[');
          if (cur.consume(']')) continue;
          do {
            if (fkey == "crashes") {
              net::FaultPlan::Crash cr;
              fields([&](const std::string& k) {
                if (k == "party") {
                  cr.party = narrow<int>(cur.u64());
                } else if (k == "from_round") {
                  cr.from_round = cur.u64();
                } else if (k == "until_round") {
                  cr.until_round = cur.u64();
                } else {
                  throw Error("corpus JSON: unknown crash key '" + k + "'");
                }
              });
              f.crashes.push_back(cr);
            } else if (fkey == "cuts") {
              net::FaultPlan::LinkCut cut;
              fields([&](const std::string& k) {
                if (k == "from") {
                  cut.from = narrow<int>(cur.u64());
                } else if (k == "to") {
                  cut.to = narrow<int>(cur.u64());
                } else if (k == "from_round") {
                  cut.from_round = cur.u64();
                } else if (k == "until_round") {
                  cut.until_round = cur.u64();
                } else {
                  throw Error("corpus JSON: unknown cut key '" + k + "'");
                }
              });
              f.cuts.push_back(cut);
            } else if (fkey == "partitions") {
              net::FaultPlan::Partition part;
              fields([&](const std::string& k) {
                if (k == "side") {
                  cur.expect('[');
                  if (!cur.consume(']')) {
                    do {
                      part.side.push_back(narrow<int>(cur.u64()));
                    } while (cur.consume(','));
                    cur.expect(']');
                  }
                } else if (k == "from_round") {
                  part.from_round = cur.u64();
                } else if (k == "until_round") {
                  part.until_round = cur.u64();
                } else {
                  throw Error("corpus JSON: unknown partition key '" + k +
                              "'");
                }
              });
              f.partitions.push_back(std::move(part));
            } else if (fkey == "shuffles") {
              net::FaultPlan::Shuffle sh;
              fields([&](const std::string& k) {
                if (k == "party") {
                  sh.party = narrow<int>(cur.i64());
                } else if (k == "seed") {
                  sh.seed = cur.u64();
                } else {
                  throw Error("corpus JSON: unknown shuffle key '" + k + "'");
                }
              });
              f.shuffles.push_back(sh);
            } else {
              throw Error("corpus JSON: unknown faults key '" + fkey + "'");
            }
          } while (cur.consume(','));
          cur.expect(']');
        } while (cur.consume(','));
        cur.expect('}');
      } else if (key == "violations") {
        cur.expect('[');
        entry.violations.clear();
        if (!cur.consume(']')) {
          do {
            entry.violations.push_back(cur.string());
          } while (cur.consume(','));
          cur.expect(']');
        }
      } else if (key == "note") {
        entry.note = cur.string();
      } else {
        throw Error("corpus JSON: unknown key '" + key + "'");
      }
    } while (cur.consume(','));
    cur.expect('}');
  }
  require(cur.at_end(), "corpus JSON: trailing content");
  require(saw_schema, "corpus JSON: missing schema");
  validate_case(entry.c);
  return entry;
}

FuzzCase shrink_case(FuzzCase c, const FailPredicate& still_fails,
                     std::size_t max_attempts) {
  std::size_t attempts = 0;
  const auto try_swap = [&](FuzzCase cand) {
    if (attempts >= max_attempts) return false;
    ++attempts;
    if (!still_fails(cand)) return false;
    c = std::move(cand);
    return true;
  };
  // Drops one entry of one fault kind; a candidate that would leave the
  // case with neither corrupted parties nor faults is skipped (invalid).
  const auto drop_fault_entry = [&](auto member) {
    for (std::size_t i = 0; i < (c.faults.*member).size(); ++i) {
      FuzzCase cand = c;
      auto& vec = cand.faults.*member;
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
      if (cand.corrupted.empty() && cand.faults.empty()) continue;
      if (try_swap(std::move(cand))) return true;
    }
    return false;
  };
  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;
    // Fewer corrupted parties (down to none while faults remain).
    if (c.corrupted.size() > 1 ||
        (!c.corrupted.empty() && !c.faults.empty())) {
      for (std::size_t i = 0; i < c.corrupted.size(); ++i) {
        FuzzCase cand = c;
        cand.corrupted.erase(cand.corrupted.begin() +
                             static_cast<std::ptrdiff_t>(i));
        if (try_swap(std::move(cand))) {
          progress = true;
          break;
        }
      }
    }
    // Fewer fault entries.
    if (drop_fault_entry(&net::FaultPlan::crashes)) progress = true;
    if (drop_fault_entry(&net::FaultPlan::cuts)) progress = true;
    if (drop_fault_entry(&net::FaultPlan::partitions)) progress = true;
    if (drop_fault_entry(&net::FaultPlan::shuffles)) progress = true;
    // Smallest network: n = 4, t = 1, one corrupted party. Skipped for
    // fault-bearing cases: remapping every fault window's party ids into
    // the shrunken network rarely preserves the failure and often makes
    // the candidate malformed (dropping entries above does the same work).
    if (c.n > 4 && c.faults.empty() && !c.corrupted.empty()) {
      FuzzCase cand = c;
      cand.n = 4;
      cand.t = 1;
      cand.corrupted = {c.corrupted.front() % 4};
      if (try_swap(std::move(cand))) progress = true;
    }
    // Shorter inputs.
    if (c.ell > 1) {
      FuzzCase cand = c;
      cand.ell = c.ell / 2;
      if (try_swap(std::move(cand))) progress = true;
    }
    // Fewer active operators. All weights reaching zero is a meaningful
    // minimum: the mutator degrades to pure passthrough, i.e. the failure
    // needs no adversary at all (the canary bug shrinks to exactly this).
    for (std::size_t op = 0; op < kNumMutOps; ++op) {
      if (c.mutation.weights[op] == 0) continue;
      FuzzCase cand = c;
      cand.mutation.weights[op] = 0;
      if (try_swap(std::move(cand))) progress = true;
    }
    // Shallower delayed replay.
    if (c.mutation.max_delay > 1) {
      FuzzCase cand = c;
      cand.mutation.max_delay = 1;
      if (try_swap(std::move(cand))) progress = true;
    }
  }
  return c;
}

Fuzzer::Fuzzer(FuzzerOptions options)
    : options_(std::move(options)),
      protocols_(options_.protocols.empty() ? known_protocols()
                                            : options_.protocols),
      rng_(options_.seed) {
  require(!protocols_.empty(), "Fuzzer: no protocols selected");
  const auto& known = known_protocols();
  for (const auto& p : protocols_) {
    require(std::find(known.begin(), known.end(), p) != known.end(),
            "Fuzzer: unknown protocol in options");
  }
  require(!options_.sizes.empty(), "Fuzzer: no sizes selected");
  for (const int n : options_.sizes) {
    require(n >= 4, "Fuzzer: sizes must be >= 4 (need t >= 1)");
  }
}

FuzzCase Fuzzer::next_case() {
  FuzzCase c;
  // Round-robin the protocol so a short budget still touches every target;
  // everything else is drawn from the seeded search stream.
  c.protocol = protocols_[counter_ % protocols_.size()];
  ++counter_;
  c.n = options_.sizes[rng_.below(options_.sizes.size())];
  c.t = (c.n - 1) / 3;
  constexpr std::size_t kElls[] = {8, 16, 33, 64};
  c.ell = kElls[rng_.below(std::size(kElls))];
  // With faults in play the corrupted draw leaves room in the t budget for
  // the plan's charged parties (possibly all of it: environment-only
  // cases, the crash-fault literature's home turf, are reachable).
  const bool with_faults = options_.faults && rng_.next_bool();
  const auto num_corrupt =
      with_faults ? rng_.below(static_cast<std::uint64_t>(c.t))
                  : 1 + rng_.below(static_cast<std::uint64_t>(c.t));
  std::set<int> ids;
  while (ids.size() < num_corrupt) {
    ids.insert(static_cast<int>(rng_.below(static_cast<std::uint64_t>(c.n))));
  }
  c.corrupted.assign(ids.begin(), ids.end());
  if (with_faults) {
    // Resample until the charged set avoids the corrupted ids; every draw
    // comes off the one search stream, so the whole case stays replayable
    // from the fuzzer seed.
    net::FaultSampleConfig fc;
    fc.n = c.n;
    fc.horizon = 24;
    fc.max_charged = c.t - static_cast<int>(c.corrupted.size());
    for (int attempt = 0; attempt < 8 && fc.max_charged >= 1; ++attempt) {
      fc.seed = rng_.next_u64();
      net::FaultPlan plan = net::sample_fault_plan(fc);
      const std::vector<int> charged = plan.charged(c.n);
      const bool overlap = std::any_of(
          charged.begin(), charged.end(),
          [&](int id) { return ids.contains(id); });
      if (!overlap) {
        c.faults = std::move(plan);
        break;
      }
    }
    if (c.corrupted.empty() && c.faults.empty()) {
      // Disjointness never worked out; fall back to one corrupted party.
      c.corrupted.push_back(
          static_cast<int>(rng_.below(static_cast<std::uint64_t>(c.n))));
    }
  }
  c.input_seed = rng_.next_u64();
  c.mutation.seed = rng_.next_u64();
  c.mutation.max_delay = 1 + rng_.below(4);
  c.threads = options_.threads;
  switch (rng_.below(4)) {
    case 0:
      break;  // default mix: mostly honest traffic, occasional strikes
    case 1: {  // focused: one mutating operator dominates
      const std::size_t op = 1 + rng_.below(kNumMutOps - 1);
      c.mutation.weights = {8, 0, 0, 0, 0, 0, 0, 0, 0};
      c.mutation.weights[op] = 8;
      break;
    }
    case 2:  // aggressive: most messages corrupted
      c.mutation.weights = {4, 4, 4, 4, 4, 4, 4, 2, 4};
      break;
    case 3:  // omission/delay heavy (liveness stress)
      c.mutation.weights = {8, 0, 0, 0, 0, 0, 6, 3, 0};
      break;
  }
  return c;
}

FuzzReport Fuzzer::run() {
  FuzzReport report;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.budget_sec));
  while (report.executed < options_.max_cases &&
         std::chrono::steady_clock::now() < deadline) {
    const FuzzCase c = next_case();
    const FuzzOutcome outcome = execute_case(c);
    ++report.executed;
    ++report.cases_by_protocol[c.protocol];
    if (outcome.verdict.ok()) continue;
    CorpusEntry entry;
    entry.c = c;
    entry.violations = outcome.verdict.violations;
    entry.note = "found by sweep seed " + std::to_string(options_.seed);
    if (options_.shrink) {
      entry.c = shrink_case(c, [](const FuzzCase& cand) {
        return !execute_case(cand).verdict.ok();
      });
      entry.violations = execute_case(entry.c).verdict.violations;
      entry.note += "; shrunk from n=" + std::to_string(c.n) +
                    " ell=" + std::to_string(c.ell) +
                    " |corrupted|=" + std::to_string(c.corrupted.size());
    }
    report.violations.push_back(std::move(entry));
  }
  return report;
}

}  // namespace coca::adv
