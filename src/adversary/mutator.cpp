#include "adversary/mutator.h"

#include <algorithm>

#include "util/wire.h"

namespace coca::adv {

std::string_view to_string(MutOp op) {
  switch (op) {
    case MutOp::kKeep:
      return "keep";
    case MutOp::kBitFlip:
      return "bit-flip";
    case MutOp::kByteSplice:
      return "byte-splice";
    case MutOp::kTruncate:
      return "truncate";
    case MutOp::kExtend:
      return "extend";
    case MutOp::kFieldTweak:
      return "field-tweak";
    case MutOp::kOmit:
      return "omit";
    case MutOp::kDelay:
      return "delay";
    case MutOp::kEquivocate:
      return "equivocate";
  }
  return "unknown";
}

Mutator::Mutator(MutatorConfig config)
    : config_(config), rng_(config.seed) {
  require(config_.n >= 1, "Mutator: config.n must name the party count");
  require(config_.max_delay >= 1, "Mutator: max_delay must be >= 1");
  for (const std::uint32_t w : config_.weights) total_weight_ += w;
}

MutOp Mutator::pick_op() {
  if (total_weight_ == 0) return MutOp::kKeep;
  std::uint64_t roll = rng_.below(total_weight_);
  for (std::size_t i = 0; i < kNumMutOps; ++i) {
    if (roll < config_.weights[i]) return static_cast<MutOp>(i);
    roll -= config_.weights[i];
  }
  return MutOp::kKeep;
}

Bytes Mutator::corrupt(Bytes payload) {
  static constexpr MutOp kContentOps[] = {
      MutOp::kBitFlip, MutOp::kByteSplice, MutOp::kTruncate, MutOp::kExtend,
      MutOp::kFieldTweak,
  };
  return apply(kContentOps[rng_.below(std::size(kContentOps))],
               std::move(payload));
}

Bytes Mutator::apply(MutOp op, Bytes payload) {
  switch (op) {
    case MutOp::kBitFlip: {
      if (payload.empty()) return payload;
      const std::size_t flips = 1 + rng_.below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng_.below(payload.size() * 8);
        payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return payload;
    }
    case MutOp::kByteSplice: {
      if (payload.empty()) return payload;
      const std::size_t len = 1 + rng_.below(std::min<std::size_t>(
                                      8, payload.size()));
      const std::size_t at = rng_.below(payload.size() - len + 1);
      for (std::size_t i = 0; i < len; ++i) {
        payload[at + i] = static_cast<std::uint8_t>(rng_.next_u64());
      }
      return payload;
    }
    case MutOp::kTruncate: {
      if (payload.empty()) return payload;
      payload.resize(rng_.below(payload.size()));
      return payload;
    }
    case MutOp::kExtend: {
      const Bytes extra = rng_.bytes(1 + rng_.below(64));
      payload.insert(payload.end(), extra.begin(), extra.end());
      return payload;
    }
    case MutOp::kFieldTweak: {
      // wire.h convention: composite payloads lead with a little-endian
      // length field (u32 for `bytes`, u64 for `bitstring`/`bignat`).
      // Re-reading and rewriting an aligned field with an off-by-one, zero,
      // or saturated value forges a *structurally* plausible message --
      // exactly the length-field lies bounds-checked parsing must survive.
      const std::size_t width = (payload.size() >= 8 && rng_.next_bool()) ? 8 : 4;
      if (payload.size() < width) return apply(MutOp::kBitFlip, std::move(payload));
      const std::size_t at = rng_.below(payload.size() - width + 1);
      Reader reader(std::span(payload.data() + at, width));
      const std::uint64_t v =
          width == 8 ? *reader.u64() : static_cast<std::uint64_t>(*reader.u32());
      std::uint64_t forged = 0;
      switch (rng_.below(4)) {
        case 0:
          forged = v + 1;
          break;
        case 1:
          forged = v - 1;
          break;
        case 2:
          forged = 0;
          break;
        default:
          forged = width == 8 ? ~std::uint64_t{0} : 0xFFFFFFFFull;
          break;
      }
      Writer writer;
      if (width == 8) {
        writer.u64(forged);
      } else {
        writer.u32(static_cast<std::uint32_t>(forged));
      }
      std::copy(writer.peek().begin(), writer.peek().end(),
                payload.begin() + static_cast<std::ptrdiff_t>(at));
      return payload;
    }
    case MutOp::kKeep:
    case MutOp::kOmit:
    case MutOp::kDelay:
    case MutOp::kEquivocate:
      break;  // not content operators
  }
  return payload;
}

void Mutator::on_send(std::size_t round, int to, net::Payload payload,
                      const Emit& emit) {
  const MutOp op = pick_op();
  ++op_counts_[static_cast<std::size_t>(op)];
  switch (op) {
    case MutOp::kKeep:
      emit(to, std::move(payload));  // shared view passes through, no copy
      return;
    case MutOp::kOmit:
      return;
    case MutOp::kDelay:
      held_.push_back(
          {round + 1 + rng_.below(config_.max_delay), to, std::move(payload)});
      return;
    case MutOp::kEquivocate: {
      // Corrupted copy to a different recipient, staged before that
      // recipient's legitimate message from this party: protocols that keep
      // the first message per sender see the forgery instead. The copy is a
      // deliberate deep copy (to_bytes) -- the original view passes through
      // untouched to its legitimate recipient.
      if (config_.n > 1) {
        int other = static_cast<int>(rng_.below(
            static_cast<std::uint64_t>(config_.n - 1)));
        if (other >= to) ++other;
        emit(other, net::Payload(corrupt(payload.to_bytes())));
      }
      emit(to, std::move(payload));
      return;
    }
    default:
      // Content operators mutate bytes in place: detach() is the
      // copy-on-write point. Other views of the same buffer are unaffected.
      emit(to, net::Payload(apply(op, std::move(payload).detach())));
      return;
  }
}

void Mutator::on_round_start(std::size_t round, const Emit& emit) {
  // Replay everything that came due, in the order it was held back.
  auto due = std::stable_partition(
      held_.begin(), held_.end(),
      [round](const Held& h) { return h.due_round <= round; });
  for (auto it = held_.begin(); it != due; ++it) {
    emit(it->to, std::move(it->payload));
  }
  held_.erase(held_.begin(), due);
}

}  // namespace coca::adv
