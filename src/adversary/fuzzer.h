// Adversary search: sweep mutation-based byzantine behaviours over the
// whole protocol zoo and check every execution against one shared
// invariant oracle.
//
// A `FuzzCase` pins everything needed to reproduce an execution
// bit-for-bit: the protocol under test, (n, t), the input scale `ell`, the
// honest-workload seed, the corrupted-party set, and the `MutatorConfig`
// each corrupted party wraps its honest instance in (per-party mutator
// streams are split off `mutation.seed` with `Rng::derive_stream_seed`).
// `execute_case` runs it and returns the oracle's verdict:
//
//   * termination  -- the run finishes within a per-target round budget,
//   * no crash     -- no honest instance throws on adversarial traffic,
//   * agreement    -- all honest outputs equal,
//   * validity     -- outputs inside the honest inputs' convex hull
//                     (plus Intrusion Tolerance / Bounded Pre-Agreement
//                     for the BA+ targets, Lemma-1 shape for FindPrefix),
//   * bits budget  -- honest BITS_l below a generous multiple of the
//                     paper's cost formula (catches honest-side blowups).
//
// `Fuzzer` drives the search under a wall-clock/iteration budget,
// `shrink_case` minimizes a violating case against a caller-supplied
// still-fails predicate, and `CorpusEntry` round-trips through JSON so
// minimized counterexamples live in tests/corpus/ and replay
// deterministically (same seed -> same transcript -> same verdict).
//
// Environment faults are a search dimension: a case may additionally carry
// a `net::FaultPlan` (crash-stop, crash-recovery, link cuts, partitions,
// inbox shuffles). The oracle then treats corrupted U charged as the
// adversary's budget -- invariants are enforced over the remaining
// parties, and the case is valid while |corrupted| <= t (the plan's
// charged set may exceed t; the degradation campaign probes exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "adversary/mutator.h"
#include "net/fault_plan.h"
#include "net/sync_network.h"

namespace coca::adv {

/// One fully-specified fuzz execution. Equality is structural: two equal
/// cases replay the same transcript under any ExecPolicy schedule.
struct FuzzCase {
  std::string protocol;        // one of known_protocols()
  int n = 4;
  int t = 1;                   // corruption budget (t < n/3)
  std::size_t ell = 16;        // input bit-length scale
  std::uint64_t input_seed = 0;  // honest workload generator seed
  std::vector<int> corrupted;  // parties wrapped in a Mutator
  MutatorConfig mutation;      // seed is the root; per-party streams derived
  int threads = 0;             // ExecPolicy (0 = auto)
  /// Environment fault schedule (empty = none). Must be disjoint from
  /// `corrupted` (a party is either byzantine or environment-faulted, not
  /// both). Both may be empty: that is a plain honest run.
  net::FaultPlan faults;

  bool operator==(const FuzzCase&) const = default;
};

/// The oracle's verdict over one execution; empty violations = all hold.
struct FuzzVerdict {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

struct FuzzOutcome {
  FuzzVerdict verdict;
  net::RunStats stats;     // meaningful iff `terminated`
  bool terminated = false;
  std::string failure;     // exception text when the run aborted
  /// Per-party outcomes from the guarded engine path; populated only for
  /// cases with a non-empty FaultPlan (the fault-free path keeps the
  /// legacy first-error-aborts execution, bit-identical to v1 replays).
  std::vector<net::PartyOutcome> outcomes;
};

/// The protocol targets the fuzzer knows how to drive.
const std::vector<std::string>& known_protocols();

/// Structural validation of a case (ranges, disjointness, budgets); throws
/// Error on the first problem. execute_case runs it implicitly; batch
/// drivers (the sharded engine) call it up front so a malformed case
/// surfaces before any worker starts.
void validate_case(const FuzzCase& c);

/// Optional observation taps for execute_case. Every pointer may be null
/// and must outlive the call; none of them changes the execution -- the
/// transcript and verdict are bit-identical with or without hooks.
struct ExecHooks {
  net::Transcript* transcript = nullptr;  // canonical message transcript
  obs::Tracer* tracer = nullptr;          // fresh Tracer per case
  /// Live per-round delivery stream (see net::RoundObserver). This is the
  /// seam the sharded engine's SPSC lanes hang off: one observer per
  /// instance, pushed from the instance's own controller context.
  net::RoundObserver* observer = nullptr;
  /// Round transport (see net::RoundRouter). Unlike the taps above this
  /// *does* change where bytes travel -- every delivered round crosses the
  /// router's wire -- but not what they are: the conformance suite pins
  /// routed executions bit-identical to in-process ones. This is how the
  /// service runtime (src/svc) lifts all 8 protocols, the fuzzer's
  /// SendTaps, and FaultPlans onto real sockets without touching them.
  net::RoundRouter* router = nullptr;
};

/// Runs one case to its verdict, feeding whichever hooks are set. Throws
/// Error on a malformed case (unknown protocol, out-of-range ids,
/// t >= n/3, ...).
FuzzOutcome execute_case(const FuzzCase& c, const ExecHooks& hooks);

/// Convenience overload: transcript and/or tracer only.
FuzzOutcome execute_case(const FuzzCase& c,
                         net::Transcript* transcript = nullptr,
                         obs::Tracer* tracer = nullptr);

/// A minimized counterexample as stored in tests/corpus/: the case plus
/// the violations it reproduced when found.
struct CorpusEntry {
  FuzzCase c;
  std::vector<std::string> violations;
  std::string note;

  bool operator==(const CorpusEntry&) const = default;
};

/// JSON round trip for corpus files. Entries without faults serialize
/// byte-identically to the original schema "coca-fuzz-v1"; entries with a
/// FaultPlan use "coca-fuzz-v2" (adds a "faults" object). The reader
/// accepts both (strict parse, throws Error on malformed input).
std::string to_json(const CorpusEntry& entry);
CorpusEntry corpus_entry_from_json(std::string_view json);

/// Greedily minimizes `c` while `still_fails` holds: fewer corrupted
/// parties, fewer fault entries, smaller n, shorter ell, fewer active
/// operators, shallower delays -- to a fixpoint or `max_attempts`
/// predicate evaluations.
using FailPredicate = std::function<bool(const FuzzCase&)>;
FuzzCase shrink_case(FuzzCase c, const FailPredicate& still_fails,
                     std::size_t max_attempts = 64);

struct FuzzerOptions {
  double budget_sec = 10.0;             // wall-clock budget for run()
  std::size_t max_cases = SIZE_MAX;     // iteration budget for run()
  std::uint64_t seed = 1;               // search-stream seed
  std::vector<std::string> protocols;   // empty = all known
  std::vector<int> sizes = {4, 7};      // candidate n values
  int threads = 0;                      // ExecPolicy for every execution
  bool shrink = true;                   // minimize violations before report
  /// When set, roughly half the drawn cases also carry a sampled
  /// FaultPlan, with |corrupted| + |charged| kept <= t so every invariant
  /// is still required to hold.
  bool faults = false;
};

struct FuzzReport {
  std::size_t executed = 0;
  std::map<std::string, std::size_t> cases_by_protocol;
  std::vector<CorpusEntry> violations;  // shrunk when options.shrink
};

/// The search driver: round-robins protocols, randomizes everything else
/// from one seeded stream, executes until a budget is hit, and shrinks
/// whatever the oracle rejects.
class Fuzzer {
 public:
  explicit Fuzzer(FuzzerOptions options);

  /// Draws the next randomized case (exposed for tests; run() consumes the
  /// same stream).
  FuzzCase next_case();

  FuzzReport run();

 private:
  FuzzerOptions options_;
  std::vector<std::string> protocols_;
  Rng rng_;
  std::size_t counter_ = 0;
};

}  // namespace coca::adv
