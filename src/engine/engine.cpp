#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "engine/kernel_batch.h"
#include "engine/spsc_ring.h"
#include "net/sync_network.h"
#include "util/rng.h"

namespace coca::engine {

namespace {

/// The lane producer: one per instance, installed as the instance's
/// net::RoundObserver. Runs in the instance's controller context (the
/// worker thread), so the SPSC single-producer contract holds by
/// construction.
class LaneObserver : public net::RoundObserver {
 public:
  LaneObserver(SpscRing<RoundEvent>* lane, std::uint32_t instance)
      : lane_(lane), instance_(instance) {}

  void on_round(std::size_t round, std::uint64_t honest_bytes,
                std::uint64_t honest_messages) override {
    RoundEvent ev;
    ev.instance = instance_;
    ev.round = static_cast<std::uint32_t>(round);
    ev.honest_bytes = honest_bytes;
    ev.honest_messages = honest_messages;
    lane_->push(ev);
  }

  void finish() {
    RoundEvent ev;
    ev.instance = instance_;
    ev.done = true;
    lane_->push(ev);
  }

 private:
  SpscRing<RoundEvent>* lane_;
  std::uint32_t instance_;
};

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  require(options_.workers >= 1, "Engine: need workers >= 1");
  require(options_.lane_capacity >= 1, "Engine: need lane_capacity >= 1");
}

EngineReport Engine::run(const std::vector<adv::FuzzCase>& cases) {
  const std::size_t kk = cases.size();
  const auto& known = adv::known_protocols();
  for (const adv::FuzzCase& c : cases) {
    adv::validate_case(c);
    if (std::find(known.begin(), known.end(), c.protocol) == known.end()) {
      throw Error("Engine: unknown protocol '" + c.protocol + "'");
    }
  }
  EngineReport report;
  report.instances.resize(kk);
  if (kk == 0) return report;
  const auto workers = std::min<std::size_t>(
      static_cast<std::size_t>(options_.workers), kk);

  std::vector<std::unique_ptr<SpscRing<RoundEvent>>> lanes;
  lanes.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) {
    lanes.push_back(
        std::make_unique<SpscRing<RoundEvent>>(options_.lane_capacity));
  }
  std::vector<std::unique_ptr<obs::Tracer>> tracers(kk);
  if (options_.trace) {
    for (auto& t : tracers) {
      t = std::make_unique<obs::Tracer>(obs::Tracer::Options{.timing = false});
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Workers: instance i runs on worker i % W. All of an instance's
  // protocol work happens on its worker via its own private SyncNetwork;
  // the only cross-thread traffic is the lane. A worker holding several
  // instances either runs them sequentially or -- when kernel batching is
  // on -- as cooperative fibers whose RS/Merkle kernels flush through the
  // batch entry points (bit-identical outputs either way).
  const bool batch = options_.batch_kernels && !options_.trace &&
                     net::fibers_available();
  std::vector<KernelBatchStats> batch_stats(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t wi = 0; wi < workers; ++wi) {
    pool.emplace_back([&, wi]() {
      const auto run_one = [&](std::size_t i) {
        InstanceResult& res = report.instances[i];
        res.worker = static_cast<int>(wi);
        LaneObserver observer(lanes[i].get(), static_cast<std::uint32_t>(i));
        adv::ExecHooks hooks;
        if (options_.record_transcripts) hooks.transcript = &res.transcript;
        if (tracers[i]) hooks.tracer = tracers[i].get();
        hooks.observer = &observer;
        try {
          res.outcome = adv::execute_case(cases[i], hooks);
        } catch (const std::exception& e) {
          // validate_case passed, so this is unexpected; surface it as a
          // verdict instead of tearing down the whole pool.
          res.outcome.failure = e.what();
          res.outcome.verdict.violations.push_back(
              std::string("crash: engine worker: ") + e.what());
        }
        observer.finish();
      };
      std::vector<std::size_t> mine;
      for (std::size_t i = wi; i < kk; i += workers) mine.push_back(i);
      if (batch && mine.size() > 1) {
        std::vector<std::function<void()>> work;
        work.reserve(mine.size());
        for (const std::size_t i : mine) {
          work.push_back([&run_one, i] { run_one(i); });
        }
        batch_stats[wi] = run_batched(std::move(work));
      } else {
        for (const std::size_t i : mine) run_one(i);
      }
    });
  }

  // Collector: this thread is every lane's only consumer. Each sweep
  // drains lanes in canonical instance order 0..K-1; the folds below are
  // commutative sums keyed by (instance, round), so the report is
  // bit-identical for any worker count or interleaving.
  std::size_t done = 0;
  while (done < kk) {
    bool idle = true;
    for (std::size_t i = 0; i < kk; ++i) {
      while (std::optional<RoundEvent> ev = lanes[i]->try_pop()) {
        idle = false;
        if (ev->done) {
          ++done;
          continue;
        }
        ++report.instances[i].rounds_streamed;
        if (report.honest_bytes_by_round.size() <=
            static_cast<std::size_t>(ev->round)) {
          report.honest_bytes_by_round.resize(ev->round + 1, 0);
        }
        report.honest_bytes_by_round[ev->round] += ev->honest_bytes;
      }
    }
    if (idle) std::this_thread::yield();
  }
  for (std::thread& th : pool) th.join();
  for (const KernelBatchStats& s : batch_stats) report.kernel_batch += s;

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const InstanceResult& res : report.instances) {
    report.honest_bytes += res.outcome.stats.honest_bytes;
    report.honest_messages += res.outcome.stats.honest_messages;
    report.rounds += res.outcome.stats.rounds;
  }
  if (options_.trace) {
    std::vector<const obs::Tracer*> ptrs;
    ptrs.reserve(kk);
    for (const auto& t : tracers) ptrs.push_back(t.get());
    report.metrics = obs::merged_metrics_over(ptrs);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Cross-instance isolation.

IsolationReport check_isolation(const adv::FuzzCase& victim,
                                const ShardedCaseOptions& options) {
  require(options.instances >= 2, "check_isolation: need >= 2 instances");
  require(options.workers >= 1, "check_isolation: need >= 1 workers");
  adv::validate_case(victim);

  // Neighbors: honest twins of the victim (same protocol/n/t/ell, derived
  // input seeds, no corruption, no faults). The victim sits mid-pack so
  // lanes on both sides of it are exercised.
  const std::size_t count = static_cast<std::size_t>(options.instances);
  const std::size_t victim_at = count / 2;
  std::vector<adv::FuzzCase> cases(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i == victim_at) {
      cases[i] = victim;
      continue;
    }
    adv::FuzzCase neighbor = victim;
    neighbor.corrupted.clear();
    neighbor.mutation = adv::MutatorConfig{};
    neighbor.mutation.seed =
        Rng::derive_stream_seed(options.neighbor_seed, 2 * i + 1);
    neighbor.faults = net::FaultPlan{};
    neighbor.input_seed = Rng::derive_stream_seed(options.neighbor_seed, 2 * i);
    cases[i] = std::move(neighbor);
  }

  // Solo baselines for every neighbor, each on its own single SyncNetwork.
  std::vector<adv::FuzzOutcome> solo(count);
  std::vector<net::Transcript> solo_tr(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i == victim_at) continue;
    solo[i] = adv::execute_case(cases[i], &solo_tr[i]);
  }

  EngineOptions eo;
  eo.workers = options.workers;
  const EngineReport sharded = Engine(eo).run(cases);

  IsolationReport report;
  report.victim = sharded.instances[victim_at].outcome.verdict;
  for (std::size_t i = 0; i < count; ++i) {
    if (i == victim_at) continue;
    const std::string who = "neighbor " + std::to_string(i);
    const InstanceResult& got = sharded.instances[i];
    if (!(got.transcript == solo_tr[i])) {
      report.violations.push_back("isolation: " + who +
                                  " transcript differs from its solo run");
    }
    const net::RunStats& a = got.outcome.stats;
    const net::RunStats& b = solo[i].stats;
    if (a.honest_bytes != b.honest_bytes ||
        a.honest_messages != b.honest_messages || a.rounds != b.rounds) {
      report.violations.push_back("isolation: " + who +
                                  " honest_bytes/messages/rounds differ");
    }
    if (a.phase_breakdown != b.phase_breakdown) {
      report.violations.push_back("isolation: " + who +
                                  " phase_breakdown differs");
    }
    if (got.outcome.verdict.violations != solo[i].verdict.violations) {
      report.violations.push_back("isolation: " + who +
                                  " oracle verdict differs");
    }
  }
  return report;
}

}  // namespace coca::engine
