// Lock-free single-producer/single-consumer ring buffer: the per
// (worker, instance) lane of the sharded engine.
//
// Replaces the merge-under-lock outbox handoff: each instance's worker is
// the lane's only producer and the engine's collector thread its only
// consumer, so a bounded ring with two monotonically increasing cursors
// needs no locks at all. The producer owns `tail_` (next slot to fill),
// the consumer owns `head_` (next slot to drain); each side only *reads*
// the other's cursor. Release/acquire pairs on the cursors order the slot
// contents: a consumer that observes tail_ > head also observes every byte
// the producer wrote into the slots in between.
//
// Cursors are free-running 64-bit counters (never wrapped); slot index is
// cursor & mask with a power-of-two capacity. At the engine's round
// granularity a cursor cannot overflow in any physical run.
//
// COCA_CANARY_BUG deliberately publishes `tail_` *before* the slot write --
// a real data race on the slot bytes -- so the TSan CI lane can prove it
// watches this structure (plain builds still pass count-only assertions:
// the race corrupts values, not the cursor arithmetic).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/common.h"

namespace coca::engine {

template <class T>
class SpscRing {
 public:
  /// Ring with room for at least `min_capacity` elements (rounded up to a
  /// power of two for mask indexing). Requires min_capacity >= 1.
  explicit SpscRing(std::size_t min_capacity) {
    require(min_capacity >= 1, "SpscRing: need capacity >= 1");
    std::size_t cap = 1;
    while (cap < min_capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side: enqueues `v`, or returns false when the ring is full.
  bool try_push(T v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
#ifdef COCA_CANARY_BUG
    // Canary: publish the slot before filling it. The consumer may now read
    // the slot while this thread writes it -- the data race TSan must flag.
    // Relaxed on purpose (a release would hand the consumer a happens-before
    // edge for free), and the signal fence pins the store order against the
    // compiler: release/relaxed stores are one-way barriers, so without it
    // the compiler may sink the slot write above the publish and silently
    // un-plant the bug.
    tail_.store(t + 1, std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_seq_cst);
    slots_[t & mask_] = std::move(v);
#else
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
#endif
    return true;
  }

  /// Producer side: enqueues `v`, yielding while the ring is full. The
  /// consumer must be live (the engine's collector always is).
  void push(T v) {
    while (!try_push(std::move(v))) {
      std::this_thread::yield();
    }
  }

  /// Consumer side: dequeues the oldest element, or nullopt when empty.
  std::optional<T> try_pop() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return std::nullopt;
    std::optional<T> v(std::move(slots_[h & mask_]));
    head_.store(h + 1, std::memory_order_release);
    return v;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent).
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Separate cache lines: each cursor is written by exactly one side; the
  // padding keeps producer stores from invalidating the consumer's line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // produced count
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumed count
};

}  // namespace coca::engine
