// Instance-sharded execution engine: many concurrent CA/BA instances over
// a fixed pool of worker threads.
//
// The production shape the ROADMAP aims at multiplexes thousands of
// agreement instances (one per key/shard) over shared workers; the paper's
// per-instance bit/round guarantees only survive that multiplexing if each
// instance's execution is untouched by its neighbors. This engine makes
// that an invariant rather than a hope:
//
//  * Sharding. K instances are dealt round-robin over W workers
//    (instance i runs on worker i % W). Each worker runs its instances
//    sequentially, each on its own private SyncNetwork -- no protocol
//    state, RNG stream, or payload buffer is shared between instances.
//  * Lanes. Each instance owns a lock-free SPSC ring (spsc_ring.h). The
//    worker is the lane's only producer: a net::RoundObserver pushes one
//    RoundEvent per delivered round from the instance's controller
//    context. The collector (the calling thread) is the only consumer.
//  * Canonical merge order. The collector drains lanes strictly in
//    instance order 0..K-1 every sweep, and all cross-instance aggregates
//    (bytes-by-round, merged metrics) are commutative folds -- so every
//    report field except wall-clock time is independent of worker count
//    and interleaving.
//
// Headline invariant (tier-1 asserted across worker counts {1, 2, 8}):
// every instance's transcript, RunStats, and phase_breakdown are
// bit-identical to the same case run alone on a single SyncNetwork.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/fuzzer.h"
#include "engine/kernel_batch.h"
#include "obs/obs.h"

namespace coca::engine {

struct EngineOptions {
  /// Worker threads (clamped to the instance count; >= 1).
  int workers = 1;
  /// Per-lane ring capacity in RoundEvents; producers yield when full.
  std::size_t lane_capacity = 256;
  /// Record each instance's canonical transcript (the equivalence gate).
  bool record_transcripts = true;
  /// Attach a per-instance canonical-mode Tracer (timing off) and fold the
  /// registries into EngineReport::metrics in instance order.
  bool trace = false;
  /// Batch compute kernels across the instances sharing a worker: run them
  /// as cooperative fibers (engine/kernel_batch.h) so concurrent RS
  /// encodes and Merkle builds execute through `encode_batch` /
  /// `build_views_batch` -- bit-identical outputs, amortized kernel setup.
  /// Takes effect only when a worker holds > 1 instance, tracing is off
  /// (batching collapses per-call spans into per-flush spans), and ucontext
  /// fibers are available; otherwise instances run plain sequentially.
  bool batch_kernels = true;
};

/// One delivered round, streamed over an instance's lane while the
/// instance still runs.
struct RoundEvent {
  std::uint32_t instance = 0;
  std::uint32_t round = 0;
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_messages = 0;
  /// Lane terminator: the instance finished (outcome published); no
  /// further events follow on this lane.
  bool done = false;
};

struct InstanceResult {
  adv::FuzzOutcome outcome;
  net::Transcript transcript;  // empty unless record_transcripts
  int worker = -1;             // which worker ran it
  /// Rounds the collector observed live over the lane; equals
  /// outcome.stats.rounds minus the trailing leftover-only flush (the
  /// observer reports merged rounds only, see net::RoundObserver).
  std::uint64_t rounds_streamed = 0;
};

struct EngineReport {
  std::vector<InstanceResult> instances;  // indexed like the input cases
  // Aggregates over all instances (from the authoritative RunStats, not
  // the streamed events; commutative sums, so worker-count independent).
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_messages = 0;
  std::uint64_t rounds = 0;
  /// Live-streamed cross-instance view: honest bytes per round index,
  /// folded from the lane events in canonical drain order.
  std::vector<std::uint64_t> honest_bytes_by_round;
  /// Folded per-instance metrics in instance order (empty unless trace).
  obs::MetricsRegistry metrics;
  /// Summed over workers: what the kernel batcher actually served. All
  /// zero when batching was off or never took effect.
  KernelBatchStats kernel_batch;
  double seconds = 0.0;  // wall clock, the only schedule-dependent field
};

class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Runs every case to completion and returns the per-instance results
  /// plus cross-instance aggregates. Cases are validated up front (throws
  /// Error on a malformed one before any instance starts).
  EngineReport run(const std::vector<adv::FuzzCase>& cases);

 private:
  EngineOptions options_;
};

// ---------------------------------------------------------------------------
// Cross-instance isolation: the sharded fuzz target.

struct ShardedCaseOptions {
  int instances = 4;  // total instances incl. the victim (>= 2)
  int workers = 2;
  /// Seed for deriving the honest neighbors' input seeds.
  std::uint64_t neighbor_seed = 1;
};

/// Verdict of one sharded isolation check: the victim's own oracle verdict
/// plus any cross-instance leaks (a neighbor whose transcript, stats, or
/// verdict differs from its solo run).
struct IsolationReport {
  adv::FuzzVerdict victim;
  std::vector<std::string> violations;  // isolation breaches only
  bool ok() const { return violations.empty(); }
};

/// Runs `victim` inside a sharded engine surrounded by honest neighbor
/// instances (same protocol/n/ell, derived seeds, no corruption, no
/// faults), and checks every neighbor against its own solo SyncNetwork run:
/// transcript, honest_bytes/messages/rounds, phase_breakdown, and oracle
/// violations must all be bit-identical. Equality-based on purpose: it
/// stays two-sided-correct even on builds (e.g. COCA_CANARY_BUG) where the
/// solo baseline itself fails the oracle.
IsolationReport check_isolation(const adv::FuzzCase& victim,
                                const ShardedCaseOptions& options);

}  // namespace coca::engine
