// Cross-instance kernel batching: run K protocol instances as cooperative
// fibers on one worker thread, parking each at its compute-kernel calls so
// the kernels of many instances execute through the batch entry points.
//
// The seam is `coca::KernelGate` (util/kernel_gate.h): `ReedSolomon::encode`
// and `MerkleTree::build_views` consult the calling thread's gate before
// doing anything. `KernelBatcher` installs itself as that gate, gives every
// instance its own fiber stack (so a park can always swap cleanly back to
// the scheduler on the worker's native stack -- including parks initiated
// from a party fiber nested inside the instance's own SyncNetwork), and
// drives this loop:
//
//   1. Resume every runnable instance in index order. Each runs until it
//      parks at a kernel call or finishes.
//   2. Flush the parked requests: RS encodes grouped by (n, k) through
//      `ReedSolomon::encode_batch` (one MulBy table per distinct parity
//      coefficient across the whole group), Merkle builds through
//      `MerkleTree::build_views_batch` (one hash context for all trees).
//   3. Hand each instance its result, mark it runnable, go to 1.
//
// The batch entry points are bit-identical to the per-call kernels (a
// tier-1 differential invariant), so instance outputs -- transcripts,
// RunStats, every byte on the wire -- are unchanged; only the kernel setup
// cost is amortized. Per-thread PayloadMetrics counters are virtualized
// across the interleaving (saved at park, restored at resume), so each
// instance's payload_copies diff covers exactly its own copies.
//
// Requires ucontext fibers (`net::fibers_available()`); callers fall back
// to plain sequential execution when unavailable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace coca::engine {

/// What a batch run did; folded into EngineReport so tests can assert the
/// gate actually fired rather than silently running everything inline.
struct KernelBatchStats {
  std::uint64_t flushes = 0;       // scheduler flush passes with >= 1 request
  std::uint64_t rs_calls = 0;      // encode() calls served through a batch
  std::uint64_t merkle_calls = 0;  // build_views() calls served likewise

  KernelBatchStats& operator+=(const KernelBatchStats& o) {
    flushes += o.flushes;
    rs_calls += o.rs_calls;
    merkle_calls += o.merkle_calls;
    return *this;
  }
};

/// Runs `work` items to completion as cooperative fibers on the calling
/// thread, batching their kernel calls. Items must not assume they run on
/// the caller's stack; everything else (thread identity, thread_locals
/// outside PayloadMetrics) is unchanged. Exceptions must not escape a work
/// item (the engine's items already catch everything).
KernelBatchStats run_batched(std::vector<std::function<void()>> work);

}  // namespace coca::engine
