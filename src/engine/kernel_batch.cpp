#include "engine/kernel_batch.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "codec/reed_solomon.h"
#include "crypto/merkle.h"
#include "net/payload.h"
#include "obs/obs.h"
#include "util/common.h"
#include "util/kernel_gate.h"

namespace coca::engine {

namespace {

/// mmap-backed fiber stack with a PROT_NONE guard page at the low end
/// (same shape as SyncNetwork's party stacks). The instance fiber hosts
/// execute_case and the instance's SyncNetwork *controller*; the parties
/// get their own stacks from SyncNetwork as usual.
class Stack {
 public:
  static constexpr std::size_t kSize = std::size_t{1} << 20;  // 1 MiB

  Stack() {
    page_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    base_ = ::mmap(nullptr, kSize + page_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    ensure(base_ != MAP_FAILED, "kernel batcher: fiber stack mmap failed");
    ::mprotect(base_, page_, PROT_NONE);
  }
  ~Stack() { ::munmap(base_, kSize + page_); }
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  void* sp() { return static_cast<std::uint8_t*>(base_) + page_; }

 private:
  void* base_ = nullptr;
  std::size_t page_ = 0;
};

struct RsRequest {
  std::size_t n = 0;
  std::size_t k = 0;
  const Bytes* data = nullptr;       // on the parked caller's stack/heap
  std::vector<Bytes>* out = nullptr;
};

struct MerkleRequest {
  crypto::MerkleTree::LeafList leaves;  // views kept alive by the park
  crypto::MerkleTree* out = nullptr;
};

class Batcher final : public KernelGate {
 public:
  explicit Batcher(std::vector<std::function<void()>> work) {
    insts_.reserve(work.size());
    for (std::function<void()>& fn : work) {
      auto in = std::make_unique<Inst>();
      in->fn = std::move(fn);
      in->self = this;
      insts_.push_back(std::move(in));
    }
  }

  KernelBatchStats run() {
    const std::uint64_t base_copies = net::PayloadMetrics::thread_copies();
    const std::uint64_t base_bytes =
        net::PayloadMetrics::thread_bytes_copied();
    const obs::ThreadScope base_scope = obs::thread_scope();
    KernelGateScope gate(this);
    std::size_t finished = 0;
    while (finished < insts_.size()) {
      // Sweep in instance order: every runnable instance runs until it
      // parks at a kernel call or finishes. Deterministic resume order
      // keeps wall-clock schedules reproducible (outputs don't depend on
      // it either way).
      for (const std::unique_ptr<Inst>& ip : insts_) {
        Inst& in = *ip;
        if (in.done || in.rs.has_value() || in.merkle.has_value()) continue;
        resume(in);
        if (in.done) ++finished;
      }
      if (finished < insts_.size()) {
        const bool served = flush();
        ensure(served, "kernel batcher: live instance with no request");
      }
    }
    // The per-thread PayloadMetrics pair was virtualized per instance
    // (each started from 0); leave the thread counters where an
    // uninterleaved sequential run would have: base + everything copied.
    std::uint64_t total_copies = 0;
    std::uint64_t total_bytes = 0;
    for (const std::unique_ptr<Inst>& ip : insts_) {
      total_copies += ip->copies;
      total_bytes += ip->bytes_copied;
    }
    net::PayloadMetrics::thread_set(base_copies + total_copies,
                                    base_bytes + total_bytes);
    obs::thread_scope() = base_scope;
    return stats_;
  }

  // KernelGate: record the request on the calling instance and park. The
  // scheduler fills *out from a batch flush before resuming, so returning
  // true here is always correct.
  bool rs_encode(std::size_t n, std::size_t k, const Bytes& data,
                 std::vector<Bytes>* out) override {
    Inst& in = *current_;
    in.rs = RsRequest{n, k, &data, out};
    yield(in);
    return true;
  }

  bool merkle_build(std::span<const std::span<const std::uint8_t>> leaves,
                    crypto::MerkleTree* out) override {
    Inst& in = *current_;
    in.merkle = MerkleRequest{leaves, out};
    yield(in);
    return true;
  }

 private:
  struct Inst {
    std::function<void()> fn;
    Batcher* self = nullptr;
    Stack stack;
    ucontext_t ctx{};  // entry point before start; park point after
    bool started = false;
    bool done = false;
    std::optional<RsRequest> rs;
    std::optional<MerkleRequest> merkle;
    // Virtualized per-thread PayloadMetrics pair: this instance's view of
    // the thread counters, saved at park and reinstalled at resume.
    std::uint64_t copies = 0;
    std::uint64_t bytes_copied = 0;
    // Virtualized obs::thread_scope(): a park can land mid-party-slice
    // while the instance's SyncNetwork has a tracing scope installed;
    // without save/restore the next instance would inherit (and clobber)
    // it. Starts null: an instance begins outside any span scope.
    obs::ThreadScope scope;
  };

  static void trampoline(unsigned int hi, unsigned int lo) {
    auto* in = reinterpret_cast<Inst*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    in->fn();
    in->done = true;
    in->self->yield(*in);  // never resumed
  }

  /// Suspend the current instance back to the scheduler. Runs on the
  /// instance's stack -- possibly a party-fiber stack nested inside its
  /// SyncNetwork, which is fine: the scheduler context lives on the
  /// worker's native stack, which hosts nothing else while instances run.
  void yield(Inst& in) {
    in.copies = net::PayloadMetrics::thread_copies();
    in.bytes_copied = net::PayloadMetrics::thread_bytes_copied();
    in.scope = obs::thread_scope();
    obs::thread_scope() = obs::ThreadScope{};
    ::swapcontext(&in.ctx, &sched_);
  }

  void resume(Inst& in) {
    if (!in.started) {
      in.started = true;
      ensure(::getcontext(&in.ctx) == 0, "kernel batcher: getcontext");
      in.ctx.uc_stack.ss_sp = in.stack.sp();
      in.ctx.uc_stack.ss_size = Stack::kSize;
      in.ctx.uc_link = nullptr;
      const auto p = reinterpret_cast<std::uintptr_t>(&in);
      ::makecontext(&in.ctx, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned int>(p >> 32),
                    static_cast<unsigned int>(p & 0xFFFFFFFFu));
    }
    current_ = &in;
    net::PayloadMetrics::thread_set(in.copies, in.bytes_copied);
    obs::thread_scope() = in.scope;
    ::swapcontext(&sched_, &in.ctx);
    current_ = nullptr;
  }

  /// Execute every parked request through the batch kernels and clear the
  /// requests (owners become runnable). Returns false if nothing was
  /// pending.
  bool flush() {
    KernelGateScope off(nullptr);  // batch kernels run inline, no re-entry
    std::map<std::pair<std::size_t, std::size_t>, std::vector<Inst*>> rs;
    std::vector<Inst*> merkle;
    for (const std::unique_ptr<Inst>& ip : insts_) {
      if (ip->rs.has_value()) {
        rs[{ip->rs->n, ip->rs->k}].push_back(ip.get());
      } else if (ip->merkle.has_value()) {
        merkle.push_back(ip.get());
      }
    }
    if (rs.empty() && merkle.empty()) return false;
    ++stats_.flushes;
    for (auto& [nk, group] : rs) {
      auto it = codecs_.find(nk);
      if (it == codecs_.end()) {
        it = codecs_
                 .try_emplace(nk, std::make_unique<codec::ReedSolomon>(
                                      nk.first, nk.second))
                 .first;
      }
      std::vector<const Bytes*> ptrs;
      ptrs.reserve(group.size());
      for (Inst* in : group) ptrs.push_back(in->rs->data);
      std::vector<std::vector<Bytes>> outs = it->second->encode_batch(
          std::span<const Bytes* const>(ptrs));
      for (std::size_t j = 0; j < group.size(); ++j) {
        *group[j]->rs->out = std::move(outs[j]);
        group[j]->rs.reset();
        ++stats_.rs_calls;
      }
    }
    if (!merkle.empty()) {
      std::vector<crypto::MerkleTree::LeafList> lists;
      lists.reserve(merkle.size());
      for (Inst* in : merkle) lists.push_back(in->merkle->leaves);
      std::vector<crypto::MerkleTree> trees =
          crypto::MerkleTree::build_views_batch(lists);
      for (std::size_t j = 0; j < merkle.size(); ++j) {
        *merkle[j]->merkle->out = std::move(trees[j]);
        merkle[j]->merkle.reset();
        ++stats_.merkle_calls;
      }
    }
    return true;
  }

  std::vector<std::unique_ptr<Inst>> insts_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<codec::ReedSolomon>>
      codecs_;
  ucontext_t sched_{};
  Inst* current_ = nullptr;
  KernelBatchStats stats_;
};

}  // namespace

KernelBatchStats run_batched(std::vector<std::function<void()>> work) {
  Batcher batcher(std::move(work));
  return batcher.run();
}

}  // namespace coca::engine
