#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

namespace coca::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// trace_event timestamps are microseconds; keep ns precision as decimals.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

template <class Map>
void append_kv_map(std::string& out, const char* key, const Map& m,
                   std::uint64_t scale, const char* indent) {
  out += indent;
  out += '"';
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& [name, value] : m) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\": ";
    append_u64(out, value * scale);
  }
  out += '}';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const Tracer& tracer) {
  std::string out;
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const int tracks = static_cast<int>(tracer.track_count());
  for (int track = 0; track < tracks; ++track) {
    if (!first) out += ",\n";
    first = false;
    // Thread-name metadata so chrome://tracing labels each track.
    out += "{\"ph\": \"M\", \"pid\": 0, \"tid\": ";
    append_u64(out, static_cast<std::uint64_t>(track));
    out += ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    out += json_escape(tracer.track_label(track));
    out += "\"}}";
    out += ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": ";
    append_u64(out, static_cast<std::uint64_t>(track));
    out += ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": ";
    append_u64(out, static_cast<std::uint64_t>(track));
    out += "}}";
  }
  for (int track = 0; track < tracks; ++track) {
    for (const SpanRecord& span : tracer.spans(track)) {
      out += ",\n{\"ph\": \"X\", \"pid\": 0, \"tid\": ";
      append_u64(out, static_cast<std::uint64_t>(track));
      out += ", \"ts\": ";
      append_us(out, span.start_ns);
      out += ", \"dur\": ";
      append_us(out, span.dur_ns);
      out += ", \"name\": \"";
      out += json_escape(span.name);
      out += "\", \"cat\": \"";
      out += json_escape(span.cat);
      out += "\", \"args\": {\"round\": ";
      append_u64(out, span.round);
      out += ", \"bytes\": ";
      append_u64(out, span.bytes);
      out += ", \"messages\": ";
      append_u64(out, span.messages);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string metrics_json(const Tracer& tracer, const RunMeta& meta,
                         const StatsView& stats, bool include_timing) {
  std::string out;
  out += "{\n  \"schema\": \"coca-metrics-v1\",\n";
  out += "  \"meta\": {\"protocol\": \"";
  out += json_escape(meta.protocol);
  out += "\", \"n\": ";
  append_u64(out, static_cast<std::uint64_t>(meta.n));
  out += ", \"t\": ";
  append_u64(out, static_cast<std::uint64_t>(meta.t));
  out += ", \"ell_bits\": ";
  append_u64(out, meta.ell_bits);
  out += ", \"seed\": ";
  append_u64(out, meta.seed);
  out += ", \"threads\": ";
  append_u64(out, static_cast<std::uint64_t>(meta.threads));
  out += ", \"timing\": ";
  out += include_timing ? "true" : "false";
  if (!meta.notes.empty()) {
    out += ", \"notes\": \"";
    out += json_escape(meta.notes);
    out += '"';
  }
  out += "},\n";

  out += "  \"totals\": {\"honest_bits\": ";
  append_u64(out, stats.honest_bytes * 8);
  out += ", \"honest_messages\": ";
  append_u64(out, stats.honest_messages);
  out += ", \"rounds\": ";
  append_u64(out, stats.rounds);
  out += ", \"payload_copies\": ";
  append_u64(out, stats.payload_copies);
  out += ", \"payload_bytes_copied\": ";
  append_u64(out, stats.payload_bytes_copied);
  out += "},\n";

  // Leaf-charged: sums exactly to totals.honest_bits (tier-1 asserted).
  append_kv_map(out, "phase_bits", stats.phase_breakdown, 8, "  ");
  out += ",\n";
  // Legacy inclusive accounting (a bit counts in every enclosing phase).
  append_kv_map(out, "phase_bits_inclusive", stats.inclusive_bytes, 8, "  ");
  out += ",\n";

  const MetricsRegistry merged = tracer.merged_metrics();
  append_kv_map(out, "counters", merged.counters(), 1, "  ");
  out += ",\n  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, hist] : merged.histograms()) {
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += json_escape(name);
      out += "\": {\"count\": ";
      append_u64(out, hist.count);
      out += ", \"sum\": ";
      append_u64(out, hist.sum);
      out += ", \"buckets\": [";
      bool first_bucket = true;
      for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
        if (hist.buckets[i] == 0) continue;
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += '[';
        append_u64(out, static_cast<std::uint64_t>(i));
        out += ", ";
        append_u64(out, hist.buckets[i]);
        out += ']';
      }
      out += "]}";
    }
  }
  out += "},\n  \"tracks\": [";
  {
    bool first = true;
    const int tracks = static_cast<int>(tracer.track_count());
    for (int track = 0; track < tracks; ++track) {
      std::uint64_t bytes = 0;
      std::uint64_t messages = 0;
      std::uint64_t wall_ns = 0;
      for (const SpanRecord& span : tracer.spans(track)) {
        bytes += span.bytes;
        messages += span.messages;
        wall_ns += span.parent < 0 ? span.dur_ns : 0;
      }
      if (!first) out += ',';
      first = false;
      out += "\n    {\"label\": \"";
      out += json_escape(tracer.track_label(track));
      out += "\", \"kind\": \"";
      out += json_escape(tracer.track_kind(track));
      out += "\", \"honest\": ";
      out += tracer.track_honest(track) ? "true" : "false";
      out += ", \"spans\": ";
      append_u64(out, static_cast<std::uint64_t>(tracer.spans(track).size()));
      out += ", \"bits\": ";
      append_u64(out, bytes * 8);
      out += ", \"messages\": ";
      append_u64(out, messages);
      out += ", \"unattributed_bits\": ";
      append_u64(out, tracer.unattributed_bytes(track) * 8);
      if (include_timing) {
        out += ", \"wall_ns\": ";
        append_u64(out, wall_ns);
      }
      out += '}';
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string round_table(const Tracer& tracer, const StatsView& stats) {
  std::string out;
  out += "round      bits   msgs    wall_us\n";
  const int tracks = static_cast<int>(tracer.track_count());
  for (int track = 0; track < tracks; ++track) {
    if (tracer.track_kind(track) != "engine") continue;
    for (const SpanRecord& span : tracer.spans(track)) {
      if (span.cat != "round") continue;
      char line[96];
      std::snprintf(line, sizeof(line),
                    "%5" PRIu64 " %9" PRIu64 " %6" PRIu64 " %10.1f\n",
                    span.round, span.bytes * 8, span.messages,
                    static_cast<double>(span.dur_ns) / 1000.0);
      out += line;
    }
  }
  out += "\nphase                                bits     share\n";
  std::uint64_t total = 0;
  for (const auto& [name, bytes] : stats.phase_breakdown) total += bytes;
  for (const auto& [name, bytes] : stats.phase_breakdown) {
    char line[160];
    const double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(bytes) /
                         static_cast<double>(total);
    std::snprintf(line, sizeof(line), "%-30s %12" PRIu64 "   %5.1f%%\n",
                  name.c_str(), bytes * 8, share);
    out += line;
  }
  char totals[96];
  std::snprintf(totals, sizeof(totals), "%-30s %12" PRIu64 "   100.0%%\n",
                "total", total * 8);
  out += totals;
  return out;
}

}  // namespace coca::obs
