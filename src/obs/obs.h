// Structured tracing & metrics: the observability substrate.
//
// The paper's headline claim is a communication *budget* -- O(ln +
// k n^2 log^2 n) honest bits split across distinct protocol phases -- and
// this module is what turns each term of that formula into an attributable
// measurement. A `Tracer` collects *spans* (named, nested intervals opened
// around protocol phases, engine rounds, party slices, and compute
// kernels) and *metrics* (named counters and log2 histograms), organized
// into *tracks*: one per execution context (the engine controller, every
// protocol-running party, plus a per-party slice track). Exporters in
// obs/export.h turn one run's tracer into a Chrome/Perfetto timeline, a
// flat `coca-metrics-v1` JSON, or a plain-text round table.
//
// Concurrency & determinism contract:
//  * Tracks are registered before the run starts (single-threaded setup).
//  * After registration, a track is written only by its own execution
//    context -- the engine guarantees a runner's spans/counters are touched
//    only while that runner computes -- so no locks are taken anywhere.
//  * Per-track span sequences follow protocol program order, which the
//    round engine keeps schedule-independent; everything except wall-clock
//    timestamps is therefore bit-identical between the serial and windowed
//    thread schedules (tests/test_obs.cpp pins this).
//  * With `Options::timing == false` no clock is ever read and every ns
//    field is 0: the canonical mode the determinism test compares in.
//
// Zero-overhead-when-disabled: protocols and the engine check one pointer
// (`SyncNetwork`'s tracer, or the thread-local scope below) before doing
// any tracing work. Hot compute kernels MUST use the `COCA_OBS_SPAN` macro
// -- a single thread-local load and branch when tracing is off -- and
// never call the Tracer API directly (CI greps for violations).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace coca::obs {

/// Log2 histogram: bucket i counts observations v with 2^(i-1) < v <= 2^i
/// (bucket 0 counts v == 0). Fixed size, trivially mergeable.
struct Histogram {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void observe(std::uint64_t value);
  void merge(const Histogram& other);
};

/// Named counters and histograms. One registry per track; written only by
/// the track's own execution context, merged single-threaded at export.
class MetricsRegistry {
 public:
  void count(std::string_view name, std::uint64_t delta);
  void observe(std::string_view name, std::uint64_t value);

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// One closed span. `parent` indexes the enclosing span on the same track
/// (-1 = top level); bytes/messages are *leaf-charged*: a charge lands on
/// the innermost span open at charge time only, so sums over any track are
/// exact, never double counted. Exporters reconstruct inclusive (subtree)
/// totals from the parent links.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint64_t round = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  std::int64_t parent = -1;
};

class Tracer {
 public:
  struct Options {
    /// Read the monotonic clock for span timestamps. Off = canonical mode:
    /// every ns field is 0 and the trace is schedule-deterministic.
    bool timing = true;
  };

  Tracer();
  explicit Tracer(Options options);

  bool timing_enabled() const { return options_.timing; }
  /// Monotonic ns since tracer construction (0 in canonical mode).
  std::uint64_t now_ns() const;

  /// Registers a track (pre-run, single-threaded). `kind` is a coarse
  /// grouping for exporters ("engine", "party", "slices"); `honest` marks
  /// tracks whose charges count toward the paper's BITS_l measure.
  int add_track(std::string label, std::string kind, bool honest);
  std::size_t track_count() const { return tracks_.size(); }
  const std::string& track_label(int track) const;
  const std::string& track_kind(int track) const;
  bool track_honest(int track) const;

  // --- Span lifecycle. Called only from the track's own execution context.
  void begin(int track, std::string name, std::string cat,
             std::uint64_t round);
  /// Closes the innermost open span on `track`.
  void end(int track);
  /// Charges bytes/messages to the innermost open span on `track` (or to
  /// the track's unattributed bucket when none is open).
  void charge(int track, std::uint64_t bytes, std::uint64_t messages);

  // --- Metrics (same single-writer-per-track rule).
  void count(int track, std::string_view name, std::uint64_t delta);
  void observe(int track, std::string_view name, std::uint64_t value);

  // --- Post-run queries (all contexts quiesced; open spans are ignored).
  const std::vector<SpanRecord>& spans(int track) const;
  std::uint64_t unattributed_bytes(int track) const;

  /// Bytes per span name with *inclusive* (subtree) semantics over honest
  /// tracks: a charge counts toward its span's name and every ancestor's.
  /// This is the accounting `RunStats::honest_bytes_by_phase` uses, now
  /// derived from real span data.
  std::map<std::string, std::uint64_t> inclusive_bytes_by_name() const;

  /// Merged metrics over all tracks (deterministic: tracks merge in
  /// registration order, names are sorted).
  MetricsRegistry merged_metrics() const;

  /// Per-(track, cat) span rollup, in track order then first-seen cat
  /// order: {count, bytes, messages, wall_ns}.
  struct CatRollup {
    int track = 0;
    std::string cat;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    std::uint64_t wall_ns = 0;
  };
  std::vector<CatRollup> rollup_by_cat() const;

 private:
  struct Track {
    std::string label;
    std::string kind;
    bool honest = false;
    std::vector<SpanRecord> spans;
    std::vector<std::size_t> open;  // indices of open spans, innermost last
    std::uint64_t unattributed_bytes = 0;
    MetricsRegistry metrics;
  };

  Track& track_at(int track);
  const Track& track_at(int track) const;

  Options options_;
  std::uint64_t t0_ns_ = 0;
  // unique_ptr: track addresses stay stable; the vector itself is only
  // touched during pre-run registration.
  std::vector<std::unique_ptr<Track>> tracks_;
};

/// Merged metrics across many tracers (deterministic: tracers merge in
/// list order, each contributing its own merged_metrics()). The sharded
/// engine uses this to fold per-instance tracers into one aggregate
/// registry in canonical instance order; null entries are skipped.
MetricsRegistry merged_metrics_over(std::span<const Tracer* const> tracers);

/// Thread-local tracing scope: which tracer/track (if any) the *current
/// thread's* protocol code should attribute kernel spans to. The round
/// engine installs it around every party slice; everywhere else it is
/// null and `COCA_OBS_SPAN` costs one load and one branch.
struct ThreadScope {
  Tracer* tracer = nullptr;
  int track = -1;
  std::uint64_t round = 0;
};

ThreadScope& thread_scope();

/// RAII guard behind COCA_OBS_SPAN. Snapshots the thread scope at
/// construction so a scope change mid-span cannot unbalance the stack.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    const ThreadScope& s = thread_scope();
    if (s.tracer != nullptr) {
      tracer_ = s.tracer;
      track_ = s.track;
      tracer_->begin(track_, name, cat, s.round);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(track_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  int track_ = -1;
};

}  // namespace coca::obs

// The ONLY sanctioned way to trace a hot path (compute kernels: RS
// encode/decode, Merkle build/verify). Compiles to a thread-local load and
// a branch when tracing is off; CI's macro-discipline check greps
// src/codec and src/crypto for direct Tracer usage.
#define COCA_OBS_SPAN_CONCAT2(a, b) a##b
#define COCA_OBS_SPAN_CONCAT(a, b) COCA_OBS_SPAN_CONCAT2(a, b)
#define COCA_OBS_SPAN(name, cat)                        \
  ::coca::obs::ScopedSpan COCA_OBS_SPAN_CONCAT(         \
      coca_obs_span_, __COUNTER__) {                    \
    (name), (cat)                                       \
  }
