#include "obs/obs.h"

#include <bit>
#include <chrono>

#include "util/common.h"

namespace coca::obs {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Histogram::observe(std::uint64_t value) {
  const int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  buckets[static_cast<std::size_t>(bucket)] += 1;
  count += 1;
  sum += value;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

void MetricsRegistry::count(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, delta] : other.counters_) {
    counters_[name] += delta;
  }
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
}

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options options) : options_(options) {
  if (options_.timing) t0_ns_ = monotonic_ns();
}

std::uint64_t Tracer::now_ns() const {
  if (!options_.timing) return 0;
  return monotonic_ns() - t0_ns_;
}

int Tracer::add_track(std::string label, std::string kind, bool honest) {
  auto track = std::make_unique<Track>();
  track->label = std::move(label);
  track->kind = std::move(kind);
  track->honest = honest;
  tracks_.push_back(std::move(track));
  return static_cast<int>(tracks_.size()) - 1;
}

Tracer::Track& Tracer::track_at(int track) {
  ensure(track >= 0 && static_cast<std::size_t>(track) < tracks_.size(),
         "obs::Tracer: track index out of range");
  return *tracks_[static_cast<std::size_t>(track)];
}

const Tracer::Track& Tracer::track_at(int track) const {
  ensure(track >= 0 && static_cast<std::size_t>(track) < tracks_.size(),
         "obs::Tracer: track index out of range");
  return *tracks_[static_cast<std::size_t>(track)];
}

const std::string& Tracer::track_label(int track) const {
  return track_at(track).label;
}

const std::string& Tracer::track_kind(int track) const {
  return track_at(track).kind;
}

bool Tracer::track_honest(int track) const { return track_at(track).honest; }

void Tracer::begin(int track, std::string name, std::string cat,
                   std::uint64_t round) {
  Track& t = track_at(track);
  SpanRecord span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.round = round;
  span.start_ns = now_ns();
  span.parent = t.open.empty() ? -1
                               : static_cast<std::int64_t>(t.open.back());
  t.open.push_back(t.spans.size());
  t.spans.push_back(std::move(span));
}

void Tracer::end(int track) {
  Track& t = track_at(track);
  ensure(!t.open.empty(), "obs::Tracer: end() with no open span");
  SpanRecord& span = t.spans[t.open.back()];
  span.dur_ns = now_ns() - span.start_ns;
  t.open.pop_back();
}

void Tracer::charge(int track, std::uint64_t bytes, std::uint64_t messages) {
  Track& t = track_at(track);
  if (t.open.empty()) {
    t.unattributed_bytes += bytes;
    return;
  }
  SpanRecord& span = t.spans[t.open.back()];
  span.bytes += bytes;
  span.messages += messages;
}

void Tracer::count(int track, std::string_view name, std::uint64_t delta) {
  track_at(track).metrics.count(name, delta);
}

void Tracer::observe(int track, std::string_view name, std::uint64_t value) {
  track_at(track).metrics.observe(name, value);
}

const std::vector<SpanRecord>& Tracer::spans(int track) const {
  return track_at(track).spans;
}

std::uint64_t Tracer::unattributed_bytes(int track) const {
  return track_at(track).unattributed_bytes;
}

std::map<std::string, std::uint64_t> Tracer::inclusive_bytes_by_name() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& track : tracks_) {
    if (!track->honest) continue;
    for (const SpanRecord& span : track->spans) {
      if (span.bytes == 0) continue;
      // Walk the ancestor chain so a leaf charge lands on every enclosing
      // span's name exactly once (a name repeated up the chain charges once).
      const SpanRecord* cur = &span;
      std::vector<const std::string*> seen;
      while (true) {
        bool duplicate = false;
        for (const std::string* name : seen) {
          if (*name == cur->name) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          out[cur->name] += span.bytes;
          seen.push_back(&cur->name);
        }
        if (cur->parent < 0) break;
        cur = &track->spans[static_cast<std::size_t>(cur->parent)];
      }
    }
  }
  return out;
}

MetricsRegistry Tracer::merged_metrics() const {
  MetricsRegistry merged;
  for (const auto& track : tracks_) {
    merged.merge(track->metrics);
  }
  return merged;
}

std::vector<Tracer::CatRollup> Tracer::rollup_by_cat() const {
  std::vector<CatRollup> out;
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    for (const SpanRecord& span : tracks_[ti]->spans) {
      CatRollup* row = nullptr;
      for (CatRollup& r : out) {
        if (r.track == static_cast<int>(ti) && r.cat == span.cat) {
          row = &r;
          break;
        }
      }
      if (row == nullptr) {
        out.push_back(CatRollup{static_cast<int>(ti), span.cat, 0, 0, 0, 0});
        row = &out.back();
      }
      row->count += 1;
      row->bytes += span.bytes;
      row->messages += span.messages;
      row->wall_ns += span.dur_ns;
    }
  }
  return out;
}

MetricsRegistry merged_metrics_over(std::span<const Tracer* const> tracers) {
  MetricsRegistry merged;
  for (const Tracer* tracer : tracers) {
    if (tracer != nullptr) merged.merge(tracer->merged_metrics());
  }
  return merged;
}

ThreadScope& thread_scope() {
  thread_local ThreadScope scope;
  return scope;
}

}  // namespace coca::obs
