// Bridges the engine's RunStats to the engine-agnostic obs::StatsView.
// Lives in obs/ but includes net/: only code that already links both
// layers (tools, benches, tests) should include this header.
#pragma once

#include "net/sync_network.h"
#include "obs/export.h"

namespace coca::obs {

inline StatsView stats_view(const net::RunStats& stats) {
  StatsView view;
  view.rounds = static_cast<std::uint64_t>(stats.rounds);
  view.honest_bytes = stats.honest_bytes;
  view.honest_messages = stats.honest_messages;
  view.payload_copies = stats.payload_copies;
  view.payload_bytes_copied = stats.payload_bytes_copied;
  view.phase_breakdown = stats.phase_breakdown;
  view.inclusive_bytes = stats.honest_bytes_by_phase;
  return view;
}

}  // namespace coca::obs
