// Exporters for one run's obs::Tracer: a Chrome/Perfetto trace_event
// timeline, the flat `coca-metrics-v1` JSON consumed by benches and CI,
// and a plain-text round table for terminals.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"

namespace coca::obs {

/// Identifies the run a trace belongs to; embedded verbatim in exports.
struct RunMeta {
  std::string protocol;
  int n = 0;
  int t = 0;
  std::uint64_t ell_bits = 0;
  std::uint64_t seed = 0;
  int threads = 0;  // 0/1 = serial fibers
  std::string notes;
};

/// Engine-independent view of a run's totals. obs deliberately does not
/// include net headers; obs/adapt.h builds one of these from a
/// net::RunStats for callers that link both layers.
struct StatsView {
  std::uint64_t rounds = 0;
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_messages = 0;
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_bytes_copied = 0;
  /// Leaf-charged bytes per phase; sums exactly to honest_bytes.
  std::map<std::string, std::uint64_t> phase_breakdown;
  /// Legacy inclusive accounting (a byte counts in every open phase).
  std::map<std::string, std::uint64_t> inclusive_bytes;
};

/// Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev).
/// One tid per track, complete ("X") events per span with round/bytes/
/// messages in args, plus thread_name metadata. With timing disabled all
/// timestamps are 0 -- the timeline collapses but args stay meaningful.
std::string chrome_trace_json(const Tracer& tracer);

/// Flat `coca-metrics-v1` JSON: run meta, exact totals, leaf + inclusive
/// phase breakdowns (bits), merged counters/histograms, per-track span
/// rollups. `include_timing == false` is the canonical mode: every
/// nanosecond-derived field is omitted, making the output byte-identical
/// across execution schedules for the same (protocol, inputs, seed).
std::string metrics_json(const Tracer& tracer, const RunMeta& meta,
                         const StatsView& stats, bool include_timing);

/// Plain-text per-round table (round, bytes, messages, wall-us) built from
/// the engine track's round spans, followed by a per-phase summary.
std::string round_table(const Tracer& tracer, const StatsView& stats);

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace coca::obs
