// Wire serialization with bounds-checked parsing.
//
// Every byte honest parties receive may come from a byzantine party, so the
// decoding side never trusts length fields or assumes well-formedness:
// `Reader` returns std::nullopt instead of reading out of bounds, and callers
// drop malformed messages. This is the code-level counterpart of the paper's
// "parties ignore values outside N" instructions.
//
// Encoding conventions (little-endian fixed-width integers):
//   u8/u16/u32/u64     raw little-endian
//   bytes              u32 length + raw bytes
//   bitstring          u64 bit count + packed MSB-first bytes
//   bignat             bitstring of the minimal representation
#pragma once

#include <optional>
#include <span>

#include "util/bignat.h"
#include "util/bitstring.h"
#include "util/common.h"

namespace coca {

/// Append-only message builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  void bytes(std::span<const std::uint8_t> b) {
    u32(narrow<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void bitstring(const Bitstring& b) {
    u64(b.size());
    raw(b.packed());
  }

  void bignat(const BigNat& v) { bitstring(v.to_bits(v.bit_length())); }

  Bytes take() && { return std::move(buf_); }
  const Bytes& peek() const { return buf_; }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked message parser; every getter returns nullopt on underrun
/// or malformed content and leaves no way to read past the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Bytes& data) : data_(data) {}

  std::optional<std::uint8_t> u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint16_t> u16() { return le<std::uint16_t>(2); }
  std::optional<std::uint32_t> u32() { return le<std::uint32_t>(4); }
  std::optional<std::uint64_t> u64() { return le<std::uint64_t>(8); }

  std::optional<Bytes> bytes() {
    const auto len = u32();
    if (!len || *len > remaining()) return std::nullopt;
    Bytes out(data_.begin() + narrow<std::ptrdiff_t>(pos_),
              data_.begin() + narrow<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return out;
  }

  std::optional<Bitstring> bitstring() {
    const auto nbits = u64();
    if (!nbits) return std::nullopt;
    // Guard against absurd length fields before allocating.
    if (*nbits > remaining() * std::uint64_t{8}) return std::nullopt;
    const std::size_t nbytes = ceil_div(static_cast<std::size_t>(*nbits), 8);
    if (nbytes > remaining()) return std::nullopt;
    Bytes packed(data_.begin() + narrow<std::ptrdiff_t>(pos_),
                 data_.begin() + narrow<std::ptrdiff_t>(pos_ + nbytes));
    pos_ += nbytes;
    return Bitstring::from_packed(packed, static_cast<std::size_t>(*nbits));
  }

  std::optional<BigNat> bignat() {
    const auto bits = bitstring();
    if (!bits) return std::nullopt;
    // Reject non-canonical encodings (leading zero bit) except for zero
    // itself, so byzantine parties cannot make equal values look distinct.
    if (bits->size() > 0 && !bits->bit(0)) return std::nullopt;
    return BigNat::from_bits(*bits);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  template <class T>
  std::optional<T> le(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return static_cast<T>(v);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace coca
