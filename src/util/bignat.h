// Arbitrary-precision naturals and integers (built from scratch).
//
// The paper's inputs are integers v = (-1)^sign * v_N with v_N in N of up to
// l bits, where l may be huge (the headline regime is l = Omega(kappa n
// log^2 n), i.e. hundreds of kilobits). `BigNat` is an unsigned magnitude
// (little-endian 64-bit limbs); `BigInt` adds a sign, matching the paper's
// (-1)^SIGN * v_N representation used by Pi_Z.
//
// Only the operations the protocols, examples, and benches need are provided:
// comparison, bit-length, conversion to/from BITS_l bitstrings and decimal
// strings, and basic arithmetic for workload generation.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitstring.h"
#include "util/common.h"

namespace coca {

class BigNat {
 public:
  /// Zero.
  BigNat() = default;
  /// From a machine integer.
  explicit BigNat(std::uint64_t v);

  /// Parse a base-10 string of digits.
  static BigNat from_decimal(std::string_view s);
  /// VAL(bits): the natural number an MSB-first bitstring represents.
  static BigNat from_bits(const Bitstring& bits);
  /// 2^k - 1 (the paper's "all ones" fallback value).
  static BigNat max_with_bits(std::size_t k);
  /// 2^k.
  static BigNat pow2(std::size_t k);

  /// |BITS(v)|: length of the minimal binary representation; 0 for v == 0.
  std::size_t bit_length() const;
  /// BITS_l(v): the l-bit representation. Throws if bit_length() > l.
  Bitstring to_bits(std::size_t ell) const;

  bool is_zero() const { return limbs_.empty(); }
  /// Value as u64; throws if it does not fit.
  std::uint64_t to_u64() const;

  std::strong_ordering operator<=>(const BigNat& o) const;
  bool operator==(const BigNat& o) const = default;

  BigNat operator+(const BigNat& o) const;
  /// Subtraction; throws if o > *this (naturals are not closed under -).
  BigNat operator-(const BigNat& o) const;
  BigNat operator*(const BigNat& o) const;
  BigNat operator<<(std::size_t bits) const;
  BigNat operator>>(std::size_t bits) const;

  /// Divide by a small divisor; returns quotient, sets `rem`.
  BigNat div_u32(std::uint32_t divisor, std::uint32_t& rem) const;

  std::string to_decimal() const;

  /// Little-endian limbs, no trailing zero limb. Exposed for tests/hashing.
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void trim();
  std::vector<std::uint64_t> limbs_;  // little-endian, canonical (no top zeros)
};

/// Signed arbitrary-precision integer as (-1)^negative * magnitude,
/// with the invariant that zero is never negative.
class BigInt {
 public:
  BigInt() = default;
  BigInt(BigNat magnitude, bool negative)
      : mag_(std::move(magnitude)), neg_(negative && !mag_.is_zero()) {}
  explicit BigInt(std::int64_t v);

  /// Parse base-10, optional leading '-'.
  static BigInt from_decimal(std::string_view s);

  const BigNat& magnitude() const { return mag_; }
  bool negative() const { return neg_; }
  /// The paper's SIGN in {0,1}: 1 iff negative.
  bool sign_bit() const { return neg_; }

  std::strong_ordering operator<=>(const BigInt& o) const;
  bool operator==(const BigInt& o) const = default;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator-() const { return BigInt(mag_, !neg_); }

  std::string to_decimal() const;

 private:
  BigNat mag_;
  bool neg_ = false;
};

}  // namespace coca
