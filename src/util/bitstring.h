// Fixed-length bitstrings, MSB-first: the paper's value model.
//
// The protocols in the paper manipulate l-bit representations BITS_l(v) of
// natural numbers: prefixes, blocks, and the padding operators MIN_l / MAX_l
// (append zeroes / ones). For equal-length bitstrings, numeric order of the
// represented values coincides with lexicographic bit order, which is the
// central fact the longest-common-prefix search exploits.
//
// `Bitstring` stores bits packed MSB-first within each byte; trailing unused
// bits of the final byte are kept zero so that packed bytes compare and hash
// consistently.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/common.h"

namespace coca {

class Bitstring {
 public:
  /// Empty bitstring (the paper's initial PREFIX* := empty string).
  Bitstring() = default;

  /// `n` zero bits.
  static Bitstring zeros(std::size_t n);
  /// `n` one bits.
  static Bitstring ones(std::size_t n);
  /// Parse from a string of '0'/'1' characters.
  static Bitstring from_string(std::string_view s);
  /// The `width`-bit representation BITS_width(v) of a 64-bit value.
  /// Throws if `v` does not fit in `width` bits.
  static Bitstring from_u64(std::uint64_t v, std::size_t width);
  /// Reconstruct from packed MSB-first bytes (inverse of `packed()`).
  static Bitstring from_packed(const Bytes& packed, std::size_t nbits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  /// Bit at position `i`, 0-indexed from the most significant end.
  /// (The paper's B^{i}_l(v) is 1-indexed; callers adjust.)
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i, bool v);

  void push_back(bool v);
  void append(const Bitstring& other);

  /// Bits [pos, pos+len) as a new bitstring.
  Bitstring substr(std::size_t pos, std::size_t len) const;
  /// First `len` bits.
  Bitstring prefix(std::size_t len) const { return substr(0, len); }
  /// True iff `p` is a prefix of *this.
  bool has_prefix(const Bitstring& p) const;

  /// MIN_l(prefix): lowest l-bit value with this prefix (append zeroes).
  static Bitstring min_fill(const Bitstring& prefix, std::size_t ell);
  /// MAX_l(prefix): highest l-bit value with this prefix (append ones).
  static Bitstring max_fill(const Bitstring& prefix, std::size_t ell);

  /// Length of the longest common prefix of `a` and `b`.
  static std::size_t common_prefix_len(const Bitstring& a, const Bitstring& b);

  /// Numeric comparison of VAL(a) vs VAL(b); requires a.size() == b.size()
  /// (for equal lengths this is exactly lexicographic bit order).
  static std::strong_ordering numeric_compare(const Bitstring& a,
                                              const Bitstring& b);

  /// Value of the bitstring as a 64-bit integer; throws if size() > 64.
  std::uint64_t to_u64() const;

  bool operator==(const Bitstring& other) const = default;

  /// Packed MSB-first bytes; ceil(size()/8) of them, trailing bits zero.
  const Bytes& packed() const { return bytes_; }

  /// "0101..." rendering, for diagnostics and tests.
  std::string to_string() const;

 private:
  Bytes bytes_;
  std::size_t nbits_ = 0;
};

}  // namespace coca
