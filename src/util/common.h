// Common foundation types for the coca library.
//
// coca reproduces "Communication-Optimal Convex Agreement" (Ghinea,
// Liu-Zhang, Wattenhofer; PODC'24). Everything above this header speaks in
// terms of `Bytes` payloads and throws `coca::Error` on contract violations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace coca {

/// Raw message / value payload. All wire traffic is a `Bytes`.
using Bytes = std::vector<std::uint8_t>;

/// Base error for all coca failures (contract violations, protocol aborts).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws `Error` when `cond` is false. Used for API precondition checks.
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

/// Internal invariant check. Semantically an assert that is always on:
/// a failure indicates a bug in coca itself, not bad input.
inline void ensure(bool cond, const char* msg) {
  if (!cond) throw std::logic_error(std::string("coca internal error: ") + msg);
}

/// Checked narrowing conversion (throws on value change), cf. gsl::narrow.
template <class To, class From>
To narrow(From v) {
  const To r = static_cast<To>(v);
  if (static_cast<From>(r) != v || ((r < To{}) != (v < From{}))) {
    throw Error("narrowing conversion lost information");
  }
  return r;
}

/// Ceiling division for non-negative integers.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr std::size_t floor_log2(std::size_t x) {
  std::size_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1 (returns 0 for x == 1).
constexpr std::size_t ceil_log2(std::size_t x) {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

}  // namespace coca
