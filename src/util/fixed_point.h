// Decimal fixed-point values on top of BigInt.
//
// The paper's inputs are integers "without loss of generality ... one could
// alternatively interpret the inputs being rational numbers with some
// arbitrary pre-defined precision". FixedPoint is that interpretation made
// concrete: a value is scaled_integer / 10^frac_digits, with the scale fixed
// protocol-wide so that integer order equals rational order and the CA
// protocols can run unchanged on the scaled integers.
#pragma once

#include <string>
#include <string_view>

#include "util/bignat.h"

namespace coca {

class FixedPoint {
 public:
  /// Value scaled_value / 10^frac_digits.
  FixedPoint(BigInt scaled_value, unsigned frac_digits)
      : scaled_(std::move(scaled_value)), digits_(frac_digits) {}

  /// Parses decimal notation ("-10.042"); excess fractional digits beyond
  /// `frac_digits` are rejected (precision is a protocol-wide contract, not
  /// a rounding knob).
  static FixedPoint parse(std::string_view text, unsigned frac_digits);

  const BigInt& scaled() const { return scaled_; }
  unsigned digits() const { return digits_; }

  /// Renders as decimal notation with exactly `digits()` fractional digits.
  std::string to_string() const;

  /// Comparisons require matching precision (by the protocol-wide contract).
  std::strong_ordering operator<=>(const FixedPoint& o) const {
    require(digits_ == o.digits_, "FixedPoint: precision mismatch");
    return scaled_ <=> o.scaled_;
  }
  bool operator==(const FixedPoint& o) const {
    return (*this <=> o) == std::strong_ordering::equal;
  }

 private:
  BigInt scaled_;
  unsigned digits_;
};

}  // namespace coca
