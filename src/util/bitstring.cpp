#include "util/bitstring.h"

#include <algorithm>

namespace coca {
namespace {

// Copies `n` bits from `src` starting at bit offset `src_off` into `dst`
// starting at bit offset `dst_off`. Bit offsets are MSB-first. Destination
// must be zeroed in the target range. Optimized for the byte-gather case.
void copy_bits(std::uint8_t* dst, std::size_t dst_off, const std::uint8_t* src,
               std::size_t src_off, std::size_t n) {
  if (n == 0) return;
  // Align destination to a byte boundary bit-by-bit.
  while (n > 0 && dst_off % 8 != 0) {
    const bool b = (src[src_off / 8] >> (7 - src_off % 8)) & 1U;
    if (b) dst[dst_off / 8] |= static_cast<std::uint8_t>(1U << (7 - dst_off % 8));
    ++dst_off;
    ++src_off;
    --n;
  }
  // Whole destination bytes: gather 8 source bits via a 16-bit window.
  const std::size_t shift = src_off % 8;
  while (n >= 8) {
    const std::size_t sb = src_off / 8;
    std::uint16_t window = static_cast<std::uint16_t>(src[sb]) << 8;
    // The second byte may lie one past the last bit we need; it exists
    // whenever shift > 0 because src holds at least src_off + 8 bits.
    if (shift != 0) window |= src[sb + 1];
    dst[dst_off / 8] = static_cast<std::uint8_t>(window >> (8 - shift));
    dst_off += 8;
    src_off += 8;
    n -= 8;
  }
  // Tail bits.
  while (n > 0) {
    const bool b = (src[src_off / 8] >> (7 - src_off % 8)) & 1U;
    if (b) dst[dst_off / 8] |= static_cast<std::uint8_t>(1U << (7 - dst_off % 8));
    ++dst_off;
    ++src_off;
    --n;
  }
}

}  // namespace

Bitstring Bitstring::zeros(std::size_t n) {
  Bitstring b;
  b.nbits_ = n;
  b.bytes_.assign(ceil_div(n, 8), 0);
  return b;
}

Bitstring Bitstring::ones(std::size_t n) {
  Bitstring b;
  b.nbits_ = n;
  b.bytes_.assign(ceil_div(n, 8), 0xFF);
  if (n % 8 != 0 && !b.bytes_.empty()) {
    b.bytes_.back() = static_cast<std::uint8_t>(0xFF << (8 - n % 8));
  }
  return b;
}

Bitstring Bitstring::from_string(std::string_view s) {
  Bitstring b = zeros(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    require(s[i] == '0' || s[i] == '1', "Bitstring::from_string: bad char");
    if (s[i] == '1') b.set_bit(i, true);
  }
  return b;
}

Bitstring Bitstring::from_u64(std::uint64_t v, std::size_t width) {
  require(width >= 64 || v < (std::uint64_t{1} << width),
          "Bitstring::from_u64: value does not fit in width");
  Bitstring b = zeros(width);
  for (std::size_t i = 0; i < width && i < 64; ++i) {
    if ((v >> i) & 1U) b.set_bit(width - 1 - i, true);
  }
  return b;
}

Bitstring Bitstring::from_packed(const Bytes& packed, std::size_t nbits) {
  require(packed.size() == ceil_div(nbits, 8),
          "Bitstring::from_packed: size mismatch");
  Bitstring b;
  b.nbits_ = nbits;
  b.bytes_ = packed;
  // Enforce the trailing-bits-zero invariant (wire data may violate it).
  if (nbits % 8 != 0 && !b.bytes_.empty()) {
    b.bytes_.back() &= static_cast<std::uint8_t>(0xFF << (8 - nbits % 8));
  }
  return b;
}

bool Bitstring::bit(std::size_t i) const {
  require(i < nbits_, "Bitstring::bit: index out of range");
  return (bytes_[i / 8] >> (7 - i % 8)) & 1U;
}

void Bitstring::set_bit(std::size_t i, bool v) {
  require(i < nbits_, "Bitstring::set_bit: index out of range");
  const std::uint8_t mask = static_cast<std::uint8_t>(1U << (7 - i % 8));
  if (v) {
    bytes_[i / 8] |= mask;
  } else {
    bytes_[i / 8] &= static_cast<std::uint8_t>(~mask);
  }
}

void Bitstring::push_back(bool v) {
  if (nbits_ % 8 == 0) bytes_.push_back(0);
  ++nbits_;
  if (v) set_bit(nbits_ - 1, true);
}

void Bitstring::append(const Bitstring& other) {
  if (other.nbits_ == 0) return;
  const std::size_t new_bits = nbits_ + other.nbits_;
  bytes_.resize(ceil_div(new_bits, 8), 0);
  copy_bits(bytes_.data(), nbits_, other.bytes_.data(), 0, other.nbits_);
  nbits_ = new_bits;
}

Bitstring Bitstring::substr(std::size_t pos, std::size_t len) const {
  require(pos <= nbits_ && len <= nbits_ - pos,
          "Bitstring::substr: range out of bounds");
  Bitstring out = zeros(len);
  if (len > 0) copy_bits(out.bytes_.data(), 0, bytes_.data(), pos, len);
  return out;
}

bool Bitstring::has_prefix(const Bitstring& p) const {
  if (p.nbits_ > nbits_) return false;
  // Compare whole bytes first, then the ragged tail.
  const std::size_t full = p.nbits_ / 8;
  if (!std::equal(p.bytes_.begin(), p.bytes_.begin() + narrow<std::ptrdiff_t>(full),
                  bytes_.begin())) {
    return false;
  }
  for (std::size_t i = full * 8; i < p.nbits_; ++i) {
    if (bit(i) != p.bit(i)) return false;
  }
  return true;
}

Bitstring Bitstring::min_fill(const Bitstring& prefix, std::size_t ell) {
  require(prefix.nbits_ <= ell, "Bitstring::min_fill: prefix longer than ell");
  Bitstring out = prefix;
  out.append(zeros(ell - prefix.nbits_));
  return out;
}

Bitstring Bitstring::max_fill(const Bitstring& prefix, std::size_t ell) {
  require(prefix.nbits_ <= ell, "Bitstring::max_fill: prefix longer than ell");
  Bitstring out = prefix;
  out.append(ones(ell - prefix.nbits_));
  return out;
}

std::size_t Bitstring::common_prefix_len(const Bitstring& a,
                                         const Bitstring& b) {
  const std::size_t max = std::min(a.nbits_, b.nbits_);
  // Byte-wise scan for the first differing byte.
  const std::size_t full = max / 8;
  std::size_t i = 0;
  while (i < full && a.bytes_[i] == b.bytes_[i]) ++i;
  std::size_t bitpos = i * 8;
  while (bitpos < max && a.bit(bitpos) == b.bit(bitpos)) ++bitpos;
  return bitpos;
}

std::strong_ordering Bitstring::numeric_compare(const Bitstring& a,
                                                const Bitstring& b) {
  require(a.nbits_ == b.nbits_,
          "Bitstring::numeric_compare: lengths differ (VAL comparison is "
          "defined for equal-length representations)");
  // Equal lengths: numeric order == lexicographic order == packed-byte order
  // (trailing bits are zero on both sides).
  const int c = std::char_traits<char>::compare(
      reinterpret_cast<const char*>(a.bytes_.data()),
      reinterpret_cast<const char*>(b.bytes_.data()), a.bytes_.size());
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::uint64_t Bitstring::to_u64() const {
  require(nbits_ <= 64, "Bitstring::to_u64: more than 64 bits");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nbits_; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(bit(i));
  }
  return v;
}

std::string Bitstring::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

}  // namespace coca
