#include "util/fixed_point.h"

namespace coca {

FixedPoint FixedPoint::parse(std::string_view text, unsigned frac_digits) {
  require(!text.empty(), "FixedPoint::parse: empty string");
  bool negative = false;
  if (text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  const auto dot = text.find('.');
  std::string int_part(dot == std::string_view::npos ? text
                                                     : text.substr(0, dot));
  std::string frac_part(dot == std::string_view::npos
                            ? std::string_view{}
                            : text.substr(dot + 1));
  require(!int_part.empty() || !frac_part.empty(),
          "FixedPoint::parse: no digits");
  require(frac_part.size() <= frac_digits,
          "FixedPoint::parse: more fractional digits than the precision");
  frac_part.append(frac_digits - frac_part.size(), '0');
  if (int_part.empty()) int_part = "0";
  const std::string all = int_part + frac_part;
  return FixedPoint(BigInt(BigNat::from_decimal(all), negative), frac_digits);
}

std::string FixedPoint::to_string() const {
  std::string digits = scaled_.magnitude().to_decimal();
  if (digits.size() <= digits_) {
    digits.insert(0, digits_ - digits.size() + 1, '0');
  }
  std::string out;
  if (scaled_.negative()) out.push_back('-');
  out.append(digits, 0, digits.size() - digits_);
  if (digits_ > 0) {
    out.push_back('.');
    out.append(digits, digits.size() - digits_, digits_);
  }
  return out;
}

}  // namespace coca
