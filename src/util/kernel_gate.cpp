#include "util/kernel_gate.h"

namespace coca {

KernelGate*& thread_kernel_gate() {
  thread_local KernelGate* gate = nullptr;
  return gate;
}

}  // namespace coca
