// Deterministic PRNG (xoshiro256**) for workload generation and adversaries.
//
// The protocols themselves are deterministic; randomness appears only in
// tests, byzantine strategies, and benchmark workload generators, where
// reproducibility across runs matters more than cryptographic quality.
#pragma once

#include <cstdint>

#include "util/bignat.h"
#include "util/common.h"

namespace coca {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      s = mix64(x);
    }
  }

  /// splitmix64 finalizer: the bijective avalanche step used both to expand
  /// seeds into xoshiro state and to derive independent stream seeds.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Seed of child stream `stream_id` of `seed`. Both words pass through the
  /// splitmix64 finalizer before being combined, so related parent seeds and
  /// consecutive stream ids still yield uncorrelated child streams. This is
  /// the contract the parallel round engine relies on for per-party RNG
  /// streams: the stream depends only on (root seed, stream id), never on
  /// draw order or execution interleaving. Pinned by tests/test_rng.cpp --
  /// changing this function is a break in reproducibility, not a refactor.
  static constexpr std::uint64_t derive_stream_seed(std::uint64_t seed,
                                                    std::uint64_t stream_id) {
    const std::uint64_t a = mix64(seed + 0x9E3779B97F4A7C15ULL);
    const std::uint64_t b = mix64(stream_id + 0xD1B54A32D192ED03ULL);
    return mix64(a ^ (b + 0x8BB84B93962EACC9ULL));
  }

  /// Child stream `stream_id` of `seed` (see `derive_stream_seed`).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id) {
    return Rng(derive_stream_seed(seed, stream_id));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) for bound >= 1, via rejection sampling.
  std::uint64_t below(std::uint64_t bound) {
    require(bound > 0, "Rng::below: bound must be positive");
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % bound;
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
    return out;
  }

  /// Uniform bitstring of exactly `nbits` bits.
  Bitstring bits(std::size_t nbits) {
    return Bitstring::from_packed(bytes(ceil_div(nbits, 8)), nbits);
  }

  /// Uniform BigNat with at most `nbits` bits.
  BigNat nat_below_pow2(std::size_t nbits) {
    return BigNat::from_bits(bits(nbits));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace coca
