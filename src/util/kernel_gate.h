// Thread-local compute-kernel gate: the seam through which a co-scheduler
// batches kernel work across concurrent protocol instances.
//
// The hot kernels (Reed-Solomon encode, Merkle MT.BUILD) pay a per-call
// setup cost -- GF(2^16) MulBy table builds, hash-context construction --
// that the batch entry points (`codec::axpy_be_batch`,
// `ReedSolomon::encode_batch`, `MerkleTree::build_views_batch`) amortize
// across many invocations. A single protocol instance can't use them: it
// reaches each kernel call one at a time, mid-protocol. The gate closes
// that gap: kernel entry points consult the calling thread's gate first,
// and a co-scheduler (the engine's kernel batcher, engine/kernel_batch.h)
// that runs K instances as cooperative fibers on one thread installs a
// gate that *parks* the calling instance at the kernel call, gathers the
// parked requests of its sibling instances, executes them through the
// batch entry points, and resumes everyone with their results.
//
// Contract:
//  * A null thread gate (the default everywhere) means every kernel call
//    runs inline, exactly as before -- one branch of overhead.
//  * A gate returning false declines the request (e.g. payload below the
//    wide-kernel threshold); the caller runs inline.
//  * A gate returning true filled `*out` with bytes bit-identical to the
//    inline computation (the batch entry points guarantee this; tier-1
//    differential tests assert it).
//  * The gate may suspend the calling execution context (that is the
//    point); callers must tolerate arbitrary suspension at the call, which
//    protocol code does by construction (it already suspends at every
//    advance()).
//
// This lives in util (not codec/crypto) so both kernel libraries can
// consult it without a dependency cycle; `crypto::MerkleTree` is forward
// declared and only ever touched through a pointer here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace coca::crypto {
class MerkleTree;
}

namespace coca {

class KernelGate {
 public:
  virtual ~KernelGate() = default;

  /// Batched ReedSolomon(n, k).encode(data) -> *out. False = declined.
  virtual bool rs_encode(std::size_t n, std::size_t k, const Bytes& data,
                         std::vector<Bytes>* out) = 0;

  /// Batched MerkleTree::build_views(leaves) -> *out. False = declined.
  /// The leaf views must stay valid until the call returns (they live on
  /// the suspended caller's stack, which the co-scheduler keeps alive).
  virtual bool merkle_build(
      std::span<const std::span<const std::uint8_t>> leaves,
      crypto::MerkleTree* out) = 0;
};

/// The calling thread's gate; null by default.
KernelGate*& thread_kernel_gate();

/// RAII install/restore of the thread gate.
class KernelGateScope {
 public:
  explicit KernelGateScope(KernelGate* gate) : prev_(thread_kernel_gate()) {
    thread_kernel_gate() = gate;
  }
  ~KernelGateScope() { thread_kernel_gate() = prev_; }
  KernelGateScope(const KernelGateScope&) = delete;
  KernelGateScope& operator=(const KernelGateScope&) = delete;

 private:
  KernelGate* prev_;
};

}  // namespace coca
