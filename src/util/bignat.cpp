#include "util/bignat.h"

#include <algorithm>

namespace coca {

namespace {
// 64x64 -> 128 multiply helper (GCC/Clang builtin type).
__extension__ typedef unsigned __int128 U128;
}  // namespace

BigNat::BigNat(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigNat::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNat BigNat::from_decimal(std::string_view s) {
  require(!s.empty(), "BigNat::from_decimal: empty string");
  BigNat r;
  const BigNat ten(10);
  for (const char c : s) {
    require(c >= '0' && c <= '9', "BigNat::from_decimal: bad digit");
    r = r * ten + BigNat(static_cast<std::uint64_t>(c - '0'));
  }
  return r;
}

BigNat BigNat::from_bits(const Bitstring& bits) {
  BigNat r;
  const std::size_t n = bits.size();
  if (n == 0) return r;
  // The packed MSB-first bytes, read as one big-endian integer, equal
  // VAL(bits) << pad (the trailing pad bits of the last byte are zero).
  // Gather limbs eight bytes at a time from the byte tail, then undo the
  // shift -- O(n/64) instead of a masked store per bit.
  const Bytes& p = bits.packed();
  const std::size_t nbytes = p.size();
  const std::size_t pad = (8 - n % 8) % 8;
  std::vector<std::uint64_t> tmp(ceil_div(nbytes, 8) + 1, 0);
  std::size_t limb = 0;
  std::size_t end = nbytes;  // one past the least-significant unconsumed byte
  for (; end >= 8; end -= 8) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < 8; ++b) v = (v << 8) | p[end - 8 + b];
    tmp[limb++] = v;
  }
  if (end > 0) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < end; ++b) v = (v << 8) | p[b];
    tmp[limb] = v;
  }
  if (pad != 0) {
    for (std::size_t i = 0; i + 1 < tmp.size(); ++i) {
      tmp[i] = (tmp[i] >> pad) | (tmp[i + 1] << (64 - pad));
    }
    tmp.back() >>= pad;
  }
  r.limbs_.assign(tmp.begin(),
                  tmp.begin() + narrow<std::ptrdiff_t>(ceil_div(n, 64)));
  r.trim();
  return r;
}

BigNat BigNat::max_with_bits(std::size_t k) {
  BigNat r;
  if (k == 0) return r;
  r.limbs_.assign(ceil_div(k, 64), ~std::uint64_t{0});
  if (k % 64 != 0) {
    r.limbs_.back() = (std::uint64_t{1} << (k % 64)) - 1;
  }
  return r;
}

BigNat BigNat::pow2(std::size_t k) {
  BigNat r;
  r.limbs_.assign(k / 64 + 1, 0);
  r.limbs_.back() = std::uint64_t{1} << (k % 64);
  return r;
}

std::size_t BigNat::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint64_t top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

Bitstring BigNat::to_bits(std::size_t ell) const {
  require(bit_length() <= ell, "BigNat::to_bits: value too large for ell bits");
  // Inverse of from_bits: emit value << pad as big-endian packed bytes,
  // eight at a time per limb (see from_bits for the layout argument).
  const std::size_t nbytes = ceil_div(ell, 8);
  const std::size_t pad = (8 - ell % 8) % 8;
  std::vector<std::uint64_t> tmp(ceil_div(nbytes, 8), 0);
  std::copy(limbs_.begin(), limbs_.end(), tmp.begin());
  if (pad != 0) {
    for (std::size_t i = tmp.size(); i-- > 0;) {
      const std::uint64_t lo = i > 0 ? tmp[i - 1] : 0;
      tmp[i] = (tmp[i] << pad) | (lo >> (64 - pad));
    }
  }
  Bytes packed(nbytes, 0);
  std::size_t j = nbytes;  // next byte to write, moving toward the front
  std::size_t limb = 0;
  for (; j >= 8; j -= 8, ++limb) {
    std::uint64_t v = tmp[limb];
    for (std::size_t b = 0; b < 8; ++b) {
      packed[j - 1 - b] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  if (j > 0) {
    std::uint64_t v = tmp[limb];
    while (j > 0) {
      packed[--j] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return Bitstring::from_packed(packed, ell);
}

std::uint64_t BigNat::to_u64() const {
  require(limbs_.size() <= 1, "BigNat::to_u64: value exceeds 64 bits");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::strong_ordering BigNat::operator<=>(const BigNat& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? std::strong_ordering::less
                                           : std::strong_ordering::greater;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) {
      return limbs_[i] < o.limbs_[i] ? std::strong_ordering::less
                                     : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

BigNat BigNat::operator+(const BigNat& o) const {
  BigNat r;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  r.limbs_.assign(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < o.limbs_.size() ? o.limbs_[i] : 0;
    const std::uint64_t s = a + b;
    const std::uint64_t s2 = s + carry;
    carry = static_cast<std::uint64_t>(s < a) +
            static_cast<std::uint64_t>(s2 < s);
    r.limbs_[i] = s2;
  }
  r.limbs_[n] = carry;
  r.trim();
  return r;
}

BigNat BigNat::operator-(const BigNat& o) const {
  require(*this >= o, "BigNat::operator-: would underflow");
  BigNat r;
  r.limbs_.assign(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < o.limbs_.size() ? o.limbs_[i] : 0;
    const std::uint64_t d = limbs_[i] - b;
    const std::uint64_t d2 = d - borrow;
    borrow = static_cast<std::uint64_t>(limbs_[i] < b) +
             static_cast<std::uint64_t>(d < borrow);
    r.limbs_[i] = d2;
  }
  ensure(borrow == 0, "BigNat subtraction borrow after compare");
  r.trim();
  return r;
}

BigNat BigNat::operator*(const BigNat& o) const {
  if (is_zero() || o.is_zero()) return {};
  BigNat r;
  r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const U128 cur = static_cast<U128>(limbs_[i]) * o.limbs_[j] +
                       r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r.limbs_[i + o.limbs_.size()] += carry;
  }
  r.trim();
  return r;
}

BigNat BigNat::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigNat r;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  r.trim();
  return r;
}

BigNat BigNat::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  BigNat r;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      r.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  r.trim();
  return r;
}

BigNat BigNat::div_u32(std::uint32_t divisor, std::uint32_t& rem) const {
  require(divisor != 0, "BigNat::div_u32: division by zero");
  BigNat q;
  q.limbs_.assign(limbs_.size(), 0);
  std::uint64_t r = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    // Process the limb as two 32-bit halves so the dividend fits in 64 bits.
    const std::uint64_t hi = (r << 32) | (limbs_[i] >> 32);
    const std::uint64_t qhi = hi / divisor;
    r = hi % divisor;
    const std::uint64_t lo = (r << 32) | (limbs_[i] & 0xFFFFFFFFULL);
    const std::uint64_t qlo = lo / divisor;
    r = lo % divisor;
    q.limbs_[i] = (qhi << 32) | qlo;
  }
  rem = static_cast<std::uint32_t>(r);
  q.trim();
  return q;
}

std::string BigNat::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigNat cur = *this;
  while (!cur.is_zero()) {
    std::uint32_t rem = 0;
    cur = cur.div_u32(1'000'000'000U, rem);
    // 9 digits per step, zero-padded except for the most significant group.
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (cur.is_zero() && rem == 0) break;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BigInt::BigInt(std::int64_t v)
    : mag_(v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1
                 : static_cast<std::uint64_t>(v)),
      neg_(v < 0) {}

BigInt BigInt::from_decimal(std::string_view s) {
  require(!s.empty(), "BigInt::from_decimal: empty string");
  bool neg = false;
  if (s.front() == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  return BigInt(BigNat::from_decimal(s), neg);
}

std::strong_ordering BigInt::operator<=>(const BigInt& o) const {
  if (neg_ != o.neg_) {
    return neg_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const auto mag_cmp = mag_ <=> o.mag_;
  if (!neg_) return mag_cmp;
  // Both negative: larger magnitude is smaller.
  if (mag_cmp == std::strong_ordering::less) return std::strong_ordering::greater;
  if (mag_cmp == std::strong_ordering::greater) return std::strong_ordering::less;
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (neg_ == o.neg_) return BigInt(mag_ + o.mag_, neg_);
  if (mag_ >= o.mag_) return BigInt(mag_ - o.mag_, neg_);
  return BigInt(o.mag_ - mag_, o.neg_);
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

std::string BigInt::to_decimal() const {
  return neg_ ? "-" + mag_.to_decimal() : mag_.to_decimal();
}

}  // namespace coca
