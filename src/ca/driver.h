// Simulation driver: runs a whole CA protocol over a SyncNetwork with a
// configurable corruption pattern, and checks the paper's three properties.
//
// Used by the tests (property sweeps), the examples, and every protocol
// bench; keeping it in the library means all three measure the exact same
// execution path.
#pragma once

#include <optional>
#include <vector>

#include "adversary/spec.h"
#include "ca/convex_agreement.h"

namespace coca::obs {
class Tracer;
}

namespace coca::ca {

struct Corruption {
  int id = 0;
  adv::Kind kind = adv::Kind::kSilent;
};

struct SimConfig {
  int n = 4;
  int t = 1;
  /// Inputs indexed by party id; entries of corrupted parties are ignored
  /// (except that extreme/split-brain corruptions derive their adversarial
  /// inputs from `extreme_low` / `extreme_high` below).
  std::vector<BigInt> inputs;
  std::vector<Corruption> corruptions;
  /// Adversarial inputs for protocol-running corruptions.
  BigInt extreme_low = BigInt(-1'000'000'000);
  BigInt extreme_high = BigInt(1'000'000'000);
  std::size_t max_rounds = net::SyncNetwork::kDefaultMaxRounds;
  /// Round-slice schedule: 0 = auto (COCA_THREADS env, default serial),
  /// k >= 1 = at most k parties computing concurrently. Transcripts and
  /// metered bits are schedule-independent (see net::ExecPolicy).
  int threads = 0;
  /// Optional canonical message-transcript sink (must outlive the call).
  net::Transcript* transcript = nullptr;
  /// Optional observability tracer (fresh per run, must outlive the call);
  /// see SyncNetwork::set_tracer.
  obs::Tracer* tracer = nullptr;
};

struct SimResult {
  /// Outputs indexed by party id; engaged exactly for honest parties.
  std::vector<std::optional<BigInt>> outputs;
  net::RunStats stats;

  /// Agreement (Definition 1): all honest outputs equal.
  bool agreement() const;
  /// Convex Validity: honest outputs lie in [min, max] of `honest_inputs`
  /// (the inputs of the parties that produced outputs).
  bool convex_validity(const std::vector<BigInt>& inputs_by_id) const;
};

/// Runs `protocol` under `config`; throws on protocol errors or round-limit.
SimResult run_simulation(const CAProtocol& protocol, const SimConfig& config);

}  // namespace coca::ca
