#include "ca/vector_ca.h"

namespace coca::ca {

std::vector<BigInt> VectorCA::run(net::PartyContext& ctx,
                                  const std::vector<BigInt>& input) const {
  require(!input.empty(), "VectorCA: dimension must be positive");
  auto phase = ctx.phase("VectorCA");
  std::vector<BigInt> out;
  out.reserve(input.size());
  // One scalar instance per coordinate, sequentially: all honest parties
  // share d, so the round schedule stays aligned.
  for (const BigInt& coordinate : input) {
    out.push_back(scalar_->run(ctx, coordinate));
  }
  return out;
}

}  // namespace coca::ca
