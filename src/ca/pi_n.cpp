#include "ca/pi_n.h"

namespace coca::ca {

BigNat PiN::run(net::PartyContext& ctx, const BigNat& v_in) const {
  const std::size_t n = static_cast<std::size_t>(ctx.n());
  const std::size_t n2 = n * n;
  auto phase = ctx.phase("PiN");

  // Line 1: agree on the length regime.
  const bool long_regime =
      kit_.binary->run(ctx, v_in.bit_length() > n2);

  if (!long_regime) {
    // Lines 3-7: short regime. Some honest party has at most n^2 bits, so
    // 2^{n^2}-1 is valid for anyone longer; then find the smallest power of
    // two no honest party exceeds (guaranteed by BA Validity at the last
    // iteration, since every value now fits in n^2 <= 2^{ceil log n^2} bits).
    BigNat v = v_in.bit_length() > n2 ? BigNat::max_with_bits(n2) : v_in;
    const std::size_t last = ceil_log2(std::max<std::size_t>(n2, 2));
    for (std::size_t i = 0; i <= last; ++i) {
      const std::size_t two_i = std::size_t{1} << i;
      const bool too_long = kit_.binary->run(ctx, v.bit_length() > two_i);
      if (!too_long) {
        const std::size_t ell_est = two_i;
        if (v.bit_length() > ell_est) v = BigNat::max_with_bits(ell_est);
        return BigNat::from_bits(fixed_.run(ctx, ell_est, v.to_bits(ell_est)));
      }
    }
    // Unreachable with t' <= t corruptions (the last iteration's BA has all
    // honest inputs 0); a deterministic fallback keeps harsher runs defined.
    const std::size_t ell_est = std::size_t{1} << last;
    v = BigNat::max_with_bits(ell_est);
    return BigNat::from_bits(fixed_.run(ctx, ell_est, v.to_bits(ell_est)));
  }

  // Lines 9-11: long regime. Agree on the block size, pad, and run the
  // block-search protocol.
  const HighCostCA high_cost;
  const BigNat block_size =
      high_cost.run(ctx, BigNat(ceil_div(v_in.bit_length(), n2)));
  // Block sizes are ceil(l/n^2) for honest l, so the agreed value fits in a
  // machine word for any realizable input (validity keeps it in range).
  const std::size_t ell_est =
      static_cast<std::size_t>(block_size.to_u64()) * n2;
  if (ell_est == 0) {
    // BLOCKSIZE' = 0 implies some honest party held the empty value, so 0
    // is valid; the branch is agreed because BLOCKSIZE' is agreed.
    return BigNat(0);
  }
  // The paper's line 10 replaces v when |BITS(v)| >= l_EST; we replace only
  // when strictly longer -- a value of exactly l_EST bits already fits, and
  // replacing it by 2^{l_EST}-1 could leave the honest range.
  const BigNat v = v_in.bit_length() > ell_est ? BigNat::max_with_bits(ell_est)
                                               : v_in;
  return BigNat::from_bits(
      fixed_blocks_.run(ctx, ell_est, v.to_bits(ell_est)));
}

}  // namespace coca::ca
