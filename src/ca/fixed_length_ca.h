// FixedLengthCA (Section 3, Theorem 2): CA for l-bit inputs in N with
// publicly known l.
//
// Composition of the three subprotocols:
//   1. FindPrefix agrees on PREFIX* and equips each party with valid values
//      v (extending PREFIX*) and v_bot (the divergence witness).
//   2. If |PREFIX*| = l every party already holds the same valid v: output.
//   3. Otherwise AddLastBit extends PREFIX* to i*+1 bits, after which t+1
//      honest witnesses v_bot provably diverge from it, and GetOutput
//      resolves the final value.
//
// Cost (Theorem 2): O(l n + kappa n^2 log n log l) + O(log l) BITS_k(Pi_BA)
// bits and O(log l) ROUNDS(Pi_BA) rounds -- the paper's headline O(l n) for
// l in poly(n).
#pragma once

#include "ba/long_ba_plus.h"
#include "ca/find_prefix.h"
#include "ca/get_output.h"

namespace coca::ca {

class FixedLengthCA {
 public:
  explicit FixedLengthCA(ba::BAKit kit) : kit_(kit), lba_plus_(kit) {}

  /// Joins with a valid `ell`-bit value; `ell` must be common knowledge.
  /// Returns the agreed `ell`-bit value inside the honest inputs' range.
  Bitstring run(net::PartyContext& ctx, std::size_t ell, Bitstring v_in) const;

 private:
  ba::BAKit kit_;
  ba::LongBAPlus lba_plus_;
};

}  // namespace coca::ca
