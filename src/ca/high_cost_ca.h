// HighCostCA (Appendix A.4, Theorem 3): O(l n^3) Convex Agreement.
//
// The paper's adaptation of the Median Validity protocol of
// [Stolz-Wattenhofer, OPODIS'15] (a king-protocol variant in the style of
// Berman-Garay-Perry): a setup stage computes per-party trusted intervals
// that provably lie inside the honest inputs' range, then t+1 king phases
// drive the parties to agreement on a value inside some honest interval.
//
// Used by the main protocol in two places where inputs are short enough
// that cubic communication is affordable: agreeing on one block in
// AddLastBlock (Section 4) and on the block size in Pi_N (Section 5).
// Standalone, it doubles as the "existing CA protocol" baseline in the
// benchmarks.
//
// Values live in N (arbitrary precision); messages that do not parse as
// naturals are ignored, implementing the paper's "parties may ignore any
// values outside N".
#pragma once

#include "net/sync_network.h"
#include "util/bignat.h"

namespace coca::ca {

class HighCostCA {
 public:
  /// Joins with input in N; returns the agreed value, which lies in the
  /// convex hull (range) of the honest parties' inputs.
  BigNat run(net::PartyContext& ctx, const BigNat& input) const;
};

}  // namespace coca::ca
