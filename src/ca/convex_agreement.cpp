#include "ca/convex_agreement.h"

#include "ca/high_cost_ca.h"

namespace coca::ca {

BigInt HighCostCAProtocol::run(net::PartyContext& ctx,
                               const BigInt& input) const {
  // Sign handling as in Pi_Z (Section 6); the magnitude round is the cubic
  // protocol itself.
  const bool sign_out = kit_.binary->run(ctx, input.sign_bit());
  const BigNat magnitude =
      sign_out == input.sign_bit() ? input.magnitude() : BigNat(0);
  const HighCostCA high_cost;
  return BigInt(high_cost.run(ctx, magnitude), sign_out);
}

}  // namespace coca::ca
