#include "ca/broadcast_ca.h"

#include <algorithm>

#include "util/wire.h"

namespace coca::ca {

namespace {

Bytes encode_int(const BigInt& v) {
  Writer w;
  w.u8(v.sign_bit() ? 1 : 0);
  w.bignat(v.magnitude());
  return std::move(w).take();
}

std::optional<BigInt> decode_int(const Bytes& raw) {
  Reader r(raw);
  const auto sign = r.u8();
  if (!sign || *sign > 1) return std::nullopt;
  auto mag = r.bignat();
  if (!mag || !r.at_end()) return std::nullopt;
  return BigInt(std::move(*mag), *sign == 1);
}

}  // namespace

BigInt BroadcastTrimCA::run(net::PartyContext& ctx, const BigInt& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  auto phase = ctx.phase("BroadcastTrimCA");

  // One extension broadcast per sender: the sender distributes its value,
  // then everyone joins Pi_lBA+ with whatever they received. An honest
  // sender's value is every honest party's input to Pi_lBA+, so BA Validity
  // turns this into a broadcast; for byzantine senders any agreed value (or
  // bottom) is acceptable.
  const net::Payload mine(encode_int(input));  // shared across all sends
  std::vector<BigInt> view;
  for (int sender = 0; sender < n; ++sender) {
    if (ctx.id() == sender) ctx.send_all(mine);
    net::Payload received;  // view of the sender's buffer, no copy
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.from == sender) received = e.payload;
    }
    const ba::MaybeBytes agreed = lba_plus_.run(ctx, received);
    if (!agreed) continue;
    if (auto value = decode_int(*agreed)) view.push_back(std::move(*value));
  }

  // Identical views across honest parties (every entry is an agreed value).
  // Sort, trim t from each end, take the median of the rest: with at least
  // n - t honest entries, position p in [t, |view|-1-t] is bracketed by
  // honest values.
  std::sort(view.begin(), view.end());
  const int sz = narrow<int>(view.size());
  ensure(sz > 2 * t, "BroadcastTrimCA: too few broadcast values survived");
  return view[static_cast<std::size_t>((sz - 1) / 2)];
}

}  // namespace coca::ca
