// FixedLengthCABlocks (Section 4, Theorem 4): CA for very long l-bit inputs
// (l a multiple of n^2, typically l >= n^2), round-efficient.
//
// Identical composition to FixedLengthCA, but the prefix search runs over
// n^2 blocks of l/n^2 bits (O(log n) Pi_lBA+ iterations instead of
// O(log l)), and the one-step extension agrees on a whole block via the
// cubic-cost HighCostCA -- affordable because a block has only l/n^2 bits,
// so the step costs O(l/n^2 * n^3) = O(l n) (AddLastBlock, Lemma 5).
//
// Cost (Theorem 4): O(l n + kappa n^2 log^2 n) + O(log n) BITS_k(Pi_BA) bits
// and O(n) + O(log n) ROUNDS(Pi_BA) rounds.
#pragma once

#include "ba/long_ba_plus.h"
#include "ca/find_prefix.h"
#include "ca/get_output.h"
#include "ca/high_cost_ca.h"

namespace coca::ca {

/// AddLastBlock (Section 4, Lemma 5): extends an agreed prefix of i* < n^2
/// whole blocks by one block, agreed via HighCostCA over the block values.
Bitstring add_last_block(net::PartyContext& ctx, std::size_t ell,
                         std::size_t block_bits, const Bitstring& v,
                         Bitstring prefix);

class FixedLengthCABlocks {
 public:
  explicit FixedLengthCABlocks(ba::BAKit kit) : kit_(kit), lba_plus_(kit) {}

  /// Joins with a valid `ell`-bit value; `ell` must be common knowledge and
  /// a positive multiple of n^2.
  Bitstring run(net::PartyContext& ctx, std::size_t ell, Bitstring v_in) const;

 private:
  ba::BAKit kit_;
  ba::LongBAPlus lba_plus_;
};

}  // namespace coca::ca
