// Coordinate-wise Convex Agreement on integer vectors.
//
// The CA notion originates in multidimensional Byzantine vector consensus
// [Vaidya-Garg, PODC'13], which the paper specializes to one dimension.
// This adapter lifts any scalar CA protocol to Z^d by running it once per
// coordinate (sequentially, preserving lock-step).
//
// Validity caveat, stated precisely: the output lands in the *bounding box*
// of the honest inputs (per-coordinate interval validity), which is the
// box-hull, a superset of the convex hull that true multidimensional vector
// consensus targets. For the separable aggregation workloads the paper's
// applications cite (gradient aggregation, multi-sensor fusion), interval
// validity per coordinate is the property actually consumed. Implementing
// hull-validity for d > 1 requires the Tverberg-point machinery of [50] and
// n > (d+2)t, outside this paper's scope.
#pragma once

#include "ca/convex_agreement.h"

namespace coca::ca {

class VectorCA {
 public:
  /// `scalar` must outlive this object.
  explicit VectorCA(const CAProtocol& scalar) : scalar_(&scalar) {}

  /// Joins with a d-dimensional integer vector; all honest parties must use
  /// the same d. Returns the agreed vector, coordinate-wise inside the
  /// honest inputs' bounding box.
  std::vector<BigInt> run(net::PartyContext& ctx,
                          const std::vector<BigInt>& input) const;

 private:
  const CAProtocol* scalar_;
};

}  // namespace coca::ca
