#include "ca/get_output.h"

namespace coca::ca {

Bitstring add_last_bit(net::PartyContext& ctx, const ba::BinaryBA& bin,
                       std::size_t ell, const Bitstring& v, Bitstring prefix) {
  require(prefix.size() < ell, "add_last_bit: prefix already ell bits");
  auto phase = ctx.phase("AddLastBit");
  // Paper line 1: BA on bit i*+1 of v (the paper indexes bits from 1; our
  // bit() from 0, so this is bit(|prefix|)).
  const bool b = bin.run(ctx, v.bit(prefix.size()));
  prefix.push_back(b);
  return prefix;
}

Bitstring get_output(net::PartyContext& ctx, const ba::BinaryBA& bin,
                     std::size_t ell, const Bitstring& v_bot,
                     const Bitstring& prefix) {
  require(v_bot.size() == ell && prefix.size() <= ell,
          "get_output: size mismatch");
  auto phase = ctx.phase("GetOutput");

  // Lines 1-3: parties whose witness diverges from PREFIX* announce which
  // side it lies on. B = 0 means "below MIN_l(PREFIX*)" (so MIN is valid),
  // B = 1 means "above MAX_l(PREFIX*)".
  const Bitstring min_value = Bitstring::min_fill(prefix, ell);
  const Bitstring max_value = Bitstring::max_fill(prefix, ell);
  if (!v_bot.has_prefix(prefix)) {
    const bool below =
        Bitstring::numeric_compare(v_bot, min_value) == std::strong_ordering::less;
    ctx.send_all(Bytes{static_cast<std::uint8_t>(below ? 0 : 1)});
  }

  // Line 4: CHOICE := a bit received from ceil(m/2) of the m announcers;
  // with t+1 honest announcements, the majority bit is honest.
  int count[2] = {0, 0};
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    if (e.payload.size() == 1 && e.payload[0] <= 1) ++count[e.payload[0]];
  }
  const int m = count[0] + count[1];
  const bool choice = m > 0 && count[0] < (m + 1) / 2;

  // Line 5: binary BA on the choice; 0 => MIN_l(PREFIX*), 1 => MAX_l(PREFIX*).
  return bin.run(ctx, choice) ? max_value : min_value;
}

}  // namespace coca::ca
