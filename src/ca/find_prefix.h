// FindPrefix (Section 3, Lemma 1) and FindPrefixBlocks (Section 4, Lemma 4).
//
// The central insight of the paper: the longest common prefix of any values
// inside the honest inputs' range reveals a subset of that range, and can be
// located by binary search using a BA-with-extras oracle (Pi_lBA+) instead of
// ever exchanging full values.
//
// Each binary-search iteration runs Pi_lBA+ on the current window of the
// party's value:
//   * bottom  => Bounded Pre-Agreement implies fewer than n-2t honest parties
//     share that window, so for any candidate continuation at least t+1
//     honest parties hold witnesses v_bot that diverge from it; recurse left.
//   * a window w => Intrusion Tolerance implies w prefixes some honest
//     (hence valid) value; parties whose value diverges from w snap to
//     MIN_l / MAX_l of the agreed prefix (still valid by Remark 2); recurse
//     right.
//
// FindPrefixBlocks is the same search over blocks of l/n^2 bits, cutting the
// iteration count from O(log l) to O(log n) for very long inputs. (The
// paper's pseudocode initializes RIGHT := n+1, but the surrounding text,
// BLOCKS() definition and Lemma 9 all use n^2 blocks; we follow the n^2
// version, which is also the one whose AddLastBlock cost O(l/n^2 * n^3) =
// O(l n) matches Theorem 4.)
#pragma once

#include "ba/long_ba_plus.h"
#include "util/bitstring.h"

namespace coca::ca {

/// Result of the prefix search (Lemma 1 / Lemma 4): the agreed PREFIX*, a
/// valid value v extending it, and the divergence witness v_bot.
struct FindPrefixResult {
  Bitstring prefix;
  Bitstring v;
  Bitstring v_bot;
};

/// FindPrefix: binary search over bit positions 1..l. Honest callers join
/// with the same `ell` and with valid `ell`-bit values `v`.
FindPrefixResult find_prefix(net::PartyContext& ctx,
                             const ba::LongBAPlus& lba_plus, std::size_t ell,
                             Bitstring v);

/// FindPrefixBlocks: the same search over `num_blocks` blocks of
/// `ell / num_blocks` bits each; `ell` must be a multiple of `num_blocks`.
/// The paper uses num_blocks = n^2.
FindPrefixResult find_prefix_blocks(net::PartyContext& ctx,
                                    const ba::LongBAPlus& lba_plus,
                                    std::size_t ell, std::size_t num_blocks,
                                    Bitstring v);

}  // namespace coca::ca
