#include "ca/high_cost_ca.h"

#include <algorithm>
#include <map>

#include "util/wire.h"

namespace coca::ca {

namespace {

Bytes encode_nat(const BigNat& v) {
  Writer w;
  w.bignat(v);
  return std::move(w).take();
}

std::optional<BigNat> decode_nat(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  auto v = r.bignat();
  if (!v || !r.at_end()) return std::nullopt;
  return v;
}

/// Parses one natural per sender from a round's inbox, dropping malformed
/// messages (the paper's "ignore values outside N").
std::vector<BigNat> collect_naturals(const std::vector<net::Envelope>& inbox) {
  std::vector<BigNat> out;
  for (const auto& e : net::first_per_sender(inbox)) {
    if (auto v = decode_nat(e.payload)) out.push_back(std::move(*v));
  }
  return out;
}

/// Occurrence counts keyed by value.
std::map<BigNat, int> count_naturals(const std::vector<net::Envelope>& inbox) {
  std::map<BigNat, int> counts;
  for (const auto& e : net::first_per_sender(inbox)) {
    if (auto v = decode_nat(e.payload)) ++counts[*v];
  }
  return counts;
}

/// Smallest value reaching `threshold` occurrences, if any.
std::optional<BigNat> value_with_count(const std::map<BigNat, int>& counts,
                                       int threshold) {
  for (const auto& [value, cnt] : counts) {
    if (cnt >= threshold) return value;
  }
  return std::nullopt;
}

}  // namespace

BigNat HighCostCA::run(net::PartyContext& ctx, const BigNat& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  auto phase = ctx.phase("HighCostCA");

  // ---- Setup stage ----
  // Distribute inputs; with r = (n - t) + k values received, at most k are
  // byzantine, so the (k+1)-th lowest / highest received values bracket a
  // sub-interval of the honest inputs' range (Lemma 10).
  ctx.send_all(encode_nat(input));
  std::vector<BigNat> received = collect_naturals(ctx.advance());
  std::sort(received.begin(), received.end());
  const int r = narrow<int>(received.size());
  const int k = std::max(0, r - (n - t));  // max(.,0) only guards t' > t runs
  ensure(r > 2 * k, "HighCostCA: fewer values than honest parties");
  const BigNat interval_min = received[static_cast<std::size_t>(k)];
  const BigNat interval_max = received[static_cast<std::size_t>(r - 1 - k)];

  // Exchange intervals; SUGGESTION is a natural covered by >= n-t of the
  // received intervals (exists by Corollary 4: honest intervals intersect).
  // The smallest qualifying left endpoint is a deterministic such choice.
  {
    Writer w;
    w.bignat(interval_min);
    w.bignat(interval_max);
    ctx.send_all(std::move(w).take());
  }
  std::vector<std::pair<BigNat, BigNat>> intervals;
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    Reader rd(e.payload);
    auto lo = rd.bignat();
    auto hi = rd.bignat();
    if (!lo || !hi || !rd.at_end() || *lo > *hi) continue;
    intervals.emplace_back(std::move(*lo), std::move(*hi));
  }
  BigNat suggestion = interval_min;  // defensive fallback, normally replaced
  {
    std::vector<BigNat> candidates;
    for (const auto& [lo, hi] : intervals) candidates.push_back(lo);
    std::sort(candidates.begin(), candidates.end());
    for (const BigNat& c : candidates) {
      int cover = 0;
      for (const auto& [lo, hi] : intervals) {
        if (lo <= c && c <= hi) ++cover;
      }
      if (cover >= n - t) {
        suggestion = c;
        break;
      }
    }
  }
  BigNat current = suggestion;

  // ---- Search stage: t+1 king phases ----
  for (int king = 0; king <= t; ++king) {
    // Send CURRENT to all.
    ctx.send_all(encode_nat(current));
    const auto current_counts = count_naturals(ctx.advance());
    const auto propose = value_with_count(current_counts, n - t);

    // Send (PROPOSE, v) if some value was received n-t times.
    if (propose) {
      ctx.send_all(encode_nat(*propose));
    }
    const auto propose_counts = count_naturals(ctx.advance());
    const auto widely_proposed = value_with_count(propose_counts, n - t);
    const auto backed_proposal = value_with_count(propose_counts, t + 1);
    if (backed_proposal) current = *backed_proposal;

    // King broadcasts its value.
    if (ctx.id() == king) {
      ctx.send_all(encode_nat(backed_proposal ? *backed_proposal : suggestion));
    }
    std::optional<BigNat> king_value;
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.from != king) continue;
      if (auto v = decode_nat(e.payload)) king_value = std::move(*v);
    }

    // Vote for the king's value if it matches CURRENT or the trusted
    // interval; adopt a king value backed by t+1 votes unless some value
    // already had n-t proposals.
    if (king_value &&
        (*king_value == current ||
         (interval_min <= *king_value && *king_value <= interval_max))) {
      ctx.send_all(encode_nat(*king_value));
    }
    const auto vote_counts = count_naturals(ctx.advance());
    if (!widely_proposed) {
      if (const auto backed_vote = value_with_count(vote_counts, t + 1)) {
        current = *backed_vote;
      }
    }
  }
  return current;
}

}  // namespace coca::ca
