// BroadcastTrimCA: the introduction's "straightforward approach" baseline.
//
// Each party broadcasts its input (here via an extension broadcast built on
// Pi_lBA+, costing O(l n + kappa n^2 log n) per instance), giving all honest
// parties an identical view of n values; the output is the median of that
// view after trimming the t lowest and t highest entries, which provably
// lies in the honest inputs' range.
//
// Total cost O(l n^2 + kappa n^3 log n): the O(l n^2) the paper's protocol
// exists to beat (benches T1/T2/F1). Broadcast instances run sequentially
// (one protocol thread per party), so the measured round count carries an
// extra factor n versus an implementation that interleaves the n instances;
// EXPERIMENTS.md accounts for this when reading the round benches. The bit
// complexity -- the headline metric -- is unaffected by sequencing.
#pragma once

#include "ba/long_ba_plus.h"
#include "ca/convex_agreement.h"

namespace coca::ca {

class BroadcastTrimCA final : public CAProtocol {
 public:
  explicit BroadcastTrimCA(ba::BAKit kit) : lba_plus_(kit) {}

  BigInt run(net::PartyContext& ctx, const BigInt& input) const override;
  std::string name() const override { return "BroadcastTrimCA"; }

 private:
  ba::LongBAPlus lba_plus_;
};

}  // namespace coca::ca
