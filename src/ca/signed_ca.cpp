#include "ca/signed_ca.h"

#include <algorithm>

#include "util/wire.h"

namespace coca::ca {

namespace {

Bytes encode_int(const BigInt& v) {
  Writer w;
  w.u8(v.sign_bit() ? 1 : 0);
  w.bignat(v.magnitude());
  return std::move(w).take();
}

std::optional<BigInt> decode_int(const Bytes& raw) {
  Reader r(raw);
  const auto sign = r.u8();
  if (!sign || *sign > 1) return std::nullopt;
  auto mag = r.bignat();
  if (!mag || !r.at_end()) return std::nullopt;
  return BigInt(std::move(*mag), *sign == 1);
}

}  // namespace

BigInt SignedBroadcastCA::run(net::PartyContext& ctx,
                              const crypto::Signer& signer,
                              const BigInt& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  require(2 * t < n, "SignedBroadcastCA: requires t < n/2");
  auto phase = ctx.phase("SignedBroadcastCA");

  // One authenticated broadcast per party; bottom outcomes (equivocating
  // or silent corrupted senders) are dropped consistently at every honest
  // party, so the multisets coincide.
  std::vector<BigInt> view;
  const Bytes mine = encode_int(input);
  for (int sender = 0; sender < n; ++sender) {
    const auto out = broadcast_.run(
        ctx, signer, sender,
        ctx.id() == sender ? std::optional<Bytes>(mine) : std::nullopt);
    if (!out) continue;
    if (auto value = decode_int(*out)) view.push_back(std::move(*value));
  }

  // The (t+1)-th lowest of >= n-t identically-held values: with at most t
  // corrupted entries and 2t < n, it is bracketed by honest inputs.
  std::sort(view.begin(), view.end());
  ensure(view.size() > static_cast<std::size_t>(t),
         "SignedBroadcastCA: too few broadcasts survived");
  return view[static_cast<std::size_t>(t)];
}

}  // namespace coca::ca
