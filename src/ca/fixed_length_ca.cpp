#include "ca/fixed_length_ca.h"

namespace coca::ca {

Bitstring FixedLengthCA::run(net::PartyContext& ctx, std::size_t ell,
                             Bitstring v_in) const {
  require(v_in.size() == ell, "FixedLengthCA: input must have ell bits");
  require(ell >= 1, "FixedLengthCA: ell must be positive");
  auto phase = ctx.phase("FixedLengthCA");

  // Line 1: prefix search.
  FindPrefixResult fp = find_prefix(ctx, lba_plus_, ell, std::move(v_in));
  if (fp.prefix.size() == ell) return fp.v;

  // Line 2: extend the prefix by one bit.
  Bitstring prefix =
      add_last_bit(ctx, *kit_.binary, ell, fp.v, std::move(fp.prefix));

  // Line 3: decide between the two remaining candidates.
  return get_output(ctx, *kit_.binary, ell, fp.v_bot, prefix);
}

}  // namespace coca::ca
