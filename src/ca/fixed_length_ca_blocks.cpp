#include "ca/fixed_length_ca_blocks.h"

namespace coca::ca {

Bitstring add_last_block(net::PartyContext& ctx, std::size_t ell,
                         std::size_t block_bits, const Bitstring& v,
                         Bitstring prefix) {
  require(block_bits >= 1 && ell % block_bits == 0,
          "add_last_block: ell must be a multiple of the block size");
  require(prefix.size() % block_bits == 0 && prefix.size() < ell,
          "add_last_block: prefix must be a strict whole-block prefix");
  auto phase = ctx.phase("AddLastBlock");

  // Line 2: CA over the value of block i*+1. Convex validity of HighCostCA
  // keeps the result inside the honest block-value range, so it fits in
  // block_bits bits whenever at most t parties are corrupted; the clamp
  // below only matters under harsher test conditions and is agreed because
  // the HighCostCA output is agreed.
  const Bitstring my_block = v.substr(prefix.size(), block_bits);
  const HighCostCA high_cost;
  const BigNat agreed = high_cost.run(ctx, BigNat::from_bits(my_block));
  const Bitstring block = agreed.bit_length() <= block_bits
                              ? agreed.to_bits(block_bits)
                              : Bitstring::ones(block_bits);
  prefix.append(block);
  return prefix;
}

Bitstring FixedLengthCABlocks::run(net::PartyContext& ctx, std::size_t ell,
                                   Bitstring v_in) const {
  require(v_in.size() == ell, "FixedLengthCABlocks: input must have ell bits");
  const std::size_t n = static_cast<std::size_t>(ctx.n());
  const std::size_t num_blocks = n * n;
  require(ell >= num_blocks && ell % num_blocks == 0,
          "FixedLengthCABlocks: ell must be a positive multiple of n^2");
  const std::size_t block_bits = ell / num_blocks;
  auto phase = ctx.phase("FixedLengthCABlocks");

  // Line 1: prefix search over blocks.
  FindPrefixResult fp =
      find_prefix_blocks(ctx, lba_plus_, ell, num_blocks, std::move(v_in));
  if (fp.prefix.size() == ell) return fp.v;

  // Line 2: extend the prefix by one block.
  Bitstring prefix =
      add_last_block(ctx, ell, block_bits, fp.v, std::move(fp.prefix));

  // Line 3: decide between the two remaining candidates.
  return get_output(ctx, *kit_.binary, ell, fp.v_bot, prefix);
}

}  // namespace coca::ca
