// Pi_N (Section 5, Theorem 5): the final CA protocol for N -- removes the
// publicly-known-length assumption and dispatches between the two
// fixed-length protocols.
//
// A first bit-BA splits the world by |BITS(v_IN)| <= n^2:
//   * short regime: the parties agree on an estimate l_EST <= 2 min(l, n^2)
//     by comparing their lengths against powers of two with O(log n) bit-BAs,
//     then run FixedLengthCA;
//   * long regime: they agree on a block size via HighCostCA (cheap: block
//     sizes have O(log l) bits), set l_EST := BLOCKSIZE' * n^2, then run
//     FixedLengthCABlocks.
// In both regimes a party whose value does not fit in l_EST bits substitutes
// 2^l_EST - 1, which the proof of Theorem 5 shows lies in the honest range.
//
// Cost: O(l n + kappa n^2 log^2 n) + O(log n) BITS_k(Pi_BA) bits,
// O(n) + O(log n) ROUNDS(Pi_BA) rounds.
#pragma once

#include "ca/fixed_length_ca.h"
#include "ca/fixed_length_ca_blocks.h"
#include "util/bignat.h"

namespace coca::ca {

class PiN {
 public:
  explicit PiN(ba::BAKit kit)
      : kit_(kit), fixed_(kit), fixed_blocks_(kit) {}

  /// Joins with any natural number; returns the agreed natural inside the
  /// honest inputs' range.
  BigNat run(net::PartyContext& ctx, const BigNat& v_in) const;

 private:
  ba::BAKit kit_;
  FixedLengthCA fixed_;
  FixedLengthCABlocks fixed_blocks_;
};

}  // namespace coca::ca
