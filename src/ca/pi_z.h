// Pi_Z (Section 6, Corollaries 1 and 2): Convex Agreement for integers --
// the paper's headline protocol.
//
// Inputs are (-1)^SIGN * v_N. One bit-BA agrees on the output sign; a party
// whose sign differs from the agreed one substitutes magnitude 0 (always
// valid: the honest range then straddles or touches zero); Pi_N does the
// rest on magnitudes.
//
// With Pi_BA instantiated by a quadratic-ish deterministic BA this achieves
// BITS_l(Pi_Z) = O(l n + kappa n^2 log^2 n) and ROUNDS = O(n log n): the
// first communication-optimal CA for l = Omega(kappa n log^2 n).
#pragma once

#include "ca/pi_n.h"

namespace coca::ca {

class PiZ {
 public:
  explicit PiZ(ba::BAKit kit) : kit_(kit), pi_n_(kit) {}

  /// Joins with any integer; returns the agreed integer inside the honest
  /// inputs' convex hull.
  BigInt run(net::PartyContext& ctx, const BigInt& v_in) const;

 private:
  ba::BAKit kit_;
  PiN pi_n_;
};

}  // namespace coca::ca
