// Public facade: the one-stop entry point for Convex Agreement on integers.
//
//   coca::ca::ConvexAgreement ca;           // owns a default BA stack
//   BigInt out = ca.run(ctx, BigInt(-1003));
//
// `CAProtocol` is the common interface for every whole-protocol CA in this
// repository (the paper's Pi_Z, the HighCostCA baseline, the broadcast-based
// baseline), so drivers, tests, and benches treat them uniformly.
#pragma once

#include <memory>
#include <string>

#include "ba/phase_king.h"
#include "ba/turpin_coan.h"
#include "ca/pi_z.h"

namespace coca::ca {

/// A complete Convex Agreement protocol over Z (Definition 1).
class CAProtocol {
 public:
  virtual ~CAProtocol() = default;
  /// Joins with an integer input; returns the agreed integer inside the
  /// honest inputs' convex hull.
  virtual BigInt run(net::PartyContext& ctx, const BigInt& input) const = 0;
  virtual std::string name() const = 0;
};

/// Default Pi_BA instantiation: binary Phase-King, with kappa-bit values
/// handled by the Turpin-Coan reduction on top of it (so the multivalued
/// runs cost O(kappa n^2) + one binary BA each).
class DefaultBAStack {
 public:
  DefaultBAStack() : turpin_coan_(phase_king_) {}
  DefaultBAStack(const DefaultBAStack&) = delete;
  DefaultBAStack& operator=(const DefaultBAStack&) = delete;

  ba::BAKit kit() const { return {&phase_king_, &turpin_coan_}; }

 private:
  ba::PhaseKingBinary phase_king_;
  ba::TurpinCoan turpin_coan_;
};

/// The paper's protocol with the default BA stack. This is the class a
/// downstream user instantiates.
class ConvexAgreement final : public CAProtocol {
 public:
  ConvexAgreement() : pi_z_(stack_.kit()) {}

  BigInt run(net::PartyContext& ctx, const BigInt& input) const override {
    return pi_z_.run(ctx, input);
  }
  std::string name() const override { return "PiZ"; }

  /// The underlying BA kit, for composing sub-protocols directly.
  ba::BAKit kit() const { return stack_.kit(); }

 private:
  DefaultBAStack stack_;
  PiZ pi_z_;
};

/// HighCostCA as a whole-protocol baseline ("existing CA protocol" in the
/// paper's comparison): O(l n^3) bits, O(n) rounds. Supports Z by agreeing
/// on the sign exactly as Pi_Z does.
class HighCostCAProtocol final : public CAProtocol {
 public:
  explicit HighCostCAProtocol(ba::BAKit kit) : kit_(kit) {}

  BigInt run(net::PartyContext& ctx, const BigInt& input) const override;
  std::string name() const override { return "HighCostCA"; }

 private:
  ba::BAKit kit_;
};

}  // namespace coca::ca
