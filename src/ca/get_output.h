// AddLastBit (Section 3, Lemma 2) and GetOutput (Section 3, Lemma 3).
//
// After FindPrefix, PREFIX* prefixes a valid value but may be shorter than
// l. AddLastBit extends it by one bit via binary BA on the next bit of each
// party's valid value v (Validity of BA makes the extension some honest
// value's prefix).
//
// GetOutput then decides between MIN_l(PREFIX*) and MAX_l(PREFIX*): the t+1
// honest parties whose witness v_bot diverges from PREFIX* announce on which
// side their v_bot lies (one bit each -- the only step of the whole protocol
// where "validity evidence" is communicated, and it costs O(n^2) bits
// total); the majority bit among those received is necessarily honest, and a
// final binary BA fixes the choice.
#pragma once

#include "ba/ba_interface.h"
#include "util/bitstring.h"

namespace coca::ca {

/// AddLastBit: extends the agreed `prefix` (|prefix| < ell) by one bit,
/// using each party's valid `ell`-bit value `v` with prefix `prefix`.
Bitstring add_last_bit(net::PartyContext& ctx, const ba::BinaryBA& bin,
                       std::size_t ell, const Bitstring& v, Bitstring prefix);

/// GetOutput: agrees on MIN_l(prefix) or MAX_l(prefix), both of which can be
/// announced as valid by the parties whose `v_bot` diverges from `prefix`.
Bitstring get_output(net::PartyContext& ctx, const ba::BinaryBA& bin,
                     std::size_t ell, const Bitstring& v_bot,
                     const Bitstring& prefix);

}  // namespace coca::ca
