#include "ca/find_prefix.h"

#include "util/wire.h"

namespace coca::ca {

namespace {

Bytes encode_window(const Bitstring& bits) {
  Writer w;
  w.bitstring(bits);
  return std::move(w).take();
}

/// Decodes a Pi_lBA+ output as a window of exactly `want_bits` bits.
/// Intrusion Tolerance guarantees real outputs are honest windows, so a
/// mismatch can only arise outside the threat model; treating it as bottom
/// is consistent across honest parties because the input bytes are agreed.
std::optional<Bitstring> decode_window(const ba::MaybeBytes& out,
                                       std::size_t want_bits) {
  if (!out) return std::nullopt;
  Reader r(*out);
  auto bits = r.bitstring();
  if (!bits || !r.at_end() || bits->size() != want_bits) return std::nullopt;
  return bits;
}

/// Shared search: positions are expressed in units of `unit` bits
/// (unit = 1 for FindPrefix, unit = l/n^2 for FindPrefixBlocks).
FindPrefixResult search(net::PartyContext& ctx, const ba::LongBAPlus& lba_plus,
                        std::size_t total_units, std::size_t unit,
                        Bitstring v) {
  // Paper line 1: LEFT := 1, RIGHT := total+1, v_bot := v, PREFIX* := empty.
  std::size_t left = 1;
  std::size_t right = total_units + 1;
  Bitstring v_bot = v;
  Bitstring prefix;

  while (left != right) {
    const std::size_t mid = (left + right) / 2;
    // Window of units LEFT..MID (1-indexed, inclusive) of the current value.
    const Bitstring window =
        v.substr((left - 1) * unit, (mid - left + 1) * unit);
    const auto agreed =
        decode_window(lba_plus.run(ctx, encode_window(window)),
                      (mid - left + 1) * unit);
    if (!agreed) {
      // Bounded Pre-Agreement: for any MID-unit bitstring, t+1 honest
      // values diverge from it; remember the current value as witness and
      // keep searching in the left half.
      v_bot = v;
      right = mid;
    } else {
      // Intrusion Tolerance: prefix || agreed prefixes an honest value.
      prefix.append(*agreed);
      const auto cmp = Bitstring::numeric_compare(
          v.prefix(mid * unit), prefix);  // |prefix| == mid * unit here
      if (cmp == std::strong_ordering::less) {
        v = Bitstring::min_fill(prefix, v.size());
      } else if (cmp == std::strong_ordering::greater) {
        v = Bitstring::max_fill(prefix, v.size());
      }
#ifdef COCA_CANARY_BUG
      // Planted off-by-one (cmake -DCOCA_CANARY_BUG=ON): failing to step
      // past MID re-agrees on already-settled units, desyncing |PREFIX*|
      // from the search position. Exists to mutation-test the adversary
      // search: adv::Fuzzer must catch and shrink this within a small
      // budget (tests/test_fuzzer.cpp, CI fuzz-canary job).
      left = mid;
#else
      left = mid + 1;
#endif
    }
  }
  return {std::move(prefix), std::move(v), std::move(v_bot)};
}

}  // namespace

FindPrefixResult find_prefix(net::PartyContext& ctx,
                             const ba::LongBAPlus& lba_plus, std::size_t ell,
                             Bitstring v) {
  require(v.size() == ell, "find_prefix: value must have exactly ell bits");
  auto phase = ctx.phase("FindPrefix");
  return search(ctx, lba_plus, ell, 1, std::move(v));
}

FindPrefixResult find_prefix_blocks(net::PartyContext& ctx,
                                    const ba::LongBAPlus& lba_plus,
                                    std::size_t ell, std::size_t num_blocks,
                                    Bitstring v) {
  require(v.size() == ell, "find_prefix_blocks: value must have ell bits");
  require(num_blocks >= 1 && ell % num_blocks == 0,
          "find_prefix_blocks: ell must be a positive multiple of num_blocks");
  auto phase = ctx.phase("FindPrefixBlocks");
  return search(ctx, lba_plus, num_blocks, ell / num_blocks, std::move(v));
}

}  // namespace coca::ca
