// Convex Agreement for t < n/2 with cryptographic setup (paper Section 8's
// open-problem regime, at the classic non-optimal cost).
//
// With a PKI, Dolev-Strong broadcast works for any t < n, and the
// introduction's "straightforward approach" yields CA up to t < n/2: every
// party authenticated-broadcasts its input, all honest parties obtain an
// identical multiset W (|W| >= n - t), and the (t+1)-th lowest element of W
// lies in the honest inputs' range whenever 2t < n.
//
// Cost: O(n^3 (l + n sigma)) bits -- the open problem the paper leaves is
// achieving O(l n) in this regime; this module provides the baseline that
// a future communication-optimal t < n/2 protocol would be measured
// against.
#pragma once

#include "ba/dolev_strong.h"
#include "util/bignat.h"

namespace coca::ca {

class SignedBroadcastCA {
 public:
  /// `pki` must outlive this object.
  explicit SignedBroadcastCA(const crypto::SimulatedPki& pki)
      : broadcast_(pki) {}

  /// Joins with this party's signer and integer input; requires 2t < n.
  BigInt run(net::PartyContext& ctx, const crypto::Signer& signer,
             const BigInt& input) const;

 private:
  ba::DolevStrong broadcast_;
};

}  // namespace coca::ca
