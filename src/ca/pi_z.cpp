#include "ca/pi_z.h"

namespace coca::ca {

BigInt PiZ::run(net::PartyContext& ctx, const BigInt& v_in) const {
  auto phase = ctx.phase("PiZ");
  // Line 1: agree on the sign.
  const bool sign_out = kit_.binary->run(ctx, v_in.sign_bit());
  // Line 2: parties on the wrong side contribute 0 (valid by Corollary 1's
  // proof: the agreed sign is some honest party's sign, so the honest range
  // crosses or touches 0 whenever signs were mixed).
  const BigNat magnitude =
      sign_out == v_in.sign_bit() ? v_in.magnitude() : BigNat(0);
  const BigNat out = pi_n_.run(ctx, magnitude);
  // Line 3.
  return BigInt(out, sign_out);
}

}  // namespace coca::ca
