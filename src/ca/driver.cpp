#include "ca/driver.h"

#include <algorithm>

namespace coca::ca {

bool SimResult::agreement() const {
  const BigInt* first = nullptr;
  for (const auto& out : outputs) {
    if (!out) continue;
    if (first == nullptr) {
      first = &*out;
    } else if (*out != *first) {
      return false;
    }
  }
  return true;
}

bool SimResult::convex_validity(const std::vector<BigInt>& inputs_by_id) const {
  std::optional<BigInt> lo, hi;
  for (std::size_t id = 0; id < outputs.size(); ++id) {
    if (!outputs[id]) continue;  // corrupted party
    const BigInt& in = inputs_by_id[id];
    if (!lo || in < *lo) lo = in;
    if (!hi || in > *hi) hi = in;
  }
  if (!lo) return true;  // no honest parties: vacuous
  return std::all_of(outputs.begin(), outputs.end(), [&](const auto& out) {
    return !out || (*lo <= *out && *out <= *hi);
  });
}

SimResult run_simulation(const CAProtocol& protocol, const SimConfig& config) {
  require(config.inputs.size() == static_cast<std::size_t>(config.n),
          "run_simulation: need one input slot per party");
  net::SyncNetwork net(config.n, config.t);
  if (config.threads > 0) net.set_exec_policy({config.threads});
  if (config.transcript != nullptr) net.set_transcript(config.transcript);
  if (config.tracer != nullptr) net.set_tracer(config.tracer);
  SimResult result;
  result.outputs.resize(static_cast<std::size_t>(config.n));

  std::vector<bool> corrupted(static_cast<std::size_t>(config.n), false);
  const auto runner_with_input = [&protocol](BigInt input) {
    return [&protocol, input = std::move(input)](net::PartyContext& ctx) {
      protocol.run(ctx, input);
    };
  };
  const adv::ProtocolHooks hooks{runner_with_input(config.extreme_low),
                                 runner_with_input(config.extreme_high)};
  for (const Corruption& c : config.corruptions) {
    require(c.id >= 0 && c.id < config.n && !corrupted[c.id],
            "run_simulation: bad corruption id");
    corrupted[static_cast<std::size_t>(c.id)] = true;
    adv::install(net, c.id, c.kind, hooks);
  }
  for (int id = 0; id < config.n; ++id) {
    if (corrupted[static_cast<std::size_t>(id)]) continue;
    auto* slot = &result.outputs[static_cast<std::size_t>(id)];
    const BigInt input = config.inputs[static_cast<std::size_t>(id)];
    net.set_honest(id, [&protocol, slot, input](net::PartyContext& ctx) {
      *slot = protocol.run(ctx, input);
    });
  }

  result.stats = net.run(config.max_rounds);
  return result;
}

}  // namespace coca::ca
