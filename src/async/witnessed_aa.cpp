#include "async/witnessed_aa.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/wire.h"

namespace coca::async {

namespace {

enum class Kind : std::uint8_t {
  kInit = 0,
  kEcho = 1,
  kReady = 2,
  kReport = 3,
};

Bytes encode_value(const BigInt& v) {
  Writer w;
  w.u8(v.sign_bit() ? 1 : 0);
  w.bignat(v.magnitude());
  return std::move(w).take();
}

std::optional<BigInt> decode_value(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto sign = r.u8();
  if (!sign || *sign > 1) return std::nullopt;
  auto mag = r.bignat();
  if (!mag || !r.at_end()) return std::nullopt;
  return BigInt(std::move(*mag), *sign == 1);
}

Bytes encode_rbc(std::uint64_t round, Kind kind, int leader,
                 const Bytes& value) {
  Writer w;
  w.u64(round);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(leader));
  w.bytes(value);
  return std::move(w).take();
}

Bytes encode_report(std::uint64_t round, const std::set<int>& senders) {
  Writer w;
  w.u64(round);
  w.u8(static_cast<std::uint8_t>(Kind::kReport));
  w.u32(narrow<std::uint32_t>(senders.size()));
  for (const int s : senders) w.u32(static_cast<std::uint32_t>(s));
  return std::move(w).take();
}

/// The per-process reactor: all Bracha instances (round, leader), all
/// reports, and the derived per-round delivered values.
class Reactor {
 public:
  Reactor(ProcessContext& ctx, std::size_t max_rounds)
      : ctx_(ctx),
        n_(ctx.n()),
        t_(ctx.t()),
        max_rounds_(max_rounds) {}

  void broadcast_value(std::uint64_t round, const BigInt& v) {
    ctx_.send_all(encode_rbc(round, Kind::kInit, ctx_.id(), encode_value(v)));
  }

  void send_report(std::uint64_t round) {
    ctx_.send_all(encode_report(round, delivered_senders(round)));
  }

  /// Handles one incoming message (echo/ready side effects included).
  void handle(const Envelope& e) {
    Reader r(e.payload);
    const auto round = r.u64();
    const auto kind = r.u8();
    if (!round || !kind || *round >= max_rounds_ || *kind > 3) return;
    if (static_cast<Kind>(*kind) == Kind::kReport) {
      const auto count = r.u32();
      if (!count || *count > static_cast<std::uint32_t>(n_)) return;
      std::set<int> named;
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto id = r.u32();
        if (!id || *id >= static_cast<std::uint32_t>(n_)) return;
        named.insert(static_cast<int>(*id));
      }
      if (!r.at_end()) return;
      reports_[*round].emplace(e.from, std::move(named));  // first wins
      return;
    }
    const auto leader = r.u32();
    auto value = r.bytes();
    if (!leader || *leader >= static_cast<std::uint32_t>(n_) || !value ||
        !r.at_end()) {
      return;
    }
    Instance& inst = instances_[{*round, static_cast<int>(*leader)}];
    switch (static_cast<Kind>(*kind)) {
      case Kind::kInit:
        // Only the leader's own first INIT triggers an echo.
        if (e.from == static_cast<int>(*leader) && !inst.sent_echo) {
          inst.sent_echo = true;
          ctx_.send_all(encode_rbc(*round, Kind::kEcho,
                                   static_cast<int>(*leader), *value));
        }
        break;
      case Kind::kEcho: {
        if (!inst.echoed_by.insert(e.from).second) break;
        auto& backers = inst.echoes[*value];
        backers.insert(e.from);
        if (!inst.sent_ready &&
            backers.size() >= static_cast<std::size_t>(n_ - t_)) {
          inst.sent_ready = true;
          ctx_.send_all(encode_rbc(*round, Kind::kReady,
                                   static_cast<int>(*leader), *value));
        }
        break;
      }
      case Kind::kReady: {
        if (!inst.readied_by.insert(e.from).second) break;
        auto& backers = inst.readies[*value];
        backers.insert(e.from);
        if (!inst.sent_ready &&
            backers.size() >= static_cast<std::size_t>(t_ + 1)) {
          inst.sent_ready = true;
          ctx_.send_all(encode_rbc(*round, Kind::kReady,
                                   static_cast<int>(*leader), *value));
        }
        if (!inst.delivered &&
            backers.size() >= static_cast<std::size_t>(2 * t_ + 1)) {
          inst.delivered = *value;
          // Only parseable payloads count as delivered round values;
          // parseability is a pure function of the delivered bytes, so all
          // honest processes ignore the same garbage instances.
          if (auto v = decode_value(*value)) {
            delivered_[*round].emplace(static_cast<int>(*leader),
                                       std::move(*v));
          }
        }
        break;
      }
      case Kind::kReport:
        break;  // handled above
    }
  }

  std::size_t delivered_count(std::uint64_t round) {
    return delivered_[round].size();
  }

  std::set<int> delivered_senders(std::uint64_t round) {
    std::set<int> out;
    for (const auto& [leader, value] : delivered_[round]) out.insert(leader);
    return out;
  }

  /// Witnesses: reporters whose named senders we have all delivered.
  std::size_t witness_count(std::uint64_t round) {
    const std::set<int> have = delivered_senders(round);
    std::size_t witnesses = 0;
    for (const auto& [reporter, named] : reports_[round]) {
      if (std::includes(have.begin(), have.end(), named.begin(),
                        named.end())) {
        ++witnesses;
      }
    }
    return witnesses;
  }

  std::vector<BigInt> delivered_values(std::uint64_t round) {
    std::vector<BigInt> out;
    out.reserve(delivered_[round].size());
    for (const auto& [leader, value] : delivered_[round]) {
      out.push_back(value);
    }
    return out;
  }

 private:
  struct Instance {
    bool sent_echo = false;
    bool sent_ready = false;
    std::set<int> echoed_by, readied_by;
    std::map<Bytes, std::set<int>> echoes, readies;
    std::optional<Bytes> delivered;
  };

  ProcessContext& ctx_;
  int n_;
  int t_;
  std::size_t max_rounds_;
  std::map<std::pair<std::uint64_t, int>, Instance> instances_;
  std::map<std::uint64_t, std::map<int, std::set<int>>> reports_;
  std::map<std::uint64_t, std::map<int, BigInt>> delivered_;
};

}  // namespace

void WitnessedApproxAgreement::run(
    ProcessContext& ctx, const BigInt& input, std::size_t rounds,
    const std::function<void(const BigInt&)>& on_output) const {
  const int n = ctx.n();
  const int t = ctx.t();
  require(n > 3 * t, "WitnessedApproxAgreement: requires n > 3t");
  require(static_cast<bool>(on_output),
          "WitnessedApproxAgreement: output callback required");

  Reactor reactor(ctx, rounds);
  BigInt value = input;

  for (std::uint64_t r = 0; r < rounds; ++r) {
    reactor.broadcast_value(r, value);
    bool report_sent = false;
    for (;;) {
      if (!report_sent &&
          reactor.delivered_count(r) >= static_cast<std::size_t>(n - t)) {
        reactor.send_report(r);
        report_sent = true;
      }
      if (report_sent &&
          reactor.witness_count(r) >= static_cast<std::size_t>(n - t)) {
        break;
      }
      reactor.handle(ctx.receive());
    }
    // Update: midpoint of the t-per-side trimmed delivered multiset. Any
    // two honest processes share an honest witness, so their multisets
    // differ in at most t entries per side and the synchronous halving
    // lemma applies.
    std::vector<BigInt> values = reactor.delivered_values(r);
    std::sort(values.begin(), values.end());
    ensure(values.size() > 2 * static_cast<std::size_t>(t),
           "WitnessedApproxAgreement: too few delivered values");
    const BigInt& lo = values[static_cast<std::size_t>(t)];
    const BigInt& hi = values[values.size() - 1 - static_cast<std::size_t>(t)];
    const BigInt sum = lo + hi;
    value = BigInt(sum.magnitude() >> 1, sum.negative());
  }

  on_output(value);
  ctx.mark_done();
  // Lingering service: keep the reliable-broadcast machinery alive for
  // stragglers; the network unwinds this loop when every honest process is
  // done.
  for (;;) reactor.handle(ctx.receive());
}

}  // namespace coca::async
