// Asynchronous Approximate Agreement, t < n/5.
//
// The resilience regime the paper's conclusion names for the asynchronous
// extension of its techniques ("we expect that our techniques can be easily
// extended to the asynchronous setting for a lower number of corruptions
// t < n/5"). This module provides the classic single-exchange asynchronous
// AA at exactly that threshold, in the style of the original asynchronous
// algorithm of [Dolev-Lynch-Pinter-Stark-Weihl'86]:
//
// per asynchronous round r: send (r, value) to all; wait for n-t round-r
// values (the most any process can safely wait for -- t processes may never
// speak); update to the midpoint of the collected multiset trimmed by 2t
// per side. Two waiting processes can miss disjoint t-subsets of honest
// values *and* receive t byzantine values each, so their multisets differ
// in up to 2t entries per side -- the reason the asynchronous threshold
// drops from n/3 to n/5 without reliable-broadcast machinery, and the 2t
// trim keeps validity and per-round contraction.
//
// Each process runs a publicly agreed number of rounds and terminates;
// stragglers always find the messages of finished processes in flight
// (everything a process ever needs was sent before its peers finished).
//
// Guarantees, stated carefully: Validity (outputs stay inside the honest
// inputs' range) holds against every scheduler and byzantine behaviour, and
// pre-agreement is preserved. Per-round *contraction*, however, has no
// worst-case guarantee for this single-exchange variant: at the n = 5t+1
// boundary the 2t-per-side trim leaves a single survivor, so the update is
// a median map, and a per-recipient-equivocating byzantine flooder under a
// static schedule pins two honest camps at a non-converging fixed point
// (each camp sees a majority of its own camp plus one byzantine extremist
// and stays put forever). Both the combinatorial construction and the
// live deterministic stall are pinned as tests in
// test_async_protocols.cpp. The randomized/adaptive schedulers implemented
// here converge empirically; the guarantee against *every* scheduler
// requires the witness technique over reliable broadcasts (see
// witnessed_aa.h), which also restores optimal resilience t < n/3.
#pragma once

#include "async/async_network.h"
#include "util/bignat.h"

namespace coca::async {

class AsyncApproxAgreement {
 public:
  /// Runs `rounds` asynchronous iterations; all honest processes must use
  /// the same count. Requires n > 5t.
  BigInt run(ProcessContext& ctx, const BigInt& input,
             std::size_t rounds) const;
};

}  // namespace coca::async
