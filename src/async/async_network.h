// Event-driven asynchronous network simulator.
//
// The paper's conclusion singles out the asynchronous setting as future
// work ("we expect that our techniques can be easily extended to the
// asynchronous setting for a lower number of corruptions t < n/5"); this
// module provides the substrate for that direction: reliable authenticated
// point-to-point channels with *adversary-controlled scheduling* --
// messages are delayed arbitrarily but delivered eventually, and there is
// no common clock.
//
// Execution model: processes run as threads; `receive()` blocks until the
// scheduler delivers a message. The scheduler serializes the run -- exactly
// one process executes between deliveries -- which makes every interleaving
// reproducible and lets scheduling policies act as the asynchronous
// adversary:
//   * kFifo         -- deliver in send order (the "nice" network),
//   * kRandomDelay  -- seeded random choice among in-flight messages,
//   * kLagLowIds    -- starve low-id senders as long as any other message
//                      can be delivered (a targeted-delay adversary).
//
// Byzantine processes are arbitrary code over the same context (they may
// flood, lie, equivocate, or stay silent); their traffic is excluded from
// honest cost metrics. A deadlock (every live process blocked with nothing
// deliverable) is detected and reported as an error -- for a correct
// asynchronous protocol it can only mean the protocol's waiting conditions
// are wrong.
#pragma once

#include <functional>
#include <memory>

#include "net/exec_policy.h"
#include "net/fault_plan.h"
#include "net/payload.h"
#include "util/common.h"
#include "util/rng.h"

namespace coca::async {

/// Root seed domains for per-process RNG streams and the scheduler stream
/// (same splittable-stream contract as the sync engine; pinned by
/// tests/test_rng.cpp).
inline constexpr std::uint64_t kProcessSeedDomain = 0xA57C0CA0'0000001DULL;
inline constexpr std::uint64_t kSchedulerSeedDomain = 0xA57C0CA0'000005EDULL;

/// A delivered message. The payload is a shared immutable view (see
/// net/payload.h): a `send_all` stages one buffer for all n recipients.
struct Envelope {
  int from = -1;
  net::Payload payload;
};

enum class Scheduling {
  kFifo,
  kRandomDelay,
  kLagLowIds,
  /// Prefers messages with larger (from - to) mod n: every recipient gets a
  /// *different* fixed priority order over senders. The schedule that gives
  /// each process a static, skewed receive-set -- the worst case for
  /// single-exchange approximate agreement.
  kSkewPairs,
};

class AsyncNetwork;

/// Handle through which asynchronous process code talks to the network.
class ProcessContext {
 public:
  ProcessContext(const ProcessContext&) = delete;
  ProcessContext& operator=(const ProcessContext&) = delete;

  int id() const { return process_; }
  int n() const;
  int t() const;

  /// Sends `payload` to `to`; delivery is at the scheduler's discretion
  /// (but guaranteed while the recipient keeps receiving).
  void send(int to, Bytes payload);
  void send(int to, net::Payload payload);
  /// Same payload to all n processes; one shared buffer backs all n
  /// deliveries (the rvalue/Payload overloads are zero-copy, the lvalue
  /// overload deep-copies once, counted by PayloadMetrics).
  void send_all(Bytes&& payload) { send_all(net::Payload(std::move(payload))); }
  void send_all(const Bytes& payload) {
    send_all(net::Payload::copy_of(payload));
  }
  void send_all(net::Payload payload);

  /// Blocks until the next message for this process is delivered.
  Envelope receive();

  /// Declares this process's protocol output complete. The network run
  /// terminates once every honest process is done (or returned); a process
  /// that marked itself done may keep looping on receive() to serve
  /// protocol messages to stragglers -- asynchronous protocols built from
  /// reliable broadcast need that lingering participation for totality.
  /// Once the run completes, lingering receive() calls unwind the process
  /// silently.
  void mark_done();

  Rng& rng() { return rng_; }

 private:
  friend class AsyncNetwork;
  ProcessContext(AsyncNetwork& net, std::size_t index, int process,
                 std::uint64_t seed)
      : net_(net), index_(index), process_(process), rng_(seed) {}

  AsyncNetwork& net_;
  std::size_t index_;
  int process_;
  Rng rng_;
};

struct AsyncStats {
  std::size_t deliveries = 0;  // scheduler steps = messages delivered
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_messages = 0;
  std::vector<std::uint64_t> bytes_by_process;

  /// Environment fault bookkeeping (zero when no FaultPlan is set).
  net::FaultStats faults;
  /// With a non-empty FaultPlan, a run where every live process is starved
  /// (a fault-induced deadlock: e.g. a permanent partition) ends gracefully
  /// with this flag instead of throwing -- dropped messages break the
  /// eventual-delivery guarantee the deadlock detector assumes.
  bool starved = false;

  std::uint64_t honest_bits() const { return honest_bytes * 8; }
};

class AsyncNetwork {
 public:
  using ProcessFn = std::function<void(ProcessContext&)>;

  AsyncNetwork(int n, int t, Scheduling policy = Scheduling::kFifo,
               std::uint64_t seed = 1);
  ~AsyncNetwork();
  AsyncNetwork(const AsyncNetwork&) = delete;
  AsyncNetwork& operator=(const AsyncNetwork&) = delete;

  void set_process(int id, ProcessFn fn);
  /// Byzantine process: arbitrary code, excluded from honest metrics.
  /// A never-installed... every id must get a role; use an empty function
  /// for a crashed (silent) process.
  void set_byzantine_process(int id, ProcessFn fn);

  /// Accepts the shared driver scheduling policy. The asynchronous
  /// scheduler *is* the adversary here: reproducibility of an adversarial
  /// schedule requires exactly one process to execute between deliveries,
  /// so every window collapses to serial execution -- the policy is
  /// validated and recorded, and parallelism across independent
  /// AsyncNetwork instances (e.g. bench sweeps) is the supported way to
  /// use extra cores.
  void set_exec_policy(net::ExecPolicy policy);

  /// Installs a schedule of environment faults with windows measured in
  /// scheduler *delivery steps* (the async notion of time). Only the fault
  /// kinds that add adversarial power here are accepted: crash-stop (the
  /// process unwinds at its next receive), directed link cuts and
  /// partitions (messages crossing an active cut are dropped -- note this
  /// deliberately breaks eventual delivery). Crash-recovery and inbox
  /// permutation are rejected: both are already inside the asynchronous
  /// scheduler's adversarial power (arbitrary delay, arbitrary order).
  void set_fault_plan(net::FaultPlan plan);

  /// Runs until every process returned. Throws on deadlock, on a process
  /// exception, or past `max_deliveries`.
  AsyncStats run(std::size_t max_deliveries = kDefaultMaxDeliveries);

  static constexpr std::size_t kDefaultMaxDeliveries = 5'000'000;

  int n() const { return n_; }
  int t() const { return t_; }

 private:
  friend class ProcessContext;
  struct Impl;

  void process_send(std::size_t index, int to, net::Payload payload);
  Envelope process_receive(std::size_t index);
  void process_mark_done(std::size_t index);

  int n_;
  int t_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace coca::async
