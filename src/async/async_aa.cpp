#include "async/async_aa.h"

#include <algorithm>
#include <map>

#include "util/wire.h"

namespace coca::async {

namespace {

Bytes encode(std::uint64_t round, const BigInt& v) {
  Writer w;
  w.u64(round);
  w.u8(v.sign_bit() ? 1 : 0);
  w.bignat(v.magnitude());
  return std::move(w).take();
}

struct Parsed {
  std::uint64_t round;
  BigInt value;
};

std::optional<Parsed> decode(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto round = r.u64();
  const auto sign = r.u8();
  if (!round || !sign || *sign > 1) return std::nullopt;
  auto mag = r.bignat();
  if (!mag || !r.at_end()) return std::nullopt;
  return Parsed{*round, BigInt(std::move(*mag), *sign == 1)};
}

}  // namespace

BigInt AsyncApproxAgreement::run(ProcessContext& ctx, const BigInt& input,
                                 std::size_t rounds) const {
  const int n = ctx.n();
  const int t = ctx.t();
  require(n > 5 * t, "AsyncApproxAgreement: requires n > 5t");

  BigInt value = input;
  // Buffered values by (round, sender); future rounds may arrive early
  // because peers advance at their own pace.
  std::map<std::uint64_t, std::map<int, BigInt>> buffered;

  for (std::uint64_t r = 0; r < rounds; ++r) {
    ctx.send_all(encode(r, value));
    auto& pool = buffered[r];
    while (pool.size() < static_cast<std::size_t>(n - t)) {
      const Envelope e = ctx.receive();
      const auto msg = decode(e.payload);
      if (!msg || msg->round >= rounds || msg->round < r) continue;
      buffered[msg->round].emplace(e.from, msg->value);  // first per sender
    }
    std::vector<BigInt> values;
    values.reserve(pool.size());
    for (const auto& [sender, v] : pool) values.push_back(v);
    std::sort(values.begin(), values.end());
    // Trim 2t per side (n - t >= 4t + 1 survivors is impossible to deplete
    // since n > 5t); midpoint truncates toward zero, staying in range.
    const BigInt& lo = values[static_cast<std::size_t>(2 * t)];
    const BigInt& hi = values[values.size() - 1 - static_cast<std::size_t>(2 * t)];
    const BigInt sum = lo + hi;
    value = BigInt(sum.magnitude() >> 1, sum.negative());
    buffered.erase(r);
  }
  return value;
}

}  // namespace coca::async
