#include "async/bracha_rbc.h"

#include <map>
#include <set>

#include "util/wire.h"

namespace coca::async {

namespace {

enum class Type : std::uint8_t { kInit = 0, kEcho = 1, kReady = 2 };

Bytes encode(Type type, const Bytes& value) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(value);
  return std::move(w).take();
}

struct Parsed {
  Type type;
  Bytes value;
};

std::optional<Parsed> decode(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto type = r.u8();
  if (!type || *type > 2) return std::nullopt;
  auto value = r.bytes();
  if (!value || !r.at_end()) return std::nullopt;
  return Parsed{static_cast<Type>(*type), std::move(*value)};
}

}  // namespace

Bytes BrachaRbc::run(ProcessContext& ctx, int broadcaster,
                     const std::optional<Bytes>& input) {
  const int n = ctx.n();
  const int t = ctx.t();
  require(broadcaster >= 0 && broadcaster < n, "BrachaRbc: bad broadcaster");
  require(ctx.id() != broadcaster || input.has_value(),
          "BrachaRbc: the broadcaster must supply an input");

  if (ctx.id() == broadcaster) {
    ctx.send_all(encode(Type::kInit, *input));
  }

  bool sent_echo = false;
  bool sent_ready = false;
  // Senders counted once per message type (per value for echo/ready).
  std::set<int> echoed_by, readied_by;
  std::map<Bytes, std::set<int>> echoes, readies;

  for (;;) {
    const Envelope e = ctx.receive();
    const auto msg = decode(e.payload);
    if (!msg) continue;
    switch (msg->type) {
      case Type::kInit:
        // Only the designated broadcaster's first INIT counts.
        if (e.from == broadcaster && !sent_echo) {
          sent_echo = true;
          ctx.send_all(encode(Type::kEcho, msg->value));
        }
        break;
      case Type::kEcho:
        if (!echoed_by.insert(e.from).second) break;
        echoes[msg->value].insert(e.from);
        if (!sent_ready &&
            echoes[msg->value].size() >= static_cast<std::size_t>(n - t)) {
          sent_ready = true;
          ctx.send_all(encode(Type::kReady, msg->value));
        }
        break;
      case Type::kReady: {
        if (!readied_by.insert(e.from).second) break;
        auto& backers = readies[msg->value];
        backers.insert(e.from);
        if (!sent_ready && backers.size() >= static_cast<std::size_t>(t + 1)) {
          sent_ready = true;
          ctx.send_all(encode(Type::kReady, msg->value));
        }
        if (backers.size() >= static_cast<std::size_t>(2 * t + 1)) {
          return msg->value;
        }
        break;
      }
    }
  }
}

}  // namespace coca::async
