#include "async/async_network.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace coca::async {

namespace {
struct AbortSignal {};
/// FaultPlan crash-stop unwind; like AbortSignal, uncatchable by design.
struct CrashSignal {};
}  // namespace

struct AsyncNetwork::Impl {
  struct Process {
    int id = -1;
    bool honest = false;
    ProcessFn fn;
    std::unique_ptr<ProcessContext> ctx;
    std::thread thread;

    enum class State { Gated, Running, Waiting, Finished };
    State state = State::Gated;       // guarded by mu
    bool go = false;                  // startup gate, guarded by mu
    bool done = false;                // output recorded, guarded by mu
    bool crashed = false;             // FaultPlan crash-stop, guarded by mu
    std::exception_ptr error;         // guarded by mu
    std::deque<Envelope> inbox;       // guarded by mu
    std::condition_variable cv;       // wakes this process

    std::uint64_t bytes_sent = 0;     // written by owner thread only
    std::uint64_t messages_sent = 0;
  };

  struct InFlight {
    std::size_t seq;
    int from;
    int to;
    net::Payload payload;  // shared view; scheduling never copies bytes
  };

  std::mutex mu;
  std::condition_variable cv_sched;
  std::vector<std::unique_ptr<Process>> processes;
  std::vector<int> role;  // by id: 0 unset, 1 honest, 2 byzantine
  std::vector<InFlight> in_flight;  // guarded by mu
  std::size_t next_seq = 0;
  bool abort = false;
  Scheduling policy = Scheduling::kFifo;
  net::ExecPolicy exec_policy;  // recorded for driver uniformity; see header
  Rng sched_rng{1};

  // ---- Environment faults (windows in delivery steps); all guarded by mu.
  net::FaultPlan plan;
  net::FaultStats faults;
  std::size_t deliveries = 0;        // scheduler steps so far
  std::vector<char> crash_fired;     // parallel to plan.crashes
  std::vector<char> crashed_by_id;   // by process id

  /// Fires every crash-stop whose step window opened: the victim unwinds
  /// with CrashSignal at its next receive (or its startup gate). Returns
  /// true if anything newly fired (the scheduler then re-parks before the
  /// next delivery decision). Caller holds mu.
  bool fire_crashes() {
    bool fired = false;
    for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
      const net::FaultPlan::Crash& c = plan.crashes[i];
      if (crash_fired[i] || deliveries < c.from_round) continue;
      crash_fired[i] = 1;
      fired = true;
      ++faults.crashes_injected;
      crashed_by_id[static_cast<std::size_t>(c.party)] = 1;
      for (auto& p : processes) {
        if (p->id == c.party) {
          p->crashed = true;
          p->cv.notify_all();
        }
      }
    }
    return fired;
  }
};

AsyncNetwork::AsyncNetwork(int n, int t, Scheduling policy, std::uint64_t seed)
    : n_(n), t_(t), impl_(std::make_unique<Impl>()) {
  require(n >= 1 && t >= 0 && t < n, "AsyncNetwork: need 0 <= t < n");
  impl_->role.assign(static_cast<std::size_t>(n), 0);
  impl_->policy = policy;
  impl_->sched_rng = Rng::stream(kSchedulerSeedDomain, seed);
}

void AsyncNetwork::set_exec_policy(net::ExecPolicy policy) {
  require(policy.threads >= 0, "AsyncNetwork::set_exec_policy: bad threads");
  impl_->exec_policy = policy;
}

void AsyncNetwork::set_fault_plan(net::FaultPlan plan) {
  plan.validate(n_);
  for (const net::FaultPlan::Crash& c : plan.crashes) {
    require(c.until_round == net::kNoRecovery,
            "AsyncNetwork: crash-recovery is subsumed by message delay; "
            "only crash-stop plans are supported here");
  }
  require(plan.shuffles.empty(),
          "AsyncNetwork: inbox shuffles are subsumed by scheduling policies");
  impl_->plan = std::move(plan);
}

AsyncNetwork::~AsyncNetwork() {
  for (auto& p : impl_->processes) {
    ensure(!p->thread.joinable(), "AsyncNetwork destroyed with live threads");
  }
}

int ProcessContext::n() const { return net_.n(); }
int ProcessContext::t() const { return net_.t(); }

void ProcessContext::send(int to, Bytes payload) {
  net_.process_send(index_, to, net::Payload(std::move(payload)));
}

void ProcessContext::send(int to, net::Payload payload) {
  net_.process_send(index_, to, std::move(payload));
}

void ProcessContext::send_all(net::Payload payload) {
  // One shared buffer for all n recipients: each send is a refcount bump.
  for (int to = 0; to < n(); ++to) net_.process_send(index_, to, payload);
}

Envelope ProcessContext::receive() { return net_.process_receive(index_); }

void ProcessContext::mark_done() { net_.process_mark_done(index_); }

void AsyncNetwork::set_process(int id, ProcessFn fn) {
  require(id >= 0 && id < n_ && impl_->role[id] == 0,
          "AsyncNetwork::set_process: bad or already-assigned id");
  impl_->role[id] = 1;
  auto p = std::make_unique<Impl::Process>();
  p->id = id;
  p->honest = true;
  p->fn = std::move(fn);
  const std::size_t index = impl_->processes.size();
  p->ctx.reset(new ProcessContext(
      *this, index, id,
      Rng::derive_stream_seed(kProcessSeedDomain,
                              static_cast<std::uint64_t>(id) << 1)));
  impl_->processes.push_back(std::move(p));
}

void AsyncNetwork::set_byzantine_process(int id, ProcessFn fn) {
  require(id >= 0 && id < n_ && impl_->role[id] == 0,
          "AsyncNetwork::set_byzantine_process: bad or already-assigned id");
  impl_->role[id] = 2;
  auto p = std::make_unique<Impl::Process>();
  p->id = id;
  p->honest = false;
  p->fn = std::move(fn);
  const std::size_t index = impl_->processes.size();
  p->ctx.reset(new ProcessContext(
      *this, index, id,
      Rng::derive_stream_seed(kProcessSeedDomain,
                              (static_cast<std::uint64_t>(id) << 1) | 1)));
  impl_->processes.push_back(std::move(p));
}

void AsyncNetwork::process_send(std::size_t index, int to,
                                net::Payload payload) {
  require(to >= 0 && to < n_, "ProcessContext::send: bad recipient");
  Impl::Process& p = *impl_->processes[index];
  p.bytes_sent += payload.size();  // metered even if the network loses it
  p.messages_sent += 1;
  std::lock_guard lk(impl_->mu);
  // Environment faults: traffic crossing a cut link (or sent by a process
  // whose crash already fired) vanishes after metering.
  if (!impl_->plan.empty() &&
      (impl_->crashed_by_id[static_cast<std::size_t>(p.id)] ||
       impl_->plan.link_cut(p.id, to, impl_->deliveries))) {
    ++impl_->faults.messages_dropped;
    return;
  }
  impl_->in_flight.push_back(
      {impl_->next_seq++, p.id, to, std::move(payload)});
  // The scheduler only acts when everyone is parked; no wakeup needed here.
}

void AsyncNetwork::process_mark_done(std::size_t index) {
  Impl::Process& p = *impl_->processes[index];
  std::lock_guard lk(impl_->mu);
  p.done = true;
  impl_->cv_sched.notify_all();
}

Envelope AsyncNetwork::process_receive(std::size_t index) {
  Impl::Process& p = *impl_->processes[index];
  std::unique_lock lk(impl_->mu);
  // A fired crash-stop takes effect at the victim's next scheduler
  // interaction: this receive() unwinds it instead of delivering.
  if (p.crashed) throw CrashSignal{};
  if (p.inbox.empty()) {
    p.state = Impl::Process::State::Waiting;
    impl_->cv_sched.notify_all();
    p.cv.wait(lk, [&] { return !p.inbox.empty() || impl_->abort || p.crashed; });
    if (impl_->abort) throw AbortSignal{};
    if (p.crashed) throw CrashSignal{};
    p.state = Impl::Process::State::Running;
  }
  Envelope e = std::move(p.inbox.front());
  p.inbox.pop_front();
  return e;
}

AsyncStats AsyncNetwork::run(std::size_t max_deliveries) {
  Impl& im = *impl_;
  for (int id = 0; id < n_; ++id) {
    require(im.role[id] != 0, "AsyncNetwork::run: every id needs a role");
  }

  for (auto& pp : im.processes) {
    Impl::Process& p = *pp;
    p.thread = std::thread([this, &p] {
      try {
        // Startup gate: processes begin executing one at a time, in
        // registration order, so initial send sequences (and therefore
        // FIFO delivery order) are deterministic.
        {
          std::unique_lock lk(impl_->mu);
          p.cv.wait(lk, [&] { return p.go || impl_->abort; });
          if (impl_->abort) throw AbortSignal{};
          // A crash whose window opens at step 0 fires before the gate:
          // the process executes zero protocol statements.
          if (p.crashed) throw CrashSignal{};
          p.state = Impl::Process::State::Running;
        }
        p.fn(*p.ctx);
      } catch (const AbortSignal&) {
      } catch (const CrashSignal&) {
        // FaultPlan crash-stop; not an error.
      } catch (...) {
        std::lock_guard lk(impl_->mu);
        p.error = std::current_exception();
      }
      std::lock_guard lk(impl_->mu);
      p.state = Impl::Process::State::Finished;
      impl_->cv_sched.notify_all();
    });
  }

  std::exception_ptr failure;
  std::string failure_reason;
  bool starved = false;
  {
    std::unique_lock lk(im.mu);
    im.deliveries = 0;
    im.faults = net::FaultStats{};
    im.crash_fired.assign(im.plan.crashes.size(), 0);
    im.crashed_by_id.assign(static_cast<std::size_t>(n_), 0);
    im.fire_crashes();  // step-0 windows fire before the startup gates
    // Quiescent: every process either finished or blocked on an empty
    // inbox. Only then is the next delivery decision well-defined (a
    // process woken by a delivery is *not* quiescent until it consumed the
    // message and parked again, so the scheduler never double-delivers into
    // an un-acknowledged wakeup).
    const auto parked = [](const auto& p) {
      return p->state == Impl::Process::State::Finished ||
             (p->state == Impl::Process::State::Waiting && p->inbox.empty());
    };
    const auto quiescent = [&] {
      return std::all_of(im.processes.begin(), im.processes.end(),
                         [&](auto& p) { return parked(p); });
    };
    // Release the startup gates sequentially: each process runs until its
    // first blocking receive (or completion) before the next one starts.
    bool gate_failed = false;
    for (auto& p : im.processes) {
      p->go = true;
      p->cv.notify_all();
      if (!im.cv_sched.wait_for(lk, std::chrono::seconds(300),
                                [&] { return parked(p); })) {
        failure_reason = "AsyncNetwork: startup stalled (watchdog)";
        gate_failed = true;
        break;
      }
    }
    for (;!gate_failed;) {
      if (!im.cv_sched.wait_for(lk, std::chrono::seconds(300), quiescent)) {
        failure_reason = "AsyncNetwork: scheduler stalled (watchdog)";
        break;
      }
      for (auto& p : im.processes) {
        if (p->error && !failure) failure = p->error;
      }
      if (failure) break;
      // Newly opened crash windows: let the victims unwind and re-park
      // before the next delivery decision, so schedules stay canonical.
      if (!im.plan.empty() && im.fire_crashes()) continue;

      // Termination keys on honest processes only: byzantine code may
      // legitimately block in receive() forever.
      std::vector<bool> live(static_cast<std::size_t>(n_), false);
      bool honest_pending = false;
      for (auto& p : im.processes) {
        if (p->state == Impl::Process::State::Waiting) {
          live[static_cast<std::size_t>(p->id)] = true;
          honest_pending |= p->honest && !p->done;
        }
      }
      if (!honest_pending) break;  // every honest output is recorded
      // Purge traffic addressed to finished processes (counting what was
      // headed to crash-stopped ones as fault drops).
      std::erase_if(im.in_flight, [&](const Impl::InFlight& m) {
        const auto to = static_cast<std::size_t>(m.to);
        if (live[to]) return false;
        if (!im.plan.empty() && im.crashed_by_id[to]) {
          ++im.faults.messages_dropped;
        }
        return true;
      });
      if (im.in_flight.empty()) {
        if (!im.plan.empty()) {
          // Fault-induced starvation (e.g. a permanent partition): dropped
          // messages void the eventual-delivery premise of the deadlock
          // detector, so this ends the run gracefully instead of throwing.
          starved = true;
          break;
        }
        // Honest processes wait, nothing can ever be delivered again, and
        // no process can run to send more: a genuine protocol deadlock.
        failure_reason = "AsyncNetwork: deadlock (live processes starved)";
        break;
      }
      if (im.deliveries >= max_deliveries) {
        failure_reason = "AsyncNetwork: delivery limit exceeded";
        break;
      }

      // Pick per policy.
      std::size_t pick = 0;
      switch (im.policy) {
        case Scheduling::kFifo:
          for (std::size_t c = 1; c < im.in_flight.size(); ++c) {
            if (im.in_flight[c].seq < im.in_flight[pick].seq) pick = c;
          }
          break;
        case Scheduling::kRandomDelay:
          pick = im.sched_rng.below(im.in_flight.size());
          break;
        case Scheduling::kLagLowIds:
          // Deliver the candidate with the highest sender id; FIFO within a
          // sender. Low-id senders' traffic is starved while anything else
          // is available -- eventual delivery still holds.
          for (std::size_t c = 1; c < im.in_flight.size(); ++c) {
            const auto& cur = im.in_flight[c];
            const auto& best = im.in_flight[pick];
            if (cur.from > best.from ||
                (cur.from == best.from && cur.seq < best.seq)) {
              pick = c;
            }
          }
          break;
        case Scheduling::kSkewPairs: {
          const auto skew = [&](const Impl::InFlight& m) {
            return static_cast<int>(
                (static_cast<unsigned>(m.from - m.to) + 2u * static_cast<unsigned>(n_)) %
                static_cast<unsigned>(n_));
          };
          for (std::size_t c = 1; c < im.in_flight.size(); ++c) {
            const auto& cur = im.in_flight[c];
            const auto& best = im.in_flight[pick];
            const int sc = skew(cur);
            const int sb = skew(best);
            if (sc > sb || (sc == sb && cur.seq < best.seq)) pick = c;
          }
          break;
        }
      }

      Impl::InFlight msg = std::move(im.in_flight[pick]);
      im.in_flight.erase(im.in_flight.begin() +
                         narrow<std::ptrdiff_t>(pick));
      for (auto& p : im.processes) {
        if (p->id == msg.to &&
            p->state == Impl::Process::State::Waiting) {
          p->inbox.push_back({msg.from, std::move(msg.payload)});
          p->cv.notify_all();
          break;
        }
      }
      ++im.deliveries;
    }

    // Unwind any still-blocked processes (byzantine waiters on the success
    // path, everyone on the failure path).
    im.abort = true;
    for (auto& p : im.processes) p->cv.notify_all();
  }

  for (auto& p : im.processes) {
    if (p->thread.joinable()) p->thread.join();
  }
  if (failure) std::rethrow_exception(failure);
  if (!failure_reason.empty()) throw Error(failure_reason);

  AsyncStats stats;
  stats.deliveries = im.deliveries;
  stats.faults = im.faults;
  stats.starved = starved;
  stats.bytes_by_process.assign(static_cast<std::size_t>(n_), 0);
  for (const auto& p : im.processes) {
    stats.bytes_by_process[static_cast<std::size_t>(p->id)] += p->bytes_sent;
    if (p->honest) {
      stats.honest_bytes += p->bytes_sent;
      stats.honest_messages += p->messages_sent;
    }
  }
  return stats;
}

}  // namespace coca::async
