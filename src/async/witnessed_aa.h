// Witness-technique asynchronous Approximate Agreement, optimal t < n/3.
//
// The robust counterpart of `AsyncApproxAgreement`: following the witness
// technique of [Abraham-Amit-Dolev, OPODIS'04] (cited as [1] in the paper),
// each iteration runs over *reliable broadcasts* (Bracha instances, one per
// process) instead of bare sends:
//
//   1. RBC your (round, value): equivocation becomes impossible, and RBC
//      totality means any value one honest process obtains is eventually
//      obtained by all.
//   2. After delivering n-t round-r values, broadcast a REPORT naming the
//      senders you hold.
//   3. Accept a process as a *witness* once you have delivered every sender
//      its report names. Wait for n-t witnesses. Any two honest processes
//      then share an honest witness W, hence both hold all n-t values W
//      reported: their value multisets agree on >= n-t entries and differ
//      in at most t per side.
//   4. Update to the midpoint of the t-per-side-trimmed multiset: validity
//      and per-round halving follow from the same counting lemma as the
//      synchronous case -- now against *every* scheduler, which is exactly
//      what the plain t < n/5 single-exchange variant cannot offer.
//
// Processes keep serving RBC echoes after their last round (mark_done +
// lingering service loop) so stragglers retain the n-t honest participation
// RBC totality needs.
//
// Cost per iteration: n Bracha instances of O(l n^2) bits each plus
// O(n^3)-bit reports => O(l n^3 + n^4) bits. Communication-optimal
// *asynchronous* CA is exactly the open problem the paper closes with.
#pragma once

#include "async/async_network.h"
#include "util/bignat.h"

namespace coca::async {

class WitnessedApproxAgreement {
 public:
  /// Runs `rounds` witnessed iterations (same count at all honest
  /// processes; n > 3t required), calls `on_output` with the final value,
  /// marks the process done, and then *keeps serving* broadcast echoes for
  /// straggling processes. The call does not return normally -- the network
  /// unwinds it once every honest process has produced its output.
  void run(ProcessContext& ctx, const BigInt& input, std::size_t rounds,
           const std::function<void(const BigInt&)>& on_output) const;
};

}  // namespace coca::async
