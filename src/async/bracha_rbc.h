// Bracha Reliable Broadcast (asynchronous, t < n/3).
//
// The foundational asynchronous primitive (cited in the paper's related
// work via asynchronous Reliable Broadcast extension protocols [10, 41]):
// a designated broadcaster distributes a value such that
//   * an honest broadcaster's value is eventually delivered by all honest
//     processes (validity + totality);
//   * no two honest processes deliver different values (consistency), even
//     from an equivocating broadcaster;
//   * if any honest process delivers, all honest processes eventually
//     deliver (totality).
// A byzantine broadcaster may cause *nobody* to deliver -- Reliable
// Broadcast has no termination guarantee in that case, which the simulator
// surfaces as a detected deadlock.
//
// Classic INIT -> ECHO (n-t threshold) -> READY (t+1 amplification,
// 2t+1 delivery) structure; O(l n^2) bits.
#pragma once

#include <optional>

#include "async/async_network.h"

namespace coca::async {

class BrachaRbc {
 public:
  /// Participates in a single broadcast instance with the given
  /// `broadcaster` (which must supply `input`); blocks until delivery.
  static Bytes run(ProcessContext& ctx, int broadcaster,
                   const std::optional<Bytes>& input);
};

}  // namespace coca::async
