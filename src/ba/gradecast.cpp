#include "ba/gradecast.h"

#include <map>

namespace coca::ba {

namespace {

/// Encodes one optional entry per instance in `values`. Generic over the
/// entry type: round-2 echoes re-encode received payload *views* (zero
/// copy between receive and echo), round-3 vectors hold owned Bytes.
template <class T>
Bytes encode_vector(const std::vector<std::optional<T>>& values) {
  Writer w;
  for (const auto& v : values) {
    w.u8(v.has_value() ? 1 : 0);
    if (v) w.bytes(*v);
  }
  return std::move(w).take();
}

/// Decodes an instance vector of exactly `count` entries; nullopt if
/// malformed (the sender's whole vector is then ignored).
std::optional<std::vector<std::optional<Bytes>>> decode_vector(
    std::span<const std::uint8_t> raw, std::size_t count) {
  Reader r(raw);
  std::vector<std::optional<Bytes>> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto present = r.u8();
    if (!present || *present > 1) return std::nullopt;
    if (*present == 1) {
      auto v = r.bytes();
      if (!v) return std::nullopt;
      out[i] = std::move(*v);
    }
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

/// Shared core: one 3-round batch of gradecast instances led by the parties
/// in `is_leader`; `my_input` is this party's round-1 value when it leads.
std::vector<GradedValue> run_batch(net::PartyContext& ctx,
                                   const std::vector<bool>& is_leader,
                                   const std::optional<Bytes>& my_input) {
  const int n = ctx.n();
  const int t = ctx.t();
  const std::size_t nn = static_cast<std::size_t>(n);

  // Round 1: leaders distribute their values.
  if (is_leader[static_cast<std::size_t>(ctx.id())] && my_input) {
    ctx.send_all(*my_input);
  }
  std::vector<std::optional<net::Payload>> received(nn);  // views, no copy
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    if (is_leader[static_cast<std::size_t>(e.from)]) {
      received[static_cast<std::size_t>(e.from)] = e.payload;
    }
  }

  // Round 2: echo what each leader sent; per instance, keep the unique
  // value echoed by >= n-t parties (two values cannot both qualify).
  ctx.send_all(encode_vector(received));
  std::vector<std::map<Bytes, int>> echo_counts(nn);
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    const auto vec = decode_vector(e.payload, nn);
    if (!vec) continue;
    for (std::size_t j = 0; j < nn; ++j) {
      if ((*vec)[j]) ++echo_counts[j][*(*vec)[j]];
    }
  }
  std::vector<std::optional<Bytes>> y(nn);
  for (std::size_t j = 0; j < nn; ++j) {
    for (const auto& [value, cnt] : echo_counts[j]) {
      if (cnt >= n - t) {
        y[j] = value;
        break;
      }
    }
  }

  // Round 3: distribute the y's and grade. Honest y's per instance name at
  // most one value, so the t+1 and n-t thresholds each certify uniqueness.
  ctx.send_all(encode_vector(y));
  std::vector<std::map<Bytes, int>> support(nn);
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    const auto vec = decode_vector(e.payload, nn);
    if (!vec) continue;
    for (std::size_t j = 0; j < nn; ++j) {
      if ((*vec)[j]) ++support[j][*(*vec)[j]];
    }
  }
  std::vector<GradedValue> out(nn);
  for (std::size_t j = 0; j < nn; ++j) {
    const Bytes* best = nullptr;
    int best_count = 0;
    for (const auto& [value, cnt] : support[j]) {
      if (cnt > best_count) {
        best = &value;
        best_count = cnt;
      }
    }
    if (best != nullptr && best_count >= t + 1) {
      out[j].value = *best;
      out[j].grade = best_count >= n - t ? 2 : 1;
    }
  }
  return out;
}

}  // namespace

GradedValue gradecast(net::PartyContext& ctx, int leader,
                      const std::optional<Bytes>& input) {
  require(leader >= 0 && leader < ctx.n(), "gradecast: bad leader id");
  require(ctx.id() != leader || input.has_value(),
          "gradecast: the leader must supply an input");
  auto phase = ctx.phase("Gradecast");
  std::vector<bool> is_leader(static_cast<std::size_t>(ctx.n()), false);
  is_leader[static_cast<std::size_t>(leader)] = true;
  return run_batch(ctx, is_leader,
                   ctx.id() == leader ? input : std::nullopt)
      [static_cast<std::size_t>(leader)];
}

std::vector<GradedValue> gradecast_all(net::PartyContext& ctx,
                                       const Bytes& input) {
  auto phase = ctx.phase("GradecastAll");
  const std::vector<bool> is_leader(static_cast<std::size_t>(ctx.n()), true);
  return run_batch(ctx, is_leader, input);
}

}  // namespace coca::ba
