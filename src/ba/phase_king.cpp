#include "ba/phase_king.h"

#include <map>

namespace coca::ba {

namespace {

// Round-2 wire tag for "no value survived round 1" in the multivalued
// variant; distinct from every domain encoding (those start with 0 or 1).
constexpr std::uint8_t kNoneTag = 2;

}  // namespace

bool PhaseKingBinary::run(net::PartyContext& ctx, bool input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  std::uint8_t v = input ? 1 : 0;

  for (int phase = 0; phase <= t; ++phase) {
    // Round 1: universal exchange of v in {0,1}; adopt the unique value
    // received from >= n-t senders, else the sentinel 2.
    ctx.send_all(Bytes{v});
    int c[2] = {0, 0};
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.payload.size() == 1 && e.payload[0] <= 1) ++c[e.payload[0]];
    }
    std::uint8_t u = 2;
    if (c[0] >= n - t) {
      u = 0;
    } else if (c[1] >= n - t) {
      u = 1;
    }

    // Round 2: universal exchange of u in {0,1,2}; m is the most frequent
    // real value (ties to 0), "strong" if it reached n-t occurrences.
    ctx.send_all(Bytes{u});
    int d[3] = {0, 0, 0};
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.payload.size() == 1 && e.payload[0] <= 2) ++d[e.payload[0]];
    }
    const std::uint8_t m = d[1] > d[0] ? 1 : 0;
    const bool strong = d[m] >= n - t;

    // Round 3: the phase king broadcasts its m; non-strong parties adopt it
    // (a missing or malformed king message reads as 0).
    if (ctx.id() == phase) ctx.send_all(Bytes{m});
    std::uint8_t king_value = 0;
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.from == phase && e.payload.size() == 1 && e.payload[0] <= 1) {
        king_value = e.payload[0];
      }
    }
    v = strong ? m : king_value;
  }
  return v == 1;
}

MaybeBytes PhaseKingMultivalued::run(net::PartyContext& ctx,
                                     const MaybeBytes& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  MaybeBytes v = input;

  for (int phase = 0; phase <= t; ++phase) {
    // Round 1: exchange v; adopt the unique value with >= n-t occurrences.
    ctx.send_all(encode_maybe(v));
    // Payload-view keys: counting costs refcount bumps, not byte copies,
    // and the key order is the same lexicographic byte order as before.
    std::map<net::Payload, int> counts;
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (decode_maybe(e.payload)) ++counts[e.payload];
    }
    bool have_u = false;
    MaybeBytes u;
    for (const auto& [enc, cnt] : counts) {
      if (cnt >= n - t) {
        u = *decode_maybe(enc);
        have_u = true;
        break;  // at most one value can reach n-t distinct senders
      }
    }

    // Round 2: exchange u (or the none sentinel). m is the most frequent
    // real value, ties to the lexicographically smallest encoding; when no
    // real value was seen at all, m falls back to domain bottom.
    ctx.send_all(have_u ? encode_maybe(u) : Bytes{kNoneTag});
    std::map<net::Payload, int> d;
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (decode_maybe(e.payload)) ++d[e.payload];
    }
    MaybeBytes m;  // bottom unless a real value was observed
    int best = 0;
    for (const auto& [enc, cnt] : d) {  // key order = deterministic tiebreak
      if (cnt > best) {
        best = cnt;
        m = *decode_maybe(enc);
      }
    }
    const bool strong = best >= n - t;

    // Round 3: king broadcast; missing/malformed reads as bottom.
    if (ctx.id() == phase) ctx.send_all(encode_maybe(m));
    MaybeBytes king_value;
    for (const auto& e : net::first_per_sender(ctx.advance())) {
      if (e.from == phase) {
        if (auto dec = decode_maybe(e.payload)) king_value = std::move(*dec);
      }
    }
    v = strong ? m : king_value;
  }
  return v;
}

}  // namespace coca::ba
