#include "ba/dolev_strong.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/wire.h"

namespace coca::ba {

namespace {

/// The bytes every signature in a chain covers: domain tag, the designated
/// sender, and the value (binding a chain to one broadcast instance).
Bytes signed_content(int sender, const Bytes& value) {
  Writer w;
  w.u8(0x44);  // 'D', domain separation from other signed material
  w.u32(static_cast<std::uint32_t>(sender));
  w.bytes(value);
  return std::move(w).take();
}

struct Chain {
  Bytes value;
  std::vector<std::pair<int, crypto::Signature>> sigs;
};

Bytes encode_chain(const Chain& c) {
  Writer w;
  w.bytes(c.value);
  w.u8(narrow<std::uint8_t>(c.sigs.size()));
  for (const auto& [id, sig] : c.sigs) {
    w.u32(static_cast<std::uint32_t>(id));
    w.raw(std::span<const std::uint8_t>(sig.data(), sig.size()));
  }
  return std::move(w).take();
}

std::optional<Chain> decode_chain(std::span<const std::uint8_t> raw, int n) {
  Reader r(raw);
  auto value = r.bytes();
  const auto count = r.u8();
  if (!value || !count || *count > n) return std::nullopt;
  Chain c;
  c.value = std::move(*value);
  for (std::uint8_t i = 0; i < *count; ++i) {
    const auto id = r.u32();
    if (!id || *id >= static_cast<std::uint32_t>(n)) return std::nullopt;
    crypto::Signature sig;
    if (r.remaining() < sig.size()) return std::nullopt;
    for (auto& byte : sig) byte = *r.u8();
    c.sigs.emplace_back(static_cast<int>(*id), sig);
  }
  if (!r.at_end()) return std::nullopt;
  return c;
}

}  // namespace

std::optional<Bytes> DolevStrong::run(net::PartyContext& ctx,
                                      const crypto::Signer& signer,
                                      int sender,
                                      const std::optional<Bytes>& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  require(sender >= 0 && sender < n, "DolevStrong: bad sender id");
  require(signer.id() == ctx.id(), "DolevStrong: foreign signer");
  require(ctx.id() != sender || input.has_value(),
          "DolevStrong: the sender must supply an input");
  auto phase = ctx.phase("DolevStrong");

  std::vector<Bytes> extracted;  // at most two values, insertion order
  std::vector<Bytes> outbox;     // encoded chains to send next slot
  if (ctx.id() == sender) {
    Chain c{*input, {{sender, signer.sign(signed_content(sender, *input))}}};
    outbox.push_back(encode_chain(c));
    extracted.push_back(*input);
  }

  // Slots 0..t: send this slot's chains, then process receipts. A chain
  // received at slot s needs s+1 valid signatures from distinct parties,
  // the sender's among them.
  for (int slot = 0; slot <= t; ++slot) {
    for (Bytes& m : outbox) ctx.send_all(std::move(m));
    outbox.clear();

    std::map<int, int> processed;  // per-sender work bound vs flooding
    for (const auto& e : ctx.advance()) {
      if (++processed[e.from] > 4) continue;  // honest parties send <= 2
      const auto chain = decode_chain(e.payload, n);
      if (!chain || chain->sigs.size() < static_cast<std::size_t>(slot + 1)) {
        continue;
      }
      std::set<int> signers;
      const Bytes content = signed_content(sender, chain->value);
      bool ok = false;
      bool valid = true;
      for (const auto& [id, sig] : chain->sigs) {
        if (!signers.insert(id).second || !pki_->verify(id, content, sig)) {
          valid = false;
          break;
        }
        ok |= id == sender;
      }
      if (!valid || !ok) continue;
      if (std::find(extracted.begin(), extracted.end(), chain->value) !=
          extracted.end()) {
        continue;
      }
      if (extracted.size() == 2) continue;  // two already prove equivocation
      extracted.push_back(chain->value);
      if (slot < t) {
        Chain forwarded = *chain;
        if (!signers.contains(ctx.id())) {
          forwarded.sigs.emplace_back(ctx.id(), signer.sign(content));
        }
        outbox.push_back(encode_chain(forwarded));
      }
    }
  }

  if (extracted.size() == 1) return extracted.front();
  return std::nullopt;
}

}  // namespace coca::ba
