// Phase-King Byzantine Agreement (Berman-Garay-Perry style), t < n/3.
//
// The deterministic plain-model BA the paper's Corollary 2 plugs in as
// Pi_BA. Runs t+1 phases of three rounds each; the phase-k king is party
// k-1. Binary and multivalued variants share the same structure:
//
//   round 1 (universal exchange): send v; adopt the unique value received
//     from >= n-t senders, else fall back to the sentinel "none".
//   round 2 (universal exchange): send the round-1 result; let m be the
//     most frequent non-sentinel value and call a party "strong" if m got
//     >= n-t occurrences. Strong parties fix v := m.
//   round 3 (king): the king sends its m; non-strong parties adopt it.
//
// Correctness for t < n/3 hinges on two counting facts proven in the
// accompanying tests: after round 1 at most one real value survives among
// honest parties, and in an honest king's phase the king's most frequent
// value equals the survivors' value, so that phase ends in agreement, which
// later phases preserve.
//
// Communication: O(n^2) messages per phase, O(n^2 (t+1)) = O(n^3) total for
// binary inputs and O(l n^3) for l-bit inputs -- the classic costs the
// extension protocols of Section 7 are built to avoid.
#pragma once

#include "ba/ba_interface.h"

namespace coca::ba {

/// Binary Phase-King BA.
class PhaseKingBinary final : public BinaryBA {
 public:
  bool run(net::PartyContext& ctx, bool input) const override;
};

/// Multivalued Phase-King BA over Bytes-or-bottom (bottom is an ordinary
/// domain value; the internal sentinel "none" is distinct from it).
class PhaseKingMultivalued final : public MultivaluedBA {
 public:
  MaybeBytes run(net::PartyContext& ctx,
                 const MaybeBytes& input) const override;
};

}  // namespace coca::ba
