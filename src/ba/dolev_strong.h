// Dolev-Strong authenticated broadcast (t < n, with PKI setup).
//
// The classic signature-chain broadcast: t+1 rounds, tolerates any number
// of corruptions, and is the natural substrate for the paper's open
// problem "the synchronous model with t < n/2 corruptions assuming
// cryptographic setup" (Section 8). A value is *extracted* at round r iff
// it arrives carrying r+1 valid signatures from distinct parties, the
// sender's among them; extracted values are re-signed and forwarded (at
// most two distinct values ever -- two extractions already prove the
// sender equivocated, and any two suffice to make every honest party
// output the default). After round t+1: output the value iff exactly one
// was extracted, else bottom.
//
// Guarantees: an honest sender's value is output by all honest parties
// (validity); all honest parties output the same value-or-bottom
// (consistency), even for a corrupted sender. Cost O(n^2 (l + n sigma))
// bits with the two-value optimization.
#pragma once

#include <optional>

#include "crypto/sim_signatures.h"
#include "net/sync_network.h"

namespace coca::ba {

class DolevStrong {
 public:
  /// `pki` must outlive this object.
  explicit DolevStrong(const crypto::SimulatedPki& pki) : pki_(&pki) {}

  /// One broadcast with designated `sender` (which must supply `input`).
  /// `signer` is this party's own signing capability. Runs exactly t+2
  /// lock-step rounds for every party. Returns the broadcast value, or
  /// bottom if the (necessarily corrupted) sender equivocated or stayed
  /// silent.
  std::optional<Bytes> run(net::PartyContext& ctx,
                           const crypto::Signer& signer, int sender,
                           const std::optional<Bytes>& input) const;

 private:
  const crypto::SimulatedPki* pki_;
};

}  // namespace coca::ba
