// Byzantine Agreement interfaces (the paper's assumed Pi_BA).
//
// The CA protocols of Sections 3-6 are parameterized by "a BA protocol
// Pi_BA resilient against t < n/3 corruptions" (Definition 2), invoked on
// one-bit inputs and on kappa-bit inputs. Both shapes are abstract here so
// benches can swap instantiations and measure the additive BITS_kappa(Pi_BA)
// term explicitly.
//
// Multivalued BA runs over the domain Bytes-or-bottom: the special symbol
// bottom appears as a legal input/output inside Pi_BA+ (Section 7), so it is
// treated as an ordinary domain element with a tagged wire encoding.
//
// Round-schedule contract: every implementation must keep honest parties in
// lock-step -- the number of rounds advanced may depend only on (n, t) and
// on *agreed* values (e.g. Pi_BA+ legitimately stops after its first stage
// when the agreed confirmation bit is 1), never on a single party's private
// input.
#pragma once

#include <optional>

#include "net/sync_network.h"
#include "util/wire.h"

namespace coca::ba {

/// A value in the domain of multivalued BA: some bytes, or bottom.
using MaybeBytes = std::optional<Bytes>;

/// Binary Byzantine Agreement (Definition 2 on {0,1}).
class BinaryBA {
 public:
  virtual ~BinaryBA() = default;
  /// Joins the protocol with `input`; returns the agreed bit.
  virtual bool run(net::PartyContext& ctx, bool input) const = 0;
};

/// Multivalued Byzantine Agreement over Bytes-or-bottom.
class MultivaluedBA {
 public:
  virtual ~MultivaluedBA() = default;
  virtual MaybeBytes run(net::PartyContext& ctx,
                         const MaybeBytes& input) const = 0;
};

/// The bundle of assumed-BA instantiations threaded through the stack.
struct BAKit {
  const BinaryBA* binary = nullptr;
  const MultivaluedBA* multivalued = nullptr;
};

/// Canonical tagged encoding of a MaybeBytes domain element.
inline Bytes encode_maybe(const MaybeBytes& v) {
  Writer w;
  if (!v) {
    w.u8(0);
  } else {
    w.u8(1);
    w.bytes(*v);
  }
  return std::move(w).take();
}

/// Strict decode of the tagged encoding; nullopt-of-optional is expressed as
/// the outer optional being empty (malformed), the inner being bottom.
/// Span-typed so received payloads decode in place, whether they are owned
/// Bytes or zero-copy slab views off the wire.
inline std::optional<MaybeBytes> decode_maybe(
    std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  if (*tag == 0) {
    if (!r.at_end()) return std::nullopt;
    return MaybeBytes{std::nullopt};
  }
  if (*tag == 1) {
    auto b = r.bytes();
    if (!b || !r.at_end()) return std::nullopt;
    return MaybeBytes{std::move(*b)};
  }
  return std::nullopt;
}

}  // namespace coca::ba
