// Pi_lBA+ (Section 7, Theorem 1): BA for long messages with Intrusion
// Tolerance and Bounded Pre-Agreement at extension-protocol cost.
//
// Pipeline, following the outline of [Nayak et al., DISC'20] / [Bhangale et
// al., ASIACRYPT'22] that the paper builds on:
//   1. RS-encode the l-bit input into n codewords (any n-t reconstruct) and
//      accumulate them into a kappa-bit Merkle root z with witnesses.
//   2. Agree on a root z* via Pi_BA+ (kappa-bit values). Bottom stays bottom.
//   3. Distributing step: parties holding z = z* send codeword j plus its
//      witness to P_j; every party that obtained its own verified codeword
//      re-broadcasts it; everyone decodes from >= n-t verified codewords.
//
// Cost (Theorem 1): O(l n + kappa n^2 log n) + BITS_kappa(Pi_BA+) bits and
// O(1) + ROUNDS(Pi_BA+) rounds.
#pragma once

#include "ba/ba_plus.h"

namespace coca::ba {

class LongBAPlus {
 public:
  explicit LongBAPlus(BAKit kit) : ba_plus_(kit) {}

  /// Joins with an arbitrary-length input; returns the agreed value
  /// (an honest party's input) or bottom.
  /// Span-typed input: accepts owned Bytes and zero-copy payload views
  /// alike (the extension-broadcast caller feeds received wire payloads
  /// straight in); the bytes are only read during the call.
  MaybeBytes run(net::PartyContext& ctx,
                 std::span<const std::uint8_t> input) const;

 private:
  BAPlus ba_plus_;
};

}  // namespace coca::ba
