#include "ba/long_ba_plus.h"

#include <algorithm>
#include <map>

#include "codec/reed_solomon.h"
#include "crypto/merkle.h"

namespace coca::ba {

namespace {

using crypto::Digest;
using crypto::MerkleTree;
using crypto::MerkleWitness;

Bytes encode_tuple(std::size_t index, const Bytes& share,
                   const MerkleWitness& witness) {
  Writer w;
  w.u32(narrow<std::uint32_t>(index));
  w.bytes(share);
  w.u8(narrow<std::uint8_t>(witness.size()));
  for (const Digest& d : witness) {
    w.raw(std::span<const std::uint8_t>(d.data(), d.size()));
  }
  return std::move(w).take();
}

struct Tuple {
  std::size_t index;
  Bytes share;
  MerkleWitness witness;
};

std::optional<Tuple> decode_tuple(std::span<const std::uint8_t> raw) {
  Reader r(raw);
  const auto index = r.u32();
  if (!index) return std::nullopt;
  auto share = r.bytes();
  if (!share) return std::nullopt;
  const auto wlen = r.u8();
  if (!wlen || r.remaining() != static_cast<std::size_t>(*wlen) * 32) {
    return std::nullopt;
  }
  MerkleWitness witness(*wlen);
  for (auto& d : witness) {
    for (auto& byte : d) byte = *r.u8();
  }
  return Tuple{*index, std::move(*share), std::move(witness)};
}

}  // namespace

MaybeBytes LongBAPlus::run(net::PartyContext& ctx,
                           std::span<const std::uint8_t> input) const {
  const std::size_t n = static_cast<std::size_t>(ctx.n());
  const std::size_t t = static_cast<std::size_t>(ctx.t());
  const std::size_t k = n - t;
  auto phase = ctx.phase("lBA+");

  // Step 1: RS-encode the length-prefixed payload; accumulate codewords
  // into a Merkle root. The length prefix travels inside the coded payload
  // so that all honest parties reconstruct the exact byte length without
  // trusting any per-tuple metadata.
  const codec::ReedSolomon rs(n, k);
  Bytes payload;
  {
    Writer w;
    w.u64(input.size());
    w.raw(input);
    payload = std::move(w).take();
  }
  const std::vector<Bytes> shares = rs.encode(payload);
  const MerkleTree tree = MerkleTree::build(shares);
  const Digest z = tree.root();

  // Step 2: agree on a root via Pi_BA+.
  MaybeBytes z_star_bytes;
  {
    auto root_phase = ctx.phase("lBA+/root-agreement");
    z_star_bytes = ba_plus_.run(ctx, crypto::digest_bytes(z));
  }
  if (!z_star_bytes) return std::nullopt;
  if (z_star_bytes->size() != z.size()) {
    // Agreed on a non-digest value; possible only if honest parties fed
    // such inputs into Pi_BA+ (they never do here). The branch condition is
    // an agreed value, so all honest parties take it together.
    return std::nullopt;
  }
  Digest z_star;
  std::copy(z_star_bytes->begin(), z_star_bytes->end(), z_star.begin());

  auto dist_phase = ctx.phase("lBA+/distribute");
  // Step 3a: holders of the winning root send each party its codeword.
  if (z_star == z) {
    for (std::size_t j = 0; j < n; ++j) {
      ctx.send(narrow<int>(j), encode_tuple(j, shares[j], tree.witness(j)));
    }
  }
  const auto is_valid = [&](const Tuple& tup) {
    return tup.index < n && MerkleTree::verify(z_star, n, tup.index, tup.share,
                                               tup.witness);
  };
  std::optional<Tuple> mine;
  for (const auto& e : ctx.advance()) {
    auto tup = decode_tuple(e.payload);
    if (!tup || tup->index != static_cast<std::size_t>(ctx.id())) continue;
    if (is_valid(*tup)) {
      mine = std::move(*tup);
      break;
    }
  }

  // Step 3b: re-broadcast own verified codeword; decode from all verified
  // codewords received (any valid tuple is genuine under collision
  // resistance, whoever forwarded it).
  if (mine) ctx.send_all(encode_tuple(mine->index, mine->share, mine->witness));
  std::map<std::size_t, Bytes> verified;
  if (mine) verified.emplace(mine->index, mine->share);
  for (const auto& e : ctx.advance()) {
    auto tup = decode_tuple(e.payload);
    if (!tup || verified.contains(tup->index)) continue;
    if (is_valid(*tup)) verified.emplace(tup->index, std::move(tup->share));
  }
  if (verified.size() < k) return std::nullopt;  // unreachable for t' <= t

  // All verified shares are codewords of the z*-holder's encoding, so they
  // share one length; decode the padded payload and strip the prefix.
  const std::size_t share_len = verified.begin()->second.size();
  std::vector<std::pair<std::size_t, Bytes>> pool;
  pool.reserve(verified.size());
  for (auto& [idx, share] : verified) {
    if (share.size() == share_len) pool.emplace_back(idx, std::move(share));
  }
  const std::size_t padded_size = 2 * k * (share_len / 2);
  const auto padded = rs.decode(pool, padded_size);
  if (!padded) return std::nullopt;
  Reader r(*padded);
  const auto len = r.u64();
  if (!len || *len > r.remaining()) return std::nullopt;
  return Bytes(padded->begin() + 8,
               padded->begin() + 8 + narrow<std::ptrdiff_t>(*len));
}

}  // namespace coca::ba
