// Pi_BA+ (Section 7, Theorem 6): BA for short (kappa-bit) values with
// Intrusion Tolerance and Bounded Pre-Agreement.
//
// The technical core of the paper's Section 7. On top of plain BA it
// guarantees (Definitions 3 and 4):
//   * Intrusion Tolerance -- the output is an honest party's input or bottom,
//   * Bounded Pre-Agreement -- bottom is only possible when fewer than n-2t
//     honest parties share an input value.
//
// Structure: distribute inputs; vote for every value seen n-2t times (at
// most two); let a <= b be the (at most two) values with n-t votes; try to
// agree on a via the assumed Pi_BA plus a confirmation bit-BA; then on b;
// otherwise output bottom.
//
// Cost (Theorem 6): O(kappa n^2) + 2 x BITS_kappa(Pi_BA) + 2 x BITS_1(Pi_BA),
// and O(1) + O(1) x ROUNDS(Pi_BA) rounds.
#pragma once

#include "ba/ba_interface.h"

namespace coca::ba {

class BAPlus {
 public:
  /// Both members of `kit` must outlive this object.
  explicit BAPlus(BAKit kit) : kit_(kit) {
    require(kit.binary != nullptr && kit.multivalued != nullptr,
            "BAPlus: kit must provide binary and multivalued BA");
  }

  /// Joins with a (non-bottom) input value; returns the agreed value or
  /// bottom. All honest parties obtain the same result.
  MaybeBytes run(net::PartyContext& ctx, const Bytes& input) const;

 private:
  BAKit kit_;
};

}  // namespace coca::ba
