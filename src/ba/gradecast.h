// Gradecast (graded broadcast), t < n/3.
//
// The classic primitive behind the "simple gradecast based algorithms" line
// of AA work the paper cites [6]: a designated leader distributes a value
// and every party outputs (value, grade) with grade in {0, 1, 2} such that
//   * an honest leader yields grade 2 for its value at every honest party;
//   * if any honest party outputs grade 2, every honest party outputs the
//     same value with grade >= 1;
//   * any two honest parties with grade >= 1 hold the same value.
// Cost: O(l n^2) bits, 3 rounds per instance.
//
// `GradecastAll` runs the n leader instances of one "everyone gradecasts"
// step batched into the same 3 rounds (one combined message per round), the
// form iterated agreement algorithms consume.
#pragma once

#include <optional>

#include "net/sync_network.h"
#include "util/wire.h"

namespace coca::ba {

struct GradedValue {
  /// Engaged iff grade >= 1.
  std::optional<Bytes> value;
  int grade = 0;
};

/// One gradecast instance with `leader`; the leader passes its input, all
/// other parties pass nullopt. Three rounds for everyone.
GradedValue gradecast(net::PartyContext& ctx, int leader,
                      const std::optional<Bytes>& input);

/// Everyone gradecasts simultaneously: party i leads instance i with
/// `input`; returns the n graded outputs (index = leader id). Three rounds.
std::vector<GradedValue> gradecast_all(net::PartyContext& ctx,
                                       const Bytes& input);

}  // namespace coca::ba
