#include "ba/ba_plus.h"

#include <algorithm>
#include <map>

namespace coca::ba {

MaybeBytes BAPlus::run(net::PartyContext& ctx, const Bytes& input) const {
  const int n = ctx.n();
  const int t = ctx.t();
  auto phase = ctx.phase("BA+");

  // Line 1: distribute inputs. Any byte string counts as a value here;
  // inputs are opaque to the protocol.
  ctx.send_all(input);
  // Keyed by payload *views*: counting received values costs refcount
  // bumps, not byte copies (ordering matches Bytes ordering bit for bit).
  std::map<net::Payload, int> counts;
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    ++counts[e.payload];
  }

  // Line 2: vote for every value received from >= n-2t senders. The paper
  // proves at most two such values exist; we order candidates by
  // (count desc, value asc) so behaviour stays deterministic even under
  // more corruptions than the model allows.
  std::vector<net::Payload> candidates;
  for (const auto& [value, cnt] : counts) {
    if (cnt >= n - 2 * t) candidates.push_back(value);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const net::Payload& x, const net::Payload& y) {
                     return counts[x] > counts[y];
                   });
  if (candidates.size() > 2) candidates.resize(2);
  {
    Writer vote;
    vote.u8(narrow<std::uint8_t>(candidates.size()));
    for (const net::Payload& c : candidates) vote.bytes(c);
    ctx.send_all(std::move(vote).take());
  }

  // Line 3: a and b are the (at most two) values voted by >= n-t parties.
  std::map<Bytes, int> votes;
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    Reader r(e.payload);
    const auto k = r.u8();
    if (!k || *k > 2) continue;
    Bytes seen[2];
    std::size_t got = 0;
    for (std::uint8_t i = 0; i < *k; ++i) {
      auto v = r.bytes();
      if (!v) break;
      // A sender's vote counts once per distinct value.
      if (got == 1 && seen[0] == *v) continue;
      seen[got++] = std::move(*v);
    }
    for (std::size_t i = 0; i < got; ++i) ++votes[seen[i]];
  }
  std::vector<Bytes> heavy;
  for (const auto& [value, cnt] : votes) {
    if (cnt >= n - t) heavy.push_back(value);
  }
  std::stable_sort(heavy.begin(), heavy.end(),
                   [&](const Bytes& x, const Bytes& y) {
                     return votes[x] > votes[y];
                   });
  if (heavy.size() > 2) heavy.resize(2);
  std::sort(heavy.begin(), heavy.end());  // a <= b in value order

  MaybeBytes a, b;
  if (heavy.size() == 1) {
    a = heavy[0];
    b = heavy[0];
  } else if (heavy.size() == 2) {
    a = heavy[0];
    b = heavy[1];
  }

  // Line 4: try to agree on a.
  const MaybeBytes a_prime = kit_.multivalued->run(ctx, a);
  const bool happy_a = kit_.binary->run(ctx, a_prime == a && a.has_value());
  if (happy_a) return a_prime;

  // Line 5: try to agree on b.
  const MaybeBytes b_prime = kit_.multivalued->run(ctx, b);
  const bool happy_b = kit_.binary->run(ctx, b_prime == b && b.has_value());
  if (happy_b) return b_prime;
  return std::nullopt;
}

}  // namespace coca::ba
