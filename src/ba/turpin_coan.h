// Turpin-Coan extension: multivalued BA from binary BA, t < n/3.
//
// The classic 2-round reduction [Turpin-Coan'84] the paper cites as the
// first long-message extension protocol; costs O(l n^2) bits on top of one
// binary BA. Serves two roles here:
//   * the kappa-bit Pi_BA instantiation used inside Pi_BA+ (keeping the
//     poly(n, kappa) additive term at O(kappa n^2 + n^3)), and
//   * the naive long-message BA baseline that Pi_lBA+ (Theorem 1) beats by a
//     factor of n (bench T4).
//
// As a byproduct of the reduction, the output is always an honest input or
// bottom (Intrusion Tolerance in the paper's Definition 3); Bounded
// Pre-Agreement, however, does NOT hold -- that is exactly the property
// Pi_BA+ adds.
#pragma once

#include "ba/ba_interface.h"

namespace coca::ba {

class TurpinCoan final : public MultivaluedBA {
 public:
  /// `binary` must outlive this object.
  explicit TurpinCoan(const BinaryBA& binary) : binary_(&binary) {}

  MaybeBytes run(net::PartyContext& ctx,
                 const MaybeBytes& input) const override;

 private:
  const BinaryBA* binary_;
};

}  // namespace coca::ba
