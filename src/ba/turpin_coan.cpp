#include "ba/turpin_coan.h"

#include <map>

namespace coca::ba {

namespace {
constexpr std::uint8_t kNoneTag = 2;  // round-2 "no candidate" marker
}  // namespace

MaybeBytes TurpinCoan::run(net::PartyContext& ctx,
                           const MaybeBytes& input) const {
  const int n = ctx.n();
  const int t = ctx.t();

  // Round 1: distribute inputs; y is the unique value received from >= n-t
  // senders, if any (two values cannot both qualify when t < n/2).
  ctx.send_all(encode_maybe(input));
  // Payload-view keys: counting and re-sending the winning encoding are
  // pure view operations -- no byte is copied between receive and echo.
  std::map<net::Payload, int> counts;
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    if (decode_maybe(e.payload)) ++counts[e.payload];
  }
  bool have_y = false;
  net::Payload y_enc;
  for (const auto& [enc, cnt] : counts) {
    if (cnt >= n - t) {
      y_enc = enc;
      have_y = true;
      break;
    }
  }

  // Round 2: distribute y (or none). Honest y's can name at most one value,
  // so a value echoed by >= n-t senders certifies near pre-agreement.
  ctx.send_all(have_y ? y_enc : net::Payload(Bytes{kNoneTag}));
  std::map<net::Payload, int> echoes;
  for (const auto& e : net::first_per_sender(ctx.advance())) {
    if (decode_maybe(e.payload)) ++echoes[e.payload];
  }
  bool certified = false;
  for (const auto& [enc, cnt] : echoes) {
    if (cnt >= n - t) {
      certified = true;
      break;
    }
  }

  // Binary BA decides whether the certified value is adopted.
  if (!binary_->run(ctx, certified)) return std::nullopt;

  // Agreement on 1 implies >= t+1 honest parties echoed the same value w,
  // so every honest party sees w at least t+1 times and nothing else can
  // reach t+1 (honest echoes name at most one value).
  for (const auto& [enc, cnt] : echoes) {
    if (cnt >= t + 1) return *decode_maybe(enc);
  }
  // Unreachable when at most t parties are corrupted; deterministic
  // fallback keeps behaviour defined under harsher test conditions.
  return std::nullopt;
}

}  // namespace coca::ba
