#include "svc/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace coca::svc {

namespace {

Bytes u32_payload(std::uint32_t v) {
  return Bytes{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 24)};
}

}  // namespace

// ---------------------------------------------------------------------------
// WireClient

WireClient::WireClient(Fd fd, ClientOptions options)
    : options_(options), fd_(std::move(fd)) {
  set_socket_buffers(fd_.get(), options_.socket_buffer_bytes);
  reader_ = std::thread([this] { reader_loop(); });
}

std::unique_ptr<WireClient> WireClient::connect_uds_path(
    const std::string& path, ClientOptions options) {
  return std::unique_ptr<WireClient>(
      new WireClient(connect_uds(path), options));
}

std::unique_ptr<WireClient> WireClient::connect_tcp(std::uint16_t port,
                                                    ClientOptions options) {
  return std::unique_ptr<WireClient>(
      new WireClient(connect_tcp_loopback(port), options));
}

WireClient::~WireClient() {
  // Unblock the reader (EOF) and join; sessions still alive observe the
  // disconnect through their dead flag.
  ::shutdown(fd_.get(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
}

bool WireClient::disconnected() const {
  std::lock_guard lk(mu_);
  return disconnected_;
}

void WireClient::reader_loop() {
  FrameDecoder decoder;
  constexpr std::size_t kReadChunk = 64 * 1024;
  std::string reason;
  for (;;) {
    // Zero-copy receive: fill the decoder's pool slab directly; decoded
    // kDeliver payloads are views into it and flow to the protocol as-is.
    const std::span<std::uint8_t> w = decoder.writable(kReadChunk);
    const ssize_t got = ::read(fd_.get(), w.data(), w.size());
    if (got > 0) {
      decoder.commit(static_cast<std::size_t>(got));
      while (std::optional<Frame> f = decoder.next()) {
        dispatch(std::move(*f));
      }
      if (decoder.failed()) {
        reason = "malformed daemon stream: " + decoder.error();
        break;
      }
      continue;
    }
    if (got == 0) {
      reason = "daemon closed the connection";
      break;
    }
    if (errno == EINTR) continue;
    reason = std::string("socket read failed: ") + std::strerror(errno);
    break;
  }
  std::lock_guard lk(mu_);
  disconnected_ = true;
  disconnect_reason_ = reason;
  for (auto& [id, s] : sessions_) {
    if (!s->in_.dead) {
      s->in_.dead = true;
      s->in_.error = reason;
    }
    s->in_.cv.notify_all();
  }
}

void WireClient::dispatch(Frame f) {
  std::lock_guard lk(mu_);
  const auto it = sessions_.find(f.header.session);
  if (it == sessions_.end()) return;  // late frame for a closed session
  WireSession::Inbound& in = it->second->in_;
  switch (f.header.type) {
    case FrameType::kOpenAck:
      in.open_acked = true;
      break;
    case FrameType::kDeliver:
      // The payload is already a slab view; it rides into the engine's
      // round messages without ever being materialized.
      in.delivered.push_back({static_cast<int>(f.header.from),
                              static_cast<int>(f.header.to),
                              std::move(f.payload)});
      return;  // no wakeup per message; the commit barrier notifies
    case FrameType::kCommit:
      in.round_done = true;
      break;
    case FrameType::kClosed:
      in.closed_acked = true;
      break;
    case FrameType::kError:
      in.dead = true;
      in.error = "daemon error: " +
                 std::string(f.payload.begin(), f.payload.end());
      break;
    default:
      in.dead = true;
      in.error = "unexpected daemon frame type";
      break;
  }
  in.cv.notify_all();
}

bool WireClient::write_all(::iovec* iov, int iovcnt) {
  std::size_t idx = 0;
  while (idx < static_cast<std::size_t>(iovcnt)) {
    const int chunk =
        std::min(iovcnt - static_cast<int>(idx), 256);
    // sendmsg instead of writev purely for MSG_NOSIGNAL: a daemon that
    // hard-closed the connection must surface as a structured transport
    // failure (EPIPE), not a process-killing SIGPIPE.
    ::msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = static_cast<std::size_t>(chunk);
    const ssize_t wrote = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0) {
      if (left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) +
                            left;
        iov[idx].iov_len -= left;
        left = 0;
      }
    }
  }
  return true;
}

std::unique_ptr<WireSession> WireClient::open(int n, int t) {
  require(n >= 1 && n <= 0xFFFF && t >= 0 && t < n,
          "WireClient::open: bad n/t");
  std::unique_ptr<WireSession> session;
  {
    std::lock_guard lk(mu_);
    require(!disconnected_, "WireClient::open: connection is down");
    const std::uint32_t id = next_session_++;
    session.reset(new WireSession(*this, id));
    sessions_.emplace(id, session.get());
  }
  FrameHeader h;
  h.type = FrameType::kOpen;
  h.session = session->id();
  Bytes open_payload{
      static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
      static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(t >> 8)};
  const auto hdr =
      encode_header(h, static_cast<std::uint32_t>(open_payload.size()));
  iovec iov[2] = {{const_cast<std::uint8_t*>(hdr.data()), hdr.size()},
                  {open_payload.data(), open_payload.size()}};
  bool sent;
  {
    std::lock_guard lk(send_mu_);
    sent = write_all(iov, 2);
  }
  std::unique_lock lk(mu_);
  if (!sent) {
    sessions_.erase(session->id());
    throw Error("WireClient::open: send failed");
  }
  WireSession::Inbound& in = session->in_;
  in.cv.wait_for(lk, std::chrono::milliseconds(options_.handshake_timeout_ms),
                 [&] { return in.open_acked || in.dead; });
  if (!in.open_acked) {
    const std::string why = in.dead ? in.error : "handshake timeout";
    sessions_.erase(session->id());
    throw Error("WireClient::open: " + why);
  }
  return session;
}

// ---------------------------------------------------------------------------
// WireSession

WireSession::~WireSession() {
  close();
  std::lock_guard lk(client_.mu_);
  client_.sessions_.erase(id_);
}

std::string WireSession::failure_reason() const {
  std::lock_guard lk(client_.mu_);
  return in_.error.empty() ? "transport failure" : in_.error;
}

std::optional<std::vector<net::WireMessage>> WireSession::route(
    std::size_t round, std::vector<net::WireMessage> staged) {
  {
    std::lock_guard lk(client_.mu_);
    if (in_.dead) return std::nullopt;
    in_.delivered.clear();
    in_.round_done = false;
  }

  // Send path: one gather batch of (header, payload-view) iovecs. The
  // payload iovecs point straight into the protocol's refcounted buffers;
  // nothing is staged or copied client-side.
  const std::uint32_t r32 = static_cast<std::uint32_t>(round);
  std::vector<std::array<std::uint8_t, kHeaderSize>> headers;
  headers.reserve(staged.size() + 1);
  std::vector<iovec> iov;
  iov.reserve(2 * staged.size() + 2);
  for (const net::WireMessage& m : staged) {
    require(m.payload.size() <= kMaxFramePayload,
            "WireSession::route: message exceeds frame payload limit");
    FrameHeader h;
    h.type = FrameType::kMsg;
    h.session = id_;
    h.round = r32;
    h.from = static_cast<std::uint16_t>(m.from);
    h.to = static_cast<std::uint16_t>(m.to);
    headers.push_back(
        encode_header(h, static_cast<std::uint32_t>(m.payload.size())));
    iov.push_back({const_cast<std::uint8_t*>(headers.back().data()),
                   kHeaderSize});
    if (m.payload.size() > 0) {
      iov.push_back({const_cast<std::uint8_t*>(m.payload.data()),
                     m.payload.size()});
    }
  }
  FrameHeader commit;
  commit.type = FrameType::kCommit;
  commit.session = id_;
  commit.round = r32;
  const Bytes commit_payload =
      u32_payload(static_cast<std::uint32_t>(staged.size()));
  headers.push_back(encode_header(
      commit, static_cast<std::uint32_t>(commit_payload.size())));
  iov.push_back({const_cast<std::uint8_t*>(headers.back().data()),
                 kHeaderSize});
  iov.push_back({const_cast<Bytes&>(commit_payload).data(),
                 commit_payload.size()});

  bool sent;
  {
    std::lock_guard lk(client_.send_mu_);
    sent = client_.write_all(iov.data(), static_cast<int>(iov.size()));
  }
  std::unique_lock lk(client_.mu_);
  if (!sent) {
    in_.dead = true;
    if (in_.error.empty()) in_.error = "socket write failed";
    // A failed write is a connection-level loss, not just this session's:
    // report it immediately instead of waiting for the reader thread to
    // observe the EOF.
    client_.disconnected_ = true;
    if (client_.disconnect_reason_.empty()) {
      client_.disconnect_reason_ = in_.error;
    }
    return std::nullopt;
  }

  // Round barrier: the daemon delivered everything back + kCommit.
  in_.cv.wait_for(lk,
                  std::chrono::milliseconds(client_.options_.round_timeout_ms),
                  [&] { return in_.round_done || in_.dead; });
  if (in_.dead) return std::nullopt;
  if (!in_.round_done) {
    in_.dead = true;
    in_.error = "round barrier timeout after " +
                std::to_string(client_.options_.round_timeout_ms) + "ms";
    return std::nullopt;
  }
  std::vector<net::WireMessage> delivered = std::move(in_.delivered);
  in_.delivered.clear();
  in_.round_done = false;
  return delivered;
}

void WireSession::close() {
  std::unique_lock lk(client_.mu_);
  if (close_sent_ || in_.dead || client_.disconnected_) return;
  close_sent_ = true;
  FrameHeader h;
  h.type = FrameType::kClose;
  h.session = id_;
  const auto hdr = encode_header(h, 0);
  iovec iov[1] = {{const_cast<std::uint8_t*>(hdr.data()), hdr.size()}};
  lk.unlock();
  bool sent;
  {
    std::lock_guard slk(client_.send_mu_);
    sent = client_.write_all(iov, 1);
  }
  lk.lock();
  if (!sent) return;
  in_.cv.wait_for(lk,
                  std::chrono::milliseconds(
                      client_.options_.handshake_timeout_ms),
                  [&] { return in_.closed_acked || in_.dead; });
}

}  // namespace coca::svc
