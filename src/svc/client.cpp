#include "svc/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace coca::svc {

namespace {

using Clock = std::chrono::steady_clock;

Bytes u32_payload(std::uint32_t v) {
  return Bytes{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 24)};
}

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// WireClient

WireClient::WireClient(Fd fd, Target target, ClientOptions options)
    : options_(std::move(options)), target_(std::move(target)),
      fd_(std::move(fd)) {
  options_.fault_plan.validate();
  fault_fuse_ = WireFaultFuse(options_.fault_plan);
  set_socket_buffers(fd_.get(), options_.socket_buffer_bytes);
  reader_ = std::thread([this] { reader_loop(); });
}

std::unique_ptr<WireClient> WireClient::connect_uds_path(
    const std::string& path, ClientOptions options) {
  Target t;
  t.uds_path = path;
  return std::unique_ptr<WireClient>(
      new WireClient(connect_uds(path), std::move(t), std::move(options)));
}

std::unique_ptr<WireClient> WireClient::connect_tcp(std::uint16_t port,
                                                    ClientOptions options) {
  Target t;
  t.tcp = true;
  t.port = port;
  return std::unique_ptr<WireClient>(new WireClient(
      connect_tcp_loopback(port), std::move(t), std::move(options)));
}

WireClient::~WireClient() {
  // Unblock the reader wherever it is -- a blocking read (EOF via
  // shutdown), a bounded poll (stopping_ check on wake), or a backoff
  // sleep (client_cv_) -- and join. Sessions still alive observe the
  // shutdown through their dead flag.
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::scoped_lock lk(send_mu_, mu_);
    ::shutdown(fd_.get(), SHUT_RDWR);
    client_cv_.notify_all();
  }
  if (reader_.joinable()) reader_.join();
}

bool WireClient::disconnected() const {
  std::lock_guard lk(mu_);
  return disconnected_;
}

void WireClient::reader_loop() {
  FrameDecoder decoder;
  for (;;) {
    bool heartbeat = false;
    const std::string reason = read_stream(decoder, &heartbeat);
    if (stopping_.load(std::memory_order_relaxed) ||
        !options_.recovery.enabled) {
      fail_all(reason);
      return;
    }
    // The byte stream is starting over: clear any torn frame (and sticky
    // failure) so the slab returns to the pool instead of leaking across
    // the reconnect.
    decoder.reset();
    if (!reconnect_and_resume(reason, heartbeat)) return;
  }
}

std::string WireClient::read_stream(FrameDecoder& decoder, bool* heartbeat) {
  constexpr std::size_t kReadChunk = 64 * 1024;
  const RecoveryOptions& rec = options_.recovery;
  const bool probing = rec.enabled && rec.heartbeat_interval_ms > 0;
  auto last_alive = Clock::now();  // last inbound byte or probe sent
  int pings_unanswered = 0;
  std::uint32_t ping_seq = 0;
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) {
      return "client shutting down";
    }
    // With recovery on, the poll is bounded so a destructor racing a
    // reconnect's fd swap can never strand the reader in an unbounded
    // block on a socket nobody will shut down.
    int timeout_ms = -1;
    if (rec.enabled) {
      timeout_ms = 500;
      if (probing) {
        const auto due =
            last_alive + std::chrono::milliseconds(rec.heartbeat_interval_ms);
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              due - Clock::now())
                              .count();
        timeout_ms = static_cast<int>(std::clamp<std::int64_t>(left, 1, 500));
      }
    }
    ::pollfd pfd{fd_.get(), POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return std::string("socket poll failed: ") + std::strerror(errno);
    }
    if (pr == 0) {
      if (probing &&
          Clock::now() - last_alive >=
              std::chrono::milliseconds(rec.heartbeat_interval_ms)) {
        if (pings_unanswered >= rec.heartbeat_misses) {
          stats_.heartbeats_missed.fetch_add(
              static_cast<std::uint64_t>(pings_unanswered),
              std::memory_order_relaxed);
          *heartbeat = true;
          return "heartbeat timeout: " + std::to_string(pings_unanswered) +
                 " probes unanswered";
        }
        FrameHeader h;
        h.type = FrameType::kPing;
        h.round = ++ping_seq;
        const auto hdr = encode_header(h, 0);
        ::iovec iov{const_cast<std::uint8_t*>(hdr.data()), hdr.size()};
        {
          std::lock_guard slk(send_mu_);
          write_all(&iov, 1);  // best effort; silence is the real signal
        }
        ++pings_unanswered;
        last_alive = Clock::now();
      }
      continue;
    }
    // Zero-copy receive: fill the decoder's pool slab directly; decoded
    // kDeliver payloads are views into it and flow to the protocol as-is.
    const std::span<std::uint8_t> w = decoder.writable(kReadChunk);
    const ssize_t got = ::read(fd_.get(), w.data(), w.size());
    if (got > 0) {
      last_alive = Clock::now();
      pings_unanswered = 0;  // any inbound traffic proves liveness
      decoder.commit(static_cast<std::size_t>(got));
      while (std::optional<Frame> f = decoder.next()) {
        dispatch(std::move(*f));
      }
      if (decoder.failed()) {
        return "malformed daemon stream: " + decoder.error();
      }
      continue;
    }
    if (got == 0) return "daemon closed the connection";
    if (errno == EINTR) continue;
    return std::string("socket read failed: ") + std::strerror(errno);
  }
}

bool WireClient::reconnect_and_resume(const std::string& reason,
                                      bool heartbeat) {
  const RecoveryOptions& rec = options_.recovery;
  const auto outage_start = Clock::now();
  stats_.outages.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lk(mu_);
    reconnecting_ = true;
    for (auto& [id, s] : sessions_) {
      WireSession::Inbound& in = s->in_;
      if (s->close_sent_) {
        // The close was in flight; the daemon reaps the session by grace
        // expiry. Resolve the waiter rather than resuming a dying session.
        in.closed_acked = true;
        in.cv.notify_all();
        continue;
      }
      if (in.dead) continue;
      if (s->token_ == 0) {
        in.dead = true;
        in.error = "connection lost during session handshake: " + reason;
        in.cv.notify_all();
        continue;
      }
      // A torn round's partial deliveries are dropped whole: the replay
      // (or the re-send) re-delivers the round from byte zero.
      if (!in.round_done) in.delivered.clear();
      in.resume_pending = false;
      in.daemon_committed = 0;
      in.cv.notify_all();
    }
  }
  // Jitter stream: deterministic per (seed, outage ordinal), so chaos runs
  // replay identically yet concurrent clients decorrelate.
  Rng rng(rec.jitter_seed +
          stats_.outages.load(std::memory_order_relaxed));
  for (int attempt = 0; attempt < rec.max_attempts; ++attempt) {
    if (attempt > 0) {
      int base = std::max(1, rec.backoff_initial_ms);
      for (int i = 1; i < attempt; ++i) {
        base = std::min(base * 2, std::max(1, rec.backoff_max_ms));
      }
      const int jitter =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(base / 2 + 1)));
      std::unique_lock lk(mu_);
      client_cv_.wait_for(lk, std::chrono::milliseconds(base + jitter),
                          [this] {
                            return stopping_.load(std::memory_order_relaxed);
                          });
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    stats_.reconnect_attempts.fetch_add(1, std::memory_order_relaxed);
    Fd nfd;
    try {
      nfd = target_.tcp ? connect_tcp_loopback(target_.port)
                        : connect_uds(target_.uds_path);
    } catch (const Error&) {
      continue;  // daemon not (yet) back; next attempt after backoff
    }
    set_socket_buffers(nfd.get(), options_.socket_buffer_bytes);
    if (target_.tcp) set_nodelay(nfd.get());

    // Swap the socket and snapshot the sessions to rebind. The send gate
    // (reconnecting_) stays closed, so no route() can write a round onto
    // the fresh connection before its kResume.
    struct Rebind {
      std::uint32_t sid;
      ResumeInfo info;
    };
    std::vector<Rebind> rebinds;
    {
      std::scoped_lock lk(send_mu_, mu_);
      if (stopping_.load(std::memory_order_relaxed)) break;
      fd_ = std::move(nfd);
      for (auto& [id, s] : sessions_) {
        if (s->close_sent_ || s->in_.dead || s->token_ == 0) continue;
        rebinds.push_back(
            {id, ResumeInfo{s->token_, s->completed_, s->n_, s->t_}});
      }
    }
    bool sent = true;
    {
      std::lock_guard slk(send_mu_);
      std::vector<std::array<std::uint8_t, kHeaderSize>> hdrs;
      std::vector<Bytes> payloads;
      std::vector<::iovec> iov;
      hdrs.reserve(rebinds.size());
      payloads.reserve(rebinds.size());
      iov.reserve(2 * rebinds.size());
      for (const Rebind& r : rebinds) {
        FrameHeader h;
        h.type = FrameType::kResume;
        h.session = r.sid;
        h.flags = heartbeat ? kResumeFlagHeartbeat : 0;
        payloads.push_back(encode_resume(r.info));
        hdrs.push_back(encode_header(
            h, static_cast<std::uint32_t>(payloads.back().size())));
        iov.push_back({hdrs.back().data(), kHeaderSize});
        iov.push_back({payloads.back().data(), payloads.back().size()});
      }
      if (!iov.empty()) {
        sent = write_all(iov.data(), static_cast<int>(iov.size()));
      }
    }
    if (!sent) continue;  // the fresh connection died already; redial
    {
      std::lock_guard lk(mu_);
      ++epoch_;  // re-opens exactly one re-send per in-flight round
      reconnecting_ = false;
      for (const Rebind& r : rebinds) {
        const auto it = sessions_.find(r.sid);
        if (it == sessions_.end()) continue;
        it->second->in_.resume_pending = true;  // until the kResumeAck
        it->second->in_.cv.notify_all();
      }
    }
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    stats_.recovery_ms_total.fetch_add(
        static_cast<std::uint64_t>(ms_since(outage_start)),
        std::memory_order_relaxed);
    return true;
  }
  fail_all(stopping_.load(std::memory_order_relaxed)
               ? "client shutting down"
               : "transport retry budget exhausted after " +
                     std::to_string(rec.max_attempts) +
                     " attempts: " + reason);
  return false;
}

void WireClient::fail_all(const std::string& reason) {
  std::lock_guard lk(mu_);
  disconnected_ = true;
  if (disconnect_reason_.empty()) disconnect_reason_ = reason;
  for (auto& [id, s] : sessions_) {
    if (!s->in_.dead) {
      s->in_.dead = true;
      s->in_.error = reason;
    }
    s->in_.cv.notify_all();
  }
}

void WireClient::dispatch(Frame f) {
  // kPong carries no session state: its arrival already reset the reader's
  // silence clock, which is the whole point of the probe.
  if (f.header.type == FrameType::kPong) return;
  std::lock_guard lk(mu_);
  const auto it = sessions_.find(f.header.session);
  if (it == sessions_.end()) return;  // late frame for a closed session
  WireSession& s = *it->second;
  WireSession::Inbound& in = s.in_;
  switch (f.header.type) {
    case FrameType::kOpenAck:
      in.open_acked = true;
      if (const auto token = decode_u64_payload(
              std::span<const std::uint8_t>(f.payload.data(),
                                            f.payload.size()))) {
        s.token_ = *token;
      }
      break;
    case FrameType::kDeliver:
      // Replay after a reconnect can duplicate frames the client already
      // consumed; only the round the session is actively awaiting counts,
      // and only while that round is still incomplete -- once its commit
      // barrier was seen, a replay of the same round (the outage raced the
      // harvest) must not double its messages.
      if (!in.routing || f.header.round != in.expect_round || in.round_done) {
        return;
      }
      // The payload is already a slab view; it rides into the engine's
      // round messages without ever being materialized.
      in.delivered.push_back({static_cast<int>(f.header.from),
                              static_cast<int>(f.header.to),
                              std::move(f.payload)});
      return;  // no wakeup per message; the commit barrier notifies
    case FrameType::kCommit:
      if (!in.routing || f.header.round != in.expect_round || in.round_done) {
        return;
      }
      in.round_done = true;
      break;
    case FrameType::kResumeAck: {
      in.resume_pending = false;
      const auto committed = decode_u64_payload(std::span<const std::uint8_t>(
          f.payload.data(), f.payload.size()));
      in.daemon_committed = committed.value_or(0);
      stats_.resumed_sessions.fetch_add(1, std::memory_order_relaxed);
      if (in.daemon_committed > s.completed_) {
        stats_.replayed_rounds.fetch_add(in.daemon_committed - s.completed_,
                                         std::memory_order_relaxed);
      }
      break;
    }
    case FrameType::kClosed:
      in.closed_acked = true;
      break;
    case FrameType::kError:
      in.dead = true;
      in.resume_pending = false;
      in.error = "daemon error: " +
                 std::string(f.payload.begin(), f.payload.end());
      break;
    default:
      in.dead = true;
      in.error = "unexpected daemon frame type";
      break;
  }
  in.cv.notify_all();
}

bool WireClient::write_all(::iovec* iov, int iovcnt) {
  std::size_t idx = 0;
  while (idx < static_cast<std::size_t>(iovcnt)) {
    const int chunk =
        std::min(iovcnt - static_cast<int>(idx), 256);
    // sendmsg instead of writev purely for MSG_NOSIGNAL: a daemon that
    // hard-closed the connection must surface as a structured transport
    // failure (EPIPE), not a process-killing SIGPIPE.
    ::msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = static_cast<std::size_t>(chunk);
    const ssize_t wrote = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0) {
      if (left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) +
                            left;
        iov[idx].iov_len -= left;
        left = 0;
      }
    }
  }
  return true;
}

void WireClient::send_round_batch(WireSession& s, std::uint32_t round,
                                  const std::vector<net::WireMessage>& staged,
                                  std::uint64_t expected_epoch) {
  std::unique_lock slk(send_mu_);
  {
    // Re-verify the gate now that the send lock is held: a reconnect that
    // completed in between bumped the epoch (route() will re-send under
    // the new one), so writing here would double-send the round.
    std::lock_guard lk(mu_);
    if (reconnecting_ || epoch_ != expected_epoch || s.in_.resume_pending ||
        s.in_.dead || disconnected_) {
      return;
    }
  }

  // Client-site fault interpretation. The ordinal is the client-wide open
  // order (session ids start at 1).
  const WireFaultPlan& plan = options_.fault_plan;
  const std::int32_t ordinal = static_cast<std::int32_t>(s.id_) - 1;
  if (fault_fuse_.take(plan, WireFaultPlan::Kind::kClientKill, ordinal,
                       round) >= 0) {
    stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(fd_.get(), SHUT_RDWR);  // reader sees EOF and recovers
    return;
  }
  std::int64_t partial = -1;
  if (const int i = fault_fuse_.take(
          plan, WireFaultPlan::Kind::kClientPartialWrite, ordinal, round);
      i >= 0) {
    stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    partial = plan.entries[i].truncate_bytes;
  }

  // One gather batch of (header, payload-view) iovecs. The payload iovecs
  // point straight into the protocol's refcounted buffers; nothing is
  // staged or copied client-side.
  std::vector<std::array<std::uint8_t, kHeaderSize>> headers;
  headers.reserve(staged.size() + 1);
  std::vector<::iovec> iov;
  iov.reserve(2 * staged.size() + 2);
  for (const net::WireMessage& m : staged) {
    require(m.payload.size() <= kMaxFramePayload,
            "WireSession::route: message exceeds frame payload limit");
    FrameHeader h;
    h.type = FrameType::kMsg;
    h.session = s.id_;
    h.round = round;
    h.from = static_cast<std::uint16_t>(m.from);
    h.to = static_cast<std::uint16_t>(m.to);
    headers.push_back(
        encode_header(h, static_cast<std::uint32_t>(m.payload.size())));
    iov.push_back({const_cast<std::uint8_t*>(headers.back().data()),
                   kHeaderSize});
    if (m.payload.size() > 0) {
      iov.push_back({const_cast<std::uint8_t*>(m.payload.data()),
                     m.payload.size()});
    }
  }
  FrameHeader commit;
  commit.type = FrameType::kCommit;
  commit.session = s.id_;
  commit.round = round;
  const Bytes commit_payload =
      u32_payload(static_cast<std::uint32_t>(staged.size()));
  headers.push_back(encode_header(
      commit, static_cast<std::uint32_t>(commit_payload.size())));
  iov.push_back({const_cast<std::uint8_t*>(headers.back().data()),
                 kHeaderSize});
  iov.push_back({const_cast<Bytes&>(commit_payload).data(),
                 commit_payload.size()});

  if (partial >= 0) {
    // Injected torn write: ship only the first `partial` bytes of the
    // batch -- tearing a frame at an arbitrary byte, daemon-side mirror of
    // kTruncateFrame -- then kill the connection.
    std::vector<::iovec> torn;
    std::size_t budget = static_cast<std::size_t>(partial);
    for (const ::iovec& v : iov) {
      if (budget == 0) break;
      const std::size_t len = std::min(budget, v.iov_len);
      torn.push_back({v.iov_base, len});
      budget -= len;
    }
    if (!torn.empty()) {
      write_all(torn.data(), static_cast<int>(torn.size()));
    }
    ::shutdown(fd_.get(), SHUT_RDWR);
    return;
  }

  const bool sent = write_all(iov.data(), static_cast<int>(iov.size()));
  if (!sent && !options_.recovery.enabled) {
    // A failed write is a connection-level loss, not just this session's:
    // report it immediately instead of waiting for the reader thread to
    // observe the EOF.
    std::lock_guard lk(mu_);
    s.in_.dead = true;
    if (s.in_.error.empty()) s.in_.error = "socket write failed";
    disconnected_ = true;
    if (disconnect_reason_.empty()) disconnect_reason_ = s.in_.error;
    s.in_.cv.notify_all();
  }
  // With recovery on, a failed write surfaces through the reader (EOF) and
  // the round is re-sent under the next epoch after the rebind.
}

std::unique_ptr<WireSession> WireClient::open(int n, int t) {
  require(n >= 1 && n <= 0xFFFF && t >= 0 && t < n,
          "WireClient::open: bad n/t");
  std::unique_ptr<WireSession> session;
  {
    std::lock_guard lk(mu_);
    require(!disconnected_, "WireClient::open: connection is down");
    const std::uint32_t id = next_session_++;
    session.reset(new WireSession(*this, id));
    session->n_ = static_cast<std::uint16_t>(n);
    session->t_ = static_cast<std::uint16_t>(t);
    sessions_.emplace(id, session.get());
  }
  FrameHeader h;
  h.type = FrameType::kOpen;
  h.session = session->id();
  Bytes open_payload{
      static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
      static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(t >> 8)};
  const auto hdr =
      encode_header(h, static_cast<std::uint32_t>(open_payload.size()));
  iovec iov[2] = {{const_cast<std::uint8_t*>(hdr.data()), hdr.size()},
                  {open_payload.data(), open_payload.size()}};
  bool sent;
  {
    std::lock_guard lk(send_mu_);
    sent = write_all(iov, 2);
  }
  std::unique_lock lk(mu_);
  if (!sent) {
    sessions_.erase(session->id());
    throw Error("WireClient::open: send failed");
  }
  WireSession::Inbound& in = session->in_;
  in.cv.wait_for(lk, std::chrono::milliseconds(options_.handshake_timeout_ms),
                 [&] { return in.open_acked || in.dead; });
  if (!in.open_acked) {
    const std::string why = in.dead ? in.error : "handshake timeout";
    sessions_.erase(session->id());
    throw Error("WireClient::open: " + why);
  }
  return session;
}

// ---------------------------------------------------------------------------
// WireSession

WireSession::~WireSession() {
  close();
  std::lock_guard lk(client_.mu_);
  client_.sessions_.erase(id_);
}

std::string WireSession::failure_reason() const {
  std::lock_guard lk(client_.mu_);
  return in_.error.empty() ? "transport failure" : in_.error;
}

std::uint64_t WireSession::resume_token() const {
  std::lock_guard lk(client_.mu_);
  return token_;
}

std::optional<std::vector<net::WireMessage>> WireSession::route(
    std::size_t round, std::vector<net::WireMessage> staged) {
  const std::uint32_t r32 = static_cast<std::uint32_t>(round);
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(client_.options_.round_timeout_ms);
  std::uint64_t sent_epoch = 0;  // epoch the round was last sent under

  std::unique_lock lk(client_.mu_);
  if (in_.dead) return std::nullopt;
  in_.delivered.clear();
  in_.round_done = false;
  in_.routing = true;
  in_.expect_round = r32;

  // Round barrier with transparent recovery: (re-)send the round's batch
  // whenever a fresh epoch opens the gate -- unless the kResumeAck shows
  // the daemon already committed this round, in which case the replay is
  // the delivery -- and wait for the daemon's kCommit, a failure, or the
  // deadline (which bounds the whole round, reconnects included).
  for (;;) {
    if (in_.dead) {
      in_.routing = false;
      return std::nullopt;
    }
    if (in_.round_done) break;
    if (Clock::now() >= deadline) {
      in_.dead = true;
      in_.error = "round barrier timeout after " +
                  std::to_string(client_.options_.round_timeout_ms) + "ms";
      in_.routing = false;
      return std::nullopt;
    }
    const bool gate_open = !client_.reconnecting_ && !in_.resume_pending;
    if (gate_open && sent_epoch != client_.epoch_) {
      const std::uint64_t target = client_.epoch_;
      if (in_.daemon_committed > completed_) {
        sent_epoch = target;  // committed daemon-side; replay delivers it
        continue;
      }
      lk.unlock();
      client_.send_round_batch(*this, r32, staged, target);
      lk.lock();
      sent_epoch = target;  // even on failure: the reader drives the retry
      continue;
    }
    in_.cv.wait_until(lk, deadline);
  }

  in_.routing = false;
  completed_ = round + 1;  // the round is fully received and harvested
  std::vector<net::WireMessage> delivered = std::move(in_.delivered);
  in_.delivered.clear();
  in_.round_done = false;
  return delivered;
}

void WireSession::close() {
  std::unique_lock lk(client_.mu_);
  if (close_sent_ || in_.dead || client_.disconnected_) return;
  close_sent_ = true;
  if (client_.reconnecting_) return;  // the daemon reaps it by grace expiry
  FrameHeader h;
  h.type = FrameType::kClose;
  h.session = id_;
  const auto hdr = encode_header(h, 0);
  iovec iov[1] = {{const_cast<std::uint8_t*>(hdr.data()), hdr.size()}};
  lk.unlock();
  bool sent;
  {
    std::lock_guard slk(client_.send_mu_);
    sent = client_.write_all(iov, 1);
  }
  lk.lock();
  if (!sent) return;
  in_.cv.wait_for(lk,
                  std::chrono::milliseconds(
                      client_.options_.handshake_timeout_ms),
                  [&] { return in_.closed_acked || in_.dead; });
}

}  // namespace coca::svc
