#include "svc/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace coca::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "listen_uds: socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("listen_uds: socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("listen_uds: bind " + path);
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) fail("listen_uds: listen");
  return fd;
}

Fd listen_tcp_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("listen_tcp_loopback: socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("listen_tcp_loopback: bind");
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) fail("listen_tcp_loopback: listen");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("local_port: getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "connect_uds: socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("connect_uds: socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("connect_uds: connect " + path);
  }
  return fd;
}

Fd connect_tcp_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("connect_tcp_loopback: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail("connect_tcp_loopback: connect");
  }
  set_nodelay(fd.get());
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("set_nonblocking: fcntl");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Fails harmlessly with ENOTSUP/EOPNOTSUPP on UDS; ignore.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_socket_buffers(int fd, int bytes) {
  if (bytes <= 0) return;
  // Best effort: the kernel clamps to wmem_max/rmem_max; a short buffer
  // only costs extra epoll round-trips, never correctness.
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

}  // namespace coca::svc
