// Transport fault injection for the service runtime.
//
// `net::FaultPlan` (PR 4) made *environment* faults -- crashes, link cuts,
// partitions -- pure replayable data interpreted deterministically by the
// engines. `WireFaultPlan` applies the same discipline one layer down, to
// the wire itself: connection kills, read/write stalls, partial writes,
// delayed flushes, and frame-boundary truncation, each pinned to a
// (session, round) point. A plan is pure data: no timers, no randomness at
// interpretation time. The daemon and the client each interpret the
// entries of their site, and each entry fires exactly once (a `WireFaultFuse`
// tracks which have burned), so the same (case, plan) pair reproduces the
// same outage schedule run after run -- wire-fault schedules are corpus
// material for the fuzzer (`fuzz_driver --wire-faults`), not one-off chaos.
//
// Unlike a FaultPlan, a WireFaultPlan charges *nobody*: every fault here is
// below the protocol, and the recovery layer (session resumption, see
// server.h/client.h) must absorb it bit-identically -- or, past the retry
// budget, resolve every party to a structured PartyOutcome. That invariant
// is what tests/test_wire_recovery.cpp and tools/wire_soak enforce.
//
// Site and matching:
//  * Daemon-site kinds fire when the matching session commits `round`; the
//    `session` field is the daemon-wide open ordinal (0 = first session
//    opened on the daemon; -1 = any session).
//  * Client-site kinds fire when the matching session routes `round`; the
//    `session` field is the client-wide open ordinal (session id - 1). In
//    the one-client-per-daemon harnesses the two ordinals coincide.
//
// Kinds:
//  * kKillBeforeFlush  daemon commits the round (it enters the replay log)
//                      then hard-closes without flushing: the client saw
//                      nothing of the round and recovery must replay it.
//  * kKillAfterFlush   daemon flushes the round, then hard-closes: the
//                      client already holds the round; resumption has no
//                      gap to replay.
//  * kDelayFlush       daemon sleeps `delay_ms` between committing and
//                      flushing the round (a stalled write).
//  * kStallRead        daemon sleeps `delay_ms` before processing the
//                      commit (a stalled read; heartbeats see silence).
//  * kTruncateFrame    daemon flushes only the first `truncate_bytes` bytes
//                      of the round's gather batch -- tearing a frame at an
//                      arbitrary byte -- then hard-closes.
//  * kClientKill       client shuts its socket down just before sending the
//                      round (the daemon never sees the commit).
//  * kClientPartialWrite  client writes only the first `truncate_bytes`
//                      bytes of the round's gather batch, then hard-closes:
//                      the daemon observes a frame torn at an arbitrary
//                      byte (the client-site mirror of kTruncateFrame).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"

namespace coca::svc {

struct WireFaultPlan {
  enum class Kind : std::uint8_t {
    kKillBeforeFlush = 1,
    kKillAfterFlush = 2,
    kDelayFlush = 3,
    kStallRead = 4,
    kTruncateFrame = 5,
    kClientKill = 6,
    kClientPartialWrite = 7,
  };

  struct Entry {
    Kind kind = Kind::kKillBeforeFlush;
    /// Session open ordinal at the interpreting site; -1 = any session.
    std::int32_t session = -1;
    /// Engine round the entry fires at.
    std::uint32_t round = 0;
    /// kDelayFlush / kStallRead: stall length.
    std::uint32_t delay_ms = 0;
    /// kTruncateFrame / kClientPartialWrite: byte offset into the round's
    /// gather batch.
    std::uint32_t truncate_bytes = 0;

    bool operator==(const Entry&) const = default;
  };

  std::vector<Entry> entries;

  bool operator==(const WireFaultPlan&) const = default;
  bool empty() const { return entries.empty(); }

  /// Throws Error on a malformed plan (unknown kind byte, zero-length
  /// stall, session ordinal below -1, stalls beyond `max_stall_ms`).
  void validate(std::uint32_t max_stall_ms = 10'000) const;

  /// True iff the plan has at least one entry interpreted at the daemon /
  /// client site respectively.
  bool has_daemon_site() const;
  bool has_client_site() const;
};

/// True iff entries of `kind` are interpreted by the daemon (else client).
bool daemon_site(WireFaultPlan::Kind kind);

const char* to_string(WireFaultPlan::Kind kind);
std::optional<WireFaultPlan::Kind> wire_fault_kind_from_string(
    std::string_view s);

/// One-shot firing state over a plan: each entry burns at most once, so a
/// schedule like "kill at round 3" does not re-kill the resumed connection
/// when the replayed round 3 commits again. Interpreters own one fuse per
/// plan and call take() at each injection point.
class WireFaultFuse {
 public:
  WireFaultFuse() = default;
  explicit WireFaultFuse(const WireFaultPlan& plan)
      : fired_(plan.entries.size(), false) {}

  /// Index of the first unfired entry of `kind` matching (ordinal, round),
  /// burning it, or -1. `ordinal` is the interpreting site's session open
  /// ordinal (entries with session == -1 match any ordinal).
  int take(const WireFaultPlan& plan, WireFaultPlan::Kind kind,
           std::int32_t ordinal, std::uint32_t round);

 private:
  std::vector<bool> fired_;
};

/// Seeded sampler for the fuzzer's wire-fault dimension: draws up to
/// `max_entries` entries with rounds inside [0, horizon). Deterministic in
/// `seed`.
struct WireFaultSampleConfig {
  std::size_t horizon = 16;
  int max_entries = 3;
  bool allow_kill = true;      // kKillBeforeFlush / kKillAfterFlush / kClientKill
  bool allow_stall = true;     // kDelayFlush / kStallRead
  bool allow_truncate = true;  // kTruncateFrame / kClientPartialWrite
  std::uint32_t max_stall_ms = 50;
  std::uint64_t seed = 1;
};

WireFaultPlan sample_wire_fault_plan(const WireFaultSampleConfig& cfg);

/// JSON round trip, schema "coca-wirefault-v1" (same hand-rolled strict
/// subset as the fuzz corpus: objects, arrays, strings, integers).
std::string to_json(const WireFaultPlan& plan);
WireFaultPlan wire_fault_plan_from_json(std::string_view json);

}  // namespace coca::svc
