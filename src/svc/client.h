// Client side of the service runtime: a connection to the coca daemon
// multiplexing concurrent agreement sessions, each usable as a
// `net::RoundRouter`.
//
// `WireClient` owns one socket (UDS or TCP loopback) plus a demux reader
// thread: inbound frames are parsed incrementally and dispatched to the
// owning session's inbound state under the client mutex; sessions wait on
// their own condition variables. The send path is the zero-copy half of
// the transport: a round's kMsg frames are written as one writev batch of
// (header, payload-view) iovecs straight from the protocol's `Payload`
// buffers -- no staging copy, which is what keeps
// `RunStats::payload_copies == 0` on the honest path end to end.
//
// `WireSession::route()` implements the round barrier over the wire:
// write all staged messages + kCommit, block until the daemon delivered
// them all back + its kCommit, return the re-materialized messages. Every
// wait has a deadline and every failure (daemon kError, disconnect, EOF,
// timeout) resolves to nullopt with a reason -- the engine then ends the
// run with structured TimedOut outcomes instead of hanging or throwing.
//
// Recovery (opt-in via RecoveryOptions::enabled): when the reader thread
// loses the stream -- EOF, read error, malformed bytes, or a heartbeat
// timeout -- it resets the decoder, reconnects to the same endpoint under
// capped exponential backoff with seeded jitter, and rebinds every live
// session with kResume, declaring the rounds the session fully received.
// The daemon replays the gap from its replay log; route() re-drives the
// in-flight round exactly when the daemon never committed it (an epoch
// counter gates one re-send per reconnect, and the kResumeAck's committed
// count tells the client whether the round is arriving as replay instead).
// Past `max_attempts` the client gives up the same way it fails today:
// every session resolves dead with a structured reason, never a hang.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/round_router.h"
#include "svc/frame.h"
#include "svc/socket.h"
#include "svc/wire_fault.h"
#include "util/rng.h"

namespace coca::svc {

/// Transport-outage recovery policy. Disabled by default: a lost
/// connection resolves every session immediately (the PR-7 behaviour,
/// which the transport-failure conformance tests pin down).
struct RecoveryOptions {
  bool enabled = false;
  /// Reconnect attempts per outage before giving up with a structured
  /// "retry budget exhausted" failure.
  int max_attempts = 8;
  /// Capped exponential backoff between attempts (the first retry waits
  /// `backoff_initial_ms`, doubling up to `backoff_max_ms`), plus a seeded
  /// jitter of up to half the base -- deterministic per jitter_seed, so
  /// chaos runs replay byte-identically.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2'000;
  std::uint64_t jitter_seed = 0xC0CA;
  /// Liveness probing: after this long with no inbound bytes the reader
  /// sends kPing; `heartbeat_misses` unanswered probes declare the daemon
  /// gone and trigger a reconnect. 0 disables probing (the round timeout
  /// is then the only liveness bound).
  int heartbeat_interval_ms = 0;
  int heartbeat_misses = 3;
};

struct ClientOptions {
  /// Upper bound on one round barrier (route() returns nullopt past it).
  /// With recovery enabled this is the *total* budget for the round,
  /// including any reconnect/backoff/replay underneath it.
  int round_timeout_ms = 30'000;
  /// Upper bound on session open/close handshakes.
  int handshake_timeout_ms = 10'000;
  /// SO_RCVBUF/SO_SNDBUF request (0 = kernel default); mirrors
  /// DaemonOptions::socket_buffer_bytes so a whole round fits in flight in
  /// both directions.
  int socket_buffer_bytes = 256 * 1024;
  RecoveryOptions recovery;
  /// Deterministic transport faults interpreted at the client site
  /// (kClientKill / kClientPartialWrite entries; the daemon interprets its
  /// own site's entries). The client-site session ordinal is `id() - 1`.
  WireFaultPlan fault_plan;
};

/// Monotonic recovery counters, readable from any thread.
struct ClientStats {
  std::atomic<std::uint64_t> outages{0};             // stream losses seen
  std::atomic<std::uint64_t> reconnects{0};          // successful rebinds
  std::atomic<std::uint64_t> reconnect_attempts{0};  // dials, incl. failed
  std::atomic<std::uint64_t> resumed_sessions{0};    // kResumeAck received
  std::atomic<std::uint64_t> replayed_rounds{0};     // rounds covered by ack
  std::atomic<std::uint64_t> heartbeats_missed{0};   // unanswered kPing
  std::atomic<std::uint64_t> injected_faults{0};     // client-site firings
  std::atomic<std::uint64_t> recovery_ms_total{0};   // outage -> rebind time
};

class WireClient;

/// One agreement session on a client connection. Thread-compatible: route()
/// is called from the session's own engine controller; many sessions of
/// one client may route concurrently from different threads.
class WireSession : public net::RoundRouter {
 public:
  ~WireSession() override;

  std::optional<std::vector<net::WireMessage>> route(
      std::size_t round, std::vector<net::WireMessage> staged) override;
  std::string failure_reason() const override;

  std::uint32_t id() const { return id_; }
  /// The daemon-issued resume token from the kOpenAck (0 before open).
  std::uint64_t resume_token() const;

  /// Orderly close (kClose, best-effort wait for kClosed). Idempotent;
  /// the destructor calls it.
  void close();

 private:
  friend class WireClient;
  WireSession(WireClient& client, std::uint32_t id)
      : client_(client), id_(id) {}

  WireClient& client_;
  std::uint32_t id_;

  // Inbound state, guarded by the client mutex.
  struct Inbound {
    std::condition_variable cv;
    std::vector<net::WireMessage> delivered;  // kDeliver of the open round
    bool open_acked = false;
    bool round_done = false;   // daemon kCommit seen
    bool closed_acked = false;
    bool dead = false;         // kError / disconnect
    std::string error;
    // Recovery state. `routing`/`expect_round` filter stale or replayed
    // frames of other rounds; `resume_pending` closes the send gate between
    // a reconnect and its kResumeAck; `daemon_committed` (from the ack)
    // tells route() whether its round arrives as replay or must be re-sent.
    bool routing = false;
    std::uint32_t expect_round = 0;
    bool resume_pending = false;
    std::uint64_t daemon_committed = 0;
  };
  Inbound in_;
  bool close_sent_ = false;
  // Session identity for kResume, guarded by the client mutex.
  std::uint64_t token_ = 0;      // from kOpenAck
  std::uint64_t completed_ = 0;  // rounds fully received and harvested
  std::uint16_t n_ = 0;
  std::uint16_t t_ = 0;
};

class WireClient {
 public:
  static std::unique_ptr<WireClient> connect_uds_path(
      const std::string& path, ClientOptions options = {});
  static std::unique_ptr<WireClient> connect_tcp(
      std::uint16_t port, ClientOptions options = {});

  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Opens a session (kOpen/kOpenAck handshake). Throws Error on refusal
  /// or handshake timeout. The session must not outlive the client.
  std::unique_ptr<WireSession> open(int n, int t);

  /// True once the connection is lost for good (reader saw EOF or a socket
  /// error and recovery is off, gave up, or is shutting down). False while
  /// a recovery-enabled client is between connections.
  bool disconnected() const;

  const ClientStats& stats() const { return stats_; }

 private:
  friend class WireSession;
  /// Reconnect endpoint, fixed at construction.
  struct Target {
    bool tcp = false;
    std::string uds_path;
    std::uint16_t port = 0;
  };

  WireClient(Fd fd, Target target, ClientOptions options);
  void reader_loop();
  /// Blocking read/dispatch until the stream is lost; returns the reason.
  /// Sets *heartbeat when the loss was declared by missed probes.
  std::string read_stream(FrameDecoder& decoder, bool* heartbeat);
  /// Backoff/redial/kResume cycle. Returns false when the retry budget is
  /// exhausted or the client is stopping (sessions are failed first).
  bool reconnect_and_resume(const std::string& reason, bool heartbeat);
  /// Marks the connection dead and resolves every session with `reason`.
  void fail_all(const std::string& reason);
  void dispatch(Frame f);
  /// Sends one round's kMsg batch + kCommit for `s`, re-checking the send
  /// gate (epoch/reconnect/resume state) under the locks so a reconnect
  /// completing concurrently can never double-send a round. Applies
  /// client-site wire faults. No-op if the gate moved.
  void send_round_batch(WireSession& s, std::uint32_t round,
                        const std::vector<net::WireMessage>& staged,
                        std::uint64_t expected_epoch);
  /// Writes `iov` fully (handles partial writes); returns false on error.
  bool write_all(::iovec* iov, int iovcnt);

  ClientOptions options_;
  Target target_;
  Fd fd_;  // swapped on reconnect under send_mu_ + mu_
  mutable std::mutex mu_;
  std::mutex send_mu_;  // serializes writev batches across sessions
  /// Lock order: send_mu_ before mu_, always (scoped_lock when both).
  std::condition_variable client_cv_;  // interrupts backoff sleeps
  std::unordered_map<std::uint32_t, WireSession*> sessions_;
  std::uint32_t next_session_ = 1;
  /// Bumped on every successful rebind; a route() send is valid for one
  /// epoch, so each reconnect re-opens exactly one re-send.
  std::uint64_t epoch_ = 1;
  bool reconnecting_ = false;
  bool disconnected_ = false;
  std::string disconnect_reason_;
  std::atomic<bool> stopping_{false};
  WireFaultFuse fault_fuse_;  // guarded by send_mu_
  ClientStats stats_;
  std::thread reader_;
};

}  // namespace coca::svc
