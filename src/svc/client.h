// Client side of the service runtime: a connection to the coca daemon
// multiplexing concurrent agreement sessions, each usable as a
// `net::RoundRouter`.
//
// `WireClient` owns one socket (UDS or TCP loopback) plus a demux reader
// thread: inbound frames are parsed incrementally and dispatched to the
// owning session's inbound state under the client mutex; sessions wait on
// their own condition variables. The send path is the zero-copy half of
// the transport: a round's kMsg frames are written as one writev batch of
// (header, payload-view) iovecs straight from the protocol's `Payload`
// buffers -- no staging copy, which is what keeps
// `RunStats::payload_copies == 0` on the honest path end to end.
//
// `WireSession::route()` implements the round barrier over the wire:
// write all staged messages + kCommit, block until the daemon delivered
// them all back + its kCommit, return the re-materialized messages. Every
// wait has a deadline and every failure (daemon kError, disconnect, EOF,
// timeout) resolves to nullopt with a reason -- the engine then ends the
// run with structured TimedOut outcomes instead of hanging or throwing.
#pragma once

#include <sys/uio.h>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/round_router.h"
#include "svc/frame.h"
#include "svc/socket.h"

namespace coca::svc {

struct ClientOptions {
  /// Upper bound on one round barrier (route() returns nullopt past it).
  int round_timeout_ms = 30'000;
  /// Upper bound on session open/close handshakes.
  int handshake_timeout_ms = 10'000;
  /// SO_RCVBUF/SO_SNDBUF request (0 = kernel default); mirrors
  /// DaemonOptions::socket_buffer_bytes so a whole round fits in flight in
  /// both directions.
  int socket_buffer_bytes = 256 * 1024;
};

class WireClient;

/// One agreement session on a client connection. Thread-compatible: route()
/// is called from the session's own engine controller; many sessions of
/// one client may route concurrently from different threads.
class WireSession : public net::RoundRouter {
 public:
  ~WireSession() override;

  std::optional<std::vector<net::WireMessage>> route(
      std::size_t round, std::vector<net::WireMessage> staged) override;
  std::string failure_reason() const override;

  std::uint32_t id() const { return id_; }

  /// Orderly close (kClose, best-effort wait for kClosed). Idempotent;
  /// the destructor calls it.
  void close();

 private:
  friend class WireClient;
  WireSession(WireClient& client, std::uint32_t id)
      : client_(client), id_(id) {}

  WireClient& client_;
  std::uint32_t id_;

  // Inbound state, guarded by the client mutex.
  struct Inbound {
    std::condition_variable cv;
    std::vector<net::WireMessage> delivered;  // kDeliver of the open round
    bool open_acked = false;
    bool round_done = false;   // daemon kCommit seen
    bool closed_acked = false;
    bool dead = false;         // kError / disconnect
    std::string error;
  };
  Inbound in_;
  bool close_sent_ = false;
};

class WireClient {
 public:
  static std::unique_ptr<WireClient> connect_uds_path(
      const std::string& path, ClientOptions options = {});
  static std::unique_ptr<WireClient> connect_tcp(
      std::uint16_t port, ClientOptions options = {});

  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Opens a session (kOpen/kOpenAck handshake). Throws Error on refusal
  /// or handshake timeout. The session must not outlive the client.
  std::unique_ptr<WireSession> open(int n, int t);

  /// True once the reader saw EOF or a socket error.
  bool disconnected() const;

 private:
  friend class WireSession;
  WireClient(Fd fd, ClientOptions options);
  void reader_loop();
  void dispatch(Frame f);
  /// Writes `iov` fully (handles partial writes); returns false on error.
  bool write_all(::iovec* iov, int iovcnt);

  ClientOptions options_;
  Fd fd_;
  mutable std::mutex mu_;
  std::mutex send_mu_;  // serializes writev batches across sessions
  std::unordered_map<std::uint32_t, WireSession*> sessions_;
  std::uint32_t next_session_ = 1;
  bool disconnected_ = false;
  std::string disconnect_reason_;
  std::thread reader_;
};

}  // namespace coca::svc
