// The coca transport daemon: a single-threaded epoll server that
// synchronizes agreement rounds over UDS and TCP-loopback connections.
//
// Role in the system: the daemon is the wire. A client process runs the
// (unmodified) protocol parties; at every round barrier it ships the
// round's canonically merged messages to the daemon as kMsg frames and
// commits with a count. The daemon buffers the round per session,
// validates the commit, and routes every message back to its recipient's
// connection as kDeliver frames followed by a kCommit barrier -- so all
// protocol traffic genuinely transits the socket (client -> daemon ->
// client) before any party consumes it. In the loopback deployment one
// connection hosts all n parties of a session and "routing" is an ordered
// echo; the framing carries (session, round, from, to) so nothing about
// the protocol changes when parties spread over many connections.
//
// Sessions: one connection multiplexes many concurrent agreement sessions
// (the session id lives in every frame header). Each session is a small
// state machine (open -> per-round buffer/commit cycles -> closed) with
// its own idle clock; a session that goes quiet past the idle timeout is
// killed with a kError frame. Malformed streams (bad magic, commit count
// mismatch, frames for unknown sessions) kill the connection or session
// with a structured error, never the daemon.
//
// Threading: all connection and session state belongs to the loop thread;
// start()/stop() run the loop on a background thread (tests), run() runs
// it on the caller's thread (tools/coca_serve). Stats counters are
// atomics so tests and ops can observe from outside.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "svc/event_loop.h"
#include "svc/frame.h"

namespace coca::svc {

struct DaemonOptions {
  /// Unix-domain socket path; empty = no UDS listener.
  std::string uds_path;
  /// Listen on 127.0.0.1 when true (`tcp_port` 0 picks an ephemeral port,
  /// read back via Daemon::tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// A session with no frame activity for this long is killed with kError.
  int idle_timeout_ms = 30'000;
  /// Deterministic fault injection for tests: hard-close a connection
  /// (RST-style, no goodbye frames) as soon as any of its sessions commits
  /// this many rounds. 0 = disabled.
  int drop_connection_after_rounds = 0;
  /// SO_RCVBUF/SO_SNDBUF request for accepted connections (0 = kernel
  /// default). A whole round of kDeliver frames is flushed in one gather
  /// batch, so the send buffer should hold a full round to keep the flush
  /// to a single writev on the loopback fast path.
  int socket_buffer_bytes = 256 * 1024;
};

/// Loop-thread-owned counters, readable from any thread.
struct DaemonStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> sessions_idle_killed{0};
  std::atomic<std::uint64_t> rounds_committed{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> protocol_errors{0};
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Runs the loop on a background thread until stop().
  void start();
  /// Signals the loop to exit and joins it (idempotent; also safe after
  /// run() returned).
  void stop();
  /// Runs the loop on the calling thread until stop() is called from
  /// another thread (or a signal handler calls request_stop()).
  void run();
  /// Async-signal-safe stop request (no join).
  void request_stop();

  /// The bound TCP port (valid once constructed, options.tcp only).
  std::uint16_t tcp_port() const { return tcp_port_; }
  const DaemonStats& stats() const { return stats_; }

 private:
  struct Conn;
  void accept_ready(Fd& listener);
  void conn_ready(int fd, std::uint32_t events);
  void handle_frame(Conn& c, Frame f);
  /// Enqueues one outbound frame without flushing -- the payload view is
  /// moved, never copied (the round-routing path corks all kDeliver frames
  /// plus the kCommit barrier, then flushes once).
  void queue_frame(Conn& c, const FrameHeader& h, net::Payload payload);
  void send_frame(Conn& c, const FrameHeader& h, net::Payload payload);
  void flush(Conn& c);
  void close_conn(int fd);
  void sweep_idle();
  void loop();

  DaemonOptions options_;
  EventLoop loop_;
  Fd uds_listener_;
  Fd tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  DaemonStats stats_;
};

}  // namespace coca::svc
