// The coca transport daemon: a single-threaded epoll server that
// synchronizes agreement rounds over UDS and TCP-loopback connections.
//
// Role in the system: the daemon is the wire. A client process runs the
// (unmodified) protocol parties; at every round barrier it ships the
// round's canonically merged messages to the daemon as kMsg frames and
// commits with a count. The daemon buffers the round per session,
// validates the commit, and routes every message back to its recipient's
// connection as kDeliver frames followed by a kCommit barrier -- so all
// protocol traffic genuinely transits the socket (client -> daemon ->
// client) before any party consumes it. In the loopback deployment one
// connection hosts all n parties of a session and "routing" is an ordered
// echo; the framing carries (session, round, from, to) so nothing about
// the protocol changes when parties spread over many connections.
//
// Sessions: one connection multiplexes many concurrent agreement sessions
// (the session id lives in every frame header). Each session is a small
// state machine (open -> per-round buffer/commit cycles -> closed) with
// its own idle clock; a session that goes quiet past the idle timeout is
// killed with a kError frame. Malformed streams (bad magic, commit count
// mismatch, frames for unknown sessions) kill the connection or session
// with a structured error, never the daemon.
//
// Survivability: a session is named daemon-wide by the u64 resume token
// issued in its kOpenAck, not by its connection. When a connection dies
// the session *detaches* and survives for `resume_grace_ms` awaiting a
// kResume on a fresh connection; the daemon keeps a bounded replay log of
// the last committed rounds per session (kDeliver payload *views* into the
// pooled receive slabs -- retention is zero-copy) and replays whatever the
// reconnecting client declares it never received. kPing is answered with
// kPong for client-side liveness detection, and a WireFaultPlan
// (wire_fault.h) injects deterministic transport faults -- kills, stalls,
// truncated flushes -- at chosen (session, round) points for the chaos
// suites. The frame-level state machine is documented in DESIGN.md
// ("failure & recovery").
//
// Threading: all connection and session state belongs to the loop thread;
// start()/stop() run the loop on a background thread (tests), run() runs
// it on the caller's thread (tools/coca_serve). Stats counters are
// atomics so tests and ops can observe from outside.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "svc/event_loop.h"
#include "svc/frame.h"
#include "svc/wire_fault.h"

namespace coca::svc {

struct DaemonOptions {
  /// Unix-domain socket path; empty = no UDS listener.
  std::string uds_path;
  /// Listen on 127.0.0.1 when true (`tcp_port` 0 picks an ephemeral port,
  /// read back via Daemon::tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// A session with no frame activity for this long is killed with kError.
  int idle_timeout_ms = 30'000;
  /// Deterministic fault injection for tests: hard-close a connection
  /// (RST-style, no goodbye frames) as soon as any of its sessions commits
  /// this many rounds. 0 = disabled. Predates WireFaultPlan; kept because
  /// it re-fires on every reconnect (a permanently bad daemon), which a
  /// one-shot plan entry deliberately does not.
  int drop_connection_after_rounds = 0;
  /// SO_RCVBUF/SO_SNDBUF request for accepted connections (0 = kernel
  /// default). A whole round of kDeliver frames is flushed in one gather
  /// batch, so the send buffer should hold a full round to keep the flush
  /// to a single writev on the loopback fast path.
  int socket_buffer_bytes = 256 * 1024;

  /// How long a session whose connection died is retained (detached)
  /// awaiting a kResume before it is reaped. 0 disables resumption: a dead
  /// connection kills its sessions immediately (the PR-7 behaviour).
  int resume_grace_ms = 10'000;
  /// Replay-log retention per session: at most this many committed rounds
  /// and at most `replay_log_bytes` of retained payload (views into pooled
  /// slabs; the byte bound is what limits slab pinning). The newest round
  /// is always retained so a kill-before-flush is always replayable.
  int replay_log_rounds = 8;
  std::size_t replay_log_bytes = std::size_t{4} << 20;
  /// Accept a kResume whose token the daemon does not know (it restarted):
  /// the session is adopted at the client's declared round base and the
  /// client re-drives the in-flight round. Off = unknown tokens are
  /// rejected with kError.
  bool adopt_unknown_resume = true;
  /// Deterministic transport faults interpreted at the daemon site (the
  /// client interprets its own site's entries; see wire_fault.h).
  WireFaultPlan fault_plan;
};

/// Loop-thread-owned counters, readable from any thread.
struct DaemonStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> sessions_idle_killed{0};
  std::atomic<std::uint64_t> rounds_committed{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  // Robustness counters (all monotonic; surfaced by coca_serve's stats
  // dump and asserted nonzero by the chaos tests).
  std::atomic<std::uint64_t> reconnects{0};         // kResume frames seen
  std::atomic<std::uint64_t> resumed_sessions{0};   // rebinds accepted
  std::atomic<std::uint64_t> replayed_rounds{0};    // rounds re-delivered
  std::atomic<std::uint64_t> replayed_bytes{0};     // bytes re-delivered
  std::atomic<std::uint64_t> heartbeats_missed{0};  // kResume after misses
  std::atomic<std::uint64_t> injected_faults{0};    // WireFaultPlan firings
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Runs the loop on a background thread until stop().
  void start();
  /// Signals the loop to exit and joins it (idempotent; also safe after
  /// run() returned).
  void stop();
  /// Runs the loop on the calling thread until stop() is called from
  /// another thread (or a signal handler calls request_stop()).
  void run();
  /// Async-signal-safe stop request (no join).
  void request_stop();

  /// The bound TCP port (valid once constructed, options.tcp only).
  std::uint16_t tcp_port() const { return tcp_port_; }
  const DaemonStats& stats() const { return stats_; }

 private:
  struct Conn;
  struct Session;
  void accept_ready(Fd& listener);
  void conn_ready(int fd, std::uint32_t events);
  void handle_frame(Conn& c, Frame f);
  void handle_commit(Conn& c, Session& s, Frame f);
  void handle_resume(Conn& c, Frame f);
  /// Detaches or reaps `s` from both maps (and its conn, if attached).
  void erase_session(Session& s, bool count_closed);
  /// Enqueues one outbound frame without flushing -- the payload view is
  /// moved, never copied (the round-routing path corks all kDeliver frames
  /// plus the kCommit barrier, then flushes once).
  void queue_frame(Conn& c, const FrameHeader& h, net::Payload payload);
  void send_frame(Conn& c, const FrameHeader& h, net::Payload payload);
  void flush(Conn& c);
  /// Fault path: writes at most `budget` bytes of the out queue (tearing a
  /// frame at an arbitrary byte), then the caller hard-closes.
  void flush_prefix(Conn& c, std::size_t budget);
  void close_conn(int fd);
  void sweep_idle();
  void loop();

  DaemonOptions options_;
  EventLoop loop_;
  Fd uds_listener_;
  Fd tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// Daemon-wide session registry, keyed by resume token. Sessions belong
  /// to the loop thread; a session outlives its connection while detached.
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_token_ = 1;
  std::int32_t next_ordinal_ = 0;  // fault-plan session matching
  WireFaultFuse fault_fuse_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  DaemonStats stats_;
};

}  // namespace coca::svc
