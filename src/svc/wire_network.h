// WireNetwork: the round-synchronizer of the service runtime.
//
// Presents the unchanged `SyncNetwork` party-facing interface -- the same
// setters, the same run()/run_report() -- while every delivered round
// crosses the daemon's socket: construction opens an agreement session on
// a `WireClient` connection and installs it as the underlying network's
// `RoundRouter`. Protocol code, SendTap adversaries, FaultPlans,
// transcripts, tracers, and RoundObservers all work unmodified, because
// they *are* unmodified: the protocols run against the same engine; only
// the transport under the round barrier changed. The wire-conformance
// suite (tests/test_wire_conformance.cpp) pins runs through here
// bit-identical to in-process SyncNetwork runs.
//
// Failure semantics: a transport failure (daemon death, idle-timeout
// kError, round-barrier timeout) ends the run with structured outcomes --
// run_report() marks unfinished parties TimedOut and sets
// `RunReport::transport_failed`; strict run() throws with the reason.
#pragma once

#include <memory>

#include "net/sync_network.h"
#include "svc/client.h"

namespace coca::svc {

class WireNetwork {
 public:
  /// Opens a session for `n` parties (threshold `t`) on `client`, which
  /// must outlive this object. Throws if the daemon refuses the session.
  WireNetwork(int n, int t, WireClient& client)
      : net_(n, t), session_(client.open(n, t)) {
    net_.set_round_router(session_.get());
  }

  // ---- The SyncNetwork party-facing surface, forwarded verbatim.
  using ProtocolFn = net::SyncNetwork::ProtocolFn;

  void set_honest(int id, ProtocolFn fn) {
    net_.set_honest(id, std::move(fn));
  }
  void set_byzantine(int id,
                     std::shared_ptr<net::ByzantineStrategy> strategy) {
    net_.set_byzantine(id, std::move(strategy));
  }
  void set_byzantine_protocol(int id, ProtocolFn fn) {
    net_.set_byzantine_protocol(id, std::move(fn));
  }
  void set_byzantine_protocol(int id, ProtocolFn fn,
                              std::shared_ptr<net::SendTap> tap) {
    net_.set_byzantine_protocol(id, std::move(fn), std::move(tap));
  }
  void set_split_brain(int id, ProtocolFn a, ProtocolFn b,
                       std::set<int> recipients_of_a) {
    net_.set_split_brain(id, std::move(a), std::move(b),
                         std::move(recipients_of_a));
  }
  void set_exec_policy(net::ExecPolicy policy) { net_.set_exec_policy(policy); }
  void set_fault_plan(net::FaultPlan plan) {
    net_.set_fault_plan(std::move(plan));
  }
  void set_transcript(net::Transcript* sink) { net_.set_transcript(sink); }
  void set_round_observer(net::RoundObserver* observer) {
    net_.set_round_observer(observer);
  }
  void set_tracer(obs::Tracer* tracer) { net_.set_tracer(tracer); }

  net::RunStats run(std::size_t max_rounds =
                        net::SyncNetwork::kDefaultMaxRounds) {
    return net_.run(max_rounds);
  }
  net::RunReport run_report(std::size_t max_rounds =
                                net::SyncNetwork::kDefaultMaxRounds) {
    return net_.run_report(max_rounds);
  }

  int n() const { return net_.n(); }
  int t() const { return net_.t(); }

  /// The wire session carrying this network's rounds (diagnostics).
  WireSession& session() { return *session_; }
  /// Escape hatch to the underlying engine.
  net::SyncNetwork& net() { return net_; }

 private:
  net::SyncNetwork net_;
  std::unique_ptr<WireSession> session_;
};

}  // namespace coca::svc
