// Chaos harness: the executable form of the survivability invariant.
//
// `run_case_under_wire_faults` executes one fuzz case twice -- once on the
// in-process SyncNetwork, once through a fresh daemon + recovery-enabled
// WireClient with a WireFaultPlan injected at both sites -- and compares.
// The contract it checks is exactly the one the transport claims:
//
//   * every fault the plan injects is absorbed by reconnect/backoff and
//     round-replay session resumption, and the recovered run's transcript,
//     RunStats, and oracle verdict are **bit-identical** to the fault-free
//     baseline; or
//   * the outage outlasted the retry budget, and the run resolved into a
//     structured failure (exception text / PartyOutcomes) -- never a hang,
//     never a silently different result.
//
// `ChaosReport::ok()` is that disjunction; anything else (diverging bits,
// a wedged session) is a transport bug. tests/test_wire_recovery.cpp
// sweeps deterministic schedules through this harness, `fuzz_driver
// --wire-faults` searches random ones, and tools/wire_soak hammers many
// concurrent sessions through it under a wall-clock budget.
//
// The optional daemon-restart mode kills the daemon process state outright
// (destroying the Daemon, socket and all) after the first client outage
// and boots a fresh one on the same path: recovery then exercises the
// unknown-token adoption path instead of in-registry resumption.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/fuzzer.h"
#include "svc/wire_fault.h"

namespace coca::svc {

struct ChaosOptions {
  /// Faults injected at both sites (each interprets its own kinds).
  WireFaultPlan plan;
  /// Total per-round budget on the wired run, reconnects included.
  int round_timeout_ms = 10'000;
  /// Client recovery policy (tight backoff: chaos runs are local).
  int max_attempts = 10;
  int backoff_initial_ms = 2;
  int backoff_max_ms = 50;
  int heartbeat_interval_ms = 0;
  int heartbeat_misses = 3;
  /// Daemon-side retention.
  int resume_grace_ms = 10'000;
  int replay_log_rounds = 8;
  std::size_t replay_log_bytes = std::size_t{4} << 20;
  bool adopt_unknown_resume = true;
  /// Destroy the daemon after the first client outage and boot a fresh one
  /// (fault-plan-free) on the same path: the rebind must go through
  /// unknown-token adoption and still converge bit-identically.
  bool restart_daemon_mid_run = false;
};

/// Robustness-counter deltas observed across the wired run (daemon counters
/// summed across a restart).
struct ChaosStats {
  std::uint64_t daemon_injected_faults = 0;
  std::uint64_t daemon_reconnects = 0;
  std::uint64_t daemon_resumed_sessions = 0;
  std::uint64_t daemon_replayed_rounds = 0;
  std::uint64_t daemon_replayed_bytes = 0;
  std::uint64_t daemon_heartbeats_missed = 0;
  std::uint64_t client_outages = 0;
  std::uint64_t client_reconnects = 0;
  std::uint64_t client_reconnect_attempts = 0;
  std::uint64_t client_resumed_sessions = 0;
  std::uint64_t client_replayed_rounds = 0;
  std::uint64_t client_injected_faults = 0;
  std::uint64_t client_heartbeats_missed = 0;
  std::uint64_t client_recovery_ms = 0;
  std::uint64_t daemon_restarts = 0;
};

struct ChaosReport {
  adv::FuzzOutcome plain;
  adv::FuzzOutcome wired;
  /// Transcript + RunStats + verdict bit-identical to the baseline.
  bool identical = false;
  /// Not identical, but the wired run resolved structurally (failure text
  /// and/or per-party outcomes) -- the give-up contract.
  bool structured = false;
  /// First observed difference, for diagnostics (empty when identical).
  std::string mismatch;
  ChaosStats stats;

  bool ok() const { return identical || structured; }
};

/// Runs `c` under `opt` against a fresh single-use daemon on a unique UDS
/// path. Thread-safe; many calls may run concurrently (wire_soak does).
ChaosReport run_case_under_wire_faults(const adv::FuzzCase& c,
                                       const ChaosOptions& opt);

/// Reproducer files for `fuzz_driver --wire-faults`, schema
/// "coca-wirechaos-v1": a corpus entry plus the wire-fault plan that broke
/// it, each in its own existing schema.
std::string wire_chaos_to_json(const adv::CorpusEntry& entry,
                               const WireFaultPlan& plan);
struct WireChaosCase {
  adv::CorpusEntry entry;
  WireFaultPlan plan;
};
WireChaosCase wire_chaos_from_json(std::string_view json);

}  // namespace coca::svc
