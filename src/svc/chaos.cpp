#include "svc/chaos.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "svc/client.h"
#include "svc/server.h"

namespace coca::svc {

namespace {

/// Per-process unique socket paths so concurrent harness threads (and
/// concurrent test binaries) never collide.
std::string unique_uds_path() {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/coca-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".sock";
}

void accumulate(ChaosStats& out, const DaemonStats& d) {
  out.daemon_injected_faults += d.injected_faults.load();
  out.daemon_reconnects += d.reconnects.load();
  out.daemon_resumed_sessions += d.resumed_sessions.load();
  out.daemon_replayed_rounds += d.replayed_rounds.load();
  out.daemon_replayed_bytes += d.replayed_bytes.load();
  out.daemon_heartbeats_missed += d.heartbeats_missed.load();
}

void accumulate(ChaosStats& out, const ClientStats& c) {
  out.client_outages += c.outages.load();
  out.client_reconnects += c.reconnects.load();
  out.client_reconnect_attempts += c.reconnect_attempts.load();
  out.client_resumed_sessions += c.resumed_sessions.load();
  out.client_replayed_rounds += c.replayed_rounds.load();
  out.client_injected_faults += c.injected_faults.load();
  out.client_heartbeats_missed += c.heartbeats_missed.load();
  out.client_recovery_ms += c.recovery_ms_total.load();
}

template <class T>
std::string pair_str(const char* what, const T& a, const T& b) {
  std::ostringstream os;
  os << what << ": plain=" << a << " wired=" << b;
  return os.str();
}

void compare_runs(const adv::FuzzOutcome& plain,
                  const net::Transcript& plain_tr,
                  const adv::FuzzOutcome& wired,
                  const net::Transcript& wire_tr, ChaosReport& rep) {
  const auto diff = [&](std::string what) {
    if (rep.mismatch.empty()) rep.mismatch = std::move(what);
  };
  const net::RunStats& a = plain.stats;
  const net::RunStats& b = wired.stats;
  if (plain.terminated != wired.terminated) {
    diff(pair_str("terminated", plain.terminated, wired.terminated));
  }
  if (a.rounds != b.rounds) diff(pair_str("rounds", a.rounds, b.rounds));
  if (a.honest_bytes != b.honest_bytes) {
    diff(pair_str("honest_bytes", a.honest_bytes, b.honest_bytes));
  }
  if (a.honest_messages != b.honest_messages) {
    diff(pair_str("honest_messages", a.honest_messages, b.honest_messages));
  }
  if (a.bytes_by_party != b.bytes_by_party) diff("bytes_by_party differ");
  if (a.phase_breakdown != b.phase_breakdown) diff("phase_breakdown differs");
  if (a.honest_bytes_by_phase != b.honest_bytes_by_phase) {
    diff("honest_bytes_by_phase differs");
  }
  // Recovery must add no counted copies: re-sends write the same payload
  // views, replay retention and redelivery are refcount bumps.
  if (a.payload_copies != b.payload_copies) {
    diff(pair_str("payload_copies", a.payload_copies, b.payload_copies));
  }
  if (plain.verdict.violations != wired.verdict.violations) {
    diff("oracle violations differ: wired has " +
         std::to_string(wired.verdict.violations.size()) + " (first: " +
         (wired.verdict.violations.empty() ? std::string("-")
                                           : wired.verdict.violations[0]) +
         "), plain has " + std::to_string(plain.verdict.violations.size()));
  }
  if (plain.outcomes.size() != wired.outcomes.size()) {
    diff(pair_str("outcome count", plain.outcomes.size(),
                  wired.outcomes.size()));
  } else {
    for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
      if (plain.outcomes[i].outcome != wired.outcomes[i].outcome) {
        diff("party " + std::to_string(i) + " outcome differs");
        break;
      }
    }
  }
  if (!(plain_tr == wire_tr)) diff("transcript differs");
  rep.identical = rep.mismatch.empty();
}

}  // namespace

ChaosReport run_case_under_wire_faults(const adv::FuzzCase& c,
                                       const ChaosOptions& opt) {
  opt.plan.validate();
  ChaosReport rep;

  // Fault-free baseline on the in-process network.
  net::Transcript plain_tr;
  rep.plain = adv::execute_case(c, &plain_tr);

  // Wired run: fresh single-use daemon + recovery-enabled client, both
  // holding the full plan (each site interprets only its own kinds).
  const std::string path = unique_uds_path();
  DaemonOptions dopt;
  dopt.uds_path = path;
  dopt.resume_grace_ms = opt.resume_grace_ms;
  dopt.replay_log_rounds = opt.replay_log_rounds;
  dopt.replay_log_bytes = opt.replay_log_bytes;
  dopt.adopt_unknown_resume = opt.adopt_unknown_resume;
  dopt.fault_plan = opt.plan;
  auto daemon = std::make_unique<Daemon>(dopt);
  daemon->start();

  ClientOptions copt;
  copt.round_timeout_ms = opt.round_timeout_ms;
  copt.recovery.enabled = true;
  copt.recovery.max_attempts = opt.max_attempts;
  copt.recovery.backoff_initial_ms = opt.backoff_initial_ms;
  copt.recovery.backoff_max_ms = opt.backoff_max_ms;
  copt.recovery.heartbeat_interval_ms = opt.heartbeat_interval_ms;
  copt.recovery.heartbeat_misses = opt.heartbeat_misses;
  copt.fault_plan = opt.plan;
  std::unique_ptr<WireClient> client =
      WireClient::connect_uds_path(path, copt);

  // Daemon-restart mode: once the client records an outage, tear the
  // daemon down completely (sessions, registry, socket file) and boot a
  // fresh, fault-free one on the same path. The client's reconnect loop
  // rides out the ENOENT window; the rebind lands on a daemon that never
  // issued the token, exercising unknown-token adoption.
  std::atomic<bool> watcher_stop{false};
  std::thread watcher;
  if (opt.restart_daemon_mid_run) {
    watcher = std::thread([&] {
      for (;;) {
        // Order matters: test the outage before the stop flag, so a plan
        // that guarantees an outage yields exactly one restart even when
        // the run finishes faster than a watcher tick (the restart then
        // lands during teardown, which recovery absorbs the same way).
        const bool stop = watcher_stop.load(std::memory_order_relaxed);
        if (client->stats().outages.load(std::memory_order_relaxed) >= 1) {
          accumulate(rep.stats, daemon->stats());
          daemon.reset();  // unlinks the socket; destroy fully before reuse
          DaemonOptions d2 = dopt;
          d2.fault_plan = WireFaultPlan{};
          d2.adopt_unknown_resume = true;
          daemon = std::make_unique<Daemon>(d2);
          daemon->start();
          rep.stats.daemon_restarts += 1;
          return;
        }
        if (stop) return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  net::Transcript wire_tr;
  {
    std::unique_ptr<WireSession> session = client->open(c.n, c.t);
    adv::ExecHooks hooks;
    hooks.transcript = &wire_tr;
    hooks.router = session.get();
    rep.wired = adv::execute_case(c, hooks);
  }

  watcher_stop.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  accumulate(rep.stats, client->stats());
  client.reset();  // orderly close before the daemon goes down
  accumulate(rep.stats, daemon->stats());
  daemon.reset();

  compare_runs(rep.plain, plain_tr, rep.wired, wire_tr, rep);
  // The give-up contract: a non-identical run is acceptable only when it
  // *resolved* -- a structured failure reason (strict path) or per-party
  // outcomes (guarded path) -- rather than terminating with different bits.
  rep.structured = !rep.identical && !rep.wired.terminated &&
                   (!rep.wired.failure.empty() || !rep.wired.outcomes.empty());
  return rep;
}

// ---------------------------------------------------------------------------
// Reproducer files (schema coca-wirechaos-v1).

namespace {

/// Returns the span of the balanced {...} value of top-level `key`, or an
/// empty view. String-aware: braces inside JSON strings do not count.
std::string_view top_level_object(std::string_view s, std::string_view key) {
  int depth = 0;
  bool in_string = false;
  std::string current;  // last string token completed at depth 1
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      } else {
        current.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        if (depth == 1) current.clear();
        break;
      case '{':
      case '[':
        if (depth == 1 && ch == '{' && current == key) {
          // Capture the balanced object starting here.
          int d = 0;
          bool str = false;
          for (std::size_t j = i; j < s.size(); ++j) {
            const char cj = s[j];
            if (str) {
              if (cj == '\\') {
                ++j;
              } else if (cj == '"') {
                str = false;
              }
              continue;
            }
            if (cj == '"') str = true;
            if (cj == '{') ++d;
            if (cj == '}' && --d == 0) return s.substr(i, j - i + 1);
          }
          throw Error("wire-chaos JSON: unbalanced object for '" +
                      std::string(key) + "'");
        }
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      default:
        break;
    }
  }
  return {};
}

}  // namespace

std::string wire_chaos_to_json(const adv::CorpusEntry& entry,
                               const WireFaultPlan& plan) {
  const auto trim = [](std::string s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
    return s;
  };
  std::ostringstream os;
  os << "{\n\"schema\": \"coca-wirechaos-v1\",\n\"entry\": "
     << trim(adv::to_json(entry)) << ",\n\"wire_faults\": "
     << trim(to_json(plan)) << "\n}\n";
  return os.str();
}

WireChaosCase wire_chaos_from_json(std::string_view json) {
  if (json.find("\"coca-wirechaos-v1\"") == std::string_view::npos) {
    throw Error("wire-chaos JSON: missing schema coca-wirechaos-v1");
  }
  const std::string_view entry = top_level_object(json, "entry");
  if (entry.empty()) throw Error("wire-chaos JSON: missing 'entry' object");
  const std::string_view plan = top_level_object(json, "wire_faults");
  if (plan.empty()) {
    throw Error("wire-chaos JSON: missing 'wire_faults' object");
  }
  WireChaosCase out;
  out.entry = adv::corpus_entry_from_json(entry);
  out.plan = wire_fault_plan_from_json(plan);
  return out;
}

}  // namespace coca::svc
