#include "svc/wire_fault.h"

#include <sstream>

#include "util/rng.h"

namespace coca::svc {

bool daemon_site(WireFaultPlan::Kind kind) {
  switch (kind) {
    case WireFaultPlan::Kind::kKillBeforeFlush:
    case WireFaultPlan::Kind::kKillAfterFlush:
    case WireFaultPlan::Kind::kDelayFlush:
    case WireFaultPlan::Kind::kStallRead:
    case WireFaultPlan::Kind::kTruncateFrame:
      return true;
    case WireFaultPlan::Kind::kClientKill:
    case WireFaultPlan::Kind::kClientPartialWrite:
      return false;
  }
  throw Error("daemon_site: unknown wire fault kind");
}

const char* to_string(WireFaultPlan::Kind kind) {
  switch (kind) {
    case WireFaultPlan::Kind::kKillBeforeFlush:
      return "kill_before_flush";
    case WireFaultPlan::Kind::kKillAfterFlush:
      return "kill_after_flush";
    case WireFaultPlan::Kind::kDelayFlush:
      return "delay_flush";
    case WireFaultPlan::Kind::kStallRead:
      return "stall_read";
    case WireFaultPlan::Kind::kTruncateFrame:
      return "truncate_frame";
    case WireFaultPlan::Kind::kClientKill:
      return "client_kill";
    case WireFaultPlan::Kind::kClientPartialWrite:
      return "client_partial_write";
  }
  throw Error("to_string: unknown wire fault kind");
}

std::optional<WireFaultPlan::Kind> wire_fault_kind_from_string(
    std::string_view s) {
  using Kind = WireFaultPlan::Kind;
  for (const Kind k :
       {Kind::kKillBeforeFlush, Kind::kKillAfterFlush, Kind::kDelayFlush,
        Kind::kStallRead, Kind::kTruncateFrame, Kind::kClientKill,
        Kind::kClientPartialWrite}) {
    if (s == to_string(k)) return k;
  }
  return std::nullopt;
}

void WireFaultPlan::validate(std::uint32_t max_stall_ms) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const std::string at = "WireFaultPlan entry " + std::to_string(i) + ": ";
    const auto raw = static_cast<std::uint8_t>(e.kind);
    if (raw < static_cast<std::uint8_t>(Kind::kKillBeforeFlush) ||
        raw > static_cast<std::uint8_t>(Kind::kClientPartialWrite)) {
      throw Error(at + "unknown kind " + std::to_string(raw));
    }
    if (e.session < -1) {
      throw Error(at + "session ordinal below -1");
    }
    const bool stall =
        e.kind == Kind::kDelayFlush || e.kind == Kind::kStallRead;
    if (stall && e.delay_ms == 0) {
      throw Error(at + "stall kind with zero delay_ms");
    }
    if (stall && e.delay_ms > max_stall_ms) {
      throw Error(at + "delay_ms " + std::to_string(e.delay_ms) +
                  " above the stall cap " + std::to_string(max_stall_ms));
    }
    if (!stall && e.delay_ms != 0) {
      throw Error(at + "delay_ms set on a non-stall kind");
    }
    const bool truncating = e.kind == Kind::kTruncateFrame ||
                            e.kind == Kind::kClientPartialWrite;
    if (!truncating && e.truncate_bytes != 0) {
      throw Error(at + "truncate_bytes set on a non-truncating kind");
    }
  }
}

bool WireFaultPlan::has_daemon_site() const {
  for (const Entry& e : entries) {
    if (daemon_site(e.kind)) return true;
  }
  return false;
}

bool WireFaultPlan::has_client_site() const {
  for (const Entry& e : entries) {
    if (!daemon_site(e.kind)) return true;
  }
  return false;
}

int WireFaultFuse::take(const WireFaultPlan& plan, WireFaultPlan::Kind kind,
                        std::int32_t ordinal, std::uint32_t round) {
  require(fired_.size() == plan.entries.size(),
          "WireFaultFuse::take: fuse built for a different plan");
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    if (fired_[i]) continue;
    const WireFaultPlan::Entry& e = plan.entries[i];
    if (e.kind != kind) continue;
    if (e.session != -1 && e.session != ordinal) continue;
    if (e.round != round) continue;
    fired_[i] = true;
    return static_cast<int>(i);
  }
  return -1;
}

WireFaultPlan sample_wire_fault_plan(const WireFaultSampleConfig& cfg) {
  require(cfg.horizon > 0, "sample_wire_fault_plan: empty horizon");
  using Kind = WireFaultPlan::Kind;
  std::vector<Kind> kinds;
  if (cfg.allow_kill) {
    kinds.insert(kinds.end(),
                 {Kind::kKillBeforeFlush, Kind::kKillAfterFlush,
                  Kind::kClientKill});
  }
  if (cfg.allow_stall) {
    kinds.insert(kinds.end(), {Kind::kDelayFlush, Kind::kStallRead});
  }
  if (cfg.allow_truncate) {
    kinds.insert(kinds.end(),
                 {Kind::kTruncateFrame, Kind::kClientPartialWrite});
  }
  WireFaultPlan plan;
  if (kinds.empty() || cfg.max_entries <= 0) return plan;
  Rng rng(cfg.seed);
  const std::size_t count =
      1 + rng.below(static_cast<std::uint64_t>(cfg.max_entries));
  for (std::size_t i = 0; i < count; ++i) {
    WireFaultPlan::Entry e;
    e.kind = kinds[rng.below(kinds.size())];
    e.session = -1;  // any session: plans compose with concurrent harnesses
    e.round = static_cast<std::uint32_t>(rng.below(cfg.horizon));
    if (e.kind == Kind::kDelayFlush || e.kind == Kind::kStallRead) {
      e.delay_ms = 1 + static_cast<std::uint32_t>(
                           rng.below(std::max<std::uint32_t>(cfg.max_stall_ms,
                                                             1)));
    }
    if (e.kind == Kind::kTruncateFrame ||
        e.kind == Kind::kClientPartialWrite) {
      // Offsets hug the interesting seams: inside the first header, at a
      // frame boundary neighbourhood, or deep into the batch.
      e.truncate_bytes = static_cast<std::uint32_t>(rng.below(4096));
    }
    plan.entries.push_back(e);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// JSON (schema coca-wirefault-v1). Same hand-rolled strict subset as the
// fuzz corpus; no library dependency.

namespace {

/// Strict cursor over the wire-fault JSON subset (objects, arrays, strings,
/// signed integers). Mirrors the corpus parser in adversary/fuzzer.cpp.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    ws();
    return pos_ >= s_.size();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char ch = s_[pos_++];
      if (ch == '"') return out;
      if (ch == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        out.push_back(s_[pos_++]);
        continue;
      }
      out.push_back(ch);
    }
  }

  std::int64_t i64() {
    ws();
    const bool neg = pos_ < s_.size() && s_[pos_] == '-';
    if (neg) ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      fail("expected integer");
    }
    std::int64_t v = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      if (v > (0x7FFFFFFFFFFFFFFFLL - 9) / 10) fail("integer overflow");
      v = v * 10 + (s_[pos_] - '0');
      ++pos_;
    }
    return neg ? -v : v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw Error("wire-fault JSON: " + std::string(what) + " at offset " +
                std::to_string(pos_));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const WireFaultPlan& plan) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"coca-wirefault-v1\",\n  \"entries\": [";
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    const WireFaultPlan::Entry& e = plan.entries[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kind\": \"" << to_string(e.kind)
       << "\", \"session\": " << e.session << ", \"round\": " << e.round
       << ", \"delay_ms\": " << e.delay_ms
       << ", \"truncate_bytes\": " << e.truncate_bytes << "}";
  }
  os << (plan.entries.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

WireFaultPlan wire_fault_plan_from_json(std::string_view json) {
  Cursor c(json);
  WireFaultPlan plan;
  bool saw_schema = false;
  c.expect('{');
  if (!c.consume('}')) {
    do {
      const std::string key = c.string();
      c.expect(':');
      if (key == "schema") {
        const std::string schema = c.string();
        if (schema != "coca-wirefault-v1") {
          throw Error("wire-fault JSON: unknown schema '" + schema + "'");
        }
        saw_schema = true;
      } else if (key == "entries") {
        c.expect('[');
        if (!c.consume(']')) {
          do {
            WireFaultPlan::Entry e;
            bool have_kind = false;
            c.expect('{');
            if (!c.consume('}')) {
              do {
                const std::string field = c.string();
                c.expect(':');
                if (field == "kind") {
                  const std::string kind = c.string();
                  const auto k = wire_fault_kind_from_string(kind);
                  if (!k) {
                    throw Error("wire-fault JSON: unknown kind '" + kind +
                                "'");
                  }
                  e.kind = *k;
                  have_kind = true;
                } else if (field == "session") {
                  e.session = static_cast<std::int32_t>(c.i64());
                } else if (field == "round") {
                  e.round = static_cast<std::uint32_t>(c.i64());
                } else if (field == "delay_ms") {
                  e.delay_ms = static_cast<std::uint32_t>(c.i64());
                } else if (field == "truncate_bytes") {
                  e.truncate_bytes = static_cast<std::uint32_t>(c.i64());
                } else {
                  throw Error("wire-fault JSON: unknown entry field '" +
                              field + "'");
                }
              } while (c.consume(','));
              c.expect('}');
            }
            if (!have_kind) {
              throw Error("wire-fault JSON: entry without a kind");
            }
            plan.entries.push_back(e);
          } while (c.consume(','));
          c.expect(']');
        }
      } else {
        throw Error("wire-fault JSON: unknown field '" + key + "'");
      }
    } while (c.consume(','));
    c.expect('}');
  }
  if (!saw_schema) throw Error("wire-fault JSON: missing schema");
  if (!c.at_end()) throw Error("wire-fault JSON: trailing bytes");
  plan.validate();
  return plan;
}

}  // namespace coca::svc
