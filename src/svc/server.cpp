#include "svc/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace coca::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Bytes asked of the socket per read; the decoder returns at least this
/// much writable slab tail.
constexpr std::size_t kReadChunk = 64 * 1024;

std::uint16_t read_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

Bytes u32_payload(std::uint32_t v) {
  return Bytes{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 24)};
}

Bytes text_payload(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace

/// One round retained for replay: the kDeliver frames exactly as they were
/// (or would have been) sent, as payload *views* -- retention pins receive
/// slabs instead of copying bytes -- plus the barrier count.
struct LoggedRound {
  std::uint32_t round = 0;
  std::uint32_t count = 0;
  std::vector<Frame> frames;  // kDeliver headers + payload views
  std::size_t bytes = 0;      // headers + payloads, for the byte bound
};

/// One agreement session, owned by the daemon-wide registry and named by
/// its resume token. `conn` is the attached connection, or nullptr while
/// the session is detached awaiting a kResume.
struct Daemon::Session {
  std::uint64_t token = 0;
  std::int32_t ordinal = 0;  // daemon-wide open order (fault matching)
  int n = 0;
  int t = 0;
  std::vector<Frame> staged;  // kMsg frames of the round in flight
  std::uint64_t rounds_committed = 0;
  std::deque<LoggedRound> log;  // rounds [committed - log.size(), committed)
  std::size_t log_bytes = 0;
  Conn* conn = nullptr;
  std::uint32_t sid = 0;  // session id on the attached connection
  Clock::time_point last_activity;
};

struct Daemon::Conn {
  Fd fd;
  FrameDecoder decoder;

  /// One queued outbound frame: fixed header + payload view, with a write
  /// cursor for partial sends. The payload is the *view into the receive
  /// slab* that came off the wire (moved, never copied): a relayed message
  /// is a rewritten 24-byte header plus an iovec over the original
  /// received bytes, so the daemon's routing fast path touches no payload
  /// byte and allocates nothing per message apart from the queue node.
  struct OutFrame {
    std::array<std::uint8_t, kHeaderSize> header;
    net::Payload payload;
    std::size_t off = 0;  // bytes of (header + payload) already written
  };
  std::deque<OutFrame> out;
  bool want_writable = false;

  std::map<std::uint32_t, Session*> sessions;
};

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  require(!options_.uds_path.empty() || options_.tcp,
          "Daemon: need a UDS path or TCP enabled");
  options_.fault_plan.validate();
  fault_fuse_ = WireFaultFuse(options_.fault_plan);
  if (!options_.uds_path.empty()) {
    uds_listener_ = listen_uds(options_.uds_path);
    set_nonblocking(uds_listener_.get());
    loop_.add(uds_listener_.get(), EPOLLIN,
              [this](std::uint32_t) { accept_ready(uds_listener_); });
  }
  if (options_.tcp) {
    tcp_listener_ = listen_tcp_loopback(options_.tcp_port);
    set_nonblocking(tcp_listener_.get());
    tcp_port_ = local_port(tcp_listener_.get());
    loop_.add(tcp_listener_.get(), EPOLLIN,
              [this](std::uint32_t) { accept_ready(tcp_listener_); });
  }
}

Daemon::~Daemon() {
  stop();
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
}

void Daemon::start() {
  require(!thread_.joinable(), "Daemon::start: already running");
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Daemon::stop() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  loop_.wake();
}

void Daemon::run() {
  stop_.store(false, std::memory_order_relaxed);
  loop();
}

void Daemon::loop() {
  // Poll granularity: fine enough that idle kills land within ~1/4 of the
  // configured timeout, coarse enough to not spin when quiet.
  int tick_ms = std::clamp(options_.idle_timeout_ms / 4, 10, 1000);
  if (options_.resume_grace_ms > 0) {
    tick_ms = std::min(tick_ms,
                       std::clamp(options_.resume_grace_ms / 4, 10, 1000));
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    loop_.poll(tick_ms);
    sweep_idle();
  }
  // Orderly teardown on the loop thread: every conn closes here, so no
  // other thread ever touched connection state.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  sessions_.clear();
}

void Daemon::accept_ready(Fd& listener) {
  for (;;) {
    const int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    set_socket_buffers(fd, options_.socket_buffer_bytes);
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, EPOLLIN,
              [this, fd](std::uint32_t events) { conn_ready(fd, events); });
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Daemon::conn_ready(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush(c);
    if (conns_.find(fd) == conns_.end()) return;  // flush may close
  }
  if ((events & EPOLLIN) == 0) return;

  for (;;) {
    // Zero-copy receive: the socket fills the decoder's pool slab directly;
    // decoded frame payloads are views into that same slab.
    const std::span<std::uint8_t> w = c.decoder.writable(kReadChunk);
    const ssize_t got = ::read(fd, w.data(), w.size());
    if (got > 0) {
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(got),
                                      std::memory_order_relaxed);
      c.decoder.commit(static_cast<std::size_t>(got));
      while (std::optional<Frame> f = c.decoder.next()) {
        stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
        handle_frame(c, std::move(*f));
        if (conns_.find(fd) == conns_.end()) return;  // frame closed us
      }
      if (c.decoder.failed()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(fd);
        return;
      }
      continue;
    }
    if (got == 0) {  // peer closed
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
}

void Daemon::erase_session(Session& s, bool count_closed) {
  if (s.conn != nullptr) s.conn->sessions.erase(s.sid);
  if (count_closed) {
    stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
  sessions_.erase(s.token);  // deletes s
}

void Daemon::handle_frame(Conn& c, Frame f) {
  const std::uint32_t sid = f.header.session;
  const auto session_error = [&](const std::string& reason) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    const int cfd = c.fd.get();  // send may close (and destroy) the conn
    FrameHeader h;
    h.type = FrameType::kError;
    h.session = sid;
    h.round = f.header.round;
    send_frame(c, h, text_payload(reason));
    if (conns_.find(cfd) == conns_.end()) return;
    const auto it = c.sessions.find(sid);
    if (it != c.sessions.end()) erase_session(*it->second, true);
  };

  switch (f.header.type) {
    case FrameType::kOpen: {
      if (f.payload.size() != 4) {
        session_error("kOpen payload must be u16 n, u16 t");
        return;
      }
      if (c.sessions.contains(sid)) {
        session_error("session id already open on this connection");
        return;
      }
      auto s = std::make_unique<Session>();
      s->n = read_u16(f.payload, 0);
      s->t = read_u16(f.payload, 2);
      if (s->n < 1 || s->t < 0 || s->t >= s->n) {
        session_error("kOpen with invalid n/t");
        return;
      }
      s->token = next_token_++;
      s->ordinal = next_ordinal_++;
      s->conn = &c;
      s->sid = sid;
      s->last_activity = Clock::now();
      const std::uint64_t token = s->token;
      c.sessions.emplace(sid, s.get());
      sessions_.emplace(token, std::move(s));
      stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
      FrameHeader h;
      h.type = FrameType::kOpenAck;
      h.session = sid;
      send_frame(c, h, encode_u64_payload(token));
      return;
    }
    case FrameType::kMsg: {
      const auto it = c.sessions.find(sid);
      if (it == c.sessions.end()) {
        session_error("kMsg for unknown session");
        return;
      }
      it->second->last_activity = Clock::now();
      it->second->staged.push_back(std::move(f));
      return;
    }
    case FrameType::kCommit: {
      const auto it = c.sessions.find(sid);
      if (it == c.sessions.end()) {
        session_error("kCommit for unknown session");
        return;
      }
      if (f.payload.size() != 4) {
        session_error("kCommit payload must be u32 count");
        return;
      }
      handle_commit(c, *it->second, std::move(f));
      return;
    }
    case FrameType::kClose: {
      const auto it = c.sessions.find(sid);
      if (it != c.sessions.end()) erase_session(*it->second, true);
      FrameHeader h;
      h.type = FrameType::kClosed;
      h.session = sid;
      send_frame(c, h, {});
      return;
    }
    case FrameType::kPing: {
      // Connection-level liveness: echoed verbatim, touches no session
      // clock (a pinging-but-idle session still idles out).
      FrameHeader h;
      h.type = FrameType::kPong;
      h.session = sid;
      h.round = f.header.round;
      send_frame(c, h, {});
      return;
    }
    case FrameType::kResume: {
      handle_resume(c, std::move(f));
      return;
    }
    default:
      // kOpenAck/kDeliver/kClosed/kError/kResumeAck/kPong are
      // server->client only.
      session_error("unexpected client frame type");
      return;
  }
}

void Daemon::handle_commit(Conn& c, Session& s, Frame f) {
  const int cfd = c.fd.get();  // a failed flush destroys the conn
  const std::uint32_t sid = s.sid;
  const std::uint32_t round = f.header.round;
  const std::uint32_t count = read_u32(f.payload, 0);
  if (count != s.staged.size()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    FrameHeader h;
    h.type = FrameType::kError;
    h.session = sid;
    h.round = round;
    send_frame(c, h,
               text_payload("kCommit count " + std::to_string(count) +
                            " != " + std::to_string(s.staged.size()) +
                            " staged messages"));
    if (conns_.find(cfd) == conns_.end()) return;
    erase_session(s, true);
    return;
  }

  const WireFaultPlan& plan = options_.fault_plan;
  const auto take = [&](WireFaultPlan::Kind kind) {
    const int i = fault_fuse_.take(plan, kind, s.ordinal, round);
    if (i >= 0) stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
    return i;
  };

  // Injected read stall: the daemon sits on the commit before processing
  // it. Client heartbeats see silence; nothing is lost.
  if (const int i = take(WireFaultPlan::Kind::kStallRead); i >= 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(plan.entries[i].delay_ms));
  }

  // Route + retain: the round's kDeliver frames are built once -- each a
  // rewritten header plus the original received payload view (no encode,
  // no memcpy) -- logged for replay, and queued to the connection as view
  // copies (refcount bumps). The whole round is corked and shipped in one
  // gather batch, so a round costs O(1) writev calls instead of one per
  // message.
  LoggedRound lr;
  lr.round = round;
  lr.count = count;
  lr.frames.reserve(s.staged.size());
  for (Frame& m : s.staged) {
    Frame d;
    d.header = m.header;
    d.header.type = FrameType::kDeliver;
    d.payload = std::move(m.payload);
    lr.bytes += kHeaderSize + d.payload.size();
    lr.frames.push_back(std::move(d));
  }
  s.staged.clear();
  for (const Frame& d : lr.frames) {
    queue_frame(c, d.header, net::Payload(d.payload));  // view copy
  }
  FrameHeader h;
  h.type = FrameType::kCommit;
  h.session = sid;
  h.round = round;
  queue_frame(c, h, u32_payload(count));

  if (options_.replay_log_rounds > 0 && options_.resume_grace_ms > 0) {
    s.log_bytes += lr.bytes;
    s.log.push_back(std::move(lr));
    // Evict oldest rounds past either bound, but always keep the newest:
    // a kill-before-flush of the current round must stay replayable.
    while (s.log.size() > 1 &&
           (s.log.size() >
                static_cast<std::size_t>(options_.replay_log_rounds) ||
            s.log_bytes > options_.replay_log_bytes)) {
      s.log_bytes -= s.log.front().bytes;
      s.log.pop_front();
    }
  }
  s.last_activity = Clock::now();
  ++s.rounds_committed;
  stats_.rounds_committed.fetch_add(1, std::memory_order_relaxed);

  // Fault interpretation at the flush boundary. A kill drops the queued
  // round with the connection (the session detaches and the round waits in
  // the replay log); a truncation tears a frame at an arbitrary byte.
  if (take(WireFaultPlan::Kind::kKillBeforeFlush) >= 0) {
    close_conn(c.fd.get());
    return;
  }
  if (const int i = take(WireFaultPlan::Kind::kTruncateFrame); i >= 0) {
    flush_prefix(c, plan.entries[i].truncate_bytes);
    close_conn(c.fd.get());
    return;
  }
  if (const int i = take(WireFaultPlan::Kind::kDelayFlush); i >= 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(plan.entries[i].delay_ms));
  }
  flush(c);
  if (conns_.find(cfd) == conns_.end()) return;  // flush may close
  if (take(WireFaultPlan::Kind::kKillAfterFlush) >= 0) {
    close_conn(cfd);
    return;
  }
  if (options_.drop_connection_after_rounds > 0 &&
      s.rounds_committed >= static_cast<std::uint64_t>(
                                options_.drop_connection_after_rounds)) {
    // Injected fault: the daemon "dies" for this connection mid
    // conversation -- no goodbye frames, just a closed socket.
    close_conn(c.fd.get());
  }
}

void Daemon::handle_resume(Conn& c, Frame f) {
  const std::uint32_t sid = f.header.session;
  const auto reject = [&](const std::string& reason) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    FrameHeader h;
    h.type = FrameType::kError;
    h.session = sid;
    send_frame(c, h, text_payload(reason));
  };

  const std::optional<ResumeInfo> info = decode_resume(f.payload);
  if (!info) {
    reject("kResume payload must be u64 token, u64 completed, u16 n, u16 t");
    return;
  }
  stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  if (f.header.flags & kResumeFlagHeartbeat) {
    stats_.heartbeats_missed.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.resume_grace_ms <= 0) {
    reject("session resumption is disabled on this daemon");
    return;
  }
  if (c.sessions.contains(sid)) {
    reject("kResume for a session id already bound on this connection");
    return;
  }

  Session* s = nullptr;
  const auto it = sessions_.find(info->token);
  if (it == sessions_.end()) {
    // Unknown token: this daemon never issued it (it restarted) or the
    // grace window expired. Adoption re-creates the session at the
    // client's declared base; the client re-drives the in-flight round, so
    // a daemon restart costs one round of re-send, not the run.
    if (!options_.adopt_unknown_resume) {
      reject("unknown resume token");
      return;
    }
    if (info->n < 1 || info->t >= info->n) {  // u16 fields; t >= 0 for free
      reject("kResume with invalid n/t");
      return;
    }
    auto fresh = std::make_unique<Session>();
    fresh->token = info->token;
    next_token_ = std::max(next_token_, info->token + 1);
    fresh->ordinal = next_ordinal_++;
    fresh->n = info->n;
    fresh->t = info->t;
    fresh->rounds_committed = info->completed;
    s = fresh.get();
    sessions_.emplace(info->token, std::move(fresh));
    stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = it->second.get();
    if (s->n != info->n || s->t != info->t) {
      reject("kResume n/t does not match the session");
      return;
    }
    if (info->completed > s->rounds_committed) {
      // A stale token re-used for a different run, or a desynced client:
      // claiming rounds the daemon never committed is never replayable.
      reject("kResume round " + std::to_string(info->completed) +
             " is ahead of committed " +
             std::to_string(s->rounds_committed) + " (stale resume state)");
      return;
    }
    if (info->completed + s->log.size() < s->rounds_committed) {
      reject("kResume round " + std::to_string(info->completed) +
             " is beyond replay retention (oldest retained " +
             std::to_string(s->rounds_committed - s->log.size()) + ")");
      return;
    }
    if (s->conn != nullptr && s->conn != &c) {
      // Double reconnect: the newest connection wins the binding.
      s->conn->sessions.erase(s->sid);
    }
    s->staged.clear();  // a torn round's partial kMsg batch is re-sent whole
  }

  s->conn = &c;
  s->sid = sid;
  s->last_activity = Clock::now();
  c.sessions[sid] = s;
  stats_.resumed_sessions.fetch_add(1, std::memory_order_relaxed);

  // Ack carries the daemon's committed count, then the gap rounds replay
  // in order -- all corked into one flush with the ack.
  FrameHeader ack;
  ack.type = FrameType::kResumeAck;
  ack.session = sid;
  queue_frame(c, ack, encode_u64_payload(s->rounds_committed));
  std::uint64_t logical = s->rounds_committed - s->log.size();
  for (const LoggedRound& lr : s->log) {
    if (logical++ < info->completed) continue;
    for (const Frame& d : lr.frames) {
      FrameHeader h = d.header;
      h.session = sid;
      queue_frame(c, h, net::Payload(d.payload));  // view copy
    }
    FrameHeader barrier;
    barrier.type = FrameType::kCommit;
    barrier.session = sid;
    barrier.round = lr.round;
    queue_frame(c, barrier, u32_payload(lr.count));
    stats_.replayed_rounds.fetch_add(1, std::memory_order_relaxed);
    stats_.replayed_bytes.fetch_add(lr.bytes, std::memory_order_relaxed);
  }
  flush(c);
}

void Daemon::queue_frame(Conn& c, const FrameHeader& h, net::Payload payload) {
  require(payload.size() <= kMaxFramePayload,
          "Daemon::queue_frame: payload too big");
  Conn::OutFrame of;
  of.header = encode_header(h, static_cast<std::uint32_t>(payload.size()));
  of.payload = std::move(payload);
  c.out.push_back(std::move(of));
}

void Daemon::send_frame(Conn& c, const FrameHeader& h, net::Payload payload) {
  queue_frame(c, h, std::move(payload));
  flush(c);
}

void Daemon::flush(Conn& c) {
  const int fd = c.fd.get();
  while (!c.out.empty()) {
    // Gather up to 128 queued frames (256 iovecs) per sendmsg: a whole
    // committed round of kDeliver frames plus the barrier normally leaves
    // in one syscall (IOV_MAX is 1024 on Linux; 256 keeps the stack array
    // at 4 KiB).
    iovec iov[256];
    int iovcnt = 0;
    for (const Conn::OutFrame& of : c.out) {
      if (iovcnt + 2 > 256) break;
      std::size_t off = of.off;
      if (off < kHeaderSize) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(of.header.data()) + off;
        iov[iovcnt].iov_len = kHeaderSize - off;
        ++iovcnt;
        off = 0;
      } else {
        off -= kHeaderSize;
      }
      if (off < of.payload.size()) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(of.payload.data()) + off;
        iov[iovcnt].iov_len = of.payload.size() - off;
        ++iovcnt;
      }
    }
    if (iovcnt == 0) {  // fully-written frames at the front
      c.out.pop_front();
      continue;
    }
    // sendmsg for MSG_NOSIGNAL: a client that vanished mid-write is an
    // EPIPE close, never a SIGPIPE to the daemon process.
    ::msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t wrote = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(fd);
      return;
    }
    // Advance cursors through the queue front.
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0 && !c.out.empty()) {
      Conn::OutFrame& of = c.out.front();
      const std::size_t total = kHeaderSize + of.payload.size();
      const std::size_t take = std::min(left, total - of.off);
      of.off += take;
      left -= take;
      if (of.off == total) c.out.pop_front();
    }
  }
  const bool want = !c.out.empty();
  if (want != c.want_writable) {
    c.want_writable = want;
    loop_.modify(fd, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
  }
}

void Daemon::flush_prefix(Conn& c, std::size_t budget) {
  // Best-effort single write of the queue's first `budget` bytes: the
  // caller closes the connection right after, so the client observes a
  // frame torn at an arbitrary byte (possibly mid-header).
  iovec iov[256];
  int iovcnt = 0;
  std::size_t remaining = budget;
  for (const Conn::OutFrame& of : c.out) {
    if (remaining == 0 || iovcnt + 2 > 256) break;
    std::size_t off = of.off;
    if (off < kHeaderSize) {
      const std::size_t len = std::min(kHeaderSize - off, remaining);
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(of.header.data()) + off;
      iov[iovcnt].iov_len = len;
      ++iovcnt;
      remaining -= len;
      off = 0;
      if (remaining == 0) break;
    } else {
      off -= kHeaderSize;
    }
    if (off < of.payload.size()) {
      const std::size_t len = std::min(of.payload.size() - off, remaining);
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(of.payload.data()) + off;
      iov[iovcnt].iov_len = len;
      ++iovcnt;
      remaining -= len;
    }
  }
  if (iovcnt == 0) return;
  ::msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  (void)::sendmsg(c.fd.get(), &msg, MSG_NOSIGNAL);
}

void Daemon::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  for (auto& [sid, s] : c.sessions) {
    if (options_.resume_grace_ms > 0) {
      // Detach: the session survives the connection, awaiting a kResume
      // within the grace window. The staged (uncommitted) round is dropped
      // -- the client re-sends it whole after resuming.
      s->conn = nullptr;
      s->sid = 0;
      s->staged.clear();
      s->last_activity = Clock::now();
    } else {
      stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
      sessions_.erase(s->token);
    }
  }
  loop_.remove(fd);
  conns_.erase(it);  // Fd dtor closes
}

void Daemon::sweep_idle() {
  const auto now = Clock::now();
  // Collect first: killing a session sends kError, which may close a conn
  // and detach (mutate) other sessions mid-iteration.
  std::vector<std::uint64_t> idle_tokens;
  std::vector<std::uint64_t> expired_tokens;
  const auto idle_deadline =
      now - std::chrono::milliseconds(options_.idle_timeout_ms);
  const auto grace_deadline =
      now - std::chrono::milliseconds(options_.resume_grace_ms);
  for (const auto& [token, s] : sessions_) {
    if (s->conn != nullptr) {
      if (options_.idle_timeout_ms > 0 && s->last_activity < idle_deadline) {
        idle_tokens.push_back(token);
      }
    } else if (s->last_activity < grace_deadline) {
      expired_tokens.push_back(token);
    }
  }
  for (const std::uint64_t token : idle_tokens) {
    const auto it = sessions_.find(token);
    if (it == sessions_.end()) continue;
    Session& s = *it->second;
    if (s.conn != nullptr) {
      FrameHeader h;
      h.type = FrameType::kError;
      h.session = s.sid;
      send_frame(*s.conn, h, text_payload("session idle timeout"));
    }
    const auto again = sessions_.find(token);  // send may detach/erase
    if (again == sessions_.end()) continue;
    stats_.sessions_idle_killed.fetch_add(1, std::memory_order_relaxed);
    erase_session(*again->second, true);
  }
  for (const std::uint64_t token : expired_tokens) {
    const auto it = sessions_.find(token);
    if (it == sessions_.end() || it->second->conn != nullptr) continue;
    erase_session(*it->second, true);
  }
}

}  // namespace coca::svc
