#include "svc/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace coca::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Bytes asked of the socket per read; the decoder returns at least this
/// much writable slab tail.
constexpr std::size_t kReadChunk = 64 * 1024;

std::uint16_t read_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

Bytes u32_payload(std::uint32_t v) {
  return Bytes{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 24)};
}

Bytes text_payload(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace

struct Daemon::Conn {
  Fd fd;
  FrameDecoder decoder;

  /// One queued outbound frame: fixed header + payload view, with a write
  /// cursor for partial sends. The payload is the *view into the receive
  /// slab* that came off the wire (moved, never copied): a relayed message
  /// is a rewritten 24-byte header plus an iovec over the original
  /// received bytes, so the daemon's routing fast path touches no payload
  /// byte and allocates nothing per message apart from the queue node.
  struct OutFrame {
    std::array<std::uint8_t, kHeaderSize> header;
    net::Payload payload;
    std::size_t off = 0;  // bytes of (header + payload) already written
  };
  std::deque<OutFrame> out;
  bool want_writable = false;

  /// Per-round message buffer of one session between kCommit barriers.
  struct Session {
    int n = 0;
    int t = 0;
    std::vector<Frame> staged;  // kMsg frames of the round in flight
    std::uint64_t rounds_committed = 0;
    Clock::time_point last_activity;
  };
  std::map<std::uint32_t, Session> sessions;
};

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  require(!options_.uds_path.empty() || options_.tcp,
          "Daemon: need a UDS path or TCP enabled");
  if (!options_.uds_path.empty()) {
    uds_listener_ = listen_uds(options_.uds_path);
    set_nonblocking(uds_listener_.get());
    loop_.add(uds_listener_.get(), EPOLLIN,
              [this](std::uint32_t) { accept_ready(uds_listener_); });
  }
  if (options_.tcp) {
    tcp_listener_ = listen_tcp_loopback(options_.tcp_port);
    set_nonblocking(tcp_listener_.get());
    tcp_port_ = local_port(tcp_listener_.get());
    loop_.add(tcp_listener_.get(), EPOLLIN,
              [this](std::uint32_t) { accept_ready(tcp_listener_); });
  }
}

Daemon::~Daemon() {
  stop();
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
}

void Daemon::start() {
  require(!thread_.joinable(), "Daemon::start: already running");
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Daemon::stop() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  loop_.wake();
}

void Daemon::run() {
  stop_.store(false, std::memory_order_relaxed);
  loop();
}

void Daemon::loop() {
  // Poll granularity: fine enough that idle kills land within ~1/4 of the
  // configured timeout, coarse enough to not spin when quiet.
  const int tick_ms =
      std::clamp(options_.idle_timeout_ms / 4, 10, 1000);
  while (!stop_.load(std::memory_order_relaxed)) {
    loop_.poll(tick_ms);
    sweep_idle();
  }
  // Orderly teardown on the loop thread: every conn closes here, so no
  // other thread ever touched connection state.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
}

void Daemon::accept_ready(Fd& listener) {
  for (;;) {
    const int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    set_socket_buffers(fd, options_.socket_buffer_bytes);
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, EPOLLIN,
              [this, fd](std::uint32_t events) { conn_ready(fd, events); });
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Daemon::conn_ready(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush(c);
    if (conns_.find(fd) == conns_.end()) return;  // flush may close
  }
  if ((events & EPOLLIN) == 0) return;

  for (;;) {
    // Zero-copy receive: the socket fills the decoder's pool slab directly;
    // decoded frame payloads are views into that same slab.
    const std::span<std::uint8_t> w = c.decoder.writable(kReadChunk);
    const ssize_t got = ::read(fd, w.data(), w.size());
    if (got > 0) {
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(got),
                                      std::memory_order_relaxed);
      c.decoder.commit(static_cast<std::size_t>(got));
      while (std::optional<Frame> f = c.decoder.next()) {
        stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
        handle_frame(c, std::move(*f));
        if (conns_.find(fd) == conns_.end()) return;  // frame closed us
      }
      if (c.decoder.failed()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(fd);
        return;
      }
      continue;
    }
    if (got == 0) {  // peer closed
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
}

void Daemon::handle_frame(Conn& c, Frame f) {
  const std::uint32_t sid = f.header.session;
  const auto session_error = [&](const std::string& reason) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    FrameHeader h;
    h.type = FrameType::kError;
    h.session = sid;
    h.round = f.header.round;
    send_frame(c, h, text_payload(reason));
    c.sessions.erase(sid);
  };

  switch (f.header.type) {
    case FrameType::kOpen: {
      if (f.payload.size() != 4) {
        session_error("kOpen payload must be u16 n, u16 t");
        return;
      }
      if (c.sessions.contains(sid)) {
        session_error("session id already open on this connection");
        return;
      }
      Conn::Session s;
      s.n = read_u16(f.payload, 0);
      s.t = read_u16(f.payload, 2);
      if (s.n < 1 || s.t < 0 || s.t >= s.n) {
        session_error("kOpen with invalid n/t");
        return;
      }
      s.last_activity = Clock::now();
      c.sessions.emplace(sid, std::move(s));
      stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
      FrameHeader h;
      h.type = FrameType::kOpenAck;
      h.session = sid;
      send_frame(c, h, {});
      return;
    }
    case FrameType::kMsg: {
      const auto it = c.sessions.find(sid);
      if (it == c.sessions.end()) {
        session_error("kMsg for unknown session");
        return;
      }
      it->second.last_activity = Clock::now();
      it->second.staged.push_back(std::move(f));
      return;
    }
    case FrameType::kCommit: {
      const auto it = c.sessions.find(sid);
      if (it == c.sessions.end()) {
        session_error("kCommit for unknown session");
        return;
      }
      Conn::Session& s = it->second;
      if (f.payload.size() != 4) {
        session_error("kCommit payload must be u32 count");
        return;
      }
      const std::uint32_t count = read_u32(f.payload, 0);
      if (count != s.staged.size()) {
        session_error("kCommit count " + std::to_string(count) +
                      " != " + std::to_string(s.staged.size()) +
                      " staged messages");
        return;
      }
      // Route: every staged message goes back out as kDeliver, in the
      // exact order the client committed it, then the round barrier. The
      // whole round is corked -- queued without an intermediate flush --
      // and shipped in one gather batch, so a round costs O(1) writev
      // calls instead of one per message. Each kDeliver is a rewritten
      // header plus the original received payload view: no encode, no
      // memcpy.
      for (Frame& m : s.staged) {
        FrameHeader h = m.header;
        h.type = FrameType::kDeliver;
        queue_frame(c, h, std::move(m.payload));
      }
      s.staged.clear();
      FrameHeader h;
      h.type = FrameType::kCommit;
      h.session = sid;
      h.round = f.header.round;
      send_frame(c, h, u32_payload(count));
      s.last_activity = Clock::now();
      ++s.rounds_committed;
      stats_.rounds_committed.fetch_add(1, std::memory_order_relaxed);
      if (options_.drop_connection_after_rounds > 0 &&
          s.rounds_committed >=
              static_cast<std::uint64_t>(
                  options_.drop_connection_after_rounds)) {
        // Injected fault: the daemon "dies" for this connection mid
        // conversation -- no goodbye frames, just a closed socket.
        close_conn(c.fd.get());
      }
      return;
    }
    case FrameType::kClose: {
      if (c.sessions.erase(sid) > 0) {
        stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
      }
      FrameHeader h;
      h.type = FrameType::kClosed;
      h.session = sid;
      send_frame(c, h, {});
      return;
    }
    default:
      // kOpenAck/kDeliver/kClosed/kError are server->client only.
      session_error("unexpected client frame type");
      return;
  }
}

void Daemon::queue_frame(Conn& c, const FrameHeader& h, net::Payload payload) {
  require(payload.size() <= kMaxFramePayload,
          "Daemon::queue_frame: payload too big");
  Conn::OutFrame of;
  of.header = encode_header(h, static_cast<std::uint32_t>(payload.size()));
  of.payload = std::move(payload);
  c.out.push_back(std::move(of));
}

void Daemon::send_frame(Conn& c, const FrameHeader& h, net::Payload payload) {
  queue_frame(c, h, std::move(payload));
  flush(c);
}

void Daemon::flush(Conn& c) {
  const int fd = c.fd.get();
  while (!c.out.empty()) {
    // Gather up to 128 queued frames (256 iovecs) per sendmsg: a whole
    // committed round of kDeliver frames plus the barrier normally leaves
    // in one syscall (IOV_MAX is 1024 on Linux; 256 keeps the stack array
    // at 4 KiB).
    iovec iov[256];
    int iovcnt = 0;
    for (const Conn::OutFrame& of : c.out) {
      if (iovcnt + 2 > 256) break;
      std::size_t off = of.off;
      if (off < kHeaderSize) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(of.header.data()) + off;
        iov[iovcnt].iov_len = kHeaderSize - off;
        ++iovcnt;
        off = 0;
      } else {
        off -= kHeaderSize;
      }
      if (off < of.payload.size()) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(of.payload.data()) + off;
        iov[iovcnt].iov_len = of.payload.size() - off;
        ++iovcnt;
      }
    }
    if (iovcnt == 0) {  // fully-written frames at the front
      c.out.pop_front();
      continue;
    }
    // sendmsg for MSG_NOSIGNAL: a client that vanished mid-write is an
    // EPIPE close, never a SIGPIPE to the daemon process.
    ::msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t wrote = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(fd);
      return;
    }
    // Advance cursors through the queue front.
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0 && !c.out.empty()) {
      Conn::OutFrame& of = c.out.front();
      const std::size_t total = kHeaderSize + of.payload.size();
      const std::size_t take = std::min(left, total - of.off);
      of.off += take;
      left -= take;
      if (of.off == total) c.out.pop_front();
    }
  }
  const bool want = !c.out.empty();
  if (want != c.want_writable) {
    c.want_writable = want;
    loop_.modify(fd, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
  }
}

void Daemon::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  stats_.sessions_closed.fetch_add(it->second->sessions.size(),
                                   std::memory_order_relaxed);
  loop_.remove(fd);
  conns_.erase(it);  // Fd dtor closes
}

void Daemon::sweep_idle() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto deadline =
      Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [fd, conn] : conns_) {
    Conn& c = *conn;
    for (auto it = c.sessions.begin(); it != c.sessions.end();) {
      if (it->second.last_activity < deadline) {
        FrameHeader h;
        h.type = FrameType::kError;
        h.session = it->first;
        send_frame(c, h, text_payload("session idle timeout"));
        if (conns_.find(fd) == conns_.end()) return;  // send may close
        it = c.sessions.erase(it);
        stats_.sessions_idle_killed.fetch_add(1, std::memory_order_relaxed);
        stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace coca::svc
