#include "svc/frame.h"

#include <cstring>

namespace coca::svc {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool valid_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kOpen) &&
         t <= static_cast<std::uint8_t>(FrameType::kPong);
}

Bytes encode_resume(const ResumeInfo& info) {
  Bytes out(20);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(info.token >> (8 * i));
    out[8 + i] = static_cast<std::uint8_t>(info.completed >> (8 * i));
  }
  put_u16(out.data() + 16, info.n);
  put_u16(out.data() + 18, info.t);
  return out;
}

std::optional<ResumeInfo> decode_resume(std::span<const std::uint8_t> p) {
  if (p.size() != 20) return std::nullopt;
  ResumeInfo info;
  for (int i = 0; i < 8; ++i) {
    info.token |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    info.completed |= static_cast<std::uint64_t>(p[8 + i]) << (8 * i);
  }
  info.n = get_u16(p.data() + 16);
  info.t = get_u16(p.data() + 18);
  return info;
}

Bytes encode_u64_payload(std::uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return out;
}

std::optional<std::uint64_t> decode_u64_payload(
    std::span<const std::uint8_t> p) {
  if (p.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::array<std::uint8_t, kHeaderSize> encode_header(
    const FrameHeader& h, std::uint32_t payload_len) {
  std::array<std::uint8_t, kHeaderSize> out;
  put_u32(out.data() + 0, kFrameMagic);
  out[4] = kWireVersion;
  out[5] = static_cast<std::uint8_t>(h.type);
  put_u16(out.data() + 6, h.flags);
  put_u32(out.data() + 8, h.session);
  put_u32(out.data() + 12, h.round);
  put_u16(out.data() + 16, h.from);
  put_u16(out.data() + 18, h.to);
  put_u32(out.data() + 20, payload_len);
  return out;
}

Bytes encode_frame(const FrameHeader& h,
                   std::span<const std::uint8_t> payload) {
  require(payload.size() <= kMaxFramePayload, "encode_frame: payload too big");
  const auto hdr = encode_header(h, static_cast<std::uint32_t>(payload.size()));
  Bytes out(kHeaderSize + payload.size());
  std::memcpy(out.data(), hdr.data(), kHeaderSize);
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  }
  return out;
}

std::span<std::uint8_t> FrameDecoder::writable(std::size_t min) {
  require(min > 0 && min <= kHeaderSize + std::size_t{kMaxFramePayload},
          "FrameDecoder::writable: bad size hint");
  if (slab_ && slab_->size() - filled_ >= min) {
    return {slab_->data() + filled_, slab_->size() - filled_};
  }
  // The current slab is short (or absent): move to a fresh pool slab,
  // carrying over the partial frame at the buffer's tail, if any. Slabs are
  // append-only while payload views exist, so this relocation -- never an
  // in-place rewind -- is the only way buffered bytes ever move; it is the
  // wire path's sole memcpy and is metered as such.
  const std::size_t remainder = filled_ - off_;
  std::size_t needed = remainder + min;
  if (remainder >= kHeaderSize) {
    // The pending frame's header is visible: size the new slab for the
    // whole frame up front, so however fragmented its arrival, the frame
    // relocates at most once (and only its currently-buffered prefix).
    // A length above the limit is a stream about to fail; ignore the hint.
    const std::uint64_t payload_len = get_u32(slab_->data() + off_ + 20);
    if (payload_len <= kMaxFramePayload) {
      needed = std::max(needed,
                        kHeaderSize + static_cast<std::size_t>(payload_len));
    }
  }
  std::shared_ptr<Bytes> fresh =
      net::BufferPool::instance().acquire(std::max(needed, kSlabChunk));
  if (remainder > 0) {
    std::memcpy(fresh->data(), slab_->data() + off_, remainder);
    net::PayloadMetrics::add_wire_copy(remainder);
  }
  slab_ = std::move(fresh);
  off_ = 0;
  filled_ = remainder;
  return {slab_->data() + filled_, slab_->size() - filled_};
}

void FrameDecoder::commit(std::size_t n) {
  require(slab_ && filled_ + n <= slab_->size(),
          "FrameDecoder::commit: beyond the writable span");
  filled_ += n;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (failed() || len == 0) return;
  while (len > 0) {
    const std::span<std::uint8_t> w = writable(std::min(len, kSlabChunk));
    const std::size_t n = std::min(len, w.size());
    std::memcpy(w.data(), data, n);
    commit(n);
    data += n;
    len -= n;
  }
}

void FrameDecoder::reset() {
  error_.clear();
  slab_.reset();  // pool reclaims it once outstanding views drop
  off_ = 0;
  filled_ = 0;
}

void FrameDecoder::fail(std::string reason) {
  error_ = std::move(reason);
  slab_.reset();  // drop buffered bytes; the stream is already lost
  off_ = 0;
  filled_ = 0;
}

std::optional<Frame> FrameDecoder::next() {
  if (failed()) return std::nullopt;
  if (filled_ - off_ < kHeaderSize) return std::nullopt;
  const std::uint8_t* p = slab_->data() + off_;
  if (get_u32(p) != kFrameMagic) {
    fail("bad frame magic (desynced or non-coca stream)");
    return std::nullopt;
  }
  if (p[4] != kWireVersion) {
    fail("unsupported wire version " + std::to_string(p[4]));
    return std::nullopt;
  }
  if (!valid_frame_type(p[5])) {
    fail("unknown frame type " + std::to_string(p[5]));
    return std::nullopt;
  }
  const std::uint32_t payload_len = get_u32(p + 20);
  if (payload_len > kMaxFramePayload) {
    fail("frame payload length " + std::to_string(payload_len) +
         " exceeds limit");
    return std::nullopt;
  }
  if (filled_ - off_ < kHeaderSize + payload_len) return std::nullopt;

  Frame f;
  f.header.type = static_cast<FrameType>(p[5]);
  f.header.flags = get_u16(p + 6);
  f.header.session = get_u32(p + 8);
  f.header.round = get_u32(p + 12);
  f.header.from = get_u16(p + 16);
  f.header.to = get_u16(p + 18);
  if (payload_len > 0) {
    f.payload = net::Payload(slab_, off_ + kHeaderSize, payload_len);
  }
  off_ += kHeaderSize + payload_len;
  if (off_ == filled_ && f.payload.empty() && slab_->size() == filled_) {
    // Fully consumed slab with no view handed out of this frame: release
    // it now instead of waiting for the next writable() switch.
    slab_.reset();
    off_ = 0;
    filled_ = 0;
  }
  return f;
}

}  // namespace coca::svc
