#include "svc/frame.h"

#include <cstring>

namespace coca::svc {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool valid_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kOpen) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

std::array<std::uint8_t, kHeaderSize> encode_header(
    const FrameHeader& h, std::uint32_t payload_len) {
  std::array<std::uint8_t, kHeaderSize> out;
  put_u32(out.data() + 0, kFrameMagic);
  out[4] = kWireVersion;
  out[5] = static_cast<std::uint8_t>(h.type);
  put_u16(out.data() + 6, h.flags);
  put_u32(out.data() + 8, h.session);
  put_u32(out.data() + 12, h.round);
  put_u16(out.data() + 16, h.from);
  put_u16(out.data() + 18, h.to);
  put_u32(out.data() + 20, payload_len);
  return out;
}

Bytes encode_frame(const FrameHeader& h,
                   std::span<const std::uint8_t> payload) {
  require(payload.size() <= kMaxFramePayload, "encode_frame: payload too big");
  const auto hdr = encode_header(h, static_cast<std::uint32_t>(payload.size()));
  Bytes out(kHeaderSize + payload.size());
  std::memcpy(out.data(), hdr.data(), kHeaderSize);
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  }
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (failed() || len == 0) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // a steady stream of small frames does one memmove per buffer's worth of
  // input, not one per frame.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (failed()) return std::nullopt;
  if (buf_.size() - off_ < kHeaderSize) return std::nullopt;
  const std::uint8_t* p = buf_.data() + off_;
  if (get_u32(p) != kFrameMagic) {
    error_ = "bad frame magic (desynced or non-coca stream)";
    buf_.clear();
    off_ = 0;
    return std::nullopt;
  }
  if (p[4] != kWireVersion) {
    error_ = "unsupported wire version " + std::to_string(p[4]);
    buf_.clear();
    off_ = 0;
    return std::nullopt;
  }
  if (!valid_frame_type(p[5])) {
    error_ = "unknown frame type " + std::to_string(p[5]);
    buf_.clear();
    off_ = 0;
    return std::nullopt;
  }
  const std::uint32_t payload_len = get_u32(p + 20);
  if (payload_len > kMaxFramePayload) {
    error_ = "frame payload length " + std::to_string(payload_len) +
             " exceeds limit";
    buf_.clear();
    off_ = 0;
    return std::nullopt;
  }
  if (buf_.size() - off_ < kHeaderSize + payload_len) return std::nullopt;

  Frame f;
  f.header.type = static_cast<FrameType>(p[5]);
  f.header.flags = get_u16(p + 6);
  f.header.session = get_u32(p + 8);
  f.header.round = get_u32(p + 12);
  f.header.from = get_u16(p + 16);
  f.header.to = get_u16(p + 18);
  f.payload.assign(p + kHeaderSize, p + kHeaderSize + payload_len);
  off_ += kHeaderSize + payload_len;
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  }
  return f;
}

}  // namespace coca::svc
