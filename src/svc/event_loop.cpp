#include "svc/event_loop.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace coca::svc {

EventLoop::EventLoop() {
  epoll_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  require(epoll_.valid(), "EventLoop: epoll_create1 failed");
  wake_fd_ = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  require(wake_fd_.valid(), "EventLoop: eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  require(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) == 0,
          "EventLoop: epoll_ctl(wake) failed");
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  require(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0,
          "EventLoop::add: epoll_ctl failed");
  callbacks_[fd] = std::move(cb);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  require(::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0,
          "EventLoop::modify: epoll_ctl failed");
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EventLoop::poll(int timeout_ms) {
  epoll_event events[64];
  const int nready = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
  if (nready < 0) {
    if (errno == EINTR) return 0;
    throw Error(std::string("EventLoop::poll: epoll_wait: ") +
                std::strerror(errno));
  }
  int dispatched = 0;
  for (int i = 0; i < nready; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_.get()) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_.get(), &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    // A callback may have removed this fd while handling an earlier event
    // of the same batch; look it up fresh each time.
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    // Copy: the callback may remove(fd) and invalidate the map slot.
    Callback cb = it->second;
    cb(events[i].events);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace coca::svc
