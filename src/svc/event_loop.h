// Non-blocking epoll event loop of the daemon.
//
// One loop owns one epoll instance; every registered fd carries a callback
// invoked with the ready-event mask. Single-threaded by design -- the
// daemon's whole data path runs on the loop thread, so connection and
// session state need no locks. `wake()` is the only cross-thread entry
// point (an eventfd registered at construction) and is how stop() and
// other threads interrupt a blocking poll().
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "svc/socket.h"

namespace coca::svc {

class EventLoop {
 public:
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback may
  /// add/modify/remove fds, including removing its own.
  void add(int fd, std::uint32_t events, Callback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// One epoll_wait + dispatch. `timeout_ms` < 0 blocks indefinitely.
  /// Returns the number of events dispatched (0 on timeout or wake()).
  int poll(int timeout_ms);

  /// Interrupts a blocking poll() from any thread.
  void wake();

 private:
  Fd epoll_;
  Fd wake_fd_;  // eventfd, level-drained inside poll()
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace coca::svc
