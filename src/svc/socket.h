// Thin POSIX socket helpers shared by the daemon and the client driver.
// All helpers throw coca::Error with errno context on failure; the Fd
// wrapper makes descriptor ownership explicit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/common.h"

namespace coca::svc {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds + listens a Unix-domain stream socket at `path` (any stale socket
/// file is unlinked first).
Fd listen_uds(const std::string& path);

/// Binds + listens a TCP socket on 127.0.0.1:`port` (0 = ephemeral).
Fd listen_tcp_loopback(std::uint16_t port);

/// The locally bound TCP port of `fd` (resolves an ephemeral bind).
std::uint16_t local_port(int fd);

/// Blocking connect helpers for the client side.
Fd connect_uds(const std::string& path);
Fd connect_tcp_loopback(std::uint16_t port);

/// O_NONBLOCK on (daemon side: every fd in the epoll set is non-blocking).
void set_nonblocking(int fd);

/// Disables Nagle on TCP sockets (no-op on UDS): the round barrier is a
/// request/response ping-pong, exactly the pattern delayed ACKs + Nagle
/// serialize into 40 ms stalls.
void set_nodelay(int fd);

/// Requests SO_RCVBUF and SO_SNDBUF of `bytes` each (best effort; 0 is a
/// no-op). The corked round flush emits a whole round of frames in one
/// gather batch, so buffers must hold a full round for the flush to stay a
/// single syscall without EAGAIN round-trips through epoll.
void set_socket_buffers(int fd, int bytes);

}  // namespace coca::svc
