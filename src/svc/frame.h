// Wire framing of the service runtime.
//
// Every byte on a daemon connection is a sequence of length-prefixed
// frames: a fixed 24-byte little-endian header followed by `payload_len`
// payload bytes. The payload of a kMsg/kDeliver frame is the protocol
// message itself -- the existing zero-copy `net::Payload` bytes, written
// straight from the sender's buffer via writev (the header is the only
// per-frame material the transport adds).
//
//   offset  size  field        notes
//   ------  ----  -----------  ------------------------------------------
//        0     4  magic        0x41434F43 ("COCA" in LE byte order)
//        4     1  version      kWireVersion (1)
//        5     1  type         FrameType
//        6     2  flags        reserved, must be 0
//        8     4  session      session id (connection-scoped)
//       12     4  round        engine round the frame belongs to
//       16     2  from         sender party id (kMsg/kDeliver), else 0
//       18     2  to           recipient party id (kMsg/kDeliver), else 0
//       20     4  payload_len  <= kMaxFramePayload
//
// Frame types and their payloads:
//   kOpen      client->server  u16 n, u16 t          open a session
//   kOpenAck   server->client  u64 resume token      session is live; the
//                              token names it across connections
//   kMsg       client->server  protocol message      one staged message
//   kCommit    both ways       u32 count             round barrier: client
//                              commits `count` staged kMsg frames; the
//                              server echoes kCommit after the last
//                              kDeliver of the round
//   kDeliver   server->client  protocol message      one routed message
//   kClose     client->server  (empty)               orderly session close
//   kClosed    server->client  (empty)               close acknowledged
//   kError     server->client  UTF-8 reason          session killed
//   kResume    client->server  ResumeInfo            rebind a session on a
//                              fresh connection, declaring the last round
//                              the client fully received
//   kResumeAck server->client  u64 committed         rebind accepted; the
//                              daemon replays rounds [completed, committed)
//                              as kDeliver/kCommit right after this frame
//   kPing      client->server  (empty)               liveness probe (round
//                              carries a sequence number)
//   kPong      server->client  (empty)               probe echo
//
// `FrameDecoder` is a push parser built for adversarial streams: bytes
// arrive in arbitrary fragments (1-byte reads, frames split across reads,
// many frames per read) and malformed input -- bad magic, unknown
// version/type, oversized or truncated length -- moves the decoder into a
// sticky failed state instead of UB. tests/test_frame.cpp tortures it.
//
// Zero-copy receive: the decoder buffers the stream in pooled slabs
// (net::BufferPool) and yields frames whose payloads are `net::Payload`
// views into the slab -- no per-frame copy. Socket readers skip even the
// staging copy by reading straight into `writable()` and calling
// `commit()`; `feed()` remains as the copying convenience for tests and
// adversarial fragment torture. Slabs are append-only while views exist;
// a slab returns to the pool when the decoder moves past it and every
// payload view has dropped. The only bytes the decoder ever copies are a
// partial frame's prefix when the current slab runs out mid-frame
// (counted in PayloadMetrics::wire_copies); because the needed slab size
// is known as soon as the 24-byte header is visible, a frame pays that at
// most once regardless of how fragmented its arrival is.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/buffer_pool.h"
#include "net/payload.h"
#include "util/common.h"

namespace coca::svc {

inline constexpr std::uint32_t kFrameMagic = 0x41434F43;  // "COCA"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Upper bound on a single frame payload; a length field above this is a
/// protocol violation (or a desynced stream) and fails the decoder before
/// any allocation happens.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class FrameType : std::uint8_t {
  kOpen = 1,
  kOpenAck = 2,
  kMsg = 3,
  kCommit = 4,
  kDeliver = 5,
  kClose = 6,
  kClosed = 7,
  kError = 8,
  kResume = 9,
  kResumeAck = 10,
  kPing = 11,
  kPong = 12,
};

/// True iff `t` is a defined FrameType value (decoder validation).
bool valid_frame_type(std::uint8_t t);

/// kResume flags bit: the reconnect was triggered by missed heartbeats
/// (lets the daemon count heartbeats_missed without its own timer state).
inline constexpr std::uint16_t kResumeFlagHeartbeat = 0x1;

/// kResume payload: which session to rebind, and where the client stands.
struct ResumeInfo {
  std::uint64_t token = 0;      // from the kOpenAck of the original open
  std::uint64_t completed = 0;  // rounds the client fully received
  std::uint16_t n = 0;          // echoed for a consistency check / adoption
  std::uint16_t t = 0;

  bool operator==(const ResumeInfo&) const = default;
};

Bytes encode_resume(const ResumeInfo& info);
std::optional<ResumeInfo> decode_resume(std::span<const std::uint8_t> p);

/// u64 little-endian payload helpers (kOpenAck token, kResumeAck count).
Bytes encode_u64_payload(std::uint64_t v);
std::optional<std::uint64_t> decode_u64_payload(
    std::span<const std::uint8_t> p);

struct FrameHeader {
  FrameType type = FrameType::kOpen;
  std::uint16_t flags = 0;
  std::uint32_t session = 0;
  std::uint32_t round = 0;
  std::uint16_t from = 0;
  std::uint16_t to = 0;

  bool operator==(const FrameHeader&) const = default;
};

/// One decoded frame. The payload is a refcounted view into the decoder's
/// receive slab (equality is content equality); it pins the slab until
/// dropped, and `std::move(f.payload)` hands the view on without a copy.
struct Frame {
  FrameHeader header;
  net::Payload payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes a header (with the magic/version preamble) for `payload_len`
/// payload bytes. The send path writes this array and the payload buffer
/// as two iovecs -- the payload is never staged into a frame buffer.
std::array<std::uint8_t, kHeaderSize> encode_header(
    const FrameHeader& h, std::uint32_t payload_len);

/// Convenience single-buffer encoding (tests, small control frames).
Bytes encode_frame(const FrameHeader& h,
                   std::span<const std::uint8_t> payload);

/// Incremental frame parser over an arbitrarily fragmented byte stream.
class FrameDecoder {
 public:
  /// Slab tail readers fill directly (the zero-copy receive path):
  /// guarantees at least `min` writable bytes -- switching to a fresh pool
  /// slab when the current one is short, carrying over any partial frame --
  /// and returns the whole writable tail (usually much larger than `min`).
  /// `min` must be at most kMaxFramePayload + kHeaderSize. Do not call
  /// after failed().
  std::span<std::uint8_t> writable(std::size_t min = 1);
  /// Marks `n` bytes of the last writable() span as filled by the reader.
  void commit(std::size_t n);

  /// Appends raw bytes off the socket (one staging copy into the slab;
  /// tests and torture harnesses). Cheap after failure (bytes are dropped;
  /// the stream is already lost).
  void feed(const std::uint8_t* data, std::size_t len);
  void feed(std::span<const std::uint8_t> data) {
    feed(data.data(), data.size());
  }

  /// Pops the next complete frame, or nullopt when the buffer holds only a
  /// partial frame (or the decoder failed). Call in a loop: one feed() may
  /// complete many frames. The frame's payload is a view into the receive
  /// slab -- holding it defers the slab's return to the pool.
  std::optional<Frame> next();

  /// Sticky malformed-stream state; `error()` says what broke.
  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  /// Forgets buffered bytes and clears a sticky failure: the byte stream is
  /// starting over (a reconnect). Any live slab is released cleanly -- it
  /// returns to the pool once outstanding payload views drop -- so a torn
  /// frame abandoned mid-parse leaks nothing across reconnects
  /// (tests/test_frame.cpp asserts this via BufferPool::Stats).
  void reset();

  /// Bytes currently buffered (tests).
  std::size_t buffered() const { return filled_ - off_; }

 private:
  /// Default slab request: one socket read's worth.
  static constexpr std::size_t kSlabChunk = 64 * 1024;

  void fail(std::string reason);

  std::shared_ptr<Bytes> slab_;  // current receive slab (append-only)
  std::size_t off_ = 0;          // parse cursor within slab_
  std::size_t filled_ = 0;       // committed bytes within slab_
  std::string error_;
};

}  // namespace coca::svc
