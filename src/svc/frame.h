// Wire framing of the service runtime.
//
// Every byte on a daemon connection is a sequence of length-prefixed
// frames: a fixed 24-byte little-endian header followed by `payload_len`
// payload bytes. The payload of a kMsg/kDeliver frame is the protocol
// message itself -- the existing zero-copy `net::Payload` bytes, written
// straight from the sender's buffer via writev (the header is the only
// per-frame material the transport adds).
//
//   offset  size  field        notes
//   ------  ----  -----------  ------------------------------------------
//        0     4  magic        0x41434F43 ("COCA" in LE byte order)
//        4     1  version      kWireVersion (1)
//        5     1  type         FrameType
//        6     2  flags        reserved, must be 0
//        8     4  session      session id (connection-scoped)
//       12     4  round        engine round the frame belongs to
//       16     2  from         sender party id (kMsg/kDeliver), else 0
//       18     2  to           recipient party id (kMsg/kDeliver), else 0
//       20     4  payload_len  <= kMaxFramePayload
//
// Frame types and their payloads:
//   kOpen     client->server  u16 n, u16 t          open a session
//   kOpenAck  server->client  (empty)               session is live
//   kMsg      client->server  protocol message      one staged message
//   kCommit   both ways       u32 count             round barrier: client
//                             commits `count` staged kMsg frames; the
//                             server echoes kCommit after the last
//                             kDeliver of the round
//   kDeliver  server->client  protocol message      one routed message
//   kClose    client->server  (empty)               orderly session close
//   kClosed   server->client  (empty)               close acknowledged
//   kError    server->client  UTF-8 reason          session killed
//
// `FrameDecoder` is a push parser built for adversarial streams: bytes
// arrive in arbitrary fragments (1-byte reads, frames split across reads,
// many frames per read) and malformed input -- bad magic, unknown
// version/type, oversized or truncated length -- moves the decoder into a
// sticky failed state instead of UB. tests/test_frame.cpp tortures it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/payload.h"
#include "util/common.h"

namespace coca::svc {

inline constexpr std::uint32_t kFrameMagic = 0x41434F43;  // "COCA"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Upper bound on a single frame payload; a length field above this is a
/// protocol violation (or a desynced stream) and fails the decoder before
/// any allocation happens.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class FrameType : std::uint8_t {
  kOpen = 1,
  kOpenAck = 2,
  kMsg = 3,
  kCommit = 4,
  kDeliver = 5,
  kClose = 6,
  kClosed = 7,
  kError = 8,
};

/// True iff `t` is a defined FrameType value (decoder validation).
bool valid_frame_type(std::uint8_t t);

struct FrameHeader {
  FrameType type = FrameType::kOpen;
  std::uint16_t flags = 0;
  std::uint32_t session = 0;
  std::uint32_t round = 0;
  std::uint16_t from = 0;
  std::uint16_t to = 0;

  bool operator==(const FrameHeader&) const = default;
};

/// One decoded frame. The payload is owned (materialized off the wire).
struct Frame {
  FrameHeader header;
  Bytes payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes a header (with the magic/version preamble) for `payload_len`
/// payload bytes. The send path writes this array and the payload buffer
/// as two iovecs -- the payload is never staged into a frame buffer.
std::array<std::uint8_t, kHeaderSize> encode_header(
    const FrameHeader& h, std::uint32_t payload_len);

/// Convenience single-buffer encoding (tests, small control frames).
Bytes encode_frame(const FrameHeader& h,
                   std::span<const std::uint8_t> payload);

/// Incremental frame parser over an arbitrarily fragmented byte stream.
class FrameDecoder {
 public:
  /// Appends raw bytes off the socket. Cheap after failure (bytes are
  /// dropped; the stream is already lost).
  void feed(const std::uint8_t* data, std::size_t len);
  void feed(std::span<const std::uint8_t> data) {
    feed(data.data(), data.size());
  }

  /// Pops the next complete frame, or nullopt when the buffer holds only a
  /// partial frame (or the decoder failed). Call in a loop: one feed() may
  /// complete many frames.
  std::optional<Frame> next();

  /// Sticky malformed-stream state; `error()` says what broke.
  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  /// Bytes currently buffered (tests).
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace coca::svc
