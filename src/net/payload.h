// Refcounted immutable message payload: the zero-copy wire substrate.
//
// All simulator wire traffic is carried as `Payload` views: a shared
// ownership handle onto one immutable byte buffer plus an (offset, length)
// window. `send_all` stages ONE buffer shared by all n recipients; round
// mailboxes, the rushing adversary's traffic view, and the Transcript all
// hold views of that same buffer. Nothing on the honest path ever deep
// copies message bytes.
//
// Ownership / copy-on-write rules (the substrate's determinism contract is
// in DESIGN.md "Message substrate"):
//   * A `Payload` is immutable through its own API: no accessor hands out a
//     mutable reference to shared bytes.
//   * Writers (a `SendTap` mutator corrupting one recipient's copy) call
//     `detach()`: if the buffer is exclusively owned and the view spans it,
//     the buffer is moved out for free; otherwise a deep copy is made and
//     the other views are untouched (copy-on-write).
//   * Every deep copy the substrate performs -- `copy_of`, `to_bytes`,
//     a shared `detach` -- bumps the process-wide `PayloadMetrics` counters.
//     `SyncNetwork::run` reports the per-run delta in
//     `RunStats::payload_copies` / `payload_bytes_copied`, so "zero-copy" is
//     asserted by tests, not assumed.
//
// For protocol code the type is span-compatible: every view converts
// implicitly to `std::span<const uint8_t>` (free), so `Reader r(e.payload)`
// and the `decode_*(span)` helpers work on full buffers and on slab slices
// alike. There is deliberately NO implicit conversion to `const Bytes&`:
// payloads arriving over the wire are views into pooled receive slabs (see
// net/buffer_pool.h) with nonzero offsets, and a hidden materialization
// would silently re-copy the bytes the zero-copy receive path just avoided
// copying. Code that genuinely needs owning bytes says so: `owned()` for
// protocol-local adoption (uncounted, like any other protocol-side copy),
// `to_bytes()`/`detach()` for substrate-metered copies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>

#include "util/common.h"

namespace coca::net {

/// Deep-copy counters for the payload substrate. Monotonic; consumers
/// sample before/after and diff. The process-wide pair aggregates every
/// thread; the `thread_` pair covers only the calling thread, which is how
/// `SyncNetwork::run` attributes copies to one run even when other runs
/// execute concurrently in the same process (fuzzer sweeps, ctest -j).
struct PayloadMetrics {
  static std::uint64_t copies();
  static std::uint64_t bytes_copied();
  static std::uint64_t thread_copies();
  static std::uint64_t thread_bytes_copied();
  /// Overwrites the calling thread's counters (globals untouched). A fiber
  /// co-scheduler interleaving several runs on one OS thread virtualizes
  /// the per-thread pair: save with the getters at park, restore with this
  /// at resume, so each run's before/after diff covers only its own copies.
  static void thread_set(std::uint64_t copies, std::uint64_t bytes_copied);

  /// Wire-side copy counters: bytes the *transport* memcpy'd that are not
  /// protocol payload copies -- today only the FrameDecoder's partial-frame
  /// remainder move when it switches receive slabs. Kept separate from
  /// `copies()` because RunStats::payload_copies must stay bit-identical
  /// between the simulator and the wire path; these are process-wide only
  /// (no thread shadow) and are sampled by bench_runner's wire probe.
  static std::uint64_t wire_copies();
  static std::uint64_t wire_bytes_copied();
  static void add_wire_copy(std::uint64_t bytes);
};

class Payload {
 public:
  /// Empty payload (no buffer).
  Payload() = default;

  /// Wraps `bytes`, taking ownership: zero-copy when the caller moves.
  /// Deliberately implicit so rvalue Bytes flow into payload-typed APIs;
  /// wrapping an *lvalue* copies into the parameter first -- on metered
  /// paths prefer `Payload::copy_of`, which counts.
  Payload(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<Bytes>(std::move(bytes))),
        len_(buf_->size()) {}

  /// View of `[offset, offset+length)` within an externally shared buffer
  /// -- the decoder's slab-view constructor: the frame payload aliases the
  /// receive slab and the slab returns to its pool when the last view
  /// drops. The window must be in range and the viewed bytes must never be
  /// mutated while any view exists (the decoder's slabs are append-only).
  Payload(std::shared_ptr<Bytes> buf, std::size_t offset, std::size_t length)
      : buf_(std::move(buf)), off_(offset), len_(length) {
    require(buf_ && offset + length <= buf_->size(),
            "Payload: slab view out of range");
    if (len_ == 0) buf_.reset();
  }

  /// Deep-copies `bytes` into a fresh buffer (counted).
  static Payload copy_of(const Bytes& bytes);

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const std::uint8_t* data() const {
    return buf_ ? buf_->data() + off_ : nullptr;
  }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[off_ + i]; }

  std::span<const std::uint8_t> span() const {
    return buf_ ? std::span<const std::uint8_t>(buf_->data() + off_, len_)
                : std::span<const std::uint8_t>();
  }
  /// Implicit span view (free): lets payloads flow into `Reader` and the
  /// span-typed `decode_*` helpers whether they are full buffers or slab
  /// slices.
  operator std::span<const std::uint8_t>() const { return span(); }  // NOLINT(google-explicit-constructor)

  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }

  /// The view as a `const Bytes&`, free of charge. Requires a full-buffer
  /// view; sliced views (wire-path slab views are sliced by construction)
  /// must go through span(), owned() or to_bytes().
  const Bytes& bytes() const {
    if (!buf_) return empty_bytes();
    ensure(off_ == 0 && len_ == buf_->size(),
           "Payload::bytes: sliced view has no Bytes representation");
    return *buf_;
  }

  /// Owned deep copy of the viewed bytes, NOT counted in PayloadMetrics:
  /// for protocol-local adoption of a received value (map keys, stored
  /// state), which was an implicit uncounted copy before payloads became
  /// slab views. Substrate-metered paths use to_bytes()/detach() instead.
  Bytes owned() const {
    const auto s = span();
    return Bytes(s.begin(), s.end());
  }

  /// Owned deep copy of the viewed bytes (counted).
  Bytes to_bytes() const;

  /// Takes the bytes out for mutation: moves the buffer when this view is
  /// the sole owner of a full buffer (free), deep-copies otherwise
  /// (counted) -- the copy-on-write point for SendTap mutators.
  Bytes detach() &&;

  /// Sub-view sharing the same buffer; no copy.
  Payload slice(std::size_t offset, std::size_t length) const {
    require(offset + length <= len_, "Payload::slice: out of range");
    Payload p = *this;
    p.off_ += offset;
    p.len_ = length;
    if (p.len_ == 0) p.buf_.reset();
    return p;
  }

  /// Number of Payload views sharing this buffer (diagnostics/tests).
  long use_count() const { return buf_.use_count(); }

  /// Content equality (byte-wise over the viewed window).
  bool operator==(const Payload& other) const {
    return std::ranges::equal(span(), other.span());
  }
  bool operator==(const Bytes& other) const {
    return std::ranges::equal(span(), std::span<const std::uint8_t>(other));
  }

  /// Lexicographic content order, identical to `Bytes` ordering -- payload
  /// keyed maps (vote counting) keep the deterministic tiebreak the
  /// protocols relied on when they keyed by materialized Bytes.
  bool operator<(const Payload& other) const {
    const auto a = span();
    const auto b = other.span();
    return std::lexicographical_compare(a.begin(), a.end(),
                                        b.begin(), b.end());
  }

 private:
  static const Bytes& empty_bytes();

  std::shared_ptr<Bytes> buf_;  // immutable-by-discipline shared buffer
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace coca::net
