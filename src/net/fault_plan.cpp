#include "net/fault_plan.h"

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace coca::net {

namespace {

bool in_window(std::size_t round, std::size_t from, std::size_t until) {
  return round >= from && round < until;
}

void check_window(std::size_t from, std::size_t until, const char* what) {
  if (until <= from) {
    throw Error(std::string("FaultPlan: ") + what +
                " window is empty (until_round <= from_round)");
  }
}

void check_party(int party, int n, const char* what) {
  if (party < 0 || party >= n) {
    throw Error(std::string("FaultPlan: ") + what + " party id out of range");
  }
}

}  // namespace

void FaultPlan::validate(int n) const {
  for (const Crash& c : crashes) {
    check_party(c.party, n, "crash");
    check_window(c.from_round, c.until_round, "crash");
  }
  for (const LinkCut& c : cuts) {
    check_party(c.from, n, "cut");
    check_party(c.to, n, "cut");
    check_window(c.from_round, c.until_round, "cut");
  }
  for (const Partition& p : partitions) {
    require(!p.side.empty(), "FaultPlan: partition side is empty");
    require(p.side.size() < static_cast<std::size_t>(n),
            "FaultPlan: partition side contains every party");
    for (int id : p.side) check_party(id, n, "partition");
    check_window(p.from_round, p.until_round, "partition");
  }
  for (const Shuffle& s : shuffles) {
    require(s.party == -1 || (s.party >= 0 && s.party < n),
            "FaultPlan: shuffle party id out of range");
  }
}

bool FaultPlan::crashed(int party, std::size_t round) const {
  for (const Crash& c : crashes) {
    if (c.party == party && in_window(round, c.from_round, c.until_round)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::crash_stopped(int party, std::size_t round) const {
  for (const Crash& c : crashes) {
    if (c.party == party && c.until_round == kNoRecovery &&
        round >= c.from_round) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::link_cut(int from, int to, std::size_t round) const {
  for (const LinkCut& c : cuts) {
    if (c.from == from && c.to == to &&
        in_window(round, c.from_round, c.until_round)) {
      return true;
    }
  }
  for (const Partition& p : partitions) {
    if (!in_window(round, p.from_round, p.until_round)) continue;
    const bool from_in =
        std::find(p.side.begin(), p.side.end(), from) != p.side.end();
    const bool to_in =
        std::find(p.side.begin(), p.side.end(), to) != p.side.end();
    if (from_in != to_in) return true;
  }
  return false;
}

std::optional<std::uint64_t> FaultPlan::shuffle_seed(int party) const {
  for (const Shuffle& s : shuffles) {
    if (s.party == -1 || s.party == party) return s.seed;
  }
  return std::nullopt;
}

std::vector<int> FaultPlan::charged(int n) const {
  std::set<int> out;
  for (const Crash& c : crashes) out.insert(c.party);
  for (const LinkCut& c : cuts) out.insert(c.from);
  for (const Partition& p : partitions) {
    for (int id : p.side) out.insert(id);
  }
  (void)n;
  return std::vector<int>(out.begin(), out.end());
}

FaultPlan sample_fault_plan(const FaultSampleConfig& cfg) {
  require(cfg.n >= 2, "sample_fault_plan: need n >= 2");
  require(cfg.horizon >= 2, "sample_fault_plan: need horizon >= 2");
  Rng rng = Rng::stream(cfg.seed, 0xFA017ULL);
  FaultPlan plan;

  // Pick the charged set: distinct parties, at most max_charged of them.
  const int budget = std::min(cfg.max_charged, cfg.n - 1);
  std::vector<int> victims;
  if (budget > 0) {
    std::set<int> picked;
    const int count = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(budget)));
    while (static_cast<int>(picked.size()) < count) {
      picked.insert(static_cast<int>(rng.below(cfg.n)));
    }
    victims.assign(picked.begin(), picked.end());
  }

  const auto window = [&](std::size_t* from, std::size_t* until) {
    *from = rng.below(cfg.horizon - 1);
    *until = *from + 1 + rng.below(cfg.horizon - *from);
  };

  // A coin-weighted partition episode swallows the whole charged set;
  // otherwise each victim independently draws a crash or an outgoing cut.
  if (cfg.allow_partition && !victims.empty() && rng.below(4) == 0) {
    FaultPlan::Partition p;
    p.side = victims;
    window(&p.from_round, &p.until_round);
    plan.partitions.push_back(std::move(p));
  } else {
    for (int v : victims) {
      const bool crash = !cfg.allow_cuts || (cfg.allow_crash && rng.next_bool());
      if (crash && cfg.allow_crash) {
        FaultPlan::Crash c;
        c.party = v;
        if (rng.next_bool()) {  // crash-stop
          c.from_round = rng.below(cfg.horizon);
          c.until_round = kNoRecovery;
        } else {  // crash-recovery
          window(&c.from_round, &c.until_round);
        }
        plan.crashes.push_back(c);
      } else if (cfg.allow_cuts) {
        FaultPlan::LinkCut c;
        c.from = v;
        c.to = static_cast<int>(rng.below(cfg.n));
        window(&c.from_round, &c.until_round);
        plan.cuts.push_back(c);
      }
    }
  }

  if (cfg.allow_shuffle && rng.below(3) == 0) {
    plan.shuffles.push_back({/*party=*/-1, /*seed=*/rng.next_u64() | 1});
  }
  return plan;
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kDecided:  return "Decided";
    case Outcome::kTimedOut: return "TimedOut";
    case Outcome::kCrashed:  return "Crashed";
    case Outcome::kAborted:  return "AbortedWithEvidence";
  }
  return "?";
}

}  // namespace coca::net
