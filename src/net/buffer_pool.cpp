#include "net/buffer_pool.h"

namespace coca::net {

namespace {

/// Size-class index for a pooled request, kClasses for oversize.
std::size_t class_index(std::size_t min_bytes) {
  std::size_t size = BufferPool::kMinSlab;
  for (std::size_t i = 0; i < BufferPool::kClasses; ++i, size *= 4) {
    if (min_bytes <= size) return i;
  }
  return BufferPool::kClasses;
}

}  // namespace

BufferPool& BufferPool::instance() {
  // Leaky: views released during static destruction still have a pool.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

std::size_t BufferPool::class_size(std::size_t min_bytes) {
  const std::size_t cls = class_index(min_bytes);
  if (cls == kClasses) return min_bytes;
  std::size_t size = kMinSlab;
  for (std::size_t i = 0; i < cls; ++i) size *= 4;
  return size;
}

std::shared_ptr<Bytes> BufferPool::acquire(std::size_t min_bytes) {
  const std::size_t cls = class_index(min_bytes);
  const std::size_t size = class_size(min_bytes);
  std::unique_ptr<Bytes> slab;
  {
    std::lock_guard lk(mu_);
    if (cls < kClasses && !free_[cls].empty()) {
      slab = std::move(free_[cls].back());
      free_[cls].pop_back();
      stats_.slab_reuses += 1;
    } else {
      stats_.slab_allocs += 1;
      stats_.bytes_allocated += size;
      if (cls == kClasses) stats_.oversize_allocs += 1;
    }
  }
  if (!slab) slab = std::make_unique<Bytes>(size);
  // The deleter returns the slab to the pool (or frees oversize slabs); it
  // runs on whichever thread drops the last Payload view.
  return std::shared_ptr<Bytes>(
      slab.release(), [cls](Bytes* b) { instance().release(b, cls); });
}

void BufferPool::release(Bytes* slab, std::size_t cls) {
  std::unique_ptr<Bytes> owned(slab);
  std::lock_guard lk(mu_);
  stats_.slab_releases += 1;
  if (cls < kClasses) free_[cls].push_back(std::move(owned));
  // oversize: owned frees on scope exit
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t BufferPool::free_slabs() const {
  std::lock_guard lk(mu_);
  std::size_t total = 0;
  for (const auto& list : free_) total += list.size();
  return total;
}

void BufferPool::trim() {
  std::lock_guard lk(mu_);
  for (auto& list : free_) list.clear();
}

}  // namespace coca::net
