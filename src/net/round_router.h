// Transport seam of the round engine: where a delivered round leaves the
// process.
//
// `SyncNetwork::deliver_round` merges all staged outboxes into one
// canonically ordered message list (sender id, send sequence within a
// sender, byzantine traffic last) and then -- when a RoundRouter is
// installed -- hands that list to the router before anything downstream
// observes it. The router carries the round across a transport (the
// service runtime sends every message through the epoll daemon over
// UDS/TCP, see src/svc) and returns the delivered list; the transcript,
// the recipient inboxes, and the per-round observer all consume the
// *returned* payloads. A null router (the default) is the identity: the
// in-memory simulator path is bit-identical to pre-seam builds.
//
// Contract:
//  * route() must return the messages in the same order with the same
//    (from, to) pairs and equal payload bytes; the engine `ensure`s the
//    order/addressing and the wire-conformance tier-1 suite pins byte
//    equality end to end (transcripts are content-compared against a
//    simulator run of the same seed).
//  * route() is called from the controller's execution context at the
//    round barrier, exactly once per delivered round (the trailing
//    leftover flush -- sends staged after the last advance(), consumed by
//    nobody -- is transcript bookkeeping and is not routed).
//  * On transport failure route() returns nullopt and the engine ends the
//    run the way a round-cap hit does: run_report() marks still-running
//    parties TimedOut and sets RunReport::transport_failed (never hangs,
//    never throws); strict run() throws Error with the router's reason.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "net/payload.h"

namespace coca::net {

/// One canonically-ordered wire message of a delivered round.
struct WireMessage {
  int from = -1;
  int to = -1;
  Payload payload;
};

class RoundRouter {
 public:
  virtual ~RoundRouter() = default;

  /// Carries round `round`'s merged messages across the transport and
  /// returns the delivered list (same order/addressing, payloads
  /// re-materialized from the wire), or nullopt on transport failure.
  virtual std::optional<std::vector<WireMessage>> route(
      std::size_t round, std::vector<WireMessage> staged) = 0;

  /// Human-readable reason for the most recent nullopt.
  virtual std::string failure_reason() const { return "transport failure"; }
};

}  // namespace coca::net
