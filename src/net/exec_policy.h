// Scheduling policy for the SyncNetwork round engine.
//
// Within a round, honest (and protocol-running corrupted) parties are
// released from the round barrier in canonical runner-table order and
// execute their round slice on at most `threads` OS threads at a time:
//   threads == 1  -- serial reference schedule: exactly one party computes
//                    at any moment, in runner-table order.
//   threads == k  -- fixed-size window: up to k parties compute
//                    concurrently; a new party is released as soon as a
//                    slot frees up.
//   threads == 0  -- auto: resolve from the COCA_THREADS environment
//                    variable (absent/invalid -> serial).
//
// The policy is a pure wall-clock knob: party outboxes are thread-local and
// merged at the round barrier in canonical (sender id, send sequence)
// order, so delivery order, metered bits, and the rushing adversary's view
// are bit-for-bit identical for every policy. tests/test_parallel_determinism
// holds the engine to that contract.
#pragma once

#include <cstdlib>

#include "util/common.h"

namespace coca::net {

struct ExecPolicy {
  /// Max parties computing concurrently; 0 = resolve from COCA_THREADS.
  int threads = 0;

  static ExecPolicy serial() { return {1}; }

  static ExecPolicy parallel(int threads) {
    require(threads >= 1, "ExecPolicy::parallel: need threads >= 1");
    return {threads};
  }

  /// Reads COCA_THREADS; out-of-range or unparsable values fall back to 1.
  static ExecPolicy from_env() {
    const char* env = std::getenv("COCA_THREADS");
    if (env == nullptr) return serial();
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1 || v > 4096) return serial();
    return {static_cast<int>(v)};
  }

  /// The effective window size (always >= 1).
  int window() const { return threads == 0 ? from_env().threads : threads; }
};

}  // namespace coca::net
