// Pooled receive slabs for the zero-copy wire path.
//
// The service runtime reads socket bytes straight into large shared slabs;
// `svc::FrameDecoder` then hands out `net::Payload` views into the slab
// instead of copying each frame's payload out of the stream buffer. A slab
// stays alive while any view references it and returns to the pool when the
// last reference drops, so in steady state the receive path performs zero
// heap allocations for payload bytes: the same few slabs cycle between the
// socket reader and the protocol code consuming the views.
//
// Slabs are size-classed (powers of four from 4 KiB) so a session streaming
// 64-byte votes and one shipping a 1 MiB coded payload do not share a free
// list; requests above the largest class get an exact-size slab that is
// freed, not cached, on release (they are rare by construction -- the
// decoder only asks for one when a single frame exceeds the largest class).
//
// Concurrency: acquire/release take one uncontended mutex. Release runs from
// whatever thread dropped the last view -- the client's reader thread
// routinely frees slabs into the same pool the daemon's epoll thread
// allocates from (the wire-smoke TSan job exercises exactly that handoff).
// The pool is a leaky process-wide singleton so late-destructed views (e.g.
// a static transcript) can always return their slab safely.
//
// Stats are monotonic process-wide counters; `bench_runner --wire` samples
// them per round and the CI zero-copy gate asserts the steady-state
// `slab_allocs` delta is zero.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/common.h"

namespace coca::net {

class BufferPool {
 public:
  /// Smallest / largest pooled slab sizes. Classes are kMinSlab * 4^i.
  static constexpr std::size_t kMinSlab = 4u << 10;    // 4 KiB
  static constexpr std::size_t kMaxSlab = 4u << 20;    // 4 MiB
  static constexpr std::size_t kClasses = 6;           // 4K..4M, x4 steps

  /// The process-wide pool.
  static BufferPool& instance();

  /// A slab with `size() >= min_bytes`: reused from the matching size-class
  /// free list when possible, freshly allocated otherwise. The returned
  /// buffer's size() is the full slab capacity; callers track their own fill
  /// level. When the last shared_ptr drops, the slab returns to its free
  /// list (or is freed outright if it is an oversize, unpooled slab).
  std::shared_ptr<Bytes> acquire(std::size_t min_bytes);

  /// Monotonic counters (process-wide, sampled-and-diffed by benches).
  struct Stats {
    std::uint64_t slab_allocs = 0;     // fresh slab memory allocations
    std::uint64_t slab_reuses = 0;     // acquires served from a free list
    std::uint64_t slab_releases = 0;   // slabs returned (cached or freed)
    std::uint64_t oversize_allocs = 0; // above-kMaxSlab exact-size slabs
    std::uint64_t bytes_allocated = 0; // total bytes of fresh allocations
  };
  Stats stats() const;

  /// Slabs currently cached across all free lists (tests).
  std::size_t free_slabs() const;

  /// Drops every cached slab (tests isolate reuse accounting with this).
  void trim();

  /// The slab capacity `min_bytes` routes to: the smallest class holding it,
  /// or `min_bytes` itself above kMaxSlab. Exposed for the routing tests.
  static std::size_t class_size(std::size_t min_bytes);

 private:
  BufferPool() = default;

  void release(Bytes* slab, std::size_t cls);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Bytes>> free_[kClasses];
  Stats stats_;
};

}  // namespace coca::net
