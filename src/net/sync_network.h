// Lock-step synchronous network simulator.
//
// Models the paper's communication setting: n parties, fully connected,
// authenticated channels (receivers learn the true sender id), synchronous
// rounds (every message sent in round r is delivered at the end of round r).
// Up to t parties are byzantine; the adversary is *rushing* -- byzantine
// parties observe all honest round-r messages before choosing their own
// round-r messages, the strongest scheduling the synchronous model allows.
//
// Honest parties run protocol code as straight-line functions;
// `PartyContext::advance()` is the round barrier. This lets the
// implementation mirror the paper's pseudocode one statement at a time.
// Within a round the engine releases parties from the barrier under an
// `ExecPolicy`: serially (the reference schedule) or on a fixed-size window
// of `threads` concurrently-computing parties. Each party stages sends into
// a runner-local outbox and draws from a per-party RNG stream split off the
// root seed, so both schedules are bit-for-bit transcript-identical --
// inboxes are ordered by sender id, metered bits are summed per party, and
// honest control flow depends only on agreed values.
//
// Execution backends: the serial schedule (window == 1) runs every party as
// a cooperative fiber on the controller's own OS thread -- context switches
// are a user-space stack swap (~100 ns) instead of a kernel thread
// round-trip, and no locks are taken anywhere. Parallel windows run parties
// on dedicated OS threads behind the barrier mutex exactly as before. Both
// backends execute parties in the same canonical order and produce
// identical transcripts; under ThreadSanitizer the fiber backend is
// disabled (serial falls back to OS threads) so the race checker sees real
// threads. One caveat: the fiber backend cannot interrupt a party that
// loops forever without calling advance() (the OS-thread watchdog can).
//
// Wire traffic is carried as refcounted immutable `Payload` views (see
// net/payload.h): `send_all` stages one buffer shared by all n recipients,
// mailboxes and the Transcript hold views, and `RunStats` reports the
// number of deep copies the substrate performed -- zero on the honest path.
//
// Byzantine parties come in three flavours:
//  * scripted strategies (`ByzantineStrategy`) that fabricate arbitrary bytes,
//  * protocol-running corruptions (honest code with an adversarial input),
//  * split-brain equivocators: two honest protocol instances behind one wire
//    id, each talking to a disjoint subset of recipients.
//
// The simulator meters bytes and messages per party and per named protocol
// phase; "honest bits" is the paper's BITS_l cost measure.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/exec_policy.h"
#include "net/fault_plan.h"
#include "net/payload.h"
#include "net/round_router.h"
#include "util/common.h"
#include "util/rng.h"

namespace coca::obs {
class Tracer;
}

namespace coca::net {

/// Root seed domains for the per-party deterministic RNG streams
/// (`Rng::stream(domain, key)`). Stable constants: the exact stream values
/// are pinned by tests/test_rng.cpp so accidental changes to stream
/// splitting surface as test failures, not silent transcript drift.
inline constexpr std::uint64_t kRunnerSeedDomain = 0x5EEDC0CA'0000001DULL;
inline constexpr std::uint64_t kScriptedSeedDomain = 0x5EEDC0CA'00000B52ULL;

/// Phase key for honest bytes staged outside any PhaseScope. Appears in
/// `RunStats::phase_breakdown` so the map always sums exactly to
/// `honest_bytes`; a nonzero value under this key on an honest run means a
/// protocol forgot to wrap a send in a phase (the invariant oracle checks).
inline constexpr const char* kUnattributedPhase = "(unattributed)";

/// Stream key of a protocol-running instance: split-brain corruptions own
/// two runners behind one party id, so the runner index disambiguates.
constexpr std::uint64_t runner_stream_key(int party,
                                          std::size_t runner_index) {
  return (static_cast<std::uint64_t>(party) << 20) |
         static_cast<std::uint64_t>(runner_index);
}

/// True when the ucontext fiber backend is usable in this build/run
/// (false under ThreadSanitizer or COCA_NO_FIBERS). Exposed for other
/// cooperative schedulers built on the same primitive -- the engine's
/// kernel-batch co-scheduler gates on it.
bool fibers_available();

/// A delivered message with its authenticated sender. The payload is a
/// shared view: all recipients of one `send_all` alias one buffer.
struct Envelope {
  int from = -1;
  Payload payload;
};

/// Everything observable about one execution, in canonical order: per round,
/// the delivered messages (after the sender-id/sequence merge, byzantine
/// traffic last) and the bytes the honest parties staged. Serial and
/// parallel schedules of the same run must compare equal. Messages hold
/// payload *views*; equality is content equality.
struct Transcript {
  struct Msg {
    int from = -1;
    int to = -1;
    Payload payload;
    bool operator==(const Msg&) const = default;
  };
  struct Round {
    std::vector<Msg> messages;       // canonical delivery order
    std::uint64_t honest_bytes = 0;  // staged by honest parties this round
    bool operator==(const Round&) const = default;
  };
  std::vector<Round> rounds;
  bool operator==(const Transcript&) const = default;
};

/// Keeps the first *delivered* message of each sender, in sender-id order.
/// Protocol steps of the paper implicitly assume one message per sender per
/// round; duplicates are a byzantine artefact and are ignored
/// deterministically. The result is canonical regardless of inbox order --
/// the inbox is stably sorted by sender id first -- so protocols built on
/// this helper are delivery-order insensitive by construction (which a
/// FaultPlan inbox shuffle relies on). Copies are payload views (refcount
/// bumps), never byte copies; the rvalue overload filters in place.
std::vector<Envelope> first_per_sender(const std::vector<Envelope>& inbox);
std::vector<Envelope> first_per_sender(std::vector<Envelope>&& inbox);

class SyncNetwork;

/// Handle through which protocol code talks to the network. One per running
/// protocol instance (a split-brain corruption owns two).
class PartyContext {
 public:
  PartyContext(const PartyContext&) = delete;
  PartyContext& operator=(const PartyContext&) = delete;

  int id() const { return party_; }
  int n() const;
  int t() const;

  /// Stage a message to party `to` (0-based) for delivery at this round's end.
  void send(int to, Bytes payload);
  void send(int to, Payload payload);
  /// Stage the same message to all n parties (including self). One shared
  /// buffer backs all n deliveries. The rvalue/Payload overloads are
  /// zero-copy; the lvalue overload deep-copies once (counted in
  /// `RunStats::payload_copies`) -- move at the call site to avoid it.
  void send_all(Bytes&& payload) { send_all(Payload(std::move(payload))); }
  void send_all(const Bytes& payload) { send_all(Payload::copy_of(payload)); }
  void send_all(Payload payload);

  /// Ends the current round: blocks until all parties advance, then returns
  /// every message addressed to this party in the round just ended, ordered
  /// by sender id.
  std::vector<Envelope> advance();

  /// RAII scope attributing all bytes sent while open to `name`
  /// (in addition to any enclosing phases).
  class PhaseScope {
   public:
    explicit PhaseScope(PartyContext& ctx, std::string name);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    PartyContext& ctx_;
  };
  PhaseScope phase(std::string name) { return PhaseScope(*this, std::move(name)); }

  /// Per-instance deterministic RNG (used by adversarial/protocol-running
  /// corruptions and examples; honest protocol logic never draws from it).
  Rng& rng() { return rng_; }

 private:
  friend class SyncNetwork;
  PartyContext(SyncNetwork& net, std::size_t runner_index, int party,
               std::uint64_t seed)
      : net_(net), runner_(runner_index), party_(party), rng_(seed) {}

  SyncNetwork& net_;
  std::size_t runner_;  // index into the network's runner table
  int party_;
  Rng rng_;
};

/// What a scripted byzantine strategy sees each round.
struct RoundView {
  std::size_t round = 0;
  int self = -1;
  int n = 0;
  int t = 0;
  /// Messages delivered to this byzantine party this round.
  const std::vector<Envelope>* inbox = nullptr;
  struct Sent {
    int from;
    int to;
    const Payload* payload;
  };
  /// Rushing adversary: all honest traffic of the *current* round.
  const std::vector<Sent>* honest_traffic = nullptr;
  Rng* rng = nullptr;
};

/// A scripted byzantine corruption: invoked once per round, after all honest
/// parties committed their round messages, and may send arbitrary bytes.
class ByzantineStrategy {
 public:
  virtual ~ByzantineStrategy() = default;
  virtual void on_round(const RoundView& view,
                        const std::function<void(int, Bytes)>& send) = 0;
};

/// Wraps the outgoing traffic of a protocol-running byzantine party: honest
/// protocol code executes unchanged, but every message it stages passes
/// through the tap, which emits zero or more replacement messages (to any
/// recipients). This is the hook structured adversaries -- message mutators,
/// selective-omission and equivocation attacks -- are built from: they get
/// plausible protocol traffic for free and only decide how to corrupt it.
///
/// Payloads arrive as shared views (a tapped `send_all` delivers the same
/// buffer n times). A tap that corrupts bytes takes ownership via
/// `std::move(payload).detach()` -- copy-on-write: recipients of the
/// untouched views never observe the mutation.
///
/// Determinism contract: the tap is driven solely by the runner's own
/// execution context, in the wrapped protocol's program order, so tapped
/// executions are transcript-identical across ExecPolicy schedules.
class SendTap {
 public:
  using Emit = std::function<void(int to, Payload payload)>;

  virtual ~SendTap() = default;

  /// One staged message of the wrapped protocol in round `round` (0-based);
  /// call `emit` any number of times to put messages on the wire instead.
  virtual void on_send(std::size_t round, int to, Payload payload,
                       const Emit& emit) = 0;

  /// The wrapped protocol entered round `round` (it fires on every
  /// advance(), before any round-`round` sends). Lets the tap release
  /// messages it held back in earlier rounds (delayed replay).
  virtual void on_round_start(std::size_t round, const Emit& emit) {
    (void)round;
    (void)emit;
  }
};

/// Per-round delivery hook: called by the engine once per delivered round,
/// from the controller's execution context, immediately after the round's
/// runner-local outboxes were merged in canonical order (and before the
/// next round slice is released). `honest_bytes`/`honest_messages` are the
/// staged honest traffic of that round -- the same values the Transcript
/// records -- so an observer can stream live per-round cost without owning
/// the full transcript. The trailing leftover flush (sends staged after the
/// last advance()) is transcript-only bookkeeping and is not reported here;
/// authoritative totals come from RunStats.
///
/// Implementations must not touch the network and must not block on
/// anything fed by this same controller thread (in the OS-thread backend
/// the hook runs with the barrier mutex held). Lock-free handoff -- e.g. an
/// SPSC ring drained by another thread -- is the intended shape.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;
  virtual void on_round(std::size_t round, std::uint64_t honest_bytes,
                        std::uint64_t honest_messages) = 0;
};

/// Aggregated cost of one protocol execution.
struct RunStats {
  std::size_t rounds = 0;
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_messages = 0;
  std::vector<std::uint64_t> bytes_by_party;
  std::map<std::string, std::uint64_t> honest_bytes_by_phase;

  /// Leaf-charged phase attribution: every staged honest byte lands on
  /// exactly one key -- the innermost open PhaseScope at send time, or
  /// `kUnattributedPhase` when none is open -- so the values sum to
  /// `honest_bytes` exactly (tier-1 asserted). Contrast with
  /// `honest_bytes_by_phase`, the legacy *inclusive* accounting where a
  /// byte counts in every enclosing phase.
  std::map<std::string, std::uint64_t> phase_breakdown;

  /// Deep payload copies the wire substrate performed during this run
  /// (process-wide `PayloadMetrics` delta): 0 on the honest path --
  /// `send_all` shares one buffer among all recipients, mailboxes and
  /// transcript hold views. Nonzero only for copy-on-write detaches by
  /// mutating SendTaps and for lvalue `send_all` calls.
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_bytes_copied = 0;

  /// The paper's BITS_l measure: total bits sent by honest parties.
  std::uint64_t honest_bits() const { return honest_bytes * 8; }

  /// Environment fault bookkeeping (all zero when no FaultPlan is set).
  FaultStats faults;
};

/// Structured result of a guarded run (`run_report`): per-party outcomes
/// instead of hang-or-throw. `stats.rounds` is always the last *completed*
/// round, including when the round cap or watchdog ended the run.
struct RunReport {
  RunStats stats;
  std::vector<PartyOutcome> outcomes;  // indexed by party id
  bool timed_out = false;        // round cap (or watchdog) ended the run
  bool watchdog_fired = false;   // a round slice stalled past the watchdog

  /// A RoundRouter failed to carry a round (socket error, daemon timeout,
  /// wire-integrity mismatch). The run ended like a round-cap hit --
  /// still-running parties are TimedOut, `timed_out` is set -- with the
  /// router's reason here.
  bool transport_failed = false;
  std::string transport_error;

  bool all_decided() const {
    for (const PartyOutcome& o : outcomes) {
      if (o.outcome != Outcome::kDecided) return false;
    }
    return true;
  }
};

class SyncNetwork {
 public:
  using ProtocolFn = std::function<void(PartyContext&)>;

  /// `n` parties with resilience threshold `t` (protocols assume t < n/3;
  /// the simulator itself only requires 0 <= t < n).
  SyncNetwork(int n, int t);
  ~SyncNetwork();
  SyncNetwork(const SyncNetwork&) = delete;
  SyncNetwork& operator=(const SyncNetwork&) = delete;

  /// Installs honest protocol code for party `id`.
  void set_honest(int id, ProtocolFn fn);
  /// Installs a scripted byzantine corruption.
  void set_byzantine(int id, std::shared_ptr<ByzantineStrategy> strategy);
  /// Byzantine party that runs protocol code (e.g. with an extreme input);
  /// its traffic is excluded from honest cost metrics.
  void set_byzantine_protocol(int id, ProtocolFn fn);
  /// Same, with every staged message routed through `tap` (may be null).
  void set_byzantine_protocol(int id, ProtocolFn fn,
                              std::shared_ptr<SendTap> tap);
  /// Split-brain equivocator: instance A talks to `recipients_of_a`,
  /// instance B to everyone else. Both see all messages addressed to `id`.
  void set_split_brain(int id, ProtocolFn a, ProtocolFn b,
                       std::set<int> recipients_of_a);

  /// Chooses the round-slice schedule (default: ExecPolicy auto, i.e.
  /// COCA_THREADS or serial). Must be called before run().
  void set_exec_policy(ExecPolicy policy);

  /// Installs a schedule of environment faults (see net/fault_plan.h);
  /// validated against n. The plan is interpreted identically under every
  /// ExecPolicy, so faulty runs replay bit-for-bit. An empty plan (the
  /// default) leaves every code path and metric untouched.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const;

  /// Records every delivered round into `sink` during run(); pass nullptr
  /// to disable. The sink must outlive run().
  void set_transcript(Transcript* sink);

  /// Installs a per-round delivery hook (see RoundObserver); pass nullptr
  /// to disable (the default -- the delivery path is bit-identical either
  /// way). The observer must outlive run().
  void set_round_observer(RoundObserver* observer);

  /// Installs a transport for delivered rounds (see net/round_router.h):
  /// every round's canonically merged messages pass through
  /// `router->route()` before the transcript records them and inboxes
  /// consume them. Null (the default) keeps the in-memory path, which is
  /// bit-identical by construction. The router must outlive run(). Router
  /// failure ends the run with `RunReport::transport_failed` (guarded) or
  /// an Error carrying the router's reason (strict).
  void set_round_router(RoundRouter* router);

  /// Attaches an observability tracer (see obs/obs.h): the engine opens a
  /// span around every round (on an "engine" track) and every party slice
  /// (on per-party "slices" tracks), mirrors PhaseScopes as spans on
  /// per-party tracks with sends charged to the innermost one, and points
  /// the thread-local COCA_OBS_SPAN scope at the running party so compute
  /// kernels appear nested under its phases. Use a fresh tracer per run
  /// (tracks are registered at run start); it must outlive run(). Null
  /// (the default) disables all tracing work -- the run is bit-identical
  /// either way.
  void set_tracer(obs::Tracer* tracer);

  /// Runs to completion (all protocol-running parties returned).
  /// Throws if any honest party threw, or if `max_rounds` is exceeded.
  /// (Legacy strict mode: the first party error aborts the whole run.
  /// Prefer `run_report` for fault-tolerant execution.)
  RunStats run(std::size_t max_rounds = kDefaultMaxRounds);

  /// Guarded run: every party step executes behind an exception barrier. A
  /// throwing party is marked `AbortedWithEvidence` (the run continues
  /// without it), a FaultPlan crash-stop marks it `Crashed`, hitting
  /// `max_rounds` or the watchdog marks the stragglers `TimedOut` -- the
  /// report always comes back with the last completed round in
  /// `stats.rounds`; nothing short of a simulator bug throws.
  RunReport run_report(std::size_t max_rounds = kDefaultMaxRounds);

  static constexpr std::size_t kDefaultMaxRounds = 2'000'000;

  int n() const { return n_; }
  int t() const { return t_; }

 private:
  friend class PartyContext;
  struct Runner;
  struct Scripted;
  struct Impl;

  RunReport run_impl(std::size_t max_rounds, bool guarded,
                     std::exception_ptr* first_error,
                     std::string* failure_reason);

  void runner_send(std::size_t runner_index, int to, Payload payload,
                   const char* kind);
  void runner_stage(std::size_t runner_index, int to, Payload payload,
                    const char* kind);
  std::vector<Envelope> runner_advance(std::size_t runner_index);
  void runner_push_phase(std::size_t runner_index, std::string name);
  void runner_pop_phase(std::size_t runner_index);

  int n_;
  int t_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace coca::net
