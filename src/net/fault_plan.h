// Environment fault injection for the network simulators.
//
// The paper's adversary corrupts up to t parties and controls *message
// content*; the environment faults modelled here are strictly weaker --
// every fault a FaultPlan can inject is a behaviour a byzantine party
// could exhibit voluntarily (crash = stay silent forever, link omission =
// selectively withhold one recipient's messages, partition = two-sided
// omission, inbox permutation = no fault at all in the synchronous model,
// where within-round delivery order is unspecified). A protocol proven
// correct against t byzantine parties therefore tolerates any FaultPlan
// whose *charged* parties number at most t; the degradation campaign
// (bench/degradation_sweep) probes exactly that boundary.
//
// A plan is pure data: a replayable, schedule-independent description of
// which faults fire in which rounds. The engines (SyncNetwork,
// AsyncNetwork) interpret it deterministically, so the same (protocol,
// inputs, plan, seed) tuple reproduces bit-identical transcripts under any
// ExecPolicy -- fault schedules are corpus material for the fuzzer, not
// one-off chaos.
//
// Round semantics (synchronous engine):
//  * Crash [a, b): the party executes no protocol code during round slices
//    a..b-1 and receives none of the traffic consumed in those slices. With
//    b == kNoRecovery the crash is permanent (crash-stop): the party's
//    runner unwinds and the run does not wait for it. Otherwise the runner
//    is frozen in place -- its stack *is* the persisted state -- and at
//    slice b it resumes exactly where it stopped, seeing the round-(b-1)
//    delivery; rounds a..b-1 are simply missing from its view.
//  * LinkCut [a, b): messages staged from `from` to `to` during rounds
//    a..b-1 are dropped after metering (the sender pays for bytes the
//    network loses) and never reach the transcript or any inbox.
//  * Partition [a, b): no traffic crosses between `side` and its
//    complement during rounds a..b-1 (a symmetric set of LinkCuts).
//  * Shuffle: the recipient's inbox for every round is permuted by a
//    deterministic per-(seed, party, round) stream before delivery. This
//    charges *nobody*: honest protocols must be delivery-order
//    insensitive (net::first_per_sender canonicalizes by sender id).
//
// The asynchronous engine interprets crash-stop, link cuts and partitions
// with windows measured in scheduler delivery steps; crash-recovery and
// inbox permutation are already inside the async scheduler's adversarial
// power (arbitrary delay, arbitrary order) and are not mirrored there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace coca::net {

/// `until_round` value meaning "never recovers" (crash-stop).
inline constexpr std::size_t kNoRecovery = static_cast<std::size_t>(-1);

/// Seed domain for inbox-permutation streams (same splittable-stream
/// contract as the runner/scripted domains in sync_network.h).
inline constexpr std::uint64_t kShuffleSeedDomain = 0x5EEDC0CA'000F417EULL;

struct FaultPlan {
  struct Crash {
    int party = -1;
    std::size_t from_round = 0;
    std::size_t until_round = kNoRecovery;  // kNoRecovery = crash-stop
    bool operator==(const Crash&) const = default;
  };
  struct LinkCut {
    int from = -1;
    int to = -1;
    std::size_t from_round = 0;
    std::size_t until_round = kNoRecovery;
    bool operator==(const LinkCut&) const = default;
  };
  struct Partition {
    std::vector<int> side;  // the minority/charged side of the split
    std::size_t from_round = 0;
    std::size_t until_round = kNoRecovery;
    bool operator==(const Partition&) const = default;
  };
  struct Shuffle {
    int party = -1;  // -1 = every party
    std::uint64_t seed = 1;
    bool operator==(const Shuffle&) const = default;
  };

  std::vector<Crash> crashes;
  std::vector<LinkCut> cuts;
  std::vector<Partition> partitions;
  std::vector<Shuffle> shuffles;

  bool operator==(const FaultPlan&) const = default;

  bool empty() const {
    return crashes.empty() && cuts.empty() && partitions.empty() &&
           shuffles.empty();
  }

  /// Throws Error if any entry is malformed for an n-party network
  /// (ids out of range, empty or total partition side, empty windows).
  void validate(int n) const;

  /// True iff `party` is inside some crash window at `round`.
  bool crashed(int party, std::size_t round) const;
  /// True iff `party` has a crash-stop window starting at or before `round`.
  bool crash_stopped(int party, std::size_t round) const;
  /// True iff the directed link from->to is cut at `round` (explicit cuts
  /// plus partition episodes; partitions cut both directions).
  bool link_cut(int from, int to, std::size_t round) const;
  /// Shuffle stream seed for `party`'s inbox, if any entry covers it.
  std::optional<std::uint64_t> shuffle_seed(int party) const;

  /// Parties the plan's faults are charged to, sorted and deduplicated:
  /// crash victims, cut senders (send-omission), and partition sides.
  /// Shuffles charge nobody -- within-round delivery order is unspecified
  /// in the synchronous model, so order sensitivity is a protocol bug, not
  /// a fault. A protocol correct against t byzantine parties tolerates any
  /// plan with |charged| <= t.
  std::vector<int> charged(int n) const;
};

/// Configuration for the seeded plan sampler: draws a random plan charging
/// at most `max_charged` parties, with fault windows inside [0, horizon).
/// Used by the fuzzer (fault schedules as a search dimension) and by tests;
/// the degradation campaign builds its plans explicitly per fault kind.
struct FaultSampleConfig {
  int n = 4;
  std::size_t horizon = 32;
  int max_charged = 1;
  bool allow_crash = true;
  bool allow_cuts = true;
  bool allow_partition = true;
  bool allow_shuffle = true;
  std::uint64_t seed = 1;
};

FaultPlan sample_fault_plan(const FaultSampleConfig& cfg);

/// Fault bookkeeping for one run (part of RunStats / AsyncStats).
struct FaultStats {
  std::uint64_t crashes_injected = 0;  // crash windows that started
  std::uint64_t recoveries = 0;        // crash windows that ended in time
  std::uint64_t rounds_missed = 0;     // (party, round) slices not executed
  std::uint64_t messages_dropped = 0;  // cut / partition / crash drops
  std::uint64_t inboxes_shuffled = 0;  // inbox permutations applied
};

/// Structured per-party result of a guarded run (SyncNetwork::run_report).
enum class Outcome {
  kDecided,  // protocol function returned normally
  kTimedOut, // still running when the round cap (or watchdog) hit
  kCrashed,  // unwound by a FaultPlan crash-stop
  kAborted,  // protocol code threw; evidence carries the message
};

const char* to_string(Outcome o);

struct PartyOutcome {
  Outcome outcome = Outcome::kDecided;
  std::string evidence;  // exception text / crash round / round cap
  /// Protocol phase stack ("PiZ/lBA+") the party was inside when the
  /// outcome was sealed; empty for kDecided and for failures outside any
  /// phase. Tells degradation tables *where* beyond-t runs die.
  std::string phase;
};

}  // namespace coca::net
