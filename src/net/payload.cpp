#include "net/payload.h"

#include <atomic>

namespace coca::net {

namespace {

std::atomic<std::uint64_t> g_copies{0};
std::atomic<std::uint64_t> g_bytes_copied{0};
std::atomic<std::uint64_t> g_wire_copies{0};
std::atomic<std::uint64_t> g_wire_bytes_copied{0};
// Per-thread shadows of the globals: a run attributes copies to itself by
// diffing the counters of the threads *it* executed on, so two concurrent
// runs (fuzzer sweeps, threaded ctest) never cross-contaminate.
thread_local std::uint64_t t_copies = 0;
thread_local std::uint64_t t_bytes_copied = 0;

void count_copy(std::size_t bytes) {
  if (bytes == 0) return;  // empty copies allocate nothing
  g_copies.fetch_add(1, std::memory_order_relaxed);
  g_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  t_copies += 1;
  t_bytes_copied += bytes;
}

}  // namespace

std::uint64_t PayloadMetrics::copies() {
  return g_copies.load(std::memory_order_relaxed);
}

std::uint64_t PayloadMetrics::bytes_copied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

std::uint64_t PayloadMetrics::thread_copies() { return t_copies; }

std::uint64_t PayloadMetrics::thread_bytes_copied() { return t_bytes_copied; }

void PayloadMetrics::thread_set(std::uint64_t copies,
                                std::uint64_t bytes_copied) {
  t_copies = copies;
  t_bytes_copied = bytes_copied;
}

std::uint64_t PayloadMetrics::wire_copies() {
  return g_wire_copies.load(std::memory_order_relaxed);
}

std::uint64_t PayloadMetrics::wire_bytes_copied() {
  return g_wire_bytes_copied.load(std::memory_order_relaxed);
}

void PayloadMetrics::add_wire_copy(std::uint64_t bytes) {
  if (bytes == 0) return;
  g_wire_copies.fetch_add(1, std::memory_order_relaxed);
  g_wire_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
}

Payload Payload::copy_of(const Bytes& bytes) {
  count_copy(bytes.size());
  return Payload(Bytes(bytes));
}

Bytes Payload::to_bytes() const {
  count_copy(len_);
  const auto s = span();
  return Bytes(s.begin(), s.end());
}

Bytes Payload::detach() && {
  if (!buf_) return Bytes{};
  if (buf_.use_count() == 1 && off_ == 0 && len_ == buf_->size()) {
    Bytes out = std::move(*buf_);
    buf_.reset();
    len_ = 0;
    off_ = 0;
    return out;
  }
  return to_bytes();  // shared or sliced: copy-on-write (counted)
}

const Bytes& Payload::empty_bytes() {
  static const Bytes empty;
  return empty;
}

}  // namespace coca::net
