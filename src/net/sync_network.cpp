#include "net/sync_network.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/obs.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

// The fiber backend swaps user-space stacks, which ThreadSanitizer cannot
// track without fiber annotations; under TSan the serial schedule falls
// back to OS threads so the checker sees real threads.
#if defined(__SANITIZE_THREAD__)
#define COCA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COCA_TSAN 1
#endif
#endif
#ifndef COCA_TSAN
#define COCA_TSAN 0
#endif

namespace coca::net {

namespace {

/// Thrown into protocol code to unwind runner execution contexts when the
/// controller aborts a run. Deliberately outside the coca::Error hierarchy
/// so protocol code cannot accidentally swallow it.
struct AbortSignal {};

/// Thrown into protocol code to unwind a runner when a FaultPlan crash-stop
/// fires; like AbortSignal, outside every catchable hierarchy.
struct CrashSignal {};

/// Exception text for a recorded party error (RunReport evidence).
std::string what_of(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

/// mmap-backed fiber stack with a PROT_NONE guard page at the low end, so
/// a protocol overflowing its stack faults deterministically instead of
/// corrupting a neighbouring fiber.
class FiberStack {
 public:
  static constexpr std::size_t kSize = std::size_t{1} << 20;  // 1 MiB

  FiberStack() {
    page_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    base_ = ::mmap(nullptr, kSize + page_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    ensure(base_ != MAP_FAILED, "fiber stack mmap failed");
    ::mprotect(base_, page_, PROT_NONE);
  }
  ~FiberStack() { ::munmap(base_, kSize + page_); }
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  void* sp() { return static_cast<char*>(base_) + page_; }
  std::size_t size() const { return kSize; }

 private:
  void* base_ = nullptr;
  std::size_t page_ = 0;
};

bool fibers_enabled() {
  if (COCA_TSAN) return false;
  // Escape hatch: COCA_NO_FIBERS forces the OS-thread backend everywhere.
  return std::getenv("COCA_NO_FIBERS") == nullptr;
}

}  // namespace

bool fibers_available() { return fibers_enabled(); }

std::vector<Envelope> first_per_sender(const std::vector<Envelope>& inbox) {
  // View copies only (refcount bumps); the rvalue overload does the work.
  return first_per_sender(std::vector<Envelope>(inbox));
}

std::vector<Envelope> first_per_sender(std::vector<Envelope>&& inbox) {
  // Canonicalize by sender id first: engine inboxes already arrive sorted
  // (this is a no-op there), but a FaultPlan inbox shuffle -- or any other
  // delivery-order adversary -- must not change what protocols consume.
  // The stable sort keeps first-delivered-wins within a sender.
  std::stable_sort(inbox.begin(), inbox.end(),
                   [](const Envelope& a, const Envelope& b) {
                     return a.from < b.from;
                   });
  std::size_t kept = 0;
  int last_from = -1;
  for (Envelope& e : inbox) {
    if (e.from != last_from) {
      last_from = e.from;
      if (kept != static_cast<std::size_t>(&e - inbox.data())) {
        inbox[kept] = std::move(e);
      }
      ++kept;
    }
  }
  inbox.resize(kept);
  return std::move(inbox);
}

struct SyncNetwork::Runner {
  int party = -1;
  bool honest = false;  // counts toward honest cost metrics
  // Split-brain recipient filter; nullopt = may talk to everyone.
  std::optional<std::set<int>> allowed;
  // Outgoing-message wrapper for tapped byzantine protocol runners; the
  // local round counter feeds its on_send/on_round_start callbacks. Both
  // are touched only by the runner's own execution context.
  std::shared_ptr<SendTap> tap;
  std::size_t local_round = 0;
  ProtocolFn fn;
  std::unique_ptr<PartyContext> ctx;

  // ---- OS-thread backend (parallel windows, and serial under TSan).
  std::thread thread;
  // Barrier handshake, all guarded by Impl::mu. The controller releases a
  // runner by setting `go` and signalling `cv`; the runner consumes `go`,
  // runs its round slice, and parks again at the next advance(). While
  // `in_flight` it occupies one of the policy's worker-window slots.
  std::condition_variable cv;
  bool go = false;
  bool in_flight = false;

  // ---- Fiber backend (serial schedule): the runner is a cooperative
  // fiber on the controller's thread; a release is one stack swap.
  ucontext_t fiber_ctx = {};
  std::unique_ptr<FiberStack> fiber_stack;
  Impl* impl = nullptr;  // backpointer for the fiber trampoline

  enum class State { AtBarrier, Running, Finished };
  State state = State::AtBarrier;
  std::exception_ptr error;
  std::vector<Envelope> inbox_next;  // written by controller pre-release

  // ---- FaultPlan plumbing. `crash_unwind` is set by the controller while
  // the runner is parked; the runner observes it at its next release and
  // unwinds with CrashSignal. `crashed_by_plan` / `decided` feed RunReport.
  bool crash_unwind = false;
  bool crashed_by_plan = false;
  bool decided = false;  // protocol function returned normally

  // Runner-local staging and metrics: written only by the runner's own
  // execution context while Running, read by the controller only while the
  // runner is parked at the barrier or finished (the barrier mutex orders
  // these accesses in the thread backend; the fiber backend is single-
  // threaded). Keeping the outbox runner-local is what makes the parallel
  // schedule deterministic: sends never contend, and the controller merges
  // outboxes in canonical runner-table order at the barrier.
  struct Staged {
    int to;
    Payload payload;
  };
  std::vector<Staged> outbox;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::vector<std::string> phase_stack;
  std::map<std::string, std::uint64_t> phase_bytes;
  // Leaf-charged companion to phase_bytes: each send counts only in the
  // innermost open phase (kUnattributedPhase when none), so the values sum
  // exactly to bytes_sent. Heterogeneous lookup avoids a per-send string.
  std::map<std::string, std::uint64_t, std::less<>> phase_leaf_bytes;
  // Phase stack at the moment an unwind first popped it; seals the "where
  // did this party die" attribution for PartyOutcome::phase. Cleared at
  // every slice start so protocol-internal caught exceptions don't stick.
  std::string fail_phase;

  // ---- Observability (inert unless a tracer is installed for the run).
  int obs_track = -1;        // phase + kernel spans, send charges
  int obs_slice_track = -1;  // one span per executed round slice
  bool slice_open = false;   // runner-context-only balance flag
  // Payload deep copies performed on this runner's own OS thread (thread
  // backend only; fibers share the controller thread, whose delta covers
  // them). Recorded at thread exit, summed into RunStats.
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_bytes_copied = 0;

  /// makecontext entry point: runs the protocol function inside the fiber
  /// and swaps back to the controller when it finishes (or unwinds).
  /// makecontext only passes ints, so the Runner pointer travels as halves.
  static void fiber_trampoline(unsigned hi, unsigned lo);
};

struct SyncNetwork::Scripted {
  int party = -1;
  std::shared_ptr<ByzantineStrategy> strategy;
  std::vector<Envelope> inbox;
  std::vector<Envelope> inbox_next;  // pooled build buffer, swapped per round
  std::uint64_t bytes_sent = 0;
  Rng rng{0};
};

struct SyncNetwork::Impl {
  int n = 0;
  std::mutex mu;
  std::condition_variable cv_ctrl;  // controller waits for parks
  std::size_t in_flight = 0;        // runners released and not yet parked
  bool abort = false;
  bool fibers = false;               // backend chosen for the current run()
  ucontext_t controller_ctx = {};
  ExecPolicy policy;                 // default: auto (COCA_THREADS / serial)
  Transcript* transcript = nullptr;  // optional recording sink
  RoundObserver* round_observer = nullptr;  // optional per-round hook
  RoundRouter* router = nullptr;            // optional round transport
  std::string transport_error;              // reason of a router failure

  // ---- Observability (null tracer = every hook below is one branch).
  obs::Tracer* tracer = nullptr;
  int obs_engine_track = -1;
  // Engine round of the slice currently executing. Written by the
  // controller before releasing a wave (under `mu` in the thread backend,
  // whose barrier handshake orders runner reads; trivially ordered in the
  // single-threaded fiber backend).
  std::size_t current_round = 0;

  std::vector<std::unique_ptr<Runner>> runners;
  std::vector<std::unique_ptr<Scripted>> scripted;
  std::vector<int> role_of_party;  // 0 = unset, 1 = honest, 2 = byzantine

  // ---- Environment faults (empty plan = all of this is inert).
  FaultPlan plan;
  FaultStats faults;
  std::vector<char> crash_started;    // parallel to plan.crashes
  std::vector<char> crash_recovered;  // parallel to plan.crashes

  /// One delivered (from, to, payload-view) message on the wire.
  struct Triplet {
    int from;
    int to;
    Payload payload;
  };

  // Pooled per-round scratch: cleared (capacity kept) instead of
  // reallocated every round.
  std::vector<Triplet> wire;
  std::vector<Triplet> byz_wire;
  std::vector<RoundView::Sent> honest_traffic;
  // party id -> indices into runners / scripted (built once per run);
  // routing one round is O(messages), not O(messages * parties).
  std::vector<std::vector<std::size_t>> runners_of_party;
  std::vector<std::vector<std::size_t>> scripted_of_party;
  std::vector<std::size_t> runner_msg_count;
  std::vector<std::size_t> scripted_msg_count;

  void build_routing_index() {
    runners_of_party.assign(static_cast<std::size_t>(n), {});
    scripted_of_party.assign(static_cast<std::size_t>(n), {});
    for (std::size_t i = 0; i < runners.size(); ++i) {
      runners_of_party[static_cast<std::size_t>(runners[i]->party)]
          .push_back(i);
    }
    for (std::size_t i = 0; i < scripted.size(); ++i) {
      scripted_of_party[static_cast<std::size_t>(scripted[i]->party)]
          .push_back(i);
    }
    runner_msg_count.assign(runners.size(), 0);
    scripted_msg_count.assign(scripted.size(), 0);
  }

  /// Updates crash-window bookkeeping for slice `round` and marks runners
  /// whose crash-stop fires: they are released once more and unwind with
  /// CrashSignal. Runners inside a crash-recovery window are simply not
  /// released this slice (see skip_this_slice); their parked stack is the
  /// "persisted state" they resume from.
  void begin_slice_faults(std::size_t round) {
    if (plan.empty()) return;
    for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
      const FaultPlan::Crash& c = plan.crashes[i];
      if (!crash_started[i] && round >= c.from_round) {
        crash_started[i] = 1;
        ++faults.crashes_injected;
      }
      if (c.until_round != kNoRecovery && !crash_recovered[i] &&
          round >= c.until_round) {
        crash_recovered[i] = 1;
        ++faults.recoveries;
      }
    }
    for (auto& rp : runners) {
      if (rp->state == Runner::State::Finished) continue;
      if (plan.crash_stopped(rp->party, round)) {
        rp->crash_unwind = true;
      } else if (plan.crashed(rp->party, round)) {
        ++faults.rounds_missed;  // frozen for this slice
      }
    }
    for (auto& s : scripted) {
      if (plan.crashed(s->party, round) &&
          !plan.crash_stopped(s->party, round)) {
        ++faults.rounds_missed;
      }
    }
  }

  /// True iff `r` sits in a crash-recovery window at `round` and must not
  /// be released this slice. Crash-stop victims are *not* skipped: they get
  /// released exactly once more so their stack unwinds.
  bool skip_this_slice(const Runner& r, std::size_t round) const {
    return !r.crash_unwind && !plan.empty() && plan.crashed(r.party, round);
  }

  /// Removes cut/partitioned traffic from `v` (metering already happened:
  /// the sender pays for bytes the network loses).
  void filter_cut_links(std::vector<Triplet>& v, std::size_t round) {
    if (plan.cuts.empty() && plan.partitions.empty()) return;
    const auto cut = [&](const Triplet& m) {
      return plan.link_cut(m.from, m.to, round);
    };
    const auto first = std::remove_if(v.begin(), v.end(), cut);
    faults.messages_dropped +=
        static_cast<std::uint64_t>(std::distance(first, v.end()));
    v.erase(first, v.end());
  }

  /// Permutes the freshly routed inboxes of shuffle-covered recipients with
  /// a per-(seed, party, round) stream: deterministic, independent of the
  /// ExecPolicy, identical for both halves of a split-brain party.
  void apply_shuffles(std::size_t round) {
    if (plan.shuffles.empty()) return;
    const auto permute = [&](std::vector<Envelope>& inbox, int party,
                             std::uint64_t seed) {
      if (inbox.size() < 2) return;
      Rng rng(Rng::derive_stream_seed(
          kShuffleSeedDomain ^ seed,
          (static_cast<std::uint64_t>(round) << 16) |
              static_cast<std::uint64_t>(party)));
      for (std::size_t i = inbox.size() - 1; i > 0; --i) {
        std::swap(inbox[i], inbox[rng.below(i + 1)]);
      }
      ++faults.inboxes_shuffled;
    };
    for (auto& r : runners) {
      if (const auto seed = plan.shuffle_seed(r->party)) {
        permute(r->inbox_next, r->party, *seed);
      }
    }
    for (auto& s : scripted) {
      if (const auto seed = plan.shuffle_seed(s->party)) {
        permute(s->inbox_next, s->party, *seed);
      }
    }
  }

  /// Drains all staged outboxes into `wire` as (from, to, payload) triplets
  /// in canonical order -- runner-table order, send order within a runner --
  /// and sums the bytes/messages honest runners staged. Payloads move; no
  /// copies.
  void drain_outboxes(std::uint64_t* honest_bytes,
                      std::uint64_t* honest_msgs) {
    wire.clear();
    for (auto& r : runners) {
      for (auto& staged : r->outbox) {
        if (r->honest) {
          *honest_bytes += staged.payload.size();
          *honest_msgs += 1;
        }
        wire.push_back({r->party, staged.to, std::move(staged.payload)});
      }
      r->outbox.clear();
    }
  }

  /// Carries the canonically sorted `wire` across the installed
  /// RoundRouter (no-op without one). The transcript and the inboxes
  /// consume the payloads the transport returned, so a daemon that
  /// corrupts bytes surfaces as a transcript mismatch in the conformance
  /// suite. Returns false on transport failure (`transport_error` set);
  /// addressing/order mismatches are treated as transport failures too,
  /// keeping run_report()'s never-throws contract against a buggy daemon.
  bool route_wire(std::size_t round) {
    if (router == nullptr) return true;
    std::vector<WireMessage> staged;
    staged.reserve(wire.size());
    for (Triplet& m : wire) {
      staged.push_back({m.from, m.to, std::move(m.payload)});
    }
    std::optional<std::vector<WireMessage>> routed =
        router->route(round, std::move(staged));
    if (!routed.has_value()) {
      transport_error = router->failure_reason();
      return false;
    }
    if (routed->size() != wire.size()) {
      transport_error = "round router returned " +
                        std::to_string(routed->size()) + " messages, staged " +
                        std::to_string(wire.size());
      return false;
    }
    for (std::size_t i = 0; i < wire.size(); ++i) {
      WireMessage& m = (*routed)[i];
      if (m.from != wire[i].from || m.to != wire[i].to) {
        transport_error = "round router reordered or readdressed message " +
                          std::to_string(i);
        return false;
      }
      wire[i].payload = std::move(m.payload);
    }
    return true;
  }

  /// Delivers one round: all runners are parked (or finished), so their
  /// outboxes and metrics are safe to touch. Backend-agnostic; the thread
  /// backend calls this with the barrier mutex held. Returns false iff the
  /// installed RoundRouter failed to carry the round (never without one).
  bool deliver_round(std::size_t round) {
    std::uint64_t round_honest_bytes = 0;
    std::uint64_t round_honest_msgs = 0;
    drain_outboxes(&round_honest_bytes, &round_honest_msgs);
    if (tracer != nullptr) {
      // The innermost open engine span is this round's span.
      tracer->charge(obs_engine_track, round_honest_bytes, round_honest_msgs);
    }
    if (round_observer != nullptr) {
      round_observer->on_round(round, round_honest_bytes, round_honest_msgs);
    }
    // Environment link faults sit *below* the adversary: cut traffic
    // vanishes before the rushing adversary observes the round and before
    // the transcript records it.
    filter_cut_links(wire, round);
    honest_traffic.clear();
    for (const Triplet& m : wire) {
      honest_traffic.push_back({m.from, m.to, &m.payload});
    }
    // Scripted byzantine parties act last within the round (rushing).
    // Their sends are staged separately: honest_traffic points into `wire`,
    // which must stay unmodified while strategies run.
    byz_wire.clear();
    for (auto& s : scripted) {
      // A crashed scripted party sends nothing this round.
      if (!plan.empty() && plan.crashed(s->party, round)) continue;
      RoundView view;
      view.round = round;
      view.self = s->party;
      view.n = n;
      view.t = t_for_views;
      view.inbox = &s->inbox;
      view.honest_traffic = &honest_traffic;
      view.rng = &s->rng;
      s->strategy->on_round(view, [&](int to, Bytes payload) {
        require(to >= 0 && to < n,
                "ByzantineStrategy sent to out-of-range recipient");
        s->bytes_sent += payload.size();
        byz_wire.push_back({s->party, to, Payload(std::move(payload))});
      });
    }
    filter_cut_links(byz_wire, round);
    for (auto& m : byz_wire) wire.push_back(std::move(m));
    byz_wire.clear();

    // Route, ordered by sender id (stable within a sender).
    std::stable_sort(wire.begin(), wire.end(),
                     [](const Triplet& a, const Triplet& b) {
                       return a.from < b.from;
                     });
    // Transport seam: the merged round leaves the process here. Everything
    // below -- transcript, inboxes -- consumes what came back off the wire.
    if (!route_wire(round)) {
      wire.clear();
      return false;
    }
    if (transcript != nullptr) {
      Transcript::Round rec;
      rec.honest_bytes = round_honest_bytes;
      rec.messages.reserve(wire.size());
      for (const Triplet& m : wire) {
        rec.messages.push_back({m.from, m.to, m.payload});  // view copy
      }
      transcript->rounds.push_back(std::move(rec));
    }
    // Two-pass routing: count, reserve, fill -- every inbox is one exact
    // allocation and every delivered payload a view of the sender's buffer.
    std::fill(runner_msg_count.begin(), runner_msg_count.end(), 0);
    std::fill(scripted_msg_count.begin(), scripted_msg_count.end(), 0);
    for (const Triplet& m : wire) {
      const auto to = static_cast<std::size_t>(m.to);
      for (const std::size_t i : runners_of_party[to]) ++runner_msg_count[i];
      for (const std::size_t i : scripted_of_party[to]) {
        ++scripted_msg_count[i];
      }
    }
    for (std::size_t i = 0; i < runners.size(); ++i) {
      runners[i]->inbox_next.clear();
      runners[i]->inbox_next.reserve(runner_msg_count[i]);
    }
    for (std::size_t i = 0; i < scripted.size(); ++i) {
      scripted[i]->inbox_next.clear();
      scripted[i]->inbox_next.reserve(scripted_msg_count[i]);
    }
    for (const Triplet& m : wire) {
      const auto to = static_cast<std::size_t>(m.to);
      for (const std::size_t i : runners_of_party[to]) {
        runners[i]->inbox_next.push_back({m.from, m.payload});
      }
      for (const std::size_t i : scripted_of_party[to]) {
        scripted[i]->inbox_next.push_back({m.from, m.payload});
      }
      // A recipient inside a crash window when this delivery would be
      // consumed (slice round+1) never sees it: a frozen runner's
      // inbox_next is overwritten by later rounds, a crash-stopped one is
      // gone. The message stays in the transcript (the network delivered
      // it; the party was dead) -- only the counter records the loss.
      if (!plan.empty() && plan.crashed(m.to, round + 1)) {
        ++faults.messages_dropped;
      }
    }
    if (!plan.empty()) apply_shuffles(round);
    for (auto& s : scripted) {
      std::swap(s->inbox, s->inbox_next);
      s->inbox_next.clear();
    }
    wire.clear();
    return true;
  }

  /// Drains leftover sends (staged after a party's last advance()) into a
  /// trailing transcript round so per-round bytes sum to the run totals.
  void record_leftovers(std::size_t round) {
    if (transcript == nullptr) return;
    std::uint64_t leftover_honest_bytes = 0;
    std::uint64_t leftover_honest_msgs = 0;
    drain_outboxes(&leftover_honest_bytes, &leftover_honest_msgs);
    filter_cut_links(wire, round);
    if (wire.empty()) return;
    std::stable_sort(wire.begin(), wire.end(),
                     [](const Triplet& a, const Triplet& b) {
                       return a.from < b.from;
                     });
    Transcript::Round rec;
    rec.honest_bytes = leftover_honest_bytes;
    for (Triplet& m : wire) {
      rec.messages.push_back({m.from, m.to, std::move(m.payload)});
    }
    transcript->rounds.push_back(std::move(rec));
    wire.clear();
  }

  int t_for_views = 0;  // network t, for RoundView

  /// Releases every non-finished runner for one round slice, at most
  /// `window` concurrently, in canonical runner-table order, and waits
  /// until all of them are parked again (or finished). Runners frozen by a
  /// crash-recovery window are skipped. Returns false on watchdog timeout.
  /// Caller holds `lk`. (OS-thread backend.)
  bool run_wave(std::unique_lock<std::mutex>& lk, std::size_t window,
                std::size_t round) {
    std::size_t next = 0;
    for (;;) {
      while (in_flight < window && next < runners.size()) {
        Runner& r = *runners[next++];
        if (r.state == Runner::State::Finished) continue;
        if (skip_this_slice(r, round)) continue;
        r.go = true;
        r.in_flight = true;
        ++in_flight;
        r.cv.notify_one();
      }
      if (in_flight == 0 && next == runners.size()) return true;
      // Watchdog: a round slice that takes this long means livelock in
      // protocol code (all legitimate slices are short bursts of compute).
      if (!cv_ctrl.wait_for(lk, std::chrono::seconds(300), [&] {
            return in_flight == 0 ||
                   (in_flight < window && next < runners.size());
          })) {
        return false;
      }
    }
  }
};

void SyncNetwork::Runner::fiber_trampoline(unsigned hi, unsigned lo) {
  auto* r = reinterpret_cast<Runner*>((static_cast<std::uintptr_t>(hi) << 32) |
                                      static_cast<std::uintptr_t>(lo));
  try {
    r->state = State::Running;
    // A fiber first swapped in during an abort unwind, or with a round-0
    // crash-stop pending, runs zero protocol statements.
    if (r->impl->abort) throw AbortSignal{};
    if (r->crash_unwind) throw CrashSignal{};
    r->fn(*r->ctx);
    r->decided = true;
  } catch (const AbortSignal&) {
    // Controller-initiated unwind; not an error.
  } catch (const CrashSignal&) {
    r->crashed_by_plan = true;  // FaultPlan crash-stop; not an error.
  } catch (...) {
    r->error = std::current_exception();
  }
  r->state = State::Finished;
  swapcontext(&r->fiber_ctx, &r->impl->controller_ctx);
}

SyncNetwork::SyncNetwork(int n, int t) : n_(n), t_(t) {
  require(n >= 1 && t >= 0 && t < n, "SyncNetwork: need 0 <= t < n");
  impl_ = std::make_unique<Impl>();
  impl_->n = n;
  impl_->t_for_views = t;
  impl_->role_of_party.assign(static_cast<std::size_t>(n), 0);
}

SyncNetwork::~SyncNetwork() {
  // run() joins all threads; if run() was never called, no threads exist.
  for (auto& r : impl_->runners) {
    ensure(!r->thread.joinable(), "SyncNetwork destroyed with live threads");
  }
}

int PartyContext::n() const { return net_.n(); }
int PartyContext::t() const { return net_.t(); }

void PartyContext::send(int to, Bytes payload) {
  net_.runner_send(runner_, to, Payload(std::move(payload)), "unicast");
}

void PartyContext::send(int to, Payload payload) {
  net_.runner_send(runner_, to, std::move(payload), "unicast");
}

void PartyContext::send_all(Payload payload) {
  // One shared buffer for all n recipients: each stage is a refcount bump.
  for (int to = 0; to < n(); ++to) {
    net_.runner_send(runner_, to, payload, "broadcast");
  }
}

std::vector<Envelope> PartyContext::advance() {
  return net_.runner_advance(runner_);
}

PartyContext::PhaseScope::PhaseScope(PartyContext& ctx, std::string name)
    : ctx_(ctx) {
  ctx_.net_.runner_push_phase(ctx_.runner_, std::move(name));
}

PartyContext::PhaseScope::~PhaseScope() {
  ctx_.net_.runner_pop_phase(ctx_.runner_);
}

void SyncNetwork::set_honest(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_honest: bad or already-assigned id");
  impl_->role_of_party[id] = 1;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = true;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine(int id,
                                std::shared_ptr<ByzantineStrategy> strategy) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto s = std::make_unique<Scripted>();
  s->party = id;
  s->strategy = std::move(strategy);
  s->rng = Rng::stream(kScriptedSeedDomain, static_cast<std::uint64_t>(id));
  impl_->scripted.push_back(std::move(s));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_byzantine_protocol: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  auto r = std::make_unique<Runner>();
  r->party = id;
  r->honest = false;
  r->fn = std::move(fn);
  const std::size_t idx = impl_->runners.size();
  r->ctx.reset(new PartyContext(
      *this, idx, id,
      Rng::derive_stream_seed(kRunnerSeedDomain, runner_stream_key(id, idx))));
  impl_->runners.push_back(std::move(r));
}

void SyncNetwork::set_byzantine_protocol(int id, ProtocolFn fn,
                                         std::shared_ptr<SendTap> tap) {
  set_byzantine_protocol(id, std::move(fn));
  impl_->runners.back()->tap = std::move(tap);
}

void SyncNetwork::set_split_brain(int id, ProtocolFn a, ProtocolFn b,
                                  std::set<int> recipients_of_a) {
  require(id >= 0 && id < n_ && impl_->role_of_party[id] == 0,
          "SyncNetwork::set_split_brain: bad or already-assigned id");
  impl_->role_of_party[id] = 2;
  std::set<int> recipients_of_b;
  for (int p = 0; p < n_; ++p) {
    if (!recipients_of_a.contains(p)) recipients_of_b.insert(p);
  }
  for (int half = 0; half < 2; ++half) {
    auto r = std::make_unique<Runner>();
    r->party = id;
    r->honest = false;
    r->allowed = half == 0 ? recipients_of_a : recipients_of_b;
    r->fn = half == 0 ? std::move(a) : std::move(b);
    const std::size_t idx = impl_->runners.size();
    r->ctx.reset(new PartyContext(*this, idx, id,
                                  Rng::derive_stream_seed(
                                      kRunnerSeedDomain,
                                      runner_stream_key(id, idx))));
    impl_->runners.push_back(std::move(r));
  }
}

void SyncNetwork::set_exec_policy(ExecPolicy policy) {
  require(policy.threads >= 0, "SyncNetwork::set_exec_policy: bad threads");
  impl_->policy = policy;
}

void SyncNetwork::set_transcript(Transcript* sink) {
  impl_->transcript = sink;
}

void SyncNetwork::set_round_observer(RoundObserver* observer) {
  impl_->round_observer = observer;
}

void SyncNetwork::set_round_router(RoundRouter* router) {
  impl_->router = router;
}

void SyncNetwork::set_fault_plan(FaultPlan plan) {
  plan.validate(n_);
  impl_->plan = std::move(plan);
}

const FaultPlan& SyncNetwork::fault_plan() const { return impl_->plan; }

void SyncNetwork::set_tracer(obs::Tracer* tracer) { impl_->tracer = tracer; }

void SyncNetwork::runner_send(std::size_t runner_index, int to,
                              Payload payload, const char* kind) {
  Runner& r = *impl_->runners[runner_index];
  if (r.tap != nullptr) {
    r.tap->on_send(r.local_round, to, std::move(payload),
                   [this, runner_index](int tap_to, Payload tap_payload) {
                     runner_stage(runner_index, tap_to,
                                  std::move(tap_payload), "tap");
                   });
    return;
  }
  runner_stage(runner_index, to, std::move(payload), kind);
}

void SyncNetwork::runner_stage(std::size_t runner_index, int to,
                               Payload payload, const char* kind) {
  Runner& r = *impl_->runners[runner_index];
  require(to >= 0 && to < n_, "PartyContext::send: recipient out of range");
  if (r.allowed && !r.allowed->contains(to)) return;  // split-brain filter
  const std::uint64_t size = payload.size();
  r.bytes_sent += size;
  r.messages_sent += 1;
  for (const std::string& name : r.phase_stack) {
    r.phase_bytes[name] += size;
  }
  const std::string_view leaf = r.phase_stack.empty()
                                    ? std::string_view(kUnattributedPhase)
                                    : std::string_view(r.phase_stack.back());
  const auto it = r.phase_leaf_bytes.find(leaf);
  if (it != r.phase_leaf_bytes.end()) {
    it->second += size;
  } else {
    r.phase_leaf_bytes.emplace(std::string(leaf), size);
  }
  if (obs::Tracer* tr = impl_->tracer; tr != nullptr) {
    tr->charge(r.obs_track, size, 1);
    // Per-(party, phase, message-kind) attribution; the party is the track.
    std::string key;
    key.reserve(leaf.size() + 16);
    key += "bytes.";
    key += leaf;
    key += '.';
    key += kind;
    tr->count(r.obs_track, key, size);
    key.replace(0, 5, "msgs");
    tr->count(r.obs_track, key, 1);
    tr->observe(r.obs_track, "send.bytes", size);
  }
  r.outbox.push_back({to, std::move(payload)});
}

void SyncNetwork::runner_push_phase(std::size_t runner_index,
                                    std::string name) {
  Runner& r = *impl_->runners[runner_index];
  if (obs::Tracer* tr = impl_->tracer; tr != nullptr) {
    tr->begin(r.obs_track, name, "phase", impl_->current_round);
  }
  r.phase_stack.push_back(std::move(name));
}

void SyncNetwork::runner_pop_phase(std::size_t runner_index) {
  Runner& r = *impl_->runners[runner_index];
  ensure(!r.phase_stack.empty(), "phase pop without matching push");
  if (std::uncaught_exceptions() > 0 && r.fail_phase.empty()) {
    // First pop of a stack unwind (protocol exception, AbortSignal or
    // CrashSignal): seal the full phase stack as the failure location.
    for (const std::string& name : r.phase_stack) {
      if (!r.fail_phase.empty()) r.fail_phase += '/';
      r.fail_phase += name;
    }
  }
  if (obs::Tracer* tr = impl_->tracer; tr != nullptr) {
    tr->end(r.obs_track);
  }
  r.phase_stack.pop_back();
}

std::vector<Envelope> SyncNetwork::runner_advance(std::size_t runner_index) {
  Runner& r = *impl_->runners[runner_index];
  std::vector<Envelope> inbox;
  if (impl_->fibers) {
    // Cooperative barrier: one stack swap to the controller, which resumes
    // this fiber at the start of the next round slice. No locks: the whole
    // network runs on one OS thread. Slice spans and the kernel-span
    // thread scope are managed by the controller around the swap.
    r.state = Runner::State::AtBarrier;
    swapcontext(&r.fiber_ctx, &impl_->controller_ctx);
    if (impl_->abort) throw AbortSignal{};
    if (r.crash_unwind) throw CrashSignal{};
    r.state = Runner::State::Running;
    r.fail_phase.clear();
    inbox = std::exchange(r.inbox_next, {});
  } else {
    std::unique_lock lk(impl_->mu);
    r.state = Runner::State::AtBarrier;
    if (impl_->tracer != nullptr && r.slice_open) {
      obs::thread_scope() = {};
      impl_->tracer->end(r.obs_slice_track);
      r.slice_open = false;
    }
    if (r.in_flight) {
      r.in_flight = false;
      --impl_->in_flight;
    }
    impl_->cv_ctrl.notify_one();
    r.cv.wait(lk, [&] { return r.go || impl_->abort; });
    if (impl_->abort) throw AbortSignal{};
    if (r.crash_unwind) throw CrashSignal{};
    r.go = false;
    r.state = Runner::State::Running;
    r.fail_phase.clear();
    if (obs::Tracer* tr = impl_->tracer; tr != nullptr) {
      tr->begin(r.obs_slice_track, "slice", "slice", impl_->current_round);
      obs::thread_scope() = {tr, r.obs_track, impl_->current_round};
      r.slice_open = true;
    }
    inbox = std::exchange(r.inbox_next, {});
  }
  // The runner entered the next round; let a tap flush held-back messages
  // before the wrapped protocol stages its own (staging is runner-local).
  ++r.local_round;
  if (r.tap != nullptr) {
    r.tap->on_round_start(r.local_round,
                          [this, runner_index](int to, Payload payload) {
                            runner_stage(runner_index, to, std::move(payload),
                                         "tap");
                          });
  }
  return inbox;
}

RunStats SyncNetwork::run(std::size_t max_rounds) {
  std::exception_ptr first_error;
  std::string failure_reason;
  RunReport rep = run_impl(max_rounds, /*guarded=*/false, &first_error,
                           &failure_reason);
  if (first_error) std::rethrow_exception(first_error);
  if (!failure_reason.empty()) throw Error(failure_reason);
  return std::move(rep.stats);
}

RunReport SyncNetwork::run_report(std::size_t max_rounds) {
  std::exception_ptr first_error;
  std::string failure_reason;
  return run_impl(max_rounds, /*guarded=*/true, &first_error, &failure_reason);
}

RunReport SyncNetwork::run_impl(std::size_t max_rounds, bool guarded,
                                std::exception_ptr* first_error,
                                std::string* failure_reason) {
  Impl& im = *impl_;
  for (int p = 0; p < n_; ++p) {
    require(im.role_of_party[p] != 0,
            "SyncNetwork::run: every party needs a role before running");
  }
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, im.policy.window()));
  im.fibers = window == 1 && fibers_enabled();
  if (im.transcript) im.transcript->rounds.clear();
  im.build_routing_index();
  im.faults = FaultStats{};
  im.crash_started.assign(im.plan.crashes.size(), 0);
  im.crash_recovered.assign(im.plan.crashes.size(), 0);
  im.current_round = 0;
  if (obs::Tracer* tr = im.tracer; tr != nullptr) {
    // Pre-run track registration (the only time the tracer's track table
    // grows; afterwards each track is written by one execution context).
    im.obs_engine_track = tr->add_track("engine", "engine", false);
    for (auto& rp : im.runners) {
      std::string label = "party " + std::to_string(rp->party);
      if (im.runners_of_party[static_cast<std::size_t>(rp->party)].size() >
          1) {
        // Split-brain halves share a wire id; disambiguate by half.
        const auto& of_party =
            im.runners_of_party[static_cast<std::size_t>(rp->party)];
        const std::size_t self =
            static_cast<std::size_t>(&rp - im.runners.data());
        label += of_party.front() == self ? " (a)" : " (b)";
      }
      rp->obs_track = tr->add_track(label, "party", rp->honest);
      rp->obs_slice_track = tr->add_track(label + " slices", "slices", false);
      rp->slice_open = false;
    }
  }
  // Per-run payload-copy attribution: the controller thread's delta plus
  // each runner thread's delta (fibers all run on the controller thread).
  // Thread-local accounting keeps concurrent runs in other threads out.
  const std::uint64_t ctl_copies_before = PayloadMetrics::thread_copies();
  const std::uint64_t ctl_bytes_copied_before =
      PayloadMetrics::thread_bytes_copied();

  im.transport_error.clear();
  std::size_t rounds = 0;
  std::exception_ptr failure;
  bool timed_out = false;
  bool watchdog_fired = false;
  bool transport_failed = false;
  const auto begin_round_span = [&] {
    if (im.tracer != nullptr) {
      im.tracer->begin(im.obs_engine_track, "round " + std::to_string(rounds),
                       "round", rounds);
    }
  };
  const auto end_round_span = [&] {
    if (im.tracer != nullptr) im.tracer->end(im.obs_engine_track);
  };

  if (im.fibers) {
    // ---- Fiber backend: every runner is a cooperative fiber; the
    // controller swaps into each in canonical order, delivers, repeats.
    for (auto& rp : im.runners) {
      Runner& r = *rp;
      r.impl = &im;
      r.fiber_stack = std::make_unique<FiberStack>();
      getcontext(&r.fiber_ctx);
      r.fiber_ctx.uc_stack.ss_sp = r.fiber_stack->sp();
      r.fiber_ctx.uc_stack.ss_size = r.fiber_stack->size();
      r.fiber_ctx.uc_link = &im.controller_ctx;
      const auto ptr = reinterpret_cast<std::uintptr_t>(&r);
      makecontext(&r.fiber_ctx,
                  reinterpret_cast<void (*)()>(&Runner::fiber_trampoline), 2,
                  static_cast<unsigned>(ptr >> 32),
                  static_cast<unsigned>(ptr & 0xFFFFFFFFu));
    }
    const auto all_finished = [&] {
      return std::all_of(im.runners.begin(), im.runners.end(), [](auto& r) {
        return r->state == Runner::State::Finished;
      });
    };
    for (;;) {
      im.current_round = rounds;
      im.begin_slice_faults(rounds);
      begin_round_span();
      for (auto& rp : im.runners) {
        if (rp->state == Runner::State::Finished) continue;
        if (im.skip_this_slice(*rp, rounds)) continue;
        if (obs::Tracer* tr = im.tracer; tr != nullptr) {
          tr->begin(rp->obs_slice_track, "slice", "slice", rounds);
          obs::thread_scope() = {tr, rp->obs_track, rounds};
        }
        swapcontext(&im.controller_ctx, &rp->fiber_ctx);
        if (obs::Tracer* tr = im.tracer; tr != nullptr) {
          obs::thread_scope() = {};
          tr->end(rp->obs_slice_track);
        }
      }
      // Guarded mode is the exception barrier: a throwing party is already
      // parked as Finished-with-error and the run simply continues without
      // it. Legacy mode aborts the whole run on the first error.
      if (!guarded) {
        for (auto& r : im.runners) {
          if (r->error && !failure) failure = r->error;
        }
        if (failure) {
          end_round_span();
          break;
        }
      }
      if (all_finished()) {
        end_round_span();
        break;
      }
      if (rounds >= max_rounds) {
        timed_out = true;
        end_round_span();
        break;
      }
      if (!im.deliver_round(rounds)) {
        transport_failed = true;
        timed_out = true;  // stragglers report as TimedOut below
        end_round_span();
        break;
      }
      end_round_span();
      ++rounds;
    }
    if (failure || timed_out) {
      // Unwind every parked fiber so protocol stack frames run their
      // destructors before the stacks are freed.
      im.abort = true;
      for (auto& rp : im.runners) {
        if (rp->state != Runner::State::Finished) {
          swapcontext(&im.controller_ctx, &rp->fiber_ctx);
        }
      }
      im.abort = false;
    } else {
      im.record_leftovers(rounds);
    }
    for (auto& rp : im.runners) rp->fiber_stack.reset();
  } else {
    // ---- OS-thread backend. Launch runner threads; each waits for its
    // first release so that the pre-first-advance protocol segment obeys
    // the same schedule as every later round slice.
    for (auto& rp : im.runners) {
      Runner& r = *rp;
      r.thread = std::thread([this, &r] {
        const std::uint64_t copies0 = PayloadMetrics::thread_copies();
        const std::uint64_t bytes_copied0 =
            PayloadMetrics::thread_bytes_copied();
        try {
          {
            std::unique_lock lk(impl_->mu);
            r.cv.wait(lk, [&] { return r.go || impl_->abort; });
            if (impl_->abort) throw AbortSignal{};
            if (r.crash_unwind) throw CrashSignal{};
            r.go = false;
            r.state = Runner::State::Running;
            if (obs::Tracer* tr = impl_->tracer; tr != nullptr) {
              tr->begin(r.obs_slice_track, "slice", "slice",
                        impl_->current_round);
              obs::thread_scope() = {tr, r.obs_track, impl_->current_round};
              r.slice_open = true;
            }
          }
          r.fn(*r.ctx);
          r.decided = true;
        } catch (const AbortSignal&) {
          // Controller-initiated unwind; not an error.
        } catch (const CrashSignal&) {
          std::lock_guard lk(impl_->mu);
          r.crashed_by_plan = true;  // FaultPlan crash-stop; not an error.
        } catch (...) {
          std::lock_guard lk(impl_->mu);
          r.error = std::current_exception();
        }
        std::lock_guard lk(impl_->mu);
        if (impl_->tracer != nullptr && r.slice_open) {
          obs::thread_scope() = {};
          impl_->tracer->end(r.obs_slice_track);
          r.slice_open = false;
        }
        r.payload_copies = PayloadMetrics::thread_copies() - copies0;
        r.payload_bytes_copied =
            PayloadMetrics::thread_bytes_copied() - bytes_copied0;
        r.state = Runner::State::Finished;
        if (r.in_flight) {
          r.in_flight = false;
          --impl_->in_flight;
        }
        impl_->cv_ctrl.notify_one();
      });
    }

    {
      std::unique_lock lk(im.mu);
      const auto all_finished = [&] {
        return std::all_of(im.runners.begin(), im.runners.end(), [](auto& r) {
          return r->state == Runner::State::Finished;
        });
      };
      for (;;) {
        im.current_round = rounds;
        im.begin_slice_faults(rounds);
        begin_round_span();
        if (!im.run_wave(lk, window, rounds)) {
          timed_out = true;
          watchdog_fired = true;
          end_round_span();
          break;
        }
        if (!guarded) {
          for (auto& r : im.runners) {
            if (r->error && !failure) failure = r->error;
          }
          if (failure) {
            end_round_span();
            break;
          }
        }
        if (all_finished()) {
          end_round_span();
          break;
        }
        if (rounds >= max_rounds) {
          timed_out = true;
          end_round_span();
          break;
        }
        // All runners are parked; deliver one round.
        if (!im.deliver_round(rounds)) {
          transport_failed = true;
          timed_out = true;  // stragglers report as TimedOut below
          end_round_span();
          break;
        }
        end_round_span();
        ++rounds;
      }

      if (failure || timed_out) {
        im.abort = true;
        for (auto& r : im.runners) r->cv.notify_one();
      } else {
        im.record_leftovers(rounds);
      }
    }

    for (auto& r : im.runners) {
      if (r->thread.joinable()) r->thread.join();
    }
  }

  // Legacy (non-guarded) failure plumbing: the caller rethrows.
  *first_error = failure;
  if (!guarded && timed_out) {
    *failure_reason =
        transport_failed
            ? "SyncNetwork: transport failure: " + im.transport_error
            : (watchdog_fired ? "SyncNetwork: round stalled (watchdog)"
                              : "SyncNetwork: max round count exceeded");
  }

  RunReport rep;
  rep.timed_out = timed_out;
  rep.watchdog_fired = watchdog_fired;
  rep.transport_failed = transport_failed;
  rep.transport_error = im.transport_error;
  RunStats& stats = rep.stats;
  stats.rounds = rounds;
  stats.faults = im.faults;
  stats.payload_copies =
      PayloadMetrics::thread_copies() - ctl_copies_before;
  stats.payload_bytes_copied =
      PayloadMetrics::thread_bytes_copied() - ctl_bytes_copied_before;
  stats.bytes_by_party.assign(static_cast<std::size_t>(n_), 0);
  for (const auto& r : im.runners) {
    // Runner-thread copy deltas are zero in the fiber backend (all fibers
    // share the controller thread, already counted above).
    stats.payload_copies += r->payload_copies;
    stats.payload_bytes_copied += r->payload_bytes_copied;
    stats.bytes_by_party[static_cast<std::size_t>(r->party)] += r->bytes_sent;
    if (r->honest) {
      stats.honest_bytes += r->bytes_sent;
      stats.honest_messages += r->messages_sent;
      for (const auto& [name, bytes] : r->phase_bytes) {
        stats.honest_bytes_by_phase[name] += bytes;
      }
      for (const auto& [name, bytes] : r->phase_leaf_bytes) {
        stats.phase_breakdown[name] += bytes;
      }
    }
  }
  for (const auto& s : im.scripted) {
    stats.bytes_by_party[static_cast<std::size_t>(s->party)] += s->bytes_sent;
  }

  // Per-party outcomes, worst over a party's runners (split-brain owns two).
  rep.outcomes.assign(static_cast<std::size_t>(n_), PartyOutcome{});
  const auto note = [&](int party, Outcome o, std::string ev,
                        std::string phase) {
    PartyOutcome& po = rep.outcomes[static_cast<std::size_t>(party)];
    if (static_cast<int>(o) > static_cast<int>(po.outcome)) {
      po.outcome = o;
      po.evidence = std::move(ev);
      po.phase = std::move(phase);
    }
  };
  for (const auto& r : im.runners) {
    if (r->error) {
      note(r->party, Outcome::kAborted, what_of(r->error), r->fail_phase);
    } else if (r->crashed_by_plan) {
      note(r->party, Outcome::kCrashed, "fault-plan crash-stop",
           r->fail_phase);
    } else if (!r->decided) {
      note(r->party, Outcome::kTimedOut,
           "still running after round " + std::to_string(rounds),
           r->fail_phase);
    }
  }
  for (const auto& s : im.scripted) {
    if (!im.plan.empty() && im.plan.crash_stopped(s->party, rounds)) {
      note(s->party, Outcome::kCrashed, "fault-plan crash-stop", "");
    }
  }

  if (obs::Tracer* tr = im.tracer; tr != nullptr) {
    // Whole-run counters on the engine track; wall.ns is 0 in canonical
    // (timing-off) mode, keeping the metrics export schedule-deterministic.
    tr->count(im.obs_engine_track, "rounds", stats.rounds);
    tr->count(im.obs_engine_track, "honest.bytes", stats.honest_bytes);
    tr->count(im.obs_engine_track, "honest.messages", stats.honest_messages);
    tr->count(im.obs_engine_track, "payload.copies", stats.payload_copies);
    tr->count(im.obs_engine_track, "payload.bytes_copied",
              stats.payload_bytes_copied);
    tr->count(im.obs_engine_track, "wall.ns", tr->now_ns());
  }
  return rep;
}

}  // namespace coca::net
